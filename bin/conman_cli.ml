(* The command-line front end: reproduce individual tables/figures of the
   paper, run the demo scenarios, or drive the NM interactively over the
   simulated testbeds.

   Examples:
     conman repro table5
     conman repro table6 --routers 2,3,4,5,6,7,8
     conman demo gre --channel raw
     conman paths
     conman debug --fault cut-link *)

open Cmdliner
open Conman

let ppf = Fmt.stdout

(* --- repro ------------------------------------------------------------------- *)

let repro_what =
  let doc =
    "What to reproduce: table3, table4, table5, table6, fig2, fig3, fig5, fig6, fig7, fig8, \
     fig9, paths9, or 'all'."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"WHAT" ~doc)

let routers_arg =
  let doc = "Comma-separated path lengths (router counts) for the table-6 sweep." in
  Arg.(value & opt (list int) [ 2; 3; 4; 5; 6 ] & info [ "routers" ] ~docv:"NS" ~doc)

let repro what ns =
  let vpn () = Scenarios.build_vpn () in
  (match what with
  | "table3" -> Report.table3 ppf ()
  | "table4" -> Report.table4 ppf (vpn ())
  | "table5" -> Report.table5 ppf ()
  | "table6" -> Report.table6 ~ns ppf ()
  | "fig2" -> Report.fig2 ppf (vpn ())
  | "fig3" -> Report.fig3 ppf ()
  | "fig5" -> Report.fig5 ppf (vpn ())
  | "fig6" -> Report.fig6 ppf (vpn ())
  | "fig7" -> Report.fig7 ppf ()
  | "fig8" -> Report.fig8 ppf ()
  | "fig9" -> Report.fig9 ppf ()
  | "paths9" -> ignore (Report.paths9 ppf (vpn ()))
  | "all" ->
      Report.table3 ppf ();
      let v = vpn () in
      Report.table4 ppf v;
      Report.fig5 ppf v;
      Report.fig2 ppf v;
      ignore (Report.paths9 ppf v);
      Report.fig6 ppf v;
      Report.fig3 ppf ();
      Report.fig7 ppf ();
      Report.fig8 ppf ();
      Report.fig9 ppf ();
      Report.table5 ppf ();
      Report.table6 ~ns ppf ()
  | other -> Fmt.epr "unknown reproduction target: %s@." other);
  ()

let repro_cmd =
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce a table or figure of the paper")
    Term.(const repro $ repro_what $ routers_arg)

(* --- demo -------------------------------------------------------------------- *)

let channel_arg =
  let kind_conv = Arg.enum [ ("oob", `Oob); ("raw", `Raw) ] in
  let doc = "Management channel: 'oob' (pre-configured, out of band) or 'raw' (in-band flooding)." in
  Arg.(value & opt kind_conv `Oob & info [ "channel" ] ~docv:"KIND" ~doc)

let scenario_arg =
  let doc = "Scenario: gre, mpls, ipip, esp, vlan or auto (let the NM choose)." in
  Arg.(value & pos 0 string "auto" & info [] ~docv:"SCENARIO" ~doc)

let demo scenario channel =
  match scenario with
  | "vlan" -> (
      let v = Scenarios.build_vlan ~channel () in
      match
        Nm.achieve_l2 v.Scenarios.vnm ~scope:v.Scenarios.vscope
          ~from_eth:(Ids.v "ETH" "a" "id-SwA") ~to_eth:(Ids.v "ETH" "c" "id-SwC")
      with
      | Error e -> Fmt.epr "failed: %s@." e
      | Ok script ->
          Fmt.pr "CONMan script (switch A):@.";
          Script_gen.pp_device_script ppf (List.assoc "id-SwA" script.Script_gen.per_device);
          Fmt.pr "customers bridged: %b@." (Scenarios.vlan_reachable v))
  | scenario -> (
      let v = Scenarios.build_vpn ~channel ~secure:(scenario = "esp") () in
      let result =
        match scenario with
        | "auto" -> Nm.achieve v.Scenarios.nm v.Scenarios.goal
        | name ->
            let pick =
              match name with
              | "gre" -> Scenarios.pure_gre
              | "mpls" -> Scenarios.pure_mpls
              | "ipip" -> Scenarios.pure_ipip
              | "esp" -> Scenarios.secure
              | other -> Fmt.failwith "unknown scenario %s" other
            in
            let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
            let path = List.find pick paths in
            let script = Nm.configure_path v.Scenarios.nm v.Scenarios.goal path in
            Ok (paths, path, script)
      in
      match result with
      | Error e -> Fmt.epr "failed: %s@." e
      | Ok (_, path, script) ->
          Fmt.pr "configured path: %a@.@." Path_finder.pp path;
          List.iter
            (fun (dev, prims) ->
              Fmt.pr "--- %s ---@." dev;
              Script_gen.pp_device_script ppf prims)
            script.Script_gen.per_device;
          Fmt.pr "@.S1 <-> S2 reachable: %b@." (Scenarios.vpn_reachable v);
          Fmt.pr "NM messages: %d sent, %d received@." (Nm.stats_sent v.Scenarios.nm)
            (Nm.stats_received v.Scenarios.nm))

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Configure the figure-4 VPN (or figure-9 VLAN) testbed via CONMan")
    Term.(const demo $ scenario_arg $ channel_arg)

(* --- paths -------------------------------------------------------------------- *)

let paths_cmd =
  Cmd.v
    (Cmd.info "paths" ~doc:"Enumerate the module-level paths for the VPN goal")
    Term.(const (fun () -> ignore (Report.paths9 ppf (Scenarios.build_vpn ()))) $ const ())

(* --- debug -------------------------------------------------------------------- *)

let fault_arg =
  let doc = "Fault to inject before diagnosing: none, cut-link, key-mismatch." in
  Arg.(value & opt string "cut-link" & info [ "fault" ] ~docv:"FAULT" ~doc)

let debug fault =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let gre = List.find Scenarios.pure_gre paths in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal gre in
  Fmt.pr "configured %a; reachable: %b@." Path_finder.pp gre (Scenarios.vpn_reachable v);
  (match fault with
  | "cut-link" ->
      Netsim.Link.cut
        (Option.get (Netsim.Net.find_segment v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B"));
      Fmt.pr "injected fault: cut the A--B wire@."
  | "key-mismatch" ->
      (match
         (Netsim.Device.find_iface_exn v.Scenarios.tb.Netsim.Testbeds.rc "gre-P10-P9")
           .Netsim.Device.if_kind
       with
      | Netsim.Device.Tun t -> t.Netsim.Device.t_ikey <- Some 4242l
      | _ -> ());
      Fmt.pr "injected fault: changed the tunnel ikey at router C out-of-band@."
  | _ -> Fmt.pr "no fault injected@.");
  Fmt.pr "reachable now: %b@.diagnosis:@." (Scenarios.vpn_reachable v);
  List.iter
    (fun (m, ok, detail) ->
      Fmt.pr "  %-20s %s %s@." (Ids.to_string m) (if ok then "ok  " else "FAIL") detail)
    (Nm.diagnose v.Scenarios.nm gre)

let debug_cmd =
  Cmd.v
    (Cmd.info "debug" ~doc:"Inject a fault and let the NM localise it")
    Term.(const debug $ fault_arg)

(* --- selfheal ------------------------------------------------------------------ *)

let ticks_arg =
  let doc = "Reconciliation ticks to run (500 ms of virtual time each)." in
  Arg.(value & opt int 12 & info [ "ticks" ] ~docv:"N" ~doc)

let flap_cycles_arg =
  let doc = "Down/up cycles for the injected core-link flap." in
  Arg.(value & opt int 2 & info [ "cycles" ] ~docv:"N" ~doc)

let selfheal ticks cycles =
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  let chosen =
    match Nm.achieve nm d.Scenarios.dgoal with
    | Ok (_, path, _) ->
        List.find_map
          (fun (v : Path_finder.visit) ->
            let dev = v.Path_finder.v_mod.Ids.dev in
            if dev = "id-B1" || dev = "id-B2" then Some dev else None)
          path.Path_finder.visits
        |> Option.get
    | Error e -> Fmt.failwith "achieve: %s" e
  in
  Fmt.pr "configured through core %s; reachable: %b@." chosen (Scenarios.diamond_reachable d);
  let seg_name = if chosen = "id-B1" then "A--B1" else "A--B2" in
  let seg = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net seg_name in
  Netsim.Link.flap ~cycles seg ~first_down_ns:1_200_000_000L ~down_ns:800_000_000L
    ~up_ns:1_200_000_000L;
  Fmt.pr "scheduled %d flap cycle(s) on %s; running the reconciliation loop...@.@." cycles
    seg_name;
  let mon = Monitor.create nm in
  Monitor.run mon ~ticks;
  List.iter (fun e -> Fmt.pr "%a@." Monitor.pp_event e) (Monitor.events mon);
  Fmt.pr "@.%a@." Monitor.pp_health mon;
  Fmt.pr "link %s: flaps=%d drops: cut=%d loss=%d corrupt=%d mtu=%d@." seg_name
    (Netsim.Link.flaps seg)
    (Netsim.Link.drop_count seg "cut")
    (Netsim.Link.drop_count seg "loss")
    (Netsim.Link.drop_count seg "corrupt")
    (Netsim.Link.drop_count seg "mtu");
  Fmt.pr "monitor event-ring dropped: %d (of limit %d)@." (Monitor.dropped_events mon)
    (Monitor.event_limit mon);
  Fmt.pr "end-to-end reachable: %b@." (Scenarios.diamond_reachable d)

let selfheal_cmd =
  Cmd.v
    (Cmd.info "selfheal"
       ~doc:"Flap a core link of the diamond testbed and watch the reconciliation loop repair it")
    Term.(const selfheal $ ticks_arg $ flap_cycles_arg)

(* --- diagnose ------------------------------------------------------------------ *)

let diag_fault_arg =
  let doc =
    "Fault to inject before the telemetry rounds: cut-link (cut the A--B wire), mpls-xc (erase \
     router B's incoming-label cross-connects), loss (seeded 50% loss on A--B), partition \
     (management-plane partition of router B), or none."
  in
  Arg.(value & opt string "cut-link" & info [ "fault" ] ~docv:"FAULT" ~doc)

let diag_rounds_arg =
  let doc = "Scrape rounds to run after the fault (each pumps one end-to-end exchange)." in
  Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"N" ~doc)

let diagnose fault rounds =
  let v = Scenarios.build_vpn () in
  let obs = Observe.create () in
  ignore
    (Observe.attach_nm obs ~agents:v.Scenarios.agents ~transport:v.Scenarios.transport
       ~admission:v.Scenarios.admission ~faults:v.Scenarios.faults
       ~station:Scenarios.nm_station_id v.Scenarios.nm);
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let pick = if fault = "mpls-xc" then Scenarios.pure_mpls else Scenarios.pure_gre in
  let path = List.find pick paths in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal path in
  Fmt.pr "configured %a; reachable: %b@." Path_finder.pp path (Scenarios.vpn_reachable v);
  let tel = Telemetry.create ~scope:v.Scenarios.scope v.Scenarios.nm in
  (* several exchanges per round so partial loss is statistically visible
     in one delta (a single lost frame looks like a cut) *)
  let pump () =
    for _ = 1 to 4 do
      ignore (Scenarios.vpn_reachable v)
    done
  in
  (* two healthy rounds: the first sets the counter baselines, the second
     records a known-good delta *)
  for _ = 1 to 2 do
    pump ();
    Telemetry.scrape tel
  done;
  let seg () = Netsim.Net.find_segment_exn v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B" in
  (match fault with
  | "cut-link" ->
      Netsim.Link.cut (seg ());
      Fmt.pr "injected fault: cut the A--B wire@."
  | "mpls-xc" ->
      let rb = v.Scenarios.tb.Netsim.Testbeds.rb in
      Hashtbl.iter
        (fun _ (ilm : Netsim.Device.ilm) -> ilm.Netsim.Device.ilm_xc <- None)
        rb.Netsim.Device.mpls.Netsim.Device.ilm_table;
      Fmt.pr "injected fault: erased router B's ILM cross-connects out-of-band@."
  | "loss" ->
      Netsim.Link.set_seed (seg ()) 7L;
      Netsim.Link.set_loss (seg ()) 0.5;
      Fmt.pr "injected fault: 50%% seeded loss on the A--B wire@."
  | "partition" ->
      Mgmt.Faults.partition v.Scenarios.faults "id-B";
      Fmt.pr "injected fault: management-plane partition of router B@."
  | _ -> Fmt.pr "no fault injected@.");
  for _ = 1 to max 1 rounds do
    pump ();
    Telemetry.scrape tel
  done;
  Fmt.pr "reachable now: %b@." (Scenarios.vpn_reachable v);
  Fmt.pr "@.anomalies after %d round(s):@." (Telemetry.rounds tel);
  (match Telemetry.anomalies tel with
  | [] -> Fmt.pr "  (none)@."
  | anoms -> List.iter (fun a -> Fmt.pr "  %a@." Diagnose.pp_anomaly a) anoms);
  Fmt.pr "@.ranked diagnosis:@.";
  (match Telemetry.diagnose_path tel path with
  | [] -> Fmt.pr "  (nothing to report)@."
  | ds -> List.iter (fun d -> Fmt.pr "  @[<v>%a@]@." Diagnose.pp_diagnosis d) ds);
  let c = Mgmt.Faults.counters v.Scenarios.faults in
  Fmt.pr "@.management-channel fault counters:@.";
  Fmt.pr "  dropped=%d duplicated=%d delayed=%d crash-drops=%d partition-drops=%d@."
    c.Mgmt.Faults.dropped c.Mgmt.Faults.duplicated c.Mgmt.Faults.delayed
    c.Mgmt.Faults.crash_drops c.Mgmt.Faults.partition_drops;
  (* bounded rings drop silently under pressure; a diagnosis that ignores
     how much evidence was lost can be confidently wrong *)
  Fmt.pr "@.ring-buffer drops (evidence silently discarded):@.";
  List.iter (fun (ring, n) -> Fmt.pr "  %-24s %d@." ring n) (Observe.ring_dropped obs)

let diagnose_cmd =
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Inject a fault, scrape showPerf telemetry and localise the root cause from counters")
    Term.(const diagnose $ diag_fault_arg $ diag_rounds_arg)

(* --- chaos --------------------------------------------------------------------- *)

let chaos_seed_arg = Common_args.seed ~doc:"Seed for the composite fault schedule." ()

let chaos_seeds_arg =
  Common_args.seeds_opt ~doc:"Run a whole seed set (comma-separated); overrides --seed." ()

let chaos_ticks_arg =
  Common_args.ticks ~doc:"Chaos-phase length in monitor ticks (default 12, or 6 with --quick)." ()

let chaos_intensity_arg =
  Common_args.intensity ~default:0.5 ~doc:"Fault events per tick of schedule." ()

let chaos_quick_arg = Common_args.quick ()

let chaos_replay_arg =
  Common_args.replay ~doc:"Replay a schedule from a sexp repro file instead of generating one." ()

let chaos_weaken_arg =
  let doc =
    "Deliberately weaken an invariant to demonstrate the shrinker: 'oscillation' sets the \
     per-intent reroute bound to zero, so any repair counts as a violation."
  in
  Arg.(value & opt (some (enum [ ("oscillation", `Oscillation) ])) None
       & info [ "weaken" ] ~docv:"INVARIANT" ~doc)

let chaos_out_arg =
  Common_args.out
    ~doc:"Where to write the minimized repro on failure (default chaos_repro_seed<N>.sexp)." ()

let chaos_trace_arg =
  let doc = "Print the monitor's event trace after each run (debugging a repro)." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let chaos seed seeds ticks intensity quick replay weaken out show_trace =
  let ticks = match ticks with Some t -> t | None -> if quick then 6 else 12 in
  let config =
    match weaken with
    | Some `Oscillation ->
        { Chaos.Engine.default_config with Chaos.Engine.oscillation_bound = Some 0 }
    | None -> Chaos.Engine.default_config
  in
  let run_one sched =
    let r = Chaos.Engine.run ~config sched in
    Fmt.pr "seed %d · %d event(s) over %d ticks (+%d tail):@." sched.Chaos.Schedule.seed
      (List.length sched.Chaos.Schedule.events)
      sched.Chaos.Schedule.ticks sched.Chaos.Schedule.tail;
    Fmt.pr "%a" Chaos.Engine.pp_report r;
    if show_trace then List.iter (fun l -> Fmt.pr "    %s@." l) r.Chaos.Engine.trace;
    match Chaos.Engine.failures r with
    | [] -> true
    | fails ->
        let names = List.map (fun v -> v.Chaos.Engine.name) fails in
        Fmt.pr "  shrinking the failure...@.";
        let failing s =
          let r' = Chaos.Engine.run ~config s in
          let names' = List.map (fun v -> v.Chaos.Engine.name) (Chaos.Engine.failures r') in
          List.exists (fun n -> List.mem n names') names
        in
        let { Chaos.Shrink.minimized; runs } = Chaos.Shrink.minimize ~failing sched in
        let path =
          match out with
          | Some p -> p
          | None -> Printf.sprintf "chaos_repro_seed%d.sexp" sched.Chaos.Schedule.seed
        in
        Common_args.write_file path (Chaos.Schedule.to_string minimized);
        Fmt.pr "  minimized to %d event(s) in %d runs:@."
          (List.length minimized.Chaos.Schedule.events)
          runs;
        Fmt.pr "%a" Chaos.Schedule.pp minimized;
        Fmt.pr "  repro written to %s (re-run with: conman chaos --replay %s%s)@." path path
          (match weaken with Some `Oscillation -> " --weaken oscillation" | None -> "");
        false
  in
  let ok =
    match replay with
    | Some file -> run_one (Chaos.Schedule.of_string (Common_args.read_file file))
    | None ->
        let seed_list = match seeds with Some ss -> ss | None -> [ seed ] in
        List.fold_left
          (fun acc s ->
            let sched = Chaos.Schedule.generate ~intensity ~seed:s ~ticks () in
            run_one sched && acc)
          true seed_list
  in
  if ok then Fmt.pr "all invariants held@." else exit 1

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded composite fault schedule (link cuts/loss/flaps, management-channel \
          faults, agent and NM crashes) against the diamond testbed and check the global \
          invariants; on violation, shrink to a minimized sexp repro")
    Term.(
      const chaos $ chaos_seed_arg $ chaos_seeds_arg $ chaos_ticks_arg $ chaos_intensity_arg
      $ chaos_quick_arg $ chaos_replay_arg $ chaos_weaken_arg $ chaos_out_arg
      $ chaos_trace_arg)

(* --- ha ------------------------------------------------------------------------ *)

let ha_seed_arg =
  Common_args.seed_opt
    ~doc:
      "Also run a seeded composite fault schedule (the chaos generator) on top of the \
       handcrafted failover scenarios."
    ()

let ha_quick_arg = Common_args.quick ~doc:"Quick mode: shorter chaos phases (CI smoke)." ()

let ha seed quick =
  let ticks = if quick then 6 else 10 in
  let ev at fault = { Chaos.Schedule.at; fault } in
  let sched ?(ticks = ticks) events =
    { Chaos.Schedule.seed = 0; ticks; tail = 12; events }
  in
  let scenarios =
    [
      ( "primary-crash",
        sched [ ev 2 (Chaos.Schedule.Nm_failover { ticks = if quick then 4 else 6 }) ] );
      ( "split-brain-partition",
        sched [ ev 2 (Chaos.Schedule.Ha_partition { ticks = if quick then 3 else 4 }) ] );
      ( "standby-crash",
        sched [ ev 2 (Chaos.Schedule.Standby_crash { ticks = 3 }) ] );
      ( "double-failover",
        sched ~ticks:12
          [
            ev 2 (Chaos.Schedule.Nm_failover { ticks = 3 });
            ev 8 (Chaos.Schedule.Nm_failover { ticks = 3 });
          ] );
    ]
    @
    match seed with
    | Some s ->
        [ (Printf.sprintf "seeded-%d" s, Chaos.Schedule.generate ~seed:s ~ticks ()) ]
    | None -> []
  in
  Fmt.pr "HA failover scenarios (%s):@." (if quick then "quick" else "full");
  Fmt.pr "  %-22s %-6s %s@." "scenario" "result"
    "failovers detect replayed split-brain lost epoch";
  let run_one (name, s) =
    let r = Chaos.Engine.run s in
    let h = r.Chaos.Engine.ha in
    let fails = Chaos.Engine.failures r in
    Fmt.pr "  %-22s %-6s %9d %6s %8d %11d %4d %5d@." name
      (if fails = [] then "ok" else "FAIL")
      h.Chaos.Engine.failovers
      (match h.Chaos.Engine.detection_ticks with
      | Some t -> string_of_int t ^ "t"
      | None -> "-")
      h.Chaos.Engine.replayed h.Chaos.Engine.split_brain_count h.Chaos.Engine.lost_intents
      h.Chaos.Engine.final_epoch;
    List.iter (fun v -> Fmt.pr "      %a@." Chaos.Engine.pp_verdict v) fails;
    fails = []
  in
  let ok = List.fold_left (fun acc sc -> run_one sc && acc) true scenarios in
  if ok then Fmt.pr "verdict: all HA invariants held@."
  else begin
    Fmt.pr "verdict: HA invariant violated@.";
    exit 1
  end

let ha_cmd =
  Cmd.v
    (Cmd.info "ha"
       ~doc:
         "Exercise NM high availability: primary crash, NM<->standby partition, standby crash \
          and double failover against the diamond testbed, checking failure detection, \
          epoch-fenced leadership (no split brain) and intent preservation across takeover")
    Term.(const ha $ ha_seed_arg $ ha_quick_arg)

(* --- overload ------------------------------------------------------------------ *)

let ov_seeds_arg =
  Common_args.seeds ~default:[ 1; 2; 3; 4; 5 ] ~doc:"Seed set for the storm soak (comma-separated)." ()

let ov_ticks_arg =
  Common_args.ticks
    ~doc:"Chaos-phase length in monitor ticks (default 10, or 6 with --quick)." ()

let ov_intensity_arg =
  Common_args.intensity ~default:0.6
    ~doc:"Storm intensity in [0,1] for the Overload event forced into every schedule." ()

let ov_quick_arg = Common_args.quick ()

let overload seeds ticks intensity quick =
  let ticks = match ticks with Some t -> t | None -> if quick then 6 else 10 in
  let force s =
    let stormy =
      List.exists
        (fun (e : Chaos.Schedule.event) ->
          match e.Chaos.Schedule.fault with Chaos.Schedule.Overload _ -> true | _ -> false)
        s.Chaos.Schedule.events
    in
    if stormy then s
    else
      let ev =
        { Chaos.Schedule.at = 1; fault = Chaos.Schedule.Overload { intensity; ticks = 3 } }
      in
      {
        s with
        Chaos.Schedule.events =
          List.stable_sort
            (fun (a : Chaos.Schedule.event) b -> compare a.Chaos.Schedule.at b.Chaos.Schedule.at)
            (ev :: s.Chaos.Schedule.events);
      }
  in
  Fmt.pr "overload soak (%d seeds, %d ticks, storm intensity %.2f):@." (List.length seeds)
    ticks intensity;
  Fmt.pr "  %-6s %-6s %s@." "seed" "result" "storm  p0-shed p1-shed p3-shed  converged";
  let run_one seed =
    let r = Chaos.Engine.run (force (Chaos.Schedule.generate ~seed ~ticks ())) in
    let o = r.Chaos.Engine.overload in
    let fails = Chaos.Engine.failures r in
    Fmt.pr "  %-6d %-6s %5d %8d %7d %7d  %s@." seed
      (if fails = [] then "ok" else "FAIL")
      o.Chaos.Engine.storm_frames o.Chaos.Engine.p0_shed o.Chaos.Engine.p1_shed
      (o.Chaos.Engine.p3_shed + o.Chaos.Engine.p3_expired)
      (match r.Chaos.Engine.converged_tick with
      | Some t -> Printf.sprintf "tail+%d" t
      | None -> "NO");
    List.iter (fun v -> Fmt.pr "      %a@." Chaos.Engine.pp_verdict v) fails;
    fails = []
  in
  let ok = List.fold_left (fun acc s -> run_one s && acc) true seeds in
  if ok then Fmt.pr "verdict: graceful degradation held@."
  else begin
    Fmt.pr "verdict: overload invariant violated@.";
    exit 1
  end

let overload_cmd =
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Force a telemetry storm (Overload event) into seeded fault schedules and check \
          graceful degradation: heartbeats and repair scripts are never shed, telemetry is \
          shed and backs off, no spurious failovers, and every schedule still converges")
    Term.(const overload $ ov_seeds_arg $ ov_ticks_arg $ ov_intensity_arg $ ov_quick_arg)

(* --- federation ---------------------------------------------------------------- *)

let fed_seeds_arg =
  Common_args.seeds
    ~default:(List.init 20 (fun i -> i + 1))
    ~doc:"Seed set for the two-domain soak (comma-separated)." ()

let fed_ticks_arg =
  Common_args.ticks ~doc:"Chaos-phase length in ticks (default 10, or 6 with --quick)." ()

let fed_intensity_arg =
  Common_args.intensity ~default:0.5
    ~doc:"Background channel-fault events per tick (the NM crash and partition are always forced)."
    ()

let fed_quick_arg = Common_args.quick ()

let fed_replay_arg =
  Common_args.replay ~doc:"Replay a schedule from a sexp repro file instead of generating one." ()

let fed_out_arg =
  Common_args.out
    ~doc:"Where to write the minimized repro on failure (default fed_repro_seed<N>.sexp)." ()

let federation seeds ticks intensity quick replay out =
  let ticks = match ticks with Some t -> t | None -> if quick then 6 else 10 in
  let seeds = if quick then List.filteri (fun i _ -> i < 5) seeds else seeds in
  let run_one sched =
    let r = Chaos.Fed_engine.run sched in
    let fails = Chaos.Fed_engine.failures r in
    Fmt.pr "  %-6d %-6s %8d %8d %6d %7d %7d  %s@." sched.Chaos.Schedule.seed
      (if fails = [] then "ok" else "FAIL")
      r.Chaos.Fed_engine.replans r.Chaos.Fed_engine.backouts r.Chaos.Fed_engine.relays
      r.Chaos.Fed_engine.half_configured r.Chaos.Fed_engine.foreign_writes
      (match r.Chaos.Fed_engine.converged_tick with
      | Some t -> Printf.sprintf "tail+%d" t
      | None -> "NO");
    List.iter (fun v -> Fmt.pr "      %a@." Chaos.Fed_engine.pp_verdict v) fails;
    match fails with
    | [] -> true
    | fails ->
        let names = List.map (fun (v : Chaos.Fed_engine.verdict) -> v.Chaos.Fed_engine.name) fails in
        Fmt.pr "  shrinking the failure...@.";
        let failing s =
          let names' =
            List.map
              (fun (v : Chaos.Fed_engine.verdict) -> v.Chaos.Fed_engine.name)
              (Chaos.Fed_engine.failures (Chaos.Fed_engine.run s))
          in
          List.exists (fun n -> List.mem n names') names
        in
        let { Chaos.Shrink.minimized; runs } = Chaos.Shrink.minimize ~failing sched in
        let path =
          match out with
          | Some p -> p
          | None -> Printf.sprintf "fed_repro_seed%d.sexp" sched.Chaos.Schedule.seed
        in
        Common_args.write_file path (Chaos.Schedule.to_string minimized);
        Fmt.pr "  minimized to %d event(s) in %d runs:@."
          (List.length minimized.Chaos.Schedule.events)
          runs;
        Fmt.pr "%a" Chaos.Schedule.pp minimized;
        Fmt.pr "  repro written to %s (re-run with: conman federation --replay %s)@." path path;
        false
  in
  let ok =
    match replay with
    | Some file ->
        Fmt.pr "  %-6s %-6s %s@." "seed" "result" "replans backouts relays half-cfg foreign  converged";
        run_one (Chaos.Schedule.of_string (Common_args.read_file file))
    | None ->
        Fmt.pr "federated two-domain soak (%d seeds, %d ticks, NM crash + partition forced):@."
          (List.length seeds) ticks;
        Fmt.pr "  %-6s %-6s %s@." "seed" "result" "replans backouts relays half-cfg foreign  converged";
        List.fold_left
          (fun acc s -> run_one (Chaos.Fed_engine.generate ~intensity ~seed:s ~ticks ()) && acc)
          true seeds
  in
  if ok then Fmt.pr "verdict: all federation invariants held@."
  else begin
    Fmt.pr "verdict: federation invariant violated@.";
    exit 1
  end

let federation_cmd =
  Cmd.v
    (Cmd.info "federation"
       ~doc:
         "Run the federated two-domain chaos soak: each seeded schedule forces a peer-NM crash \
          and an inter-domain partition while a cross-domain goal is being achieved, and checks \
          that the goal converges, no stitched pipe is left half-configured after a back-out, \
          neither NM writes outside its domain, and the final configuration matches a single-NM \
          run; on violation, shrink to a minimized sexp repro")
    Term.(
      const federation $ fed_seeds_arg $ fed_ticks_arg $ fed_intensity_arg $ fed_quick_arg
      $ fed_replay_arg $ fed_out_arg)

(* --- trace --------------------------------------------------------------------- *)

module Fs = Federation.Fed_scenarios

let trace_seed_arg =
  Common_args.seed ~doc:"Seed for the chaos schedule driven under the traced goal." ()

let trace_ticks_arg =
  Common_args.ticks ~doc:"Chaos-phase length in ticks (default 10)." ()

let trace_clean_arg =
  let doc = "Trace a fault-free convergence instead of a chaos run." in
  Arg.(value & flag & info [ "clean" ] ~doc)

let trace_goal_arg =
  let doc =
    "Goal id (trace root span id) to render. Defaults to the cross-domain goal; 'all' renders \
     every traced goal."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"GOAL" ~doc)

(* Renders the end-to-end causal trace of the cross-domain federated goal:
   both NMs' collectors are stitched, so the tree spans the coordinator's
   plan/commit phases, the peer's delegated execution and every agent's
   script run — under chaos, also the retries, sheds and replays. *)
let trace goal seed ticks clean =
  let ticks = Option.value ~default:10 ticks in
  let render_goals cols default_goal =
    let goals =
      match goal with
      | None -> (match default_goal with Some g -> [ g ] | None -> Obs.Trace.goals cols)
      | Some "all" -> Obs.Trace.goals cols
      | Some g -> (
          match int_of_string_opt g with
          | Some g -> [ g ]
          | None -> Fmt.failwith "trace: GOAL must be a goal id or 'all' (got %s)" g)
    in
    List.iter
      (fun g ->
        Fmt.pr "goal %d (%d span(s), %s):@.%s@." g
          (List.length (Obs.Trace.goal_spans cols g))
          (if Obs.Trace.connected cols g then "connected" else "ORPHANED")
          (Obs.Trace.render cols g))
      goals;
    List.for_all (fun g -> Obs.Trace.connected cols g) goals
  in
  let ok =
    if clean then begin
      Nm.set_incarnations 0;
      Obs.Trace.reset_ids ();
      let t = Fs.build_two_domain 4 in
      let obs = Fs.instrument t in
      let gid = Federation.Fed.submit t.Fs.fwest t.Fs.fgoal in
      let converged = Fs.converge ~obs t gid in
      Fmt.pr "fault-free two-domain run: converged=%b@.@." converged;
      let root = Federation.Fed.goal_trace t.Fs.fwest gid in
      converged
      && render_goals (Observe.collectors obs)
           (Option.map (fun c -> c.Obs.Trace.goal) root)
    end
    else begin
      let sched = Chaos.Fed_engine.generate ~seed ~ticks () in
      let r = Chaos.Fed_engine.run sched in
      Fmt.pr
        "two-domain chaos run (seed %d, %d ticks): converged=%b orphans=%d connected=%b@.@."
        seed ticks
        (r.Chaos.Fed_engine.converged_tick <> None)
        r.Chaos.Fed_engine.orphan_spans r.Chaos.Fed_engine.trace_connected;
      Fmt.pr "%s@." r.Chaos.Fed_engine.goal_trace;
      Chaos.Fed_engine.failures r = []
    end
  in
  if not ok then exit 1

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Achieve the cross-domain federated goal (under a seeded chaos schedule, or --clean) \
          and render its end-to-end causal span tree across both NMs, their agents and the \
          transport — one connected tree, or a nonzero exit")
    Term.(const trace $ trace_goal_arg $ trace_seed_arg $ trace_ticks_arg $ trace_clean_arg)

(* --- metrics ------------------------------------------------------------------- *)

let metrics_clean_arg =
  let doc = "Dump metrics from a fault-free convergence instead of a chaos run." in
  Arg.(value & flag & info [ "clean" ] ~doc)

let metrics_seed_arg = Common_args.seed ~doc:"Seed for the chaos schedule." ()
let metrics_ticks_arg = Common_args.ticks ~doc:"Chaos-phase length in ticks (default 10)." ()

(* Dumps the unified registry — every subsystem's counters under uniform
   subsystem.name keys plus the per-phase latency histograms — as
   jq-friendly JSON on stdout. *)
let metrics seed ticks clean =
  let ticks = Option.value ~default:10 ticks in
  if clean then begin
    Nm.set_incarnations 0;
    Obs.Trace.reset_ids ();
    let t = Fs.build_two_domain 4 in
    let obs = Fs.instrument t in
    let gid = Federation.Fed.submit t.Fs.fwest t.Fs.fgoal in
    ignore (Fs.converge ~obs t gid);
    print_string (Obs.Registry.to_json (Observe.registry obs))
  end
  else
    let r = Chaos.Fed_engine.run (Chaos.Fed_engine.generate ~seed ~ticks ()) in
    print_string r.Chaos.Fed_engine.metrics_json

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the two-domain federated deployment (chaos or --clean) and dump the unified \
          metrics registry — all subsystem counters and goal-phase latency histograms — as \
          jq-friendly JSON")
    Term.(const metrics $ metrics_seed_arg $ metrics_ticks_arg $ metrics_clean_arg)

(* --- main --------------------------------------------------------------------- *)

let () =
  let info =
    Cmd.info "conman" ~version:"1.0.0"
      ~doc:"CONMan: Complexity Oblivious Network Management (SIGCOMM 2007), reproduced in OCaml"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            repro_cmd; demo_cmd; paths_cmd; debug_cmd; selfheal_cmd; diagnose_cmd; chaos_cmd;
            ha_cmd; overload_cmd; federation_cmd; trace_cmd; metrics_cmd;
          ]))
