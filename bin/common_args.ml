(* Cmdliner terms shared by the soak-style subcommands (chaos, ha,
   overload, federation). Each knob is a constructor rather than a value
   because defaults and docs differ per command; the flag names and
   docvars stay uniform so `conman X --seed/--ticks/--quick/--intensity`
   means the same thing everywhere. *)

open Cmdliner

let seed ?(default = 1) ~doc () = Arg.(value & opt int default & info [ "seed" ] ~docv:"N" ~doc)

let seed_opt ~doc () = Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let seeds ~default ~doc () =
  Arg.(value & opt (list int) default & info [ "seeds" ] ~docv:"NS" ~doc)

let seeds_opt ~doc () =
  Arg.(value & opt (some (list int)) None & info [ "seeds" ] ~docv:"NS" ~doc)

let ticks ~doc () = Arg.(value & opt (some int) None & info [ "ticks" ] ~docv:"T" ~doc)

let intensity ~default ~doc () =
  Arg.(value & opt float default & info [ "intensity" ] ~docv:"F" ~doc)

let quick ?(doc = "Quick mode: shorter schedules (CI smoke).") () =
  Arg.(value & flag & info [ "quick" ] ~doc)

let replay ~doc () = Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)

let out ~doc () = Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_string oc "\n";
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  String.trim contents
