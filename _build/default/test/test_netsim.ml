(* Integration tests for the simulated data plane: Ethernet switching with
   VLAN/QinQ, ARP, IP forwarding with policy routing, GRE/IP-IP tunnels and
   MPLS label switching. These exercise exactly the low-level machinery the
   CONMan modules configure. *)

open Packet
open Netsim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let ip = Ipv4_addr.of_string
let pfx = Prefix.of_string

let route ?via ?dev ?mpls dst =
  { Device.rt_dst = pfx dst; rt_via = via; rt_dev = dev; rt_mpls = mpls }

(* A host with a single port and address. *)
let host net ~name ~addr ~prefix =
  let d = Net.add_device net ~id:("id-" ^ name) ~name in
  let _ = Device.add_port d in
  Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx prefix);
  d

let router net ~name n_ports =
  let d = Net.add_device net ~id:("id-" ^ name) ~name in
  for _ = 1 to n_ports do
    ignore (Device.add_port d)
  done;
  d.Device.ip_forward <- true;
  d

let ping net ~from ~src ~dst = Ping.reachable net ~from ~src:(ip src) ~dst:(ip dst) ()

(* --- basic connectivity ------------------------------------------------- *)

let test_cable_ping () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.0.1" ~prefix:"10.0.0.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.0.2" ~prefix:"10.0.0.0/24" in
  let _ = Net.connect net (h1, 0) (h2, 0) in
  check tbool "h1 -> h2" true (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2");
  check tbool "h2 -> h1" true (ping net ~from:h2 ~src:"10.0.0.2" ~dst:"10.0.0.1")

let test_switch_ping_and_learning () =
  let net = Net.create () in
  let sw = Net.add_device net ~switching:true ~id:"id-sw" ~name:"sw" in
  for _ = 1 to 3 do
    ignore (Device.add_port sw)
  done;
  let h1 = host net ~name:"h1" ~addr:"10.0.0.1" ~prefix:"10.0.0.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.0.2" ~prefix:"10.0.0.0/24" in
  let h3 = host net ~name:"h3" ~addr:"10.0.0.3" ~prefix:"10.0.0.0/24" in
  let _ = Net.connect net (h1, 0) (sw, 0) in
  let _ = Net.connect net (h2, 0) (sw, 1) in
  let _ = Net.connect net (h3, 0) (sw, 2) in
  check tbool "h1 -> h2 through switch" true (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2");
  (* After learning, further unicast traffic must not reach h3's port. *)
  let to_h3_before = Counters.get (Device.port sw 2).Device.port_counters "tx_frames" in
  check tbool "again" true (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2");
  let to_h3_after = Counters.get (Device.port sw 2).Device.port_counters "tx_frames" in
  check tint "no flood to h3 once learned" to_h3_before to_h3_after

let test_router_forwarding () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r = router net ~name:"r" 2 in
  Device.add_addr r ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r, 0) in
  let _ = Net.connect net (h2, 0) (r, 1) in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  Device.add_route h2 (route ~via:(ip "10.0.2.1") "0.0.0.0/0");
  check tbool "cross subnet" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2")

let test_forwarding_disabled () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r = router net ~name:"r" 2 in
  r.Device.ip_forward <- false;
  Device.add_addr r ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r, 0) in
  let _ = Net.connect net (h2, 0) (r, 1) in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  Device.add_route h2 (route ~via:(ip "10.0.2.1") "0.0.0.0/0");
  check tbool "dropped" false (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  check tbool "counted" true (Counters.get r.Device.dev_counters "ip_not_forwarding_drop" > 0)

let test_link_cut_and_restore () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.0.1" ~prefix:"10.0.0.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.0.2" ~prefix:"10.0.0.0/24" in
  let seg = Net.connect net (h1, 0) (h2, 0) in
  check tbool "up" true (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2");
  Link.cut seg;
  check tbool "cut" false (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2");
  Link.restore seg;
  check tbool "restored" true (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2")

let test_ttl_expiry () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r = router net ~name:"r" 2 in
  Device.add_addr r ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r, 0) in
  let _ = Net.connect net (h2, 0) (r, 1) in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  let hdr =
    Ipv4.make ~ttl:1 ~proto:Ip_proto.Icmp ~src:(ip "10.0.1.2") ~dst:(ip "10.0.2.2") ()
  in
  Datapath.ip_send h1 hdr (Icmp.encode (Icmp.Echo_request { id = 1; seq = 1 }) Bytes.empty);
  let _ = Net.run net in
  check tbool "ttl drop counted" true (Counters.get r.Device.dev_counters "ttl_exceeded" > 0)

(* --- policy routing ------------------------------------------------------ *)

let test_policy_routing () =
  (* Two parallel paths from r0 to h2's subnet; a policy rule steers a
     specific prefix through the upper router while main routes downward. *)
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r0 = router net ~name:"r0" 3 in
  let up = router net ~name:"up" 2 in
  let down = router net ~name:"down" 2 in
  Device.add_addr r0 ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r0 ~iface:"eth1" ~addr:(ip "192.168.1.1") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr r0 ~iface:"eth2" ~addr:(ip "192.168.2.1") ~prefix:(pfx "192.168.2.0/30");
  Device.add_addr up ~iface:"eth0" ~addr:(ip "192.168.1.2") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr up ~iface:"eth1" ~addr:(ip "10.0.2.3") ~prefix:(pfx "10.0.2.0/24");
  Device.add_addr down ~iface:"eth0" ~addr:(ip "192.168.2.2") ~prefix:(pfx "192.168.2.0/30");
  Device.add_addr down ~iface:"eth1" ~addr:(ip "10.0.2.4") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r0, 0) in
  let _ = Net.connect net (r0, 1) (up, 0) in
  let _ = Net.connect net (r0, 2) (down, 0) in
  let _ = Net.lan net ~name:"dstlan" [ (h2, 0); (up, 1); (down, 1) ] in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  Device.add_route h2 (route ~via:(ip "10.0.2.3") "0.0.0.0/0");
  Device.add_route up (route ~via:(ip "192.168.1.1") "10.0.1.0/24");
  Device.add_route down (route ~via:(ip "192.168.2.1") "10.0.1.0/24");
  (* main: everything via down *)
  Device.add_route r0 (route ~via:(ip "192.168.2.2") "10.0.2.0/24");
  (* policy: 10.0.2.2/32 via up *)
  Device.register_table r0 "special";
  Device.add_route r0 ~table:"special" (route ~via:(ip "192.168.1.2") "0.0.0.0/0");
  Device.add_rule r0
    { Device.rl_sel = Device.To_prefix (pfx "10.0.2.2/32"); rl_table = "special"; rl_prio = 10 };
  check tbool "reachable" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  (* The policy path must have carried the traffic. *)
  check tbool "via up" true (Counters.get up.Device.dev_counters "ip_forwarded" > 0);
  check tint "not via down" 0 (Counters.get down.Device.dev_counters "ip_forwarded")

(* --- tunnels ------------------------------------------------------------- *)

(* Emulates the paper's A--B--C chain: GRE tunnel between edge routers r1 and
   r3 across core router r2, carrying customer traffic h1 <-> h2. *)
let gre_testbed ?(ikey = Some 1001l) ?(okey = Some 2001l) ?(mismatch = false) () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r1 = router net ~name:"r1" 2 in
  let r2 = router net ~name:"r2" 2 in
  let r3 = router net ~name:"r3" 2 in
  Device.add_addr r1 ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r1 ~iface:"eth1" ~addr:(ip "204.9.168.1") ~prefix:(pfx "204.9.168.0/30");
  Device.add_addr r2 ~iface:"eth0" ~addr:(ip "204.9.168.2") ~prefix:(pfx "204.9.168.0/30");
  Device.add_addr r2 ~iface:"eth1" ~addr:(ip "204.9.169.2") ~prefix:(pfx "204.9.169.0/30");
  Device.add_addr r3 ~iface:"eth0" ~addr:(ip "204.9.169.1") ~prefix:(pfx "204.9.169.0/30");
  Device.add_addr r3 ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r1, 0) in
  let _ = Net.connect net (r1, 1) (r2, 0) in
  let _ = Net.connect net (r2, 1) (r3, 0) in
  let _ = Net.connect net (r3, 1) (h2, 0) in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  Device.add_route h2 (route ~via:(ip "10.0.2.1") "0.0.0.0/0");
  (* outer routing between tunnel endpoints *)
  Device.add_route r1 (route ~via:(ip "204.9.168.2") "204.9.169.0/30");
  Device.add_route r3 (route ~via:(ip "204.9.169.2") "204.9.168.0/30");
  (* the tunnels *)
  let t1 =
    Device.add_tunnel r1 ~name:"greA" ~mode:Device.Gre_mode ~local:(ip "204.9.168.1")
      ~remote:(ip "204.9.169.1") ()
  in
  let t3 =
    Device.add_tunnel r3 ~name:"greC" ~mode:Device.Gre_mode ~local:(ip "204.9.169.1")
      ~remote:(ip "204.9.168.1") ()
  in
  (match (t1.Device.if_kind, t3.Device.if_kind) with
  | Device.Tun a, Device.Tun b ->
      a.Device.t_ikey <- ikey;
      a.Device.t_okey <- okey;
      b.Device.t_ikey <- (if mismatch then Some 9999l else okey);
      b.Device.t_okey <- ikey;
      a.Device.t_oseq <- true;
      b.Device.t_iseq <- true;
      a.Device.t_ocsum <- true;
      b.Device.t_icsum <- true
  | _ -> assert false);
  t1.Device.if_up <- true;
  t3.Device.if_up <- true;
  Device.add_route r1 (route ~dev:"greA" "10.0.2.0/24");
  Device.add_route r3 (route ~dev:"greC" "10.0.1.0/24");
  (net, h1, h2, r1, r2, r3)

let test_gre_tunnel () =
  let net, h1, _h2, _r1, r2, _r3 = gre_testbed () in
  check tbool "through tunnel" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  (* the core router must have seen only the outer header (it has no route
     for customer space, so success proves encapsulation) *)
  check tbool "core forwarded" true (Counters.get r2.Device.dev_counters "ip_forwarded" > 0)

let test_gre_key_mismatch () =
  let net, h1, _, _, _, r3 = gre_testbed ~mismatch:true () in
  check tbool "dropped on key mismatch" false (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  check tbool "drop counted" true (Counters.get r3.Device.dev_counters "gre_check_drop" > 0)

let test_gre_sequence_replay () =
  let net, h1, _, _r1, _, r3 = gre_testbed () in
  check tbool "first ok" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  (* Pretend the receiver has already seen a much later sequence number:
     subsequent (replayed/reordered) packets must be dropped. *)
  (match (Device.find_iface_exn r3 "greC").Device.if_kind with
  | Device.Tun t -> t.Device.t_rx_seq <- Some 1000l
  | _ -> assert false);
  check tbool "stale seq dropped" false (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2")

let test_gre_counters_report () =
  let net, h1, _, r1, _, _ = gre_testbed () in
  check tbool "ping" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  let greA = Device.find_iface_exn r1 "greA" in
  check tbool "tx counted" true (Counters.get greA.Device.if_counters "tx_packets" > 0);
  check tbool "rx counted" true (Counters.get greA.Device.if_counters "rx_packets" > 0)

let test_ipip_tunnel () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r1 = router net ~name:"r1" 2 in
  let r2 = router net ~name:"r2" 2 in
  Device.add_addr r1 ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r1 ~iface:"eth1" ~addr:(ip "192.168.0.1") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr r2 ~iface:"eth0" ~addr:(ip "192.168.0.2") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr r2 ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r1, 0) in
  let _ = Net.connect net (r1, 1) (r2, 0) in
  let _ = Net.connect net (r2, 1) (h2, 0) in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  Device.add_route h2 (route ~via:(ip "10.0.2.1") "0.0.0.0/0");
  let t1 =
    Device.add_tunnel r1 ~name:"tun0" ~mode:Device.Ipip_mode ~local:(ip "192.168.0.1")
      ~remote:(ip "192.168.0.2") ()
  in
  let t2 =
    Device.add_tunnel r2 ~name:"tun0" ~mode:Device.Ipip_mode ~local:(ip "192.168.0.2")
      ~remote:(ip "192.168.0.1") ()
  in
  t1.Device.if_up <- true;
  t2.Device.if_up <- true;
  Device.add_route r1 (route ~dev:"tun0" "10.0.2.0/24");
  Device.add_route r2 (route ~dev:"tun0" "10.0.1.0/24");
  check tbool "ipip" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2")

(* --- MPLS ---------------------------------------------------------------- *)

let test_mpls_lsp () =
  let net = Net.create () in
  let h1 = host net ~name:"h1" ~addr:"10.0.1.2" ~prefix:"10.0.1.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.2.2" ~prefix:"10.0.2.0/24" in
  let r1 = router net ~name:"r1" 2 in
  let r2 = router net ~name:"r2" 2 in
  let r3 = router net ~name:"r3" 2 in
  Device.add_addr r1 ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r1 ~iface:"eth1" ~addr:(ip "204.9.168.1") ~prefix:(pfx "204.9.168.0/30");
  Device.add_addr r2 ~iface:"eth0" ~addr:(ip "204.9.168.2") ~prefix:(pfx "204.9.168.0/30");
  Device.add_addr r2 ~iface:"eth1" ~addr:(ip "204.9.169.2") ~prefix:(pfx "204.9.169.0/30");
  Device.add_addr r3 ~iface:"eth0" ~addr:(ip "204.9.169.1") ~prefix:(pfx "204.9.169.0/30");
  Device.add_addr r3 ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r1, 0) in
  let _ = Net.connect net (r1, 1) (r2, 0) in
  let _ = Net.connect net (r2, 1) (r3, 0) in
  let _ = Net.connect net (r3, 1) (h2, 0) in
  Device.add_route h1 (route ~via:(ip "10.0.1.1") "0.0.0.0/0");
  Device.add_route h2 (route ~via:(ip "10.0.2.1") "0.0.0.0/0");
  List.iter (fun r -> r.Device.mpls.Device.mpls_enabled <- true) [ r1; r2; r3 ];
  (* forward LSP h1 -> h2: r1 pushes 2001, r2 swaps to 3001, r3 pops+delivers *)
  let nh_fwd =
    Device.mpls_add_nhlfe r1 ~push:[ 2001 ] ~dev_out:"eth1" ~via:(ip "204.9.168.2") ()
  in
  Device.add_route r1 (route ~mpls:nh_fwd.Device.nh_key "10.0.2.0/24");
  Device.mpls_set_labelspace r2 ~iface:"eth0" ~space:0;
  let _ = Device.mpls_add_ilm r2 ~label:2001 ~space:0 in
  let nh_swap =
    Device.mpls_add_nhlfe r2 ~push:[ 3001 ] ~dev_out:"eth1" ~via:(ip "204.9.169.1") ()
  in
  Device.mpls_xc r2 ~label:2001 ~space:0 ~nhlfe_key:nh_swap.Device.nh_key;
  Device.mpls_set_labelspace r3 ~iface:"eth0" ~space:0;
  let _ = Device.mpls_add_ilm r3 ~label:3001 ~space:0 in
  let nh_pop = Device.mpls_add_nhlfe r3 ~push:[] ~dev_out:"local" ~via:Ipv4_addr.any () in
  Device.mpls_xc r3 ~label:3001 ~space:0 ~nhlfe_key:nh_pop.Device.nh_key;
  (* reverse LSP h2 -> h1 *)
  let nh_rev =
    Device.mpls_add_nhlfe r3 ~push:[ 10002 ] ~dev_out:"eth0" ~via:(ip "204.9.169.2") ()
  in
  Device.add_route r3 (route ~mpls:nh_rev.Device.nh_key "10.0.1.0/24");
  Device.mpls_set_labelspace r2 ~iface:"eth1" ~space:0;
  let _ = Device.mpls_add_ilm r2 ~label:10002 ~space:0 in
  let nh_swap_rev =
    Device.mpls_add_nhlfe r2 ~push:[ 10001 ] ~dev_out:"eth0" ~via:(ip "204.9.168.1") ()
  in
  Device.mpls_xc r2 ~label:10002 ~space:0 ~nhlfe_key:nh_swap_rev.Device.nh_key;
  Device.mpls_set_labelspace r1 ~iface:"eth1" ~space:0;
  let _ = Device.mpls_add_ilm r1 ~label:10001 ~space:0 in
  let nh_pop_rev = Device.mpls_add_nhlfe r1 ~push:[] ~dev_out:"local" ~via:Ipv4_addr.any () in
  Device.mpls_xc r1 ~label:10001 ~space:0 ~nhlfe_key:nh_pop_rev.Device.nh_key;
  check tbool "over LSP" true (ping net ~from:h1 ~src:"10.0.1.2" ~dst:"10.0.2.2");
  check tbool "labels switched at core" true
    (Counters.get r2.Device.dev_counters "ip_forwarded" = 0)

let test_mpls_no_ilm_drops () =
  let net = Net.create () in
  let r1 = router net ~name:"r1" 1 in
  let r2 = router net ~name:"r2" 1 in
  Device.add_addr r1 ~iface:"eth0" ~addr:(ip "192.168.0.1") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr r2 ~iface:"eth0" ~addr:(ip "192.168.0.2") ~prefix:(pfx "192.168.0.0/30");
  let _ = Net.connect net (r1, 0) (r2, 0) in
  List.iter (fun r -> r.Device.mpls.Device.mpls_enabled <- true) [ r1; r2 ];
  Device.mpls_set_labelspace r2 ~iface:"eth0" ~space:0;
  let nh = Device.mpls_add_nhlfe r1 ~push:[ 777 ] ~dev_out:"eth0" ~via:(ip "192.168.0.2") () in
  Device.add_route r1 (route ~mpls:nh.Device.nh_key "10.9.9.0/24");
  let hdr = Ipv4.make ~proto:Ip_proto.Icmp ~src:(ip "192.168.0.1") ~dst:(ip "10.9.9.1") () in
  Datapath.ip_send r1 hdr (Icmp.encode (Icmp.Echo_request { id = 1; seq = 1 }) Bytes.empty);
  let _ = Net.run net in
  check tbool "unknown label dropped" true
    (Counters.get r2.Device.dev_counters "mpls_no_ilm_drop" > 0)

(* --- VLANs ---------------------------------------------------------------- *)

let qinq_testbed () =
  let net = Net.create () in
  let mk_switch name =
    let d = Net.add_device net ~switching:true ~id:("id-" ^ name) ~name in
    for _ = 1 to 2 do
      ignore (Device.add_port d)
    done;
    d
  in
  let swa = mk_switch "swa" and swb = mk_switch "swb" and swc = mk_switch "swc" in
  let h1 = host net ~name:"h1" ~addr:"10.0.0.1" ~prefix:"10.0.0.0/24" in
  let h2 = host net ~name:"h2" ~addr:"10.0.0.2" ~prefix:"10.0.0.0/24" in
  let _ = Net.connect net (h1, 0) (swa, 0) in
  let _ = Net.connect net ~mtu:1526 (swa, 1) (swb, 0) in
  let _ = Net.connect net ~mtu:1526 (swb, 1) (swc, 0) in
  let _ = Net.connect net (h2, 0) (swc, 1) in
  (net, swa, swb, swc, h1, h2)

let config_qinq ?(mtu = 1504) swa swb swc =
  (Device.port swa 0).Device.port_mode <- Device.Dot1q_tunnel 22;
  (Device.port swa 1).Device.port_mode <- Device.Trunk { allowed = [ 22 ]; native = None };
  (Device.port swb 0).Device.port_mode <- Device.Trunk { allowed = [ 22 ]; native = None };
  (Device.port swb 1).Device.port_mode <- Device.Trunk { allowed = [ 22 ]; native = None };
  (Device.port swc 0).Device.port_mode <- Device.Dot1q_tunnel 22;
  (Device.port swc 1).Device.port_mode <- Device.Trunk { allowed = [ 22 ]; native = None };
  List.iter (fun sw -> (Device.vlan_def sw 22).Device.vd_mtu <- mtu) [ swa; swb; swc ]

(* Wires are crossed on purpose in config_qinq: on swc, port 0 faces swb.
   Correct it here. *)
let config_qinq_fixed ?mtu swa swb swc =
  config_qinq ?mtu swa swb swc;
  (Device.port swc 0).Device.port_mode <- Device.Trunk { allowed = [ 22 ]; native = None };
  (Device.port swc 1).Device.port_mode <- Device.Dot1q_tunnel 22

let test_vlan_tunnel () =
  let net, swa, swb, swc, h1, _h2 = qinq_testbed () in
  config_qinq_fixed swa swb swc;
  check tbool "through QinQ" true (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2")

let test_vlan_isolation () =
  let net, swa, swb, swc, h1, h2 = qinq_testbed () in
  config_qinq_fixed swa swb swc;
  (* Move h2's attachment into a different customer VLAN: no leakage. *)
  (Device.port swc 1).Device.port_mode <- Device.Dot1q_tunnel 23;
  ignore h2;
  check tbool "isolated" false (ping net ~from:h1 ~src:"10.0.0.1" ~dst:"10.0.0.2")

let test_vlan_mtu () =
  let net, swa, swb, swc, h1, _h2 = qinq_testbed () in
  (* Default 1500-byte VLAN MTU: a full-size tagged customer frame no longer
     fits once the outer tag is pushed (the paper's "ensure MTU is set
     properly" comment). *)
  config_qinq_fixed ~mtu:1500 swa swb swc;
  let big = Bytes.make 1472 'x' in
  (* 1472 payload + 8 icmp + 20 ip = 1500-byte ethernet payload: still fits
     with one tag (<= mtu + 4). *)
  check tbool "exactly fits" true
    (Ping.reachable ~payload:big net ~from:h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ())

let () =
  Alcotest.run "netsim"
    [
      ( "ethernet",
        [
          Alcotest.test_case "ping over cable" `Quick test_cable_ping;
          Alcotest.test_case "switch + learning" `Quick test_switch_ping_and_learning;
          Alcotest.test_case "link cut/restore" `Quick test_link_cut_and_restore;
        ] );
      ( "ip",
        [
          Alcotest.test_case "router forwarding" `Quick test_router_forwarding;
          Alcotest.test_case "forwarding disabled" `Quick test_forwarding_disabled;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "policy routing" `Quick test_policy_routing;
        ] );
      ( "tunnels",
        [
          Alcotest.test_case "gre end to end" `Quick test_gre_tunnel;
          Alcotest.test_case "gre key mismatch" `Quick test_gre_key_mismatch;
          Alcotest.test_case "gre stale sequence" `Quick test_gre_sequence_replay;
          Alcotest.test_case "gre counters" `Quick test_gre_counters_report;
          Alcotest.test_case "ipip end to end" `Quick test_ipip_tunnel;
        ] );
      ( "mpls",
        [
          Alcotest.test_case "three-router LSP" `Quick test_mpls_lsp;
          Alcotest.test_case "unknown label drops" `Quick test_mpls_no_ilm_drops;
        ] );
      ( "vlan",
        [
          Alcotest.test_case "qinq tunnel" `Quick test_vlan_tunnel;
          Alcotest.test_case "vlan isolation" `Quick test_vlan_isolation;
          Alcotest.test_case "vlan mtu" `Quick test_vlan_mtu;
        ] );
    ]
