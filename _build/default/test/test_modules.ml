(* Unit tests for the protocol modules and the management agent: exact
   abstraction contents (Table III), field queries, parameter negotiation
   outcomes, error behaviour of the agent, and self-tests. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- abstractions (what showPotential returns) ------------------------------- *)

let test_gre_abstraction_table3 () =
  let a = Gre_module.abstraction () in
  check tstr "name" "GRE" a.Abstraction.name;
  (match a.Abstraction.up with
  | Some s ->
      check tbool "up connectable = {IPv4}" true (s.Abstraction.connectable = [ "IP" ]);
      check tbool "up pipe has a dependency (trade-offs)" true (s.Abstraction.dependencies <> [])
  | None -> Alcotest.fail "GRE must accept up pipes");
  (match a.Abstraction.down with
  | Some s -> check tbool "down connectable = {IPv4}" true (s.Abstraction.connectable = [ "IP" ])
  | None -> Alcotest.fail "GRE must accept down pipes");
  check tbool "peerable = {GRE}" true (a.Abstraction.peerable = [ "GRE" ]);
  check tbool "switch = [up=>down],[down=>up]" true
    (List.sort compare a.Abstraction.switch
    = List.sort compare [ Abstraction.Up_down; Abstraction.Down_up ]);
  check tint "two trade-offs" 2 (List.length a.Abstraction.perf_tradeoffs);
  check tbool "no filtering" true (a.Abstraction.filterable = []);
  check tbool "no phy pipes" true (a.Abstraction.physical = [])

let test_ip_abstraction () =
  let a = Ip_module.abstraction () in
  check tbool "up = {IP, GRE, ESP}" true
    ((Option.get a.Abstraction.up).Abstraction.connectable = [ "IP"; "GRE"; "ESP" ]);
  check tbool "down = {IP, GRE, ESP, MPLS, ETH}" true
    ((Option.get a.Abstraction.down).Abstraction.connectable
    = [ "IP"; "GRE"; "ESP"; "MPLS"; "ETH" ]);
  check tint "four switch kinds" 4 (List.length a.Abstraction.switch);
  check tbool "filterable" true (a.Abstraction.filterable <> [])

let test_mpls_abstraction () =
  let a = Mpls_module.abstraction () in
  check tbool "advertises fast forwarding" true a.Abstraction.fast_forwarding;
  check tbool "down=>down transit" true (Abstraction.can_switch a Abstraction.Down_down)

(* --- module behaviour within a built scenario ---------------------------------- *)

let canonical_gre = "a, g, l, h, b, c, i, d, e, j, n, k, f"

let configured_gre () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let p = List.find (fun p -> Path_finder.signature p = canonical_gre) paths in
  let script = Nm.configure_path v.Scenarios.nm v.Scenarios.goal p in
  (v, p, script)

let test_gre_negotiated_keys_distinct () =
  (* each direction uses its own key, and both ends mirror them *)
  let v, _, _ = configured_gre () in
  let tun dev name =
    match (Netsim.Device.find_iface_exn dev name).Netsim.Device.if_kind with
    | Netsim.Device.Tun t -> t
    | _ -> Alcotest.fail "not a tunnel"
  in
  let ta = tun v.Scenarios.tb.Netsim.Testbeds.ra "gre-P1-P2" in
  check tbool "ikey <> okey" true (ta.Netsim.Device.t_ikey <> ta.Netsim.Device.t_okey);
  check tbool "keys assigned" true (ta.Netsim.Device.t_ikey <> None)

let test_gre_exact_device_command () =
  (* the module emits the same device-level state the paper's command shows *)
  let v, _, _ = configured_gre () in
  let iface = Netsim.Device.find_iface_exn v.Scenarios.tb.Netsim.Testbeds.ra "gre-P1-P2" in
  match iface.Netsim.Device.if_kind with
  | Netsim.Device.Tun t ->
      check tstr "local" "204.9.168.1" (Packet.Ipv4_addr.to_string t.Netsim.Device.t_local);
      check tstr "remote" "204.9.169.1" (Packet.Ipv4_addr.to_string t.Netsim.Device.t_remote)
  | _ -> Alcotest.fail "not a tunnel"

let test_eth_fields () =
  let v = Scenarios.build_vpn () in
  let agent = List.assoc "A" v.Scenarios.agents in
  let eth_a =
    List.find
      (fun m -> Ids.equal m.Module_impl.mref (Ids.v "ETH" "a" "id-A"))
      (Agent.modules agent)
  in
  check tbool "iface" true (eth_a.Module_impl.fields "iface" = Some "eth1");
  check tbool "mac present" true (eth_a.Module_impl.fields "mac" <> None);
  check tbool "unknown field" true (eth_a.Module_impl.fields "frobnicate" = None)

let test_ip_fields () =
  let v = Scenarios.build_vpn () in
  let agent = List.assoc "A" v.Scenarios.agents in
  let h =
    List.find (fun m -> Ids.equal m.Module_impl.mref (Ids.v "IP" "h" "id-A")) (Agent.modules agent)
  in
  check tbool "address" true (h.Module_impl.fields "address" = Some "204.9.168.1");
  check tbool "domain" true (h.Module_impl.fields "domain" = Some "ISP")

let test_mpls_ftn_exposed () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let p = List.find Scenarios.pure_mpls paths in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal p in
  let agent = List.assoc "A" v.Scenarios.agents in
  let o =
    List.find
      (fun m -> Ids.equal m.Module_impl.mref (Ids.v "MPLS" "o" "id-A"))
      (Agent.modules agent)
  in
  check tbool "ftn key exposed for the up pipe" true (o.Module_impl.fields "ftn-key:P1" <> None);
  check tbool "ftn via exposed" true (o.Module_impl.fields "ftn-via:P1" = Some "204.9.168.2")

let test_vlan_vid_allocation () =
  let v = Scenarios.build_vlan () in
  (match
     Nm.achieve_l2 v.Scenarios.vnm ~scope:v.Scenarios.vscope
       ~from_eth:(Ids.v "ETH" "a" "id-SwA") ~to_eth:(Ids.v "ETH" "c" "id-SwC")
   with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  (* all three switches agreed on the same vid *)
  List.iter
    (fun (name, agent) ->
      let vlan =
        List.find (fun m -> m.Module_impl.mref.Ids.name = "VLAN") (Agent.modules agent)
      in
      check tbool (name ^ " vid = 22") true (vlan.Module_impl.fields "vid" = Some "22"))
    v.Scenarios.vagents

(* --- the agent ------------------------------------------------------------------ *)

let test_agent_unknown_module_bundle_err () =
  let v = Scenarios.build_vpn () in
  let agent = List.assoc "A" v.Scenarios.agents in
  Agent.handle agent ~src:Scenarios.nm_station_id
    (Wire.encode
       (Wire.Bundle
          {
            req = 7;
            cmds =
              [
                Primitive.Create_switch
                  { owner = Ids.v "FOO" "zz" "id-A"; rule = Primitive.Bidi ("P1", "P2") };
              ];
            annex = Wire.empty_annex;
          }));
  ignore (Netsim.Net.run v.Scenarios.tb.Netsim.Testbeds.vpn_net);
  check tbool "bundle error reported to NM" true
    (List.exists (fun (_, e) ->
         let has_sub sub s =
           let n = String.length sub and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has_sub "no module" e)
       (Nm.errors v.Scenarios.nm))

let test_agent_show_actual_roundtrip () =
  let v = Scenarios.build_vpn () in
  match Nm.show_actual v.Scenarios.nm "id-B" with
  | Some state -> check tint "B reports 4 modules" 4 (List.length state)
  | None -> Alcotest.fail "no showActual response"

let test_agent_malformed_message_ignored () =
  let v = Scenarios.build_vpn () in
  let agent = List.assoc "A" v.Scenarios.agents in
  (* must not raise *)
  Agent.handle agent ~src:"nowhere" (Bytes.of_string "((((not a wire message");
  check tbool "survives garbage" true true

let test_self_test_unknown_module () =
  let v = Scenarios.build_vpn () in
  let ok, detail = Nm.self_test v.Scenarios.nm (Ids.v "FOO" "zz" "id-A") in
  check tbool "fails" false ok;
  check tstr "reason" "no such module" detail

let test_self_test_unreachable_device () =
  let v = Scenarios.build_vpn () in
  let ok, _ = Nm.self_test v.Scenarios.nm (Ids.v "IP" "zz" "id-NOPE") in
  check tbool "no response treated as failure" false ok

let () =
  Alcotest.run "modules"
    [
      ( "abstractions",
        [
          Alcotest.test_case "GRE (table 3)" `Quick test_gre_abstraction_table3;
          Alcotest.test_case "IP" `Quick test_ip_abstraction;
          Alcotest.test_case "MPLS" `Quick test_mpls_abstraction;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "GRE key negotiation" `Quick test_gre_negotiated_keys_distinct;
          Alcotest.test_case "GRE device command" `Quick test_gre_exact_device_command;
          Alcotest.test_case "ETH fields" `Quick test_eth_fields;
          Alcotest.test_case "IP fields" `Quick test_ip_fields;
          Alcotest.test_case "MPLS FTN exposure" `Quick test_mpls_ftn_exposed;
          Alcotest.test_case "VLAN vid agreement" `Quick test_vlan_vid_allocation;
        ] );
      ( "agent",
        [
          Alcotest.test_case "unknown module -> Bundle_err" `Quick test_agent_unknown_module_bundle_err;
          Alcotest.test_case "showActual roundtrip" `Quick test_agent_show_actual_roundtrip;
          Alcotest.test_case "malformed message ignored" `Quick test_agent_malformed_message_ignored;
          Alcotest.test_case "self-test: unknown module" `Quick test_self_test_unknown_module;
          Alcotest.test_case "self-test: unreachable device" `Quick test_self_test_unreachable_device;
        ] );
    ]
