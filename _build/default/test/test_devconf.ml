(* Tests for the "today" configuration plane: the mini shell, the Linux and
   CatOS CLIs, the verbatim paper scripts executed against the figure-4/9
   testbeds, and the Table-V command/state-variable metrics. *)

open Netsim
open Devconf

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- shell ---------------------------------------------------------------- *)

let test_shell_vars_and_pipes () =
  let outputs = ref [] in
  let exec argv =
    outputs := argv :: !outputs;
    match argv with
    | [ "produce" ] -> "NHLFE entry key 0x00000002 mtu 1500 propagate_ttl\nother line\n"
    | _ -> ""
  in
  let sh = Shell.create exec in
  Shell.run sh "# comment\nKEY=`produce | grep key | cut -c 17-26`\nconsume $KEY";
  check tstr "captured" "0x00000002" (Option.get (Shell.get_var sh "KEY"));
  check tbool "expanded" true (List.mem [ "consume"; "0x00000002" ] !outputs)

let test_shell_undefined_var () =
  let sh = Shell.create (fun _ -> "") in
  check tbool "raises" true
    (match Shell.run sh "use $NOPE" with exception Shell.Error _ -> true | _ -> false)

let test_shell_dashed_var_names () =
  let sh = Shell.create (fun argv -> if argv = [ "emit" ] then "v\n" else String.concat "," argv) in
  Shell.run sh "KEY-S1-S2=`emit`";
  check tstr "dashed name" "v" (Option.get (Shell.get_var sh "KEY-S1-S2"))

(* --- linux cli ------------------------------------------------------------- *)

let fresh_router () =
  let net = Net.create () in
  let d = Net.add_device net ~id:"id-r" ~name:"r" in
  ignore (Device.add_port ~name:"eth1" d);
  ignore (Device.add_port ~name:"eth2" d);
  (net, d)

let test_cli_tunnel_requires_module () =
  let _, d = fresh_router () in
  check tbool "fails without insmod" true
    (match
       Linux_cli.exec d
         (String.split_on_char ' '
            "ip tunnel add name greA mode gre remote 1.2.3.4 local 5.6.7.8")
     with
    | exception Linux_cli.Error _ -> true
    | _ -> false)

let test_cli_tunnel_add () =
  let _, d = fresh_router () in
  let run s = ignore (Linux_cli.exec d (String.split_on_char ' ' s)) in
  run "insmod /lib/modules/2.6.14-2/ip_gre.ko";
  run "ip tunnel add name greA mode gre remote 204.9.169.1 local 204.9.168.1 ikey 1001 okey 2001 icsum ocsum iseq oseq";
  run "ifconfig greA 192.168.3.1";
  let iface = Device.find_iface_exn d "greA" in
  (match iface.Device.if_kind with
  | Device.Tun t ->
      check tbool "ikey" true (t.Device.t_ikey = Some 1001l);
      check tbool "okey" true (t.Device.t_okey = Some 2001l);
      check tbool "flags" true
        (t.Device.t_icsum && t.Device.t_ocsum && t.Device.t_iseq && t.Device.t_oseq)
  | _ -> Alcotest.fail "not a tunnel");
  check tbool "addr" true
    (List.exists
       (fun (a, _) -> Packet.Ipv4_addr.equal a (Packet.Ipv4_addr.of_string "192.168.3.1"))
       iface.Device.if_addrs)

let test_cli_policy_routing () =
  let _, d = fresh_router () in
  let run s = ignore (Linux_cli.exec d (String.split_on_char ' ' s)) in
  run "echo 202 tun-1-2 >> /etc/iproute2/rt_tables";
  run "ip rule add to 10.0.2.0/24 table tun-1-2";
  run "ip route add default dev eth1 table tun-1-2";
  check tint "one rule" 1 (List.length d.Device.rules);
  let r = Device.lookup_route d (Packet.Ipv4_addr.of_string "10.0.2.9") in
  check tbool "routes via policy table" true
    (match r with Some { Device.rt_dev = Some "eth1"; _ } -> true | _ -> false)

let test_cli_unknown_command () =
  let _, d = fresh_router () in
  check tbool "raises" true
    (match Linux_cli.exec d [ "frobnicate" ] with
    | exception Linux_cli.Error _ -> true
    | _ -> false)

let test_cli_mpls_requires_modprobe () =
  let _, d = fresh_router () in
  check tbool "fails" true
    (match
       Linux_cli.exec d (String.split_on_char ' ' "mpls labelspace set dev eth1 labelspace 0")
     with
    | exception Linux_cli.Error _ -> true
    | _ -> false)

let test_cli_nhlfe_key_output () =
  let _, d = fresh_router () in
  let sh = Linux_cli.run_script d
      "modprobe mpls\nmodprobe mpls4\nK=`mpls nhlfe add key 0 mtu 1500 instructions push gen 7 nexthop eth2 ipv4 10.0.0.1 | grep key | cut -c 17-26`"
  in
  let k = Option.get (Shell.get_var sh "K") in
  check tbool "parses as int" true (int_of_string k > 0)

(* --- paper scripts against the testbeds ----------------------------------- *)

let test_fig7a_gre_script_end_to_end () =
  let tb = Testbeds.vpn () in
  ignore (Linux_cli.run_script tb.Testbeds.ra Paper_scripts.gre_a);
  ignore (Linux_cli.run_script tb.Testbeds.rb Paper_scripts.gre_b);
  ignore (Linux_cli.run_script tb.Testbeds.rc Paper_scripts.gre_c);
  check tbool "S1 <-> S2 over GRE" true (Testbeds.vpn_reachable tb);
  (* isolation: the core must not have a route for customer space *)
  check tbool "core unaware of customer prefixes" true
    (Device.lookup_route tb.Testbeds.rb (Packet.Ipv4_addr.of_string "10.0.2.2") = None)

let test_fig8a_mpls_script_end_to_end () =
  let tb = Testbeds.vpn () in
  ignore (Linux_cli.run_script tb.Testbeds.ra Paper_scripts.mpls_a);
  ignore (Linux_cli.run_script tb.Testbeds.rb Paper_scripts.mpls_b);
  ignore (Linux_cli.run_script tb.Testbeds.rc Paper_scripts.mpls_c);
  check tbool "S1 <-> S2 over MPLS" true (Testbeds.vpn_reachable tb);
  check tbool "no IP forwarding at core" true
    (Counters.get tb.Testbeds.rb.Device.dev_counters "ip_forwarded" = 0)

let test_fig9a_vlan_script_end_to_end () =
  let tb = Testbeds.vlan () in
  ignore (Catos_cli.run_script tb.Testbeds.swa Paper_scripts.vlan_a);
  ignore (Catos_cli.run_script tb.Testbeds.swb Paper_scripts.vlan_b);
  ignore (Catos_cli.run_script tb.Testbeds.swc Paper_scripts.vlan_c);
  check tbool "customer sites bridged over QinQ" true (Testbeds.vlan_reachable tb)

let test_gre_script_key_typo_breaks_connectivity () =
  (* The classic error the paper cites: tunnel endpoints disagreeing on the
     key. Flip one digit in C's script and the VPN silently dies. *)
  let tb = Testbeds.vpn () in
  ignore (Linux_cli.run_script tb.Testbeds.ra Paper_scripts.gre_a);
  ignore (Linux_cli.run_script tb.Testbeds.rb Paper_scripts.gre_b);
  let replace ~sub ~by s =
    let sl = String.length sub and n = String.length s in
    let buf = Buffer.create n in
    let rec go i =
      if i >= n then ()
      else if i + sl <= n && String.sub s i sl = sub then begin
        Buffer.add_string buf by;
        go (i + sl)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  in
  let broken = replace ~sub:"ikey 2001" ~by:"ikey 2002" Paper_scripts.gre_c in
  ignore (Linux_cli.run_script tb.Testbeds.rc broken);
  check tbool "VPN broken by key typo" false (Testbeds.vpn_reachable tb)

(* --- CatOS edge cases -------------------------------------------------------- *)

let fresh_switch () =
  let net = Net.create () in
  let d = Net.add_device net ~switching:true ~id:"id-sw" ~name:"sw" in
  ignore (Device.add_port ~name:"gigabitethernet0/7" d);
  ignore (Device.add_port ~name:"gigabitethernet0/9" d);
  d

let test_catos_context_required () =
  let d = fresh_switch () in
  let t = Catos_cli.create d in
  check tbool "switchport outside interface context fails" true
    (match Catos_cli.exec t [ "switchport"; "mode"; "trunk" ] with
    | exception Catos_cli.Error _ -> true
    | _ -> false)

let test_catos_unknown_port () =
  let d = fresh_switch () in
  let t = Catos_cli.create d in
  check tbool "unknown interface" true
    (match Catos_cli.exec t [ "interface"; "gigabitethernet9/9" ] with
    | exception Catos_cli.Error _ -> true
    | _ -> false)

let test_catos_vlan_mtu_only () =
  let d = fresh_switch () in
  let t = Catos_cli.create d in
  Catos_cli.exec t [ "set"; "vlan"; "22"; "mtu"; "1504" ];
  check tint "mtu stored" 1504 (Device.vlan_def d 22).Device.vd_mtu

let test_catos_tunnel_mode_keeps_vid () =
  let d = fresh_switch () in
  let t = Catos_cli.create d in
  List.iter (Catos_cli.run_line t)
    [ "interface gigabitethernet0/7"; "switchport access vlan 22"; "switchport mode dot1q-tunnel" ];
  check tbool "dot1q tunnel on vid 22" true
    ((Device.port d 0).Device.port_mode = Device.Dot1q_tunnel 22)

(* --- ESP via the CLI ----------------------------------------------------------- *)

let test_cli_esp_tunnel () =
  let _, d = fresh_router () in
  let run s = ignore (Linux_cli.exec d (String.split_on_char ' ' s)) in
  check tbool "needs esp4 module" true
    (match run "ip tunnel add name e0 mode esp remote 1.2.3.4 local 5.6.7.8" with
    | exception Linux_cli.Error _ -> true
    | _ -> false);
  run "insmod /lib/modules/2.6.14-2/esp4.ko";
  run "ip tunnel add name e0 mode esp remote 1.2.3.4 local 5.6.7.8 ikey 256 okey 257 ienc 7001 oenc 7002";
  match (Device.find_iface_exn d "e0").Device.if_kind with
  | Device.Tun t ->
      check tbool "spis" true (t.Device.t_ikey = Some 256l && t.Device.t_okey = Some 257l);
      check tbool "keys" true (t.Device.t_enc_in = Some 7001l && t.Device.t_enc_out = Some 7002l)
  | _ -> Alcotest.fail "not a tunnel"

let test_cli_tc () =
  let _, d = fresh_router () in
  let run s = ignore (Linux_cli.exec d (String.split_on_char ' ' s)) in
  run "tc qdisc add dev eth1 rate 1000000 burst 3000";
  check tbool "policer installed" true
    ((Device.find_iface_exn d "eth1").Device.if_policer <> None);
  run "tc qdisc del dev eth1";
  check tbool "policer removed" true
    ((Device.find_iface_exn d "eth1").Device.if_policer = None)

(* --- classifier edge cases -------------------------------------------------------- *)

let test_classify_unrecognized_raises () =
  check tbool "loudly rejects unknown commands" true
    (match Classify.analyze_line ~dialect:`Linux "frobnicate the network" with
    | exception Classify.Unrecognized _ -> true
    | _ -> false)

let test_classify_comments_skipped () =
  check tbool "comment" true (Classify.analyze_line ~dialect:`Linux "# hello" = None);
  check tbool "blank" true (Classify.analyze_line ~dialect:`Catos "   " = None)

let test_metrics_b_and_c_side_scripts () =
  (* the reconstructed B/C-side scripts parse under the same ruleset *)
  List.iter
    (fun script -> ignore (Metrics.analyze_linux script))
    [ Paper_scripts.gre_b; Paper_scripts.gre_c; Paper_scripts.mpls_b; Paper_scripts.mpls_c ];
  List.iter
    (fun script -> ignore (Metrics.analyze_catos script))
    [ Paper_scripts.vlan_b; Paper_scripts.vlan_c ];
  check tbool "all parsed" true true

(* --- Table V metrics -------------------------------------------------------- *)

let test_table5_gre_today () =
  let c = Metrics.analyze_linux Paper_scripts.gre_a in
  check tint "generic cmds" 1 (Metrics.n_generic_cmds c);
  check tint "specific cmds" 6 (Metrics.n_specific_cmds c);
  check tint "generic vars" 9 (Metrics.n_generic_vars c);
  (* paper reports 11; the mechanical rule counts the two policy-table
     numbers as protocol state, giving 12 *)
  check tint "specific vars" 12 (Metrics.n_specific_vars c)

let test_table5_mpls_today () =
  let c = Metrics.analyze_linux Paper_scripts.mpls_a in
  check tint "generic cmds" 1 (Metrics.n_generic_cmds c);
  check tint "specific cmds" 6 (Metrics.n_specific_cmds c);
  check tint "generic vars" 6 (Metrics.n_generic_vars c);
  check tint "specific vars" 8 (Metrics.n_specific_vars c)

let test_table5_vlan_today () =
  let c = Metrics.analyze_catos Paper_scripts.vlan_a in
  check tint "generic cmds" 3 (Metrics.n_generic_cmds c);
  check tint "specific cmds" 4 (Metrics.n_specific_cmds c);
  check tint "generic vars" 3 (Metrics.n_generic_vars c);
  (* paper reports 5; the mechanical rule yields 4 *)
  check tint "specific vars" 4 (Metrics.n_specific_vars c)

let test_metrics_dedup () =
  (* a value counted specific must not also count as generic *)
  let c =
    Metrics.make
      ~cmds:[ ("x", Classify.Generic); ("x", Classify.Generic) ]
      ~vars:[ ("greA", Classify.Specific); ("greA", Classify.Generic); ("eth1", Classify.Generic) ]
  in
  check tint "cmds dedup" 1 (Metrics.n_generic_cmds c);
  check tint "specific" 1 (Metrics.n_specific_vars c);
  check tint "generic" 1 (Metrics.n_generic_vars c)

let () =
  Alcotest.run "devconf"
    [
      ( "shell",
        [
          Alcotest.test_case "vars and pipes" `Quick test_shell_vars_and_pipes;
          Alcotest.test_case "undefined var" `Quick test_shell_undefined_var;
          Alcotest.test_case "dashed var names" `Quick test_shell_dashed_var_names;
        ] );
      ( "linux-cli",
        [
          Alcotest.test_case "tunnel requires module" `Quick test_cli_tunnel_requires_module;
          Alcotest.test_case "tunnel add" `Quick test_cli_tunnel_add;
          Alcotest.test_case "policy routing" `Quick test_cli_policy_routing;
          Alcotest.test_case "unknown command" `Quick test_cli_unknown_command;
          Alcotest.test_case "mpls requires modprobe" `Quick test_cli_mpls_requires_modprobe;
          Alcotest.test_case "nhlfe key output" `Quick test_cli_nhlfe_key_output;
        ] );
      ( "paper-scripts",
        [
          Alcotest.test_case "fig 7a GRE end to end" `Quick test_fig7a_gre_script_end_to_end;
          Alcotest.test_case "fig 8a MPLS end to end" `Quick test_fig8a_mpls_script_end_to_end;
          Alcotest.test_case "fig 9a VLAN end to end" `Quick test_fig9a_vlan_script_end_to_end;
          Alcotest.test_case "key typo breaks VPN" `Quick test_gre_script_key_typo_breaks_connectivity;
        ] );
      ( "catos-edge",
        [
          Alcotest.test_case "context required" `Quick test_catos_context_required;
          Alcotest.test_case "unknown port" `Quick test_catos_unknown_port;
          Alcotest.test_case "vlan mtu only" `Quick test_catos_vlan_mtu_only;
          Alcotest.test_case "tunnel mode keeps vid" `Quick test_catos_tunnel_mode_keeps_vid;
        ] );
      ( "cli-esp-tc",
        [
          Alcotest.test_case "esp tunnel" `Quick test_cli_esp_tunnel;
          Alcotest.test_case "tc policer" `Quick test_cli_tc;
        ] );
      ( "classifier-edge",
        [
          Alcotest.test_case "unrecognized raises" `Quick test_classify_unrecognized_raises;
          Alcotest.test_case "comments skipped" `Quick test_classify_comments_skipped;
          Alcotest.test_case "B/C-side scripts parse" `Quick test_metrics_b_and_c_side_scripts;
        ] );
      ( "table5-metrics",
        [
          Alcotest.test_case "gre today" `Quick test_table5_gre_today;
          Alcotest.test_case "mpls today" `Quick test_table5_mpls_today;
          Alcotest.test_case "vlan today" `Quick test_table5_vlan_today;
          Alcotest.test_case "dedup rules" `Quick test_metrics_dedup;
        ] );
    ]
