(* Tests for the CONMan core: wire codecs, the potential graph and path
   finder (the 9-path enumeration and figure-6 pruning), script generation
   (Table V), end-to-end configuration of the figure-4 VPN testbed over the
   management channel (GRE / MPLS / IP-IP and the VLAN chain), and the
   Table VI message accounting. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- codecs -------------------------------------------------------------- *)

let test_sexp_roundtrip () =
  let s =
    Sexp.List
      [ Sexp.atom "hello"; Sexp.List [ Sexp.atom "a b"; Sexp.atom "" ]; Sexp.atom "x\"y\\z" ]
  in
  check tbool "roundtrip" true (Sexp.equal s (Sexp.of_string (Sexp.to_string s)))

let test_ids_roundtrip () =
  let m = Ids.v "GRE" "l" "id-A" in
  check tstr "to_string" "<GRE,id-A,l>" (Ids.to_string m);
  check tbool "roundtrip" true (Ids.equal m (Ids.of_string (Ids.to_string m)))

let test_wire_roundtrip () =
  let msgs =
    [
      Wire.Hello { ports = [ ("eth1", "id-D", "eth0"); ("eth2", "id-B", "eth1") ] };
      Wire.Show_potential_req { req = 3 };
      Wire.Convey
        {
          src = Ids.v "GRE" "l" "id-A";
          dst = Ids.v "GRE" "n" "id-C";
          payload =
            Peer_msg.Gre_params { pipe = "P1"; ikey = 1001l; okey = 2001l; use_seq = true; use_csum = false };
        };
      Wire.Completion { src = Ids.v "MPLS" "q" "id-C"; what = "lsp-established" };
      Wire.Trigger { src = Ids.v "IP" "j" "id-C"; field = "address"; value = "1.2.3.4" };
      Wire.Bundle
        {
          req = 9;
          cmds =
            [
              Primitive.Create_pipe
                {
                  Primitive.pipe_id = "P1";
                  top = Ids.v "IP" "g" "id-A";
                  bottom = Ids.v "GRE" "l" "id-A";
                  peer_top = Some (Ids.v "IP" "k" "id-C");
                  peer_bottom = Some (Ids.v "GRE" "n" "id-C");
                  tradeoffs = [ "in-order-delivery" ];
                  deps = [];
                };
              Primitive.Create_switch
                {
                  owner = Ids.v "IP" "g" "id-A";
                  rule =
                    Primitive.Directed
                      { from_pipe = "P0"; to_pipe = "P1"; sel = Primitive.Dst_domain "C1-S2" };
                };
            ];
          annex = { Wire.domains = [ ("C1-S2", "10.0.2.0/24") ]; reporter = None };
        };
    ]
  in
  List.iter
    (fun m -> check tbool "wire roundtrip" true (Wire.equal m (Wire.decode (Wire.encode m))))
    msgs

let prop_peer_msg_roundtrip =
  QCheck.Test.make ~name:"peer msg roundtrip" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* n = int_bound 5 in
         let* key = map Int32.of_int (int_bound 10000) in
         let* b1 = bool and* b2 = bool and* label = int_bound 0xfffff in
         return
           (match n with
           | 0 -> Peer_msg.Gre_params { pipe = "P1"; ikey = key; okey = key; use_seq = b1; use_csum = b2 }
           | 1 -> Peer_msg.Gre_params_ack { pipe = "P9" }
           | 2 ->
               Peer_msg.Lfv_request
                 { purpose = "endpoint"; fields = [ "address" ]; own = [ ("address", "10.0.0.1") ] }
           | 3 -> Peer_msg.Lfv_reply { purpose = "nexthop"; fields = [ ("address", "10.0.0.2") ] }
           | 4 -> Peer_msg.Mpls_label_bind { pipe = "P2"; label; nexthop = "204.9.168.2" }
           | _ -> Peer_msg.Vlan_vid_bind { pipe = "P1"; vid = label land 0xfff })))
    (fun m -> Peer_msg.equal m (Peer_msg.of_sexp (Peer_msg.to_sexp m)))

(* random sexp trees roundtrip through the textual codec *)
let sexp_gen =
  let open QCheck.Gen in
  let atom = map Sexp.atom (string_size ~gen:printable (int_bound 12)) in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then atom
          else oneof [ atom; map Sexp.list (list_size (int_bound 4) (self (n / 2))) ])
        (min n 6))

let prop_sexp_roundtrip =
  QCheck.Test.make ~name:"sexp roundtrip (random trees)" ~count:300
    (QCheck.make ~print:Sexp.to_string sexp_gen)
    (fun s -> Sexp.equal s (Sexp.of_string (Sexp.to_string s)))

let prop_primitive_roundtrip =
  let mref_gen =
    QCheck.Gen.(
      let* name = oneofl [ "IP"; "GRE"; "MPLS"; "ETH"; "VLAN"; "ESP" ]
      and* mid = string_size ~gen:(char_range 'a' 'z') (int_range 1 3)
      and* dev = oneofl [ "id-A"; "id-B"; "id-C" ] in
      return (Ids.v name mid dev))
  in
  let prim_gen =
    QCheck.Gen.(
      let* n = int_bound 3 in
      let* m1 = mref_gen and* m2 = mref_gen and* m3 = mref_gen and* m4 = mref_gen in
      let* pid = oneofl [ "P0"; "P1"; "P7" ] and* rate = int_range 1 100000 in
      return
        (match n with
        | 0 ->
            Primitive.Create_pipe
              {
                Primitive.pipe_id = pid;
                top = m1;
                bottom = m2;
                peer_top = Some m3;
                peer_bottom = Some m4;
                tradeoffs = [ "in-order-delivery" ];
                deps = [ ("esp-keys", m3) ];
              }
        | 1 ->
            Primitive.Create_switch
              {
                owner = m1;
                rule =
                  Primitive.Directed
                    { from_pipe = "P0"; to_pipe = pid; sel = Primitive.Dst_domain "C1-S2" };
              }
        | 2 -> Primitive.Create_perf { owner = m1; pipe_id = pid; rate_kbps = rate }
        | _ -> Primitive.Delete_switch { owner = m2; rule = Primitive.Bidi ("P1", pid) }))
  in
  QCheck.Test.make ~name:"primitive sexp roundtrip" ~count:300
    (QCheck.make ~print:(Fmt.to_to_string Primitive.pp) prim_gen)
    (fun p -> Primitive.equal p (Primitive.of_sexp (Primitive.to_sexp p)))

let test_abstraction_roundtrip () =
  let abs =
    {
      Abstraction.default with
      name = "GRE";
      up = Some { Abstraction.connectable = [ "IP" ]; dependencies = [ "x" ] };
      switch = [ Abstraction.Up_down; Abstraction.Down_up ];
      perf_tradeoffs = [ { Abstraction.gives = [ "in-order-delivery" ]; costs = [ "delay" ] } ];
      physical = [ { Abstraction.phys_id = "Phy-A-eth1"; peer_device = "id-D"; peer_port = "eth0"; broadcast = false } ];
      fast_forwarding = true;
    }
  in
  check tbool "roundtrip" true (Abstraction.of_sexp (Abstraction.to_sexp abs) = abs)

(* --- discovery and the potential graph ------------------------------------ *)

let test_discovery_table4 () =
  let v = Scenarios.build_vpn () in
  let topo = Nm.topology v.Scenarios.nm in
  check tint "devices discovered" 3 (List.length (Topology.modules_of_device topo "id-B") / 4 * 3);
  check tint "A has 6 modules" 6 (List.length (Topology.modules_of_device topo "id-A"));
  check tint "B has 4 modules" 4 (List.length (Topology.modules_of_device topo "id-B"));
  check tint "C has 6 modules" 6 (List.length (Topology.modules_of_device topo "id-C"));
  (* Table IV highlights *)
  let g = Topology.find_module_exn topo (Ids.v "IP" "g" "id-A") in
  check tbool "g switches down=>down" true (Abstraction.can_switch g Abstraction.Down_down);
  let a = Topology.find_module_exn topo (Ids.v "ETH" "a" "id-A") in
  check tbool "a has no phy=>phy (router port)" false (Abstraction.can_switch a Abstraction.Phy_phy);
  check tbool "a physical pipe to D" true
    (List.exists (fun p -> p.Abstraction.peer_device = "id-D") a.Abstraction.physical)

let test_potential_graph () =
  let v = Scenarios.build_vpn () in
  let topo = Nm.topology v.Scenarios.nm in
  let below = Potential_graph.below topo (Ids.v "IP" "g" "id-A") in
  let names = List.map Ids.short below |> List.sort compare in
  (* g can sit above ETH a, ETH b, IP h, GRE l and MPLS o *)
  check tbool "g belows" true (names = [ "a"; "b"; "h"; "l"; "o" ]);
  let phys = Potential_graph.phys_neighbours topo (Ids.v "ETH" "b" "id-A") in
  check tbool "b wired to c" true
    (List.exists (fun (_, m, _) -> Ids.equal m (Ids.v "ETH" "c" "id-B")) phys)

(* --- path finder ------------------------------------------------------------ *)

let canonical_gre = "a, g, l, h, b, c, i, d, e, j, n, k, f"
let canonical_ipip = "a, g, h, b, c, i, d, e, j, k, f"
let canonical_mpls = "a, g, o, b, c, p, d, e, q, k, f"

let test_nine_paths () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let sigs = List.map Path_finder.signature paths in
  check tint "exactly nine paths (paper: 3 expected + 6 more)" 9 (List.length paths);
  List.iter
    (fun s -> check tbool ("found " ^ s) true (List.mem s sigs))
    [ canonical_gre; canonical_ipip; canonical_mpls ];
  (* the six hybrid variants all mix MPLS with a tunnel *)
  let hybrids = List.filter (fun s -> not (List.mem s [ canonical_gre; canonical_ipip; canonical_mpls ])) sigs in
  check tint "six hybrids" 6 (List.length hybrids);
  List.iter
    (fun s ->
      check tbool ("hybrid uses MPLS: " ^ s) true
        (String.length s > 0
        && List.exists (fun m -> List.mem m [ "o"; "p"; "q" ]) (String.split_on_char ',' s |> List.map String.trim)))
    hybrids

let test_figure6_pruning () =
  (* No path may make g and i peers: i.e. no signature contains "g, b"
     (customer IP handed straight to the core ETH, figure 6(b)). *)
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  List.iter
    (fun p ->
      let s = Path_finder.signature p in
      let contains sub =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      check tbool ("no direct g->b in " ^ s) false (contains "g, b"))
    paths

let test_chooser_prefers_mpls () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  match Path_finder.choose (Nm.topology v.Scenarios.nm) paths with
  | Some p -> check tstr "chosen" canonical_mpls (Path_finder.signature p)
  | None -> Alcotest.fail "no path chosen"

let test_pipe_counts () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let by_sig s = List.find (fun p -> Path_finder.signature p = s) paths in
  check tint "mpls pipes" 8 (Path_finder.pipe_count (by_sig canonical_mpls));
  check tint "ipip pipes" 8 (Path_finder.pipe_count (by_sig canonical_ipip));
  check tint "gre pipes" 10 (Path_finder.pipe_count (by_sig canonical_gre))

(* --- script generation and Table V (CONMan side) --------------------------- *)

let script_for v signature =
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let path = List.find (fun p -> Path_finder.signature p = signature) paths in
  (path, Script_gen.generate (Nm.topology v.Scenarios.nm) v.Scenarios.goal path)

let test_table5_conman_gre () =
  let v = Scenarios.build_vpn () in
  let _, script = script_for v canonical_gre in
  let c = Script_gen.table5_counts script ~device:"id-A" in
  check tint "generic cmds" 2 (Devconf.Metrics.n_generic_cmds c);
  check tint "specific cmds" 0 (Devconf.Metrics.n_specific_cmds c);
  check tint "generic vars" 21 (Devconf.Metrics.n_generic_vars c);
  check tint "specific vars" 2 (Devconf.Metrics.n_specific_vars c)

let test_table5_conman_mpls () =
  let v = Scenarios.build_vpn () in
  let _, script = script_for v canonical_mpls in
  let c = Script_gen.table5_counts script ~device:"id-A" in
  check tint "generic cmds" 2 (Devconf.Metrics.n_generic_cmds c);
  check tint "specific cmds" 0 (Devconf.Metrics.n_specific_cmds c);
  check tint "generic vars" 18 (Devconf.Metrics.n_generic_vars c);
  check tint "specific vars" 2 (Devconf.Metrics.n_specific_vars c)

let test_gre_script_shape () =
  (* the generated script for the GRE path matches figure 7(b): four pipes
     created at A and the two customer routing rules on g *)
  let v = Scenarios.build_vpn () in
  let _, script = script_for v canonical_gre in
  let a_prims = List.assoc "id-A" script.Script_gen.per_device in
  let creates =
    List.filter (function Primitive.Create_pipe _ -> true | _ -> false) a_prims
  in
  check tint "four pipes at A" 4 (List.length creates);
  let directed =
    List.filter
      (function Primitive.Create_switch { rule = Primitive.Directed _; _ } -> true | _ -> false)
      a_prims
  in
  check tint "two customer rules at A" 2 (List.length directed)

(* --- end-to-end configuration ----------------------------------------------- *)

let configure v signature =
  let path, _ = script_for v signature in
  let script = Nm.configure_path v.Scenarios.nm v.Scenarios.goal path in
  (path, script)

let test_e2e_gre () =
  let v = Scenarios.build_vpn () in
  let _ = configure v canonical_gre in
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  check tbool "S1 <-> S2 over CONMan GRE" true (Scenarios.vpn_reachable v);
  (* the negotiated tunnels must exist with mirrored keys *)
  let tun dev name = Netsim.Device.find_iface_exn dev name in
  let ta = tun v.Scenarios.tb.Netsim.Testbeds.ra "gre-P1-P2" in
  let tc = tun v.Scenarios.tb.Netsim.Testbeds.rc "gre-P10-P9" in
  match (ta.Netsim.Device.if_kind, tc.Netsim.Device.if_kind) with
  | Netsim.Device.Tun a, Netsim.Device.Tun c ->
      check tbool "keys mirrored" true
        (a.Netsim.Device.t_ikey = c.Netsim.Device.t_okey
        && a.Netsim.Device.t_okey = c.Netsim.Device.t_ikey);
      check tbool "in-order tradeoff -> sequence numbers" true
        (a.Netsim.Device.t_oseq && c.Netsim.Device.t_iseq);
      check tbool "error tradeoff -> checksums" true
        (a.Netsim.Device.t_ocsum && c.Netsim.Device.t_icsum)
  | _ -> Alcotest.fail "tunnel devices missing"

let test_e2e_gre_no_tradeoffs () =
  let v = Scenarios.build_vpn ~tradeoffs:[] () in
  let _ = configure v canonical_gre in
  check tbool "reachable" true (Scenarios.vpn_reachable v);
  let ta = Netsim.Device.find_iface_exn v.Scenarios.tb.Netsim.Testbeds.ra "gre-P1-P2" in
  match ta.Netsim.Device.if_kind with
  | Netsim.Device.Tun a ->
      check tbool "no sequence numbers without the trade-off" false a.Netsim.Device.t_oseq;
      check tbool "no checksums without the trade-off" false a.Netsim.Device.t_ocsum
  | _ -> Alcotest.fail "tunnel missing"

let test_e2e_mpls () =
  let v = Scenarios.build_vpn () in
  let _ = configure v canonical_mpls in
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  check tbool "S1 <-> S2 over CONMan MPLS" true (Scenarios.vpn_reachable v);
  (* the core must label-switch, not route *)
  check tint "no IP forwarding at B" 0
    (Netsim.Counters.get v.Scenarios.tb.Netsim.Testbeds.rb.Netsim.Device.dev_counters "ip_forwarded");
  (* completion reported by the far-edge MPLS module *)
  check tbool "lsp-established completion" true
    (List.exists
       (fun (m, what) -> Ids.short m = "q" && what = "lsp-established")
       (Nm.completions v.Scenarios.nm))

let test_e2e_ipip () =
  let v = Scenarios.build_vpn () in
  let _ = configure v canonical_ipip in
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  check tbool "S1 <-> S2 over CONMan IP-IP" true (Scenarios.vpn_reachable v)

let test_e2e_achieve_default () =
  (* the full pipeline: achieve() enumerates, picks MPLS and configures *)
  let v = Scenarios.build_vpn () in
  match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Error e -> Alcotest.fail e
  | Ok (paths, chosen, _) ->
      check tint "nine options" 9 (List.length paths);
      check tstr "mpls chosen" canonical_mpls (Path_finder.signature chosen);
      check tbool "reachable" true (Scenarios.vpn_reachable v)

let test_e2e_raw_channel () =
  (* the same configuration over the zero-preconfiguration flooding channel *)
  let v = Scenarios.build_vpn ~channel:`Raw () in
  let _ = configure v canonical_gre in
  check tbool "reachable via raw channel" true (Scenarios.vpn_reachable v)

let test_e2e_vlan () =
  let v = Scenarios.build_vlan () in
  match
    Nm.achieve_l2 v.Scenarios.vnm ~scope:v.Scenarios.vscope
      ~from_eth:(Ids.v "ETH" "a" "id-SwA") ~to_eth:(Ids.v "ETH" "c" "id-SwC")
  with
  | Error e -> Alcotest.fail e
  | Ok _ ->
      check tbool "no errors" true (Nm.errors v.Scenarios.vnm = []);
      check tbool "customers bridged over CONMan VLAN tunnel" true (Scenarios.vlan_reachable v);
      (* the negotiated vid starts at the paper's 22 and programs QinQ *)
      let p = Netsim.Device.port v.Scenarios.vtb.Netsim.Testbeds.swa 0 in
      check tbool "customer port is a dot1q tunnel for vid 22" true
        (p.Netsim.Device.port_mode = Netsim.Device.Dot1q_tunnel 22);
      check tbool "completion reported" true
        (List.exists (fun (_, what) -> what = "vlan-tunnel-established") (Nm.completions v.Scenarios.vnm))

(* --- Table VI: management messages ------------------------------------------ *)

let table6_for_chain n pick =
  let c = Scenarios.build_chain n in
  let paths = Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal in
  let path = List.find pick paths in
  Nm.reset_stats c.Scenarios.cnm;
  let _ = Nm.configure_path c.Scenarios.cnm c.Scenarios.cgoal path in
  check tbool "no errors" true (Nm.errors c.Scenarios.cnm = []);
  check tbool "reachable" true (Scenarios.chain_reachable c);
  (Nm.stats_sent c.Scenarios.cnm, Nm.stats_received c.Scenarios.cnm)

let test_table6_gre () =
  List.iter
    (fun n ->
      let sent, received = table6_for_chain n Scenarios.pure_gre in
      check tint (Printf.sprintf "GRE sent (n=%d) = 3n+2" n) ((3 * n) + 2) sent;
      check tint (Printf.sprintf "GRE received (n=%d) = 2n+2" n) ((2 * n) + 2) received)
    [ 2; 3; 5; 8 ]

let test_table6_mpls () =
  List.iter
    (fun n ->
      let sent, received = table6_for_chain n Scenarios.pure_mpls in
      check tint (Printf.sprintf "MPLS sent (n=%d) = 3n-2" n) ((3 * n) - 2) sent;
      check tint (Printf.sprintf "MPLS received (n=%d) = 2n-1" n) ((2 * n) - 1) received)
    [ 2; 3; 5; 8 ]

let test_table6_vlan () =
  List.iter
    (fun n ->
      let v = Scenarios.build_vlan_chain n in
      Nm.reset_stats v.Scenarios.vcnm;
      (match
         Nm.achieve_l2 v.Scenarios.vcnm ~scope:v.Scenarios.vcscope
           ~from_eth:(Ids.v "ETH" "eth1" "id-Sw1")
           ~to_eth:(Ids.v "ETH" (Printf.sprintf "eth%d" n) (Printf.sprintf "id-Sw%d" n))
       with
      | Error e -> Alcotest.fail e
      | Ok _ -> ());
      check tbool "reachable" true (Scenarios.vlan_chain_reachable v);
      check tint (Printf.sprintf "VLAN sent (n=%d) = 3n-2" n) ((3 * n) - 2)
        (Nm.stats_sent v.Scenarios.vcnm);
      check tint (Printf.sprintf "VLAN received (n=%d) = 2n-1" n) ((2 * n) - 1)
        (Nm.stats_received v.Scenarios.vcnm))
    [ 2; 3; 5; 8 ]

(* --- debugging and dependencies ---------------------------------------------- *)

let test_self_test_and_diagnose () =
  let v = Scenarios.build_vpn () in
  let path, _ = configure v canonical_gre in
  (* healthy: every module self-test passes *)
  let verdicts = Nm.diagnose v.Scenarios.nm path in
  List.iter (fun (m, ok, d) -> check tbool (Fmt.str "%a ok (%s)" Ids.pp m d) true ok) verdicts;
  (* cut the A--B wire: diagnosis must localise a failure *)
  let seg = Option.get (Netsim.Net.find_segment v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B") in
  Netsim.Link.cut seg;
  check tbool "vpn broken" false (Scenarios.vpn_reachable v);
  let verdicts = Nm.diagnose v.Scenarios.nm path in
  check tbool "failure localised" true (List.exists (fun (_, ok, _) -> not ok) verdicts);
  Netsim.Link.restore seg;
  check tbool "vpn restored" true (Scenarios.vpn_reachable v)

let test_dependency_trigger_repair () =
  let v = Scenarios.build_vpn () in
  Nm.set_auto_repair v.Scenarios.nm true;
  let _ = configure v canonical_gre in
  check tbool "initially reachable" true (Scenarios.vpn_reachable v);
  (* the operator renumbers C's core interface: the tunnel endpoint moves *)
  let j = List.assoc "j" v.Scenarios.ip_handles in
  j.Ip_module.change_address ~iface:"eth2" "204.9.169.1" "204.9.169.5";
  (* keep the underlying next-hop reachability consistent *)
  ignore (Netsim.Net.run v.Scenarios.tb.Netsim.Testbeds.vpn_net);
  check tbool "trigger fired" true (Nm.triggers v.Scenarios.nm <> []);
  check tbool "repaired automatically" true (Scenarios.vpn_reachable v)

let test_filter_creation () =
  let v = Scenarios.build_vpn () in
  let _ = configure v canonical_gre in
  check tbool "reachable before filter" true (Scenarios.vpn_reachable v);
  (* "drop packets from <IP,A,g>'s site going to <IP,C,k>'s site" *)
  let agent = List.assoc "A" v.Scenarios.agents in
  let g = Ids.v "IP" "g" "id-A" in
  Agent.handle agent ~src:Scenarios.nm_station_id
    (Wire.encode
       (Wire.Bundle
          {
            req = 99;
            cmds =
              [
                Primitive.Create_filter
                  { owner = g; drop_src = Ids.v "IP" "x" "id-X"; drop_dst = Ids.v "IP" "y" "id-Y" };
              ];
            annex = Wire.empty_annex;
          }));
  ignore (Netsim.Net.run v.Scenarios.tb.Netsim.Testbeds.vpn_net);
  check tbool "filter blocks" false (Scenarios.vpn_reachable v);
  check tbool "drop counted" true
    (Netsim.Counters.get v.Scenarios.tb.Netsim.Testbeds.ra.Netsim.Device.dev_counters
       "ip_filtered_drop"
    > 0)


let test_teardown () =
  let v = Scenarios.build_vpn () in
  let _, script = configure v canonical_gre in
  check tbool "configured" true (Scenarios.vpn_reachable v);
  Nm.teardown v.Scenarios.nm script;
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  check tbool "unreachable after teardown" false (Scenarios.vpn_reachable v);
  (* the device state is gone: no tunnel interface, no policy rules, and no
     route for the remote customer prefix *)
  let ra = v.Scenarios.tb.Netsim.Testbeds.ra in
  check tbool "tunnel device removed" true (Netsim.Device.find_iface ra "gre-P1-P2" = None);
  check tint "policy rules removed" 0 (List.length ra.Netsim.Device.rules);
  check tbool "customer route removed" true
    (Netsim.Device.lookup_route ra (Packet.Ipv4_addr.of_string "10.0.2.2") = None)

let test_reconfigure_after_teardown () =
  (* tear the GRE path down, then bring the MPLS path up on the same devices *)
  let v = Scenarios.build_vpn () in
  let _, script = configure v canonical_gre in
  Nm.teardown v.Scenarios.nm script;
  let _ = configure v canonical_mpls in
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  check tbool "MPLS path works after GRE teardown" true (Scenarios.vpn_reachable v)

let test_vlan_teardown () =
  let v = Scenarios.build_vlan () in
  match
    Nm.achieve_l2 v.Scenarios.vnm ~scope:v.Scenarios.vscope
      ~from_eth:(Ids.v "ETH" "a" "id-SwA") ~to_eth:(Ids.v "ETH" "c" "id-SwC")
  with
  | Error e -> Alcotest.fail e
  | Ok script ->
      check tbool "bridged" true (Scenarios.vlan_reachable v);
      Nm.teardown v.Scenarios.vnm script;
      check tbool "isolated after teardown" false (Scenarios.vlan_reachable v);
      let p = Netsim.Device.port v.Scenarios.vtb.Netsim.Testbeds.swa 0 in
      check tbool "customer port parked in the holding VLAN" true
        (p.Netsim.Device.port_mode = Netsim.Device.Access 4094)

let test_probe_end_to_end () =
  let v = Scenarios.build_vpn () in
  let path, _ = configure v canonical_gre in
  (* healthy: the edge-to-edge probe succeeds *)
  let ok, detail = Nm.probe_end_to_end v.Scenarios.nm path in
  check tbool ("healthy probe: " ^ detail) true ok;
  (* inject the silent fault: an out-of-band tunnel key change. Hop-by-hop
     self tests all pass, but the end-to-end probe catches it. *)
  (match
     (Netsim.Device.find_iface_exn v.Scenarios.tb.Netsim.Testbeds.rc "gre-P10-P9")
       .Netsim.Device.if_kind
   with
  | Netsim.Device.Tun t -> t.Netsim.Device.t_ikey <- Some 4242l
  | _ -> assert false);
  let verdicts = Nm.diagnose v.Scenarios.nm path in
  check tbool "hop-by-hop tests all pass (the fault is silent)" true
    (List.for_all (fun (_, ok, _) -> ok) verdicts);
  let ok, _ = Nm.probe_end_to_end v.Scenarios.nm path in
  check tbool "end-to-end probe catches it" false ok

(* --- NM address assignment (§II-E's DHCP-like exception) -------------------------- *)

let test_nm_assigns_addresses () =
  (* two unaddressed ISP routers: the NM assigns every address, then
     configures the GRE VPN over them *)
  let c = Scenarios.build_chain ~addressed:false 2 in
  check tbool "unaddressed: isolated" false (Scenarios.chain_reachable c);
  check tbool "ISP router has no addresses" true
    (List.length (Netsim.Device.local_addrs c.Scenarios.ctb.Netsim.Testbeds.routers.(0)) = 1);
  (* the NM's address plan: customer-facing and core interfaces *)
  Nm.assign_address c.Scenarios.cnm ~target:(Ids.v "IP" "g" "id-R1") ~addr:"192.168.0.2" ~plen:30;
  Nm.assign_address c.Scenarios.cnm ~target:(Ids.v "IP" "h" "id-R1") ~addr:"204.9.100.1" ~plen:30;
  Nm.assign_address c.Scenarios.cnm ~target:(Ids.v "IP" "j" "id-R2") ~addr:"204.9.100.2" ~plen:30;
  Nm.assign_address c.Scenarios.cnm ~target:(Ids.v "IP" "k" "id-R2") ~addr:"192.168.1.2" ~plen:30;
  (* now the ordinary pipeline works *)
  let paths = Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal in
  let p = List.find Scenarios.pure_gre paths in
  let _ = Nm.configure_path c.Scenarios.cnm c.Scenarios.cgoal p in
  check tbool "no errors" true (Nm.errors c.Scenarios.cnm = []);
  check tbool "VPN up over NM-assigned addresses" true (Scenarios.chain_reachable c)

(* --- performance enforcement (§II-D.1(c)) --------------------------------------- *)

(* Blasts [n] UDP packets from X to Y, 10us apart; returns how many arrive. *)
let udp_blast v n =
  let tb = v.Scenarios.tb in
  let received = ref 0 in
  Netsim.Device.udp_bind tb.Netsim.Testbeds.host2 ~port:9000 (fun ~src:_ ~src_port:_ _ ->
      incr received);
  let eq = Netsim.Net.eq tb.Netsim.Testbeds.vpn_net in
  for i = 0 to n - 1 do
    Netsim.Event_queue.schedule eq ~delay_ns:(Int64.of_int (i * 10_000)) (fun () ->
        Netsim.Datapath.udp_send tb.Netsim.Testbeds.host1
          ~src:(Packet.Ipv4_addr.of_string "10.0.1.2")
          ~dst:(Packet.Ipv4_addr.of_string "10.0.2.2")
          ~src_port:9000 ~dst_port:9000 (Bytes.make 64 'x'))
  done;
  ignore (Netsim.Net.run tb.Netsim.Testbeds.vpn_net);
  Netsim.Device.udp_unbind tb.Netsim.Testbeds.host2 ~port:9000;
  !received

let test_perf_enforcement () =
  let v = Scenarios.build_vpn () in
  let _ = configure v canonical_gre in
  check tint "all 20 arrive unthrottled" 20 (udp_blast v 20);
  (* the NM rate-limits what g sends into the path pipe P1: no tc command,
     no queueing discipline visible to it *)
  Nm.enforce_rate v.Scenarios.nm ~owner:(Ids.v "IP" "g" "id-A") ~pipe_id:"P1" ~rate_kbps:800;
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  let limited = udp_blast v 20 in
  check tbool (Printf.sprintf "throttled (%d of 20)" limited) true (limited >= 1 && limited < 20);
  check tbool "policer drops counted" true
    (Netsim.Counters.get
       (Netsim.Device.find_iface_exn v.Scenarios.tb.Netsim.Testbeds.ra "gre-P1-P2")
         .Netsim.Device.if_counters "policer_drops"
    > 0);
  (* removing the enforcement restores full delivery *)
  Nm.remove_rate v.Scenarios.nm ~owner:(Ids.v "IP" "g" "id-A") ~pipe_id:"P1";
  check tint "restored" 20 (udp_blast v 20)

(* --- security: ESP with the IKE control-module dependency (§II-F, fig. 1) ------- *)

let canonical_esp = "a, g, s, h, b, c, i, d, e, j, t, k, f"

let test_secure_paths_enumerated () =
  let v = Scenarios.build_vpn ~secure:true () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  check tint "ESP adds four options" 13 (List.length paths);
  check tint "four satisfy confidentiality" 4
    (List.length (List.filter Scenarios.secure paths));
  (* the plain testbed is unchanged: the extra options only exist because
     the extra modules advertise themselves *)
  let plain = Scenarios.build_vpn () in
  check tint "still nine without ESP" 9
    (List.length (Nm.find_paths plain.Scenarios.nm plain.Scenarios.goal))

let test_esp_dependency_in_abstraction () =
  let v = Scenarios.build_vpn ~secure:true () in
  let topo = Nm.topology v.Scenarios.nm in
  let esp = Topology.find_module_exn topo (Ids.v "ESP" "s" "id-A") in
  check tbool "ESP declares the esp-keys dependency" true
    ((Option.get esp.Abstraction.up).Abstraction.dependencies = [ "esp-keys" ]);
  check tbool "ESP advertises security" true
    (List.mem "confidentiality" esp.Abstraction.security);
  let ike = Topology.find_module_exn topo (Ids.v "IKE" "m" "id-A") in
  check tbool "IKE provides it" true (List.mem "esp-keys" ike.Abstraction.provides)

let configure_esp () =
  let v = Scenarios.build_vpn ~secure:true () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let p = List.find (fun p -> Path_finder.signature p = canonical_esp) paths in
  let script = Nm.configure_path v.Scenarios.nm v.Scenarios.goal p in
  (v, p, script)

let test_e2e_esp () =
  let v, _, script = configure_esp () in
  check tbool "no errors" true (Nm.errors v.Scenarios.nm = []);
  check tbool "S1 <-> S2 over IPsec" true (Scenarios.vpn_reachable v);
  (* the NM resolved the dependency to the IKE module in the script *)
  check tbool "dep resolved in the script" true
    (List.exists
       (function
         | Primitive.Create_pipe sp ->
             List.exists (fun (d, m) -> d = "esp-keys" && m.Ids.name = "IKE") sp.Primitive.deps
         | _ -> false)
       script.Script_gen.prims);
  (* the SAs were negotiated by IKE over the data plane *)
  match Nm.show_actual v.Scenarios.nm "id-A" with
  | Some state ->
      let ike_state = List.assoc (Ids.v "IKE" "m" "id-A") state in
      check tbool "SA established" true
        (List.exists (fun (_, v) -> v = "established") ike_state)
  | None -> Alcotest.fail "no showActual"

let test_esp_traffic_encrypted_on_core () =
  let v, _, _ = configure_esp () in
  Netsim.Trace.with_trace (fun () ->
      check tbool "reachable" true (Scenarios.vpn_reachable v));
  (* everything router B receives on the data path is ESP: no cleartext
     customer traffic crosses the core *)
  let core_rx =
    List.filter_map
      (fun e ->
        if e.Netsim.Trace.device = "B" && e.Netsim.Trace.what = "rx"
           && e.Netsim.Trace.detail <> "eth.arp"
        then Some e.Netsim.Trace.detail
        else None)
      (Netsim.Trace.get ())
  in
  check tbool "saw traffic" true (core_rx <> []);
  List.iter (fun s -> check tstr "encrypted" "eth.ip.esp" s) core_rx

let test_esp_wrong_key_drops () =
  let v, p, _ = configure_esp () in
  check tbool "up" true (Scenarios.vpn_reachable v);
  (* tamper with the key at C out-of-band: authentication fails silently *)
  (match
     (Netsim.Device.find_iface_exn v.Scenarios.tb.Netsim.Testbeds.rc "esp-P10-P9")
       .Netsim.Device.if_kind
   with
  | Netsim.Device.Tun t -> t.Netsim.Device.t_enc_in <- Some 424242l
  | _ -> assert false);
  check tbool "broken" false (Scenarios.vpn_reachable v);
  check tbool "auth drops counted" true
    (Netsim.Counters.get v.Scenarios.tb.Netsim.Testbeds.rc.Netsim.Device.dev_counters
       "esp_auth_drop"
    > 0);
  (* ... and the end-to-end probe localises it while hop tests pass *)
  let ok, _ = Nm.probe_end_to_end v.Scenarios.nm p in
  check tbool "probe catches it" false ok

(* --- multiple NMs (§V): warm standby takeover ---------------------------------- *)

let test_nm_takeover () =
  let v = Scenarios.build_vpn () in
  Nm.set_auto_repair v.Scenarios.nm true;
  let _, _ = configure v canonical_gre in
  check tbool "primary configured" true (Scenarios.vpn_reachable v);
  (* bring up a warm standby, replicate the primary's state, take over *)
  let standby =
    Nm.create ~chan:v.Scenarios.chan ~net:v.Scenarios.tb.Netsim.Testbeds.vpn_net
      ~my_id:"id-NM2" ()
  in
  Nm.replicate_to v.Scenarios.nm ~standby;
  Nm.take_over standby;
  (* the primary "dies": the operator renumbers C's core interface and only
     the standby can repair *)
  let before_primary = Nm.stats_received v.Scenarios.nm in
  let j = List.assoc "j" v.Scenarios.ip_handles in
  j.Ip_module.change_address ~iface:"eth2" "204.9.169.1" "204.9.169.5";
  ignore (Netsim.Net.run v.Scenarios.tb.Netsim.Testbeds.vpn_net);
  check tbool "standby saw the trigger" true (Nm.triggers standby <> []);
  check tbool "standby repaired the VPN" true (Scenarios.vpn_reachable v);
  check tint "primary received nothing after takeover" before_primary
    (Nm.stats_received v.Scenarios.nm)

let () =
  Alcotest.run "conman"
    [
      ( "codecs",
        [
          Alcotest.test_case "sexp roundtrip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "ids roundtrip" `Quick test_ids_roundtrip;
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "abstraction roundtrip" `Quick test_abstraction_roundtrip;
          QCheck_alcotest.to_alcotest prop_peer_msg_roundtrip;
          QCheck_alcotest.to_alcotest prop_sexp_roundtrip;
          QCheck_alcotest.to_alcotest prop_primitive_roundtrip;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "table 4 content" `Quick test_discovery_table4;
          Alcotest.test_case "potential graph" `Quick test_potential_graph;
        ] );
      ( "path-finder",
        [
          Alcotest.test_case "nine paths" `Quick test_nine_paths;
          Alcotest.test_case "figure 6 pruning" `Quick test_figure6_pruning;
          Alcotest.test_case "chooser prefers MPLS" `Quick test_chooser_prefers_mpls;
          Alcotest.test_case "pipe counts" `Quick test_pipe_counts;
        ] );
      ( "script-gen",
        [
          Alcotest.test_case "table 5 CONMan GRE" `Quick test_table5_conman_gre;
          Alcotest.test_case "table 5 CONMan MPLS" `Quick test_table5_conman_mpls;
          Alcotest.test_case "figure 7(b) shape" `Quick test_gre_script_shape;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "GRE path" `Quick test_e2e_gre;
          Alcotest.test_case "GRE without tradeoffs" `Quick test_e2e_gre_no_tradeoffs;
          Alcotest.test_case "MPLS path" `Quick test_e2e_mpls;
          Alcotest.test_case "IP-IP path" `Quick test_e2e_ipip;
          Alcotest.test_case "achieve picks and configures" `Quick test_e2e_achieve_default;
          Alcotest.test_case "raw in-band channel" `Quick test_e2e_raw_channel;
          Alcotest.test_case "VLAN tunnel" `Quick test_e2e_vlan;
        ] );
      ( "table6",
        [
          Alcotest.test_case "GRE messages" `Quick test_table6_gre;
          Alcotest.test_case "MPLS messages" `Quick test_table6_mpls;
          Alcotest.test_case "VLAN messages" `Quick test_table6_vlan;
        ] );
      ( "debug-and-deps",
        [
          Alcotest.test_case "self test + diagnose" `Quick test_self_test_and_diagnose;
          Alcotest.test_case "dependency trigger repair" `Quick test_dependency_trigger_repair;
          Alcotest.test_case "filter creation" `Quick test_filter_creation;
          Alcotest.test_case "end-to-end probe" `Quick test_probe_end_to_end;
        ] );
      ( "addressing",
        [ Alcotest.test_case "NM assigns addresses" `Quick test_nm_assigns_addresses ] );
      ( "performance",
        [ Alcotest.test_case "rate enforcement on a pipe" `Quick test_perf_enforcement ] );
      ( "security",
        [
          Alcotest.test_case "secure path enumeration" `Quick test_secure_paths_enumerated;
          Alcotest.test_case "dependency advertisement" `Quick test_esp_dependency_in_abstraction;
          Alcotest.test_case "IPsec end to end (IKE over data plane)" `Quick test_e2e_esp;
          Alcotest.test_case "core sees only ciphertext" `Quick test_esp_traffic_encrypted_on_core;
          Alcotest.test_case "wrong key drops" `Quick test_esp_wrong_key_drops;
        ] );
      ( "multi-nm",
        [ Alcotest.test_case "warm standby takeover" `Quick test_nm_takeover ] );
      ( "teardown",
        [
          Alcotest.test_case "GRE teardown" `Quick test_teardown;
          Alcotest.test_case "reconfigure after teardown" `Quick test_reconfigure_after_teardown;
          Alcotest.test_case "VLAN teardown" `Quick test_vlan_teardown;
        ] );
    ]
