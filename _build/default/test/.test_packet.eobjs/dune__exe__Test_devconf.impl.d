test/test_devconf.ml: Alcotest Buffer Catos_cli Classify Counters Devconf Device Linux_cli List Metrics Net Netsim Option Packet Paper_scripts Shell String Testbeds
