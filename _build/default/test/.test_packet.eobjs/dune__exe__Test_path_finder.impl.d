test/test_path_finder.ml: Alcotest Conman Ids List Nm Path_finder Printf QCheck QCheck_alcotest Scenarios Topology
