test/test_netsim.ml: Alcotest Bytes Counters Datapath Device Icmp Ip_proto Ipv4 Ipv4_addr Link List Net Netsim Packet Ping Prefix
