test/test_devconf.mli:
