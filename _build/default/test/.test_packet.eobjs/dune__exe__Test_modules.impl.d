test/test_modules.ml: Abstraction Agent Alcotest Bytes Conman Gre_module Ids Ip_module List Module_impl Mpls_module Netsim Nm Option Packet Path_finder Primitive Scenarios String Wire
