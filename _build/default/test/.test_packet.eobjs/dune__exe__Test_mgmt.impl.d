test/test_mgmt.ml: Alcotest Array Bytes Channel Device Event_queue Frame List Mgmt Net Netsim Printf QCheck QCheck_alcotest
