test/test_conman.mli:
