test/test_netsim_unit.mli:
