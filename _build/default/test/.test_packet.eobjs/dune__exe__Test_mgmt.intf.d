test/test_mgmt.mli:
