test/test_path_finder.mli:
