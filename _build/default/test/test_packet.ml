(* Unit and property tests for the wire codecs. *)

open Packet

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- generators -------------------------------------------------------- *)

let mac_gen = QCheck.Gen.(map Mac_addr.of_int (int_range 0 0xffffffffffff))
let ip_gen = QCheck.Gen.(map (fun i -> Ipv4_addr.of_int32 (Int32.of_int i)) (int_bound 0xfffffff))
let bytes_gen = QCheck.Gen.(map Bytes.of_string (string_size (int_bound 64)))

let arb name gen pp = QCheck.make ~print:(Fmt.to_to_string pp) gen |> fun a -> (name, a)

(* --- Mac / Ipv4 / Prefix ------------------------------------------------ *)

let test_mac_string () =
  let m = Mac_addr.of_string "02:00:00:00:01:02" in
  check tstr "roundtrip" "02:00:00:00:01:02" (Mac_addr.to_string m);
  check tbool "broadcast" true (Mac_addr.is_broadcast (Mac_addr.of_string "ff:ff:ff:ff:ff:ff"));
  check tbool "unicast" false (Mac_addr.is_multicast (Mac_addr.make ~device:3 ~port:1))

let test_ip_string () =
  let a = Ipv4_addr.of_string "204.9.168.1" in
  check tstr "roundtrip" "204.9.168.1" (Ipv4_addr.to_string a);
  check tint "octet" 9 (Ipv4_addr.octet a 1)

let test_prefix () =
  let p = Prefix.of_string "10.0.2.0/24" in
  check tbool "mem" true (Prefix.mem (Ipv4_addr.of_string "10.0.2.77") p);
  check tbool "not mem" false (Prefix.mem (Ipv4_addr.of_string "10.0.3.1") p);
  check tstr "normalised" "10.0.2.0/24" (Prefix.to_string (Prefix.of_string "10.0.2.9/24"));
  check tbool "subset" true
    (Prefix.subset ~sub:(Prefix.of_string "10.0.2.128/25") ~super:p);
  check tbool "not subset" false (Prefix.subset ~sub:(Prefix.of_string "10.0.0.0/8") ~super:p);
  check tstr "nth host" "10.0.2.1" (Ipv4_addr.to_string (Prefix.nth_host p 0))

let test_prefix_zero () =
  let d = Prefix.of_string "0.0.0.0/0" in
  check tbool "default matches all" true (Prefix.mem (Ipv4_addr.of_string "1.2.3.4") d)

(* --- header roundtrips -------------------------------------------------- *)

let test_eth_roundtrip () =
  let h =
    { Ethernet.dst = Mac_addr.make ~device:1 ~port:0;
      src = Mac_addr.make ~device:2 ~port:1;
      ethertype = Ethertype.Ipv4 }
  in
  let buf = Ethernet.encode h (Bytes.of_string "hello") in
  let r = Cursor.reader buf in
  let h' = Ethernet.read r in
  check tbool "eth" true (Ethernet.equal h h');
  check tstr "payload" "hello" (Bytes.to_string (Cursor.rest r))

let test_vlan_roundtrip () =
  let t = Vlan.make ~pcp:5 ~vid:22 Ethertype.Ipv4 in
  let w = Cursor.writer () in
  Vlan.write w t;
  let t' = Vlan.read (Cursor.reader (Cursor.contents w)) in
  check tbool "vlan" true (Vlan.equal t t')

let test_ipv4_roundtrip () =
  let h =
    Ipv4.make ~tos:7 ~id:42 ~ttl:17 ~proto:Ip_proto.Udp
      ~src:(Ipv4_addr.of_string "10.0.0.1") ~dst:(Ipv4_addr.of_string "10.0.0.2") ()
  in
  let buf = Ipv4.encode h (Bytes.of_string "payload!") in
  let h', p = Ipv4.decode buf in
  check tbool "hdr" true (Ipv4.equal h h');
  check tstr "payload" "payload!" (Bytes.to_string p)

let test_ipv4_checksum_detects_corruption () =
  let h =
    Ipv4.make ~proto:Ip_proto.Icmp ~src:(Ipv4_addr.of_string "1.1.1.1")
      ~dst:(Ipv4_addr.of_string "2.2.2.2") ()
  in
  let buf = Ipv4.encode h Bytes.empty in
  Bytes.set buf 8 '\x00' (* clobber the TTL *);
  check tbool "rejected" true
    (match Ipv4.decode buf with exception Ipv4.Bad_header _ -> true | _ -> false)

let test_udp_roundtrip () =
  let src = Ipv4_addr.of_string "10.0.0.1" and dst = Ipv4_addr.of_string "10.0.0.2" in
  let buf = Udp.encode ~src ~dst { Udp.src_port = 1234; dst_port = 53 } (Bytes.of_string "q") in
  let u, p = Udp.decode ~src ~dst buf in
  check tint "sport" 1234 u.Udp.src_port;
  check tint "dport" 53 u.Udp.dst_port;
  check tstr "payload" "q" (Bytes.to_string p)

let test_udp_pseudo_header () =
  let src = Ipv4_addr.of_string "10.0.0.1" and dst = Ipv4_addr.of_string "10.0.0.2" in
  let buf = Udp.encode ~src ~dst { Udp.src_port = 1; dst_port = 2 } (Bytes.of_string "x") in
  (* Decoding with a different address must fail the checksum. *)
  check tbool "pseudo" true
    (match Udp.decode ~src:(Ipv4_addr.of_string "10.0.0.9") ~dst buf with
    | exception Udp.Bad_header _ -> true
    | _ -> false)

let test_gre_roundtrip () =
  let g = Gre.make ~key:1001l ~seq:7l ~with_csum:true Ethertype.Ipv4 in
  let buf = Gre.encode g (Bytes.of_string "inner") in
  let g', p = Gre.decode buf in
  check tbool "gre" true (Gre.equal g g');
  check tstr "payload" "inner" (Bytes.to_string p)

let test_gre_no_options () =
  let g = Gre.make Ethertype.Ipv4 in
  let buf = Gre.encode g (Bytes.of_string "x") in
  check tint "minimal header" 4 (Bytes.length buf - 1);
  let g', _ = Gre.decode buf in
  check tbool "no key" true (g'.Gre.key = None && g'.Gre.seq = None && not g'.Gre.with_csum)

let test_mpls_roundtrip () =
  let stack = [ Mpls.entry ~ttl:63 2001; Mpls.entry ~ttl:64 10001 ] in
  let buf = Mpls.encode stack (Bytes.of_string "ip") in
  let stack', p = Mpls.decode buf in
  check tbool "stack" true (Mpls.equal stack stack');
  check tstr "payload" "ip" (Bytes.to_string p)

let test_esp_roundtrip () =
  let key = 7001l in
  let buf = Esp.encode ~key { Esp.spi = 0x100l; seq = 9l } (Bytes.of_string "secret payload") in
  let hdr, plain = Esp.decode ~key buf in
  check tbool "hdr" true (Esp.equal hdr { Esp.spi = 0x100l; seq = 9l });
  check tstr "payload" "secret payload" (Bytes.to_string plain);
  check tbool "ciphertext differs from plaintext" true
    (not
       (Bytes.equal
          (Bytes.sub buf Esp.header_size (Bytes.length buf - Esp.header_size - Esp.tag_size))
          (Bytes.of_string "secret payload")));
  check tbool "spi readable without key" true (Esp.spi_only buf = 0x100l)

let test_esp_wrong_key_rejected () =
  let buf = Esp.encode ~key:7001l { Esp.spi = 1l; seq = 1l } (Bytes.of_string "x") in
  check tbool "auth fails" true
    (match Esp.decode ~key:7002l buf with exception Esp.Bad_packet _ -> true | _ -> false)

let prop_esp_roundtrip =
  QCheck.Test.make ~name:"esp encode/decode roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* key = map Int32.of_int (int_bound 0xffffff)
         and* spi = map Int32.of_int (int_bound 0xffff)
         and* body = map Bytes.of_string (string_size (int_bound 64)) in
         return (key, spi, body)))
    (fun (key, spi, body) ->
      let hdr, plain = Esp.decode ~key (Esp.encode ~key { Esp.spi; seq = 1l } body) in
      Int32.equal hdr.Esp.spi spi && Bytes.equal plain body)

let test_icmp_roundtrip () =
  let m = Icmp.Echo_request { id = 9; seq = 3 } in
  let buf = Icmp.encode m (Bytes.of_string "ping") in
  let m', p = Icmp.decode buf in
  check tbool "icmp" true (Icmp.equal m m');
  check tstr "payload" "ping" (Bytes.to_string p)

let test_arp_roundtrip () =
  let a =
    { Arp_pkt.op = Arp_pkt.Request;
      sender_mac = Mac_addr.make ~device:1 ~port:0;
      sender_ip = Ipv4_addr.of_string "10.0.0.1";
      target_mac = Mac_addr.of_int 0;
      target_ip = Ipv4_addr.of_string "10.0.0.2" }
  in
  check tbool "arp" true (Arp_pkt.equal a (Arp_pkt.decode (Arp_pkt.encode a)))

let test_frame_signature () =
  let inner =
    Ipv4.encode
      (Ipv4.make ~proto:Ip_proto.Icmp ~src:(Ipv4_addr.of_string "10.0.0.1")
         ~dst:(Ipv4_addr.of_string "10.0.0.2") ())
      (Icmp.encode (Icmp.Echo_request { id = 1; seq = 1 }) Bytes.empty)
  in
  let gre = Gre.encode (Gre.make ~key:5l Ethertype.Ipv4) inner in
  let outer =
    Ipv4.encode
      (Ipv4.make ~proto:Ip_proto.Gre ~src:(Ipv4_addr.of_string "204.9.168.1")
         ~dst:(Ipv4_addr.of_string "204.9.169.1") ())
      gre
  in
  let frame =
    Ethernet.encode
      { Ethernet.dst = Mac_addr.broadcast;
        src = Mac_addr.make ~device:1 ~port:0;
        ethertype = Ethertype.Ipv4 }
      outer
  in
  check tstr "signature" "eth.ip.gre.ip.icmp" (Frame.signature frame)

(* --- properties --------------------------------------------------------- *)

let prop_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 encode/decode roundtrip" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* src = ip_gen and* dst = ip_gen and* ttl = int_range 1 255
         and* tos = int_bound 255 and* id = int_bound 0xffff and* body = bytes_gen in
         return (src, dst, ttl, tos, id, body)))
    (fun (src, dst, ttl, tos, id, body) ->
      let h = Ipv4.make ~tos ~id ~ttl ~proto:Ip_proto.Udp ~src ~dst () in
      let h', p = Ipv4.decode (Ipv4.encode h body) in
      Ipv4.equal h h' && Bytes.equal p body)

let prop_gre_roundtrip =
  QCheck.Test.make ~name:"gre encode/decode roundtrip" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* key = opt (map Int32.of_int (int_bound 0xffffff))
         and* seq = opt (map Int32.of_int (int_bound 0xffffff))
         and* with_csum = bool
         and* body = bytes_gen in
         return (key, seq, with_csum, body)))
    (fun (key, seq, with_csum, body) ->
      let g = { Gre.key; seq; with_csum; protocol = Ethertype.Ipv4 } in
      let g', p = Gre.decode (Gre.encode g body) in
      Gre.equal g g' && Bytes.equal p body)

let prop_mpls_roundtrip =
  QCheck.Test.make ~name:"mpls stack roundtrip" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* labels = list_size (int_range 1 6) (int_bound 0xfffff)
         and* body = bytes_gen in
         return (labels, body)))
    (fun (labels, body) ->
      let stack = List.map (fun l -> Mpls.entry l) labels in
      let stack', p = Mpls.decode (Mpls.encode stack body) in
      Mpls.equal stack stack' && Bytes.equal p body)

let prop_mac_roundtrip =
  QCheck.Test.make ~name:"mac wire roundtrip" ~count:500 (QCheck.make mac_gen) (fun m ->
      let w = Cursor.writer () in
      Mac_addr.write w m;
      Mac_addr.equal m (Mac_addr.read (Cursor.reader (Cursor.contents w))))

let prop_checksum_zero =
  QCheck.Test.make ~name:"filled checksum validates" ~count:500 (QCheck.make bytes_gen)
    (fun b ->
      QCheck.assume (Bytes.length b >= 2);
      let copy = Bytes.copy b in
      Bytes.set copy 0 '\x00';
      Bytes.set copy 1 '\x00';
      let c = Inet_csum.checksum copy 0 (Bytes.length copy) in
      Bytes.set copy 0 (Char.chr (c lsr 8));
      Bytes.set copy 1 (Char.chr (c land 0xff));
      Inet_csum.valid copy 0 (Bytes.length copy))

let prop_prefix_mem =
  QCheck.Test.make ~name:"prefix membership is mask equality" ~count:500
    (QCheck.make QCheck.Gen.(pair ip_gen (int_range 0 32)))
    (fun (a, l) ->
      let p = Prefix.make a l in
      Prefix.mem a p)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_ipv4_roundtrip; prop_gre_roundtrip; prop_mpls_roundtrip; prop_esp_roundtrip;
    prop_mac_roundtrip; prop_checksum_zero; prop_prefix_mem ]

let () =
  ignore arb;
  Alcotest.run "packet"
    [
      ( "addresses",
        [
          Alcotest.test_case "mac strings" `Quick test_mac_string;
          Alcotest.test_case "ip strings" `Quick test_ip_string;
          Alcotest.test_case "prefix ops" `Quick test_prefix;
          Alcotest.test_case "default route prefix" `Quick test_prefix_zero;
        ] );
      ( "headers",
        [
          Alcotest.test_case "ethernet roundtrip" `Quick test_eth_roundtrip;
          Alcotest.test_case "vlan roundtrip" `Quick test_vlan_roundtrip;
          Alcotest.test_case "ipv4 roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "ipv4 checksum" `Quick test_ipv4_checksum_detects_corruption;
          Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
          Alcotest.test_case "udp pseudo header" `Quick test_udp_pseudo_header;
          Alcotest.test_case "gre roundtrip" `Quick test_gre_roundtrip;
          Alcotest.test_case "gre minimal" `Quick test_gre_no_options;
          Alcotest.test_case "mpls roundtrip" `Quick test_mpls_roundtrip;
          Alcotest.test_case "esp roundtrip" `Quick test_esp_roundtrip;
          Alcotest.test_case "esp wrong key" `Quick test_esp_wrong_key_rejected;
          Alcotest.test_case "icmp roundtrip" `Quick test_icmp_roundtrip;
          Alcotest.test_case "arp roundtrip" `Quick test_arp_roundtrip;
          Alcotest.test_case "frame signature" `Quick test_frame_signature;
        ] );
      ("properties", qsuite);
    ]
