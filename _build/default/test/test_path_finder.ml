(* Dedicated path-finder tests: enumeration on chains of varying length,
   the domain-pruning ablation, encapsulation-balance invariants, goal
   error cases, and a property test that configures randomly chosen paths
   end to end. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* --- invariants over enumerated paths --------------------------------------- *)

(* A path must be encapsulation-balanced: every pushed header is popped by a
   module of the same protocol, in LIFO order, with the base headers
   restored at the end. *)
let balanced (p : Path_finder.path) =
  let ok = ref true in
  let stack = ref [] in
  let eth_missing = ref false in
  List.iter
    (fun (v : Path_finder.visit) ->
      match v.Path_finder.v_action with
      | Path_finder.Push ->
          if v.Path_finder.v_chain = Path_finder.base_eth then
            (* restoring the customer frame: only valid at the very end *)
            eth_missing := false
          else stack := v.Path_finder.v_chain :: !stack
      | Path_finder.Pop -> (
          if v.Path_finder.v_chain = Path_finder.base_eth then eth_missing := true
          else
            match !stack with
            | top :: rest when top = v.Path_finder.v_chain -> stack := rest
            | _ -> ok := false)
      | Path_finder.Inspect -> ())
    p.Path_finder.visits;
  !ok && !stack = [] && not !eth_missing

let all_paths v = Nm.find_paths v.Scenarios.nm v.Scenarios.goal

let test_all_paths_balanced () =
  let v = Scenarios.build_vpn () in
  List.iter
    (fun p -> check tbool ("balanced: " ^ Path_finder.signature p) true (balanced p))
    (all_paths v)

let test_paths_start_and_end_at_goal () =
  let v = Scenarios.build_vpn () in
  List.iter
    (fun (p : Path_finder.path) ->
      let first = List.hd p.Path_finder.visits and last = List.hd (List.rev p.Path_finder.visits) in
      check tbool "starts at a" true (Ids.equal first.Path_finder.v_mod v.Scenarios.goal.Path_finder.g_from);
      check tbool "ends at f" true (Ids.equal last.Path_finder.v_mod v.Scenarios.goal.Path_finder.g_to))
    (all_paths v)

let test_no_module_revisits () =
  let v = Scenarios.build_vpn () in
  List.iter
    (fun (p : Path_finder.path) ->
      let mods = List.map (fun v -> v.Path_finder.v_mod) p.Path_finder.visits in
      check tint "no revisits" (List.length mods) (List.length (List.sort_uniq compare mods)))
    (all_paths v)

(* --- chains of varying length ------------------------------------------------- *)

let test_chain_path_counts () =
  (* path counts grow with the number of MPLS-capable segments; the n=3
     chain reproduces the paper's figure-4 testbed exactly *)
  let count n =
    let c = Scenarios.build_chain n in
    List.length (Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal)
  in
  check tint "n=2" 6 (count 2);
  check tint "n=3 (the paper's 9)" 9 (count 3);
  check tbool "monotone growth" true (count 4 > 9 && count 5 > count 4)

let test_chain_pure_paths_exist () =
  List.iter
    (fun n ->
      let c = Scenarios.build_chain n in
      let paths = Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal in
      check tbool "pure gre exists" true (List.exists Scenarios.pure_gre paths);
      check tbool "pure mpls exists" true (List.exists Scenarios.pure_mpls paths);
      check tbool "pure ipip exists" true (List.exists Scenarios.pure_ipip paths))
    [ 2; 4; 6 ]

(* --- ablation: domain pruning ---------------------------------------------------- *)

let test_domain_pruning_ablation () =
  let v = Scenarios.build_vpn () in
  let topo = Nm.topology v.Scenarios.nm in
  let pruned = Path_finder.find topo v.Scenarios.goal in
  let unpruned = Path_finder.find ~prune_domains:false topo v.Scenarios.goal in
  check tint "pruned = 9" 9 (List.length pruned);
  check tbool "pruning removes invalid paths" true
    (List.length unpruned > List.length pruned);
  (* every pruned path is also found without pruning (pruning only removes) *)
  let sigs = List.map Path_finder.signature unpruned in
  List.iter
    (fun p -> check tbool "subset" true (List.mem (Path_finder.signature p) sigs))
    pruned

(* --- diamond: alternate routes + the hierarchical traversal ------------------------ *)

let test_diamond_full_vs_hierarchical () =
  let d = Scenarios.build_diamond () in
  let topo = Nm.topology d.Scenarios.dnm in
  let full = Path_finder.find topo d.Scenarios.dgoal in
  let hier = Path_finder.find_hierarchical topo d.Scenarios.dgoal in
  (* two parallel cores double the options; the hierarchical two-step
     traversal (the paper's scalability fix) commits to one device walk *)
  check tint "full search finds both cores" 18 (List.length full);
  check tint "hierarchical restricts to one walk" 9 (List.length hier);
  let fsigs = List.map Path_finder.signature full in
  List.iter
    (fun p -> check tbool "hierarchical subset of full" true (List.mem (Path_finder.signature p) fsigs))
    hier

let test_diamond_both_cores_work () =
  (* configure one path through each core; both must carry traffic *)
  List.iter
    (fun core_mpls ->
      let d = Scenarios.build_diamond () in
      let paths = Nm.find_paths d.Scenarios.dnm d.Scenarios.dgoal in
      let p =
        List.find
          (fun p ->
            Scenarios.pure_mpls p
            && List.exists (fun v -> Ids.short v.Path_finder.v_mod = core_mpls) p.Path_finder.visits)
          paths
      in
      let _ = Nm.configure_path d.Scenarios.dnm d.Scenarios.dgoal p in
      check tbool ("via " ^ core_mpls) true
        (Nm.errors d.Scenarios.dnm = [] && Scenarios.diamond_reachable d))
    [ "p1"; "p2" ]

(* --- goal error cases ------------------------------------------------------------- *)

let test_no_path_outside_scope () =
  let v = Scenarios.build_vpn () in
  let goal = { v.Scenarios.goal with Path_finder.g_scope = [ "id-A" ] } in
  check tbool "no path without the core in scope" true (Nm.find_paths v.Scenarios.nm goal = []);
  match Nm.achieve ~configure:false v.Scenarios.nm goal with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "achieve must fail"

let test_no_path_without_domains () =
  (* if the NM lacks domain knowledge for the IP modules, no path can place
     them (the paper's point that the NM owns address assignment) *)
  let v = Scenarios.build_vpn () in
  Topology.set_domains (Nm.topology v.Scenarios.nm) ~module_domains:[]
    ~domain_prefixes:[ ("C1-S1", "10.0.1.0/24"); ("C1-S2", "10.0.2.0/24") ];
  check tbool "no placeable path" true (Nm.find_paths v.Scenarios.nm v.Scenarios.goal = [])

let test_achieve_without_configure_is_pure () =
  let v = Scenarios.build_vpn () in
  (match Nm.achieve ~configure:false v.Scenarios.nm v.Scenarios.goal with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  check tbool "nothing configured" false (Scenarios.vpn_reachable v)

(* --- exhaustive: every enumerated path, once configured, carries traffic ---------- *)

let test_every_path_configures () =
  (* all 32 paths across chains of 2..4 routers: enumerate, configure each
     on a fresh testbed, verify bidirectional reachability *)
  List.iter
    (fun n ->
      let total =
        let c = Scenarios.build_chain n in
        List.length (Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal)
      in
      for i = 0 to total - 1 do
        let c = Scenarios.build_chain n in
        let paths = Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal in
        let path = List.nth paths i in
        let _ = Nm.configure_path c.Scenarios.cnm c.Scenarios.cgoal path in
        check tbool
          (Printf.sprintf "n=%d path %s" n (Path_finder.signature path))
          true
          (Nm.errors c.Scenarios.cnm = [] && Scenarios.chain_reachable c)
      done)
    [ 2; 3; 4 ]

(* ... and a sampled property for longer chains *)
let prop_any_path_configures =
  QCheck.Test.make ~name:"sampled n=5/6 paths configure to a working VPN" ~count:8
    (QCheck.make
       ~print:(fun (n, pick) -> Printf.sprintf "n=%d pick=%d" n pick)
       QCheck.Gen.(pair (int_range 5 6) (int_bound 1000)))
    (fun (n, pick) ->
      let c = Scenarios.build_chain n in
      let paths = Nm.find_paths c.Scenarios.cnm c.Scenarios.cgoal in
      let path = List.nth paths (pick mod List.length paths) in
      let _ = Nm.configure_path c.Scenarios.cnm c.Scenarios.cgoal path in
      Nm.errors c.Scenarios.cnm = [] && Scenarios.chain_reachable c)

let () =
  Alcotest.run "path_finder"
    [
      ( "invariants",
        [
          Alcotest.test_case "encapsulation balance" `Quick test_all_paths_balanced;
          Alcotest.test_case "endpoints" `Quick test_paths_start_and_end_at_goal;
          Alcotest.test_case "no revisits" `Quick test_no_module_revisits;
        ] );
      ( "chains",
        [
          Alcotest.test_case "path counts" `Quick test_chain_path_counts;
          Alcotest.test_case "pure paths exist" `Quick test_chain_pure_paths_exist;
        ] );
      ( "ablation",
        [ Alcotest.test_case "domain pruning" `Quick test_domain_pruning_ablation ] );
      ( "diamond",
        [
          Alcotest.test_case "full vs hierarchical" `Quick test_diamond_full_vs_hierarchical;
          Alcotest.test_case "both cores configure" `Quick test_diamond_both_cores_work;
        ] );
      ( "errors",
        [
          Alcotest.test_case "out of scope" `Quick test_no_path_outside_scope;
          Alcotest.test_case "missing domains" `Quick test_no_path_without_domains;
          Alcotest.test_case "achieve without configure" `Quick test_achieve_without_configure_is_pure;
        ] );
      ( "properties",
        [
          Alcotest.test_case "every path configures (n=2..4)" `Quick test_every_path_configures;
          QCheck_alcotest.to_alcotest prop_any_path_configures;
        ] );
    ]
