(* Byte-oriented readers and writers used by all header codecs.
   All multi-byte fields are big-endian (network order). *)

exception Truncated

type r = { buf : bytes; mutable rpos : int; rlimit : int }

let reader ?(pos = 0) ?limit buf =
  let rlimit = match limit with Some l -> l | None -> Bytes.length buf in
  if pos < 0 || pos > rlimit || rlimit > Bytes.length buf then invalid_arg "Cursor.reader";
  { buf; rpos = pos; rlimit }

let pos r = r.rpos
let remaining r = r.rlimit - r.rpos

let check r n = if remaining r < n then raise Truncated

let u8 r =
  check r 1;
  let v = Char.code (Bytes.get r.buf r.rpos) in
  r.rpos <- r.rpos + 1;
  v

let u16 r =
  let hi = u8 r in
  let lo = u8 r in
  (hi lsl 8) lor lo

let u32 r =
  let hi = u16 r in
  let lo = u16 r in
  Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo)

let take r n =
  check r n;
  let b = Bytes.sub r.buf r.rpos n in
  r.rpos <- r.rpos + n;
  b

let rest r = take r (remaining r)

let skip r n =
  check r n;
  r.rpos <- r.rpos + n

type w = { mutable wbuf : bytes; mutable wpos : int }

let writer () = { wbuf = Bytes.create 64; wpos = 0 }

let ensure w n =
  let needed = w.wpos + n in
  if needed > Bytes.length w.wbuf then begin
    let cap = ref (Bytes.length w.wbuf * 2) in
    while !cap < needed do cap := !cap * 2 done;
    let nb = Bytes.create !cap in
    Bytes.blit w.wbuf 0 nb 0 w.wpos;
    w.wbuf <- nb
  end

let w8 w v =
  ensure w 1;
  Bytes.set w.wbuf w.wpos (Char.chr (v land 0xff));
  w.wpos <- w.wpos + 1

let w16 w v =
  w8 w (v lsr 8);
  w8 w v

let w32 w v =
  w16 w (Int32.to_int (Int32.shift_right_logical v 16) land 0xffff);
  w16 w (Int32.to_int v land 0xffff)

let wbytes w b =
  ensure w (Bytes.length b);
  Bytes.blit b 0 w.wbuf w.wpos (Bytes.length b);
  w.wpos <- w.wpos + Bytes.length b

let length w = w.wpos
let contents w = Bytes.sub w.wbuf 0 w.wpos

let patch_u16 w off v =
  if off + 2 > w.wpos then invalid_arg "Cursor.patch_u16";
  Bytes.set w.wbuf off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set w.wbuf (off + 1) (Char.chr (v land 0xff))
