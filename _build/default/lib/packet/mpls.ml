(* MPLS label-stack entries (RFC 3032). A packet carries a non-empty stack;
   the bottom entry has the S bit set. *)

type entry = { label : int; tc : int; ttl : int }

type t = entry list

exception Bad_header of string

let entry ?(tc = 0) ?(ttl = 64) label =
  if label < 0 || label > 0xfffff then invalid_arg "Mpls.entry";
  { label; tc; ttl }

let entry_size = 4

let write_entry w { label; tc; ttl } ~bottom =
  let v =
    Int32.logor
      (Int32.shift_left (Int32.of_int label) 12)
      (Int32.of_int (((tc land 7) lsl 9) lor (if bottom then 1 lsl 8 else 0) lor (ttl land 0xff)))
  in
  Cursor.w32 w v

let encode stack payload =
  if stack = [] then invalid_arg "Mpls.encode: empty stack";
  let w = Cursor.writer () in
  let n = List.length stack in
  List.iteri (fun i e -> write_entry w e ~bottom:(i = n - 1)) stack;
  Cursor.wbytes w payload;
  Cursor.contents w

let decode buf =
  let r = Cursor.reader buf in
  let rec loop acc =
    if Cursor.remaining r < entry_size then raise (Bad_header "truncated");
    let v = Cursor.u32 r in
    let label = Int32.to_int (Int32.shift_right_logical v 12) land 0xfffff in
    let tc = Int32.to_int (Int32.shift_right_logical v 9) land 7 in
    let bottom = Int32.logand v 0x100l <> 0l in
    let ttl = Int32.to_int v land 0xff in
    let acc = { label; tc; ttl } :: acc in
    if bottom then List.rev acc else loop acc
  in
  let stack = loop [] in
  (stack, Cursor.rest r)

let equal_entry a b = a.label = b.label && a.tc = b.tc && a.ttl = b.ttl
let equal a b = List.length a = List.length b && List.for_all2 equal_entry a b

let pp_entry ppf e = Fmt.pf ppf "%d(ttl %d)" e.label e.ttl
let pp ppf t = Fmt.pf ppf "mpls [%a]" (Fmt.list ~sep:Fmt.comma pp_entry) t
