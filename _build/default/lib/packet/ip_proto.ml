(* IP protocol numbers used by the simulator. *)

type t = Icmp | Ipip | Udp | Gre | Esp | Other of int

let to_int = function Icmp -> 1 | Ipip -> 4 | Udp -> 17 | Gre -> 47 | Esp -> 50 | Other v -> v

let of_int = function 1 -> Icmp | 4 -> Ipip | 17 -> Udp | 47 -> Gre | 50 -> Esp | v -> Other v

let equal a b = to_int a = to_int b

let to_string = function
  | Icmp -> "icmp"
  | Ipip -> "ipip"
  | Udp -> "udp"
  | Gre -> "gre"
  | Esp -> "esp"
  | Other v -> string_of_int v

let pp ppf t = Fmt.string ppf (to_string t)
