(** Byte-oriented readers and writers used by all header codecs.
    Multi-byte fields are big-endian (network order). *)

exception Truncated

type r
(** A read cursor over an immutable region of bytes. *)

val reader : ?pos:int -> ?limit:int -> bytes -> r
val pos : r -> int
val remaining : r -> int
val u8 : r -> int
val u16 : r -> int
val u32 : r -> int32
val take : r -> int -> bytes
val rest : r -> bytes
val skip : r -> int -> unit

type w
(** A growable write buffer. *)

val writer : unit -> w
val w8 : w -> int -> unit
val w16 : w -> int -> unit
val w32 : w -> int32 -> unit
val wbytes : w -> bytes -> unit
val length : w -> int
val contents : w -> bytes

val patch_u16 : w -> int -> int -> unit
(** [patch_u16 w off v] overwrites the two bytes at [off] (used to fill
    checksums after the covered region has been written). *)
