(** RFC 1071 Internet checksum (one's-complement sum of 16-bit words). *)

val checksum : ?init:int -> bytes -> int -> int -> int
(** [checksum buf off len] is the checksum over [len] bytes at [off];
    [init] seeds the one's-complement sum (for pseudo-headers). *)

val valid : bytes -> int -> int -> bool
(** [valid buf off len] checks a region whose checksum field is filled. *)

val sum_bytes : int -> bytes -> int -> int -> int
(** Raw one's-complement accumulation, for incremental use. *)

val fold : int -> int
(** Fold carries into 16 bits. *)
