(* UDP headers. The checksum is computed over the IPv4 pseudo-header as
   required by RFC 768; callers supply the addresses. *)

type t = { src_port : int; dst_port : int }

exception Bad_header of string

let header_size = 8

let pseudo_sum ~src ~dst len =
  let w = Cursor.writer () in
  Ipv4_addr.write w src;
  Ipv4_addr.write w dst;
  Cursor.w8 w 0;
  Cursor.w8 w (Ip_proto.to_int Ip_proto.Udp);
  Cursor.w16 w len;
  let b = Cursor.contents w in
  Inet_csum.sum_bytes 0 b 0 (Bytes.length b)

let encode ~src ~dst t payload =
  let len = header_size + Bytes.length payload in
  let w = Cursor.writer () in
  Cursor.w16 w t.src_port;
  Cursor.w16 w t.dst_port;
  Cursor.w16 w len;
  Cursor.w16 w 0;
  Cursor.wbytes w payload;
  let buf = Cursor.contents w in
  let csum = Inet_csum.checksum ~init:(pseudo_sum ~src ~dst len) buf 0 len in
  let csum = if csum = 0 then 0xffff else csum in
  Cursor.patch_u16 w 6 csum;
  Cursor.contents w

let decode ~src ~dst buf =
  let r = Cursor.reader buf in
  if Cursor.remaining r < header_size then raise (Bad_header "truncated");
  let src_port = Cursor.u16 r in
  let dst_port = Cursor.u16 r in
  let len = Cursor.u16 r in
  if len < header_size || len > Bytes.length buf then raise (Bad_header "bad length");
  let csum = Cursor.u16 r in
  if csum <> 0 then begin
    let sum = Inet_csum.sum_bytes (pseudo_sum ~src ~dst len) buf 0 len in
    if Inet_csum.fold sum <> 0xffff then raise (Bad_header "bad checksum")
  end;
  ({ src_port; dst_port }, Bytes.sub buf header_size (len - header_size))

let equal a b = a.src_port = b.src_port && a.dst_port = b.dst_port
let pp ppf t = Fmt.pf ppf "udp %d -> %d" t.src_port t.dst_port
