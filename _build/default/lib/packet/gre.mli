(** GRE headers (RFC 2784 + RFC 2890 key/sequence extensions). *)

type t = {
  key : int32 option;
  seq : int32 option;
  with_csum : bool;
  protocol : Ethertype.t;
}

exception Bad_header of string

val make : ?key:int32 -> ?seq:int32 -> ?with_csum:bool -> Ethertype.t -> t
val header_size : t -> int
val encode : t -> bytes -> bytes
val decode : bytes -> t * bytes
val equal : t -> t -> bool
val pp : t Fmt.t
