(* IPv4 addresses as int32 (network order value). *)

type t = int32

let of_int32 i = i
let to_int32 t = t

let of_octets a b c d =
  let v x =
    if x < 0 || x > 255 then invalid_arg "Ipv4_addr.of_octets";
    Int32.of_int x
  in
  Int32.logor
    (Int32.shift_left (v a) 24)
    (Int32.logor (Int32.shift_left (v b) 16) (Int32.logor (Int32.shift_left (v c) 8) (v d)))

let octet t i = Int32.to_int (Int32.shift_right_logical t ((3 - i) * 8)) land 0xff

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 0) (octet t 1) (octet t 2) (octet t 3)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      (try of_octets (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
       with Failure _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s))
  | _ -> invalid_arg ("Ipv4_addr.of_string: " ^ s)

let any = 0l
let broadcast = 0xffffffffl
let localhost = of_octets 127 0 0 1

let equal (a : t) (b : t) = Int32.equal a b
let compare (a : t) (b : t) = Int32.unsigned_compare a b
let hash (t : t) = Hashtbl.hash t
let pp ppf t = Fmt.string ppf (to_string t)

let write w t = Cursor.w32 w t
let read r = Cursor.u32 r

let succ t = Int32.add t 1l
