(* IPv4 headers (no options). Encoding fills total length and checksum;
   decoding verifies the checksum and rejects truncated packets. *)

type t = {
  tos : int;
  id : int;
  dont_fragment : bool;
  ttl : int;
  proto : Ip_proto.t;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
}

exception Bad_header of string

let header_size = 20

let make ?(tos = 0) ?(id = 0) ?(dont_fragment = true) ?(ttl = 64) ~proto ~src ~dst () =
  { tos; id; dont_fragment; ttl; proto; src; dst }

let encode t payload =
  let w = Cursor.writer () in
  Cursor.w8 w 0x45;
  Cursor.w8 w t.tos;
  Cursor.w16 w (header_size + Bytes.length payload);
  Cursor.w16 w t.id;
  Cursor.w16 w (if t.dont_fragment then 0x4000 else 0);
  Cursor.w8 w t.ttl;
  Cursor.w8 w (Ip_proto.to_int t.proto);
  Cursor.w16 w 0 (* checksum placeholder *);
  Ipv4_addr.write w t.src;
  Ipv4_addr.write w t.dst;
  let hdr = Cursor.contents w in
  Cursor.patch_u16 w 10 (Inet_csum.checksum hdr 0 header_size);
  Cursor.wbytes w payload;
  Cursor.contents w

let decode buf =
  let r = Cursor.reader buf in
  if Cursor.remaining r < header_size then raise (Bad_header "truncated");
  let vihl = Cursor.u8 r in
  if vihl lsr 4 <> 4 then raise (Bad_header "not IPv4");
  let ihl = (vihl land 0xf) * 4 in
  if ihl <> header_size then raise (Bad_header "options unsupported");
  let tos = Cursor.u8 r in
  let total_len = Cursor.u16 r in
  if total_len < header_size || total_len > Bytes.length buf then
    raise (Bad_header "bad total length");
  let id = Cursor.u16 r in
  let flags_frag = Cursor.u16 r in
  if flags_frag land 0x3fff <> 0 then raise (Bad_header "fragments unsupported");
  let ttl = Cursor.u8 r in
  let proto = Ip_proto.of_int (Cursor.u8 r) in
  let _csum = Cursor.u16 r in
  if not (Inet_csum.valid buf 0 header_size) then raise (Bad_header "bad checksum");
  let src = Ipv4_addr.read r in
  let dst = Ipv4_addr.read r in
  let payload = Bytes.sub buf header_size (total_len - header_size) in
  ({ tos; id; dont_fragment = flags_frag land 0x4000 <> 0; ttl; proto; src; dst }, payload)

let equal a b =
  a.tos = b.tos && a.id = b.id && a.dont_fragment = b.dont_fragment && a.ttl = b.ttl
  && Ip_proto.equal a.proto b.proto && Ipv4_addr.equal a.src b.src
  && Ipv4_addr.equal a.dst b.dst

let pp ppf t =
  Fmt.pf ppf "ip %a -> %a %a ttl=%d" Ipv4_addr.pp t.src Ipv4_addr.pp t.dst Ip_proto.pp
    t.proto t.ttl
