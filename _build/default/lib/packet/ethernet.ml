(* Ethernet II framing (no FCS; the simulator's links are reliable unless
   asked to corrupt). *)

type t = { dst : Mac_addr.t; src : Mac_addr.t; ethertype : Ethertype.t }

let header_size = 14

let write w { dst; src; ethertype } =
  Mac_addr.write w dst;
  Mac_addr.write w src;
  Cursor.w16 w (Ethertype.to_int ethertype)

let read r =
  let dst = Mac_addr.read r in
  let src = Mac_addr.read r in
  let ethertype = Ethertype.of_int (Cursor.u16 r) in
  { dst; src; ethertype }

let encode t payload =
  let w = Cursor.writer () in
  write w t;
  Cursor.wbytes w payload;
  Cursor.contents w

let equal a b =
  Mac_addr.equal a.dst b.dst && Mac_addr.equal a.src b.src
  && Ethertype.equal a.ethertype b.ethertype

let pp ppf t =
  Fmt.pf ppf "eth %a -> %a %a" Mac_addr.pp t.src Mac_addr.pp t.dst Ethertype.pp t.ethertype
