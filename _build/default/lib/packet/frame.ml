(* Best-effort decoding of a whole frame into its header stack. Used by the
   packet tracer and tests; the forwarding engines parse incrementally and
   do not depend on this. *)

type header =
  | Eth of Ethernet.t
  | Vlan_tag of Vlan.t
  | Ip of Ipv4.t
  | Gre_hdr of Gre.t
  | Mpls_stack of Mpls.t
  | Udp_hdr of Udp.t
  | Icmp_msg of Icmp.t
  | Arp of Arp_pkt.t
  | Payload of bytes
  | Opaque of string * bytes

let rec decode_ethertype et (buf : bytes) : header list =
  match et with
  | Ethertype.Ipv4 -> decode_ip buf
  | Ethertype.Arp -> ( try [ Arp (Arp_pkt.decode buf) ] with _ -> [ Opaque ("arp?", buf) ])
  | Ethertype.Vlan | Ethertype.Qinq -> (
      try
        let r = Cursor.reader buf in
        let tag = Vlan.read r in
        Vlan_tag tag :: decode_ethertype tag.Vlan.inner (Cursor.rest r)
      with _ -> [ Opaque ("vlan?", buf) ])
  | Ethertype.Mpls_unicast -> (
      try
        let stack, rest = Mpls.decode buf in
        (* The payload under MPLS is not self-describing; assume IPv4 as the
           simulator only labels IP packets. *)
        Mpls_stack stack :: decode_ip rest
      with _ -> [ Opaque ("mpls?", buf) ])
  | Ethertype.Mgmt -> [ Opaque ("mgmt", buf) ]
  | Ethertype.Other _ -> [ Payload buf ]

and decode_ip buf : header list =
  try
    let hdr, payload = Ipv4.decode buf in
    let inner =
      match hdr.Ipv4.proto with
      | Ip_proto.Ipip -> decode_ip payload
      | Ip_proto.Gre -> (
          try
            let g, rest = Gre.decode payload in
            Gre_hdr g :: decode_ethertype g.Gre.protocol rest
          with _ -> [ Opaque ("gre?", payload) ])
      | Ip_proto.Udp -> (
          try
            let u, rest = Udp.decode ~src:hdr.Ipv4.src ~dst:hdr.Ipv4.dst payload in
            [ Udp_hdr u; Payload rest ]
          with _ -> [ Opaque ("udp?", payload) ])
      | Ip_proto.Icmp -> (
          try
            let i, rest = Icmp.decode payload in
            [ Icmp_msg i; Payload rest ]
          with _ -> [ Opaque ("icmp?", payload) ])
      | Ip_proto.Esp ->
          (* encrypted: nothing below the SPI is visible without the key *)
          [ Opaque ("esp", payload) ]
      | Ip_proto.Other _ -> [ Payload payload ]
    in
    Ip hdr :: inner
  with _ -> [ Opaque ("ip?", buf) ]

let decode buf : header list =
  try
    let r = Cursor.reader buf in
    let eth = Ethernet.read r in
    Eth eth :: decode_ethertype eth.Ethernet.ethertype (Cursor.rest r)
  with _ -> [ Opaque ("eth?", buf) ]

let pp_header ppf = function
  | Eth e -> Ethernet.pp ppf e
  | Vlan_tag v -> Vlan.pp ppf v
  | Ip i -> Ipv4.pp ppf i
  | Gre_hdr g -> Gre.pp ppf g
  | Mpls_stack m -> Mpls.pp ppf m
  | Udp_hdr u -> Udp.pp ppf u
  | Icmp_msg i -> Icmp.pp ppf i
  | Arp a -> Arp_pkt.pp ppf a
  | Payload b -> Fmt.pf ppf "payload(%d)" (Bytes.length b)
  | Opaque (what, b) -> Fmt.pf ppf "%s(%d)" what (Bytes.length b)

let pp ppf headers = Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " | ") pp_header) headers

(* A compact protocol signature, e.g. "eth.ip.gre.ip.icmp". *)
let signature buf =
  decode buf
  |> List.filter_map (function
       | Eth _ -> Some "eth"
       | Vlan_tag _ -> Some "vlan"
       | Ip _ -> Some "ip"
       | Gre_hdr _ -> Some "gre"
       | Mpls_stack _ -> Some "mpls"
       | Udp_hdr _ -> Some "udp"
       | Icmp_msg _ -> Some "icmp"
       | Arp _ -> Some "arp"
       | Payload _ -> None
       | Opaque (w, _) -> Some w)
  |> String.concat "."
