(* ARP for IPv4 over Ethernet (RFC 826). *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac_addr.t;
  sender_ip : Ipv4_addr.t;
  target_mac : Mac_addr.t;
  target_ip : Ipv4_addr.t;
}

exception Bad_header of string

let size = 28

let encode t =
  let w = Cursor.writer () in
  Cursor.w16 w 1 (* htype ethernet *);
  Cursor.w16 w (Ethertype.to_int Ethertype.Ipv4);
  Cursor.w8 w 6;
  Cursor.w8 w 4;
  Cursor.w16 w (match t.op with Request -> 1 | Reply -> 2);
  Mac_addr.write w t.sender_mac;
  Ipv4_addr.write w t.sender_ip;
  Mac_addr.write w t.target_mac;
  Ipv4_addr.write w t.target_ip;
  Cursor.contents w

let decode buf =
  let r = Cursor.reader buf in
  if Cursor.remaining r < size then raise (Bad_header "truncated");
  let htype = Cursor.u16 r in
  let ptype = Cursor.u16 r in
  let hlen = Cursor.u8 r in
  let plen = Cursor.u8 r in
  if htype <> 1 || ptype <> Ethertype.to_int Ethertype.Ipv4 || hlen <> 6 || plen <> 4 then
    raise (Bad_header "unsupported ARP format");
  let op =
    match Cursor.u16 r with
    | 1 -> Request
    | 2 -> Reply
    | _ -> raise (Bad_header "unknown op")
  in
  let sender_mac = Mac_addr.read r in
  let sender_ip = Ipv4_addr.read r in
  let target_mac = Mac_addr.read r in
  let target_ip = Ipv4_addr.read r in
  { op; sender_mac; sender_ip; target_mac; target_ip }

let equal a b =
  a.op = b.op
  && Mac_addr.equal a.sender_mac b.sender_mac
  && Ipv4_addr.equal a.sender_ip b.sender_ip
  && Mac_addr.equal a.target_mac b.target_mac
  && Ipv4_addr.equal a.target_ip b.target_ip

let pp ppf t =
  match t.op with
  | Request -> Fmt.pf ppf "arp who-has %a tell %a" Ipv4_addr.pp t.target_ip Ipv4_addr.pp t.sender_ip
  | Reply -> Fmt.pf ppf "arp %a is-at %a" Ipv4_addr.pp t.sender_ip Mac_addr.pp t.sender_mac
