(** IPv4 addresses. *)

type t

val of_int32 : int32 -> t
val to_int32 : t -> int32
val of_octets : int -> int -> int -> int -> t
val octet : t -> int -> int
val of_string : string -> t
val to_string : t -> string
val any : t
val broadcast : t
val localhost : t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : t Fmt.t
val write : Cursor.w -> t -> unit
val read : Cursor.r -> t
val succ : t -> t
