(* IPv4 prefixes in CIDR notation. *)

type t = { network : Ipv4_addr.t; len : int }

let mask_of_len len =
  if len < 0 || len > 32 then invalid_arg "Prefix.mask_of_len";
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

let make addr len =
  let m = mask_of_len len in
  { network = Ipv4_addr.of_int32 (Int32.logand (Ipv4_addr.to_int32 addr) m); len }

let network t = t.network
let len t = t.len
let mask t = mask_of_len t.len

let of_string s =
  match String.index_opt s '/' with
  | None -> make (Ipv4_addr.of_string s) 32
  | Some i ->
      let addr = Ipv4_addr.of_string (String.sub s 0 i) in
      let l = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make addr l

let to_string t = Printf.sprintf "%s/%d" (Ipv4_addr.to_string t.network) t.len

let mem addr t =
  Int32.equal
    (Int32.logand (Ipv4_addr.to_int32 addr) (mask_of_len t.len))
    (Ipv4_addr.to_int32 t.network)

let subset ~sub ~super = sub.len >= super.len && mem sub.network super

let equal a b = Ipv4_addr.equal a.network b.network && a.len = b.len

let compare a b =
  match Ipv4_addr.compare a.network b.network with 0 -> compare a.len b.len | c -> c

let pp ppf t = Fmt.string ppf (to_string t)

(* Host addresses usable inside the prefix (skips network/broadcast on < /31). *)
let nth_host t i =
  let base = Ipv4_addr.to_int32 t.network in
  let host = if t.len >= 31 then i else i + 1 in
  Ipv4_addr.of_int32 (Int32.add base (Int32.of_int host))
