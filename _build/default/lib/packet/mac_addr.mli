(** 48-bit Ethernet MAC addresses. *)

type t

val broadcast : t
val of_int : int -> t
val to_int : t -> int

val make : device:int -> port:int -> t
(** A locally-administered unicast address unique per (device, port). *)

val is_broadcast : t -> bool
val is_multicast : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val of_string : string -> t
val pp : t Fmt.t
val write : Cursor.w -> t -> unit
val read : Cursor.r -> t
