(* EtherType values used by the simulator. *)

type t =
  | Ipv4
  | Arp
  | Vlan (* 802.1Q *)
  | Qinq (* 802.1ad outer tag *)
  | Mpls_unicast
  | Mgmt (* CONMan management channel, a local-experimental ethertype *)
  | Other of int

let to_int = function
  | Ipv4 -> 0x0800
  | Arp -> 0x0806
  | Vlan -> 0x8100
  | Qinq -> 0x88a8
  | Mpls_unicast -> 0x8847
  | Mgmt -> 0x88b5
  | Other v -> v

let of_int = function
  | 0x0800 -> Ipv4
  | 0x0806 -> Arp
  | 0x8100 -> Vlan
  | 0x88a8 -> Qinq
  | 0x8847 -> Mpls_unicast
  | 0x88b5 -> Mgmt
  | v -> Other v

let equal a b = to_int a = to_int b

let to_string = function
  | Ipv4 -> "IPv4"
  | Arp -> "ARP"
  | Vlan -> "802.1Q"
  | Qinq -> "802.1ad"
  | Mpls_unicast -> "MPLS"
  | Mgmt -> "MGMT"
  | Other v -> Printf.sprintf "0x%04x" v

let pp ppf t = Fmt.string ppf (to_string t)
