(** Ethernet II framing. *)

type t = { dst : Mac_addr.t; src : Mac_addr.t; ethertype : Ethertype.t }

val header_size : int
val write : Cursor.w -> t -> unit
val read : Cursor.r -> t
val encode : t -> bytes -> bytes
val equal : t -> t -> bool
val pp : t Fmt.t
