(* ICMP echo request/reply and the error messages the simulator emits. *)

type t =
  | Echo_request of { id : int; seq : int }
  | Echo_reply of { id : int; seq : int }
  | Dest_unreachable of { code : int }
  | Time_exceeded

exception Bad_header of string

let encode t payload =
  let w = Cursor.writer () in
  let ty, code, a, b =
    match t with
    | Echo_request { id; seq } -> (8, 0, id, seq)
    | Echo_reply { id; seq } -> (0, 0, id, seq)
    | Dest_unreachable { code } -> (3, code, 0, 0)
    | Time_exceeded -> (11, 0, 0, 0)
  in
  Cursor.w8 w ty;
  Cursor.w8 w code;
  Cursor.w16 w 0;
  Cursor.w16 w a;
  Cursor.w16 w b;
  Cursor.wbytes w payload;
  let buf = Cursor.contents w in
  Cursor.patch_u16 w 2 (Inet_csum.checksum buf 0 (Bytes.length buf));
  Cursor.contents w

let decode buf =
  let r = Cursor.reader buf in
  if Cursor.remaining r < 8 then raise (Bad_header "truncated");
  if not (Inet_csum.valid buf 0 (Bytes.length buf)) then raise (Bad_header "bad checksum");
  let ty = Cursor.u8 r in
  let code = Cursor.u8 r in
  let _csum = Cursor.u16 r in
  let a = Cursor.u16 r in
  let b = Cursor.u16 r in
  let payload = Cursor.rest r in
  let t =
    match ty with
    | 8 -> Echo_request { id = a; seq = b }
    | 0 -> Echo_reply { id = a; seq = b }
    | 3 -> Dest_unreachable { code }
    | 11 -> Time_exceeded
    | _ -> raise (Bad_header "unknown type")
  in
  (t, payload)

let equal a b =
  match (a, b) with
  | Echo_request x, Echo_request y -> x.id = y.id && x.seq = y.seq
  | Echo_reply x, Echo_reply y -> x.id = y.id && x.seq = y.seq
  | Dest_unreachable x, Dest_unreachable y -> x.code = y.code
  | Time_exceeded, Time_exceeded -> true
  | (Echo_request _ | Echo_reply _ | Dest_unreachable _ | Time_exceeded), _ -> false

let pp ppf = function
  | Echo_request { id; seq } -> Fmt.pf ppf "icmp echo-req id=%d seq=%d" id seq
  | Echo_reply { id; seq } -> Fmt.pf ppf "icmp echo-rep id=%d seq=%d" id seq
  | Dest_unreachable { code } -> Fmt.pf ppf "icmp unreachable code=%d" code
  | Time_exceeded -> Fmt.string ppf "icmp time-exceeded"
