lib/packet/ethertype.ml: Fmt Printf
