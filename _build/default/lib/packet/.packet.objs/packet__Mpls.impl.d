lib/packet/mpls.ml: Cursor Fmt Int32 List
