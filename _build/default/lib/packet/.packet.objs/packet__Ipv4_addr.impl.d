lib/packet/ipv4_addr.ml: Cursor Fmt Hashtbl Int32 Printf String
