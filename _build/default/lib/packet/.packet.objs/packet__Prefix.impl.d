lib/packet/prefix.ml: Fmt Int32 Ipv4_addr Printf String
