lib/packet/vlan.mli: Cursor Ethertype Fmt
