lib/packet/cursor.mli:
