lib/packet/ethernet.mli: Cursor Ethertype Fmt Mac_addr
