lib/packet/frame.ml: Arp_pkt Bytes Cursor Ethernet Ethertype Fmt Gre Icmp Ip_proto Ipv4 List Mpls String Udp Vlan
