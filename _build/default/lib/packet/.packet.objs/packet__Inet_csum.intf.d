lib/packet/inet_csum.mli:
