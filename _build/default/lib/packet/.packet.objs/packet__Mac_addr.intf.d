lib/packet/mac_addr.mli: Cursor Fmt
