lib/packet/mpls.mli: Fmt
