lib/packet/gre.mli: Ethertype Fmt
