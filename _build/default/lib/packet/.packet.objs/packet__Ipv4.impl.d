lib/packet/ipv4.ml: Bytes Cursor Fmt Inet_csum Ip_proto Ipv4_addr
