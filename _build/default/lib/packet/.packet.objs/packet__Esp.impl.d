lib/packet/esp.ml: Bytes Char Cursor Fmt Inet_csum Int32
