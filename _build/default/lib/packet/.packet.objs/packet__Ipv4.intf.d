lib/packet/ipv4.mli: Fmt Ip_proto Ipv4_addr
