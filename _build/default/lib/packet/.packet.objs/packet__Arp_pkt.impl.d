lib/packet/arp_pkt.ml: Cursor Ethertype Fmt Ipv4_addr Mac_addr
