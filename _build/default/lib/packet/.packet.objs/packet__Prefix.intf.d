lib/packet/prefix.mli: Fmt Ipv4_addr
