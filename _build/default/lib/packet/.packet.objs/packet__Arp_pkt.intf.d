lib/packet/arp_pkt.mli: Fmt Ipv4_addr Mac_addr
