lib/packet/cursor.ml: Bytes Char Int32
