lib/packet/gre.ml: Bytes Cursor Ethertype Fmt Inet_csum
