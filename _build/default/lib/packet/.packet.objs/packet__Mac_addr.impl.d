lib/packet/mac_addr.ml: Cursor Fmt Hashtbl Int32 Printf String
