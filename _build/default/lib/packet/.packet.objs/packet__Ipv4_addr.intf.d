lib/packet/ipv4_addr.mli: Cursor Fmt
