lib/packet/inet_csum.ml: Bytes Char
