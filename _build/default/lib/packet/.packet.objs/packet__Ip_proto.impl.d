lib/packet/ip_proto.ml: Fmt
