lib/packet/vlan.ml: Cursor Ethertype Fmt
