lib/packet/ethernet.ml: Cursor Ethertype Fmt Mac_addr
