lib/packet/udp.ml: Bytes Cursor Fmt Inet_csum Ip_proto Ipv4_addr
