lib/packet/udp.mli: Fmt Ipv4_addr
