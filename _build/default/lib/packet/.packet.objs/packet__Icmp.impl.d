lib/packet/icmp.ml: Bytes Cursor Fmt Inet_csum
