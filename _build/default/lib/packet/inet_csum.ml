(* RFC 1071 Internet checksum. *)

let sum_bytes init buf off len =
  let acc = ref init in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    acc := !acc + ((Char.code (Bytes.get buf !i) lsl 8) lor Char.code (Bytes.get buf (!i + 1)));
    i := !i + 2
  done;
  if !i < stop then acc := !acc + (Char.code (Bytes.get buf !i) lsl 8);
  !acc

let fold acc =
  let acc = ref acc in
  while !acc lsr 16 <> 0 do
    acc := (!acc land 0xffff) + (!acc lsr 16)
  done;
  !acc

let checksum ?(init = 0) buf off len = lnot (fold (sum_bytes init buf off len)) land 0xffff

let valid buf off len = fold (sum_bytes 0 buf off len) = 0xffff
