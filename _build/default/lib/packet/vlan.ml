(* 802.1Q tag: 16-bit TCI (pcp/dei/vid) followed by the encapsulated
   ethertype. Appears in a frame immediately after the 0x8100 ethertype. *)

type t = { pcp : int; dei : bool; vid : int; inner : Ethertype.t }

let make ?(pcp = 0) ?(dei = false) ~vid inner =
  if vid < 0 || vid > 4095 then invalid_arg "Vlan.make";
  if pcp < 0 || pcp > 7 then invalid_arg "Vlan.make";
  { pcp; dei; vid; inner }

let size = 4

let write w { pcp; dei; vid; inner } =
  let tci = (pcp lsl 13) lor (if dei then 1 lsl 12 else 0) lor (vid land 0xfff) in
  Cursor.w16 w tci;
  Cursor.w16 w (Ethertype.to_int inner)

let read r =
  let tci = Cursor.u16 r in
  let inner = Ethertype.of_int (Cursor.u16 r) in
  { pcp = tci lsr 13; dei = tci land 0x1000 <> 0; vid = tci land 0xfff; inner }

let equal a b = a.pcp = b.pcp && a.dei = b.dei && a.vid = b.vid && Ethertype.equal a.inner b.inner
let pp ppf t = Fmt.pf ppf "vlan %d (pcp %d) %a" t.vid t.pcp Ethertype.pp t.inner
