(** IPv4 headers (no options, no fragmentation). *)

type t = {
  tos : int;
  id : int;
  dont_fragment : bool;
  ttl : int;
  proto : Ip_proto.t;
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
}

exception Bad_header of string

val header_size : int

val make :
  ?tos:int ->
  ?id:int ->
  ?dont_fragment:bool ->
  ?ttl:int ->
  proto:Ip_proto.t ->
  src:Ipv4_addr.t ->
  dst:Ipv4_addr.t ->
  unit ->
  t

val encode : t -> bytes -> bytes
(** [encode t payload] builds a checksummed packet. *)

val decode : bytes -> t * bytes
(** Parses and verifies a packet; raises {!Bad_header} on malformed input. *)

val equal : t -> t -> bool
val pp : t Fmt.t
