(** UDP headers with pseudo-header checksums. *)

type t = { src_port : int; dst_port : int }

exception Bad_header of string

val header_size : int
val encode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> t -> bytes -> bytes
val decode : src:Ipv4_addr.t -> dst:Ipv4_addr.t -> bytes -> t * bytes
val equal : t -> t -> bool
val pp : t Fmt.t
