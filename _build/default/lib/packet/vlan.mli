(** 802.1Q VLAN tags. *)

type t = { pcp : int; dei : bool; vid : int; inner : Ethertype.t }

val make : ?pcp:int -> ?dei:bool -> vid:int -> Ethertype.t -> t
val size : int
val write : Cursor.w -> t -> unit
val read : Cursor.r -> t
val equal : t -> t -> bool
val pp : t Fmt.t
