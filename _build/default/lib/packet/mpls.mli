(** MPLS label stacks (RFC 3032). *)

type entry = { label : int; tc : int; ttl : int }
type t = entry list

exception Bad_header of string

val entry : ?tc:int -> ?ttl:int -> int -> entry
val entry_size : int
val encode : t -> bytes -> bytes
val decode : bytes -> t * bytes
val equal_entry : entry -> entry -> bool
val equal : t -> t -> bool
val pp_entry : entry Fmt.t
val pp : t Fmt.t
