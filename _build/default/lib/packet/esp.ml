(* A simplified ESP (IP protocol 50) for the simulator: SPI, sequence
   number, "encrypted" payload and an authentication tag. Encryption is a
   keyed byte transform and the tag a keyed checksum — enough that only
   endpoints holding the same key can exchange traffic, which is the
   property the management experiments rely on. *)

type t = { spi : int32; seq : int32 }

exception Bad_packet of string

let header_size = 8
let tag_size = 2

let keystream key i =
  (* a tiny xorshift-style stream seeded by the key and position *)
  let k = Int32.to_int key land 0xffffffff in
  let x = (k * 1103515245) + (i * 12820163) + 12345 in
  (x lsr 16) land 0xff

let transform ~key buf =
  Bytes.mapi (fun i c -> Char.chr (Char.code c lxor keystream key i)) buf

let tag ~key buf =
  let w = Cursor.writer () in
  Cursor.w32 w key;
  Cursor.wbytes w buf;
  let b = Cursor.contents w in
  Inet_csum.checksum b 0 (Bytes.length b)

let encode ~key t payload =
  let w = Cursor.writer () in
  Cursor.w32 w t.spi;
  Cursor.w32 w t.seq;
  let cipher = transform ~key payload in
  Cursor.wbytes w cipher;
  Cursor.w16 w (tag ~key cipher);
  Cursor.contents w

(* Decodes and authenticates with [key]; raises on a tag mismatch (wrong
   or missing keying material). *)
let decode ~key buf =
  let n = Bytes.length buf in
  if n < header_size + tag_size then raise (Bad_packet "truncated");
  let r = Cursor.reader ~limit:(n - tag_size) buf in
  let spi = Cursor.u32 r in
  let seq = Cursor.u32 r in
  let cipher = Cursor.rest r in
  let got = Cursor.reader ~pos:(n - tag_size) buf in
  let expect = Cursor.u16 got in
  if expect <> tag ~key cipher then raise (Bad_packet "authentication failed");
  ({ spi; seq }, transform ~key cipher)

let spi_only buf =
  if Bytes.length buf < 4 then raise (Bad_packet "truncated");
  Cursor.u32 (Cursor.reader buf)

let equal a b = Int32.equal a.spi b.spi && Int32.equal a.seq b.seq
let pp ppf t = Fmt.pf ppf "esp spi=%ld seq=%ld" t.spi t.seq
