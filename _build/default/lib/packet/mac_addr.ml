(* 48-bit Ethernet MAC addresses, stored as an int (fits in 63-bit OCaml ints). *)

type t = int

let broadcast = 0xffffffffffff

let of_int i =
  if i < 0 || i > broadcast then invalid_arg "Mac_addr.of_int";
  i

let to_int t = t

(* Locally administered unicast addresses for simulated NICs. *)
let make ~device ~port = 0x020000000000 lor ((device land 0xffff) lsl 8) lor (port land 0xff)

let is_broadcast t = t = broadcast
let is_multicast t = t land 0x010000000000 <> 0

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
let hash (t : t) = Hashtbl.hash t

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xff) ((t lsr 32) land 0xff) ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff) ((t lsr 8) land 0xff) (t land 0xff)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
      let h x = int_of_string ("0x" ^ x) in
      (h a lsl 40) lor (h b lsl 32) lor (h c lsl 24) lor (h d lsl 16) lor (h e lsl 8) lor h f
  | _ -> invalid_arg "Mac_addr.of_string"

let pp ppf t = Fmt.string ppf (to_string t)

let write w t =
  Cursor.w16 w ((t lsr 32) land 0xffff);
  Cursor.w32 w (Int32.of_int (t land 0xffffffff))

let read r =
  let hi = Cursor.u16 r in
  let lo = Cursor.u32 r in
  (hi lsl 32) lor (Int32.to_int lo land 0xffffffff)
