(* GRE per RFC 2784 with the RFC 2890 key and sequence-number extensions.
   The checksum, when present, covers the GRE header and payload. *)

type t = {
  key : int32 option;
  seq : int32 option;
  with_csum : bool;
  protocol : Ethertype.t;
}

exception Bad_header of string

let make ?key ?seq ?(with_csum = false) protocol = { key; seq; with_csum; protocol }

let header_size t =
  4
  + (if t.with_csum then 4 else 0)
  + (match t.key with Some _ -> 4 | None -> 0)
  + match t.seq with Some _ -> 4 | None -> 0

let encode t payload =
  let w = Cursor.writer () in
  let flags =
    (if t.with_csum then 0x8000 else 0)
    lor (match t.key with Some _ -> 0x2000 | None -> 0)
    lor match t.seq with Some _ -> 0x1000 | None -> 0
  in
  Cursor.w16 w flags;
  Cursor.w16 w (Ethertype.to_int t.protocol);
  let csum_off = if t.with_csum then Some (Cursor.length w) else None in
  if t.with_csum then Cursor.w32 w 0l;
  (match t.key with Some k -> Cursor.w32 w k | None -> ());
  (match t.seq with Some s -> Cursor.w32 w s | None -> ());
  Cursor.wbytes w payload;
  (match csum_off with
  | Some off ->
      let buf = Cursor.contents w in
      Cursor.patch_u16 w off (Inet_csum.checksum buf 0 (Bytes.length buf))
  | None -> ());
  Cursor.contents w

let decode buf =
  let r = Cursor.reader buf in
  if Cursor.remaining r < 4 then raise (Bad_header "truncated");
  let flags = Cursor.u16 r in
  if flags land 0x0007 <> 0 then raise (Bad_header "bad version");
  if flags land 0x4000 <> 0 then raise (Bad_header "routing present unsupported");
  let protocol = Ethertype.of_int (Cursor.u16 r) in
  let with_csum = flags land 0x8000 <> 0 in
  if with_csum then begin
    if not (Inet_csum.valid buf 0 (Bytes.length buf)) then raise (Bad_header "bad checksum");
    Cursor.skip r 4
  end;
  let key = if flags land 0x2000 <> 0 then Some (Cursor.u32 r) else None in
  let seq = if flags land 0x1000 <> 0 then Some (Cursor.u32 r) else None in
  ({ key; seq; with_csum; protocol }, Cursor.rest r)

let equal a b =
  a.key = b.key && a.seq = b.seq && a.with_csum = b.with_csum
  && Ethertype.equal a.protocol b.protocol

let pp ppf t =
  Fmt.pf ppf "gre proto=%a%a%a%s" Ethertype.pp t.protocol
    (Fmt.option (fun ppf k -> Fmt.pf ppf " key=%ld" k))
    t.key
    (Fmt.option (fun ppf s -> Fmt.pf ppf " seq=%ld" s))
    t.seq
    (if t.with_csum then " csum" else "")
