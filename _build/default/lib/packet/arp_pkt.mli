(** ARP for IPv4 over Ethernet. *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac_addr.t;
  sender_ip : Ipv4_addr.t;
  target_mac : Mac_addr.t;
  target_ip : Ipv4_addr.t;
}

exception Bad_header of string

val size : int
val encode : t -> bytes
val decode : bytes -> t
val equal : t -> t -> bool
val pp : t Fmt.t
