(** IPv4 CIDR prefixes. *)

type t

val make : Ipv4_addr.t -> int -> t
(** [make addr len] normalises [addr] to its network address. *)

val network : t -> Ipv4_addr.t
val len : t -> int
val mask : t -> int32
val mask_of_len : int -> int32
val of_string : string -> t
val to_string : t -> string
val mem : Ipv4_addr.t -> t -> bool
val subset : sub:t -> super:t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

val nth_host : t -> int -> Ipv4_addr.t
(** [nth_host t i] is the [i]-th usable host address in [t]. *)
