lib/devconf/linux_cli.mli: Netsim Shell
