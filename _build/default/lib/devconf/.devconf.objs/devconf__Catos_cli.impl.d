lib/devconf/catos_cli.ml: Device Fmt List Netsim String
