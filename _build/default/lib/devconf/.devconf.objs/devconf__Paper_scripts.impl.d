lib/devconf/paper_scripts.ml:
