lib/devconf/linux_cli.ml: Device Filename Fmt Int32 Ipv4_addr List Netsim Option Packet Prefix Printf Shell String
