lib/devconf/metrics.mli: Classify Fmt
