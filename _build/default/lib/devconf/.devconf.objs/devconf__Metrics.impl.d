lib/devconf/metrics.ml: Classify Fmt List Set String
