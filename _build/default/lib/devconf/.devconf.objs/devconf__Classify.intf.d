lib/devconf/classify.mli:
