lib/devconf/shell.mli: Hashtbl
