lib/devconf/shell.ml: Buffer Fmt Hashtbl List String
