lib/devconf/classify.ml: Linux_cli List Shell String
