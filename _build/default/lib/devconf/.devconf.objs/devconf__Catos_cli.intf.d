lib/devconf/catos_cli.mli: Netsim
