(** Aggregation of per-line classifications into the paper's Table V rows:
    distinct generic/specific commands and state variables per script. *)

type counts = {
  generic_cmds : string list;
  specific_cmds : string list;
  generic_vars : string list;
  specific_vars : string list;
}

val n_generic_cmds : counts -> int
val n_specific_cmds : counts -> int
val n_generic_vars : counts -> int
val n_specific_vars : counts -> int

val make : cmds:(string * Classify.klass) list -> vars:(string * Classify.klass) list -> counts
(** Deduplicates; a value counted as specific anywhere is not also counted
    as generic. *)

val of_analyses : Classify.line_analysis list -> counts
val analyze_linux : string -> counts
(** Table-V counts for a Linux-dialect script (figures 7(a)/8(a)). *)

val analyze_catos : string -> counts
(** Table-V counts for a CatOS-dialect script (figure 9(a)). *)

val pp_row : (string * counts) Fmt.t
val pp_details : counts Fmt.t
