(** The "today" baseline: an interpreter for the Linux-style configuration
    commands of figures 7(a) and 8(a) — insmod/modprobe, ip
    tunnel/rule/route, ifconfig, sysctl writes via echo, and the mpls-linux
    userland commands — executed against a {!Netsim.Device.t}. *)

exception Error of string

val exec : Netsim.Device.t -> string list -> string
(** [exec dev argv] runs one command; returns its stdout (e.g. the NHLFE
    key line of [mpls nhlfe add]). Raises {!Error} on unknown commands,
    missing kernel modules, or bad arguments. *)

val run_script : Netsim.Device.t -> string -> Shell.t
(** Runs a whole shell-syntax script; returns the shell (for variables). *)

val module_of_path : string -> string
(** ["/lib/modules/.../ip_gre.ko"] -> ["ip_gre"]. *)
