(* A CatOS/IOS-flavoured CLI for the VLAN-tunnelling configuration of
   figure 9(a). Stateful: `interface X` enters a context that subsequent
   switchport commands apply to, `exit`/`end` leave it. *)

open Netsim

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type t = {
  dev : Device.t;
  mutable current_port : Device.port option;
  (* switchport state is combined: `switchport access vlan V` names the
     vlan, `switchport mode ...` decides how the port uses it. *)
  mutable pending_access_vlan : (int * int) list; (* port index -> vid *)
}

let create dev = { dev; current_port = None; pending_access_vlan = [] }

let find_port t name =
  match Device.port_by_name t.dev name with
  | Some p -> p
  | None -> fail "no such interface %s" name

let access_vid t (p : Device.port) =
  match List.assoc_opt p.Device.port_index t.pending_access_vlan with
  | Some v -> v
  | None -> (
      match p.Device.port_mode with
      | Device.Access v | Device.Dot1q_tunnel v -> v
      | Device.No_vlan | Device.Trunk _ -> 1)

let set_access_vid t (p : Device.port) vid =
  t.pending_access_vlan <-
    (p.Device.port_index, vid) :: List.remove_assoc p.Device.port_index t.pending_access_vlan

let in_context t =
  match t.current_port with Some p -> p | None -> fail "not in interface context"

let tokenize line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let exec t argv =
  match argv with
  | [] -> ()
  | "set" :: "vlan" :: vid :: rest -> (
      let vid = int_of_string vid in
      let def = Device.vlan_def t.dev vid in
      match rest with
      | "name" :: name :: more ->
          def.Device.vd_name <- name;
          (match more with
          | [ "mtu"; m ] -> def.Device.vd_mtu <- int_of_string m
          | [] -> ()
          | _ -> fail "set vlan: unsupported options")
      | [ "mtu"; m ] -> def.Device.vd_mtu <- int_of_string m
      | [ port_name ] -> (
          (* Adds the port to the VLAN; inter-switch ports become trunks
             carrying the tag. *)
          let p = find_port t port_name in
          match p.Device.port_mode with
          | Device.Trunk tr ->
              if not (List.mem vid tr.Device.allowed) then
                tr.Device.allowed <- vid :: tr.Device.allowed
          | Device.No_vlan ->
              p.Device.port_mode <- Device.Trunk { allowed = [ vid ]; native = None }
          | Device.Access _ | Device.Dot1q_tunnel _ ->
              fail "set vlan: %s is an access/tunnel port" port_name)
      | _ -> fail "set vlan: unsupported syntax")
  | [ "interface"; name ] -> t.current_port <- Some (find_port t name)
  | [ "switchport"; "access"; "vlan"; vid ] ->
      let p = in_context t in
      let vid = int_of_string vid in
      set_access_vid t p vid;
      (* Access mode unless/until a tunnel mode is configured. *)
      (match p.Device.port_mode with
      | Device.Dot1q_tunnel _ -> p.Device.port_mode <- Device.Dot1q_tunnel vid
      | Device.No_vlan | Device.Access _ | Device.Trunk _ ->
          p.Device.port_mode <- Device.Access vid)
  | [ "switchport"; "mode"; "dot1q-tunnel" ] ->
      let p = in_context t in
      p.Device.port_mode <- Device.Dot1q_tunnel (access_vid t p)
  | [ "switchport"; "mode"; "access" ] ->
      let p = in_context t in
      p.Device.port_mode <- Device.Access (access_vid t p)
  | [ "switchport"; "mode"; "trunk" ] ->
      let p = in_context t in
      p.Device.port_mode <- Device.Trunk { allowed = []; native = None }
  | [ "exit" ] -> t.current_port <- None
  | [ "end" ] -> t.current_port <- None
  | [ "vlan"; "dot1q"; "tag"; "native" ] -> t.dev.Device.sw.Device.tag_native <- true
  | cmd :: _ -> fail "unknown command %s" cmd

let run_line t line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' || line.[0] = '!' then () else exec t (tokenize line)

let run_script dev script =
  let t = create dev in
  List.iter (run_line t) (String.split_on_char '\n' script);
  t
