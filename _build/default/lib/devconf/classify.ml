(* Classification of configuration commands and state variables as generic
   (protocol-independent plumbing: identifiers, addresses, interface and
   table names) or protocol-specific (keys, modes, labels, VLAN ids, sysctl
   knobs). This re-derives, mechanically, the hand colour-coding behind the
   paper's Table V. *)

type klass = Generic | Specific

type line_analysis = {
  cmd_form : string; (* canonical command form, e.g. "ip route add" *)
  cmd_class : klass;
  vars : (string * klass) list; (* state variables appearing on the line *)
}

let tokenize line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let find_value opts key =
  let rec go = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go opts

let opt_var klass opts key =
  match find_value opts key with Some v -> [ (v, klass) ] | None -> []

let flag_var opts flag = if List.mem flag opts then [ (flag, Specific) ] else []

(* Strips a leading shell assignment (`VAR=\`cmd ...\``), remembering the
   variable so uses elsewhere count as protocol-specific state. *)
let strip_assignment line =
  match Shell.parse_assignment (String.trim line) with
  | Some (name, pipeline) ->
      let cmd = match String.split_on_char '|' pipeline with c :: _ -> c | [] -> "" in
      (Some name, String.trim cmd)
  | None -> (None, String.trim line)

exception Unrecognized of string

let analyze_linux_tokens tokens =
  match tokens with
  | [ "insmod"; path ] ->
      { cmd_form = "insmod"; cmd_class = Generic; vars = [ (Linux_cli.module_of_path path, Specific) ] }
  | [ "modprobe"; name ] ->
      { cmd_form = "modprobe"; cmd_class = Generic; vars = [ (name, Specific) ] }
  | "ip" :: "tunnel" :: "add" :: rest ->
      let name =
        match find_value rest "name" with
        | Some n -> [ (n, Specific) ]
        | None -> ( match rest with n :: _ when n <> "mode" -> [ (n, Specific) ] | _ -> [])
      in
      {
        cmd_form = "ip tunnel add";
        cmd_class = Specific;
        vars =
          name
          @ opt_var Specific rest "mode"
          @ opt_var Generic rest "remote"
          @ opt_var Generic rest "local"
          @ opt_var Specific rest "ikey"
          @ opt_var Specific rest "okey"
          @ opt_var Specific rest "key"
          @ opt_var Specific rest "ienc"
          @ opt_var Specific rest "oenc"
          @ opt_var Specific rest "ttl"
          @ flag_var rest "icsum" @ flag_var rest "ocsum" @ flag_var rest "iseq"
          @ flag_var rest "oseq";
      }
  | "ifconfig" :: iface :: rest ->
      {
        cmd_form = "ifconfig";
        cmd_class = Specific;
        vars = (iface, Generic) :: List.map (fun a -> (a, Generic)) rest;
      }
  | "echo" :: rest when List.mem ">" rest || List.mem ">>" rest -> (
      let target = List.nth rest (List.length rest - 1) in
      match target with
      | "/proc/sys/net/ipv4/ip_forward" ->
          { cmd_form = "echo >/proc"; cmd_class = Specific; vars = [ ("ip_forward", Specific) ] }
      | "/etc/iproute2/rt_tables" ->
          let vars =
            match rest with
            | num :: name :: _ -> [ (num, Specific); (name, Generic) ]
            | _ -> []
          in
          { cmd_form = "echo >>rt_tables"; cmd_class = Specific; vars }
      | t -> raise (Unrecognized ("echo target " ^ t)))
  | "ip" :: "rule" :: "add" :: rest ->
      {
        cmd_form = "ip rule add";
        cmd_class = Specific;
        vars =
          opt_var Generic rest "to" @ opt_var Generic rest "iif" @ opt_var Generic rest "iff"
          @ opt_var Generic rest "table";
      }
  | "ip" :: "route" :: "add" :: rest ->
      let rest = match rest with "to" :: r -> r | r -> r in
      let dst = match rest with d :: _ when d <> "default" -> [ (d, Generic) ] | _ -> [] in
      {
        cmd_form = "ip route add";
        cmd_class = Specific;
        vars =
          dst
          @ opt_var Generic rest "via"
          @ opt_var Generic rest "dev"
          @ opt_var Generic rest "table"
          @ opt_var Specific rest "mpls";
      }
  | [ "mpls"; "labelspace"; "set"; "dev"; iface; "labelspace"; n ] ->
      {
        cmd_form = "mpls labelspace set";
        cmd_class = Specific;
        vars = [ (iface, Generic); ("labelspace-" ^ n, Specific) ];
      }
  | [ "mpls"; "ilm"; "add"; "label"; "gen"; l; "labelspace"; n ] ->
      {
        cmd_form = "mpls ilm add";
        cmd_class = Specific;
        vars = [ (l, Specific); ("labelspace-" ^ n, Specific) ];
      }
  | "mpls" :: "nhlfe" :: "add" :: rest ->
      let push =
        let rec go = function
          | "push" :: "gen" :: l :: _ -> [ (l, Specific) ]
          | _ :: r -> go r
          | [] -> []
        in
        go rest
      in
      let nexthop =
        let rec go = function
          | "nexthop" :: iface :: "ipv4" :: addr :: _ -> [ (iface, Generic); (addr, Generic) ]
          | _ :: r -> go r
          | [] -> []
        in
        go rest
      in
      {
        cmd_form = "mpls nhlfe add";
        cmd_class = Specific;
        vars = opt_var Generic rest "mtu" @ push @ nexthop;
      }
  | "mpls" :: "xc" :: "add" :: rest ->
      {
        cmd_form = "mpls xc add";
        cmd_class = Specific;
        vars =
          (match find_value rest "gen" with Some l -> [ (l, Specific) ] | None -> [])
          @ (match find_value rest "labelspace" with
            | Some n -> [ ("labelspace-" ^ n, Specific) ]
            | None -> [])
          @ opt_var Specific rest "key";
      }
  | toks -> raise (Unrecognized (String.concat " " toks))

let analyze_catos_tokens tokens =
  match tokens with
  | "set" :: "vlan" :: vid :: rest ->
      let vars = ref [ (vid, Specific) ] in
      (match find_value ("vlan" :: rest) "name" with
      | Some n -> vars := (n, Specific) :: !vars
      | None -> ());
      (match find_value ("vlan" :: rest) "mtu" with
      | Some m -> vars := (m, Generic) :: !vars
      | None -> ());
      (match rest with
      | [ port ] -> vars := (port, Generic) :: !vars
      | _ -> ());
      { cmd_form = "set vlan"; cmd_class = Specific; vars = List.rev !vars }
  | [ "interface"; port ] ->
      { cmd_form = "interface"; cmd_class = Generic; vars = [ (port, Generic) ] }
  | [ "switchport"; "access"; "vlan"; vid ] ->
      { cmd_form = "switchport access vlan"; cmd_class = Specific; vars = [ (vid, Specific) ] }
  | [ "switchport"; "mode"; mode ] ->
      { cmd_form = "switchport mode"; cmd_class = Specific; vars = [ (mode, Specific) ] }
  | [ "exit" ] -> { cmd_form = "exit"; cmd_class = Generic; vars = [] }
  | [ "end" ] -> { cmd_form = "end"; cmd_class = Generic; vars = [] }
  | [ "vlan"; "dot1q"; "tag"; "native" ] ->
      {
        cmd_form = "vlan dot1q tag native";
        cmd_class = Specific;
        vars = [ ("dot1q-native", Specific) ];
      }
  | toks -> raise (Unrecognized (String.concat " " toks))

(* Shell variables like $KEY-S1-S2 carry NHLFE keys: protocol state. *)
let shell_var_uses line =
  let toks = tokenize line in
  List.filter_map (fun t -> if String.length t > 1 && t.[0] = '$' then Some (t, Specific) else None) toks

let analyze_line ~dialect line =
  let assigned, cmd = strip_assignment line in
  if cmd = "" || cmd.[0] = '#' || cmd.[0] = '!' then None
  else
    let base =
      match dialect with
      | `Linux -> analyze_linux_tokens (tokenize cmd)
      | `Catos -> analyze_catos_tokens (tokenize cmd)
    in
    let extra = shell_var_uses cmd in
    let assigned_var =
      match assigned with Some v -> [ ("$" ^ v, Specific) ] | None -> []
    in
    Some { base with vars = base.vars @ extra @ assigned_var }
