(** A CatOS/IOS-flavoured CLI for the VLAN-tunnelling configuration of
    figure 9(a). Stateful: [interface X] enters a context that subsequent
    switchport commands apply to; [exit]/[end] leave it. *)

exception Error of string

type t

val create : Netsim.Device.t -> t
val exec : t -> string list -> unit
val run_line : t -> string -> unit
val run_script : Netsim.Device.t -> string -> t
