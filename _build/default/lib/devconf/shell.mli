(** A miniature shell, just big enough to run the paper's configuration
    scripts (figures 7(a) and 8(a)): comments, variable assignment by
    command substitution with grep/cut pipelines, and [$VAR] expansion
    (names may contain '-', as the paper's [KEY-S1-S2] does). *)

exception Error of string

type t

val create : (string list -> string) -> t
(** [create exec] builds a shell whose commands are run by [exec argv],
    returning their stdout. *)

val run_line : t -> string -> unit
val run : t -> string -> unit
(** Runs a whole (newline-separated) script. *)

val get_var : t -> string -> string option

val parse_assignment : string -> (string * string) option
(** [parse_assignment "N=`cmd | f`"] is [Some ("N", "cmd | f")] — exposed
    for the Table-V script classifier. *)

val tokenize : string -> string list
val expand : (string, string) Hashtbl.t -> string -> string
