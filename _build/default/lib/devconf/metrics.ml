(* Aggregation of per-line classifications into the paper's Table V rows:
   distinct generic/specific commands and state variables per script. *)

module S = Set.Make (String)

type counts = {
  generic_cmds : string list;
  specific_cmds : string list;
  generic_vars : string list;
  specific_vars : string list;
}

let n_generic_cmds c = List.length c.generic_cmds
let n_specific_cmds c = List.length c.specific_cmds
let n_generic_vars c = List.length c.generic_vars
let n_specific_vars c = List.length c.specific_vars

(* Builds counts from raw (form/class, vars) data. A value counted as
   specific anywhere is not also counted as generic (e.g. a tunnel interface
   name later used as a route target). *)
let make ~cmds ~vars =
  let gc, sc =
    List.fold_left
      (fun (g, s) (form, k) ->
        match k with Classify.Generic -> (S.add form g, s) | Classify.Specific -> (g, S.add form s))
      (S.empty, S.empty) cmds
  in
  let sv =
    List.fold_left
      (fun s (v, k) -> match k with Classify.Specific -> S.add v s | Classify.Generic -> s)
      S.empty vars
  in
  let gv =
    List.fold_left
      (fun g (v, k) ->
        match k with
        | Classify.Generic -> if S.mem v sv then g else S.add v g
        | Classify.Specific -> g)
      S.empty vars
  in
  {
    generic_cmds = S.elements gc;
    specific_cmds = S.elements sc;
    generic_vars = S.elements gv;
    specific_vars = S.elements sv;
  }

let of_analyses analyses =
  let cmds = List.map (fun a -> (a.Classify.cmd_form, a.Classify.cmd_class)) analyses in
  let vars = List.concat_map (fun a -> a.Classify.vars) analyses in
  make ~cmds ~vars

let analyze_script ~dialect script =
  String.split_on_char '\n' script
  |> List.filter_map (Classify.analyze_line ~dialect)
  |> of_analyses

let analyze_linux = analyze_script ~dialect:`Linux
let analyze_catos = analyze_script ~dialect:`Catos

let pp_row ppf (label, c) =
  Fmt.pf ppf "%-22s cmds: %d generic / %d specific   vars: %d generic / %d specific" label
    (n_generic_cmds c) (n_specific_cmds c) (n_generic_vars c) (n_specific_vars c)

let pp_details ppf c =
  Fmt.pf ppf "generic cmds: %a@.specific cmds: %a@.generic vars: %a@.specific vars: %a"
    Fmt.(list ~sep:comma string)
    c.generic_cmds
    Fmt.(list ~sep:comma string)
    c.specific_cmds
    Fmt.(list ~sep:comma string)
    c.generic_vars
    Fmt.(list ~sep:comma string)
    c.specific_vars
