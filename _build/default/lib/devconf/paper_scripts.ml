(* The device-level configuration scripts of the paper. [gre_a] is figure
   7(a) verbatim (modulo line wrapping); [mpls_a] is figure 8(a) verbatim;
   [vlan_a] is figure 9(a) verbatim. The B/C-side scripts are not shown in
   the paper and are reconstructed here in the same dialect, mirroring the
   A-side choices (keys, labels, table numbering). *)

(* --- GRE VPN (figure 7a): tunnel between routers A and C --------------- *)

let gre_a =
  {|#!/bin/bash
# Insert the GRE-IP kernel module
insmod /lib/modules/2.6.14-2/ip_gre.ko
# Create the GRE tunnel with the appropriate key
ip tunnel add name greA mode gre remote 204.9.169.1 local 204.9.168.1 ikey 1001 okey 2001 icsum ocsum iseq oseq
ifconfig greA 192.168.3.1
# Enable Routing
echo 1 > /proc/sys/net/ipv4/ip_forward
# Create IP routing from customer to tunnel
echo 202 tun-1-2 >> /etc/iproute2/rt_tables
ip rule add to 10.0.2.0/24 table tun-1-2
ip route add default dev greA table tun-1-2
# Create IP routing from tunnel to customer
echo 203 tun-2-1 >> /etc/iproute2/rt_tables
ip rule add iff greA table tun-2-1
ip route add default dev eth1 table tun-2-1
ip route add to 204.9.169.1 via 204.9.168.2 dev eth2
|}

(* Core router B only needs plain IP forwarding between its interfaces. *)
let gre_b =
  {|#!/bin/bash
echo 1 > /proc/sys/net/ipv4/ip_forward
|}

(* Router C mirrors A: note the swapped key pair, the other site's prefix
   and the symmetric next hop. *)
let gre_c =
  {|#!/bin/bash
insmod /lib/modules/2.6.14-2/ip_gre.ko
ip tunnel add name greC mode gre remote 204.9.168.1 local 204.9.169.1 ikey 2001 okey 1001 icsum ocsum iseq oseq
ifconfig greC 192.168.3.2
echo 1 > /proc/sys/net/ipv4/ip_forward
echo 202 tun-1-2 >> /etc/iproute2/rt_tables
ip rule add to 10.0.1.0/24 table tun-1-2
ip route add default dev greC table tun-1-2
echo 203 tun-2-1 >> /etc/iproute2/rt_tables
ip rule add iff greC table tun-2-1
ip route add default dev eth1 table tun-2-1
ip route add to 204.9.168.1 via 204.9.169.2 dev eth2
|}

(* --- MPLS LSP (figure 8a): LSP through routers A, B and C --------------- *)

let mpls_a =
  {|#!/bin/bash
# Instantiating MPLS kernel modules
modprobe mpls
modprobe mpls4
# MPLS LSP for traffic from S2->S1
mpls labelspace set dev eth2 labelspace 0
mpls ilm add label gen 10001 labelspace 0
KEY-S2-S1=`mpls nhlfe add key 0 mtu 1500 instructions nexthop eth1 ipv4 192.168.0.1 | grep key | cut -c 17-26`
mpls xc add ilm label gen 10001 ilm labelspace 0 nhlfe key $KEY-S2-S1
# MPLS LSP for traffic from S1->S2
KEY-S1-S2=`mpls nhlfe add key 0 mtu 1500 instructions push gen 2001 nexthop eth2 ipv4 204.9.168.2 | grep key | cut -c 17-26`
echo 1 > /proc/sys/net/ipv4/ip_forward
ip route add 10.0.2.0/24 via 204.9.168.2 mpls $KEY-S1-S2
|}

let mpls_b =
  {|#!/bin/bash
modprobe mpls
modprobe mpls4
# swap 2001 -> 2002 towards C
mpls labelspace set dev eth1 labelspace 0
mpls ilm add label gen 2001 labelspace 0
KEY-S1-S2=`mpls nhlfe add key 0 mtu 1500 instructions push gen 2002 nexthop eth2 ipv4 204.9.169.1 | grep key | cut -c 17-26`
mpls xc add ilm label gen 2001 ilm labelspace 0 nhlfe key $KEY-S1-S2
# swap 10002 -> 10001 towards A
mpls labelspace set dev eth2 labelspace 0
mpls ilm add label gen 10002 labelspace 0
KEY-S2-S1=`mpls nhlfe add key 0 mtu 1500 instructions push gen 10001 nexthop eth1 ipv4 204.9.168.1 | grep key | cut -c 17-26`
mpls xc add ilm label gen 10002 ilm labelspace 0 nhlfe key $KEY-S2-S1
|}

let mpls_c =
  {|#!/bin/bash
modprobe mpls
modprobe mpls4
# MPLS LSP for traffic from S1->S2 (egress)
mpls labelspace set dev eth2 labelspace 0
mpls ilm add label gen 2002 labelspace 0
KEY-S1-S2=`mpls nhlfe add key 0 mtu 1500 instructions nexthop eth1 ipv4 192.168.1.1 | grep key | cut -c 17-26`
mpls xc add ilm label gen 2002 ilm labelspace 0 nhlfe key $KEY-S1-S2
# MPLS LSP for traffic from S2->S1 (ingress)
KEY-S2-S1=`mpls nhlfe add key 0 mtu 1500 instructions push gen 10002 nexthop eth2 ipv4 204.9.169.2 | grep key | cut -c 17-26`
echo 1 > /proc/sys/net/ipv4/ip_forward
ip route add 10.0.1.0/24 via 204.9.169.2 mpls $KEY-S2-S1
|}

(* --- VLAN tunnelling (figure 9a) ----------------------------------------- *)

let vlan_a =
  {|# put module0 port 9 into VLAN22
# ensure MTU is set properly
set vlan 22 name C1 mtu 1504
set vlan 22 gigabitethernet0/9
# ensure module 0 port 7 is access port
interface gigabitethernet0/7
switchport access vlan 22
switchport mode dot1q-tunnel
exit
vlan dot1q tag native
end
|}

let vlan_b =
  {|set vlan 22 name C1 mtu 1504
set vlan 22 gigabitethernet0/9
set vlan 22 gigabitethernet0/10
vlan dot1q tag native
end
|}

let vlan_c =
  {|set vlan 22 name C1 mtu 1504
set vlan 22 gigabitethernet0/9
interface gigabitethernet0/7
switchport access vlan 22
switchport mode dot1q-tunnel
exit
vlan dot1q tag native
end
|}
