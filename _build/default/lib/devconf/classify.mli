(** Classification of configuration commands and state variables as
    generic (protocol-independent plumbing: identifiers, addresses,
    interface and table names) or protocol-specific (keys, modes, labels,
    VLAN ids, sysctl knobs) — the mechanical re-derivation of the hand
    colour-coding behind the paper's Table V. The exact ruleset is
    documented in DESIGN.md. *)

type klass = Generic | Specific

type line_analysis = {
  cmd_form : string; (** canonical command form, e.g. "ip route add" *)
  cmd_class : klass;
  vars : (string * klass) list;
}

exception Unrecognized of string

val analyze_line : dialect:[ `Linux | `Catos ] -> string -> line_analysis option
(** [None] for blank/comment lines; raises {!Unrecognized} on commands the
    ruleset does not know (so new script constructs fail loudly rather
    than skewing the counts). *)
