(* A miniature shell, just big enough to run the paper's configuration
   scripts (figures 7(a) and 8(a)): comments, variable assignment by
   command substitution, $VAR expansion, and grep/cut pipelines inside
   substitutions. *)

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

(* Expand $VAR references; variable names may contain '-', as the paper's
   MPLS script uses names like KEY-S1-S2. *)
let expand vars line =
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  let is_var_char c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '-'
  in
  let rec go i =
    if i >= n then ()
    else if line.[i] = '$' then begin
      let j = ref (i + 1) in
      while !j < n && is_var_char line.[!j] do incr j done;
      let name = String.sub line (i + 1) (!j - i - 1) in
      (match Hashtbl.find_opt vars name with
      | Some v -> Buffer.add_string buf v
      | None -> fail "undefined variable $%s" name);
      go !j
    end
    else begin
      Buffer.add_char buf line.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* grep/cut are only needed to post-process command output inside
   substitutions, exactly as the paper's scripts do. *)
let apply_filter output filter =
  match tokenize filter with
  | "grep" :: pattern :: [] ->
      String.split_on_char '\n' output
      |> List.filter (fun l ->
             let plen = String.length pattern and llen = String.length l in
             let rec find i = i + plen <= llen && (String.sub l i plen = pattern || find (i + 1)) in
             plen = 0 || find 0)
      |> String.concat "\n"
  | [ "cut"; "-c"; range ] -> (
      match String.split_on_char '-' range with
      | [ a; b ] ->
          let a = int_of_string a and b = int_of_string b in
          String.split_on_char '\n' output
          |> List.map (fun l ->
                 if String.length l < a then ""
                 else String.sub l (a - 1) (min b (String.length l) - a + 1))
          |> String.concat "\n"
      | _ -> fail "cut: bad range %s" range)
  | _ -> fail "unsupported filter: %s" filter

let strip s = String.trim s

(* Splits an assignment with command substitution:
   NAME=`command | filter | filter`. *)
let parse_assignment line =
  match String.index_opt line '=' with
  | Some i when i > 0 && i + 1 < String.length line && line.[i + 1] = '`' ->
      let name = String.sub line 0 i in
      let rest = String.sub line (i + 2) (String.length line - i - 2) in
      if String.length rest > 0 && rest.[String.length rest - 1] = '`' then
        Some (name, String.sub rest 0 (String.length rest - 1))
      else None
  | _ -> None

type t = { vars : (string, string) Hashtbl.t; exec : string list -> string }

let create exec = { vars = Hashtbl.create 8; exec }

let run_line t line =
  let line = strip line in
  if line = "" || line.[0] = '#' then ()
  else
    match parse_assignment line with
    | Some (name, pipeline) ->
        let stages = String.split_on_char '|' pipeline |> List.map strip in
        let cmd, filters =
          match stages with c :: fs -> (c, fs) | [] -> fail "empty substitution"
        in
        let out = t.exec (tokenize (expand t.vars cmd)) in
        let out = List.fold_left apply_filter out filters in
        Hashtbl.replace t.vars name (strip out)
    | None -> ignore (t.exec (tokenize (expand t.vars line)))

let run t script = List.iter (run_line t) (String.split_on_char '\n' script)

let get_var t name = Hashtbl.find_opt t.vars name
