(* An interpreter for the Linux-style configuration commands used in the
   paper's "today" scripts (figures 7(a) and 8(a)): insmod/modprobe,
   ip tunnel/rule/route, ifconfig, sysctl writes via echo, and the
   mpls-linux userland commands. Commands mutate a {!Netsim.Device.t}. *)

open Packet
open Netsim

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let parse_prefix s =
  if s = "default" then Prefix.of_string "0.0.0.0/0"
  else try Prefix.of_string s with Invalid_argument m -> fail "bad prefix %s (%s)" s m

let parse_addr s = try Ipv4_addr.of_string s with Invalid_argument _ -> fail "bad address %s" s

(* Classful default mask, as ifconfig without a netmask behaves. *)
let classful_prefix addr =
  let o = Ipv4_addr.octet addr 0 in
  let len = if o < 128 then 8 else if o < 192 then 16 else 24 in
  Prefix.make addr len

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let module_of_path path =
  let b = basename path in
  if Filename.check_suffix b ".ko" then Filename.chop_suffix b ".ko" else b

(* Finds "key value" in an option list. *)
let find_opt_value opts key =
  let rec go = function
    | k :: v :: _ when k = key -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go opts

let has_flag opts flag = List.mem flag opts

let int32_of_string s = try Int32.of_string s with Failure _ -> fail "bad number %s" s

(* --- ip tunnel ------------------------------------------------------- *)

let ip_tunnel_add dev args =
  let name =
    match find_opt_value args "name" with
    | Some n -> n
    | None -> ( match args with n :: _ when n <> "mode" -> n | _ -> fail "tunnel: no name")
  in
  let mode =
    match find_opt_value args "mode" with
    | Some "gre" ->
        if not (Device.module_loaded dev "ip_gre") then fail "gre: kernel module not loaded";
        Device.Gre_mode
    | Some "ipip" ->
        if not (Device.module_loaded dev "ipip") then fail "ipip: kernel module not loaded";
        Device.Ipip_mode
    | Some "esp" ->
        if not (Device.module_loaded dev "esp4") then fail "esp: kernel module not loaded";
        Device.Esp_mode
    | Some m -> fail "tunnel: unsupported mode %s" m
    | None -> fail "tunnel: no mode"
  in
  let remote =
    match find_opt_value args "remote" with Some r -> parse_addr r | None -> fail "no remote"
  in
  let local =
    match find_opt_value args "local" with Some l -> parse_addr l | None -> fail "no local"
  in
  let iface = Device.add_tunnel dev ~name ~mode ~local ~remote () in
  (match iface.Device.if_kind with
  | Device.Tun t ->
      (match find_opt_value args "ikey" with
      | Some k -> t.Device.t_ikey <- Some (int32_of_string k)
      | None -> ());
      (match find_opt_value args "okey" with
      | Some k -> t.Device.t_okey <- Some (int32_of_string k)
      | None -> ());
      (match find_opt_value args "key" with
      | Some k ->
          t.Device.t_ikey <- Some (int32_of_string k);
          t.Device.t_okey <- Some (int32_of_string k)
      | None -> ());
      (match find_opt_value args "ttl" with
      | Some v -> t.Device.t_ttl <- int_of_string v
      | None -> ());
      (match find_opt_value args "tos" with
      | Some v -> t.Device.t_tos <- int_of_string v
      | None -> ());
      (match find_opt_value args "ienc" with
      | Some k -> t.Device.t_enc_in <- Some (int32_of_string k)
      | None -> ());
      (match find_opt_value args "oenc" with
      | Some k -> t.Device.t_enc_out <- Some (int32_of_string k)
      | None -> ());
      t.Device.t_icsum <- has_flag args "icsum";
      t.Device.t_ocsum <- has_flag args "ocsum";
      t.Device.t_iseq <- has_flag args "iseq";
      t.Device.t_oseq <- has_flag args "oseq"
  | Device.Phys _ | Device.Loopback -> assert false);
  iface.Device.if_up <- true;
  ""

let ip_tunnel dev = function
  | "add" :: args -> ip_tunnel_add dev args
  | [ "del"; name ] ->
      Device.remove_iface dev name;
      ""
  | args -> fail "ip tunnel: unsupported %s" (String.concat " " args)

(* --- ip rule / ip route ------------------------------------------------ *)

let ip_rule dev = function
  | "add" :: args ->
      let table =
        match find_opt_value args "table" with Some t -> t | None -> fail "rule: no table"
      in
      Device.register_table dev table;
      let sel =
        match (find_opt_value args "to", find_opt_value args "iif", find_opt_value args "iff")
        with
        | Some p, _, _ -> Device.To_prefix (parse_prefix p)
        | None, Some i, _ | None, None, Some i -> Device.From_iface i
        | None, None, None -> Device.Match_all
      in
      Device.add_rule dev { Device.rl_sel = sel; rl_table = table; rl_prio = 100 };
      ""
  | "del" :: args ->
      let table = find_opt_value args "table" in
      Device.del_rule dev (fun r -> Some r.Device.rl_table = table);
      ""
  | args -> fail "ip rule: unsupported %s" (String.concat " " args)

let parse_nhlfe_key s =
  try int_of_string s with Failure _ -> fail "bad nhlfe key %s" s

let ip_route dev = function
  | "add" :: args ->
      let args = match args with "to" :: rest -> rest | rest -> rest in
      let dst, opts =
        match args with d :: rest -> (parse_prefix d, rest) | [] -> fail "route: no dst"
      in
      let table = match find_opt_value opts "table" with Some t -> t | None -> "main" in
      let route =
        {
          Device.rt_dst = dst;
          rt_via = Option.map parse_addr (find_opt_value opts "via");
          rt_dev = find_opt_value opts "dev";
          rt_mpls = Option.map parse_nhlfe_key (find_opt_value opts "mpls");
        }
      in
      Device.add_route dev ~table route;
      ""
  | "del" :: args ->
      let args = match args with "to" :: rest -> rest | rest -> rest in
      let dst, opts =
        match args with d :: rest -> (parse_prefix d, rest) | [] -> fail "route: no dst"
      in
      let table = match find_opt_value opts "table" with Some t -> t | None -> "main" in
      Device.del_routes dev ~table (fun r -> Prefix.equal r.Device.rt_dst dst);
      ""
  | args -> fail "ip route: unsupported %s" (String.concat " " args)

(* --- ifconfig / echo ----------------------------------------------------- *)

let ifconfig dev = function
  | [ iface; "up" ] ->
      (Device.find_iface_exn dev iface).Device.if_up <- true;
      ""
  | [ iface; "down" ] ->
      (Device.find_iface_exn dev iface).Device.if_up <- false;
      ""
  | iface :: addr :: rest ->
      let addr, prefix =
        match String.index_opt addr '/' with
        | Some _ ->
            let p = parse_prefix addr in
            (parse_addr (String.sub addr 0 (String.index addr '/')), p)
        | None -> (
            let a = parse_addr addr in
            match find_opt_value rest "netmask" with
            | Some _ -> fail "ifconfig: netmask unsupported, use CIDR"
            | None -> (a, classful_prefix a))
      in
      Device.add_addr dev ~iface ~addr ~prefix;
      ""
  | args -> fail "ifconfig: unsupported %s" (String.concat " " args)

let echo dev args =
  (* echo VALUE... > TARGET  /  echo VALUE... >> TARGET *)
  let rec split_redirect acc = function
    | (">" | ">>") :: [ target ] -> (List.rev acc, Some target)
    | x :: rest -> split_redirect (x :: acc) rest
    | [] -> (List.rev acc, None)
  in
  match split_redirect [] args with
  | values, Some "/proc/sys/net/ipv4/ip_forward" ->
      dev.Device.ip_forward <- values = [ "1" ];
      ""
  | values, Some "/etc/iproute2/rt_tables" -> (
      match values with
      | [ _num; name ] ->
          Device.register_table dev name;
          ""
      | _ -> fail "rt_tables: expected 'NUM NAME'")
  | _, Some target -> fail "echo: unsupported target %s" target
  | values, None -> String.concat " " values ^ "\n"

(* --- mpls (mpls-linux style userland) ------------------------------------ *)

let require_mpls dev =
  if not dev.Device.mpls.Device.mpls_enabled then fail "mpls: kernel modules not loaded"

let rec parse_instructions = function
  | [] -> ([], None)
  | "push" :: "gen" :: l :: rest ->
      let pushes, nh = parse_instructions rest in
      (int_of_string l :: pushes, nh)
  | "nexthop" :: iface :: "ipv4" :: addr :: rest ->
      let pushes, _ = parse_instructions rest in
      (pushes, Some (iface, parse_addr addr))
  | "deliver" :: rest ->
      let pushes, _ = parse_instructions rest in
      (pushes, Some ("local", Ipv4_addr.any))
  | tok :: _ -> fail "mpls instructions: unsupported token %s" tok

let mpls dev = function
  | [ "labelspace"; "set"; "dev"; iface; "labelspace"; n ] ->
      require_mpls dev;
      Device.mpls_set_labelspace dev ~iface ~space:(int_of_string n);
      ""
  | [ "ilm"; "add"; "label"; "gen"; l; "labelspace"; n ] ->
      require_mpls dev;
      let _ = Device.mpls_add_ilm dev ~label:(int_of_string l) ~space:(int_of_string n) in
      ""
  | [ "ilm"; "del"; "label"; "gen"; l; "labelspace"; n ] ->
      Device.mpls_del_ilm dev ~label:(int_of_string l) ~space:(int_of_string n);
      ""
  | "nhlfe" :: "add" :: rest ->
      require_mpls dev;
      let mtu =
        match find_opt_value rest "mtu" with Some m -> int_of_string m | None -> 1500
      in
      let instr =
        let rec after = function
          | "instructions" :: r -> r
          | _ :: r -> after r
          | [] -> []
        in
        after rest
      in
      let push, nexthop = parse_instructions instr in
      let dev_out, via =
        match nexthop with Some x -> x | None -> fail "nhlfe: no nexthop/deliver"
      in
      let n = Device.mpls_add_nhlfe dev ~mtu ~push ~dev_out ~via () in
      (* Output formatted so that the paper's `grep key | cut -c 17-26`
         extracts the hexadecimal key. *)
      Printf.sprintf "NHLFE entry key 0x%08x mtu %d propagate_ttl\n" n.Device.nh_key mtu
  | [ "nhlfe"; "del"; "key"; k ] ->
      Device.mpls_del_nhlfe dev (int_of_string k);
      ""
  | [ "xc"; "add"; "ilm"; "label"; "gen"; l; "ilm"; "labelspace"; n; "nhlfe"; "key"; k ] ->
      require_mpls dev;
      Device.mpls_xc dev ~label:(int_of_string l) ~space:(int_of_string n)
        ~nhlfe_key:(int_of_string k);
      ""
  | args -> fail "mpls: unsupported %s" (String.concat " " args)

(* --- tc (simplified egress policing) ------------------------------------- *)

let tc dev = function
  | [ "qdisc"; "add"; "dev"; iface; "rate"; rate; "burst"; burst ] ->
      Device.set_policer dev ~iface ~rate_bps:(int_of_string rate) ~burst:(int_of_string burst);
      ""
  | [ "qdisc"; "del"; "dev"; iface ] ->
      Device.clear_policer dev ~iface;
      ""
  | args -> fail "tc: unsupported %s" (String.concat " " args)

(* --- entry point ------------------------------------------------------ *)

let exec dev argv =
  match argv with
  | [] -> ""
  | [ "insmod"; path ] ->
      let m = module_of_path path in
      Device.load_module dev m;
      if m = "mpls" || m = "mpls4" then dev.Device.mpls.Device.mpls_enabled <- true;
      ""
  | [ "modprobe"; name ] ->
      Device.load_module dev name;
      if name = "mpls" || name = "mpls4" then dev.Device.mpls.Device.mpls_enabled <- true;
      ""
  | "ip" :: "tunnel" :: rest -> ip_tunnel dev rest
  | "ip" :: "rule" :: rest -> ip_rule dev rest
  | "ip" :: "route" :: rest -> ip_route dev rest
  | "ifconfig" :: rest -> ifconfig dev rest
  | "echo" :: rest -> echo dev rest
  | "mpls" :: rest -> mpls dev rest
  | "tc" :: rest -> tc dev rest
  | cmd :: _ -> fail "unknown command %s" cmd

(* Runs a whole script (shell syntax) against a device. *)
let run_script dev script =
  let sh = Shell.create (exec dev) in
  Shell.run sh script;
  sh
