(* ICMP-echo based reachability testing: the tool every debugging story in
   the paper ultimately reduces to. Sends a request, runs the simulation and
   reports whether the matching reply arrived. *)

open Packet

let next_id = ref 0

type result = { replied : bool; events : int }

(* [run net ~from ~src ~dst] sends one echo request from [from] and runs the
   network to quiescence. *)
let run ?payload net ~from ~src ~dst () =
  incr next_id;
  let id = !next_id land 0xffff in
  let data = match payload with Some p -> p | None -> Bytes.of_string "conman-ping" in
  let replied = ref false in
  let saved = from.Device.icmp_hook in
  from.Device.icmp_hook <-
    Some
      (fun hdr msg ->
        (match saved with Some f -> f hdr msg | None -> ());
        match msg with
        | Icmp.Echo_reply r when r.id = id && Ipv4_addr.equal hdr.Ipv4.src dst -> replied := true
        | Icmp.Echo_reply _ | Icmp.Echo_request _ | Icmp.Dest_unreachable _ | Icmp.Time_exceeded
          -> ());
  Datapath.icmp_echo from ~src ~dst ~id ~seq:1 data;
  let events = Net.run net in
  from.Device.icmp_hook <- saved;
  { replied = !replied; events }

let reachable ?payload net ~from ~src ~dst () = (run ?payload net ~from ~src ~dst ()).replied
