(** ICMP-echo reachability testing — the ground truth every configuration
    experiment is verified against. *)

type result = { replied : bool; events : int }

val run :
  ?payload:bytes ->
  Net.t ->
  from:Device.t ->
  src:Packet.Ipv4_addr.t ->
  dst:Packet.Ipv4_addr.t ->
  unit ->
  result
(** Sends one echo request from [from] and runs the network to quiescence. *)

val reachable :
  ?payload:bytes ->
  Net.t ->
  from:Device.t ->
  src:Packet.Ipv4_addr.t ->
  dst:Packet.Ipv4_addr.t ->
  unit ->
  bool
