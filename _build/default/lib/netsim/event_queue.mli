(** Discrete-event scheduler; deterministic FIFO order at equal timestamps. *)

type t

exception Budget_exhausted

val create : unit -> t
val now : t -> int64
val pending : t -> int
val processed : t -> int
val schedule : t -> delay_ns:int64 -> (unit -> unit) -> unit

val run : ?max_events:int -> t -> int
(** Runs events until the queue drains; returns the number processed.
    Raises {!Budget_exhausted} past [max_events] (guards against loops). *)
