(* Named monotonic counters, used for the performance-reporting part of the
   module abstraction and for debugging. *)

type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 8

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t name (ref by)

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t = Hashtbl.reset t

let pp ppf t =
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.comma (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int))
    (to_list t)
