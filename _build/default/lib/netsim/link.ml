(* Physical links. A segment is a broadcast medium with attached endpoints;
   a cable is a segment with exactly two. Frames are delivered to every other
   endpoint after the segment latency. Links can be cut (for fault-injection
   experiments) and have an MTU covering the Ethernet payload. *)

type endpoint = {
  segment : segment;
  ep_id : int;
  mutable rx : bytes -> unit;
}

and segment = {
  link_id : int;
  eq : Event_queue.t;
  latency_ns : int64;
  mtu : int;
  mutable endpoints : endpoint list;
  mutable cut : bool;
  mutable delivered : int;
  mutable dropped : int;
}

let next_id = ref 0

let create_segment ?(latency_ns = 1_000L) ?(mtu = 1518) eq =
  incr next_id;
  {
    link_id = !next_id;
    eq;
    latency_ns;
    mtu;
    endpoints = [];
    cut = false;
    delivered = 0;
    dropped = 0;
  }

let attach segment =
  let ep = { segment; ep_id = List.length segment.endpoints; rx = (fun _ -> ()) } in
  segment.endpoints <- segment.endpoints @ [ ep ];
  ep

let set_rx ep f = ep.rx <- f

let send ep frame =
  let seg = ep.segment in
  if seg.cut || Bytes.length frame > seg.mtu then seg.dropped <- seg.dropped + 1
  else
    List.iter
      (fun other ->
        if other.ep_id <> ep.ep_id then
          Event_queue.schedule seg.eq ~delay_ns:seg.latency_ns (fun () ->
              if not seg.cut then begin
                seg.delivered <- seg.delivered + 1;
                other.rx frame
              end
              else seg.dropped <- seg.dropped + 1))
      seg.endpoints

let cut segment = segment.cut <- true
let restore segment = segment.cut <- false
let is_cut segment = segment.cut
let id segment = segment.link_id
let delivered segment = segment.delivered
let dropped segment = segment.dropped
let mtu segment = segment.mtu
