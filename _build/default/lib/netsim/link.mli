(** Physical links: broadcast segments with attachable endpoints. *)

type endpoint
type segment

val create_segment : ?latency_ns:int64 -> ?mtu:int -> Event_queue.t -> segment
val attach : segment -> endpoint
val set_rx : endpoint -> (bytes -> unit) -> unit
val send : endpoint -> bytes -> unit
val cut : segment -> unit
val restore : segment -> unit
val is_cut : segment -> bool
val id : segment -> int
val delivered : segment -> int
val dropped : segment -> int
val mtu : segment -> int
