lib/netsim/net.ml: Datapath Device Event_queue Link List Printf
