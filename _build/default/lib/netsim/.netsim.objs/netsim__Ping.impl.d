lib/netsim/ping.ml: Bytes Datapath Device Icmp Ipv4 Ipv4_addr Net Packet
