lib/netsim/trace.mli: Fmt
