lib/netsim/device.ml: Array Counters Event_queue Float Fmt Hashtbl Icmp Int64 Ipv4 Ipv4_addr Link List Mac_addr Packet Prefix Printf Seq
