lib/netsim/link.mli: Event_queue
