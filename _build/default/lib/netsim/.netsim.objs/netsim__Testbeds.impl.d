lib/netsim/testbeds.ml: Array Device Ipv4_addr List Net Packet Ping Prefix Printf
