lib/netsim/counters.mli: Fmt
