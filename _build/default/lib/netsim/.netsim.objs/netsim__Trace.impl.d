lib/netsim/trace.ml: Bytes Fmt Fun List Packet
