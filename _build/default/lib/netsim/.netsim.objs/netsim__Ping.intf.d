lib/netsim/ping.mli: Device Net Packet
