lib/netsim/net.mli: Device Event_queue Link
