lib/netsim/event_queue.ml: Int64 Map
