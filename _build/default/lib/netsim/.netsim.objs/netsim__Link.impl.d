lib/netsim/link.ml: Bytes Event_queue List
