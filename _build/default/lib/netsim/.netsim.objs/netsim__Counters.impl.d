lib/netsim/counters.ml: Fmt Hashtbl List
