(** Named monotonic counters — the per-pipe/per-device statistics behind
    the performance-reporting part of the module abstraction. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
(** 0 for counters never incremented. *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit
val pp : t Fmt.t
