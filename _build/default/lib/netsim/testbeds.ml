(* The experimental set-ups of the paper.

   [vpn] is figure 4: ISP edge routers A and C, core router B, customer
   routers D (site S1) and E (site S2), plus one host per site so end-to-end
   reachability can be verified. Interface naming matches the configuration
   snippets of figures 7(a) and 8(a): on each ISP router eth1 faces the
   customer/previous hop and eth2 the core.

   [vlan] is figure 9: three switches with the customer attached on
   gigabitethernet0/7 and the inter-switch trunks on gigabitethernet0/9
   (and 0/10 on the middle switch).

   [gre_fig2] is figure 2: hosts A and B, a layer-2 switch C and a router D
   between them. *)

open Packet

type vpn = {
  vpn_net : Net.t;
  ra : Device.t; (* ISP edge, site 1 side *)
  rb : Device.t; (* ISP core *)
  rc : Device.t; (* ISP edge, site 2 side *)
  rd : Device.t; (* customer router, site 1 *)
  re : Device.t; (* customer router, site 2 *)
  host1 : Device.t; (* host in site 1, 10.0.1.2 *)
  host2 : Device.t; (* host in site 2, 10.0.2.2 *)
}

let ip = Ipv4_addr.of_string
let pfx = Prefix.of_string

let vpn () =
  let net = Net.create () in
  (* The managed ISP routers start unconfigured: enabling forwarding is part
     of the configuration under test. Customer routers are outside the
     managed domain and simply work. *)
  let router ?(ports = [ "eth1"; "eth2" ]) ?(forwarding = false) name =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    List.iter (fun p -> ignore (Device.add_port ~name:p d)) ports;
    d.Device.ip_forward <- forwarding;
    d
  in
  let ra = router "A" in
  let rb = router "B" in
  let rc = router "C" in
  let rd = router ~ports:[ "eth0"; "eth1" ] ~forwarding:true "D" in
  let re = router ~ports:[ "eth0"; "eth1" ] ~forwarding:true "E" in
  let host name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port ~name:"eth0" d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.0.0/16");
    d
  in
  (* Hosts use /16 so sites S1 and S2 look like one address space to them;
     their default routes still point at the site router. *)
  let host1 = host "X" "10.0.1.2" in
  let host2 = host "Y" "10.0.2.2" in
  (* wiring: X - D - A - B - C - E - Y *)
  let _ = Net.connect net ~name:"X--D" (host1, 0) (rd, 1) in
  let _ = Net.connect net ~name:"D--A" (rd, 0) (ra, 0) (* A port 0 = eth1 *) in
  let _ = Net.connect net ~name:"A--B" (ra, 1) (rb, 0) in
  let _ = Net.connect net ~name:"B--C" (rb, 1) (rc, 1) (* C eth2 faces core *) in
  let _ = Net.connect net ~name:"C--E" (rc, 0) (re, 0) in
  let _ = Net.connect net ~name:"E--Y" (re, 1) (host2, 0) in
  (* addressing *)
  Device.add_addr rd ~iface:"eth1" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr rd ~iface:"eth0" ~addr:(ip "192.168.0.1") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr ra ~iface:"eth1" ~addr:(ip "192.168.0.2") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr ra ~iface:"eth2" ~addr:(ip "204.9.168.1") ~prefix:(pfx "204.9.168.0/30");
  Device.add_addr rb ~iface:"eth1" ~addr:(ip "204.9.168.2") ~prefix:(pfx "204.9.168.0/30");
  (* /29 rather than /30: the dependency-tracking experiment renumbers C's
     core interface within this subnet *)
  Device.add_addr rb ~iface:"eth2" ~addr:(ip "204.9.169.2") ~prefix:(pfx "204.9.169.0/29");
  Device.add_addr rc ~iface:"eth2" ~addr:(ip "204.9.169.1") ~prefix:(pfx "204.9.169.0/29");
  Device.add_addr rc ~iface:"eth1" ~addr:(ip "192.168.1.2") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr re ~iface:"eth0" ~addr:(ip "192.168.1.1") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr re ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  (* customer-side routing: hosts default to their site router, the site
     routers hand everything non-local to the ISP edge. *)
  let def d via =
    Device.add_route d
      { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip via); rt_dev = None; rt_mpls = None }
  in
  def host1 "10.0.1.1";
  def host2 "10.0.2.1";
  def rd "192.168.0.2";
  def re "192.168.1.2";
  (* Edge routers answer on-link routes towards the customer sites with
     proxy ARP, as the verbatim figure-7(a) script relies on. *)
  rd.Device.proxy_arp <- true;
  re.Device.proxy_arp <- true;
  (* The ISP core knows both edge prefixes (static, stands in for the IGP). *)
  Device.add_route rb
    { Device.rt_dst = pfx "204.9.168.0/30"; rt_via = None; rt_dev = Some "eth1"; rt_mpls = None };
  { vpn_net = net; ra; rb; rc; rd; re; host1; host2 }

let vpn_reachable t =
  Ping.reachable t.vpn_net ~from:t.host1 ~src:(ip "10.0.1.2") ~dst:(ip "10.0.2.2") ()
  && Ping.reachable t.vpn_net ~from:t.host2 ~src:(ip "10.0.2.2") ~dst:(ip "10.0.1.2") ()

(* --- generalised chain: n ISP routers in a line (for the Table-VI sweep) --- *)

type chain = {
  chain_net : Net.t;
  routers : Device.t array; (* routers.(0) is the A-like edge *)
  chain_rd : Device.t;
  chain_re : Device.t;
  chain_host1 : Device.t;
  chain_host2 : Device.t;
}

(* Router [i] and [i+1] are linked on 204.9.(100+i).0/30 with the left end
   at .1; edge addressing mirrors the 3-router testbed. With
   [addressed:false] the ISP routers get no addresses and no static routes:
   the NM is expected to assign them (§II-E: "this is best done by the NM
   having explicit knowledge of how to assign IP addresses, as DHCP servers
   do today"). *)
let chain ?(addressed = true) n =
  if n < 2 then invalid_arg "Testbeds.chain: need at least 2 routers";
  let net = Net.create () in
  let router ?(ports = [ "eth1"; "eth2" ]) ?(forwarding = false) name =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    List.iter (fun p -> ignore (Device.add_port ~name:p d)) ports;
    d.Device.ip_forward <- forwarding;
    d
  in
  let routers = Array.init n (fun i -> router (Printf.sprintf "R%d" (i + 1))) in
  let rd = router ~ports:[ "eth0"; "eth1" ] ~forwarding:true "D" in
  let re = router ~ports:[ "eth0"; "eth1" ] ~forwarding:true "E" in
  let host name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port ~name:"eth0" d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.0.0/16");
    d
  in
  let host1 = host "X" "10.0.1.2" in
  let host2 = host "Y" "10.0.2.2" in
  let _ = Net.connect net ~name:"X--D" (host1, 0) (rd, 1) in
  let _ = Net.connect net ~name:"D--R1" (rd, 0) (routers.(0), 0) in
  for i = 0 to n - 2 do
    (* left router core port is eth2 (port 1), right router previous-hop
       port is eth1 (port 0) *)
    ignore
      (Net.connect net
         ~name:(Printf.sprintf "R%d--R%d" (i + 1) (i + 2))
         (routers.(i), 1)
         (routers.(i + 1), 0))
  done;
  let _ = Net.connect net ~name:"Rn--E" (routers.(n - 1), 1) (re, 0) in
  let _ = Net.connect net ~name:"E--Y" (re, 1) (host2, 0) in
  (* edge addressing (customer side is always addressed: it is unmanaged) *)
  Device.add_addr rd ~iface:"eth1" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr rd ~iface:"eth0" ~addr:(ip "192.168.0.1") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr re ~iface:"eth0" ~addr:(ip "192.168.1.1") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr re ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  if addressed then begin
    Device.add_addr routers.(0) ~iface:"eth1" ~addr:(ip "192.168.0.2")
      ~prefix:(pfx "192.168.0.0/30");
    Device.add_addr routers.(n - 1) ~iface:"eth2" ~addr:(ip "192.168.1.2")
      ~prefix:(pfx "192.168.1.0/30");
    (* core links *)
    for i = 0 to n - 2 do
      let p = Printf.sprintf "204.9.%d.0/30" (100 + i) in
      Device.add_addr routers.(i) ~iface:"eth2"
        ~addr:(ip (Printf.sprintf "204.9.%d.1" (100 + i)))
        ~prefix:(pfx p);
      Device.add_addr routers.(i + 1) ~iface:"eth1"
        ~addr:(ip (Printf.sprintf "204.9.%d.2" (100 + i)))
        ~prefix:(pfx p)
    done
  end;
  (* static routes standing in for the IGP: every router knows every core
     link prefix (towards the correct side) so tunnel endpoints reach each
     other *)
  if addressed then
  for i = 0 to n - 1 do
    for j = 0 to n - 2 do
      let p = pfx (Printf.sprintf "204.9.%d.0/30" (100 + j)) in
      if j > i then
        (* towards the right *)
        Device.add_route routers.(i)
          {
            Device.rt_dst = p;
            rt_via = Some (ip (Printf.sprintf "204.9.%d.2" (100 + i)));
            rt_dev = Some "eth2";
            rt_mpls = None;
          }
      else if j < i - 1 then
        Device.add_route routers.(i)
          {
            Device.rt_dst = p;
            rt_via = Some (ip (Printf.sprintf "204.9.%d.1" (100 + i - 1)));
            rt_dev = Some "eth1";
            rt_mpls = None;
          }
    done
  done;
  let def d via =
    Device.add_route d
      { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip via); rt_dev = None; rt_mpls = None }
  in
  def host1 "10.0.1.1";
  def host2 "10.0.2.1";
  def rd "192.168.0.2";
  def re "192.168.1.2";
  rd.Device.proxy_arp <- true;
  re.Device.proxy_arp <- true;
  { chain_net = net; routers; chain_rd = rd; chain_re = re; chain_host1 = host1; chain_host2 = host2 }

let chain_reachable t =
  Ping.reachable t.chain_net ~from:t.chain_host1 ~src:(ip "10.0.1.2") ~dst:(ip "10.0.2.2") ()
  && Ping.reachable t.chain_net ~from:t.chain_host2 ~src:(ip "10.0.2.2") ~dst:(ip "10.0.1.2") ()

type vlan = {
  vlan_net : Net.t;
  swa : Device.t;
  swb : Device.t;
  swc : Device.t;
  cust1 : Device.t; (* 10.0.3.1 behind switch A *)
  cust2 : Device.t; (* 10.0.3.2 behind switch C *)
}

let vlan () =
  let net = Net.create () in
  let switch name ports =
    let d = Net.add_device net ~switching:true ~id:("id-" ^ name) ~name in
    List.iter (fun p -> ignore (Device.add_port ~name:p d)) ports;
    d
  in
  let swa = switch "SwA" [ "gigabitethernet0/7"; "gigabitethernet0/9" ] in
  let swb = switch "SwB" [ "gigabitethernet0/9"; "gigabitethernet0/10" ] in
  let swc = switch "SwC" [ "gigabitethernet0/7"; "gigabitethernet0/9" ] in
  let host name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port ~name:"eth0" d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.3.0/24");
    d
  in
  let cust1 = host "CustX" "10.0.3.1" in
  let cust2 = host "CustY" "10.0.3.2" in
  let _ = Net.connect net ~name:"X--SwA" (cust1, 0) (swa, 0) in
  let _ = Net.connect net ~mtu:1530 ~name:"SwA--SwB" (swa, 1) (swb, 0) in
  let _ = Net.connect net ~mtu:1530 ~name:"SwB--SwC" (swb, 1) (swc, 1) in
  let _ = Net.connect net ~name:"SwC--Y" (swc, 0) (cust2, 0) in
  { vlan_net = net; swa; swb; swc; cust1; cust2 }

let vlan_reachable t =
  Ping.reachable t.vlan_net ~from:t.cust1 ~src:(ip "10.0.3.1") ~dst:(ip "10.0.3.2") ()

(* --- diamond: two parallel core routers between the edges ------------------- *)

type diamond = {
  dia_net : Net.t;
  dia_a : Device.t;
  dia_b1 : Device.t;
  dia_b2 : Device.t;
  dia_c : Device.t;
  dia_host1 : Device.t;
  dia_host2 : Device.t;
}

(* A --(B1|B2)-- C with customer sites as in the VPN testbed: used for
   multi-route experiments (hierarchical traversal, path diversity). *)
let diamond () =
  let net = Net.create () in
  let router name ports =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    List.iter (fun p -> ignore (Device.add_port ~name:p d)) ports;
    d
  in
  let ra = router "A" [ "eth1"; "eth2"; "eth3" ] in
  let rb1 = router "B1" [ "eth1"; "eth2" ] in
  let rb2 = router "B2" [ "eth1"; "eth2" ] in
  let rc = router "C" [ "eth1"; "eth2"; "eth3" ] in
  let rd = router "D" [ "eth0"; "eth1" ] in
  let re = router "E" [ "eth0"; "eth1" ] in
  rd.Device.ip_forward <- true;
  re.Device.ip_forward <- true;
  rd.Device.proxy_arp <- true;
  re.Device.proxy_arp <- true;
  let host name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port ~name:"eth0" d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.0.0/16");
    d
  in
  let host1 = host "X" "10.0.1.2" in
  let host2 = host "Y" "10.0.2.2" in
  let _ = Net.connect net ~name:"X--D" (host1, 0) (rd, 1) in
  let _ = Net.connect net ~name:"D--A" (rd, 0) (ra, 0) in
  let _ = Net.connect net ~name:"A--B1" (ra, 1) (rb1, 0) in
  let _ = Net.connect net ~name:"A--B2" (ra, 2) (rb2, 0) in
  let _ = Net.connect net ~name:"B1--C" (rb1, 1) (rc, 0) in
  let _ = Net.connect net ~name:"B2--C" (rb2, 1) (rc, 1) in
  let _ = Net.connect net ~name:"C--E" (rc, 2) (re, 0) in
  let _ = Net.connect net ~name:"E--Y" (re, 1) (host2, 0) in
  (* addressing *)
  Device.add_addr rd ~iface:"eth1" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr rd ~iface:"eth0" ~addr:(ip "192.168.0.1") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr ra ~iface:"eth1" ~addr:(ip "192.168.0.2") ~prefix:(pfx "192.168.0.0/30");
  Device.add_addr ra ~iface:"eth2" ~addr:(ip "204.9.100.1") ~prefix:(pfx "204.9.100.0/30");
  Device.add_addr rb1 ~iface:"eth1" ~addr:(ip "204.9.100.2") ~prefix:(pfx "204.9.100.0/30");
  Device.add_addr rb1 ~iface:"eth2" ~addr:(ip "204.9.101.2") ~prefix:(pfx "204.9.101.0/30");
  Device.add_addr rc ~iface:"eth1" ~addr:(ip "204.9.101.1") ~prefix:(pfx "204.9.101.0/30");
  Device.add_addr ra ~iface:"eth3" ~addr:(ip "204.9.102.1") ~prefix:(pfx "204.9.102.0/30");
  Device.add_addr rb2 ~iface:"eth1" ~addr:(ip "204.9.102.2") ~prefix:(pfx "204.9.102.0/30");
  Device.add_addr rb2 ~iface:"eth2" ~addr:(ip "204.9.103.2") ~prefix:(pfx "204.9.103.0/30");
  Device.add_addr rc ~iface:"eth2" ~addr:(ip "204.9.103.1") ~prefix:(pfx "204.9.103.0/30");
  Device.add_addr rc ~iface:"eth3" ~addr:(ip "192.168.1.2") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr re ~iface:"eth0" ~addr:(ip "192.168.1.1") ~prefix:(pfx "192.168.1.0/30");
  Device.add_addr re ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  (* static IGP stand-ins so both cores can carry the outer packets *)
  let route d dst via dev =
    Device.add_route d
      { Device.rt_dst = pfx dst; rt_via = Some (ip via); rt_dev = Some dev; rt_mpls = None }
  in
  route ra "204.9.101.0/30" "204.9.100.2" "eth2";
  route ra "204.9.103.0/30" "204.9.102.2" "eth3";
  route rc "204.9.100.0/30" "204.9.101.2" "eth1";
  route rc "204.9.102.0/30" "204.9.103.2" "eth2";
  let def d via =
    Device.add_route d
      { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip via); rt_dev = None; rt_mpls = None }
  in
  def host1 "10.0.1.1";
  def host2 "10.0.2.1";
  def rd "192.168.0.2";
  def re "192.168.1.2";
  { dia_net = net; dia_a = ra; dia_b1 = rb1; dia_b2 = rb2; dia_c = rc; dia_host1 = host1; dia_host2 = host2 }

let diamond_reachable t =
  Ping.reachable t.dia_net ~from:t.dia_host1 ~src:(ip "10.0.1.2") ~dst:(ip "10.0.2.2") ()
  && Ping.reachable t.dia_net ~from:t.dia_host2 ~src:(ip "10.0.2.2") ~dst:(ip "10.0.1.2") ()

(* n-switch generalisation of the figure-9 set-up. *)
type vlan_chain = {
  vc_net : Net.t;
  switches : Device.t array;
  vc_cust1 : Device.t;
  vc_cust2 : Device.t;
}

let vlan_chain n =
  if n < 2 then invalid_arg "Testbeds.vlan_chain: need at least 2 switches";
  let net = Net.create () in
  let switch name ports =
    let d = Net.add_device net ~switching:true ~id:("id-" ^ name) ~name in
    List.iter (fun p -> ignore (Device.add_port ~name:p d)) ports;
    d
  in
  let switches =
    Array.init n (fun i ->
        let name = Printf.sprintf "Sw%d" (i + 1) in
        if i = 0 || i = n - 1 then switch name [ "gigabitethernet0/7"; "gigabitethernet0/9" ]
        else switch name [ "gigabitethernet0/9"; "gigabitethernet0/10" ])
  in
  let host name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port ~name:"eth0" d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.3.0/24");
    d
  in
  let cust1 = host "CustX" "10.0.3.1" in
  let cust2 = host "CustY" "10.0.3.2" in
  let _ = Net.connect net ~name:"X--Sw1" (cust1, 0) (switches.(0), 0) in
  for i = 0 to n - 2 do
    let right_port = if i + 1 = n - 1 then 1 else 0 in
    ignore
      (Net.connect net ~mtu:1530
         ~name:(Printf.sprintf "Sw%d--Sw%d" (i + 1) (i + 2))
         (switches.(i), if i = 0 then 1 else 1)
         (switches.(i + 1), right_port))
  done;
  let _ = Net.connect net ~name:"Swn--Y" (switches.(n - 1), 0) (cust2, 0) in
  { vc_net = net; switches; vc_cust1 = cust1; vc_cust2 = cust2 }

let vlan_chain_reachable t =
  Ping.reachable t.vc_net ~from:t.vc_cust1 ~src:(ip "10.0.3.1") ~dst:(ip "10.0.3.2") ()

type gre_fig2 = {
  fig2_net : Net.t;
  host_a : Device.t;
  host_b : Device.t;
  sw_c : Device.t;
  rtr_d : Device.t;
}

(* Figure 2: A -- C(switch) -- D(router) -- B, with a GRE tunnel to be built
   between the IP stacks of A and B. *)
let gre_fig2 () =
  let net = Net.create () in
  let host_a = Net.add_device net ~id:"id-A" ~name:"A" in
  ignore (Device.add_port ~name:"eth0" host_a);
  let host_b = Net.add_device net ~id:"id-B" ~name:"B" in
  ignore (Device.add_port ~name:"eth0" host_b);
  let sw_c = Net.add_device net ~switching:true ~id:"id-C" ~name:"C" in
  ignore (Device.add_port sw_c);
  ignore (Device.add_port sw_c);
  let rtr_d = Net.add_device net ~id:"id-D" ~name:"D" in
  ignore (Device.add_port ~name:"eth0" rtr_d);
  ignore (Device.add_port ~name:"eth1" rtr_d);
  rtr_d.Device.ip_forward <- true;
  let _ = Net.connect net ~name:"A--C" (host_a, 0) (sw_c, 0) in
  let _ = Net.connect net ~name:"C--D" (sw_c, 1) (rtr_d, 0) in
  let _ = Net.connect net ~name:"D--B" (rtr_d, 1) (host_b, 0) in
  Device.add_addr host_a ~iface:"eth0" ~addr:(ip "204.9.168.1") ~prefix:(pfx "204.9.168.0/24");
  Device.add_addr rtr_d ~iface:"eth0" ~addr:(ip "204.9.168.2") ~prefix:(pfx "204.9.168.0/24");
  Device.add_addr rtr_d ~iface:"eth1" ~addr:(ip "204.9.169.2") ~prefix:(pfx "204.9.169.0/24");
  Device.add_addr host_b ~iface:"eth0" ~addr:(ip "204.9.169.1") ~prefix:(pfx "204.9.169.0/24");
  Device.add_route host_a
    { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip "204.9.168.2"); rt_dev = None; rt_mpls = None };
  Device.add_route host_b
    { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip "204.9.169.2"); rt_dev = None; rt_mpls = None };
  { fig2_net = net; host_a; host_b; sw_c; rtr_d }
