(* The management channel: device-to-NM communication that must work before
   (and independently of) any data-plane configuration.

   Two implementations, as in the paper's §III-A:
   - [Oob]: a pre-configured out-of-band network (the separate management
     NICs of the authors' testbed), modelled as direct delivery with a
     fixed latency;
   - [Raw]: the straw-man in-band channel — flooding of raw Ethernet
     frames with per-source sequence-number suppression, needing no
     configuration at all (the 4D discovery/dissemination plane). *)

open Netsim

type handler = src:string -> bytes -> unit

type stats = { mutable frames_sent : int; mutable frames_delivered : int }

type t = {
  send : src:string -> dst:string -> bytes -> unit;
  subscribe : string -> handler -> unit;
  stats : stats;
}

let send t ~src ~dst payload = t.send ~src ~dst payload
let subscribe t ~device_id handler = t.subscribe device_id handler
let stats t = t.stats

(* --- out-of-band ------------------------------------------------------ *)

module Oob = struct
  let create ?(latency_ns = 2_000L) eq =
    let handlers : (string, handler) Hashtbl.t = Hashtbl.create 16 in
    let stats = { frames_sent = 0; frames_delivered = 0 } in
    let deliver ~src ~dst payload =
      match Hashtbl.find_opt handlers dst with
      | Some h ->
          stats.frames_delivered <- stats.frames_delivered + 1;
          h ~src payload
      | None -> ()
    in
    let send ~src ~dst payload =
      stats.frames_sent <- stats.frames_sent + 1;
      Event_queue.schedule eq ~delay_ns:latency_ns (fun () ->
          if dst = Frame.broadcast then
            Hashtbl.iter
              (fun id h ->
                if id <> src then begin
                  stats.frames_delivered <- stats.frames_delivered + 1;
                  h ~src payload
                end)
              handlers
          else deliver ~src ~dst payload)
    in
    { send; subscribe = (fun id h -> Hashtbl.replace handlers id h); stats }
end

(* --- raw in-band flooding --------------------------------------------- *)

module Raw = struct
  type agent = {
    device : Device.t;
    mutable next_seq : int;
    seen : (string * int, unit) Hashtbl.t;
    mutable handler : handler option;
  }

  type net_state = {
    mutable agents : agent list;
    raw_stats : stats;
  }

  let flood agent ?(except = -1) frame_bytes =
    let eth_src i = (Device.port agent.device i).Device.port_mac in
    Array.iter
      (fun (p : Device.port) ->
        if p.Device.port_index <> except then
          let frame =
            Packet.Ethernet.encode
              {
                Packet.Ethernet.dst = Packet.Mac_addr.broadcast;
                src = eth_src p.Device.port_index;
                ethertype = Packet.Ethertype.Mgmt;
              }
              frame_bytes
          in
          Datapath.transmit agent.device p.Device.port_index frame)
      agent.device.Device.ports

  let create () =
    let st = { agents = []; raw_stats = { frames_sent = 0; frames_delivered = 0 } } in
    let find_agent id =
      List.find_opt (fun a -> a.device.Device.dev_id = id) st.agents
    in
    let deliver agent (f : Frame.t) =
      match agent.handler with
      | Some h ->
          st.raw_stats.frames_delivered <- st.raw_stats.frames_delivered + 1;
          h ~src:f.Frame.src_device f.Frame.payload
      | None -> ()
    in
    let send ~src ~dst payload =
      match find_agent src with
      | None -> failwith ("mgmt raw channel: unknown source device " ^ src)
      | Some agent ->
          st.raw_stats.frames_sent <- st.raw_stats.frames_sent + 1;
          agent.next_seq <- agent.next_seq + 1;
          let f =
            { Frame.src_device = src; dst_device = dst; seq = agent.next_seq; payload }
          in
          Hashtbl.replace agent.seen (src, f.Frame.seq) ();
          (* Local loopback when a device messages itself (e.g. the NM's own
             modules). *)
          if dst = src then deliver agent f
          else begin
            (if dst = Frame.broadcast then
               match agent.handler with
               | Some _ -> () (* the source does not self-deliver broadcasts *)
               | None -> ());
            flood agent (Frame.encode f)
          end
    in
    let subscribe id h =
      match find_agent id with
      | Some a -> a.handler <- Some h
      | None -> failwith ("mgmt raw channel: device not attached: " ^ id)
    in
    let chan = { send; subscribe; stats = st.raw_stats } in
    let attach device =
      let agent = { device; next_seq = 0; seen = Hashtbl.create 64; handler = None } in
      st.agents <- agent :: st.agents;
      device.Device.mgmt_hook <-
        Some
          (fun ~in_port ~src:_ payload ->
            match Frame.decode payload with
            | exception Frame.Bad_frame _ -> ()
            | f ->
                let key = (f.Frame.src_device, f.Frame.seq) in
                if not (Hashtbl.mem agent.seen key) then begin
                  Hashtbl.replace agent.seen key ();
                  let mine = f.Frame.dst_device = device.Device.dev_id in
                  let bcast = f.Frame.dst_device = Frame.broadcast in
                  if mine || bcast then deliver agent f;
                  (* Forward everything that is not exclusively ours: the
                     4D-style dissemination. *)
                  if not mine then flood agent ~except:in_port payload
                end)
    in
    (chan, attach)
end
