(** Management-channel frames, carried directly in Ethernet frames with a
    dedicated ethertype (§III-A: raw frames, no pre-configuration). *)

type t = {
  src_device : string;
  dst_device : string; (** {!broadcast} floods to every agent *)
  seq : int; (** per-source sequence number, for flood suppression *)
  payload : bytes;
}

exception Bad_frame of string

val broadcast : string
val encode : t -> bytes
val decode : bytes -> t
val equal : t -> t -> bool
val pp : t Fmt.t
