lib/mgmt/frame.ml: Bytes Cursor Fmt Int32 Packet String
