lib/mgmt/channel.ml: Array Datapath Device Event_queue Frame Hashtbl List Netsim Packet
