lib/mgmt/frame.mli: Fmt
