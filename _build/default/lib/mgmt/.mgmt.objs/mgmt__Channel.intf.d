lib/mgmt/channel.mli: Netsim
