(** The management channel: device-to-NM communication that must work
    before, and independently of, any data-plane configuration (§III-A).

    Two implementations, as in the paper: {!Oob} models the authors'
    separate management NICs (direct delivery, fixed latency); {!Raw} is
    the 4D-style straw man — raw-Ethernet flooding with per-source
    sequence-number suppression, needing zero configuration. *)

type handler = src:string -> bytes -> unit

type stats = { mutable frames_sent : int; mutable frames_delivered : int }

type t
(** A channel endpoint: subscribe per device id, send to a device id or
    {!Frame.broadcast}. *)

val send : t -> src:string -> dst:string -> bytes -> unit
val subscribe : t -> device_id:string -> handler -> unit
val stats : t -> stats

module Oob : sig
  val create : ?latency_ns:int64 -> Netsim.Event_queue.t -> t
end

module Raw : sig
  val create : unit -> t * (Netsim.Device.t -> unit)
  (** [create ()] returns the channel and an [attach] function that turns a
      device into a flooding management agent (it claims the device's
      management-ethertype hook). Every participating device — including
      the NM's station — must be attached before use. *)
end
