(* The NM's path finder (§III-C.1): a depth-first traversal of the
   potential-connectivity graph that tracks encapsulation and
   decapsulation so only protocol-"sane" paths survive, and prunes paths
   that would peer IP modules from different address domains (figure 6).

   A path is the sequence of modules customer traffic crosses between the
   two customer-facing ETH modules of the goal. Customer traffic itself is
   modelled as two base headers (the customer's Ethernet frame and IP
   packet): [phy=>up] at the first module pops the base Ethernet header,
   and the final [up=>phy] at the target restores it. *)

type action = Push | Pop | Inspect

type visit = {
  v_mod : Ids.t;
  v_kind : Abstraction.switch_kind;
  v_action : action;
  v_chain : int; (* 0 = base ETH, 1 = base (customer) IP, >=2 pushed headers *)
}

type path = { visits : visit list }

type goal = {
  g_from : Ids.t; (* customer-facing ETH module at the source site *)
  g_to : Ids.t;
  g_customer : string; (* address domain of the customer, e.g. "C1" *)
  g_src_domain : string; (* e.g. "C1-S1" *)
  g_dst_domain : string;
  g_src_site : string; (* e.g. "S1" *)
  g_dst_site : string;
  g_tradeoffs : string list;
  g_scope : string list; (* device ids the NM manages *)
}

let base_eth = 0
let base_ip = 1

type entry = From_phy | From_above | From_below

(* a pushed header on the logical stack *)
type hdr = { h_chain : int; h_proto : string; h_domain : string option }

type dfs_state = {
  topo : Topology.t;
  goal : goal;
  prune_domains : bool;
  mutable next_chain : int;
  mutable found : path list;
}

let in_scope st (m : Ids.t) = List.mem m.Ids.dev st.goal.g_scope

let domain st m = Topology.domain_of st.topo m

(* What the traversal sees as the outermost header. *)
let logical_top st stack ~eth_missing =
  match stack with
  | h :: _ -> Some h
  | [] ->
      if eth_missing then Some { h_chain = base_ip; h_proto = "IP"; h_domain = Some st.goal.g_customer }
      else Some { h_chain = base_eth; h_proto = "ETH"; h_domain = None }

let domain_compatible st m hdr =
  if (not st.prune_domains) || hdr.h_proto <> "IP" then true
  else
    match (hdr.h_domain, domain st m) with
    | Some a, Some b -> a = b
    | _ -> false (* IP modules without domain knowledge cannot be placed *)

let rec step st ~pos ~entry ~stack ~eth_missing ~visited ~acc =
  let abs = Topology.find_module_exn st.topo pos in
  let visited' = pos :: visited in
  let emit kind action chain next =
    let visit = { v_mod = pos; v_kind = kind; v_action = action; v_chain = chain } in
    next (visit :: acc)
  in
  let go_above ~stack ~eth_missing acc =
    List.iter
      (fun up ->
        if (not (List.exists (Ids.equal up) visited')) && in_scope st up then
          step st ~pos:up ~entry:From_below ~stack ~eth_missing ~visited:visited' ~acc)
      (Potential_graph.above st.topo pos)
  in
  let go_below ~stack ~eth_missing acc =
    List.iter
      (fun down ->
        if (not (List.exists (Ids.equal down) visited')) && in_scope st down then
          step st ~pos:down ~entry:From_above ~stack ~eth_missing ~visited:visited' ~acc)
      (Potential_graph.below st.topo pos)
  in
  let go_phys ~stack ~eth_missing acc =
    List.iter
      (fun (_, remote, _) ->
        if (not (List.exists (Ids.equal remote) visited')) && in_scope st remote then
          step st ~pos:remote ~entry:From_phy ~stack ~eth_missing ~visited:visited' ~acc)
      (Potential_graph.phys_neighbours st.topo pos)
  in
  (* goal completion: at the target ETH module, entered from above, with all
     transit encapsulations undone — push the customer frame back out. *)
  if
    Ids.equal pos st.goal.g_to && entry = From_above && stack = [] && eth_missing
    && Abstraction.can_switch abs Abstraction.Up_phy
  then begin
    let visit = { v_mod = pos; v_kind = Abstraction.Up_phy; v_action = Push; v_chain = base_eth } in
    st.found <- { visits = List.rev (visit :: acc) } :: st.found
  end
  else
    List.iter
      (fun kind ->
        match (kind, entry) with
        | Abstraction.Phy_up, From_phy -> (
            match stack with
            | h :: rest when h.h_proto = "ETH" ->
                emit kind Pop h.h_chain (fun acc -> go_above ~stack:rest ~eth_missing acc)
            | _ :: _ -> ()
            | [] ->
                if not eth_missing then
                  (* popping the customer's own frame: path entry *)
                  emit kind Pop base_eth (fun acc -> go_above ~stack ~eth_missing:true acc))
        | Abstraction.Phy_phy, From_phy -> (
            match logical_top st stack ~eth_missing with
            | Some h when h.h_proto = "ETH" ->
                emit kind Inspect h.h_chain (fun acc -> go_phys ~stack ~eth_missing acc)
            | _ -> ())
        | Abstraction.Down_up, From_below -> (
            match stack with
            | h :: rest when h.h_proto = abs.Abstraction.name && domain_compatible st pos h ->
                emit kind Pop h.h_chain (fun acc -> go_above ~stack:rest ~eth_missing acc)
            | _ -> () (* base headers are never terminated mid-path *))
        | Abstraction.Down_down, From_below -> (
            match logical_top st stack ~eth_missing with
            | Some h when h.h_proto = abs.Abstraction.name && domain_compatible st pos h ->
                emit kind Inspect h.h_chain (fun acc -> go_below ~stack ~eth_missing acc)
            | _ -> ())
        | Abstraction.Up_down, From_above ->
            st.next_chain <- st.next_chain + 1;
            let h =
              { h_chain = st.next_chain; h_proto = abs.Abstraction.name; h_domain = domain st pos }
            in
            emit kind Push h.h_chain (fun acc -> go_below ~stack:(h :: stack) ~eth_missing acc)
        | Abstraction.Up_phy, From_above ->
            st.next_chain <- st.next_chain + 1;
            let h = { h_chain = st.next_chain; h_proto = "ETH"; h_domain = None } in
            emit kind Push h.h_chain (fun acc -> go_phys ~stack:(h :: stack) ~eth_missing acc)
        | Abstraction.Up_up, _ ->
            (* loopback switching creates no inter-device paths; skipped *)
            ()
        | ( ( Abstraction.Phy_up | Abstraction.Phy_phy | Abstraction.Down_up
            | Abstraction.Down_down | Abstraction.Up_down | Abstraction.Up_phy ),
            _ ) ->
            ())
      abs.Abstraction.switch

(* [prune_domains:false] disables the figure-6(b) address-domain check —
   an ablation showing how many protocol-plausible but semantically invalid
   paths the pruning removes. *)
let find ?(prune_domains = true) topo goal =
  let st = { topo; goal; prune_domains; next_chain = base_ip; found = [] } in
  step st ~pos:goal.g_from ~entry:From_phy ~stack:[] ~eth_missing:false ~visited:[] ~acc:[];
  List.rev st.found

(* --- hierarchical two-step traversal (§III-C.3) -------------------------------

   The paper's scalability suggestion: "a hierarchical two-step traversal
   wherein the first step finds paths between devices that have been
   pre-established using a routing algorithm while the next step finds the
   complete module-level path given the device-level path". Step one is a
   BFS over physical connectivity; step two restricts the module-level DFS
   to the devices on that walk, so its cost no longer depends on the rest
   of the network. *)

let device_path topo goal =
  let neighbours dev =
    match Topology.device topo dev with
    | Some d ->
        List.filter_map
          (fun (_, peer, _) -> if List.mem peer goal.g_scope then Some peer else None)
          d.Topology.di_links
        |> List.sort_uniq compare
    | None -> []
  in
  let src = goal.g_from.Ids.dev and dst = goal.g_to.Ids.dev in
  let rec bfs frontier seen =
    match frontier with
    | [] -> None
    | (dev, acc) :: rest ->
        if dev = dst then Some (List.rev (dev :: acc))
        else
          let next =
            List.filter (fun p -> not (List.mem p seen)) (neighbours dev)
            |> List.map (fun p -> (p, dev :: acc))
          in
          bfs (rest @ next) (List.map fst next @ seen)
  in
  bfs [ (src, []) ] [ src ]

let find_hierarchical ?prune_domains topo goal =
  match device_path topo goal with
  | None -> []
  | Some devices ->
      (* restrict the module-level search to the chosen device walk *)
      find ?prune_domains topo { goal with g_scope = devices }

(* The paper's rendering: "a, g, l, h, b, c, i, d, e, j, n, k, f". *)
let signature path = String.concat ", " (List.map (fun v -> Ids.short v.v_mod) path.visits)

let pp ppf path = Fmt.string ppf (signature path)

(* Counts the up-down pipes a path would instantiate: the chooser's metric
   ("minimize the total number of pipes instantiated in the routers"). *)
let pipe_count path =
  (* one pipe per transition that is not a physical hop, plus the two
     customer-side pipes at the ends are already transitions... transitions
     = |visits| - 1; physical hops are transitions out of Up_phy/Phy_phy *)
  let rec count = function
    | v :: (_ :: _ as rest) ->
        (match v.v_kind with
        | Abstraction.Up_phy | Abstraction.Phy_phy -> 0
        | _ -> 1)
        + count rest
    | _ -> 0
  in
  count path.visits

(* Tie-break: paths through modules advertising fast forwarding win. *)
let fast_modules topo path =
  List.length
    (List.filter
       (fun v -> (Topology.find_module_exn topo v.v_mod).Abstraction.fast_forwarding)
       path.visits)

let choose topo paths =
  match paths with
  | [] -> None
  | _ ->
      let best =
        List.stable_sort
          (fun a b ->
            match compare (pipe_count a) (pipe_count b) with
            | 0 -> compare (fast_modules topo b) (fast_modules topo a)
            | c -> c)
          paths
      in
      Some (List.hd best)
