(** The ESP (IPsec) protocol module — figure 1's example of a module with
    an external dependency. Unlike GRE it does not negotiate parameters
    with its peer: its up pipe declares the "esp-keys" dependency, which
    the NM resolves to a control module (IKE, §II-F); the module waits for
    the keys and then emits the device-level tunnel command. Advertises
    confidentiality/integrity, which the NM uses to satisfy secure goals. *)

val abstraction : unit -> Abstraction.t
val make : env:Module_impl.env -> mref:Ids.t -> unit -> Module_impl.t
