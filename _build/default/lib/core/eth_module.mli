(** The ETH protocol module.

    On hosts and routers, one per port, passing packets between its
    physical pipe and the module above ([phy=>up]/[up=>phy]). On layer-2
    switches a single ETH module covers all ports and additionally
    advertises [phy=>phy] switching — the distinction the NM uses to tell
    a switch from a router (§II-C.2, Table IV). *)

val make :
  env:Module_impl.env ->
  mref:Ids.t ->
  ports:int list ->
  switching:bool ->
  neighbours:(int -> (string * string) list) ->
  unit ->
  Module_impl.t
(** [make ~env ~mref ~ports ~switching ~neighbours ()] wraps the given
    device ports. [neighbours i] reports the physical peers of port [i] as
    [(device id, port name)] pairs, used to advertise physical pipes. *)
