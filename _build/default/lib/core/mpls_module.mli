(** The MPLS protocol module.

    Each down pipe (over ETH) is a label-switched adjacency: the module
    allocates the label it wants to receive from that neighbour and conveys
    it, with its interface address, to the adjacent MPLS module (downstream
    label allocation). Switch rules translate into mpls-linux style
    ILM/NHLFE/XC commands; the FTN for label imposition is exposed to the
    IP module above through the [ftn-key:<pipe>]/[ftn-via:<pipe>] fields.
    Advertises fast forwarding — the hint the paper's chooser uses to
    prefer the MPLS path. *)

val abstraction : unit -> Abstraction.t
val make : env:Module_impl.env -> mref:Ids.t -> unit -> Module_impl.t
