(** A minimal s-expression codec used as the wire format of the management
    channel. Atoms are quoted only when needed, so encoded messages stay
    human-readable in traces. *)

type t = Atom of string | List of t list

exception Parse_error of string

val atom : string -> t
val list : t list -> t
val to_string : t -> string
val of_string : string -> t
val equal : t -> t -> bool
val pp : t Fmt.t

(** {1 Conversion combinators} *)

val of_int : int -> t
val to_int : t -> int
val of_bool : bool -> t
val to_bool : t -> bool
val to_atom : t -> string
val to_list : t -> t list
val of_option : ('a -> t) -> 'a option -> t
val to_option : (t -> 'a) -> t -> 'a option
val of_pair : ('a -> t) -> ('b -> t) -> 'a * 'b -> t
val to_pair : (t -> 'a) -> (t -> 'b) -> t -> 'a * 'b
val of_mref : Ids.t -> t
val to_mref : t -> Ids.t
