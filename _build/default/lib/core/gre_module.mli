(** The GRE protocol module (§III-B, Table III).

    A wrapper around the (simulated) kernel GRE implementation: the NM only
    creates pipes and one switch rule; the module negotiates keys, sequence
    numbers and checksums with its peer GRE module through conveyMessage
    and then emits the same [ip tunnel add] command an operator would have
    typed. The performance trade-offs requested on the up pipe
    ("in-order-delivery", "low-error-rate") decide the optional protocol
    features without the NM ever seeing them. *)

val abstraction : unit -> Abstraction.t
(** The self-description of Table III. *)

val make : env:Module_impl.env -> mref:Ids.t -> unit -> Module_impl.t
(** A fresh GRE module for the device behind [env]. *)
