(** Module references.

    Every protocol module is globally identified by the tuple
    [<module name, module-id, device-id>] (CONMan §II): the module name is
    the protocol ("IP", "GRE", "MPLS", "ETH", "VLAN"), the module id is
    unique within its device (the paper's single letters: g, h, l, …), and
    the device id is globally unique and topology independent. *)

type t = { name : string; mid : string; dev : string }

val v : string -> string -> string -> t
(** [v name mid dev] builds a reference. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** Rendered the paper's way: [<GRE,id-A,l>]. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on malformed input. *)

val pp : t Fmt.t

val short : t -> string
(** The module id alone — the label used in path signatures ("g"). *)

val qualified : t -> string
(** ["dev.mid"], unambiguous across devices. *)
