(* Module references: every protocol module is globally identified by
   <module name, module-id, device-id> (CONMan §II). Module names are
   protocol names ("IP", "GRE", ...); module ids are unique within a
   device; device ids are globally unique and topology independent. *)

type t = { name : string; mid : string; dev : string }

let v name mid dev = { name; mid; dev }

let equal a b = a.name = b.name && a.mid = b.mid && a.dev = b.dev
let compare = compare
let hash = Hashtbl.hash

let to_string t = Printf.sprintf "<%s,%s,%s>" t.name t.dev t.mid

let of_string s =
  let n = String.length s in
  if n < 2 || s.[0] <> '<' || s.[n - 1] <> '>' then invalid_arg ("Ids.of_string: " ^ s)
  else
    match String.split_on_char ',' (String.sub s 1 (n - 2)) with
    | [ name; dev; mid ] -> { name; mid; dev }
    | _ -> invalid_arg ("Ids.of_string: " ^ s)

let pp ppf t = Fmt.string ppf (to_string t)

(* A short label like "g" or "A.g" for rendering paths. *)
let short t = t.mid
let qualified t = Printf.sprintf "%s.%s" t.dev t.mid
