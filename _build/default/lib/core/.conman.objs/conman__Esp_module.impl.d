lib/core/esp_module.ml: Abstraction Fmt Ids List Module_impl Netsim Primitive Printf String
