lib/core/ids.mli: Fmt
