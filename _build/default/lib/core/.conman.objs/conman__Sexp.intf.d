lib/core/sexp.mli: Fmt Ids
