lib/core/topology.ml: Abstraction Fmt Ids List Option
