lib/core/primitive.ml: Devconf Fmt Ids List Printf Sexp String
