lib/core/ike_module.ml: Abstraction Bytes Ids Int32 List Module_impl Netsim Packet Printf Sexp String
