lib/core/nm.ml: Abstraction Array Ids List Mgmt Netsim Path_finder Peer_msg Primitive Printf Script_gen Sexp Topology Wire
