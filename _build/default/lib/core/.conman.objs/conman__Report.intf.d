lib/core/report.mli: Devconf Format Path_finder Scenarios
