lib/core/scenarios.mli: Agent Ip_module Mgmt Netsim Nm Path_finder
