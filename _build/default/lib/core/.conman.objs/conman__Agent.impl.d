lib/core/agent.ml: Array Devconf Fmt Ids List Mgmt Module_impl Netsim Primitive Sexp Wire
