lib/core/potential_graph.mli: Abstraction Format Ids Topology
