lib/core/ike_module.mli: Abstraction Ids Module_impl
