lib/core/vlan_module.ml: Abstraction Ids List Module_impl Netsim Option Peer_msg Primitive Wire
