lib/core/abstraction.mli: Fmt Sexp
