lib/core/module_impl.ml: Abstraction Devconf Fmt Ids List Netsim Peer_msg Primitive String Wire
