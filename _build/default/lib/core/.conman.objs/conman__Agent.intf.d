lib/core/agent.mli: Ids Mgmt Module_impl Netsim
