lib/core/abstraction.ml: Fmt List Printf Sexp String
