lib/core/eth_module.ml: Abstraction Fmt Ids List Module_impl Netsim Option Packet Primitive Printf String
