lib/core/primitive.mli: Devconf Fmt Ids Sexp
