lib/core/wire.ml: Abstraction Bytes Ids List Peer_msg Primitive Sexp
