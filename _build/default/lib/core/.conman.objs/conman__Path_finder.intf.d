lib/core/path_finder.mli: Abstraction Fmt Ids Topology
