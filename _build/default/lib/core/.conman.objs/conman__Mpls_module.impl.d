lib/core/mpls_module.ml: Abstraction Devconf Fmt Ids Int32 List Module_impl Netsim Option Packet Peer_msg Primitive Printf Scanf String Wire
