lib/core/gre_module.ml: Abstraction Fmt Ids Int32 List Module_impl Netsim Option Peer_msg Primitive Printf String
