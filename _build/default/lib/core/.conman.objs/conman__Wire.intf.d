lib/core/wire.mli: Abstraction Fmt Ids Peer_msg Primitive Sexp
