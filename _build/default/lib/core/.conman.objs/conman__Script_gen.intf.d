lib/core/script_gen.mli: Devconf Format Ids Path_finder Primitive Topology
