lib/core/ip_module.ml: Abstraction Bytes Fmt Ids List Module_impl Netsim Option Packet Peer_msg Primitive Printf String Wire
