lib/core/nm.mli: Ids Mgmt Netsim Path_finder Peer_msg Script_gen Topology
