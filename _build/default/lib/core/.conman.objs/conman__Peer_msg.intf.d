lib/core/peer_msg.mli: Fmt Sexp
