lib/core/vlan_module.mli: Abstraction Ids Module_impl
