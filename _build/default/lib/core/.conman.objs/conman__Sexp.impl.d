lib/core/sexp.ml: Buffer Fmt Ids List Printf String
