lib/core/potential_graph.ml: Abstraction Fmt Ids List Option String Topology
