lib/core/gre_module.mli: Abstraction Ids Module_impl
