lib/core/esp_module.mli: Abstraction Ids Module_impl
