lib/core/module_impl.mli: Abstraction Format Ids Netsim Peer_msg Primitive Wire
