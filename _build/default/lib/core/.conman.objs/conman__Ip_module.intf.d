lib/core/ip_module.mli: Abstraction Ids Module_impl
