lib/core/mpls_module.mli: Abstraction Ids Module_impl
