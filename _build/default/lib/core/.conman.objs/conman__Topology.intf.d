lib/core/topology.mli: Abstraction Fmt Ids
