lib/core/ids.ml: Fmt Hashtbl Printf String
