lib/core/scenarios.ml: Agent Array Device Esp_module Eth_module Fun Gre_module Ids Ike_module Ip_module List Mgmt Mpls_module Net Netsim Nm Path_finder Printf Testbeds Topology Vlan_module
