lib/core/peer_msg.ml: Int32 List Sexp
