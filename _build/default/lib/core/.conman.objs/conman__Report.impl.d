lib/core/report.ml: Abstraction Devconf Fmt Gre_module Ids List Netsim Nm Path_finder Peer_msg Potential_graph Primitive Printf Scenarios Script_gen String Topology
