lib/core/script_gen.ml: Abstraction Array Fmt Hashtbl Ids List Option Path_finder Primitive Printf Topology
