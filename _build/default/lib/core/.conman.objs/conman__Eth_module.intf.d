lib/core/eth_module.mli: Ids Module_impl
