lib/core/path_finder.ml: Abstraction Fmt Ids List Potential_graph String Topology
