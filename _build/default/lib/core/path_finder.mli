(** The NM's path finder (§III-C.1).

    A depth-first traversal of the potential-connectivity graph that tracks
    encapsulation and decapsulation so only protocol-"sane" paths survive
    (figure 6(a)), and prunes paths that would peer IP modules from
    different address domains (figure 6(b)). On the figure-4 testbed it
    enumerates exactly the paper's nine paths. *)

(** What a module does to the traffic at its step of the path. *)
type action = Push | Pop | Inspect

type visit = {
  v_mod : Ids.t;
  v_kind : Abstraction.switch_kind; (** the switch rule this step needs *)
  v_action : action;
  v_chain : int; (** the header chain acted on; see {!base_eth}/{!base_ip} *)
}

type path = { visits : visit list }

(** A high-level connectivity goal: connect two customer-facing ETH modules
    for traffic between two customer sites (§III-C). *)
type goal = {
  g_from : Ids.t; (** customer-facing ETH module at the source site *)
  g_to : Ids.t;
  g_customer : string; (** customer address domain, e.g. "C1" *)
  g_src_domain : string; (** e.g. "C1-S1" *)
  g_dst_domain : string;
  g_src_site : string; (** e.g. "S1" *)
  g_dst_site : string;
  g_tradeoffs : string list; (** performance trade-offs for tunnel pipes *)
  g_scope : string list; (** device ids the NM manages *)
}

val base_eth : int
(** Chain id of the customer's Ethernet frame (popped at entry, restored at
    the exit module). *)

val base_ip : int
(** Chain id of the customer's IP packet (inspected by the edge IP
    modules, never terminated mid-path). *)

val find : ?prune_domains:bool -> Topology.t -> goal -> path list
(** All protocol-sane paths. [prune_domains:false] disables the
    figure-6(b) address-domain check (ablation). *)

val find_hierarchical : ?prune_domains:bool -> Topology.t -> goal -> path list
(** The paper's scalability suggestion (§III-C.3): find a device-level walk
    first (BFS over physical links), then the module-level paths restricted
    to it. *)

val device_path : Topology.t -> goal -> string list option
(** The BFS device walk used by {!find_hierarchical}. *)

val signature : path -> string
(** The paper's rendering: ["a, g, l, h, b, c, i, d, e, j, n, k, f"]. *)

val pp : path Fmt.t

val pipe_count : path -> int
(** Up-down pipes the path would instantiate — the chooser's metric. *)

val fast_modules : Topology.t -> path -> int
(** How many modules along the path advertise fast forwarding. *)

val choose : Topology.t -> path list -> path option
(** Minimise {!pipe_count}, tie-break on {!fast_modules} — the rule that
    makes the NM pick the MPLS path, as in the paper. *)
