(** Translation of a chosen path into the CONMan primitive script
    (§III-C.1, figures 7(b)/8(b)): pipe creations with peer assignments
    derived from the encapsulation chains, followed by one switch rule per
    mid-path module, grouped per device for bundle delivery. *)

type script = {
  prims : Primitive.t list; (** the full script in path order *)
  per_device : (string * Primitive.t list) list; (** grouped, order kept *)
  reporter : Ids.t option;
      (** module that reports completion to the NM (the far-edge MPLS/VLAN
          module in hop-by-hop scenarios) *)
  path : Path_finder.path;
}

val generate : Topology.t -> Path_finder.goal -> Path_finder.path -> script

val deletion_script : script -> script
(** The inverse script: switch rules removed first (in reverse creation
    order), then the pipes. *)

val pp_device_script : Format.formatter -> Primitive.t list -> unit
(** Renders a per-device slice the way figure 7(b) prints it. *)

val table5_counts : script -> device:string -> Devconf.Metrics.counts
(** Generic/specific command and state-variable counts for one device's
    slice — the CONMan column of Table V. *)
