(* A minimal s-expression codec used as the wire format of the management
   channel. Atoms are quoted only when needed, so encoded messages stay
   human-readable in traces. *)

type t = Atom of string | List of t list

exception Parse_error of string

let atom s = Atom s
let list l = List l

let needs_quoting s =
  s = ""
  || String.exists (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\\') s

let rec to_buf buf = function
  | Atom s ->
      if needs_quoting s then begin
        Buffer.add_char buf '"';
        String.iter
          (fun c ->
            match c with
            | '"' | '\\' ->
                Buffer.add_char buf '\\';
                Buffer.add_char buf c
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          s;
        Buffer.add_char buf '"'
      end
      else Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          to_buf buf item)
        items;
      Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 64 in
  to_buf buf t;
  Buffer.contents buf

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t') do advance () done
  in
  let rec parse () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' -> advance ()
          | None -> fail "unclosed list"
          | Some _ ->
              items := parse () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some ')' -> fail "unexpected )"
    | Some '"' ->
        advance ();
        let buf = Buffer.create 16 in
        let rec loop () =
          match peek () with
          | None -> fail "unclosed string"
          | Some '"' -> advance ()
          | Some '\\' ->
              advance ();
              (match peek () with
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some c -> Buffer.add_char buf c
              | None -> fail "bad escape");
              advance ();
              loop ()
          | Some c ->
              Buffer.add_char buf c;
              advance ();
              loop ()
        in
        loop ();
        Atom (Buffer.contents buf)
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && not (s.[!pos] = ' ' || s.[!pos] = '(' || s.[!pos] = ')' || s.[!pos] = '\n')
        do
          advance ()
        done;
        Atom (String.sub s start (!pos - start))
  in
  let t = parse () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  t

(* --- combinators for conversions ---------------------------------------- *)

let of_int i = Atom (string_of_int i)

let to_int = function
  | Atom s -> ( try int_of_string s with Failure _ -> raise (Parse_error ("not an int: " ^ s)))
  | List _ -> raise (Parse_error "expected int atom")

let of_bool b = Atom (if b then "true" else "false")

let to_bool = function
  | Atom "true" -> true
  | Atom "false" -> false
  | _ -> raise (Parse_error "expected bool")

let to_atom = function
  | Atom s -> s
  | List _ -> raise (Parse_error "expected atom")

let to_list = function
  | List l -> l
  | Atom _ -> raise (Parse_error "expected list")

let of_option f = function None -> List [] | Some x -> List [ f x ]

let to_option f = function
  | List [] -> None
  | List [ x ] -> Some (f x)
  | _ -> raise (Parse_error "expected option")

let of_pair f g (a, b) = List [ f a; g b ]

let to_pair f g = function
  | List [ a; b ] -> (f a, g b)
  | _ -> raise (Parse_error "expected pair")

let of_mref (m : Ids.t) = List [ Atom m.Ids.name; Atom m.Ids.mid; Atom m.Ids.dev ]

let to_mref = function
  | List [ Atom name; Atom mid; Atom dev ] -> Ids.v name mid dev
  | _ -> raise (Parse_error "expected module ref")

let equal = ( = )
let pp ppf t = Fmt.string ppf (to_string t)
