(** The IKE control module (§II-F, figure 1): provides the "esp-keys"
    dependency. When the local ESP module asks for keying material towards
    a peer, IKE negotiates SPIs and keys with the remote IKE over the data
    plane (UDP port 500, retransmitting until acknowledged) — so key
    exchange completes only once the underlying IP path works, and the NM
    never sees a key. *)

val ike_port : int

val abstraction : unit -> Abstraction.t
(** Advertises [provides = ["esp-keys"]] and an up pipe to UDP (figure 1). *)

val make : env:Module_impl.env -> mref:Ids.t -> unit -> Module_impl.t
(** Also binds UDP port {!ike_port} on the device. *)
