(** The IP protocol module.

    A device may host several IP module instances (figure 4(b): router A
    has the customer-facing g and the core-facing h), each bound to a set
    of interfaces and an address domain. As the bottom of a tunnel pipe it
    exchanges endpoint addresses with its peer; as the top of a pipe over
    ETH it exchanges next-hop addresses; switch rules translate into the
    same iproute2-style commands the "today" scripts use (routes, policy
    tables, label imposition when the pipe below is MPLS). *)

type state
(** The module's mutable internals (pipes, deferred rules, filters). *)

val abstraction : unit -> Abstraction.t

(** A handle for operator-style actions used by the dependency-tracking
    experiments. *)
type handle = {
  change_address : iface:string -> string -> string -> unit;
      (** [change_address ~iface old new_] renumbers the interface and
          fires a [Trigger] to the NM (§II-E). *)
  state : state;
}

val make :
  env:Module_impl.env ->
  mref:Ids.t ->
  ifaces:string list ->
  domain:string ->
  unit ->
  Module_impl.t * handle
(** [make ~env ~mref ~ifaces ~domain ()] builds an IP module bound to
    [ifaces] in address [domain] ("ISP", "C1", …). *)
