(** The VLAN protocol module on layer-2 switches (figure 9).

    The customer-side pipe is peered with the far switch's VLAN module and
    the trunk-side pipes with adjacent VLAN modules; the ingress module
    allocates a VLAN id and propagates it hop by hop, then every module
    programs its ports (QinQ tunnel towards the customer, tagged trunks in
    between, MTU raised for the extra tag) — the state the CatOS script of
    figure 9(a) writes by hand. Teardown parks customer ports in an
    isolated holding VLAN. *)

val first_vid : int
(** Where vid allocation starts (22, the paper's example). *)

val tunnel_mtu : int
(** The VLAN MTU programmed on trunks (1504: room for the QinQ tag). *)

val abstraction : unit -> Abstraction.t
val make : env:Module_impl.env -> mref:Ids.t -> unit -> Module_impl.t
