(* The IKE control module (§II-F, figure 1).

   Control modules do not fit the data-module abstraction: they "advertise
   their ability to provide the state for certain data modules and the NM
   simply uses them". This one provides the "esp-keys" dependency: when the
   local ESP module asks for keying material towards a peer, IKE negotiates
   SPIs and keys with the remote IKE *over the data plane* (UDP port 500,
   figure 1's "IKE has a pipe to UDP"), retransmitting until acknowledged —
   which also means key exchange only completes once the underlying IP path
   works, exactly the bootstrapping order of a real IPsec deployment. *)

open Module_impl

let ike_port = 500
let retransmit_ns = 100_000L
let max_tries = 50

type sa = {
  sa_local : string;
  sa_remote : string;
  (* from our perspective *)
  mutable spi_in : int32;
  mutable key_in : int32;
  mutable spi_out : int32;
  mutable key_out : int32;
  mutable established : bool;
  mutable tries : int;
}

type state = {
  env : env;
  mref : Ids.t;
  mutable sas : sa list;
  mutable next_spi : int32;
  mutable next_key : int32;
}

let find_sa st ~local ~remote =
  List.find_opt (fun sa -> sa.sa_local = local && sa.sa_remote = remote) st.sas

(* the lower address initiates, so exactly one side proposes *)
let initiator ~local ~remote = compare local remote < 0

let wire_of_msg m = Bytes.of_string (Sexp.to_string m)

let send_udp st ~local ~remote payload =
  Netsim.Datapath.udp_send st.env.device
    ~src:(Packet.Ipv4_addr.of_string local)
    ~dst:(Packet.Ipv4_addr.of_string remote)
    ~src_port:ike_port ~dst_port:ike_port payload

let proposal sa =
  (* fields are named from the RESPONDER's perspective so it can adopt them
     directly: our in is their out *)
  Sexp.List
    [
      Sexp.atom "ike-proposal";
      Sexp.atom sa.sa_local;
      Sexp.atom sa.sa_remote;
      Sexp.atom (Int32.to_string sa.spi_out); (* responder receives on this *)
      Sexp.atom (Int32.to_string sa.key_out);
      Sexp.atom (Int32.to_string sa.spi_in);
      Sexp.atom (Int32.to_string sa.key_in);
    ]

let ack sa =
  Sexp.List [ Sexp.atom "ike-ack"; Sexp.atom sa.sa_local; Sexp.atom sa.sa_remote ]

let rec transmit_until_acked st sa =
  if (not sa.established) && sa.tries < max_tries then begin
    sa.tries <- sa.tries + 1;
    send_udp st ~local:sa.sa_local ~remote:sa.sa_remote (wire_of_msg (proposal sa));
    st.env.schedule ~delay_ns:retransmit_ns (fun () -> transmit_until_acked st sa)
  end

let start_negotiation st ~local ~remote =
  let sa =
    {
      sa_local = local;
      sa_remote = remote;
      spi_in = st.next_spi;
      key_in = st.next_key;
      spi_out = Int32.add st.next_spi 1l;
      key_out = Int32.add st.next_key 1l;
      established = false;
      tries = 0;
    }
  in
  st.next_spi <- Int32.add st.next_spi 2l;
  st.next_key <- Int32.add st.next_key 1000l;
  st.sas <- sa :: st.sas;
  if initiator ~local ~remote then transmit_until_acked st sa;
  sa

let on_udp st ~src:_ ~src_port:_ payload =
  match Sexp.of_string (Bytes.to_string payload) with
  | exception Sexp.Parse_error _ -> ()
  | Sexp.List
      [ Sexp.Atom "ike-proposal"; Sexp.Atom their_local; Sexp.Atom their_remote;
        Sexp.Atom spi_in; Sexp.Atom key_in; Sexp.Atom spi_out; Sexp.Atom key_out ] ->
      (* we are the responder: [their_remote] is our local address *)
      let local = their_remote and remote = their_local in
      let sa =
        match find_sa st ~local ~remote with
        | Some sa -> sa
        | None -> start_negotiation st ~local ~remote
      in
      if not sa.established then begin
        sa.spi_in <- Int32.of_string spi_in;
        sa.key_in <- Int32.of_string key_in;
        sa.spi_out <- Int32.of_string spi_out;
        sa.key_out <- Int32.of_string key_out;
        sa.established <- true;
        st.env.progress ()
      end;
      send_udp st ~local ~remote (wire_of_msg (ack sa))
  | Sexp.List [ Sexp.Atom "ike-ack"; Sexp.Atom their_local; Sexp.Atom their_remote ] -> (
      match find_sa st ~local:their_remote ~remote:their_local with
      | Some sa when not sa.established ->
          sa.established <- true;
          st.env.progress ()
      | _ -> ())
  | _ -> ()

let abstraction () =
  {
    Abstraction.default with
    name = "IKE";
    (* figure 1: the control module rides UDP for delivery *)
    up = Some { Abstraction.connectable = [ "UDP" ]; dependencies = [] };
    peerable = [ "IKE" ];
    provides = [ "esp-keys" ];
    security = [ "key-exchange" ];
  }

let make ~env ~mref () =
  let st = { env; mref; sas = []; next_spi = 0x100l; next_key = 7001l } in
  Netsim.Device.udp_bind env.device ~port:ike_port (fun ~src ~src_port payload ->
      on_udp st ~src ~src_port payload);
  {
    (no_op_module mref abstraction) with
    fields =
      (fun key ->
        match String.split_on_char ':' key with
        | [ "keys"; local; remote ] -> (
            match find_sa st ~local ~remote with
            | Some sa when sa.established ->
                Some
                  (Printf.sprintf "%ld,%ld,%ld,%ld" sa.spi_in sa.key_in sa.spi_out sa.key_out)
            | Some _ -> None
            | None ->
                let _ = start_negotiation st ~local ~remote in
                None)
        | _ -> None);
    actual =
      (fun () ->
        List.map
          (fun sa ->
            ( Printf.sprintf "sa:%s->%s" sa.sa_local sa.sa_remote,
              if sa.established then "established" else Printf.sprintf "negotiating (try %d)" sa.tries ))
          st.sas);
    self_test =
      (fun ~against:_ ~reply ->
        if List.for_all (fun sa -> sa.established) st.sas then
          reply ~ok:true ~detail:"all SAs established"
        else reply ~ok:false ~detail:"SA negotiation incomplete");
  }
