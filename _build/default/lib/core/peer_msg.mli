(** Module-to-module coordination payloads, relayed by the NM through
    conveyMessage (§II-D.1). Opaque to the NM: it forwards them without
    interpreting protocol-specific content. *)

type t =
  | Gre_params of { pipe : string; ikey : int32; okey : int32; use_seq : bool; use_csum : bool }
      (** GRE endpoints agreeing on keys/sequencing/checksums (figure 3);
          the initiator proposes, fields from its perspective *)
  | Gre_params_ack of { pipe : string }
  | Lfv_request of { purpose : string; fields : string list; own : (string * string) list }
      (** listFieldsAndValues (§II-E). The requester includes its own values
          so one exchange teaches both sides; [purpose] ("endpoint",
          "nexthop", "filter", "probe") disambiguates exchanges between the
          same two modules. *)
  | Lfv_reply of { purpose : string; fields : (string * string) list }
  | Mpls_label_bind of { pipe : string; label : int; nexthop : string }
      (** downstream label allocation: "use [label] when sending to me";
          [nexthop] piggybacks the allocator's interface address *)
  | Vlan_vid_bind of { pipe : string; vid : int }
  | Vlan_vid_ack of { pipe : string }

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
