(* The Module Abstraction (CONMan §II-C, Table II): the generic
   self-description every protocol module exposes through showPotential.
   The NM reasons about the network exclusively in these terms. *)

type switch_kind = Up_down | Down_up | Down_down | Up_up | Up_phy | Phy_up | Phy_phy

let switch_kind_to_string = function
  | Up_down -> "up=>down"
  | Down_up -> "down=>up"
  | Down_down -> "down=>down"
  | Up_up -> "up=>up"
  | Up_phy -> "up=>phy"
  | Phy_up -> "phy=>up"
  | Phy_phy -> "phy=>phy"

let switch_kind_of_string = function
  | "up=>down" -> Up_down
  | "down=>up" -> Down_up
  | "down=>down" -> Down_down
  | "up=>up" -> Up_up
  | "up=>phy" -> Up_phy
  | "phy=>up" -> Phy_up
  | "phy=>phy" -> Phy_phy
  | s -> invalid_arg ("switch_kind_of_string: " ^ s)

(* Where the state that drives a switch comes from (Table II): generated
   locally by the module (through peer coordination) or provided by an
   external entity (a control module the paper deliberately omits). *)
type switch_origin = Local | External

(* Performance trade-offs (§II-C.4): named trade-offs a module can enforce
   for a given pipe, without exposing the option that implements them. *)
type tradeoff = { gives : string list; costs : string list }

let tradeoff_name t = String.concat "+" t.gives

type pipe_side = {
  connectable : string list; (* module names this side can connect to *)
  dependencies : string list; (* must be satisfied before pipe creation *)
}

type physical_pipe = {
  phys_id : string; (* pipe identifier, e.g. "P-A-eth1" *)
  peer_device : string; (* device id on the other side, "" if unplugged *)
  peer_port : string;
  broadcast : bool;
}

type t = {
  name : string; (* protocol name: "IP", "GRE", "MPLS", "ETH", "VLAN" *)
  up : pipe_side option; (* None: module cannot have up pipes *)
  down : pipe_side option;
  physical : physical_pipe list;
  peerable : string list;
  filterable : string list; (* component kinds filter rules may reference *)
  switch : switch_kind list;
  switch_origin : switch_origin;
  multicast : bool;
  perf_reporting : string list; (* counters reported per pipe *)
  perf_tradeoffs : tradeoff list;
  perf_enforcement : string list;
  security : string list;
  (* Control modules (§II-F) "advertise their ability to provide the state
     for certain data modules": the dependency names they satisfy. *)
  provides : string list;
  (* advertised forwarding quality; the paper's NM prefers MPLS because "the
     MPLS abstraction mentions that it offers good forwarding bandwidth" *)
  fast_forwarding : bool;
}

let default =
  {
    name = "";
    up = None;
    down = None;
    physical = [];
    peerable = [];
    filterable = [];
    switch = [];
    switch_origin = Local;
    multicast = false;
    perf_reporting = [];
    perf_tradeoffs = [];
    perf_enforcement = [];
    security = [];
    provides = [];
    fast_forwarding = false;
  }

let can_switch t k = List.mem k t.switch

(* Does the module encapsulate (push its own header) / decapsulate? *)
let encapsulating_kind = function Up_down | Up_phy -> true | _ -> false
let decapsulating_kind = function Down_up | Phy_up -> true | _ -> false

(* --- sexp conversions ---------------------------------------------------- *)

let side_to_sexp s =
  Sexp.List
    [
      Sexp.List (List.map Sexp.atom s.connectable);
      Sexp.List (List.map Sexp.atom s.dependencies);
    ]

let side_of_sexp = function
  | Sexp.List [ Sexp.List c; Sexp.List d ] ->
      { connectable = List.map Sexp.to_atom c; dependencies = List.map Sexp.to_atom d }
  | _ -> raise (Sexp.Parse_error "pipe_side")

let phys_to_sexp p =
  Sexp.List
    [ Sexp.atom p.phys_id; Sexp.atom p.peer_device; Sexp.atom p.peer_port; Sexp.of_bool p.broadcast ]

let phys_of_sexp = function
  | Sexp.List [ a; b; c; d ] ->
      {
        phys_id = Sexp.to_atom a;
        peer_device = Sexp.to_atom b;
        peer_port = Sexp.to_atom c;
        broadcast = Sexp.to_bool d;
      }
  | _ -> raise (Sexp.Parse_error "physical_pipe")

let tradeoff_to_sexp t =
  Sexp.List [ Sexp.List (List.map Sexp.atom t.gives); Sexp.List (List.map Sexp.atom t.costs) ]

let tradeoff_of_sexp = function
  | Sexp.List [ Sexp.List g; Sexp.List c ] ->
      { gives = List.map Sexp.to_atom g; costs = List.map Sexp.to_atom c }
  | _ -> raise (Sexp.Parse_error "tradeoff")

let to_sexp t =
  Sexp.List
    [
      Sexp.atom t.name;
      Sexp.of_option side_to_sexp t.up;
      Sexp.of_option side_to_sexp t.down;
      Sexp.List (List.map phys_to_sexp t.physical);
      Sexp.List (List.map Sexp.atom t.peerable);
      Sexp.List (List.map Sexp.atom t.filterable);
      Sexp.List (List.map (fun k -> Sexp.atom (switch_kind_to_string k)) t.switch);
      Sexp.atom (match t.switch_origin with Local -> "local" | External -> "external");
      Sexp.of_bool t.multicast;
      Sexp.List (List.map Sexp.atom t.perf_reporting);
      Sexp.List (List.map tradeoff_to_sexp t.perf_tradeoffs);
      Sexp.List (List.map Sexp.atom t.perf_enforcement);
      Sexp.List (List.map Sexp.atom t.security);
      Sexp.List (List.map Sexp.atom t.provides);
      Sexp.of_bool t.fast_forwarding;
    ]

let of_sexp = function
  | Sexp.List [ name; up; down; phys; peerable; filterable; switch; origin; mcast; perf; trade; enf; sec; prov; fast ] ->
      {
        name = Sexp.to_atom name;
        up = Sexp.to_option side_of_sexp up;
        down = Sexp.to_option side_of_sexp down;
        physical = List.map phys_of_sexp (Sexp.to_list phys);
        peerable = List.map Sexp.to_atom (Sexp.to_list peerable);
        filterable = List.map Sexp.to_atom (Sexp.to_list filterable);
        switch = List.map (fun s -> switch_kind_of_string (Sexp.to_atom s)) (Sexp.to_list switch);
        switch_origin =
          (match Sexp.to_atom origin with
          | "local" -> Local
          | "external" -> External
          | s -> raise (Sexp.Parse_error ("switch_origin: " ^ s)));
        multicast = Sexp.to_bool mcast;
        perf_reporting = List.map Sexp.to_atom (Sexp.to_list perf);
        perf_tradeoffs = List.map tradeoff_of_sexp (Sexp.to_list trade);
        perf_enforcement = List.map Sexp.to_atom (Sexp.to_list enf);
        security = List.map Sexp.to_atom (Sexp.to_list sec);
        provides = List.map Sexp.to_atom (Sexp.to_list prov);
        fast_forwarding = Sexp.to_bool fast;
      }
  | _ -> raise (Sexp.Parse_error "abstraction")

(* Rendering in the style of the paper's Table III / Table IV. *)
let pp_side ppf = function
  | None -> Fmt.string ppf "None"
  | Some s ->
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma string) s.connectable;
      if s.dependencies <> [] then
        Fmt.pf ppf " deps:[%a]" Fmt.(list ~sep:comma string) s.dependencies

let pp_table3 ppf t =
  Fmt.pf ppf "Name           %s@." t.name;
  Fmt.pf ppf "Up.Con-Modules %a@." pp_side t.up;
  Fmt.pf ppf "Down.Con-Mod.  %a@." pp_side t.down;
  Fmt.pf ppf "Physical pipes %s@."
    (if t.physical = [] then "None" else String.concat ", " (List.map (fun p -> p.phys_id) t.physical));
  Fmt.pf ppf "Peerable-Mod.  %a@." Fmt.(list ~sep:comma string) t.peerable;
  Fmt.pf ppf "Filter         %s@."
    (if t.filterable = [] then "Nil" else String.concat ", " t.filterable);
  Fmt.pf ppf "Switch         [%a]@."
    Fmt.(list ~sep:comma string)
    (List.map switch_kind_to_string t.switch);
  Fmt.pf ppf "Perf Reporting %s@."
    (if t.perf_reporting = [] then "Nil" else String.concat ", " t.perf_reporting);
  Fmt.pf ppf "Perf Trade-Off %s@."
    (if t.perf_tradeoffs = [] then "Nil"
     else
       String.concat "; "
         (List.map
            (fun tr ->
              Printf.sprintf "{[%s] Vs [%s]}" (String.concat ", " tr.costs)
                (String.concat ", " tr.gives))
            t.perf_tradeoffs));
  Fmt.pf ppf "Perf Enforce.  %s@."
    (if t.perf_enforcement = [] then "Nil" else String.concat ", " t.perf_enforcement);
  Fmt.pf ppf "Security       %s@." (if t.security = [] then "Nil" else String.concat ", " t.security)

(* One-line rendering in the style of Table IV. *)
let pp_table4_line ppf t =
  let side label = function
    | None -> label ^ ": None"
    | Some s -> Printf.sprintf "%s: {%s}" label (String.concat ", " s.connectable)
  in
  Fmt.pf ppf "%s, %s, Phy: %s, Switching: [%s]"
    (side "Up" t.up) (side "Down" t.down)
    (if t.physical = [] then "None"
     else String.concat "," (List.map (fun p -> "to " ^ p.peer_device) t.physical))
    (String.concat "],[" (List.map switch_kind_to_string t.switch))
