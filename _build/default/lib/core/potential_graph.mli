(** The potential-connectivity graph (§III-C.1, figure 5): which up-down
    pipes could exist between the modules of each device, and which
    physical pipes connect ETH modules across devices — derived purely from
    the abstractions returned by showPotential. *)

val connectable : Abstraction.t -> Abstraction.t -> bool
(** [connectable top bottom]: could [top] have a down pipe to [bottom]? *)

val below : Topology.t -> Ids.t -> Ids.t list
(** Same-device modules [m] could sit above. *)

val above : Topology.t -> Ids.t -> Ids.t list

val phys_neighbours : Topology.t -> Ids.t -> (string * Ids.t * string) list
(** [(local phys pipe id, remote ETH module, remote phys pipe id)] per
    wired port of an ETH module. *)

val pp_device : Format.formatter -> Topology.t * string -> unit
(** Renders one device's sub-graph the way figure 5 draws device A's. *)
