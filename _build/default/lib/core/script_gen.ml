(* Translation of a chosen path into the CONMan primitive script
   (§III-C.1, figures 7(b) and 8(b)): pipe creations with peer assignments
   derived from the encapsulation chains, followed by switch rules, grouped
   per device for bundle delivery. *)

type script = {
  prims : Primitive.t list; (* full script in path order *)
  per_device : (string * Primitive.t list) list; (* grouped, order preserved *)
  reporter : Ids.t option; (* module that reports completion (MPLS/VLAN) *)
  path : Path_finder.path;
}

(* --- chains ----------------------------------------------------------------

   For every header chain, the ordered list of (visit index, module).
   Terminals are the pusher and popper; the base chains have only
   inspectors/endpoint modules. *)

let chains (path : Path_finder.path) =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i (v : Path_finder.visit) ->
      let cur = try Hashtbl.find tbl v.Path_finder.v_chain with Not_found -> [] in
      Hashtbl.replace tbl v.Path_finder.v_chain ((i, v.Path_finder.v_mod) :: cur))
    path.Path_finder.visits;
  Hashtbl.fold (fun c members acc -> (c, List.rev members) :: acc) tbl []

(* Chain neighbours of the module at visit [i] in chain [c]. *)
let chain_prev all c i =
  match List.assoc_opt c all with
  | None -> None
  | Some members ->
      List.fold_left (fun acc (j, m) -> if j < i then Some m else acc) None members

let chain_next all c i =
  match List.assoc_opt c all with
  | None -> None
  | Some members -> List.find_map (fun (j, m) -> if j > i then Some m else None) members

let chain_first all c =
  Option.map (fun ms -> snd (List.hd ms)) (List.assoc_opt c all)

let chain_last all c =
  Option.map (fun ms -> snd (List.hd (List.rev ms))) (List.assoc_opt c all)

(* The other terminal of [m]'s own chain: the peer a module sees on its up
   pipe (its header travels to that terminal). *)
let other_terminal all c (m : Ids.t) =
  match (chain_first all c, chain_last all c) with
  | Some f, Some l -> if Ids.equal f m then (if Ids.equal l m then None else Some l) else Some f
  | _ -> None

(* --- pipes ------------------------------------------------------------------ *)

type pipe_info = {
  pi_id : string;
  pi_phys : bool;
  pi_top : Ids.t; (* for phys pipes: the two ETH endpoints *)
  pi_bottom : Ids.t;
  pi_spec : Primitive.pipe_spec option; (* None for phys *)
}

(* Dependencies the bottom module declares for its up pipes, resolved to
   same-device modules advertising that they provide them (§II-F): e.g. an
   ESP module's "esp-keys" dependency resolves to the local IKE module. *)
let resolve_deps topo (bottom : Ids.t) =
  match Topology.find_module topo bottom with
  | None -> []
  | Some a -> (
      match a.Abstraction.up with
      | None -> []
      | Some side ->
          List.filter_map
            (fun dep ->
              Topology.modules_of_device topo bottom.Ids.dev
              |> List.find_map (fun (m, ab) ->
                     if List.mem dep ab.Abstraction.provides then Some (dep, m) else None))
            side.Abstraction.dependencies)

let generate topo (goal : Path_finder.goal) (path : Path_finder.path) =
  let visits = Array.of_list path.Path_finder.visits in
  let n = Array.length visits in
  let all = chains path in
  let endpoint i = i = 0 || i = n - 1 in
  (* peer of the module at visit [i] on a pipe:
     - as pipe bottom (its up pipe): the other terminal of its own chain;
     - as pipe top (its down pipe): the adjacent member of its chain on the
       side the pipe faces;
     - the customer-facing endpoint modules peer with nothing (fig. 7(b)). *)
  let peer_as_bottom i =
    if endpoint i then None
    else
      let v = visits.(i) in
      other_terminal all v.Path_finder.v_chain v.Path_finder.v_mod
  in
  let peer_as_top i ~towards_end =
    if endpoint i then None
    else
      let v = visits.(i) in
      if towards_end then chain_next all v.Path_finder.v_chain i
      else chain_prev all v.Path_finder.v_chain i
  in
  (* one pipe per transition *)
  let counter = ref (-1) in
  let fresh () =
    incr counter;
    Printf.sprintf "P%d" !counter
  in
  let pipes =
    List.init (n - 1) (fun i ->
        let v = visits.(i) and w = visits.(i + 1) in
        let id = fresh () in
        match v.Path_finder.v_kind with
        | Abstraction.Up_phy | Abstraction.Phy_phy ->
            (* physical pipe; referenced, never created *)
            ( i,
              {
                pi_id = id;
                pi_phys = true;
                pi_top = v.Path_finder.v_mod;
                pi_bottom = w.Path_finder.v_mod;
                pi_spec = None;
              } )
        | Abstraction.Phy_up | Abstraction.Down_up ->
            (* next module sits on top *)
            let top = w.Path_finder.v_mod and bottom = v.Path_finder.v_mod in
            let spec =
              {
                Primitive.pipe_id = id;
                top;
                bottom;
                peer_top = peer_as_top (i + 1) ~towards_end:false;
                peer_bottom = peer_as_bottom i;
                tradeoffs = [];
                deps = resolve_deps topo bottom;
              }
            in
            (i, { pi_id = id; pi_phys = false; pi_top = top; pi_bottom = bottom; pi_spec = Some spec })
        | Abstraction.Down_down | Abstraction.Up_down ->
            let top = v.Path_finder.v_mod and bottom = w.Path_finder.v_mod in
            let tradeoffs =
              if bottom.Ids.name = "GRE" then goal.Path_finder.g_tradeoffs else []
            in
            let spec =
              {
                Primitive.pipe_id = id;
                top;
                bottom;
                peer_top = peer_as_top i ~towards_end:true;
                peer_bottom = peer_as_bottom (i + 1);
                tradeoffs;
                deps = resolve_deps topo bottom;
              }
            in
            (i, { pi_id = id; pi_phys = false; pi_top = top; pi_bottom = bottom; pi_spec = Some spec })
        | Abstraction.Up_up -> assert false)
  in
  let pipe_after i = List.assoc i pipes in
  (* switch rules, one per mid-path visit *)
  let rules =
    List.concat
      (List.init n (fun i ->
           if endpoint i then [] (* customer-facing ETH modules pass through *)
           else
             let v = visits.(i) in
             let entry_pipe = (pipe_after (i - 1)).pi_id in
             let exit_pipe = (pipe_after i).pi_id in
             if
               v.Path_finder.v_action = Path_finder.Inspect
               && v.Path_finder.v_chain = Path_finder.base_ip
             then
               (* a customer-edge IP module: route the customer prefixes *)
               let first_inspector =
                 match chain_first all Path_finder.base_ip with
                 | Some m -> Ids.equal m v.Path_finder.v_mod
                 | None -> false
               in
               (* the source-side edge module enters from the customer and
                  exits into the path; the far edge is the other way round *)
               let customer_pipe, path_pipe, dst_domain, gateway =
                 if first_inspector then
                   ( entry_pipe,
                     exit_pipe,
                     goal.Path_finder.g_dst_domain,
                     goal.Path_finder.g_src_site ^ "-gateway" )
                 else
                   ( exit_pipe,
                     entry_pipe,
                     goal.Path_finder.g_src_domain,
                     goal.Path_finder.g_dst_site ^ "-gateway" )
               in
               [
                 Primitive.Create_switch
                   {
                     owner = v.Path_finder.v_mod;
                     rule =
                       Primitive.Directed
                         {
                           from_pipe = customer_pipe;
                           to_pipe = path_pipe;
                           sel = Primitive.Dst_domain dst_domain;
                         };
                   };
                 Primitive.Create_switch
                   {
                     owner = v.Path_finder.v_mod;
                     rule =
                       Primitive.Directed
                         {
                           from_pipe = path_pipe;
                           to_pipe = customer_pipe;
                           sel = Primitive.To_gateway gateway;
                         };
                   };
               ]
             else
               [
                 Primitive.Create_switch
                   {
                     owner = v.Path_finder.v_mod;
                     rule = Primitive.Bidi (entry_pipe, exit_pipe);
                   };
               ]))
  in
  let creates =
    List.filter_map (fun (_, p) -> Option.map (fun s -> Primitive.Create_pipe s) p.pi_spec) pipes
  in
  let prims = creates @ rules in
  let per_device =
    let devs =
      List.sort_uniq compare (List.map (fun v -> v.Path_finder.v_mod.Ids.dev) path.Path_finder.visits)
    in
    List.map (fun d -> (d, List.filter (fun p -> Primitive.target p = d) prims)) devs
  in
  let reporter =
    List.fold_left
      (fun acc (v : Path_finder.visit) ->
        if v.Path_finder.v_mod.Ids.name = "MPLS" || v.Path_finder.v_mod.Ids.name = "VLAN" then
          Some v.Path_finder.v_mod
        else acc)
      None path.Path_finder.visits
  in
  { prims; per_device; reporter; path }

(* The inverse script: switch rules removed first (in reverse), then the
   pipes — used by the NM to tear a configured path down. *)
let deletion_script (s : script) =
  let invert = function
    | Primitive.Create_pipe p ->
        Some (Primitive.Delete_pipe { owner = p.Primitive.top; pipe_id = p.Primitive.pipe_id })
    | Primitive.Create_switch { owner; rule } -> Some (Primitive.Delete_switch { owner; rule })
    | Primitive.Create_filter { owner; drop_src; drop_dst } ->
        Some (Primitive.Delete_filter { owner; drop_src; drop_dst })
    | Primitive.Create_perf { owner; pipe_id; _ } ->
        Some (Primitive.Delete_perf { owner; pipe_id })
    | Primitive.Delete_pipe _ | Primitive.Delete_switch _ | Primitive.Delete_filter _
    | Primitive.Delete_perf _ ->
        None
  in
  let is_pipe_delete = function Primitive.Delete_pipe _ -> true | _ -> false in
  let inverted = List.rev (List.filter_map invert s.prims) in
  let switches, pipes = List.partition (fun p -> not (is_pipe_delete p)) inverted in
  let prims = switches @ pipes in
  let per_device =
    List.map (fun (d, _) -> (d, List.filter (fun p -> Primitive.target p = d) prims)) s.per_device
  in
  { prims; per_device; reporter = None; path = s.path }

(* Renders a per-device script like the bottom half of figure 7(b). *)
let pp_device_script ppf prims =
  List.iter (fun p -> Fmt.pf ppf "%a@." Primitive.pp p) prims

(* Table V counts for one device's slice of a CONMan script. *)
let table5_counts script ~device =
  match List.assoc_opt device script.per_device with
  | Some prims -> Primitive.table5_counts prims
  | None -> Primitive.table5_counts []
