(** Reproduction reporting: regenerates each table and figure of the paper
    from live runs. Shared by the benchmark harness, the examples and the
    CLI; see EXPERIMENTS.md for the paper-vs-measured discussion. *)

val table3 : Format.formatter -> unit -> unit
val table4 : Format.formatter -> Scenarios.vpn -> unit
val fig2 : Format.formatter -> Scenarios.vpn -> unit
val fig3 : Format.formatter -> unit -> unit
val fig5 : Format.formatter -> Scenarios.vpn -> unit
val fig6 : Format.formatter -> Scenarios.vpn -> unit
val fig7 : Format.formatter -> unit -> unit
val fig8 : Format.formatter -> unit -> unit
val fig9 : Format.formatter -> unit -> unit

val paths9 : Format.formatter -> Scenarios.vpn -> Path_finder.path list
(** Prints and returns the path enumeration (the "9 paths" result). *)

(** {1 Table V} *)

type table5_row = {
  t5_label : string;
  t5_today : Devconf.Metrics.counts;
  t5_conman : Devconf.Metrics.counts;
}

val table5_rows : unit -> table5_row list
val table5_paper : string -> (int * int * int * int) * (int * int * int * int)
(** The paper's published values per scenario, (T, C) as
    (generic cmds, specific cmds, generic vars, specific vars). *)

val table5 : Format.formatter -> unit -> unit

(** {1 Table VI} *)

type table6_row = { t6_n : int; t6_scenario : string; t6_sent : int; t6_received : int }

val table6_row_gre : int -> table6_row
val table6_row_mpls : int -> table6_row
val table6_row_vlan : int -> table6_row
val table6 : ?ns:int list -> Format.formatter -> unit -> unit

(** {1 Extensions and ablations} *)

val security : Format.formatter -> unit -> unit
(** The ESP + IKE dependency story (figure 1). *)

val ablations : Format.formatter -> unit -> unit
(** Domain pruning on/off, script bundling on/off, full vs hierarchical
    path search on the diamond topology. *)
