(* The potential-connectivity graph (§III-C.1, figure 5): which up-down
   pipes could exist between the modules of each device, and which physical
   pipes connect ETH modules across devices. Derived purely from the
   abstractions returned by showPotential. *)

let connectable (top : Abstraction.t) (bottom : Abstraction.t) =
  let mem name = function Some s -> List.mem name s.Abstraction.connectable | None -> false in
  mem bottom.Abstraction.name top.Abstraction.down && mem top.Abstraction.name bottom.Abstraction.up

(* Modules of the same device that [m] could have a down pipe to. *)
let below topo (m : Ids.t) =
  let am = Topology.find_module_exn topo m in
  Topology.modules_of_device topo m.Ids.dev
  |> List.filter_map (fun (other, a) ->
         if (not (Ids.equal other m)) && connectable am a then Some other else None)

(* Modules of the same device that could sit above [m]. *)
let above topo (m : Ids.t) =
  let am = Topology.find_module_exn topo m in
  Topology.modules_of_device topo m.Ids.dev
  |> List.filter_map (fun (other, a) ->
         if (not (Ids.equal other m)) && connectable a am then Some other else None)

(* Physical neighbours of an ETH module: (phys pipe id, remote ETH module).
   The remote module is the ETH module of the peer device that lists the
   peer port among its physical pipes. *)
let phys_neighbours topo (m : Ids.t) =
  let am = Topology.find_module_exn topo m in
  List.filter_map
    (fun (p : Abstraction.physical_pipe) ->
      if p.Abstraction.peer_device = "" then None
      else
        Topology.modules_of_device topo p.Abstraction.peer_device
        |> List.find_map (fun (other, a) ->
               if
                 a.Abstraction.name = "ETH"
                 && List.exists
                      (fun (q : Abstraction.physical_pipe) ->
                        q.Abstraction.peer_device = m.Ids.dev)
                      a.Abstraction.physical
               then
                 (* the remote module's phys pipe id facing us *)
                 let remote_phys =
                   List.find_map
                     (fun (q : Abstraction.physical_pipe) ->
                       if q.Abstraction.peer_device = m.Ids.dev then Some q.Abstraction.phys_id
                       else None)
                     a.Abstraction.physical
                 in
                 Some (p.Abstraction.phys_id, other, Option.value ~default:"" remote_phys)
               else None))
    am.Abstraction.physical

(* Rendering in the style of figure 5 (device A's potential sub-graph). *)
let pp_device ppf (topo, dev) =
  List.iter
    (fun (m, (a : Abstraction.t)) ->
      let belows = below topo m in
      if belows <> [] then
        Fmt.pf ppf "%a can sit above: %a@." Ids.pp m (Fmt.list ~sep:Fmt.comma Ids.pp) belows;
      List.iter
        (fun (p : Abstraction.physical_pipe) ->
          Fmt.pf ppf "%a has physical pipe %s to %s@." Ids.pp m p.Abstraction.phys_id
            (if p.Abstraction.peer_device = "" then "(edge)" else p.Abstraction.peer_device))
        a.Abstraction.physical;
      let kinds = List.map Abstraction.switch_kind_to_string a.Abstraction.switch in
      if kinds <> [] then Fmt.pf ppf "%a switching: [%s]@." Ids.pp m (String.concat "],[" kinds))
    (Topology.modules_of_device topo dev)
