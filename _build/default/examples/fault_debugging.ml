(* Debugging with CONMan (§II-D.2 and §III-C.2): the NM traces the module
   graph of a configured path, asks each module to self-test, and localises
   faults — a cut wire, a key mismatch injected behind the NM's back — by
   walking the sequence of modules and pipes between the endpoints.

   Run with: dune exec examples/fault_debugging.exe *)

open Conman
open Netsim

let report verdicts =
  List.iter
    (fun (m, ok, detail) -> Fmt.pr "  %-20s %s %s@." (Ids.to_string m) (if ok then "ok  " else "FAIL") detail)
    verdicts

let first_failure verdicts =
  List.find_opt (fun (_, ok, _) -> not ok) verdicts

let () =
  Fmt.pr "== CONMan fault debugging ==@.@.";
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let gre = List.find Scenarios.pure_gre paths in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal gre in
  Fmt.pr "configured the GRE path: %a@." Path_finder.pp gre;
  Fmt.pr "sites reachable: %b@.@." (Scenarios.vpn_reachable v);

  Fmt.pr "-- healthy network: per-module self-tests --@.";
  report (Nm.diagnose v.Scenarios.nm gre);

  (* fault 1: a wire gets cut *)
  Fmt.pr "@.-- fault: the A--B wire is cut --@.";
  let seg = Option.get (Net.find_segment v.Scenarios.tb.Testbeds.vpn_net "A--B") in
  Link.cut seg;
  Fmt.pr "sites reachable: %b@." (Scenarios.vpn_reachable v);
  let verdicts = Nm.diagnose v.Scenarios.nm gre in
  report verdicts;
  (match first_failure verdicts with
  | Some (m, _, detail) -> Fmt.pr "localised: first failing module is %a (%s)@." Ids.pp m detail
  | None -> Fmt.pr "no failure found?!@.");
  Link.restore seg;
  Fmt.pr "wire restored; sites reachable: %b@.@." (Scenarios.vpn_reachable v);

  (* fault 2: someone fiddles with the tunnel key behind the NM's back —
     the classic "tunnel end-points not agreeing on parameters" the paper
     quotes from management newsgroups *)
  Fmt.pr "-- fault: tunnel key changed out-of-band at router C --@.";
  (match (Device.find_iface_exn v.Scenarios.tb.Testbeds.rc "gre-P10-P9").Device.if_kind with
  | Device.Tun t -> t.Device.t_ikey <- Some 4242l
  | _ -> assert false);
  Fmt.pr "sites reachable: %b@." (Scenarios.vpn_reachable v);
  let verdicts = Nm.diagnose v.Scenarios.nm gre in
  report verdicts;
  (match first_failure verdicts with
  | Some (m, _, _) -> Fmt.pr "localised near %a@." Ids.pp m
  | None ->
      Fmt.pr
        "hop-by-hop tests all pass: the key mismatch drops GRE payloads silently while the@.";
      Fmt.pr "underlay still works. The NM escalates to an end-to-end probe (§II-D.2):@.";
      let ok, detail = Nm.probe_end_to_end v.Scenarios.nm gre in
      Fmt.pr "  edge-to-edge data-plane probe: %s (%s)@." (if ok then "ok" else "FAIL") detail;
      Fmt.pr "  => underlay healthy + end-to-end broken: fault localised to the tunnel itself@.");
  (* the NM repairs by re-issuing the script: modules renegotiate *)
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal gre in
  Fmt.pr "after re-issuing the CONMan script (modules renegotiate keys): reachable: %b@."
    (Scenarios.vpn_reachable v)
