(* The figure-9 scenario: layer-2 VPN by VLAN (QinQ) tunnelling across a
   chain of switches — "a good example of how, with CONMan in place, the
   same management logic can deal with new data-plane technologies".

   Shows the CatOS configuration of figure 9(a) and the CONMan alternative,
   both executed against the same simulated switches, plus the MTU pitfall
   the paper's comment warns about.

   Run with: dune exec examples/vlan_tunnel.exe *)

open Conman
open Netsim

let () =
  Report.fig9 Fmt.stdout ();

  (* The MTU pitfall: without `set vlan 22 mtu 1504`, a full-size tagged
     customer frame no longer fits once the QinQ tag is pushed. *)
  Fmt.pr "@.== the MTU pitfall ==@.";
  let tb = Testbeds.vlan () in
  let strip_mtu s =
    String.split_on_char '\n' s
    |> List.map (fun l ->
           if l = "set vlan 22 name C1 mtu 1504" then "set vlan 22 name C1" else l)
    |> String.concat "\n"
  in
  ignore (Devconf.Catos_cli.run_script tb.Testbeds.swa (strip_mtu Devconf.Paper_scripts.vlan_a));
  ignore (Devconf.Catos_cli.run_script tb.Testbeds.swb (strip_mtu Devconf.Paper_scripts.vlan_b));
  ignore (Devconf.Catos_cli.run_script tb.Testbeds.swc (strip_mtu Devconf.Paper_scripts.vlan_c));
  let big = Bytes.make 1476 'x' in
  let small = Bytes.make 64 'x' in
  let ping payload =
    Ping.reachable ~payload tb.Testbeds.vlan_net ~from:tb.Testbeds.cust1
      ~src:(Packet.Ipv4_addr.of_string "10.0.3.1")
      ~dst:(Packet.Ipv4_addr.of_string "10.0.3.2")
      ()
  in
  Fmt.pr "without the vlan mtu command: small frames pass: %b, full-size frames pass: %b@."
    (ping small) (ping big);
  let tb2 = Testbeds.vlan () in
  ignore (Devconf.Catos_cli.run_script tb2.Testbeds.swa Devconf.Paper_scripts.vlan_a);
  ignore (Devconf.Catos_cli.run_script tb2.Testbeds.swb Devconf.Paper_scripts.vlan_b);
  ignore (Devconf.Catos_cli.run_script tb2.Testbeds.swc Devconf.Paper_scripts.vlan_c);
  let ping2 payload =
    Ping.reachable ~payload tb2.Testbeds.vlan_net ~from:tb2.Testbeds.cust1
      ~src:(Packet.Ipv4_addr.of_string "10.0.3.1")
      ~dst:(Packet.Ipv4_addr.of_string "10.0.3.2")
      ()
  in
  Fmt.pr "with    the vlan mtu command: small frames pass: %b, full-size frames pass: %b@."
    (ping2 small) (ping2 big);
  Fmt.pr
    "(the CONMan VLAN module sets the MTU itself - the operator never sees the parameter)@.";

  (* A longer chain: the same management logic scales to five switches. *)
  Fmt.pr "@.== five-switch chain ==@.";
  let v = Scenarios.build_vlan_chain 5 in
  match
    Nm.achieve_l2 v.Scenarios.vcnm ~scope:v.Scenarios.vcscope
      ~from_eth:(Ids.v "ETH" "eth1" "id-Sw1") ~to_eth:(Ids.v "ETH" "eth5" "id-Sw5")
  with
  | Error e -> Fmt.epr "failed: %s@." e
  | Ok _ ->
      Fmt.pr "five switches configured; customers bridged: %b@."
        (Scenarios.vlan_chain_reachable v)
