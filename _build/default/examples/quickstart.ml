(* Quickstart: bring up the paper's figure-4 VPN testbed, let the NM
   discover it over the management channel, achieve a high-level
   connectivity goal, and verify the customer sites can reach each other.

   Run with: dune exec examples/quickstart.exe *)

open Conman

let () =
  Fmt.pr "== CONMan quickstart ==@.@.";

  (* 1. Build the network: three ISP routers (A, B, C), two customer sites,
     management agents with ETH/IP/GRE/MPLS modules on every managed
     device, and a Network Manager on the management channel. During the
     build every device announces its physical connectivity and answers
     showPotential, so the NM already holds the network map. *)
  let v = Scenarios.build_vpn () in
  Fmt.pr "Before configuration, the customer sites cannot reach each other: %b@.@."
    (Scenarios.vpn_reachable v);

  (* 2. The human manager's high-level goal (§III-C):
     "Configure connectivity between sites S1 and S2 of customer C1".
     In CONMan terms: connect the customer-facing interfaces <ETH,A,a> and
     <ETH,C,f> for traffic between C1-S1 and C1-S2. *)
  let goal = v.Scenarios.goal in
  Fmt.pr "Goal: connect %a and %a for traffic between %s and %s@.@." Ids.pp
    goal.Path_finder.g_from Ids.pp goal.Path_finder.g_to goal.Path_finder.g_src_domain
    goal.Path_finder.g_dst_domain;

  (* 3. Let the NM enumerate the options, choose one and configure it. *)
  match Nm.achieve v.Scenarios.nm goal with
  | Error e -> Fmt.epr "failed: %s@." e
  | Ok (paths, chosen, script) ->
      Fmt.pr "The NM found %d possible module-level paths:@." (List.length paths);
      List.iter (fun p -> Fmt.pr "  %a@." Path_finder.pp p) paths;
      Fmt.pr "@.It chose (fewest pipes, best forwarding): %a@.@." Path_finder.pp chosen;
      Fmt.pr "CONMan script executed at router A:@.";
      Script_gen.pp_device_script Fmt.stdout
        (List.assoc "id-A" script.Script_gen.per_device);

      (* 4. Verify over the data plane. *)
      Fmt.pr "@.S1 <-> S2 reachable after configuration: %b@." (Scenarios.vpn_reachable v);

      (* 5. Peek at what actually happened on the devices. *)
      (match Nm.show_actual v.Scenarios.nm "id-A" with
      | Some state ->
          Fmt.pr "@.showActual at router A:@.";
          List.iter
            (fun (m, kvs) ->
              List.iter (fun (k, value) -> Fmt.pr "  %a %s = %s@." Ids.pp m k value) kvs)
            state
      | None -> ())
