(* The figure-1 story: a module with an external dependency. The ESP module
   cannot operate without keying material; its abstraction declares the
   "esp-keys" dependency, which the NM resolves to the local IKE control
   module (§II-F). IKE then negotiates SPIs and keys with its remote peer
   over the data plane (UDP, as in figure 1) — so the secure overlay only
   comes up after the underlying path works, with the NM never seeing a key.

   Run with: dune exec examples/secure_vpn.exe *)

open Conman

let () =
  Fmt.pr "== CONMan secure VPN (ESP + IKE) ==@.@.";
  let v = Scenarios.build_vpn ~secure:true () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  Fmt.pr "with ESP modules on the edge routers the NM now finds %d paths;@."
    (List.length paths);
  let secure = List.filter Scenarios.secure paths in
  Fmt.pr "%d of them satisfy a confidentiality requirement:@." (List.length secure);
  List.iter (fun p -> Fmt.pr "  %a@." Path_finder.pp p) secure;
  match Path_finder.choose (Nm.topology v.Scenarios.nm) secure with
  | None -> Fmt.epr "no secure path@."
  | Some p ->
      Fmt.pr "@.chosen: %a@.@." Path_finder.pp p;
      let script = Nm.configure_path v.Scenarios.nm v.Scenarios.goal p in
      Fmt.pr "CONMan script at router A (note the resolved dependency):@.";
      Script_gen.pp_device_script Fmt.stdout (List.assoc "id-A" script.Script_gen.per_device);
      Fmt.pr "@.S1 <-> S2 reachable over IPsec: %b@." (Scenarios.vpn_reachable v);
      (* show what the core actually carries *)
      Netsim.Trace.with_trace (fun () -> ignore (Scenarios.vpn_reachable v));
      let core =
        List.filter_map
          (fun e ->
            if e.Netsim.Trace.device = "B" && e.Netsim.Trace.what = "rx"
               && e.Netsim.Trace.detail <> "eth.arp"
            then Some e.Netsim.Trace.detail
            else None)
          (Netsim.Trace.get ())
        |> List.sort_uniq compare
      in
      Fmt.pr "frames crossing the core router: %a@." Fmt.(list ~sep:comma string) core;
      (match Nm.show_actual v.Scenarios.nm "id-A" with
      | Some state ->
          Fmt.pr "@.IKE state at router A (negotiated over UDP, opaque to the NM):@.";
          List.iter
            (fun (m, kvs) ->
              if m.Ids.name = "IKE" then
                List.iter (fun (k, value) -> Fmt.pr "  %s = %s@." k value) kvs)
            state
      | None -> ());
      Fmt.pr "@.The NM issued create(pipe)/create(switch) only: it never saw an SPI or a key.@."
