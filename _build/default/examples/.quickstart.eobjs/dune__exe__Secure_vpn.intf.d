examples/secure_vpn.mli:
