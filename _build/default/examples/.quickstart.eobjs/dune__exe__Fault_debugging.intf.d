examples/fault_debugging.mli:
