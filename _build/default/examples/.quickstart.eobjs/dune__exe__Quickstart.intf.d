examples/quickstart.mli:
