examples/vlan_tunnel.mli:
