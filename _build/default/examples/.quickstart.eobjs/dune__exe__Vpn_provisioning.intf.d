examples/vpn_provisioning.mli:
