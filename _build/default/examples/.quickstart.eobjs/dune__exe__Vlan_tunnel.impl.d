examples/vlan_tunnel.ml: Bytes Conman Devconf Fmt Ids List Netsim Nm Packet Ping Report Scenarios String Testbeds
