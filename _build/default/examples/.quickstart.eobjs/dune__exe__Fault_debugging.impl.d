examples/fault_debugging.ml: Conman Device Fmt Ids Link List Net Netsim Nm Option Path_finder Scenarios Testbeds
