examples/quickstart.ml: Conman Fmt Ids List Nm Path_finder Scenarios Script_gen
