examples/dependency_tracking.mli:
