examples/secure_vpn.ml: Conman Fmt Ids List Netsim Nm Path_finder Scenarios Script_gen
