examples/vpn_provisioning.ml: Conman Fmt Nm Path_finder Report Scenarios
