examples/dependency_tracking.ml: Conman Fmt Ids Ip_module List Netsim Nm Scenarios String
