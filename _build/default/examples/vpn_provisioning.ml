(* The paper's headline scenario, end to end (§III-C): provider-provisioned
   VPN configuration. Reproduces the network map (Table IV), the potential
   graph (figure 5), the nine-path enumeration, the generated CONMan
   scripts for the GRE and MPLS paths (figures 7(b)/8(b)) next to the
   hand-written scripts of figures 7(a)/8(a), and Table V.

   Run with: dune exec examples/vpn_provisioning.exe *)

open Conman

let () =
  let ppf = Fmt.stdout in
  let v = Scenarios.build_vpn () in
  Report.table4 ppf v;
  Report.fig5 ppf v;
  let _ = Report.paths9 ppf v in
  Report.fig6 ppf v;
  Report.fig7 ppf ();
  Report.fig8 ppf ();
  Report.table5 ppf ();
  (* finish with the full automated pipeline on a fresh testbed *)
  let v = Scenarios.build_vpn () in
  match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Error e -> Fmt.epr "achieve failed: %s@." e
  | Ok (_, chosen, _) ->
      Fmt.pr "@.Automated NM picked %a; sites connected: %b@." Path_finder.pp chosen
        (Scenarios.vpn_reachable v)
