(* Dependency maintenance (§II-E): "when a low-level value changes, the
   appropriate dependent changes don't always happen" — unless the modules
   fire triggers and the NM re-resolves the dependent state.

   An operator renumbers the core interface of router C. The tunnel
   endpoint, the remote key exchange and the outer route at router A all
   depend on that address. With auto-repair off the VPN silently dies; with
   it on, the trigger makes the NM re-issue the script, the modules
   re-coordinate, and connectivity returns without any human involvement.

   Run with: dune exec examples/dependency_tracking.exe *)

open Conman

let renumber v =
  let j = List.assoc "j" v.Scenarios.ip_handles in
  j.Ip_module.change_address ~iface:"eth2" "204.9.169.1" "204.9.169.5";
  ignore (Netsim.Net.run v.Scenarios.tb.Netsim.Testbeds.vpn_net)

let setup () =
  let v = Scenarios.build_vpn () in
  let paths = Nm.find_paths v.Scenarios.nm v.Scenarios.goal in
  let gre = List.find Scenarios.pure_gre paths in
  let _ = Nm.configure_path v.Scenarios.nm v.Scenarios.goal gre in
  v

let () =
  Fmt.pr "== CONMan dependency tracking ==@.@.";

  Fmt.pr "-- without dependency maintenance --@.";
  let v = setup () in
  Fmt.pr "VPN up: %b@." (Scenarios.vpn_reachable v);
  Fmt.pr "operator renumbers router C's core interface 204.9.169.1 -> 204.9.169.5@.";
  renumber v;
  Fmt.pr "VPN still up? %b   (the dependent state was not updated)@.@."
    (Scenarios.vpn_reachable v);

  Fmt.pr "-- with dependency maintenance (triggers + NM re-resolution) --@.";
  let v = setup () in
  Nm.set_auto_repair v.Scenarios.nm true;
  Fmt.pr "VPN up: %b@." (Scenarios.vpn_reachable v);
  Fmt.pr "operator renumbers router C's core interface 204.9.169.1 -> 204.9.169.5@.";
  renumber v;
  List.iter
    (fun (m, field, value) -> Fmt.pr "trigger from %a: %s changed to %s@." Ids.pp m field value)
    (Nm.triggers v.Scenarios.nm);
  Fmt.pr "NM re-issued the affected CONMan scripts; modules re-coordinated.@.";
  Fmt.pr "VPN up: %b@." (Scenarios.vpn_reachable v);
  (* show the re-resolved low-level state *)
  match Nm.show_actual v.Scenarios.nm "id-A" with
  | Some state ->
      List.iter
        (fun (m, kvs) ->
          List.iter
            (fun (k, value) ->
              if String.length k >= 6 && String.sub k 0 6 = "switch" then
                Fmt.pr "  %a %s = %s@." Ids.pp m k value)
            kvs)
        state
  | None -> ()
