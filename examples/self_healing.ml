(* The self-healing control loop: every goal the NM achieves is journalled
   as an intent before any device is touched, and a reconciliation loop
   keeps it healthy afterwards — probing end to end, checking show_actual
   for drift, re-achieving over the next-best path when the current one
   dies, and escalating when repairs are exhausted.

   Two incidents are staged here with zero manual repair calls:
     1. a core link of the diamond testbed flaps (scheduled data-plane
        fault) and the monitor reroutes around it;
     2. the NM "crashes" and a fresh one restarts from the write-ahead
        journal, re-converging to the same configuration.

   Run with: dune exec examples/self_healing.exe *)

open Conman

let () =
  Fmt.pr "== CONMan self-healing ==@.@.";
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  let chosen_core =
    match Nm.achieve nm d.Scenarios.dgoal with
    | Ok (_, path, _) ->
        List.find_map
          (fun (v : Path_finder.visit) ->
            let dev = v.Path_finder.v_mod.Ids.dev in
            if dev = "id-B1" || dev = "id-B2" then Some dev else None)
          path.Path_finder.visits
        |> Option.get
    | Error e -> Fmt.failwith "achieve: %s" e
  in
  Fmt.pr "goal achieved through core %s; reachable: %b@." chosen_core
    (Scenarios.diamond_reachable d);
  Fmt.pr "journal so far:@.%s@." (Intent.journal_to_string (Nm.journal nm));

  (* incident 1: the chosen core's uplink starts flapping. The fault is a
     scheduled simulator event — from here on nobody calls the NM. *)
  let seg_name = if chosen_core = "id-B1" then "A--B1" else "A--B2" in
  let seg = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net seg_name in
  Netsim.Link.flap ~cycles:2 seg ~first_down_ns:1_200_000_000L ~down_ns:800_000_000L
    ~up_ns:1_200_000_000L;
  Fmt.pr "-- incident: %s flaps (down 0.8 s, up 1.2 s, twice) --@." seg_name;
  let mon = Monitor.create nm in
  Monitor.run mon ~ticks:12;
  List.iter (fun e -> Fmt.pr "%a@." Monitor.pp_event e) (Monitor.events mon);
  Fmt.pr "%a@." Monitor.pp_health mon;
  Fmt.pr "reachable after self-heal: %b; drops on %s: cut=%d@.@."
    (Scenarios.diamond_reachable d) seg_name
    (Netsim.Link.drop_count seg "cut");

  (* incident 2: the NM dies. Its desired state survives in the journal,
     so a replacement rebuilds the intents and re-converges — agents
     execute re-issued primitives idempotently, nothing is duplicated. *)
  Fmt.pr "-- incident: NM crashes; a fresh one restarts from the journal --@.";
  let stored = Intent.journal_to_string (Nm.journal nm) in
  let nm2 =
    Nm.create ~journal:(Intent.journal_of_string stored)
      ~chan:d.Scenarios.dchan ~net:d.Scenarios.dtb.Netsim.Testbeds.dia_net
      ~my_id:Scenarios.nm_station_id ()
  in
  Scenarios.diamond_adopt d nm2;
  Nm.recover nm2;
  Fmt.pr "replayed %d intent(s); reachable after restart: %b@."
    (List.length (Nm.intents nm2))
    (Scenarios.diamond_reachable d)
