(* Federated multi-NM management: the testbed is partitioned into
   administrative domains, each owned by one NM, and cross-domain
   connectivity goals are achieved by an inter-NM protocol over the same
   lossy management channel the agents use.

   The protocol keeps a trust boundary between domains. A domain
   advertisement (Wire.Fed_advert) exports only the domain's border
   modules and an abridged reachability summary — never the raw internal
   topology. A cross-domain goal is coordinated by its home NM: it asks
   the target domain's NM for a per-goal scoped expansion of just the
   segment the goal traverses (Fed_plan_req/resp — the federated
   counterpart of §III-C.3's hierarchical loose-hop expansion), plans the
   ONE global script over a merged scratch topology with the shared
   deterministic generator — so the resulting configuration is
   byte-identical to what a single NM owning everything would produce —
   and then delegates each domain its own per-device slices under a
   two-phase commit (Fed_commit / ack / err). Configuration writes always
   come from the owning NM; the coordinator never touches a foreign
   device. On any segment failure or timeout the coordinator drives a
   distributed back-out (Fed_abort / abort-ack) so no domain is left
   half-configured, then replans.

   Everything is driven by [tick] with the Monitor's bounded-horizon
   discipline, and is idempotent under retransmission: commits and aborts
   are keyed by (coordinator domain, gid) and re-sent until acknowledged,
   so the protocol rides out NM crashes and inter-domain partitions.
   Handlers run inside the network's event loop and therefore only mutate
   state and enqueue sends; anything that needs to drive the network
   (back-outs, re-sends) is deferred to the next [tick]. *)

open Conman

(* ticks between protocol retransmissions *)
let resend_every = 2

(* ticks between periodic domain advertisements *)
let advert_every = 5

(* ticks an unanswered plan request survives before a fresh attempt *)
let plan_timeout = 4

(* ticks a commit round may stay unacknowledged before the coordinator
   assumes a wedged segment and drives the distributed back-out *)
let commit_timeout = 12

(* same bounded-probe slack as the Monitor: tick work may consume events
   up to now + slack without fast-forwarding through scheduled faults *)
let probe_slack_ns = 100_000_000L

type peer = {
  p_station : string; (* configured up front: federation peering is operator knowledge *)
  mutable p_domain : string;
  mutable p_borders : Ids.t list;
  mutable p_summary : (string * int) list;
  mutable p_devices : string list;
  mutable p_seen : bool; (* an advert arrived; [p_devices] is trustworthy *)
}

(* A delegated commit this NM executes on behalf of a remote coordinator,
   keyed by (coordinator domain, gid) so retransmits are idempotent. An
   aborted entry is kept as a tombstone: a late commit retransmit must not
   resurrect configuration the coordinator already backed out. *)
type delegated = {
  d_key : string * int;
  d_from : string; (* coordinator station id *)
  mutable d_script : Script_gen.script option; (* None once aborted *)
  mutable d_acked : bool;
  mutable d_abort_requested : bool;
  mutable d_aborted : bool;
  mutable d_abort_ack_owed : bool;
  d_trace : Obs.Trace.ctx option;
      (* our span for this delegated slice, parented on the coordinator's
         commit span (carried by the Fed_commit frame) *)
}

type phase =
  | Idle (* waiting to (re)plan *)
  | Planning of { req : int }
  | Committing of {
      gid : int;
      global : Script_gen.script;
      local : Script_gen.script option; (* our own slices *)
      remote : (string * (string * Primitive.t list) list) list; (* peer domain -> slices *)
      mutable acked : string list; (* peer domains that confirmed *)
    }
  | Aborting of {
      gid : int;
      mutable to_back_out : Script_gen.script option; (* local slices not yet dismantled *)
      remote_domains : string list;
      mutable acked : string list;
    }
  | Achieved of { gid : int; global : Script_gen.script }
  | Failed of string

type goal_run = {
  gr_id : int;
  gr_goal : Path_finder.goal;
  mutable gr_phase : phase;
  mutable gr_age : int; (* ticks spent in the current phase *)
  mutable gr_replans : int; (* rounds restarted after a plan error or back-out *)
  mutable gr_backouts : int; (* distributed back-outs driven *)
  mutable gr_trace : Obs.Trace.ctx option; (* root span of the goal's trace *)
  mutable gr_phase_ctx : Obs.Trace.ctx option; (* span of the current phase *)
}

type stats = {
  mutable commits_in : int; (* Fed_commit received, retransmits included *)
  mutable aborts_in : int;
  mutable relays : int; (* cross-domain conveys forwarded or delivered *)
  mutable plan_errs : int;
}

type t = {
  nm : Nm.t;
  domain : string;
  devices : string list;
  mutable peers : peer list;
  mutable goals : goal_run list;
  mutable next_gid : int;
  mutable next_goal : int;
  mutable delegated : delegated list;
  mutable plan_reqs : int;
  stats : stats;
  mutable registry : Obs.Registry.t option; (* phase-latency histograms *)
}

let send t ~dst msg = Nm.send_msg t.nm ~dst msg

(* --- tracing: one root span per goal run, one child span per phase ------------- *)

let obs t = Nm.obs t.nm

(* The goal's root span, opened lazily (a replan rejoins the same root). *)
let goal_ctx t g =
  match obs t with
  | None -> None
  | Some o -> (
      match g.gr_trace with
      | Some _ as c -> c
      | None ->
          let ctx = Obs.Trace.start o "fed-goal" in
          g.gr_trace <- Some ctx;
          Some ctx)

let open_phase t g name =
  match (obs t, goal_ctx t g) with
  | Some o, Some root ->
      let ctx = Obs.Trace.start ~parent:root o name in
      g.gr_phase_ctx <- Some ctx
  | _ -> ()

let close_phase t g ~status =
  match (obs t, g.gr_phase_ctx) with
  | Some o, Some ctx ->
      Obs.Trace.finish o ctx ~status;
      g.gr_phase_ctx <- None
  | _ -> ()

let close_goal t g ~status =
  close_phase t g ~status;
  match (obs t, g.gr_trace) with
  | Some o, Some ctx -> Obs.Trace.finish o ctx ~status
  | _ -> ()

let observe_phase t key v =
  match t.registry with Some r -> Obs.Registry.observe r key v | None -> ()

(* Wraps an outgoing inter-NM frame in the given context (if tracing). *)
let traced ctx msg = match ctx with Some c -> Wire.Traced { ctx = c; msg } | None -> msg

(* Runs [f] with the NM's ambient span set to [ctx], so any bundles it
   ships become children of that span. *)
let with_nm_ctx t ctx f =
  let saved = Nm.trace_ctx t.nm in
  Nm.set_trace_ctx t.nm ctx;
  Fun.protect ~finally:(fun () -> Nm.set_trace_ctx t.nm saved) f
let owns t dev = List.mem dev t.devices
let owner_peer t dev = List.find_opt (fun p -> p.p_seen && List.mem dev p.p_devices) t.peers
let peer_by_station t st = List.find_opt (fun p -> p.p_station = st) t.peers

(* --- domain advertisement ------------------------------------------------------ *)

(* Border modules: every module of a device with a physical link leaving
   the domain. The summary is deliberately abridged — per address domain,
   how many modules serve it — enough for a peer to judge reachability,
   nothing of the internal graph. *)
let my_advert t =
  let topo = Nm.topology t.nm in
  let borders =
    List.concat_map
      (fun dev ->
        match Topology.device topo dev with
        | Some di
          when List.exists (fun (_, peer, _) -> not (owns t peer)) di.Topology.di_links ->
            List.map fst di.Topology.di_modules
        | _ -> [])
      t.devices
  in
  let summary =
    List.fold_left
      (fun acc ((_ : Ids.t), d) ->
        if List.mem_assoc d acc then
          List.map (fun (k, n) -> if k = d then (k, n + 1) else (k, n)) acc
        else acc @ [ (d, 1) ])
      [] topo.Topology.module_domains
  in
  Wire.Fed_advert
    { domain = t.domain; nm = Nm.my_id t.nm; borders; summary; devices = t.devices }

let advert = my_advert

let announce t =
  let adv = my_advert t in
  List.iter (fun p -> send t ~dst:p.p_station adv) t.peers

(* --- participant: delegated planning ------------------------------------------- *)

(* BFS restricted to our own devices: the goal's segment through this
   domain, from the border device the coordinator enters at. *)
let segment_walk t ~entry_dev ~target_dev =
  let topo = Nm.topology t.nm in
  let links dev =
    match Topology.device topo dev with
    | Some di ->
        List.filter_map
          (fun (_, peer, _) -> if owns t peer then Some peer else None)
          di.Topology.di_links
    | None -> []
  in
  let rec bfs frontier seen =
    match frontier with
    | [] -> None
    | (dev, path) :: rest ->
        if dev = target_dev then Some (List.rev (dev :: path))
        else
          let nexts =
            List.filter (fun p -> not (List.mem p seen)) (links dev)
            |> List.map (fun p -> (p, dev :: path))
          in
          bfs (rest @ nexts) (List.map fst nexts @ seen)
  in
  if owns t entry_dev then bfs [ (entry_dev, []) ] [ entry_dev ] else None

let answer_plan t ~src ~req ~entry_dev ~(target : Ids.t) =
  (* our side of the plan expansion, parented on the coordinator's plan
     span (the request frame carried its context) *)
  let span =
    match (obs t, Nm.rx_ctx t.nm) with
    | Some o, Some parent -> Some (o, Obs.Trace.start ~parent o "plan-expand")
    | _ -> None
  in
  let ctx = Option.map snd span in
  let finish status =
    match span with Some (o, c) -> Obs.Trace.finish o c ~status | None -> ()
  in
  let topo = Nm.topology t.nm in
  if not (owns t target.Ids.dev) then begin
    finish "failed: target outside domain";
    send t ~dst:src
      (traced ctx (Wire.Fed_plan_err { req; error = "target outside domain " ^ t.domain }))
  end
  else
    match segment_walk t ~entry_dev ~target_dev:target.Ids.dev with
    | None ->
        finish "failed: no segment";
        send t ~dst:src
          (traced ctx (Wire.Fed_plan_err { req; error = "no segment from border " ^ entry_dev }))
    | Some walk ->
        let devices =
          List.filter_map
            (fun dev ->
              match Topology.device topo dev with
              | Some di -> Some (dev, di.Topology.di_links, di.Topology.di_modules)
              | None -> None)
            walk
        in
        let module_domains =
          List.filter (fun ((m : Ids.t), _) -> List.mem m.Ids.dev walk) topo.Topology.module_domains
        in
        finish "ok";
        send t ~dst:src
          (traced ctx
             (Wire.Fed_plan_resp
                { req; devices; module_domains; prefixes = topo.Topology.domain_prefixes }))

(* --- participant: delegated execution ------------------------------------------ *)

let find_delegated t key = List.find_opt (fun d -> d.d_key = key) t.delegated

let on_commit t ~src ~key ~slices ~reporter =
  t.stats.commits_in <- t.stats.commits_in + 1;
  match find_delegated t key with
  | Some d ->
      if d.d_aborted || d.d_abort_requested then () (* tombstone: never resurrect *)
      else if d.d_acked then
        send t ~dst:src (traced d.d_trace (Wire.Fed_commit_ack { gid = snd key }))
      else () (* still executing; the tick acks once every slice is confirmed *)
  | None ->
      if List.exists (fun (dev, _) -> not (owns t dev)) slices then begin
        (* protocol-level enforcement of the write boundary: we refuse to
           configure devices outside our own domain *)
        send t ~dst:src
          (Wire.Fed_commit_err { gid = snd key; error = "slice names a foreign device" });
        t.delegated <-
          {
            d_key = key;
            d_from = src;
            d_script = None;
            d_acked = false;
            d_abort_requested = false;
            d_aborted = true;
            d_abort_ack_owed = false;
            d_trace = None;
          }
          :: t.delegated
      end
      else begin
        let script =
          {
            Script_gen.prims = List.concat_map snd slices;
            per_device = slices;
            reporter;
            path = { Path_finder.visits = [] };
          }
        in
        let d_trace =
          match (obs t, Nm.rx_ctx t.nm) with
          | Some o, Some parent ->
              Some (Obs.Trace.start ~parent o ("delegated:" ^ t.domain))
          | _ -> None
        in
        with_nm_ctx t d_trace (fun () -> Nm.run_script t.nm script);
        t.delegated <-
          {
            d_key = key;
            d_from = src;
            d_script = Some script;
            d_acked = false;
            d_abort_requested = false;
            d_aborted = false;
            d_abort_ack_owed = false;
            d_trace;
          }
          :: t.delegated
      end

let on_abort t ~src ~key =
  t.stats.aborts_in <- t.stats.aborts_in + 1;
  match find_delegated t key with
  | Some d ->
      d.d_abort_requested <- true;
      d.d_abort_ack_owed <- true
  | None ->
      (* abort for a commit that never arrived: tombstone it so a late
         commit retransmit cannot apply what the coordinator backed out *)
      t.delegated <-
        {
          d_key = key;
          d_from = src;
          d_script = None;
          d_acked = false;
          d_abort_requested = true;
          d_aborted = true;
          d_abort_ack_owed = true;
          d_trace = None;
        }
        :: t.delegated

(* --- coordinator --------------------------------------------------------------- *)

let find_goal_planning t req =
  List.find_opt
    (fun g -> match g.gr_phase with Planning { req = r } -> r = req | _ -> false)
    t.goals

let find_goal_committing t gid =
  List.find_opt
    (fun g -> match g.gr_phase with Committing { gid = g'; _ } -> g' = gid | _ -> false)
    t.goals

let find_goal_aborting t gid =
  List.find_opt
    (fun g -> match g.gr_phase with Aborting { gid = g'; _ } -> g' = gid | _ -> false)
    t.goals

let reset (_ : t) g =
  g.gr_phase <- Idle;
  g.gr_age <- 0;
  g.gr_replans <- g.gr_replans + 1

let start_abort t g =
  match g.gr_phase with
  | Committing { gid; local; remote; _ } ->
      observe_phase t "fed.commit_ticks" g.gr_age;
      close_phase t g ~status:"failed: backing out";
      open_phase t g "abort";
      g.gr_backouts <- g.gr_backouts + 1;
      g.gr_age <- 0;
      g.gr_phase <-
        Aborting { gid; to_back_out = local; remote_domains = List.map fst remote; acked = [] }
  | _ -> ignore t

(* The plan response arrived: merge the expansion into a scratch topology,
   plan exactly as a single NM would (same finder, same chooser, same
   generator — this is what makes the federated configuration
   byte-identical to the single-NM one), then split the global script's
   per-device slices by owning domain and open the commit round. *)
let on_plan_resp t g ~devices ~module_domains ~prefixes:_ =
  let topo = Nm.topology t.nm in
  let scratch = Topology.create () in
  List.iter
    (fun (di : Topology.device_info) ->
      if owns t di.Topology.di_id then begin
        Topology.record_hello scratch ~src:di.Topology.di_id di.Topology.di_links;
        Topology.record_potential scratch ~src:di.Topology.di_id di.Topology.di_modules
      end)
    topo.Topology.devices;
  List.iter
    (fun (dev, links, mods) ->
      Topology.record_hello scratch ~src:dev links;
      Topology.record_potential scratch ~src:dev mods)
    devices;
  let own_md =
    List.filter (fun ((m : Ids.t), _) -> owns t m.Ids.dev) topo.Topology.module_domains
  in
  Topology.set_domains scratch ~module_domains:(own_md @ module_domains)
    ~domain_prefixes:topo.Topology.domain_prefixes;
  let scope = t.devices @ List.map (fun (d, _, _) -> d) devices in
  let goal = { g.gr_goal with Path_finder.g_scope = scope } in
  let paths = Path_finder.find scratch goal in
  match Path_finder.choose scratch paths with
  | None ->
      t.stats.plan_errs <- t.stats.plan_errs + 1;
      close_phase t g ~status:"failed: no path";
      reset t g
  | Some path -> (
      let global = Script_gen.generate scratch goal path in
      let own_slices, foreign =
        List.partition (fun (d, _) -> owns t d) global.Script_gen.per_device
      in
      let unowned =
        List.filter (fun (dev, _) -> owner_peer t dev = None) foreign
      in
      match unowned with
      | (dev, _) :: _ ->
          close_goal t g ~status:"failed: unowned device";
          g.gr_phase <- Failed ("device in no advertised domain: " ^ dev)
      | [] ->
          observe_phase t "fed.plan_ticks" g.gr_age;
          close_phase t g ~status:"ok";
          open_phase t g "commit";
          let remote =
            List.fold_left
              (fun acc (dev, prims) ->
                match owner_peer t dev with
                | None -> acc
                | Some p ->
                    let cur = Option.value ~default:[] (List.assoc_opt p.p_domain acc) in
                    (p.p_domain, cur @ [ (dev, prims) ]) :: List.remove_assoc p.p_domain acc)
              [] foreign
          in
          t.next_gid <- t.next_gid + 1;
          let gid = t.next_gid in
          let local =
            match own_slices with
            | [] -> None
            | _ ->
                Some
                  {
                    Script_gen.prims =
                      List.filter (fun p -> owns t (Primitive.target p)) global.Script_gen.prims;
                    per_device = own_slices;
                    reporter = global.Script_gen.reporter;
                    path = global.Script_gen.path;
                  }
          in
          List.iter
            (fun (dom, slices) ->
              match List.find_opt (fun p -> p.p_domain = dom) t.peers with
              | Some p ->
                  send t ~dst:p.p_station
                    (traced g.gr_phase_ctx
                       (Wire.Fed_commit
                          { domain = t.domain; gid; slices; reporter = global.Script_gen.reporter }))
              | None -> ())
            remote;
          with_nm_ctx t g.gr_phase_ctx (fun () ->
              Option.iter (Nm.run_script t.nm) local);
          g.gr_age <- 0;
          g.gr_phase <- Committing { gid; global; local; remote; acked = [] })

(* --- cross-domain conveyMessage relay ------------------------------------------ *)

let relay_out t ~src ~dst payload =
  match owner_peer t dst.Ids.dev with
  | Some p ->
      t.stats.relays <- t.stats.relays + 1;
      send t ~dst:p.p_station (Wire.Fed_relay { src; dst; payload })
  | None -> () (* owner unknown (advert not yet seen): the modules' own protocol retries *)

let on_relay t ~src:_ ~(msrc : Ids.t) ~(dst : Ids.t) ~payload =
  if owns t dst.Ids.dev then begin
    t.stats.relays <- t.stats.relays + 1;
    send t ~dst:dst.Ids.dev (Wire.Convey { src = msrc; dst; payload })
  end
  else relay_out t ~src:msrc ~dst payload (* not ours: forward towards the owner *)

(* --- inbound dispatch ----------------------------------------------------------- *)

let handle t ~src msg =
  match msg with
  | Wire.Fed_advert { domain; nm; borders; summary; devices } -> (
      match peer_by_station t nm with
      | Some p ->
          p.p_domain <- domain;
          p.p_borders <- borders;
          p.p_summary <- summary;
          p.p_devices <- devices;
          p.p_seen <- true
      | None ->
          (* adverts can introduce peers we were not configured with *)
          t.peers <-
            t.peers
            @ [
                {
                  p_station = nm;
                  p_domain = domain;
                  p_borders = borders;
                  p_summary = summary;
                  p_devices = devices;
                  p_seen = true;
                };
              ])
  | Wire.Fed_plan_req { req; domain = _; entry_dev; target } ->
      answer_plan t ~src ~req ~entry_dev ~target
  | Wire.Fed_plan_resp { req; devices; module_domains; prefixes } -> (
      match find_goal_planning t req with
      | Some g -> on_plan_resp t g ~devices ~module_domains ~prefixes
      | None -> () (* stale response for an attempt we already restarted *))
  | Wire.Fed_plan_err { req; error = _ } -> (
      t.stats.plan_errs <- t.stats.plan_errs + 1;
      match find_goal_planning t req with
      | Some g ->
          close_phase t g ~status:"failed: plan error";
          reset t g
      | None -> ())
  | Wire.Fed_commit { domain; gid; slices; reporter } ->
      on_commit t ~src ~key:(domain, gid) ~slices ~reporter
  | Wire.Fed_commit_ack { gid } -> (
      match find_goal_committing t gid with
      | Some g -> (
          match (g.gr_phase, peer_by_station t src) with
          | Committing c, Some p ->
              if not (List.mem p.p_domain c.acked) then c.acked <- p.p_domain :: c.acked
          | _ -> ())
      | None -> ())
  | Wire.Fed_commit_err { gid; error = _ } -> (
      match find_goal_committing t gid with Some g -> start_abort t g | None -> ())
  | Wire.Fed_abort { domain; gid } -> on_abort t ~src ~key:(domain, gid)
  | Wire.Fed_abort_ack { gid } -> (
      match find_goal_aborting t gid with
      | Some g -> (
          match (g.gr_phase, peer_by_station t src) with
          | Aborting a, Some p ->
              if not (List.mem p.p_domain a.acked) then a.acked <- p.p_domain :: a.acked
          | _ -> ())
      | None -> ())
  | Wire.Fed_relay { src = msrc; dst; payload } -> on_relay t ~src ~msrc ~dst ~payload
  | _ -> ()

(* --- goal intake ---------------------------------------------------------------- *)

let submit t goal =
  t.next_goal <- t.next_goal + 1;
  let g =
    {
      gr_id = t.next_goal;
      gr_goal = goal;
      gr_phase = Idle;
      gr_age = 0;
      gr_replans = 0;
      gr_backouts = 0;
      gr_trace = None;
      gr_phase_ctx = None;
    }
  in
  t.goals <- t.goals @ [ g ];
  g.gr_id

let find_goal t id = List.find_opt (fun g -> g.gr_id = id) t.goals

(* --- the per-tick drive --------------------------------------------------------- *)

(* Opens (or restarts) the planning round for a goal. Local goals are
   achieved directly; cross-domain ones need the owner's advert and a
   border link before the plan request can go out. *)
let step_idle t g =
  let target_dev = g.gr_goal.Path_finder.g_to.Ids.dev in
  if owns t target_dev then
    let ctx = goal_ctx t g in
    match with_nm_ctx t ctx (fun () -> Nm.achieve t.nm g.gr_goal) with
    | Ok (_, _, script) ->
        t.next_gid <- t.next_gid + 1;
        g.gr_phase <- Achieved { gid = t.next_gid; global = script };
        close_goal t g ~status:"ok"
    | Error _ -> () (* retry on a later tick *)
  else
    match owner_peer t target_dev with
    | None -> () (* no advert yet; periodic announces will provoke one *)
    | Some p -> (
        let topo = Nm.topology t.nm in
        let entry =
          List.find_map
            (fun dev ->
              match Topology.device topo dev with
              | Some di ->
                  List.find_map
                    (fun (_, peer, _) -> if List.mem peer p.p_devices then Some peer else None)
                    di.Topology.di_links
              | None -> None)
            t.devices
        in
        match entry with
        | None -> () (* no border link into the owner's domain *)
        | Some entry_dev ->
            t.plan_reqs <- t.plan_reqs + 1;
            let req = t.plan_reqs in
            open_phase t g "plan";
            send t ~dst:p.p_station
              (traced g.gr_phase_ctx
                 (Wire.Fed_plan_req
                    { req; domain = t.domain; entry_dev; target = g.gr_goal.Path_finder.g_to }));
            g.gr_age <- 0;
            g.gr_phase <- Planning { req })

let step_goal t g =
  match g.gr_phase with
  | Idle -> step_idle t g
  | Planning _ ->
      if g.gr_age >= plan_timeout then begin
        close_phase t g ~status:"failed: timeout";
        step_idle t g (* fresh request *)
      end
  | Committing c ->
      if g.gr_age >= commit_timeout then start_abort t g
      else begin
        (* re-ship the commit to peers that have not confirmed *)
        if g.gr_age > 0 && g.gr_age mod resend_every = 0 then
          List.iter
            (fun (dom, slices) ->
              if not (List.mem dom c.acked) then
                match List.find_opt (fun p -> p.p_domain = dom) t.peers with
                | Some p ->
                    send t ~dst:p.p_station
                      (traced g.gr_phase_ctx
                         (Wire.Fed_commit
                            {
                              domain = t.domain;
                              gid = c.gid;
                              slices;
                              reporter = c.global.Script_gen.reporter;
                            }))
                | None -> ())
            c.remote;
        let local_done =
          match c.local with None -> true | Some s -> not (Nm.script_pending t.nm s)
        in
        if local_done && List.for_all (fun (dom, _) -> List.mem dom c.acked) c.remote then begin
          observe_phase t "fed.commit_ticks" g.gr_age;
          g.gr_phase <- Achieved { gid = c.gid; global = c.global };
          close_goal t g ~status:"ok"
        end
      end
  | Aborting a ->
      (match a.to_back_out with
      | Some s ->
          with_nm_ctx t g.gr_phase_ctx (fun () -> Nm.abort_script t.nm s);
          a.to_back_out <- None
      | None -> ());
      if g.gr_age mod resend_every = 0 then
        List.iter
          (fun dom ->
            if not (List.mem dom a.acked) then
              match List.find_opt (fun p -> p.p_domain = dom) t.peers with
              | Some p ->
                  send t ~dst:p.p_station
                    (traced g.gr_phase_ctx (Wire.Fed_abort { domain = t.domain; gid = a.gid }))
              | None -> ())
          a.remote_domains;
      if List.for_all (fun dom -> List.mem dom a.acked) a.remote_domains then begin
        observe_phase t "fed.abort_ticks" g.gr_age;
        close_phase t g ~status:"ok";
        (* the root span stays open: the goal replans under the same trace *)
        reset t g
      end
  | Achieved _ | Failed _ -> ()

let step_delegated t d =
  if d.d_abort_requested && not d.d_aborted then begin
    (match d.d_script with
    | Some s -> with_nm_ctx t d.d_trace (fun () -> Nm.abort_script t.nm s)
    | None -> ());
    d.d_script <- None;
    d.d_aborted <- true;
    match (obs t, d.d_trace) with
    | Some o, Some ctx -> Obs.Trace.finish o ctx ~status:"aborted"
    | _ -> ()
  end;
  if d.d_abort_ack_owed then begin
    d.d_abort_ack_owed <- false;
    send t ~dst:d.d_from (traced d.d_trace (Wire.Fed_abort_ack { gid = snd d.d_key }))
  end;
  if (not d.d_aborted) && not d.d_acked then
    match d.d_script with
    | Some s when not (Nm.script_pending t.nm s) ->
        d.d_acked <- true;
        (match (obs t, d.d_trace) with
        | Some o, Some ctx -> Obs.Trace.finish o ctx ~status:"ok"
        | _ -> ());
        send t ~dst:d.d_from (traced d.d_trace (Wire.Fed_commit_ack { gid = snd d.d_key }))
    | _ -> ()

let tick t ~tick =
  let now = Netsim.Event_queue.now (Netsim.Net.eq (Nm.net t.nm)) in
  Nm.set_horizon t.nm (Some (Int64.add now probe_slack_ns));
  Fun.protect
    ~finally:(fun () -> Nm.set_horizon t.nm None)
    (fun () ->
      if tick mod advert_every = 0 then announce t;
      (* re-deliver state-changing requests the transport gave up on
         (crashed stations, inter-domain partitions) *)
      Nm.flush_inflight t.nm;
      List.iter (fun d -> step_delegated t d) t.delegated;
      List.iter
        (fun g ->
          step_goal t g;
          g.gr_age <- g.gr_age + 1)
        t.goals)

(* --- observation ----------------------------------------------------------------- *)

type status = Pending | Achieved_ok | Failed_with of string

let status t id =
  match find_goal t id with
  | None -> Failed_with "unknown goal"
  | Some g -> (
      match g.gr_phase with
      | Achieved _ -> Achieved_ok
      | Failed e -> Failed_with e
      | Idle | Planning _ | Committing _ | Aborting _ -> Pending)

let achieved t id = status t id = Achieved_ok

let global_script t id =
  match find_goal t id with
  | Some { gr_phase = Achieved { global; _ }; _ } -> Some global
  | Some { gr_phase = Committing { global; _ }; _ } -> Some global
  | _ -> None

let replans t = List.fold_left (fun acc g -> acc + g.gr_replans) 0 t.goals
let backouts t = List.fold_left (fun acc g -> acc + g.gr_backouts) 0 t.goals
let relays t = t.stats.relays
let commits_received t = t.stats.commits_in
let aborts_received t = t.stats.aborts_in
let plan_errors t = t.stats.plan_errs
let delegated_aborted t = List.length (List.filter (fun d -> d.d_aborted) t.delegated)
let nm t = t.nm
let domain t = t.domain
let devices t = t.devices
let set_registry t r = t.registry <- Some r

let goal_trace t id =
  match find_goal t id with Some g -> g.gr_trace | None -> None

let obs_counters t =
  [
    ("commits_in", t.stats.commits_in);
    ("aborts_in", t.stats.aborts_in);
    ("relays", t.stats.relays);
    ("plan_errs", t.stats.plan_errs);
    ("replans", replans t);
    ("backouts", backouts t);
    ("delegated_aborted", delegated_aborted t);
  ]
let peers_known t = List.filter_map (fun p -> if p.p_seen then Some (p.p_domain, p.p_devices) else None) t.peers

(* --- construction ---------------------------------------------------------------- *)

let create ~nm ~domain ~devices ~peers () =
  let t =
    {
      nm;
      domain;
      devices;
      peers =
        List.map
          (fun st ->
            { p_station = st; p_domain = ""; p_borders = []; p_summary = []; p_devices = []; p_seen = false })
          peers;
      goals = [];
      next_gid = 0;
      next_goal = 0;
      delegated = [];
      plan_reqs = 0;
      stats = { commits_in = 0; aborts_in = 0; relays = 0; plan_errs = 0 };
      registry = None;
    }
  in
  Nm.set_owned_devices nm devices;
  Nm.set_fed_hook nm (fun ~src msg -> handle t ~src msg);
  Nm.set_convey_relay nm (fun ~src ~dst payload -> relay_out t ~src ~dst payload);
  t
