(** Ready-made federated deployments: the n-router chain of
    {!Conman.Scenarios.build_chain}, partitioned into a west and an east
    administrative domain, each owned by its own NM on a shared
    out-of-band management channel. *)

open Conman

val west_station : string
(** Station id the west domain's NM subscribes under ("id-NM-W"). *)

val east_station : string

type two_domain = {
  ftb : Netsim.Testbeds.chain;
  fchan : Mgmt.Channel.t;
  ffaults : Mgmt.Faults.t;  (** fault-injection handle for the shared channel *)
  ftransport : Mgmt.Reliable.t;
  fadmission : Mgmt.Admission.t;
  fwest : Fed.t;
  feast : Fed.t;
  fgoal : Path_finder.goal;  (** the same cross-domain goal build_chain poses to one NM *)
  fscope : string list;  (** all router ids, west then east *)
  fwest_devices : string list;
  feast_devices : string list;
  fagents : (string * Agent.t) list;  (** device id -> agent *)
}

val build_two_domain :
  ?tradeoffs:string list ->
  ?fault_seed:int ->
  ?reliability:Mgmt.Reliable.config ->
  ?admission:Mgmt.Admission.config ->
  ?split:int ->
  int ->
  two_domain
(** [build_two_domain n] builds the n-router chain with routers
    [0..split-1] owned by the west NM and the rest by the east NM
    ([split] defaults to [n/2]). Each agent is homed to its domain's
    station; each NM discovers, harvests and holds module-domain
    knowledge for its own devices only. Domain adverts have already been
    exchanged on return. *)

val two_domain_reachable : two_domain -> bool
(** Bidirectional reachability between the chain's customer edges. *)

val instrument : two_domain -> Observe.t
(** Wires full observability over the deployment: a span collector per NM
    station (agents report into their domain's collector), the shared
    channel stack's retry/shed events routed back to goal spans, every
    layer's counters registered ([west_nm.*], [east_nm.*], [west_reliable.*],
    [fed_west.*], [netsim.*], [rings.*], ...) and both Fed nodes feeding
    the [fed.plan_ticks]/[fed.commit_ticks]/[fed.abort_ticks] histograms. *)

val converge :
  ?obs:Observe.t -> ?interval_ns:int64 -> ?max_ticks:int -> two_domain -> int -> bool
(** [converge t gid] drives both federation nodes (one {!Fed.tick} each,
    then a bounded network interval) until goal [gid] is achieved or
    [max_ticks] is exhausted — the fault-free drive. [?obs] keeps the
    observability clock in step with the drive's ticks. *)
