(* The federated counterpart of Scenarios.build_chain: the same n-router
   chain testbed, partitioned into a west and an east administrative
   domain, each owned by its own NM on the shared out-of-band management
   channel. Every agent is homed to its domain's NM station, each NM
   discovers and harvests only its own devices, and module-domain
   knowledge is entered per domain — the only cross-domain knowledge is
   the customer prefix map both operators hold. The cross-domain goal is
   the exact goal build_chain poses to a single NM, which is what makes
   the configuration-parity check meaningful. *)

open Conman

let west_station = "id-NM-W"
let east_station = "id-NM-E"

type two_domain = {
  ftb : Netsim.Testbeds.chain;
  fchan : Mgmt.Channel.t;
  ffaults : Mgmt.Faults.t;
  ftransport : Mgmt.Reliable.t;
  fadmission : Mgmt.Admission.t;
  fwest : Fed.t;
  feast : Fed.t;
  fgoal : Path_finder.goal;
  fscope : string list;
  fwest_devices : string list;
  feast_devices : string list;
  fagents : (string * Agent.t) list;
}

let build_two_domain ?(tradeoffs = [ "in-order-delivery"; "low-error-rate" ]) ?fault_seed
    ?reliability ?admission ?split n =
  let tb = Netsim.Testbeds.chain ~addressed:true n in
  let net = tb.Netsim.Testbeds.chain_net in
  let routers = Array.to_list tb.Netsim.Testbeds.routers in
  let split = match split with Some s -> s | None -> n / 2 in
  if split < 1 || split > n - 1 then invalid_arg "build_two_domain: split out of range";
  let ids = List.map (fun d -> d.Netsim.Device.dev_id) routers in
  let west_devices = List.filteri (fun i _ -> i < split) ids in
  let east_devices = List.filteri (fun i _ -> i >= split) ids in
  let chan, faults, transport, admission, _ =
    Scenarios.make_channel ?fault_seed ?reliability ?admission `Oob net ~devices:routers
      ~attach_to:(List.hd routers)
  in
  let w_md = ref [] and e_md = ref [] in
  (* same module layout as build_chain, so the single-NM run over the same
     testbed produces the same plan space *)
  let setup_device ~station ~md dev specs =
    let agent = Agent.create ~chan ~nm_device:station dev in
    let env = Agent.env agent in
    List.iter
      (fun spec ->
        match spec with
        | `Eth (mid, port) ->
            Agent.register agent
              (Eth_module.make ~env ~mref:(Scenarios.mref "ETH" mid dev) ~ports:[ port ]
                 ~switching:false ~neighbours:(Scenarios.eth_neighbours net dev) ())
        | `Ip (mid, ifaces, domain) ->
            md := (Scenarios.mref "IP" mid dev, domain) :: !md;
            let impl, _ = Ip_module.make ~env ~mref:(Scenarios.mref "IP" mid dev) ~ifaces ~domain () in
            Agent.register agent impl
        | `Gre mid -> Agent.register agent (Gre_module.make ~env ~mref:(Scenarios.mref "GRE" mid dev) ())
        | `Mpls mid -> Agent.register agent (Mpls_module.make ~env ~mref:(Scenarios.mref "MPLS" mid dev) ()))
      specs;
    agent
  in
  let agents =
    List.mapi
      (fun idx dev ->
        let station, md = if idx < split then (west_station, w_md) else (east_station, e_md) in
        let specs =
          if idx = 0 then
            [
              `Eth ("a", 0);
              `Eth ("b", 1);
              `Ip ("g", [ "eth1" ], "C1");
              `Ip ("h", [ "eth2" ], "ISP");
              `Gre "l";
              `Mpls "o";
            ]
          else if idx = n - 1 then
            [
              `Eth ("e", 0); (* eth1, towards the core *)
              `Eth ("f", 1); (* eth2, customer-facing *)
              `Ip ("j", [ "eth1" ], "ISP");
              `Ip ("k", [ "eth2" ], "C1");
              `Gre "n";
              `Mpls "q";
            ]
          else
            [
              `Eth (Printf.sprintf "c%d" (idx + 1), 0);
              `Eth (Printf.sprintf "d%d" (idx + 1), 1);
              `Ip (Printf.sprintf "i%d" (idx + 1), [ "eth1"; "eth2" ], "ISP");
              `Mpls (Printf.sprintf "p%d" (idx + 1));
            ]
        in
        (dev.Netsim.Device.dev_id, setup_device ~station ~md dev specs))
      routers
  in
  let nm_w = Nm.create ~transport ~chan ~net ~my_id:west_station () in
  let nm_e = Nm.create ~transport ~chan ~net ~my_id:east_station () in
  List.iter (fun (_, a) -> Agent.announce a net) agents;
  (* shared network: one run delivers the Hellos to both stations *)
  Nm.run nm_w;
  Nm.harvest_potentials nm_w west_devices;
  Nm.harvest_potentials nm_e east_devices;
  let prefixes = [ ("C1-S1", "10.0.1.0/24"); ("C1-S2", "10.0.2.0/24") ] in
  Topology.set_domains (Nm.topology nm_w) ~module_domains:!w_md ~domain_prefixes:prefixes;
  Topology.set_domains (Nm.topology nm_e) ~module_domains:!e_md ~domain_prefixes:prefixes;
  let west = Fed.create ~nm:nm_w ~domain:"west" ~devices:west_devices ~peers:[ east_station ] () in
  let east = Fed.create ~nm:nm_e ~domain:"east" ~devices:east_devices ~peers:[ west_station ] () in
  Fed.announce west;
  Fed.announce east;
  Nm.run nm_w;
  let goal =
    {
      Path_finder.g_from = Ids.v "ETH" "a" "id-R1";
      g_to = Ids.v "ETH" "f" (Printf.sprintf "id-R%d" n);
      g_customer = "C1";
      g_src_domain = "C1-S1";
      g_dst_domain = "C1-S2";
      g_src_site = "S1";
      g_dst_site = "S2";
      g_tradeoffs = tradeoffs;
      g_scope = ids;
    }
  in
  {
    ftb = tb;
    fchan = chan;
    ffaults = faults;
    ftransport = transport;
    fadmission = admission;
    fwest = west;
    feast = east;
    fgoal = goal;
    fscope = ids;
    fwest_devices = west_devices;
    feast_devices = east_devices;
    fagents = agents;
  }

let two_domain_reachable t = Netsim.Testbeds.chain_reachable t.ftb

(* Full observability over the deployment: one span collector per NM
   station (west agents report into west's, east into east's), the shared
   channel stack's retry/shed events routed back to goal spans, every
   layer's counters in one registry, and both Fed nodes feeding the
   per-phase latency histograms. *)
let instrument t =
  let obs = Observe.create () in
  let w_agents = List.filter (fun (id, _) -> List.mem id t.fwest_devices) t.fagents in
  let e_agents = List.filter (fun (id, _) -> List.mem id t.feast_devices) t.fagents in
  ignore
    (Observe.attach_nm obs ~prefix:"west" ~agents:w_agents ~transport:t.ftransport
       ~admission:t.fadmission ~faults:t.ffaults ~station:west_station (Fed.nm t.fwest));
  (* the channel stack is shared, so its observers/counters attach once *)
  ignore (Observe.attach_nm obs ~prefix:"east" ~agents:e_agents ~station:east_station (Fed.nm t.feast));
  let reg = Observe.registry obs in
  Fed.set_registry t.fwest reg;
  Fed.set_registry t.feast reg;
  Obs.Registry.register reg "fed_west" (fun () -> Fed.obs_counters t.fwest);
  Obs.Registry.register reg "fed_east" (fun () -> Fed.obs_counters t.feast);
  Observe.attach_net obs (Nm.net (Fed.nm t.fwest));
  Observe.attach_rings obs;
  obs

(* Drives both federation nodes a bounded interval per tick until the goal
   is achieved — the fault-free drive; the chaos engine has its own with
   fault injection interleaved. *)
let converge ?obs ?(interval_ns = 500_000_000L) ?(max_ticks = 40) t gid =
  let net = Nm.net (Fed.nm t.fwest) in
  let eq = Netsim.Net.eq net in
  let rec go tick =
    (match obs with Some o -> Observe.set_tick o tick | None -> ());
    if Fed.achieved t.fwest gid || Fed.achieved t.feast gid then true
    else if tick >= max_ticks then false
    else begin
      Fed.tick t.fwest ~tick;
      Fed.tick t.feast ~tick;
      ignore (Netsim.Net.run_until net ~deadline:(Int64.add (Netsim.Event_queue.now eq) interval_ns));
      go (tick + 1)
    end
  in
  go 0
