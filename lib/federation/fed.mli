(** Federated multi-NM management (the §V "multiple NMs" direction).

    The testbed is partitioned into administrative domains, each owned by
    one NM. Cross-domain connectivity goals are achieved by an inter-NM
    protocol over the ordinary lossy management channel:

    - domains exchange advertisements carrying only border modules and an
      abridged per-address-domain reachability summary — never the raw
      internal topology;
    - a cross-domain goal is coordinated by its home NM, which obtains a
      per-goal scoped expansion of the remote segment, plans one global
      script with the shared deterministic generator (so the resulting
      configuration is byte-identical to a single NM owning everything),
      and delegates each domain its own per-device slices under a
      two-phase commit;
    - every configuration write comes from the owning NM — the
      coordinator never touches a foreign device ({!Conman.Nm.foreign_writes}
      stays 0);
    - on a failed or timed-out segment the coordinator drives a
      distributed back-out so no domain is left half-configured, then
      replans;
    - conveyMessage traffic between modules in different domains is
      relayed NM-to-NM ([Fed_relay]) without interpretation.

    All inter-NM traffic rides at admission priority 1, with scripts.
    The node is driven by {!tick} (bounded-horizon, like the Monitor) and
    is idempotent under retransmission, so it rides out NM crashes and
    inter-domain partitions. *)

open Conman

type t

val create :
  nm:Nm.t -> domain:string -> devices:string list -> peers:string list -> unit -> t
(** Wraps an NM as a federation node owning [devices] (its administrative
    domain). [peers] lists the station ids of the other domains' NMs;
    further peers may be learnt from their adverts. Installs the NM's
    federation hook, convey relay and owned-device boundary. *)

val announce : t -> unit
(** Sends this domain's advertisement to every known peer. Also done
    periodically by {!tick}. *)

val advert : t -> Wire.t
(** The advertisement this node currently exports — always a
    [Wire.Fed_advert] carrying border modules, the abridged summary and
    the owned device ids; never links or internal module state. *)

val submit : t -> Path_finder.goal -> int
(** Registers a (possibly cross-domain) goal with this NM as its
    coordinator; returns a goal id for {!status}. Progress is made by
    subsequent {!tick}s. *)

val tick : t -> tick:int -> unit
(** One protocol step: periodic advert, in-flight re-delivery, delegated
    commit/abort duty, and the coordinator state machine for every
    submitted goal (plan → commit → achieve, or back-out → replan). Runs
    the network only up to a small bounded horizon, like the Monitor, so
    scheduled faults are not fast-forwarded through. *)

(** {1 Observation} *)

type status = Pending | Achieved_ok | Failed_with of string

val status : t -> int -> status
val achieved : t -> int -> bool

val global_script : t -> int -> Script_gen.script option
(** The coordinator's full cross-domain script (for parity checks against
    a single-NM plan). *)

val replans : t -> int
(** Planning rounds restarted after a plan error or back-out. *)

val backouts : t -> int
(** Distributed back-outs this coordinator drove. *)

val relays : t -> int
(** Cross-domain conveyMessages forwarded or delivered by this node. *)

val commits_received : t -> int
val aborts_received : t -> int
val plan_errors : t -> int

val delegated_aborted : t -> int
(** Delegated commits this node backed out (including tombstones for
    commits that never arrived). *)

val nm : t -> Nm.t
val domain : t -> string
val devices : t -> string list

val peers_known : t -> (string * string list) list
(** Advertised peer domains and their device sets. *)

(** {1 Tracing and metrics}

    When the underlying NM carries a span collector ({!Nm.set_obs}), every
    goal run gets a root ["fed-goal"] span with one child span per protocol
    phase (["plan"], ["commit"], ["abort"]); inter-NM frames carry the
    current phase's context ({!Wire.Traced}) so the participant's
    ["plan-expand"] and ["delegated:<domain>"] spans — and every
    configuration bundle either side ships — parent into the same tree. *)

val set_registry : t -> Obs.Registry.t -> unit
(** Feeds per-phase tick latencies into [fed.plan_ticks],
    [fed.commit_ticks] and [fed.abort_ticks] histograms. *)

val goal_trace : t -> int -> Obs.Trace.ctx option
(** The root trace context of a submitted goal, once its first phase has
    begun (usable with [Obs.Trace.goal_spans] / [render]). *)

val obs_counters : t -> (string * int) list
(** Protocol stats in registry-source form for [Obs.Registry.register]. *)
