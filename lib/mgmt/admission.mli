(** Overload protection for the management plane: priority classification,
    per-peer token-bucket admission, bounded queues and lowest-priority-
    first shedding.

    Interposes on a management channel the same way {!Faults} and
    {!Reliable} do, sitting {e above} {!Reliable} so that only fresh
    application payloads are classified — acks and retransmissions of
    already-admitted frames pass underneath.

    Policy: P0 (liveness) and P1 (mutations) are unsheddable and
    unthrottled. P2 (interrogation) and P3 (telemetry) draw from a
    per-sending-peer token bucket; over-budget frames wait in bounded
    per-class FIFOs drained P2-before-P3 as tokens refill, the shared
    backlog sheds the strictly lowest-priority frame (oldest first) at the
    cap, and queued P3 frames expire after a deadline — a stale perf
    scrape is worthless by the next monitor tick. All timing uses the
    event queue's virtual clock, so runs are deterministic. *)

type priority = P0 | P1 | P2 | P3
(** P0 heartbeats/takeovers, P1 scripts/back-outs/replication,
    P2 probes/showState, P3 telemetry showPerf. *)

val priority_index : priority -> int
val priority_of_int : int -> priority
(** Clamps: [<= 0] is {!P0}, [>= 3] is {!P3}. *)

val pp_priority : priority Fmt.t

type config = {
  bucket_capacity : int;  (** per-peer burst budget, frames *)
  refill_per_s : int;  (** per-peer sustained budget, frames per virtual second *)
  queue_capacity : int;  (** shared bound on the queued P2+P3 backlog *)
  p3_deadline_ns : int64;  (** queued P3 frames older than this expire *)
  drain_period_ns : int64;  (** backstop drainer period while frames wait *)
}

val default_config : config
(** 512-frame burst, 1024 frames/s sustained, 128-frame backlog, 400 ms P3
    deadline, 1 ms drainer — generous enough that only storms trip it. *)

type class_counters = {
  mutable admitted : int;  (** frames handed to the layer below *)
  mutable deferred : int;  (** frames that had to wait for tokens *)
  mutable shed : int;  (** frames dropped at the queue cap *)
  mutable expired : int;  (** P3 frames dropped on deadline *)
  mutable queue_high_water : int;
}

type t

val wrap :
  ?config:config ->
  eq:Netsim.Event_queue.t ->
  classify:(bytes -> priority) ->
  Channel.t ->
  Channel.t * t
(** [wrap ~eq ~classify chan] returns the admission-controlled channel
    plus the control handle. [classify] maps an outgoing payload to its
    class; it must never raise (callers pass a total function that
    defaults undecodable payloads to {!P2}). Subscription passes through
    untouched. The returned channel shares [chan]'s frame stats. *)

val counters : t -> class_counters array
(** Indexed by {!priority_index}; length 4. *)

val reset_counters : t -> unit

val lost_total : t -> int
(** Frames lost to queue-cap shedding {e or} deadline expiry across P2+P3
    — the load-feedback signal telemetry pollers watch to back off their
    scrape period. The two fates stay separately counted ([shed] vs
    [expired] in {!class_counters}, [pN_shed] vs [pN_expired] in
    {!obs_counters}); this is their explicit union, not another "shed". *)

val set_observer : t -> (bytes -> string -> unit) -> unit
(** Taps per-frame fate for tracing: the observer receives the payload and
    one of ["deferred"], ["shed"] or ["expired"]. Observer exceptions are
    swallowed; the layer stays payload-agnostic. *)

val obs_counters : t -> (string * int) list
(** Every class counter in registry-source form under unambiguous keys
    ([p2_admitted], [p3_shed], [p3_expired], ...) plus [lost_total], for
    [Obs.Registry.register]. *)

val queue_depth : t -> int
(** Frames currently waiting for tokens. *)

val summary : t -> string
(** One-line rendering of the per-class counters. *)
