(** The management channel: device-to-NM communication that must work
    before, and independently of, any data-plane configuration (§III-A).

    Two implementations, as in the paper: {!Oob} models the authors'
    separate management NICs (direct delivery, fixed latency); {!Raw} is
    the 4D-style straw man — raw-Ethernet flooding with per-source
    sequence-number suppression, needing zero configuration.

    Both are best-effort: frames can be lost (see {!Faults}) and nothing is
    acknowledged at this layer. {!Reliable} adds at-least-once delivery
    with duplicate suppression on top of any channel. *)

type handler = src:string -> bytes -> unit

type stats = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_dropped : int;
      (** frames discarded at the channel itself, e.g. a {!Raw} send from a
          device that is not attached (crashed / removed mid-flight) *)
  mutable seen_high_water : int;
      (** largest per-source suppression window ever held by a {!Raw}
          agent — bounded by the [window] passed to {!Raw.create} *)
}

type t
(** A channel endpoint: subscribe per device id, send to a device id or
    {!Frame.broadcast}. *)

val send : t -> src:string -> dst:string -> bytes -> unit
val subscribe : t -> device_id:string -> handler -> unit
val stats : t -> stats

val make :
  send:(src:string -> dst:string -> bytes -> unit) ->
  subscribe:(string -> handler -> unit) ->
  stats:stats ->
  t
(** Builds a channel from raw callbacks — the hook used by wrapping layers
    ({!Faults}, {!Reliable}) to interpose on an existing channel. *)

module Oob : sig
  val create : ?latency_ns:int64 -> Netsim.Event_queue.t -> t
end

module Raw : sig
  val default_window : int

  val create : ?window:int -> unit -> t * (Netsim.Device.t -> unit)
  (** [create ()] returns the channel and an [attach] function that turns a
      device into a flooding management agent (it claims the device's
      management-ethertype hook). Every participating device — including
      the NM's station — must be attached before use.

      Broadcast semantics: a broadcast ([dst = Frame.broadcast]) is flooded
      to every other attached device but is {e never} self-delivered to the
      sending device. A unicast to the sender's own id is delivered locally
      without touching the wire.

      [window] bounds the per-source flood-suppression state: each agent
      remembers at most [window] recent sequence numbers per source
      (default {!default_window}); anything older than [hi - window] is
      treated as already seen. Sending from a device that is not attached
      drops the frame and increments [frames_dropped] rather than raising. *)
end
