(** At-least-once delivery with duplicate suppression over any management
    channel.

    Unicasts are sequence-numbered, acknowledged by the receiving endpoint
    and retransmitted with exponential backoff until acked or until
    [max_retries] is exhausted, at which point give-up listeners are
    notified (the NM uses this to mark a device unreachable). Retransmitted
    or {!Faults}-duplicated frames are suppressed at the receiver and
    re-acked, so the layer above sees each payload at most once per send.
    Broadcasts are passed through unreliably — there is no single acker. *)

type config = {
  timeout_ns : int64;  (** first retransmission timeout (virtual time) *)
  backoff : float;  (** timeout multiplier applied per retry *)
  max_retries : int;  (** retransmissions before giving up *)
}

val default_config : config
(** 1 ms virtual-time timeout, backoff ×2, 12 retries. *)

type counters = {
  mutable data_sent : int;  (** distinct payloads sent (first copies) *)
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable acks_received : int;
  mutable duplicates : int;  (** data frames suppressed at a receiver *)
  mutable gave_up : int;  (** sends abandoned after [max_retries] *)
  mutable broadcasts : int;  (** unreliable pass-through broadcasts *)
}

type t

val create : ?config:config -> eq:Netsim.Event_queue.t -> Channel.t -> Channel.t * t
(** [create ~eq chan] wraps [chan] (typically the output of {!Faults.wrap})
    and returns the reliable channel plus the control handle. The returned
    channel shares [chan]'s frame stats.

    Acks travel back over the same channel and are consumed by the
    sender's subscription, so an endpoint must be subscribed (even with a
    no-op handler) for its outgoing unicasts to ever be confirmed — true
    of the NM and every agent, which subscribe at creation. *)

val on_give_up : t -> (src:string -> dst:string -> unit) -> unit
(** Registers a listener invoked whenever a unicast from [src] to [dst] is
    abandoned after exhausting its retries. *)

val counters : t -> counters

val in_flight : t -> int
(** Number of unacked unicasts currently being retried. *)
