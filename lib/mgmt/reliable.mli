(** At-least-once delivery with duplicate suppression over any management
    channel.

    Unicasts are sequence-numbered, acknowledged by the receiving endpoint
    and retransmitted with exponential backoff until acked or until
    [max_retries] is exhausted, at which point give-up listeners are
    notified (the NM uses this to mark a device unreachable). Retransmitted
    or {!Faults}-duplicated frames are suppressed at the receiver and
    re-acked, so the layer above sees each payload at most once per send.

    Delivery is in-order per (sender, receiver): a frame arriving ahead of
    an undelivered predecessor is held until the gap fills, so e.g. a
    deletion and a later create to the same device cannot swap under
    channel jitter. A hole that makes no progress for [gap_timeout_ns]
    (a frame whose sender gave up) is skipped so delivery never deadlocks;
    a skipped frame arriving later is still delivered, out of order.

    Broadcasts are passed through unreliably — there is no single acker. *)

type config = {
  timeout_ns : int64;  (** first retransmission timeout (virtual time) *)
  backoff : float;  (** timeout multiplier applied per retry *)
  max_retries : int;  (** retransmissions before giving up *)
  gap_timeout_ns : int64;
      (** how long a sequence hole may stall in-order delivery before the
          receiver skips past it *)
  max_pending_per_dst : int;
      (** in-flight unicasts tolerated per destination before the oldest
          telemetry payload owed to it is shed (see {!create}'s
          [classify]); bounds the retry wheel under a partitioned peer *)
}

val default_config : config
(** 1 ms virtual-time timeout, backoff ×2, 12 retries, 50 ms gap timeout,
    64 in-flight frames per destination. *)

type counters = {
  mutable data_sent : int;  (** distinct payloads sent (first copies) *)
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable acks_received : int;
  mutable duplicates : int;  (** data frames suppressed at a receiver *)
  mutable gave_up : int;  (** sends abandoned after [max_retries] *)
  mutable broadcasts : int;  (** unreliable pass-through broadcasts *)
  mutable held_back : int;  (** frames buffered awaiting a predecessor *)
  mutable gap_skips : int;  (** sequence holes skipped after the gap timeout *)
  mutable pending_high_water : int;
      (** worst per-destination in-flight depth ever observed *)
  mutable pending_shed : int;
      (** telemetry payloads abandoned at [max_pending_per_dst] *)
}

type t

val create :
  ?config:config -> ?classify:(bytes -> int) -> eq:Netsim.Event_queue.t -> Channel.t -> Channel.t * t
(** [create ~eq chan] wraps [chan] (typically the output of {!Faults.wrap})
    and returns the reliable channel plus the control handle. The returned
    channel shares [chan]'s frame stats.

    [classify] maps a payload to its admission class (see
    {!Admission.priority_index}); when present, sends past
    [max_pending_per_dst] in-flight frames to one destination abandon the
    oldest class-3 (telemetry) payload owed to it — its retries stop, and
    the receiver's gap-skip machinery rides over the hole if the first
    copy was lost. Without [classify] the cap only records
    [pending_high_water]; no payload is ever shed.

    Acks travel back over the same channel and are consumed by the
    sender's subscription, so an endpoint must be subscribed (even with a
    no-op handler) for its outgoing unicasts to ever be confirmed — true
    of the NM and every agent, which subscribe at creation. *)

val cancel : t -> src:string -> dst:string -> bytes -> int
(** [cancel t ~src ~dst payload] recalls every unacked unicast from [src]
    to [dst] carrying exactly [payload]: the pending frame is voided in
    place (its payload emptied, its sequence number kept), so retries
    continue but deliver nothing and later frames are not stalled behind a
    sequence hole. Returns how many sends were recalled. A copy already in
    flight may still be delivered. *)

val on_give_up : t -> (src:string -> dst:string -> unit) -> unit
(** Registers a listener invoked whenever a unicast from [src] to [dst] is
    abandoned after exhausting its retries. *)

val set_observer : t -> (bytes -> string -> unit) -> unit
(** Taps per-frame fate for tracing: the observer receives the payload and
    one of ["retried"], ["gave-up"], ["dedup"] (suppressed duplicate at a
    receiver) or ["transport-shed"] (abandoned at the per-destination
    cap). The layer stays payload-agnostic — the caller decodes the
    payload to attribute the event (see [Obs] wiring in lib/core).
    Observer exceptions are swallowed. *)

val counters : t -> counters

val in_flight : t -> int
(** Number of unacked unicasts currently being retried. *)

val obs_counters : t -> (string * int) list
(** The counters in registry-source form (e.g. [("retransmits", n)]) for
    [Obs.Registry.register]. *)
