(** Deterministic, seeded fault injection for the management channel.

    [wrap] interposes on any {!Channel.t} and applies a configurable fault
    model: per-link frame loss, duplication, delivery jitter, device
    crash/restart and management-plane partition. All randomness is drawn
    from a private splitmix64 stream, so a fixed [seed] (together with the
    deterministic {!Netsim.Event_queue}) reproduces the exact same faults
    on every run. *)

(** The splitmix64 stream the fault model draws from, exposed so other
    seeded components (e.g. the chaos schedule generator in [lib/chaos])
    derive all their randomness from the same PRNG family. *)
module Prng : sig
  type t

  val create : int -> t
  val next_u64 : t -> int64

  val uniform : t -> float
  (** Uniform float in [\[0, 1)]. *)

  val below : t -> int -> int
  (** [below t n] is a uniform int in [\[0, n)]. Raises [Invalid_argument]
      if [n <= 0]. *)
end

type counters = {
  mutable dropped : int;  (** frames lost to the random loss model *)
  mutable duplicated : int;  (** frames shipped twice *)
  mutable delayed : int;  (** sends deferred by reordering jitter *)
  mutable crash_drops : int;  (** frames blocked by a crashed endpoint *)
  mutable partition_drops : int;  (** frames blocked by a partition *)
}

type t

val wrap : ?seed:int -> eq:Netsim.Event_queue.t -> Channel.t -> Channel.t * t
(** [wrap ?seed ~eq chan] returns a channel with the fault model applied
    on top of [chan] (sharing its stats record) and the handle used to
    steer the faults. Default [seed] is [0]. *)

val set_drop : t -> ?src:string -> ?dst:string -> float -> unit
(** [set_drop t p] sets the default drop probability for every frame;
    [set_drop t ~src ~dst p] overrides it for the directed link
    [src → dst]. Raises [Invalid_argument] if only one endpoint is
    given. *)

val set_duplicate : t -> float -> unit
(** Probability that a frame which survived the loss model is shipped a
    second time. *)

val set_jitter : t -> int64 -> unit
(** [set_jitter t ns] delays each delivery by a uniform random amount in
    [\[0, ns)] of virtual time, which reorders concurrent frames. [0L]
    (the default) disables jitter. *)

val crash : t -> string -> unit
(** [crash t id] makes device [id] deaf and mute on the management
    channel: frames to, from, or already in flight toward it are counted
    as [crash_drops]. Idempotent. *)

val restart : t -> string -> unit
(** Undoes {!crash}. The device's own volatile state is the business of
    {!Netsim.Device.crash}; this only restores channel connectivity. *)

val is_crashed : t -> string -> bool

val partition : t -> string -> unit
(** Like {!crash} but counted separately — models a management-plane
    partition (e.g. the primary NM cut off from the network) rather than
    a dead device. *)

val heal : t -> string -> unit
(** Undoes {!partition}. *)

val clear : t -> unit
(** Resets every knob (drop, duplication, jitter, crashes, partitions)
    to the fault-free default. Counters are preserved. *)

val counters : t -> counters

val obs_counters : t -> (string * int) list
(** The counters in registry-source form (e.g. [("crash_drops", n)]) for
    [Obs.Registry.register]. *)

val reset_counters : t -> unit
(** Zeroes every counter. [clear] deliberately preserves counters so a
    post-mortem can still read them; chaos episodes call this between
    runs to measure each episode independently. *)
