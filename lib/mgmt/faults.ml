(* Deterministic fault injection for the management channel.

   CONMan's premise (§III-A) is that management must keep working when the
   network it manages is broken. This layer wraps any [Channel.t] with a
   seeded fault model — per-link frame loss, duplication, delivery jitter,
   device crash/restart and management-plane partition — so the NM's
   discovery, script execution and failover paths can be exercised under
   the conditions the paper actually targets.

   All randomness comes from a private splitmix64 stream seeded at [wrap]
   time: with a fixed seed and a deterministic event queue, every run
   drops, duplicates and delays exactly the same frames. *)

open Netsim

(* The splitmix64 stream every fault injector draws from. Exposed so other
   seeded components (the chaos schedule generator) share one PRNG family
   and stay deterministic under a single root seed. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next_u64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform float in [0, 1) from the top 53 bits *)
  let uniform t =
    Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) /. 9007199254740992.0

  let below t n =
    if n <= 0 then invalid_arg "Faults.Prng.below";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int n))
end

type counters = {
  mutable dropped : int; (* lost to the random loss model *)
  mutable duplicated : int;
  mutable delayed : int; (* sends deferred by reordering jitter *)
  mutable crash_drops : int; (* blocked because an endpoint is crashed *)
  mutable partition_drops : int; (* blocked by a management partition *)
}

type t = {
  eq : Event_queue.t;
  prng : Prng.t;
  mutable default_drop : float;
  link_drop : (string * string, float) Hashtbl.t; (* directed (src, dst) *)
  mutable dup_prob : float;
  mutable jitter_ns : int64;
  crashed : (string, unit) Hashtbl.t;
  partitioned : (string, unit) Hashtbl.t;
  counters : counters;
}

let next_u64 t = Prng.next_u64 t.prng
let uniform t = Prng.uniform t.prng

(* --- knobs ------------------------------------------------------------- *)

let set_drop t ?src ?dst p =
  match (src, dst) with
  | None, None -> t.default_drop <- p
  | Some s, Some d -> Hashtbl.replace t.link_drop (s, d) p
  | _ -> invalid_arg "Faults.set_drop: give both src and dst, or neither"

let set_duplicate t p = t.dup_prob <- p
let set_jitter t ns = t.jitter_ns <- ns
let crash t id = Hashtbl.replace t.crashed id ()
let restart t id = Hashtbl.remove t.crashed id
let is_crashed t id = Hashtbl.mem t.crashed id
let partition t id = Hashtbl.replace t.partitioned id ()
let heal t id = Hashtbl.remove t.partitioned id
let counters t = t.counters

(* Registry-source form of the counters (see Obs.Registry in lib/obs). *)
let obs_counters t =
  let c = t.counters in
  [
    ("dropped", c.dropped);
    ("duplicated", c.duplicated);
    ("delayed", c.delayed);
    ("crash_drops", c.crash_drops);
    ("partition_drops", c.partition_drops);
  ]

let reset_counters t =
  let c = t.counters in
  c.dropped <- 0;
  c.duplicated <- 0;
  c.delayed <- 0;
  c.crash_drops <- 0;
  c.partition_drops <- 0

let clear t =
  t.default_drop <- 0.;
  Hashtbl.reset t.link_drop;
  t.dup_prob <- 0.;
  t.jitter_ns <- 0L;
  Hashtbl.reset t.crashed;
  Hashtbl.reset t.partitioned

let drop_prob t src dst =
  match Hashtbl.find_opt t.link_drop (src, dst) with
  | Some p -> p
  | None -> t.default_drop

(* --- the wrapper -------------------------------------------------------- *)

let wrap ?(seed = 0) ~eq inner =
  let t =
    {
      eq;
      prng = Prng.create seed;
      default_drop = 0.;
      link_drop = Hashtbl.create 8;
      dup_prob = 0.;
      jitter_ns = 0L;
      crashed = Hashtbl.create 4;
      partitioned = Hashtbl.create 4;
      counters =
        { dropped = 0; duplicated = 0; delayed = 0; crash_drops = 0; partition_drops = 0 };
    }
  in
  let send ~src ~dst payload =
    if Hashtbl.mem t.crashed src || (dst <> Frame.broadcast && Hashtbl.mem t.crashed dst)
    then t.counters.crash_drops <- t.counters.crash_drops + 1
    else if
      Hashtbl.mem t.partitioned src
      || (dst <> Frame.broadcast && Hashtbl.mem t.partitioned dst)
    then t.counters.partition_drops <- t.counters.partition_drops + 1
    else
      let p = drop_prob t src dst in
      if p > 0. && uniform t < p then t.counters.dropped <- t.counters.dropped + 1
      else begin
        let forward () = Channel.send inner ~src ~dst payload in
        let ship () =
          if t.jitter_ns > 0L then begin
            t.counters.delayed <- t.counters.delayed + 1;
            let d = Int64.rem (Int64.shift_right_logical (next_u64 t) 1) t.jitter_ns in
            Event_queue.schedule t.eq ~delay_ns:d forward
          end
          else forward ()
        in
        ship ();
        if t.dup_prob > 0. && uniform t < t.dup_prob then begin
          t.counters.duplicated <- t.counters.duplicated + 1;
          ship ()
        end
      end
  in
  (* Crash and partition are also enforced at delivery time, so frames
     already in flight when the fault strikes are lost too. *)
  let subscribe id h =
    Channel.subscribe inner ~device_id:id (fun ~src payload ->
        if Hashtbl.mem t.crashed id || Hashtbl.mem t.crashed src then
          t.counters.crash_drops <- t.counters.crash_drops + 1
        else if Hashtbl.mem t.partitioned id || Hashtbl.mem t.partitioned src then
          t.counters.partition_drops <- t.counters.partition_drops + 1
        else h ~src payload)
  in
  (Channel.make ~send ~subscribe ~stats:(Channel.stats inner), t)
