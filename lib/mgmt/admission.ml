(* Overload protection for the management plane.

   The layers below make the channel *reliable* (Reliable) and *hostile*
   (Faults); this layer makes it *survivable*: when management traffic
   exceeds what the channel should carry, the excess is shed by priority
   instead of squeezing out the frames the control plane cannot live
   without. Every outgoing frame is classified into one of four classes:

     P0  liveness: HA heartbeats and takeover announcements. Unsheddable
         and unthrottled — a starved failure detector fakes a dead primary.
     P1  mutations: script bundles, back-out deletions, their acks, and
         journal/in-flight replication. Unsheddable: shedding a back-out
         leaks datapath state, shedding replication loses intents.
     P2  interrogation: Hello, showPotential/showActual, self-tests,
         conveys. Sheddable under pressure, served before P3.
     P3  telemetry: showPerf scrapes and their responses. First to queue,
         first to shed, and stale scrapes expire — a perf counter snapshot
         nobody read for half a second answers a question nobody is still
         asking.

   P2/P3 admission is a per-peer token bucket on virtual time: a sender
   may burst [bucket_capacity] frames and sustain [refill_per_s] frames
   per second. Over-budget frames wait in bounded per-class FIFOs drained
   highest-class-first as tokens return; at the shared queue cap the
   strictly lowest-priority frame is shed (oldest first, so fresher
   telemetry survives). Everything runs on the event queue's virtual
   clock, so runs stay deterministic under the chaos engine. *)

open Netsim

type priority = P0 | P1 | P2 | P3

let priority_index = function P0 -> 0 | P1 -> 1 | P2 -> 2 | P3 -> 3

let priority_of_int n = if n <= 0 then P0 else if n = 1 then P1 else if n = 2 then P2 else P3

let pp_priority ppf p = Fmt.pf ppf "P%d" (priority_index p)

type config = {
  bucket_capacity : int;  (* per-peer burst budget, frames *)
  refill_per_s : int;  (* per-peer sustained budget, frames per virtual second *)
  queue_capacity : int;  (* shared P2+P3 backlog bound *)
  p3_deadline_ns : int64;  (* queued P3 frames older than this expire *)
  drain_period_ns : int64;  (* backstop drainer period while frames wait *)
}

(* Generous enough that fault-free deployments and ordinary chaos runs
   never notice the layer; only a storm (hundreds of frames per monitor
   tick from one peer) trips it. *)
let default_config =
  {
    bucket_capacity = 512;
    refill_per_s = 1024;
    queue_capacity = 128;
    p3_deadline_ns = 400_000_000L;
    drain_period_ns = 1_000_000L;
  }

type class_counters = {
  mutable admitted : int;  (* frames handed to the layer below *)
  mutable deferred : int;  (* frames that had to wait for tokens *)
  mutable shed : int;  (* frames dropped at the queue cap *)
  mutable expired : int;  (* P3 frames dropped on deadline *)
  mutable queue_high_water : int;
}

let fresh_class () =
  { admitted = 0; deferred = 0; shed = 0; expired = 0; queue_high_water = 0 }

type bucket = { mutable tokens : float; mutable last_ns : int64 }

type entry = { e_src : string; e_dst : string; e_bytes : bytes; e_enq_ns : int64 }

type t = {
  inner : Channel.t;
  eq : Event_queue.t;
  config : config;
  classify : bytes -> priority;
  buckets : (string, bucket) Hashtbl.t;  (* sending peer -> budget *)
  q2 : entry Queue.t;
  q3 : entry Queue.t;
  classes : class_counters array;  (* indexed by priority *)
  mutable drainer_armed : bool;
  mutable observer : (bytes -> string -> unit) option;
      (* (payload, event) tap — deferred / shed / expired — so the layer
         above can attribute the fate to the goal the frame works for *)
}

let counters t = t.classes

let observe t payload event =
  match t.observer with None -> () | Some f -> ( try f payload event with _ -> ())

let reset_counters t =
  Array.iteri (fun i _ -> t.classes.(i) <- fresh_class ()) t.classes

(* Total frames lost to shedding or expiry across the sheddable classes —
   the load signal Telemetry watches to back its scrape period off.
   Deliberately not called "shed": queue-cap sheds and deadline expiries
   are distinct fates (reported separately by [obs_counters]); this is
   their union. *)
let lost_total t =
  t.classes.(2).shed + t.classes.(2).expired + t.classes.(3).shed + t.classes.(3).expired

let queue_depth t = Queue.length t.q2 + Queue.length t.q3

let summary t =
  let c i = t.classes.(i) in
  Printf.sprintf
    "adm[P0=%d P1=%d P2=%d/%d shed=%d P3=%d/%d shed=%d expired=%d hw=%d]"
    (c 0).admitted (c 1).admitted (c 2).admitted (c 2).deferred (c 2).shed (c 3).admitted
    (c 3).deferred (c 3).shed (c 3).expired (c 3).queue_high_water

(* --- token buckets ------------------------------------------------------ *)

let bucket_of t peer =
  match Hashtbl.find_opt t.buckets peer with
  | Some b -> b
  | None ->
      let b =
        { tokens = float_of_int t.config.bucket_capacity; last_ns = Event_queue.now t.eq }
      in
      Hashtbl.add t.buckets peer b;
      b

let take_token t peer =
  let b = bucket_of t peer in
  let now = Event_queue.now t.eq in
  let dt = Int64.to_float (Int64.sub now b.last_ns) in
  if dt > 0.0 then begin
    b.tokens <-
      Float.min
        (float_of_int t.config.bucket_capacity)
        (b.tokens +. (dt *. float_of_int t.config.refill_per_s /. 1e9));
    b.last_ns <- now
  end;
  if b.tokens >= 1.0 then begin
    b.tokens <- b.tokens -. 1.0;
    true
  end
  else false

(* --- queueing and draining --------------------------------------------- *)

let expire_stale t =
  let now = Event_queue.now t.eq in
  let rec loop () =
    match Queue.peek_opt t.q3 with
    | Some e when Int64.sub now e.e_enq_ns > t.config.p3_deadline_ns ->
        ignore (Queue.pop t.q3);
        t.classes.(3).expired <- t.classes.(3).expired + 1;
        observe t e.e_bytes "expired";
        loop ()
    | _ -> ()
  in
  loop ()

let rec serve t idx q =
  match Queue.peek_opt q with
  | Some e when take_token t e.e_src ->
      ignore (Queue.pop q);
      t.classes.(idx).admitted <- t.classes.(idx).admitted + 1;
      Channel.send t.inner ~src:e.e_src ~dst:e.e_dst e.e_bytes;
      serve t idx q
  | _ -> ()

let drain t =
  expire_stale t;
  serve t 2 t.q2;
  serve t 3 t.q3

let rec ensure_drainer t =
  if (not t.drainer_armed) && queue_depth t > 0 then begin
    t.drainer_armed <- true;
    Event_queue.schedule t.eq ~delay_ns:t.config.drain_period_ns (fun () ->
        t.drainer_armed <- false;
        drain t;
        ensure_drainer t)
  end

let enqueue t p ~src ~dst payload =
  let q, idx = match p with P2 -> (t.q2, 2) | _ -> (t.q3, 3) in
  let c = t.classes.(idx) in
  if queue_depth t >= t.config.queue_capacity then begin
    (* the backlog is full: make room by shedding the strictly
       lowest-priority frame, oldest first *)
    if not (Queue.is_empty t.q3) then begin
      let v = Queue.pop t.q3 in
      t.classes.(3).shed <- t.classes.(3).shed + 1;
      observe t v.e_bytes "shed"
    end
    else if p = P2 && not (Queue.is_empty t.q2) then begin
      let v = Queue.pop t.q2 in
      t.classes.(2).shed <- t.classes.(2).shed + 1;
      observe t v.e_bytes "shed"
    end
  end;
  if queue_depth t < t.config.queue_capacity then begin
    Queue.push { e_src = src; e_dst = dst; e_bytes = payload; e_enq_ns = Event_queue.now t.eq } q;
    c.deferred <- c.deferred + 1;
    observe t payload "deferred";
    let depth = Queue.length q in
    if depth > c.queue_high_water then c.queue_high_water <- depth
  end
  else begin
    (* an incoming P3 with nothing lower-priority to displace: the
       newcomer itself is the shed victim *)
    c.shed <- c.shed + 1;
    observe t payload "shed"
  end;
  ensure_drainer t

let send t ~src ~dst payload =
  match t.classify payload with
  | (P0 | P1) as p ->
      (* liveness and mutations bypass admission entirely: nothing a
         telemetry storm does may delay a heartbeat or a back-out *)
      t.classes.(priority_index p).admitted <- t.classes.(priority_index p).admitted + 1;
      Channel.send t.inner ~src ~dst payload
  | P2 ->
      drain t;
      if Queue.is_empty t.q2 && take_token t src then begin
        t.classes.(2).admitted <- t.classes.(2).admitted + 1;
        Channel.send t.inner ~src ~dst payload
      end
      else enqueue t P2 ~src ~dst payload
  | P3 ->
      drain t;
      if queue_depth t = 0 && take_token t src then begin
        t.classes.(3).admitted <- t.classes.(3).admitted + 1;
        Channel.send t.inner ~src ~dst payload
      end
      else enqueue t P3 ~src ~dst payload

let set_observer t f = t.observer <- Some f

(* Registry-source form: every class counter under its own unambiguous
   key — [p3_shed] (queue-cap drops) never mixes with [p3_expired]
   (deadline drops); [lost_total] is their explicit union. *)
let obs_counters t =
  let per i =
    let c = t.classes.(i) in
    [
      (Printf.sprintf "p%d_admitted" i, c.admitted);
      (Printf.sprintf "p%d_deferred" i, c.deferred);
      (Printf.sprintf "p%d_shed" i, c.shed);
      (Printf.sprintf "p%d_expired" i, c.expired);
      (Printf.sprintf "p%d_queue_high_water" i, c.queue_high_water);
    ]
  in
  List.concat_map per [ 0; 1; 2; 3 ] @ [ ("lost_total", lost_total t) ]

let wrap ?(config = default_config) ~eq ~classify inner =
  let t =
    {
      inner;
      eq;
      config;
      classify;
      buckets = Hashtbl.create 16;
      q2 = Queue.create ();
      q3 = Queue.create ();
      classes = Array.init 4 (fun _ -> fresh_class ());
      drainer_armed = false;
      observer = None;
    }
  in
  let chan =
    Channel.make
      ~send:(fun ~src ~dst payload -> send t ~src ~dst payload)
      ~subscribe:(fun id h -> Channel.subscribe inner ~device_id:id h)
      ~stats:(Channel.stats inner)
  in
  (chan, t)
