(* The management channel: device-to-NM communication that must work before
   (and independently of) any data-plane configuration.

   Two implementations, as in the paper's §III-A:
   - [Oob]: a pre-configured out-of-band network (the separate management
     NICs of the authors' testbed), modelled as direct delivery with a
     fixed latency;
   - [Raw]: the straw-man in-band channel — flooding of raw Ethernet
     frames with per-source sequence-number suppression, needing no
     configuration at all (the 4D discovery/dissemination plane). *)

open Netsim

type handler = src:string -> bytes -> unit

type stats = {
  mutable frames_sent : int;
  mutable frames_delivered : int;
  mutable frames_dropped : int;
  mutable seen_high_water : int;
}

let fresh_stats () =
  { frames_sent = 0; frames_delivered = 0; frames_dropped = 0; seen_high_water = 0 }

type t = {
  send : src:string -> dst:string -> bytes -> unit;
  subscribe : string -> handler -> unit;
  stats : stats;
}

let send t ~src ~dst payload = t.send ~src ~dst payload
let subscribe t ~device_id handler = t.subscribe device_id handler
let stats t = t.stats

let make ~send ~subscribe ~stats = { send; subscribe; stats }

(* --- out-of-band ------------------------------------------------------ *)

module Oob = struct
  let create ?(latency_ns = 2_000L) eq =
    let handlers : (string, handler) Hashtbl.t = Hashtbl.create 16 in
    let stats = fresh_stats () in
    let deliver ~src ~dst payload =
      match Hashtbl.find_opt handlers dst with
      | Some h ->
          stats.frames_delivered <- stats.frames_delivered + 1;
          h ~src payload
      | None -> ()
    in
    let send ~src ~dst payload =
      stats.frames_sent <- stats.frames_sent + 1;
      Event_queue.schedule eq ~delay_ns:latency_ns (fun () ->
          if dst = Frame.broadcast then
            Hashtbl.iter
              (fun id h ->
                if id <> src then begin
                  stats.frames_delivered <- stats.frames_delivered + 1;
                  h ~src payload
                end)
              handlers
          else deliver ~src ~dst payload)
    in
    { send; subscribe = (fun id h -> Hashtbl.replace handlers id h); stats }
end

(* --- raw in-band flooding --------------------------------------------- *)

module Raw = struct
  (* Per-source flood-suppression state: a sliding window over the source's
     sequence numbers. Anything at or below [hi - window] is treated as
     already seen; in-window sequence numbers are tracked individually so
     reordered floods are still deduplicated. Bounded: at most [window]
     entries per source, old entries evicted as [hi] advances. *)
  type swin = { mutable hi : int; recent : (int, unit) Hashtbl.t }

  type agent = {
    device : Device.t;
    mutable next_seq : int;
    seen : (string, swin) Hashtbl.t;
    window : int;
    mutable handler : handler option;
  }

  let default_window = 512

  (* Returns [true] if [seq] from [src] was already seen (or is too old to
     tell); records it otherwise. *)
  let seen_before agent src seq =
    let win =
      match Hashtbl.find_opt agent.seen src with
      | Some w -> w
      | None ->
          let w = { hi = 0; recent = Hashtbl.create 16 } in
          Hashtbl.add agent.seen src w;
          w
    in
    if seq <= win.hi - agent.window then true
    else if Hashtbl.mem win.recent seq then true
    else begin
      Hashtbl.replace win.recent seq ();
      if seq > win.hi then begin
        (* evict everything that just slid out of the window *)
        for s = win.hi - agent.window + 1 to seq - agent.window do
          Hashtbl.remove win.recent s
        done;
        win.hi <- seq
      end;
      false
    end

  type net_state = {
    mutable agents : agent list;
    raw_stats : stats;
  }

  let note_seen_size st agent src =
    match Hashtbl.find_opt agent.seen src with
    | None -> ()
    | Some w ->
        let n = Hashtbl.length w.recent in
        if n > st.raw_stats.seen_high_water then st.raw_stats.seen_high_water <- n

  let flood agent ?(except = -1) frame_bytes =
    let eth_src i = (Device.port agent.device i).Device.port_mac in
    Array.iter
      (fun (p : Device.port) ->
        if p.Device.port_index <> except then
          let frame =
            Packet.Ethernet.encode
              {
                Packet.Ethernet.dst = Packet.Mac_addr.broadcast;
                src = eth_src p.Device.port_index;
                ethertype = Packet.Ethertype.Mgmt;
              }
              frame_bytes
          in
          Datapath.transmit agent.device p.Device.port_index frame)
      agent.device.Device.ports

  let create ?(window = default_window) () =
    let st = { agents = []; raw_stats = fresh_stats () } in
    let find_agent id =
      List.find_opt (fun a -> a.device.Device.dev_id = id) st.agents
    in
    let deliver agent (f : Frame.t) =
      match agent.handler with
      | Some h ->
          st.raw_stats.frames_delivered <- st.raw_stats.frames_delivered + 1;
          h ~src:f.Frame.src_device f.Frame.payload
      | None -> ()
    in
    let send ~src ~dst payload =
      match find_agent src with
      | None ->
          (* A crashed or detached device mid-flight must not abort the
             event loop: drop and count instead of raising. *)
          st.raw_stats.frames_dropped <- st.raw_stats.frames_dropped + 1
      | Some agent ->
          st.raw_stats.frames_sent <- st.raw_stats.frames_sent + 1;
          agent.next_seq <- agent.next_seq + 1;
          let f =
            { Frame.src_device = src; dst_device = dst; seq = agent.next_seq; payload }
          in
          ignore (seen_before agent src f.Frame.seq);
          note_seen_size st agent src;
          (* Local loopback when a device messages itself (e.g. the NM's own
             modules). Broadcasts are never self-delivered. *)
          if dst = src then deliver agent f
          else flood agent (Frame.encode f)
    in
    let subscribe id h =
      match find_agent id with
      | Some a -> a.handler <- Some h
      | None -> failwith ("mgmt raw channel: device not attached: " ^ id)
    in
    let chan = { send; subscribe; stats = st.raw_stats } in
    let attach device =
      let agent =
        { device; next_seq = 0; seen = Hashtbl.create 8; window; handler = None }
      in
      st.agents <- agent :: st.agents;
      device.Device.mgmt_hook <-
        Some
          (fun ~in_port ~src:_ payload ->
            match Frame.decode payload with
            | exception Frame.Bad_frame _ -> ()
            | f ->
                if not (seen_before agent f.Frame.src_device f.Frame.seq) then begin
                  note_seen_size st agent f.Frame.src_device;
                  let mine = f.Frame.dst_device = device.Device.dev_id in
                  let bcast = f.Frame.dst_device = Frame.broadcast in
                  if mine || bcast then deliver agent f;
                  (* Forward everything that is not exclusively ours: the
                     4D-style dissemination. *)
                  if not mine then flood agent ~except:in_port payload
                end)
    in
    (chan, attach)
end
