(* At-least-once delivery with duplicate suppression over any management
   channel.

   The paper's NM↔agent protocol implicitly assumes the management channel
   delivers; this layer makes that assumption explicit and earned. Every
   unicast is wrapped in a small envelope, acknowledged by the receiving
   endpoint, and retransmitted with exponential backoff until acked or
   [max_retries] is exhausted — at which point registered give-up listeners
   are told, so the NM can mark the destination unreachable instead of
   hanging. Duplicates created by retransmission (or by {!Faults}
   duplication) are suppressed at the receiver with a per-source sliding
   window and re-acked, making retried requests idempotent at this layer.

   Envelope wire format: 1-byte tag, 4-byte big-endian sequence number,
   payload. Tags: 'D' data (ack required), 'A' ack (seq echoes the data
   frame), 'U' unreliable (broadcasts — there is no single acker). *)

open Netsim

type config = {
  timeout_ns : int64;  (* first retransmission timeout *)
  backoff : float;  (* multiplier applied per retry *)
  max_retries : int;
}

let default_config = { timeout_ns = 1_000_000L; backoff = 2.0; max_retries = 12 }

type counters = {
  mutable data_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable acks_received : int;
  mutable duplicates : int;  (* data frames suppressed at the receiver *)
  mutable gave_up : int;
  mutable broadcasts : int;
}

type pending = {
  p_dst : string;
  p_bytes : bytes;  (* full envelope, ready to retransmit *)
  mutable p_retries : int;
}

(* Receiver-side duplicate suppression: per-source sliding seq window. *)
type swin = { mutable hi : int; recent : (int, unit) Hashtbl.t }

let dedup_window = 512

type t = {
  inner : Channel.t;
  eq : Event_queue.t;
  config : config;
  counters : counters;
  next_seq : (string * string, int) Hashtbl.t;  (* (src, dst) -> last seq *)
  pending : (string * string * int, pending) Hashtbl.t;  (* (src, dst, seq) *)
  seen : (string * string, swin) Hashtbl.t;  (* (receiver, sender) *)
  mutable give_up_listeners : (src:string -> dst:string -> unit) list;
}

(* --- envelope codec ---------------------------------------------------- *)

let encode tag seq payload =
  let n = Bytes.length payload in
  let b = Bytes.create (5 + n) in
  Bytes.set b 0 tag;
  Bytes.set b 1 (Char.chr ((seq lsr 24) land 0xff));
  Bytes.set b 2 (Char.chr ((seq lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((seq lsr 8) land 0xff));
  Bytes.set b 4 (Char.chr (seq land 0xff));
  Bytes.blit payload 0 b 5 n;
  b

let decode b =
  if Bytes.length b < 5 then None
  else
    let byte i = Char.code (Bytes.get b i) in
    let seq = (byte 1 lsl 24) lor (byte 2 lsl 16) lor (byte 3 lsl 8) lor byte 4 in
    let payload = Bytes.sub b 5 (Bytes.length b - 5) in
    Some (Bytes.get b 0, seq, payload)

(* --- duplicate suppression -------------------------------------------- *)

let seen_before t ~receiver ~sender seq =
  let key = (receiver, sender) in
  let win =
    match Hashtbl.find_opt t.seen key with
    | Some w -> w
    | None ->
        let w = { hi = 0; recent = Hashtbl.create 16 } in
        Hashtbl.add t.seen key w;
        w
  in
  if seq <= win.hi - dedup_window then true
  else if Hashtbl.mem win.recent seq then true
  else begin
    Hashtbl.replace win.recent seq ();
    if seq > win.hi then begin
      for s = win.hi - dedup_window + 1 to seq - dedup_window do
        Hashtbl.remove win.recent s
      done;
      win.hi <- seq
    end;
    false
  end

(* --- sender side ------------------------------------------------------- *)

let retry_delay t retries =
  Int64.of_float (Int64.to_float t.config.timeout_ns *. (t.config.backoff ** float_of_int retries))

let rec arm_timer t key delay =
  Event_queue.schedule t.eq ~delay_ns:delay (fun () ->
      match Hashtbl.find_opt t.pending key with
      | None -> () (* acked in the meantime; timers are never cancelled *)
      | Some p ->
          if p.p_retries >= t.config.max_retries then begin
            Hashtbl.remove t.pending key;
            t.counters.gave_up <- t.counters.gave_up + 1;
            let src, dst, _ = key in
            List.iter (fun f -> f ~src ~dst) t.give_up_listeners
          end
          else begin
            p.p_retries <- p.p_retries + 1;
            t.counters.retransmits <- t.counters.retransmits + 1;
            let src, _, _ = key in
            Channel.send t.inner ~src ~dst:p.p_dst p.p_bytes;
            arm_timer t key (retry_delay t p.p_retries)
          end)

let send t ~src ~dst payload =
  if dst = Frame.broadcast then begin
    (* No single acker for a broadcast: ship once, unreliably. Callers
       needing certainty (e.g. discovery) already re-broadcast. *)
    t.counters.broadcasts <- t.counters.broadcasts + 1;
    Channel.send t.inner ~src ~dst (encode 'U' 0 payload)
  end
  else begin
    let seq = 1 + (try Hashtbl.find t.next_seq (src, dst) with Not_found -> 0) in
    Hashtbl.replace t.next_seq (src, dst) seq;
    let b = encode 'D' seq payload in
    Hashtbl.replace t.pending (src, dst, seq) { p_dst = dst; p_bytes = b; p_retries = 0 };
    t.counters.data_sent <- t.counters.data_sent + 1;
    Channel.send t.inner ~src ~dst b;
    arm_timer t (src, dst, seq) t.config.timeout_ns
  end

(* --- receiver side ----------------------------------------------------- *)

let subscribe t id (h : Channel.handler) =
  Channel.subscribe t.inner ~device_id:id (fun ~src b ->
      match decode b with
      | None -> () (* not ours; garbage on the channel *)
      | Some ('U', _, payload) -> h ~src payload
      | Some ('A', seq, _) ->
          t.counters.acks_received <- t.counters.acks_received + 1;
          Hashtbl.remove t.pending (id, src, seq)
      | Some ('D', seq, payload) ->
          (* Always (re-)ack: the previous ack may have been lost. *)
          t.counters.acks_sent <- t.counters.acks_sent + 1;
          Channel.send t.inner ~src:id ~dst:src (encode 'A' seq Bytes.empty);
          if seen_before t ~receiver:id ~sender:src seq then
            t.counters.duplicates <- t.counters.duplicates + 1
          else h ~src payload
      | Some _ -> ())

(* --- construction ------------------------------------------------------ *)

let create ?(config = default_config) ~eq inner =
  let t =
    {
      inner;
      eq;
      config;
      counters =
        {
          data_sent = 0;
          retransmits = 0;
          acks_sent = 0;
          acks_received = 0;
          duplicates = 0;
          gave_up = 0;
          broadcasts = 0;
        };
      next_seq = Hashtbl.create 32;
      pending = Hashtbl.create 32;
      seen = Hashtbl.create 32;
      give_up_listeners = [];
    }
  in
  let chan =
    Channel.make
      ~send:(fun ~src ~dst payload -> send t ~src ~dst payload)
      ~subscribe:(fun id h -> subscribe t id h)
      ~stats:(Channel.stats inner)
  in
  (chan, t)

let on_give_up t f = t.give_up_listeners <- f :: t.give_up_listeners
let counters t = t.counters
let in_flight t = Hashtbl.length t.pending
