(* At-least-once delivery with duplicate suppression over any management
   channel.

   The paper's NM↔agent protocol implicitly assumes the management channel
   delivers; this layer makes that assumption explicit and earned. Every
   unicast is wrapped in a small envelope, acknowledged by the receiving
   endpoint, and retransmitted with exponential backoff until acked or
   [max_retries] is exhausted — at which point registered give-up listeners
   are told, so the NM can mark the destination unreachable instead of
   hanging. Duplicates created by retransmission (or by {!Faults}
   duplication) are suppressed at the receiver with a per-source sliding
   window and re-acked, making retried requests idempotent at this layer.

   Delivery is additionally in-order per (sender, receiver): a frame that
   arrives ahead of a predecessor (channel jitter, a retransmitted
   predecessor) is held back until the gap fills. Without this, a back-out
   deletion and its successor script's create can swap on the wire and the
   late delete clobbers the new state. Holes cannot block forever: after
   [gap_timeout_ns] of no progress the receiver skips the hole and drains
   what it holds (in seq order); a skipped frame that shows up later is
   still delivered, late, so at-least-once survives.

   Envelope wire format: 1-byte tag, 4-byte big-endian sequence number,
   payload. Tags: 'D' data (ack required), 'A' ack (seq echoes the data
   frame), 'U' unreliable (broadcasts — there is no single acker). A 'D'
   frame with an empty payload is a voided send (see [cancel]): it is
   acked and sequenced but not handed to the handler. *)

open Netsim

type config = {
  timeout_ns : int64;  (* first retransmission timeout *)
  backoff : float;  (* multiplier applied per retry *)
  max_retries : int;
  gap_timeout_ns : int64;  (* how long a seq hole may stall in-order delivery *)
  max_pending_per_dst : int;  (* in-flight unicasts tolerated per destination *)
}

let default_config =
  {
    timeout_ns = 1_000_000L;
    backoff = 2.0;
    max_retries = 12;
    gap_timeout_ns = 50_000_000L;
    max_pending_per_dst = 64;
  }

type counters = {
  mutable data_sent : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable acks_received : int;
  mutable duplicates : int;  (* data frames suppressed at the receiver *)
  mutable gave_up : int;
  mutable broadcasts : int;
  mutable held_back : int;  (* frames buffered awaiting a predecessor *)
  mutable gap_skips : int;  (* seq holes skipped after [gap_timeout_ns] *)
  mutable pending_high_water : int;  (* worst per-destination in-flight depth *)
  mutable pending_shed : int;  (* low-priority payloads abandoned at the cap *)
}

type pending = {
  p_dst : string;
  mutable p_bytes : bytes;  (* full envelope, ready to retransmit *)
  mutable p_retries : int;
}

(* Receiver-side ordering + duplicate suppression, per (receiver, sender).
   [next] is the next seq due for delivery; anything below it already went
   up (or was skipped — those seqs sit in [skipped] so a late arrival is
   still delivered rather than mistaken for a duplicate). [held] buffers
   arrivals ahead of a hole. *)
type order = {
  mutable next : int;
  held : (int, bytes) Hashtbl.t;
  skipped : (int, unit) Hashtbl.t;
  mutable flush_armed : bool;
}

type t = {
  inner : Channel.t;
  eq : Event_queue.t;
  config : config;
  counters : counters;
  next_seq : (string * string, int) Hashtbl.t;  (* (src, dst) -> last seq *)
  pending : (string * string * int, pending) Hashtbl.t;  (* (src, dst, seq) *)
  order : (string * string, order) Hashtbl.t;  (* (receiver, sender) *)
  mutable give_up_listeners : (src:string -> dst:string -> unit) list;
  classify : (bytes -> int) option;
      (* admission class of a payload (see Admission); lets the pending cap
         pick telemetry (class 3) as its shed victims *)
  mutable observer : (bytes -> string -> unit) option;
      (* (payload, event) tap on per-frame fate — retried / gave-up /
         dedup / transport-shed. The layer above decodes the payload and
         attributes the event to the goal it works for; this layer stays
         payload-agnostic. *)
}

let observe t payload event =
  match t.observer with None -> () | Some f -> ( try f payload event with _ -> ())

(* --- envelope codec ---------------------------------------------------- *)

let encode tag seq payload =
  let n = Bytes.length payload in
  let b = Bytes.create (5 + n) in
  Bytes.set b 0 tag;
  Bytes.set b 1 (Char.chr ((seq lsr 24) land 0xff));
  Bytes.set b 2 (Char.chr ((seq lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((seq lsr 8) land 0xff));
  Bytes.set b 4 (Char.chr (seq land 0xff));
  Bytes.blit payload 0 b 5 n;
  b

let decode b =
  if Bytes.length b < 5 then None
  else
    let byte i = Char.code (Bytes.get b i) in
    let seq = (byte 1 lsl 24) lor (byte 2 lsl 16) lor (byte 3 lsl 8) lor byte 4 in
    let payload = Bytes.sub b 5 (Bytes.length b - 5) in
    Some (Bytes.get b 0, seq, payload)

(* --- in-order delivery + duplicate suppression ------------------------- *)

let order_win t ~receiver ~sender =
  let key = (receiver, sender) in
  match Hashtbl.find_opt t.order key with
  | Some w -> w
  | None ->
      let w =
        { next = 1; held = Hashtbl.create 8; skipped = Hashtbl.create 4; flush_armed = false }
      in
      Hashtbl.add t.order key w;
      w

(* Voided sends (see [cancel]) travel as empty payloads: they keep the seq
   stream gapless but carry nothing for the layer above. *)
let deliver h ~src payload = if Bytes.length payload > 0 then h ~src payload

let rec drain w ~src h =
  match Hashtbl.find_opt w.held w.next with
  | Some payload ->
      Hashtbl.remove w.held w.next;
      w.next <- w.next + 1;
      deliver h ~src payload;
      drain w ~src h
  | None -> ()

(* A hole ahead of buffered frames must not stall delivery forever — the
   missing frame may have been abandoned by its sender. After
   [gap_timeout_ns] of no progress, skip to the lowest held seq (recording
   the skipped seqs so stragglers are still delivered) and drain. *)
let rec arm_flush t w ~src h =
  if not w.flush_armed then begin
    w.flush_armed <- true;
    let expected = w.next in
    Event_queue.schedule t.eq ~delay_ns:t.config.gap_timeout_ns (fun () ->
        w.flush_armed <- false;
        if Hashtbl.length w.held > 0 then begin
          if w.next = expected then begin
            let lowest = Hashtbl.fold (fun s _ acc -> min s acc) w.held max_int in
            for s = w.next to lowest - 1 do
              Hashtbl.replace w.skipped s ()
            done;
            w.next <- lowest;
            t.counters.gap_skips <- t.counters.gap_skips + 1;
            drain w ~src h
          end;
          if Hashtbl.length w.held > 0 then arm_flush t w ~src h
        end)
  end

(* --- sender side ------------------------------------------------------- *)

let retry_delay t retries =
  Int64.of_float (Int64.to_float t.config.timeout_ns *. (t.config.backoff ** float_of_int retries))

let rec arm_timer t key delay =
  Event_queue.schedule t.eq ~delay_ns:delay (fun () ->
      match Hashtbl.find_opt t.pending key with
      | None -> () (* acked in the meantime; timers are never cancelled *)
      | Some p ->
          if p.p_retries >= t.config.max_retries then begin
            Hashtbl.remove t.pending key;
            t.counters.gave_up <- t.counters.gave_up + 1;
            (match decode p.p_bytes with
            | Some (_, _, pl) when Bytes.length pl > 0 -> observe t pl "gave-up"
            | _ -> ());
            let src, dst, _ = key in
            List.iter (fun f -> f ~src ~dst) t.give_up_listeners
          end
          else begin
            p.p_retries <- p.p_retries + 1;
            t.counters.retransmits <- t.counters.retransmits + 1;
            (match decode p.p_bytes with
            | Some (_, _, pl) when Bytes.length pl > 0 -> observe t pl "retried"
            | _ -> ());
            let src, _, _ = key in
            Channel.send t.inner ~src ~dst:p.p_dst p.p_bytes;
            arm_timer t key (retry_delay t p.p_retries)
          end)

(* The pending set is otherwise unbounded under a partitioned peer: every
   send to it parks an envelope in the retry wheel for the full backoff
   schedule. At [max_pending_per_dst] in-flight frames to one destination,
   abandon the oldest telemetry payload (admission class 3) owed to it —
   the receiver's gap-skip machinery already copes with abandoned senders,
   and by the time the peer heals a stale perf scrape answers nothing.
   Frames of any other class are never shed here; if only those remain the
   set is allowed to exceed the cap (at-least-once beats the bound). *)
let enforce_pending_cap t ~src ~dst =
  let per_dst =
    Hashtbl.fold
      (fun (s, d, _) _ acc -> if s = src && d = dst then acc + 1 else acc)
      t.pending 0
  in
  if per_dst > t.counters.pending_high_water then t.counters.pending_high_water <- per_dst;
  if per_dst > t.config.max_pending_per_dst then
    match t.classify with
    | None -> ()
    | Some classify ->
        let victim =
          Hashtbl.fold
            (fun (s, d, seq) (p : pending) acc ->
              if s = src && d = dst then
                match decode p.p_bytes with
                | Some ('D', _, pl)
                  when Bytes.length pl > 0 && (try classify pl >= 3 with _ -> false) -> (
                    match acc with Some s0 when s0 <= seq -> acc | _ -> Some seq)
                | _ -> acc
              else acc)
            t.pending None
        in
        (match victim with
        | Some seq ->
            (match Hashtbl.find_opt t.pending (src, dst, seq) with
            | Some p -> (
                match decode p.p_bytes with
                | Some (_, _, pl) when Bytes.length pl > 0 -> observe t pl "transport-shed"
                | _ -> ())
            | None -> ());
            Hashtbl.remove t.pending (src, dst, seq);
            t.counters.pending_shed <- t.counters.pending_shed + 1
        | None -> ())

let send t ~src ~dst payload =
  if dst = Frame.broadcast then begin
    (* No single acker for a broadcast: ship once, unreliably. Callers
       needing certainty (e.g. discovery) already re-broadcast. *)
    t.counters.broadcasts <- t.counters.broadcasts + 1;
    Channel.send t.inner ~src ~dst (encode 'U' 0 payload)
  end
  else begin
    let seq = 1 + (try Hashtbl.find t.next_seq (src, dst) with Not_found -> 0) in
    Hashtbl.replace t.next_seq (src, dst) seq;
    let b = encode 'D' seq payload in
    Hashtbl.replace t.pending (src, dst, seq) { p_dst = dst; p_bytes = b; p_retries = 0 };
    t.counters.data_sent <- t.counters.data_sent + 1;
    enforce_pending_cap t ~src ~dst;
    Channel.send t.inner ~src ~dst b;
    arm_timer t (src, dst, seq) t.config.timeout_ns
  end

(* --- receiver side ----------------------------------------------------- *)

let subscribe t id (h : Channel.handler) =
  Channel.subscribe t.inner ~device_id:id (fun ~src b ->
      match decode b with
      | None -> () (* not ours; garbage on the channel *)
      | Some ('U', _, payload) -> h ~src payload
      | Some ('A', seq, _) ->
          t.counters.acks_received <- t.counters.acks_received + 1;
          Hashtbl.remove t.pending (id, src, seq)
      | Some ('D', seq, payload) ->
          (* Always (re-)ack: the previous ack may have been lost. *)
          t.counters.acks_sent <- t.counters.acks_sent + 1;
          Channel.send t.inner ~src:id ~dst:src (encode 'A' seq Bytes.empty);
          let w = order_win t ~receiver:id ~sender:src in
          if Hashtbl.mem w.skipped seq then begin
            (* A straggler we already skipped past: deliver it late rather
               than break at-least-once. Order was forfeited at the skip. *)
            Hashtbl.remove w.skipped seq;
            deliver h ~src payload
          end
          else if seq < w.next || Hashtbl.mem w.held seq then begin
            t.counters.duplicates <- t.counters.duplicates + 1;
            if Bytes.length payload > 0 then observe t payload "dedup"
          end
          else begin
            if seq <> w.next then t.counters.held_back <- t.counters.held_back + 1;
            Hashtbl.replace w.held seq payload;
            drain w ~src h;
            if Hashtbl.length w.held > 0 then arm_flush t w ~src h
          end
      | Some _ -> ())

(* --- construction ------------------------------------------------------ *)

let create ?(config = default_config) ?classify ~eq inner =
  let t =
    {
      inner;
      eq;
      config;
      counters =
        {
          data_sent = 0;
          retransmits = 0;
          acks_sent = 0;
          acks_received = 0;
          duplicates = 0;
          gave_up = 0;
          broadcasts = 0;
          held_back = 0;
          gap_skips = 0;
          pending_high_water = 0;
          pending_shed = 0;
        };
      next_seq = Hashtbl.create 32;
      pending = Hashtbl.create 32;
      order = Hashtbl.create 32;
      give_up_listeners = [];
      classify;
      observer = None;
    }
  in
  let chan =
    Channel.make
      ~send:(fun ~src ~dst payload -> send t ~src ~dst payload)
      ~subscribe:(fun id h -> subscribe t id h)
      ~stats:(Channel.stats inner)
  in
  (chan, t)

(* Recalls unacked unicasts: any pending frame from [src] to [dst] carrying
   exactly [payload] is voided — its envelope keeps its seq but the payload
   is emptied, so retransmissions continue until acked but deliver nothing.
   The NM uses this to cancel the creates of a script it is backing out —
   without it, a retry surviving in the timer wheel could land after the
   back-out's deletion and resurrect the state. Voiding (rather than
   dropping the pending entry) keeps the seq stream gapless, so in-order
   delivery of later frames to [dst] is not stalled behind a hole.
   Returns the number of sends recalled. *)
let cancel t ~src ~dst payload =
  let victims =
    Hashtbl.fold
      (fun (s, d, seq) (p : pending) acc ->
        if s = src && d = dst then
          match decode p.p_bytes with
          | Some ('D', _, pl) when Bytes.length pl > 0 && Bytes.equal pl payload ->
              (seq, p) :: acc
          | _ -> acc
        else acc)
      t.pending []
  in
  List.iter (fun (seq, p) -> p.p_bytes <- encode 'D' seq Bytes.empty) victims;
  List.length victims

let on_give_up t f = t.give_up_listeners <- f :: t.give_up_listeners
let set_observer t f = t.observer <- Some f
let counters t = t.counters
let in_flight t = Hashtbl.length t.pending

(* Registry-source form of the counters, named per the subsystem.name
   convention (see Obs.Registry in lib/obs). *)
let obs_counters t =
  let c = t.counters in
  [
    ("data_sent", c.data_sent);
    ("retransmits", c.retransmits);
    ("acks_sent", c.acks_sent);
    ("acks_received", c.acks_received);
    ("duplicates", c.duplicates);
    ("gave_up", c.gave_up);
    ("broadcasts", c.broadcasts);
    ("held_back", c.held_back);
    ("gap_skips", c.gap_skips);
    ("pending_high_water", c.pending_high_water);
    ("pending_shed", c.pending_shed);
  ]
