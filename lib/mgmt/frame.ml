(* Management-channel frames, carried directly in Ethernet frames with a
   dedicated ethertype (CONMan §III-A: "management frames encapsulated in
   Ethernet frames ... no pre-configuration is needed"). *)

open Packet

type t = {
  src_device : string;
  dst_device : string; (* "" = flood to every management agent *)
  seq : int; (* per-source sequence number, used for flood suppression *)
  payload : bytes;
}

exception Bad_frame of string

let broadcast = ""

let write_string w s =
  if String.length s > 0xffff then invalid_arg "Frame.write_string";
  Cursor.w16 w (String.length s);
  Cursor.wbytes w (Bytes.of_string s)

let read_string r =
  let n = Cursor.u16 r in
  Bytes.to_string (Cursor.take r n)

let encode t =
  let w = Cursor.writer () in
  write_string w t.src_device;
  write_string w t.dst_device;
  Cursor.w32 w (Int32.of_int t.seq);
  Cursor.w16 w (Bytes.length t.payload);
  Cursor.wbytes w t.payload;
  Cursor.contents w

let decode buf =
  try
    let r = Cursor.reader buf in
    let src_device = read_string r in
    let dst_device = read_string r in
    let seq = Int32.to_int (Cursor.u32 r) in
    let len = Cursor.u16 r in
    let payload = Cursor.take r len in
    { src_device; dst_device; seq; payload }
  with
  | Cursor.Truncated -> raise (Bad_frame "truncated")
  (* decode is total up to Bad_frame: fuzzed or corrupted buffers must
     never leak any other exception to the channel layer *)
  | Bad_frame _ as e -> raise e
  | _ -> raise (Bad_frame "malformed")

let equal a b =
  a.src_device = b.src_device && a.dst_device = b.dst_device && a.seq = b.seq
  && Bytes.equal a.payload b.payload

let pp ppf t =
  Fmt.pf ppf "mgmt %s -> %s #%d (%d bytes)" t.src_device
    (if t.dst_device = "" then "*" else t.dst_device)
    t.seq (Bytes.length t.payload)
