(** Chaos over the federated two-domain deployment
    ({!Federation.Fed_scenarios.build_two_domain}): seeded schedules that
    always include a [Peer_nm_crash] and an [Inter_domain_partition]
    alongside background channel faults, checked against the federation
    invariants — the cross-domain goal converges, no stitched pipe is
    left half-configured after a back-out, neither NM writes configuration
    outside its own domain, and the converged configuration is exactly
    the single-NM one. Fully deterministic: same schedule, same report. *)

type verdict = Engine.verdict = { name : string; ok : bool; detail : string }

type report = {
  verdicts : verdict list;
  converged_tick : int option;
      (** tail tick at which the goal was achieved and the edges reachable *)
  replans : int;  (** coordinator planning rounds restarted *)
  backouts : int;  (** distributed back-outs driven *)
  relays : int;  (** cross-domain conveyMessages relayed, both nodes *)
  foreign_writes : int;  (** state-changing requests across a boundary — must be 0 *)
  half_configured : int;
      (** devices neither pristine nor fully configured at the end — must be 0 *)
  commits_received : int;
  aborts_received : int;
  goal_trace : string;
      (** the cross-domain goal's rendered span tree, attached to every
          report so a violated invariant ships with its causal history *)
  orphan_spans : int;  (** spans whose parent vanished — must be 0 *)
  trace_connected : bool;
      (** one root, zero orphans across both NMs' collectors *)
  total_spans : int;  (** spans in the goal's tree *)
  phase_samples : (string * int list) list;
      (** raw per-phase latency samples ([fed.plan_ticks],
          [fed.commit_ticks], [fed.abort_ticks]) so a soak can merge
          histograms across seeds before taking percentiles *)
  metrics_json : string;  (** the run's full {!Conman.Obs.Registry} dump *)
}

val generate : ?intensity:float -> seed:int -> ticks:int -> unit -> Schedule.t
(** Derives a two-domain schedule deterministically from [seed]. Both
    federation events are forced into every schedule; [intensity] scales
    the background channel-fault count (default 0.5 events/tick). The
    background menu is channel-level only, so convergence failures are
    attributable to the inter-NM protocol. *)

val run : Schedule.t -> report
(** Runs one schedule against a fresh two-domain chain deployment with
    the cross-domain goal submitted at the west NM, then checks the four
    federation invariants. Diamond-only events in a replayed schedule are
    skipped. *)

val failures : report -> verdict list
val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
