(* The chaos engine: drives a Schedule.t over a live diamond deployment
   managed by an HA pair of NMs (primary + warm standby, see Ha) and
   checks global invariants.

   The run has two phases. During the chaos phase each monitor tick first
   fires due fault-reverts, then applies the schedule events due at that
   tick, then gives both HA nodes their heartbeat/failure-detector tick,
   then lets the acting leader's reconciliation loop take its tick (when
   no node is acting — the primary crashed and the standby has not yet
   promoted — virtual time still advances, so heartbeat gaps grow). After
   the last chaos tick every outstanding fault is force-reverted and the
   quiescence tail begins: up to [tail] clean ticks during which every
   live intent must re-converge under whoever leads.

   Invariants checked at quiescence:
     convergence          every live intent Active and the testbed carries
                          end-to-end traffic within the tail
     oscillation          bounded successful reroutes per intent (carried
                          across failovers)
     conservation         per-segment drop accounting balances, and the
                          counter-based localizer finds nothing wrong on
                          the converged path
     journal-equivalence  a fresh NM recovering from the acting leader's
                          journal on a fresh testbed reaches the same
                          structural show_actual fixpoint as a fresh NM
                          achieving the goal directly
     single-primary       no two nodes ever act as primary under the same
                          epoch (epoch fencing contains split-brain)
     no-lost-intents      every intent committed in either journal and
                          never retired is live at the final leader
     stale-state          tearing every surviving script down returns every
                          scoped device to its pre-achieve structural state
                          (no leaked pipes/labels/xconnects)

   Everything is deterministic: same schedule, same verdicts, same fault
   counters, same monitor event trace — which is what makes the shrinker
   (Shrink) and `--replay` trustworthy. *)

open Conman
open Netsim

type config = {
  monitor : Monitor.config;
  oscillation_bound : int option;
      (* max successful reroutes per intent; None derives a generous bound
         from the schedule size. Some 0 is the "weakened invariant" used to
         demonstrate the shrinker. *)
}

let default_config = { monitor = Monitor.default_config; oscillation_bound = None }

type verdict = { name : string; ok : bool; detail : string }

type ha_stats = {
  failovers : int; (* promotions across both nodes *)
  detection_ticks : int option;
      (* ticks from the first leader crash to the first promotion after it *)
  replayed : int; (* unconfirmed requests replayed on promotion *)
  split_brain_count : int; (* ticks with two acting primaries under one epoch *)
  lost_intents : int; (* committed-never-retired intents missing at the end *)
  final_epoch : int;
}

type overload_stats = {
  storm_frames : int; (* telemetry-storm frames injected by Overload events *)
  p0_shed : int; (* must stay 0: shed+expired in the heartbeat class *)
  p1_shed : int; (* must stay 0: shed+expired in the script class *)
  p2_shed : int;
  p3_shed : int;
  p3_expired : int;
  p3_queue_high_water : int;
  telemetry_final_period_ns : int64;
  telemetry_backoffs : int; (* scrape-period doublings under shed feedback *)
}

type report = {
  verdicts : verdict list;
  converged_tick : int option; (* tail tick at which everything was healthy *)
  total_repairs : int;
  nm_crashes : int;
  mgmt_counters : string;
  trace : string list; (* monitor event log, across NM incarnations *)
  ha : ha_stats;
  overload : overload_stats;
  goal_trace : string; (* rendered span tree of the initial achieve goal *)
  orphan_spans : int; (* across every traced goal — a lost context if nonzero *)
  phase_samples : (string * int list) list;
  (* raw latency samples (ha.failover_detect_ticks) for cross-run merging *)
  metrics_json : string; (* the run's full registry dump *)
}

let failures r = List.filter (fun v -> not v.ok) r.verdicts

let pp_verdict ppf v =
  Fmt.pf ppf "%-20s %s  %s" v.name (if v.ok then "ok  " else "FAIL") v.detail

let pp_report ppf r =
  List.iter (fun v -> Fmt.pf ppf "  %a@." pp_verdict v) r.verdicts;
  Fmt.pf ppf "  converged=%s repairs=%d nm-crashes=%d %s@."
    (match r.converged_tick with Some t -> Printf.sprintf "tail+%d" t | None -> "never")
    r.total_repairs r.nm_crashes r.mgmt_counters;
  Fmt.pf ppf "  ha[failovers=%d detect=%s replayed=%d split-brain=%d lost=%d epoch=%d]@."
    r.ha.failovers
    (match r.ha.detection_ticks with Some t -> string_of_int t ^ " tick(s)" | None -> "n/a")
    r.ha.replayed r.ha.split_brain_count r.ha.lost_intents r.ha.final_epoch;
  if r.overload.storm_frames > 0 then
    Fmt.pf ppf
      "  overload[storm=%d shed p0=%d p1=%d p2=%d p3=%d(+%d expired) hw=%d tel-period=%Ldms \
       backoffs=%d]@."
      r.overload.storm_frames r.overload.p0_shed r.overload.p1_shed r.overload.p2_shed
      r.overload.p3_shed r.overload.p3_expired r.overload.p3_queue_high_water
      (Int64.div r.overload.telemetry_final_period_ns 1_000_000L)
      r.overload.telemetry_backoffs;
  (* a violated invariant ships with the goal's causal trace *)
  if List.exists (fun v -> not v.ok) r.verdicts && r.goal_trace <> "" then
    Fmt.pf ppf "  goal trace:@.%s@." r.goal_trace

(* Same notion of structural state as the monitor's drift check: show_actual
   keys, qualified by module, minus transient pending[..] negotiation
   entries and all values (which carry traffic counters). *)
let structural_keys state =
  List.concat_map
    (fun ((m : Ids.t), kvs) ->
      List.filter_map
        (fun (k, _) ->
          if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
          else Some (Ids.qualified m ^ "/" ^ k))
        kvs)
    state
  |> List.sort_uniq compare

let scope_keys nm scope =
  List.map
    (fun dev ->
      (dev, match Nm.show_actual nm dev with Some st -> structural_keys st | None -> []))
    scope

let render_counters faults =
  let c = Mgmt.Faults.counters faults in
  Printf.sprintf "mgmt[dropped=%d duplicated=%d delayed=%d crash=%d partition=%d]"
    c.Mgmt.Faults.dropped c.Mgmt.Faults.duplicated c.Mgmt.Faults.delayed
    c.Mgmt.Faults.crash_drops c.Mgmt.Faults.partition_drops

let ms_ns ms = Int64.mul (Int64.of_int ms) 1_000_000L

let run ?(config = default_config) (sched : Schedule.t) =
  (* Request ids embed a per-process NM boot counter, and their printed
     width leaks into frame sizes (and so into fault-stream alignment):
     pin the counter so a schedule replays identically in any process,
     regardless of how many NMs ran before. Safe because everything below
     lives on a freshly built testbed. *)
  Nm.set_incarnations 0;
  Obs.Trace.reset_ids ();
  let d = Scenarios.build_diamond ~fault_seed:sched.Schedule.seed () in
  let obs = Observe.create () in
  ignore
    (Observe.attach_nm obs ~agents:d.Scenarios.dagents ~transport:d.Scenarios.dtransport
       ~admission:d.Scenarios.dadmission ~faults:d.Scenarios.dfaults
       ~station:Scenarios.nm_station_id d.Scenarios.dnm);
  let net = d.Scenarios.dtb.Testbeds.dia_net in
  let eq = Net.eq net in
  let faults = d.Scenarios.dfaults in
  let adm = d.Scenarios.dadmission in
  let scope = d.Scenarios.dscope in
  let seg name = Net.find_segment_exn net name in
  let device id =
    match Net.device_by_id net id with
    | Some dev -> dev
    | None -> failwith ("chaos: unknown device " ^ id)
  in
  (* Segment PRNGs default to the global link-id counter, which advances
     across testbed builds in one process: reseed from the schedule seed so
     identical runs see identical loss patterns regardless of how many
     testbeds were built before. *)
  List.iteri
    (fun i name -> Link.set_seed (seg name) (Int64.of_int ((sched.Schedule.seed * 1_000_003) + i)))
    Schedule.core_segments;
  Mgmt.Faults.reset_counters faults;
  let baseline = scope_keys d.Scenarios.dnm scope in
  (match Nm.achieve d.Scenarios.dnm d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> failwith ("chaos: initial achieve failed: " ^ e));
  (* The HA pair: the diamond's NM acts as primary, a second NM station on
     the same management channel stands by. Pairing bootstraps replication
     and fences the primary at epoch 1. *)
  let standby_nm =
    Nm.create ~transport:d.Scenarios.dtransport ~chan:d.Scenarios.dchan ~net
      ~my_id:Scenarios.standby_station_id ()
  in
  let ha_config =
    {
      Ha.default_config with
      Ha.heartbeat_period_ns = config.monitor.Monitor.interval_ns;
      replay_horizon_ns = Some config.monitor.Monitor.interval_ns;
    }
  in
  ignore (Observe.attach_nm obs ~prefix:"standby" ~station:Scenarios.standby_station_id standby_nm);
  let ha_p, ha_s = Ha.pair ~config:ha_config ~primary:d.Scenarios.dnm ~standby:standby_nm () in
  Observe.attach_ha ~prefix:"primary" obs ha_p;
  Observe.attach_ha ~prefix:"standby" obs ha_s;
  Observe.attach_net obs net;
  Observe.attach_rings obs;
  let nodes = [ ha_p; ha_s ] in
  (* [acting] is the node whose monitor drives reconciliation; it trails
     actual leadership by at most the moment the switch is noticed below *)
  let acting = ref ha_p in
  (* every leader's telemetry poller watches the admission layer's shed
     counter and backs its scrape period off under overload; [tel] tracks
     the current poller so the report can show the final (degraded) period *)
  let tel = ref (Telemetry.create ~scope (Ha.nm ha_p)) in
  let mk_monitor nm =
    let t = Telemetry.create ~scope nm in
    Telemetry.set_shed_probe t (fun () -> Mgmt.Admission.lost_total adm);
    tel := t;
    Monitor.create ~config:config.monitor ~telemetry:t nm
  in
  let mon = ref (mk_monitor (Ha.nm !acting)) in
  let trace = ref [] in
  let carried = Hashtbl.create 8 in (* intent id -> repairs under previous leaders *)
  let dead_monitor_repairs = ref 0 in
  let nm_crashes = ref 0 in
  let first_crash_tick = ref None in
  let split_brain = ref 0 in
  let epoch_leaders = Hashtbl.create 8 in (* epoch -> station id seen acting under it *)
  let epoch_conflicts = ref [] in
  (* retire the acting leader's monitor, preserving its accounting: repair
     counts move into [carried]/[dead_monitor_repairs] (and are zeroed on
     the records so a node returning to leadership is not double-counted)
     and its event log is appended to the cross-incarnation trace *)
  let bank_monitor () =
    List.iter
      (fun (i : Intent.t) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt carried i.Intent.id) in
        Hashtbl.replace carried i.Intent.id (prev + i.Intent.repairs);
        i.Intent.repairs <- 0)
      (Nm.intents (Ha.nm !acting));
    dead_monitor_repairs := !dead_monitor_repairs + Monitor.repairs !mon;
    trace := !trace @ List.map (Fmt.str "%a" Monitor.pp_event) (Monitor.events !mon)
  in
  let leader () =
    match List.filter (fun h -> Ha.is_alive h && Ha.role h = Ha.Primary) nodes with
    | [] -> None
    | [ h ] -> Some h
    | h :: rest ->
        Some (List.fold_left (fun best x -> if Ha.epoch x > Ha.epoch best then x else best) h rest)
  in
  let ensure_leader () =
    match leader () with
    | Some l when l != !acting ->
        bank_monitor ();
        acting := l;
        mon := mk_monitor (Ha.nm l);
        Some l
    | x -> x
  in
  (* per-tick leadership sample: the single-primary invariant is "no two
     alive nodes act under the same epoch", checked both instantaneously
     and cumulatively (an epoch may never be claimed by two stations) *)
  let observe_leadership () =
    if
      Ha.is_alive ha_p && Ha.is_alive ha_s
      && Ha.role ha_p = Ha.Primary
      && Ha.role ha_s = Ha.Primary
      && Ha.epoch ha_p = Ha.epoch ha_s
    then incr split_brain;
    List.iter
      (fun h ->
        if Ha.is_alive h && Ha.role h = Ha.Primary then
          let e = Ha.epoch h and id = Nm.my_id (Ha.nm h) in
          match Hashtbl.find_opt epoch_leaders e with
          | None -> Hashtbl.replace epoch_leaders e id
          | Some id0 when id0 <> id ->
              if not (List.mem e !epoch_conflicts) then epoch_conflicts := e :: !epoch_conflicts
          | Some _ -> ())
      nodes
  in
  (* Overload storm: while active, every tick floods the channel with
     low-priority showPerf requests from the acting leader's own station —
     the worst offender, since it shares its admission bucket with the
     monitor's legitimate probes. Agents fence-reject the unfenced
     requests cheaply; the point is the load on the channel stack. The
     burst always exceeds bucket capacity + backlog so the admission layer
     must shed at any intensity. *)
  let storm = ref None in
  let storm_frames = ref 0 in
  let storm_req = ref 900_000_000 in
  let inject_storm () =
    match !storm with
    | None -> ()
    | Some intensity -> (
        match leader () with
        | None -> ()
        | Some l ->
            let src = Nm.my_id (Ha.nm l) in
            let burst = 512 + int_of_float (intensity *. 1024.) in
            let n_scope = List.length scope in
            for i = 0 to burst - 1 do
              incr storm_req;
              incr storm_frames;
              Mgmt.Channel.send d.Scenarios.dchan ~src ~dst:(List.nth scope (i mod n_scope))
                (Wire.encode (Wire.Show_perf_req { req = !storm_req }))
            done)
  in
  let reverts = ref [] in (* (due_tick, undo) *)
  let fire_reverts tick =
    let due, later = List.partition (fun (at, _) -> at <= tick) !reverts in
    reverts := later;
    List.iter (fun (_, undo) -> undo ()) due
  in
  let crash_node ~tick ~ticks h =
    let id = Nm.my_id (Ha.nm h) in
    Mgmt.Faults.crash faults id;
    Ha.set_alive h false;
    reverts :=
      ( tick + ticks,
        fun () ->
          Mgmt.Faults.restart faults id;
          Ha.set_alive h true )
      :: !reverts
  in
  let apply tick (e : Schedule.event) =
    let until ticks undo = reverts := (tick + ticks, undo) :: !reverts in
    match e.Schedule.fault with
    | Schedule.Link_cut { seg = s; ticks } ->
        let sg = seg s in
        Link.cut sg;
        until ticks (fun () -> Link.restore sg)
    | Schedule.Link_loss { seg = s; p; ticks } ->
        let sg = seg s in
        Link.set_loss sg p;
        until ticks (fun () -> Link.set_loss sg 0.0)
    | Schedule.Link_corrupt { seg = s; p; ticks } ->
        let sg = seg s in
        Link.set_corrupt sg p;
        until ticks (fun () -> Link.set_corrupt sg 0.0)
    | Schedule.Link_flap { seg = s; cycles; down_ms; up_ms } ->
        (* self-terminating: schedules its own cut/restore pairs *)
        Link.flap ~cycles (seg s) ~first_down_ns:10_000_000L ~down_ns:(ms_ns down_ms)
          ~up_ns:(ms_ns up_ms)
    | Schedule.Mgmt_drop { p; ticks } ->
        Mgmt.Faults.set_drop faults p;
        until ticks (fun () -> Mgmt.Faults.set_drop faults 0.0)
    | Schedule.Mgmt_duplicate { p; ticks } ->
        Mgmt.Faults.set_duplicate faults p;
        until ticks (fun () -> Mgmt.Faults.set_duplicate faults 0.0)
    | Schedule.Mgmt_jitter { ms; ticks } ->
        Mgmt.Faults.set_jitter faults (ms_ns ms);
        until ticks (fun () -> Mgmt.Faults.set_jitter faults 0L)
    | Schedule.Mgmt_partition { dev; ticks } ->
        Mgmt.Faults.partition faults dev;
        until ticks (fun () -> Mgmt.Faults.heal faults dev)
    | Schedule.Agent_crash { dev; ticks } ->
        Device.crash (device dev);
        Mgmt.Faults.crash faults dev;
        until ticks (fun () ->
            Device.restart (device dev);
            Mgmt.Faults.restart faults dev;
            (* the agent says Hello again; the NM flushes owed deletions
               and re-applies active script slices *)
            Agent.announce (List.assoc dev d.Scenarios.dagents) net;
            Nm.run (Ha.nm !acting))
    | Schedule.Nm_crash | Schedule.Nm_failover _ ->
        (* the acting leader crashes: heartbeats stop, the standby's
           failure detector must notice and promote. Nm_crash is the
           legacy single-NM event, mapped to a 2-tick failover. *)
        let ticks =
          match e.Schedule.fault with Schedule.Nm_failover { ticks } -> ticks | _ -> 2
        in
        incr nm_crashes;
        if !first_crash_tick = None then first_crash_tick := Some tick;
        let victim = match leader () with Some l -> l | None -> !acting in
        crash_node ~tick ~ticks victim
    | Schedule.Standby_crash { ticks } ->
        let victim =
          match leader () with Some l when l == ha_s -> ha_p | Some _ | None -> ha_s
        in
        crash_node ~tick ~ticks victim
    | Schedule.Ha_partition { ticks } ->
        (* isolate the NMs from each other while both keep reaching the
           agents: the standby will suspect the primary dead and promote,
           and only epoch fencing keeps the old primary from competing *)
        let a = Scenarios.nm_station_id and b = Scenarios.standby_station_id in
        Mgmt.Faults.set_drop faults ~src:a ~dst:b 1.0;
        Mgmt.Faults.set_drop faults ~src:b ~dst:a 1.0;
        until ticks (fun () ->
            Mgmt.Faults.set_drop faults ~src:a ~dst:b 0.0;
            Mgmt.Faults.set_drop faults ~src:b ~dst:a 0.0)
    | Schedule.Overload { intensity; ticks } ->
        storm := Some intensity;
        until ticks (fun () -> storm := None)
    | Schedule.Peer_nm_crash _ | Schedule.Inter_domain_partition _ ->
        (* federation-only events; Fed_engine applies them over the
           two-domain deployment *)
        ()
  in
  (* one engine tick: both HA nodes heartbeat/detect, then whoever leads
     reconciles. With no live leader the clock still advances a full
     interval so the standby's heartbeat gap keeps growing. *)
  let advance_interval () =
    ignore
      (Net.run_until net
         ~deadline:(Int64.add (Event_queue.now eq) config.monitor.Monitor.interval_ns))
  in
  let ha_tick tick =
    Observe.set_tick obs tick;
    Ha.tick ha_p ~tick;
    Ha.tick ha_s ~tick;
    observe_leadership ();
    match ensure_leader () with Some _ -> Monitor.tick !mon | None -> advance_interval ()
  in
  (* --- chaos phase ----------------------------------------------------- *)
  Mgmt.Admission.reset_counters adm;
  for tick = 0 to sched.Schedule.ticks - 1 do
    fire_reverts tick;
    List.iter (fun e -> if e.Schedule.at = tick then apply tick e) sched.Schedule.events;
    inject_storm ();
    ha_tick tick
  done;
  (* --- force quiescence ------------------------------------------------ *)
  fire_reverts max_int;
  Mgmt.Faults.clear faults;
  List.iter (fun n -> Link.clear_faults (seg n)) Schedule.core_segments;
  (* --- quiescence tail -------------------------------------------------- *)
  let live () =
    List.filter
      (fun (i : Intent.t) -> i.Intent.status <> Intent.Retired)
      (Nm.intents (Ha.nm !acting))
  in
  let healthy () =
    let l = live () in
    l <> []
    && List.for_all (fun (i : Intent.t) -> i.Intent.status = Intent.Active) l
    && Scenarios.diamond_reachable d
  in
  let converged = ref None in
  let tail_tick = ref 0 in
  while !converged = None && !tail_tick < sched.Schedule.tail do
    incr tail_tick;
    ha_tick (sched.Schedule.ticks + !tail_tick - 1);
    if healthy () then converged := Some !tail_tick
  done;
  (* --- verdicts --------------------------------------------------------- *)
  (* everything from here on interrogates the final acting leader *)
  let nm = Ha.nm !acting in
  let intent_repairs (i : Intent.t) =
    i.Intent.repairs + Option.value ~default:0 (Hashtbl.find_opt carried i.Intent.id)
  in
  let total_repairs = !dead_monitor_repairs + Monitor.repairs !mon in
  let v_convergence =
    match !converged with
    | Some t ->
        {
          name = "convergence";
          ok = true;
          detail = Printf.sprintf "all intents healthy %d tick(s) into the tail" t;
        }
    | None ->
        let states =
          live ()
          |> List.map (fun (i : Intent.t) ->
                 Printf.sprintf "intent-%d=%s" i.Intent.id
                   (Intent.status_to_string i.Intent.status))
          |> String.concat " "
        in
        {
          name = "convergence";
          ok = false;
          detail =
            Printf.sprintf "not converged after %d tail ticks (%s; reachable=%b)"
              sched.Schedule.tail states
              (Scenarios.diamond_reachable d);
        }
  in
  let v_oscillation =
    let bound =
      match config.oscillation_bound with
      | Some b -> b
      | None -> (2 * List.length sched.Schedule.events) + 4
    in
    let worst =
      List.fold_left (fun acc i -> max acc (intent_repairs i)) 0 (Nm.intents nm)
    in
    {
      name = "oscillation";
      ok = worst <= bound;
      detail = Printf.sprintf "max %d reroute(s) per intent (bound %d)" worst bound;
    }
  in
  let v_conservation =
    let acct_ok =
      List.for_all
        (fun n ->
          let sg = seg n in
          Link.dropped sg
          = Link.drop_count sg "cut" + Link.drop_count sg "mtu" + Link.drop_count sg "loss"
            + Link.drop_count sg "corrupt")
        Schedule.core_segments
    in
    let path =
      List.find_map
        (fun (i : Intent.t) ->
          match (i.Intent.status, i.Intent.script) with
          | Intent.Active, Some s when s.Script_gen.path.Path_finder.visits <> [] ->
              Some s.Script_gen.path
          | _ -> None)
        (Nm.intents nm)
    in
    match path with
    | Some p when !converged <> None ->
        (* a fresh store primed with healthy probe rounds must give the
           converged path a clean bill — leftover counter imbalances would
           mean the Diagnose model's conservation laws are violated *)
        let tel = Telemetry.create ~scope nm in
        for _ = 1 to 4 do
          ignore (Nm.probe_end_to_end nm p);
          Telemetry.scrape tel
        done;
        let diag = Telemetry.diagnose_path tel p in
        {
          name = "conservation";
          ok = acct_ok && diag = [];
          detail =
            (if diag = [] then
               Printf.sprintf "drop accounting balanced, localizer clean (%s)"
                 (if acct_ok then "ok" else "IMBALANCED")
             else
               Fmt.str "localizer still suspicious: %a" Diagnose.pp_diagnosis (List.hd diag));
        }
    | _ ->
        {
          name = "conservation";
          ok = acct_ok;
          detail = "drop accounting balanced (localizer skipped: no converged path)";
        }
  in
  (* capture before teardown: teardown appends Retire entries *)
  let journal_str = Intent.journal_to_string (Nm.journal nm) in
  let v_journal =
    let reference =
      let d2 = Scenarios.build_diamond () in
      match Nm.achieve d2.Scenarios.dnm d2.Scenarios.dgoal with
      | Ok _ -> Some (scope_keys d2.Scenarios.dnm d2.Scenarios.dscope)
      | Error _ -> None
    in
    let recovered =
      let d3 = Scenarios.build_diamond () in
      let nm3 =
        Nm.create ~transport:d3.Scenarios.dtransport
          ~journal:(Intent.journal_of_string journal_str)
          ~chan:d3.Scenarios.dchan ~net:d3.Scenarios.dtb.Testbeds.dia_net
          ~my_id:Scenarios.nm_station_id ()
      in
      Scenarios.diamond_adopt d3 nm3;
      Nm.recover nm3;
      scope_keys nm3 d3.Scenarios.dscope
    in
    match reference with
    | None -> { name = "journal-equivalence"; ok = false; detail = "reference achieve failed" }
    | Some ref_keys ->
        let diff =
          List.concat_map
            (fun (dev, ks) ->
              let rs = try List.assoc dev recovered with Not_found -> [] in
              List.filter (fun k -> not (List.mem k rs)) ks
              @ List.filter (fun k -> not (List.mem k ks)) rs)
            ref_keys
        in
        {
          name = "journal-equivalence";
          ok = diff = [];
          detail =
            (if diff = [] then "recovered NM reaches the reference fixpoint"
             else Printf.sprintf "%d structural key(s) differ (e.g. %s)" (List.length diff)
                 (List.hd diff));
        }
  in
  (* HA accounting and invariants, computed before the stale-state teardown
     mutates the intent set *)
  let failovers = Ha.promotions ha_p + Ha.promotions ha_s in
  let final_epoch = max (Ha.epoch ha_p) (Ha.epoch ha_s) in
  let detection_ticks =
    match !first_crash_tick with
    | None -> None
    | Some c -> (
        let promos =
          List.sort compare
            (List.filter (fun t -> t >= c) (Ha.promotion_ticks ha_p @ Ha.promotion_ticks ha_s))
        in
        match promos with t :: _ -> Some (t - c) | [] -> None)
  in
  (match detection_ticks with
  | Some d -> Obs.Registry.observe (Observe.registry obs) "ha.failover_detect_ticks" d
  | None -> ());
  let v_single_primary =
    let ok = !split_brain = 0 && !epoch_conflicts = [] in
    {
      name = "single-primary";
      ok;
      detail =
        (if ok then
           Printf.sprintf "epoch fencing held over %d failover(s) (final epoch %d)" failovers
             final_epoch
         else
           Printf.sprintf "%d split-brain tick(s), %d contested epoch(s)" !split_brain
             (List.length !epoch_conflicts));
    }
  in
  (* No committed intent may be lost across failovers: anything Commit-ed in
     EITHER node's journal (replication is asynchronous, so the deposed
     journal can hold a tail the survivor never saw) and never Retire-d
     must still be live at the final leader. *)
  let lost_intents =
    let committed_live j =
      List.fold_left
        (fun acc e ->
          match e with
          | Intent.Commit id -> if List.mem id acc then acc else id :: acc
          | Intent.Retire id -> List.filter (fun x -> x <> id) acc
          | Intent.Begin _ | Intent.Bind _ -> acc)
        []
        (Intent.entries j)
    in
    let wanted =
      List.sort_uniq compare
        (committed_live (Nm.journal (Ha.nm ha_p)) @ committed_live (Nm.journal (Ha.nm ha_s)))
    in
    let present =
      List.filter_map
        (fun (i : Intent.t) ->
          if i.Intent.status <> Intent.Retired then Some i.Intent.id else None)
        (Nm.intents nm)
    in
    List.filter (fun id -> not (List.mem id present)) wanted
  in
  let v_lost =
    {
      name = "no-lost-intents";
      ok = lost_intents = [];
      detail =
        (if lost_intents = [] then "every committed intent survived failover"
         else
           Printf.sprintf "%d committed intent(s) lost (%s)" (List.length lost_intents)
             (String.concat ", " (List.map string_of_int lost_intents)));
    }
  in
  (* Overload invariants. The admission layer may never have shed or
     expired a liveness (P0) or mutation (P1) frame — those classes bypass
     both bucket and queue, so a nonzero count means the layering broke.
     And when a storm was scheduled, the system must still have converged
     and must not have misread channel pressure as a dead primary. *)
  let adm_counters = Mgmt.Admission.counters adm in
  let shed_of i =
    adm_counters.(i).Mgmt.Admission.shed + adm_counters.(i).Mgmt.Admission.expired
  in
  let had_overload =
    List.exists
      (fun (e : Schedule.event) ->
        match e.Schedule.fault with Schedule.Overload _ -> true | _ -> false)
      sched.Schedule.events
  in
  let has_ha_fault =
    List.exists
      (fun (e : Schedule.event) ->
        match e.Schedule.fault with
        | Schedule.Nm_crash | Schedule.Nm_failover _ | Schedule.Ha_partition _
        | Schedule.Standby_crash _ ->
            true
        | _ -> false)
      sched.Schedule.events
  in
  let v_no_p0p1_shed =
    let ok = shed_of 0 = 0 && shed_of 1 = 0 in
    {
      name = "no-p0p1-shed";
      ok;
      detail =
        (if ok then
           Printf.sprintf "liveness/mutation frames untouched (p2 shed %d, p3 shed %d)"
             (shed_of 2) (shed_of 3)
         else Printf.sprintf "P0 shed %d, P1 shed %d frame(s)" (shed_of 0) (shed_of 1));
    }
  in
  let v_overload =
    if not had_overload then
      { name = "overload-degradation"; ok = true; detail = "no overload event scheduled" }
    else
      let spurious = (not has_ha_fault) && failovers > 0 in
      let ok = !converged <> None && not spurious in
      {
        name = "overload-degradation";
        ok;
        detail =
          (if ok then
             Printf.sprintf "converged under a %d-frame storm (%d telemetry frame(s) shed)"
               !storm_frames
               (shed_of 2 + shed_of 3)
           else if spurious then
             Printf.sprintf "%d spurious failover(s): heartbeats starved by the storm" failovers
           else "storm prevented re-convergence");
      }
  in
  let v_stale =
    List.iter
      (fun (i : Intent.t) ->
        match i.Intent.script with
        | Some s when i.Intent.status <> Intent.Retired -> Nm.teardown nm s
        | _ -> ())
      (Nm.intents nm);
    let after = scope_keys nm scope in
    let leaked =
      List.concat_map
        (fun (dev, ks) ->
          let base = try List.assoc dev baseline with Not_found -> [] in
          List.filter (fun k -> not (List.mem k base)) ks)
        after
    in
    let missing =
      List.concat_map
        (fun (dev, base) ->
          let ks = try List.assoc dev after with Not_found -> [] in
          List.filter (fun k -> not (List.mem k ks)) base)
        baseline
    in
    {
      name = "stale-state";
      ok = leaked = [] && missing = [];
      detail =
        (if leaked = [] && missing = [] then "teardown reclaimed all datapath state"
         else
           let sample ks =
             let shown = List.filteri (fun i _ -> i < 8) ks in
             String.concat ", " shown ^ if List.length ks > 8 then ", ..." else ""
           in
           Printf.sprintf "%d leaked, %d missing key(s)%s%s" (List.length leaked)
             (List.length missing)
             (if leaked = [] then "" else " leaked: " ^ sample leaked)
             (if missing = [] then "" else " missing: " ^ sample missing));
    }
  in
  let trace = !trace @ List.map (Fmt.str "%a" Monitor.pp_event) (Monitor.events !mon) in
  let cols = Observe.collectors obs in
  let goal_trace =
    (* the first traced goal is the initial achieve; later roots are
       monitor repairs and back-outs *)
    match Obs.Trace.goals cols with g :: _ -> Obs.Trace.render cols g | [] -> ""
  in
  let orphan_spans =
    List.fold_left (fun acc g -> acc + List.length (Obs.Trace.orphans cols g)) 0
      (Obs.Trace.goals cols)
  in
  {
    verdicts =
      [
        v_convergence; v_oscillation; v_conservation; v_journal; v_single_primary; v_lost;
        v_no_p0p1_shed; v_overload; v_stale;
      ];
    converged_tick = !converged;
    total_repairs;
    nm_crashes = !nm_crashes;
    mgmt_counters = render_counters faults;
    trace;
    ha =
      {
        failovers;
        detection_ticks;
        replayed = Ha.replayed ha_p + Ha.replayed ha_s;
        split_brain_count = !split_brain;
        lost_intents = List.length lost_intents;
        final_epoch;
      };
    overload =
      {
        storm_frames = !storm_frames;
        p0_shed = shed_of 0;
        p1_shed = shed_of 1;
        p2_shed = shed_of 2;
        p3_shed = adm_counters.(3).Mgmt.Admission.shed;
        p3_expired = adm_counters.(3).Mgmt.Admission.expired;
        p3_queue_high_water = adm_counters.(3).Mgmt.Admission.queue_high_water;
        telemetry_final_period_ns = Telemetry.period_ns !tel;
        telemetry_backoffs = Telemetry.backoffs !tel;
      };
    goal_trace;
    orphan_spans;
    phase_samples =
      [ ("ha.failover_detect_ticks",
         Obs.Registry.samples (Observe.registry obs) "ha.failover_detect_ticks") ];
    metrics_json = Obs.Registry.to_json (Observe.registry obs);
  }
