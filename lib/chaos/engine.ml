(* The chaos engine: drives a Schedule.t over a live diamond deployment and
   checks global invariants.

   The run has two phases. During the chaos phase each monitor tick first
   fires due fault-reverts, then applies the schedule events due at that
   tick, then lets the reconciliation loop take its tick. After the last
   chaos tick every outstanding fault is force-reverted (crashed devices
   restart and re-announce, knobs are cleared) and the quiescence tail
   begins: up to [tail] clean ticks during which every live intent must
   re-converge.

   Invariants checked at quiescence:
     convergence          every live intent Active and the testbed carries
                          end-to-end traffic within the tail
     oscillation          bounded successful reroutes per intent (carried
                          across NM crashes)
     conservation         per-segment drop accounting balances, and the
                          counter-based localizer finds nothing wrong on
                          the converged path
     journal-equivalence  a fresh NM recovering from this run's journal on
                          a fresh testbed reaches the same structural
                          show_actual fixpoint as a fresh NM achieving the
                          goal directly
     stale-state          tearing every surviving script down returns every
                          scoped device to its pre-achieve structural state
                          (no leaked pipes/labels/xconnects)

   Everything is deterministic: same schedule, same verdicts, same fault
   counters, same monitor event trace — which is what makes the shrinker
   (Shrink) and `--replay` trustworthy. *)

open Conman
open Netsim

type config = {
  monitor : Monitor.config;
  oscillation_bound : int option;
      (* max successful reroutes per intent; None derives a generous bound
         from the schedule size. Some 0 is the "weakened invariant" used to
         demonstrate the shrinker. *)
}

let default_config = { monitor = Monitor.default_config; oscillation_bound = None }

type verdict = { name : string; ok : bool; detail : string }

type report = {
  verdicts : verdict list;
  converged_tick : int option; (* tail tick at which everything was healthy *)
  total_repairs : int;
  nm_crashes : int;
  mgmt_counters : string;
  trace : string list; (* monitor event log, across NM incarnations *)
}

let failures r = List.filter (fun v -> not v.ok) r.verdicts

let pp_verdict ppf v =
  Fmt.pf ppf "%-20s %s  %s" v.name (if v.ok then "ok  " else "FAIL") v.detail

let pp_report ppf r =
  List.iter (fun v -> Fmt.pf ppf "  %a@." pp_verdict v) r.verdicts;
  Fmt.pf ppf "  converged=%s repairs=%d nm-crashes=%d %s@."
    (match r.converged_tick with Some t -> Printf.sprintf "tail+%d" t | None -> "never")
    r.total_repairs r.nm_crashes r.mgmt_counters

(* Same notion of structural state as the monitor's drift check: show_actual
   keys, qualified by module, minus transient pending[..] negotiation
   entries and all values (which carry traffic counters). *)
let structural_keys state =
  List.concat_map
    (fun ((m : Ids.t), kvs) ->
      List.filter_map
        (fun (k, _) ->
          if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
          else Some (Ids.qualified m ^ "/" ^ k))
        kvs)
    state
  |> List.sort_uniq compare

let scope_keys nm scope =
  List.map
    (fun dev ->
      (dev, match Nm.show_actual nm dev with Some st -> structural_keys st | None -> []))
    scope

let render_counters faults =
  let c = Mgmt.Faults.counters faults in
  Printf.sprintf "mgmt[dropped=%d duplicated=%d delayed=%d crash=%d partition=%d]"
    c.Mgmt.Faults.dropped c.Mgmt.Faults.duplicated c.Mgmt.Faults.delayed
    c.Mgmt.Faults.crash_drops c.Mgmt.Faults.partition_drops

let ms_ns ms = Int64.mul (Int64.of_int ms) 1_000_000L

let run ?(config = default_config) (sched : Schedule.t) =
  (* Request ids embed a per-process NM boot counter, and their printed
     width leaks into frame sizes (and so into fault-stream alignment):
     pin the counter so a schedule replays identically in any process,
     regardless of how many NMs ran before. Safe because everything below
     lives on a freshly built testbed. *)
  Nm.set_incarnations 0;
  let d = Scenarios.build_diamond ~fault_seed:sched.Schedule.seed () in
  let net = d.Scenarios.dtb.Testbeds.dia_net in
  let eq = Net.eq net in
  let faults = d.Scenarios.dfaults in
  let scope = d.Scenarios.dscope in
  let seg name = Net.find_segment_exn net name in
  let device id =
    match Net.device_by_id net id with
    | Some dev -> dev
    | None -> failwith ("chaos: unknown device " ^ id)
  in
  (* Segment PRNGs default to the global link-id counter, which advances
     across testbed builds in one process: reseed from the schedule seed so
     identical runs see identical loss patterns regardless of how many
     testbeds were built before. *)
  List.iteri
    (fun i name -> Link.set_seed (seg name) (Int64.of_int ((sched.Schedule.seed * 1_000_003) + i)))
    Schedule.core_segments;
  Mgmt.Faults.reset_counters faults;
  let baseline = scope_keys d.Scenarios.dnm scope in
  (match Nm.achieve d.Scenarios.dnm d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> failwith ("chaos: initial achieve failed: " ^ e));
  (* mutable because an Nm_crash event replaces all three *)
  let nm = ref d.Scenarios.dnm in
  let mon =
    ref
      (Monitor.create ~config:config.monitor
         ~telemetry:(Telemetry.create ~scope !nm)
         !nm)
  in
  let trace = ref [] in
  let carried = Hashtbl.create 8 in (* intent id -> repairs under dead NMs *)
  let dead_monitor_repairs = ref 0 in
  let nm_crashes = ref 0 in
  let reverts = ref [] in (* (due_tick, undo) *)
  let fire_reverts tick =
    let due, later = List.partition (fun (at, _) -> at <= tick) !reverts in
    reverts := later;
    List.iter (fun (_, undo) -> undo ()) due
  in
  let apply tick (e : Schedule.event) =
    let until ticks undo = reverts := (tick + ticks, undo) :: !reverts in
    match e.Schedule.fault with
    | Schedule.Link_cut { seg = s; ticks } ->
        let sg = seg s in
        Link.cut sg;
        until ticks (fun () -> Link.restore sg)
    | Schedule.Link_loss { seg = s; p; ticks } ->
        let sg = seg s in
        Link.set_loss sg p;
        until ticks (fun () -> Link.set_loss sg 0.0)
    | Schedule.Link_corrupt { seg = s; p; ticks } ->
        let sg = seg s in
        Link.set_corrupt sg p;
        until ticks (fun () -> Link.set_corrupt sg 0.0)
    | Schedule.Link_flap { seg = s; cycles; down_ms; up_ms } ->
        (* self-terminating: schedules its own cut/restore pairs *)
        Link.flap ~cycles (seg s) ~first_down_ns:10_000_000L ~down_ns:(ms_ns down_ms)
          ~up_ns:(ms_ns up_ms)
    | Schedule.Mgmt_drop { p; ticks } ->
        Mgmt.Faults.set_drop faults p;
        until ticks (fun () -> Mgmt.Faults.set_drop faults 0.0)
    | Schedule.Mgmt_duplicate { p; ticks } ->
        Mgmt.Faults.set_duplicate faults p;
        until ticks (fun () -> Mgmt.Faults.set_duplicate faults 0.0)
    | Schedule.Mgmt_jitter { ms; ticks } ->
        Mgmt.Faults.set_jitter faults (ms_ns ms);
        until ticks (fun () -> Mgmt.Faults.set_jitter faults 0L)
    | Schedule.Mgmt_partition { dev; ticks } ->
        Mgmt.Faults.partition faults dev;
        until ticks (fun () -> Mgmt.Faults.heal faults dev)
    | Schedule.Agent_crash { dev; ticks } ->
        Device.crash (device dev);
        Mgmt.Faults.crash faults dev;
        until ticks (fun () ->
            Device.restart (device dev);
            Mgmt.Faults.restart faults dev;
            (* the agent says Hello again; the NM flushes owed deletions
               and re-applies active script slices *)
            Agent.announce (List.assoc dev d.Scenarios.dagents) net;
            Nm.run !nm)
    | Schedule.Nm_crash ->
        incr nm_crashes;
        (* bank the dead incarnation's accounting before replacing it *)
        List.iter
          (fun (i : Intent.t) ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt carried i.Intent.id) in
            Hashtbl.replace carried i.Intent.id (prev + i.Intent.repairs))
          (Nm.intents !nm);
        dead_monitor_repairs := !dead_monitor_repairs + Monitor.repairs !mon;
        trace := !trace @ List.map (Fmt.str "%a" Monitor.pp_event) (Monitor.events !mon);
        let journal = Intent.journal_of_string (Intent.journal_to_string (Nm.journal !nm)) in
        let nm' =
          Nm.create ~transport:d.Scenarios.dtransport ~journal ~chan:d.Scenarios.dchan ~net
            ~my_id:Scenarios.nm_station_id ()
        in
        (* re-adopt and re-converge inside a bounded horizon so recovery
           does not fast-forward through faults scheduled for later ticks *)
        let deadline =
          Int64.add (Event_queue.now eq) config.monitor.Monitor.interval_ns
        in
        Nm.set_horizon nm' (Some deadline);
        Scenarios.diamond_adopt d nm';
        Nm.recover nm';
        Nm.set_horizon nm' None;
        nm := nm';
        mon :=
          Monitor.create ~config:config.monitor ~telemetry:(Telemetry.create ~scope nm') nm'
  in
  (* --- chaos phase ----------------------------------------------------- *)
  for tick = 0 to sched.Schedule.ticks - 1 do
    fire_reverts tick;
    List.iter (fun e -> if e.Schedule.at = tick then apply tick e) sched.Schedule.events;
    Monitor.tick !mon
  done;
  (* --- force quiescence ------------------------------------------------ *)
  fire_reverts max_int;
  Mgmt.Faults.clear faults;
  List.iter (fun n -> Link.clear_faults (seg n)) Schedule.core_segments;
  (* --- quiescence tail -------------------------------------------------- *)
  let live () =
    List.filter (fun (i : Intent.t) -> i.Intent.status <> Intent.Retired) (Nm.intents !nm)
  in
  let healthy () =
    let l = live () in
    l <> []
    && List.for_all (fun (i : Intent.t) -> i.Intent.status = Intent.Active) l
    && Scenarios.diamond_reachable d
  in
  let converged = ref None in
  let tail_tick = ref 0 in
  while !converged = None && !tail_tick < sched.Schedule.tail do
    incr tail_tick;
    Monitor.tick !mon;
    if healthy () then converged := Some !tail_tick
  done;
  (* --- verdicts --------------------------------------------------------- *)
  let intent_repairs (i : Intent.t) =
    i.Intent.repairs + Option.value ~default:0 (Hashtbl.find_opt carried i.Intent.id)
  in
  let total_repairs = !dead_monitor_repairs + Monitor.repairs !mon in
  let v_convergence =
    match !converged with
    | Some t ->
        {
          name = "convergence";
          ok = true;
          detail = Printf.sprintf "all intents healthy %d tick(s) into the tail" t;
        }
    | None ->
        let states =
          live ()
          |> List.map (fun (i : Intent.t) ->
                 Printf.sprintf "intent-%d=%s" i.Intent.id
                   (Intent.status_to_string i.Intent.status))
          |> String.concat " "
        in
        {
          name = "convergence";
          ok = false;
          detail =
            Printf.sprintf "not converged after %d tail ticks (%s; reachable=%b)"
              sched.Schedule.tail states
              (Scenarios.diamond_reachable d);
        }
  in
  let v_oscillation =
    let bound =
      match config.oscillation_bound with
      | Some b -> b
      | None -> (2 * List.length sched.Schedule.events) + 4
    in
    let worst =
      List.fold_left (fun acc i -> max acc (intent_repairs i)) 0 (Nm.intents !nm)
    in
    {
      name = "oscillation";
      ok = worst <= bound;
      detail = Printf.sprintf "max %d reroute(s) per intent (bound %d)" worst bound;
    }
  in
  let v_conservation =
    let acct_ok =
      List.for_all
        (fun n ->
          let sg = seg n in
          Link.dropped sg
          = Link.drop_count sg "cut" + Link.drop_count sg "mtu" + Link.drop_count sg "loss"
            + Link.drop_count sg "corrupt")
        Schedule.core_segments
    in
    let path =
      List.find_map
        (fun (i : Intent.t) ->
          match (i.Intent.status, i.Intent.script) with
          | Intent.Active, Some s when s.Script_gen.path.Path_finder.visits <> [] ->
              Some s.Script_gen.path
          | _ -> None)
        (Nm.intents !nm)
    in
    match path with
    | Some p when !converged <> None ->
        (* a fresh store primed with healthy probe rounds must give the
           converged path a clean bill — leftover counter imbalances would
           mean the Diagnose model's conservation laws are violated *)
        let tel = Telemetry.create ~scope !nm in
        for _ = 1 to 4 do
          ignore (Nm.probe_end_to_end !nm p);
          Telemetry.scrape tel
        done;
        let diag = Telemetry.diagnose_path tel p in
        {
          name = "conservation";
          ok = acct_ok && diag = [];
          detail =
            (if diag = [] then
               Printf.sprintf "drop accounting balanced, localizer clean (%s)"
                 (if acct_ok then "ok" else "IMBALANCED")
             else
               Fmt.str "localizer still suspicious: %a" Diagnose.pp_diagnosis (List.hd diag));
        }
    | _ ->
        {
          name = "conservation";
          ok = acct_ok;
          detail = "drop accounting balanced (localizer skipped: no converged path)";
        }
  in
  (* capture before teardown: teardown appends Retire entries *)
  let journal_str = Intent.journal_to_string (Nm.journal !nm) in
  let v_journal =
    let reference =
      let d2 = Scenarios.build_diamond () in
      match Nm.achieve d2.Scenarios.dnm d2.Scenarios.dgoal with
      | Ok _ -> Some (scope_keys d2.Scenarios.dnm d2.Scenarios.dscope)
      | Error _ -> None
    in
    let recovered =
      let d3 = Scenarios.build_diamond () in
      let nm3 =
        Nm.create ~transport:d3.Scenarios.dtransport
          ~journal:(Intent.journal_of_string journal_str)
          ~chan:d3.Scenarios.dchan ~net:d3.Scenarios.dtb.Testbeds.dia_net
          ~my_id:Scenarios.nm_station_id ()
      in
      Scenarios.diamond_adopt d3 nm3;
      Nm.recover nm3;
      scope_keys nm3 d3.Scenarios.dscope
    in
    match reference with
    | None -> { name = "journal-equivalence"; ok = false; detail = "reference achieve failed" }
    | Some ref_keys ->
        let diff =
          List.concat_map
            (fun (dev, ks) ->
              let rs = try List.assoc dev recovered with Not_found -> [] in
              List.filter (fun k -> not (List.mem k rs)) ks
              @ List.filter (fun k -> not (List.mem k ks)) rs)
            ref_keys
        in
        {
          name = "journal-equivalence";
          ok = diff = [];
          detail =
            (if diff = [] then "recovered NM reaches the reference fixpoint"
             else Printf.sprintf "%d structural key(s) differ (e.g. %s)" (List.length diff)
                 (List.hd diff));
        }
  in
  let v_stale =
    List.iter
      (fun (i : Intent.t) ->
        match i.Intent.script with
        | Some s when i.Intent.status <> Intent.Retired -> Nm.teardown !nm s
        | _ -> ())
      (Nm.intents !nm);
    let after = scope_keys !nm scope in
    let leaked =
      List.concat_map
        (fun (dev, ks) ->
          let base = try List.assoc dev baseline with Not_found -> [] in
          List.filter (fun k -> not (List.mem k base)) ks)
        after
    in
    let missing =
      List.concat_map
        (fun (dev, base) ->
          let ks = try List.assoc dev after with Not_found -> [] in
          List.filter (fun k -> not (List.mem k ks)) base)
        baseline
    in
    {
      name = "stale-state";
      ok = leaked = [] && missing = [];
      detail =
        (if leaked = [] && missing = [] then "teardown reclaimed all datapath state"
         else
           let sample ks =
             let shown = List.filteri (fun i _ -> i < 8) ks in
             String.concat ", " shown ^ if List.length ks > 8 then ", ..." else ""
           in
           Printf.sprintf "%d leaked, %d missing key(s)%s%s" (List.length leaked)
             (List.length missing)
             (if leaked = [] then "" else " leaked: " ^ sample leaked)
             (if missing = [] then "" else " missing: " ^ sample missing));
    }
  in
  let trace = !trace @ List.map (Fmt.str "%a" Monitor.pp_event) (Monitor.events !mon) in
  {
    verdicts = [ v_convergence; v_oscillation; v_conservation; v_journal; v_stale ];
    converged_tick = !converged;
    total_repairs;
    nm_crashes = !nm_crashes;
    mgmt_counters = render_counters faults;
    trace;
  }
