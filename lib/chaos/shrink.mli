(** Greedy schedule minimization. Given a failing schedule and a
    deterministic oracle, drops events, weakens the survivors (halved
    durations/cycles) and shortens the chaos phase while the violation
    still reproduces. *)

type result = { minimized : Schedule.t; runs : int  (** oracle invocations *) }

val minimize : failing:(Schedule.t -> bool) -> Schedule.t -> result
(** [failing s] must return [true] iff running [s] still exhibits the
    original violation (typically: the same invariant names fail). The
    input schedule is assumed failing; the result is a local minimum —
    removing any single remaining event no longer reproduces. *)
