(** Seeded composite fault schedules over the diamond testbed.

    A schedule is generated from a single splitmix64 seed (the
    {!Mgmt.Faults.Prng} family) and composes every fault injector in the
    stack: link cut/loss/corrupt/flap, management-channel
    drop/duplicate/jitter/partition, agent device crash+restart with
    volatile-state loss, and the NM-level HA faults: primary crash
    (failover), NM<->standby partition (split-brain pressure) and standby
    crash. All durations are capped so injected faults end before the
    quiescence tail, making convergence decidable. Schedules serialise to
    sexp for exact replay. *)

type fault =
  | Link_cut of { seg : string; ticks : int }
  | Link_loss of { seg : string; p : float; ticks : int }
  | Link_corrupt of { seg : string; p : float; ticks : int }
  | Link_flap of { seg : string; cycles : int; down_ms : int; up_ms : int }
  | Mgmt_drop of { p : float; ticks : int }
  | Mgmt_duplicate of { p : float; ticks : int }
  | Mgmt_jitter of { ms : int; ticks : int }
  | Mgmt_partition of { dev : string; ticks : int }
  | Agent_crash of { dev : string; ticks : int }
  | Nm_crash
      (** legacy single-NM journal-restart event; the engine maps it to
          [Nm_failover { ticks = 2 }] — kept for repro-file compat *)
  | Nm_failover of { ticks : int }
      (** the acting primary NM crashes; the standby must detect and
          promote *)
  | Ha_partition of { ticks : int }
      (** NM <-> standby partition while agents stay reachable — the
          split-brain scenario epoch fencing must contain *)
  | Standby_crash of { ticks : int }  (** the non-acting node crashes *)
  | Overload of { intensity : float; ticks : int }
      (** management-plane storm: a burst of low-priority telemetry
          requests ([intensity] scales the per-tick burst size) floods the
          channel for [ticks] ticks; the {!Mgmt.Admission} layer must shed
          it without delaying heartbeats or repair scripts *)
  | Peer_nm_crash of { domain : string; ticks : int }
      (** federation: one domain's NM station crashes for [ticks] ticks
          (process down, state intact). Applied by {!Fed_engine} only;
          {!generate} never emits it. *)
  | Inter_domain_partition of { ticks : int }
      (** federation: the NM stations lose each other while both keep
          reaching their own agents. Applied by {!Fed_engine} only. *)

type event = { at : int  (** monitor tick the fault strikes at *); fault : fault }

type t = {
  seed : int;
  ticks : int;  (** chaos phase length, in monitor ticks *)
  tail : int;  (** quiescence tail: clean ticks granted for re-convergence *)
  events : event list;  (** sorted by [at] *)
}

val core_segments : string list
(** The diamond's core segments ([A--B1] ...), the generator's link targets. *)

val transit_devices : string list
val managed_devices : string list

val generate : ?intensity:float -> seed:int -> ticks:int -> unit -> t
(** [generate ~seed ~ticks ()] derives a schedule deterministically from
    [seed]. [intensity] is events per tick (default 0.5). At most one each
    of [Nm_failover], [Ha_partition], [Standby_crash] and [Overload] per
    schedule; the tail is extended when an HA fault is present. *)

(** {1 Rendering and codec} *)

val pp_fault : fault Fmt.t
val pp_event : event Fmt.t
val pp : t Fmt.t
val to_sexp : t -> Conman.Sexp.t
val of_sexp : Conman.Sexp.t -> t
val to_string : t -> string

val of_string : string -> t
(** Raises {!Conman.Sexp.Parse_error} on malformed input. *)
