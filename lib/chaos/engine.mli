(** The chaos engine: runs a {!Schedule.t} against a live diamond
    deployment, forcing quiescence after the chaos phase, and checks the
    global invariants (convergence, bounded oscillation, counter
    conservation, journal-replay equivalence, no stale datapath state).
    Fully deterministic: same schedule, same report. *)

type config = {
  monitor : Conman.Monitor.config;
  oscillation_bound : int option;
      (** max successful reroutes per intent; [None] derives a bound from
          the schedule size, [Some 0] is the deliberately weakened
          invariant used to demonstrate the shrinker *)
}

val default_config : config

type verdict = { name : string; ok : bool; detail : string }

type report = {
  verdicts : verdict list;
  converged_tick : int option;
      (** tail tick at which every intent was healthy, if any *)
  total_repairs : int;  (** successful reroutes across NM incarnations *)
  nm_crashes : int;
  mgmt_counters : string;  (** rendered management fault counters *)
  trace : string list;  (** monitor event log, across NM incarnations *)
}

val run : ?config:config -> Schedule.t -> report

val failures : report -> verdict list
(** The verdicts that did not hold. *)

val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
