(** The chaos engine: runs a {!Schedule.t} against a live diamond
    deployment managed by a primary/standby NM pair (see {!Conman.Ha}),
    forcing quiescence after the chaos phase, and checks the global
    invariants (convergence, bounded oscillation, counter conservation,
    journal-replay equivalence, at most one acting primary per epoch, no
    committed intent lost across failover, no liveness/mutation frame ever
    shed by admission control, convergence despite telemetry storms, no
    stale datapath state). Fully deterministic: same schedule, same
    report. *)

type config = {
  monitor : Conman.Monitor.config;
  oscillation_bound : int option;
      (** max successful reroutes per intent; [None] derives a bound from
          the schedule size, [Some 0] is the deliberately weakened
          invariant used to demonstrate the shrinker *)
}

val default_config : config

type verdict = { name : string; ok : bool; detail : string }

type ha_stats = {
  failovers : int;  (** promotions across both nodes *)
  detection_ticks : int option;
      (** ticks from the first leader crash to the first promotion after
          it; [None] when no crash occurred or none led to a promotion *)
  replayed : int;  (** unconfirmed requests replayed on promotion *)
  split_brain_count : int;
      (** ticks on which two alive nodes acted as primary under the same
          epoch — the fencing invariant requires 0 *)
  lost_intents : int;
      (** intents committed in either journal, never retired, yet missing
          at the final leader — must be 0 *)
  final_epoch : int;
}

type overload_stats = {
  storm_frames : int;
      (** telemetry-storm frames injected by {!Schedule.Overload} events *)
  p0_shed : int;  (** shed+expired heartbeat-class frames — must be 0 *)
  p1_shed : int;  (** shed+expired script-class frames — must be 0 *)
  p2_shed : int;
  p3_shed : int;
  p3_expired : int;
  p3_queue_high_water : int;
  telemetry_final_period_ns : int64;
      (** the acting leader's scrape period at the end of the run — above
          base when shed feedback backed it off and it has not yet decayed *)
  telemetry_backoffs : int;
      (** scrape-period doublings in response to shed feedback *)
}

type report = {
  verdicts : verdict list;
  converged_tick : int option;
      (** tail tick at which every intent was healthy, if any *)
  total_repairs : int;  (** successful reroutes across NM incarnations *)
  nm_crashes : int;
  mgmt_counters : string;  (** rendered management fault counters *)
  trace : string list;  (** monitor event log, across NM incarnations *)
  ha : ha_stats;
  overload : overload_stats;
  goal_trace : string;
      (** the initial achieve goal's rendered span tree, attached to every
          report so a violated invariant ships with its causal history *)
  orphan_spans : int;  (** across every traced goal — a lost context if nonzero *)
  phase_samples : (string * int list) list;
      (** raw latency samples ([ha.failover_detect_ticks]) so a soak can
          merge histograms across seeds before taking percentiles *)
  metrics_json : string;  (** the run's full {!Conman.Obs.Registry} dump *)
}

val run : ?config:config -> Schedule.t -> report

val failures : report -> verdict list
(** The verdicts that did not hold. *)

val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
