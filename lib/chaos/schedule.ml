(* Seeded composite fault schedules.

   A schedule is a timed list of fault events over the diamond testbed,
   generated from a single splitmix64 seed (the same PRNG family the
   management-channel fault layer uses). Times are monitor ticks; every
   fault carries its own duration and the generator caps durations so all
   injected faults end before the quiescence tail begins — convergence is
   therefore decidable: after [ticks] ticks of chaos, the checker gives
   the monitor [tail] clean ticks to re-converge every intent.

   Schedules serialise to sexp (one file per repro) so a minimized
   counterexample can be replayed exactly with [conman chaos --replay]. *)

open Conman

type fault =
  | Link_cut of { seg : string; ticks : int }
  | Link_loss of { seg : string; p : float; ticks : int }
  | Link_corrupt of { seg : string; p : float; ticks : int }
  | Link_flap of { seg : string; cycles : int; down_ms : int; up_ms : int }
  | Mgmt_drop of { p : float; ticks : int }
  | Mgmt_duplicate of { p : float; ticks : int }
  | Mgmt_jitter of { ms : int; ticks : int }
  | Mgmt_partition of { dev : string; ticks : int }
  | Agent_crash of { dev : string; ticks : int }
  | Nm_crash
      (* legacy single-NM event (journal restart); the HA engine maps it
         to [Nm_failover { ticks = 2 }] — kept for repro-file compat *)
  | Nm_failover of { ticks : int }
      (* the acting primary NM station crashes for [ticks] ticks: the
         standby must detect the silence and promote itself *)
  | Ha_partition of { ticks : int }
      (* NM <-> standby management partition: heartbeats and journal
         shipping stop both ways while agents stay reachable — the
         split-brain scenario epoch fencing must contain *)
  | Standby_crash of { ticks : int }
      (* the non-acting node crashes — including mid-promotion when it
         follows an [Nm_failover] *)
  | Overload of { intensity : float; ticks : int }
      (* management-plane storm: a burst of low-priority telemetry
         requests floods the channel every tick for [ticks] ticks; the
         admission layer must shed it without touching P0/P1 traffic *)
  | Peer_nm_crash of { domain : string; ticks : int }
      (* federation: one domain's NM station crashes for [ticks] ticks
         (process down, state intact — a warm restart); the inter-NM
         two-phase commit must ride it out or back out cleanly. Only the
         federated engine applies it; [generate] never emits it. *)
  | Inter_domain_partition of { ticks : int }
      (* federation: the two NM stations lose each other while both keep
         reaching their own agents — commits and aborts stall until the
         retransmission discipline delivers them after the heal *)

type event = { at : int; fault : fault }
type t = { seed : int; ticks : int; tail : int; events : event list }

(* The diamond's managed core: the only segments and transit devices the
   generator targets. Cutting an edge segment (e.g. D--A) would make the
   goal unsatisfiable by construction rather than exercise repair. *)
let core_segments = [ "A--B1"; "A--B2"; "B1--C"; "B2--C" ]
let transit_devices = [ "id-B1"; "id-B2" ]
let managed_devices = [ "id-A"; "id-B1"; "id-B2"; "id-C" ]

let pp_fault ppf = function
  | Link_cut { seg; ticks } -> Fmt.pf ppf "cut %s for %d ticks" seg ticks
  | Link_loss { seg; p; ticks } -> Fmt.pf ppf "loss %.2f on %s for %d ticks" p seg ticks
  | Link_corrupt { seg; p; ticks } -> Fmt.pf ppf "corrupt %.2f on %s for %d ticks" p seg ticks
  | Link_flap { seg; cycles; down_ms; up_ms } ->
      Fmt.pf ppf "flap %s x%d (%dms down / %dms up)" seg cycles down_ms up_ms
  | Mgmt_drop { p; ticks } -> Fmt.pf ppf "mgmt drop %.2f for %d ticks" p ticks
  | Mgmt_duplicate { p; ticks } -> Fmt.pf ppf "mgmt duplicate %.2f for %d ticks" p ticks
  | Mgmt_jitter { ms; ticks } -> Fmt.pf ppf "mgmt jitter %dms for %d ticks" ms ticks
  | Mgmt_partition { dev; ticks } -> Fmt.pf ppf "mgmt partition %s for %d ticks" dev ticks
  | Agent_crash { dev; ticks } -> Fmt.pf ppf "agent crash %s for %d ticks" dev ticks
  | Nm_crash -> Fmt.pf ppf "NM crash + journal recovery"
  | Nm_failover { ticks } -> Fmt.pf ppf "primary NM crash for %d ticks (failover)" ticks
  | Ha_partition { ticks } -> Fmt.pf ppf "NM<->standby partition for %d ticks" ticks
  | Standby_crash { ticks } -> Fmt.pf ppf "standby NM crash for %d ticks" ticks
  | Overload { intensity; ticks } ->
      Fmt.pf ppf "mgmt overload %.2f for %d ticks (telemetry storm)" intensity ticks
  | Peer_nm_crash { domain; ticks } -> Fmt.pf ppf "%s NM crash for %d ticks" domain ticks
  | Inter_domain_partition { ticks } -> Fmt.pf ppf "inter-domain NM partition for %d ticks" ticks

let pp_event ppf e = Fmt.pf ppf "@t=%d %a" e.at pp_fault e.fault

let pp ppf t =
  Fmt.pf ppf "schedule seed=%d ticks=%d tail=%d (%d events)@." t.seed t.ticks t.tail
    (List.length t.events);
  List.iter (fun e -> Fmt.pf ppf "  %a@." pp_event e) t.events

(* --- generation --------------------------------------------------------- *)

(* Weighted fault-kind menu. [intensity] scales the event count (events per
   tick of schedule); NM crashes are rare and capped at one per schedule so
   a single journal-recovery episode stays analysable. *)
let generate ?(intensity = 0.5) ~seed ~ticks () =
  let prng = Mgmt.Faults.Prng.create seed in
  let pick xs = List.nth xs (Mgmt.Faults.Prng.below prng (List.length xs)) in
  let n_events = max 1 (int_of_float (intensity *. float_of_int ticks)) in
  let failovers = ref 0 in
  let ha_partitions = ref 0 in
  let standby_crashes = ref 0 in
  let overloads = ref 0 in
  let duration ~at = max 1 (min (1 + Mgmt.Faults.Prng.below prng 3) (ticks - at)) in
  (* HA faults must outlast the failure detector (~phi ticks of silence)
     or nothing interesting happens before the revert *)
  let ha_duration () = 3 + Mgmt.Faults.Prng.below prng 3 in
  let rec gen_one () =
    (* weights: data-plane faults dominate; NM-level faults are the rare
       events, capped at one each so an episode stays analysable *)
    let kind =
      pick
        [ `Cut; `Cut; `Cut; `Loss; `Loss; `Corrupt; `Flap; `Flap; `Drop; `Drop; `Dup; `Jitter;
          `Partition; `Agent; `Agent; `Failover; `HaPartition; `StandbyCrash; `Overload ]
    in
    let at = Mgmt.Faults.Prng.below prng (max 1 (ticks - 1)) in
    match kind with
    | `Cut -> { at; fault = Link_cut { seg = pick core_segments; ticks = duration ~at } }
    | `Loss ->
        let p = 0.1 +. (0.4 *. Mgmt.Faults.Prng.uniform prng) in
        { at; fault = Link_loss { seg = pick core_segments; p; ticks = duration ~at } }
    | `Corrupt ->
        let p = 0.1 +. (0.3 *. Mgmt.Faults.Prng.uniform prng) in
        { at; fault = Link_corrupt { seg = pick core_segments; p; ticks = duration ~at } }
    | `Flap ->
        let cycles = 1 + Mgmt.Faults.Prng.below prng 2 in
        let down_ms = 100 + (100 * Mgmt.Faults.Prng.below prng 3) in
        let up_ms = 100 + (100 * Mgmt.Faults.Prng.below prng 3) in
        (* a flap schedules its own cut/restore events on the queue: make
           sure the whole pattern has played out before the tail starts *)
        let span = 1 + ((cycles * (down_ms + up_ms) + 499) / 500) in
        let at = min at (max 0 (ticks - span)) in
        { at; fault = Link_flap { seg = pick core_segments; cycles; down_ms; up_ms } }
    | `Drop ->
        let p = 0.1 +. (0.3 *. Mgmt.Faults.Prng.uniform prng) in
        { at; fault = Mgmt_drop { p; ticks = duration ~at } }
    | `Dup ->
        let p = 0.1 +. (0.4 *. Mgmt.Faults.Prng.uniform prng) in
        { at; fault = Mgmt_duplicate { p; ticks = duration ~at } }
    | `Jitter ->
        let ms = 20 + (20 * Mgmt.Faults.Prng.below prng 4) in
        { at; fault = Mgmt_jitter { ms; ticks = duration ~at } }
    | `Partition ->
        { at; fault = Mgmt_partition { dev = pick managed_devices; ticks = duration ~at } }
    | `Agent -> { at; fault = Agent_crash { dev = pick transit_devices; ticks = duration ~at } }
    | `Failover ->
        if !failovers >= 1 then gen_one ()
        else begin
          incr failovers;
          { at; fault = Nm_failover { ticks = ha_duration () } }
        end
    | `HaPartition ->
        if !ha_partitions >= 1 then gen_one ()
        else begin
          incr ha_partitions;
          { at; fault = Ha_partition { ticks = ha_duration () } }
        end
    | `StandbyCrash ->
        if !standby_crashes >= 1 then gen_one ()
        else begin
          incr standby_crashes;
          { at; fault = Standby_crash { ticks = duration ~at } }
        end
    | `Overload ->
        if !overloads >= 1 then gen_one ()
        else begin
          incr overloads;
          let burst = 0.25 +. (0.5 *. Mgmt.Faults.Prng.uniform prng) in
          { at; fault = Overload { intensity = burst; ticks = duration ~at } }
        end
  in
  let events =
    List.init n_events (fun _ -> gen_one ())
    |> List.stable_sort (fun a b -> compare a.at b.at)
  in
  let has_ha =
    List.exists
      (fun e ->
        match e.fault with
        | Nm_crash | Nm_failover _ | Ha_partition _ | Standby_crash _ -> true
        | _ -> false)
      events
  in
  (* failover + replay + reconvergence needs a longer clean tail than
     data-plane repair alone *)
  { seed; ticks; tail = (if has_ha then max 12 (ticks / 2) else max 6 (ticks / 2)); events }

(* --- sexp codec --------------------------------------------------------- *)

let fl f = Sexp.atom (Printf.sprintf "%.4f" f)

let to_fl s =
  let a = Sexp.to_atom s in
  match float_of_string_opt a with
  | Some f -> f
  | None -> raise (Sexp.Parse_error ("not a float: " ^ a))

let fault_to_sexp = function
  | Link_cut { seg; ticks } -> Sexp.list [ Sexp.atom "cut"; Sexp.atom seg; Sexp.of_int ticks ]
  | Link_loss { seg; p; ticks } ->
      Sexp.list [ Sexp.atom "loss"; Sexp.atom seg; fl p; Sexp.of_int ticks ]
  | Link_corrupt { seg; p; ticks } ->
      Sexp.list [ Sexp.atom "corrupt"; Sexp.atom seg; fl p; Sexp.of_int ticks ]
  | Link_flap { seg; cycles; down_ms; up_ms } ->
      Sexp.list
        [ Sexp.atom "flap"; Sexp.atom seg; Sexp.of_int cycles; Sexp.of_int down_ms;
          Sexp.of_int up_ms ]
  | Mgmt_drop { p; ticks } -> Sexp.list [ Sexp.atom "mgmt-drop"; fl p; Sexp.of_int ticks ]
  | Mgmt_duplicate { p; ticks } ->
      Sexp.list [ Sexp.atom "mgmt-duplicate"; fl p; Sexp.of_int ticks ]
  | Mgmt_jitter { ms; ticks } ->
      Sexp.list [ Sexp.atom "mgmt-jitter"; Sexp.of_int ms; Sexp.of_int ticks ]
  | Mgmt_partition { dev; ticks } ->
      Sexp.list [ Sexp.atom "mgmt-partition"; Sexp.atom dev; Sexp.of_int ticks ]
  | Agent_crash { dev; ticks } ->
      Sexp.list [ Sexp.atom "agent-crash"; Sexp.atom dev; Sexp.of_int ticks ]
  | Nm_crash -> Sexp.list [ Sexp.atom "nm-crash" ]
  | Nm_failover { ticks } -> Sexp.list [ Sexp.atom "nm-failover"; Sexp.of_int ticks ]
  | Ha_partition { ticks } -> Sexp.list [ Sexp.atom "ha-partition"; Sexp.of_int ticks ]
  | Standby_crash { ticks } -> Sexp.list [ Sexp.atom "standby-crash"; Sexp.of_int ticks ]
  | Overload { intensity; ticks } ->
      Sexp.list [ Sexp.atom "overload"; fl intensity; Sexp.of_int ticks ]
  | Peer_nm_crash { domain; ticks } ->
      Sexp.list [ Sexp.atom "peer-nm-crash"; Sexp.atom domain; Sexp.of_int ticks ]
  | Inter_domain_partition { ticks } ->
      Sexp.list [ Sexp.atom "inter-domain-partition"; Sexp.of_int ticks ]

let fault_of_sexp s =
  match Sexp.to_list s with
  | [ Sexp.Atom "cut"; seg; ticks ] ->
      Link_cut { seg = Sexp.to_atom seg; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "loss"; seg; p; ticks ] ->
      Link_loss { seg = Sexp.to_atom seg; p = to_fl p; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "corrupt"; seg; p; ticks ] ->
      Link_corrupt { seg = Sexp.to_atom seg; p = to_fl p; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "flap"; seg; cycles; down_ms; up_ms ] ->
      Link_flap
        {
          seg = Sexp.to_atom seg;
          cycles = Sexp.to_int cycles;
          down_ms = Sexp.to_int down_ms;
          up_ms = Sexp.to_int up_ms;
        }
  | [ Sexp.Atom "mgmt-drop"; p; ticks ] -> Mgmt_drop { p = to_fl p; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "mgmt-duplicate"; p; ticks ] ->
      Mgmt_duplicate { p = to_fl p; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "mgmt-jitter"; ms; ticks ] ->
      Mgmt_jitter { ms = Sexp.to_int ms; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "mgmt-partition"; dev; ticks ] ->
      Mgmt_partition { dev = Sexp.to_atom dev; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "agent-crash"; dev; ticks ] ->
      Agent_crash { dev = Sexp.to_atom dev; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "nm-crash" ] -> Nm_crash
  | [ Sexp.Atom "nm-failover"; ticks ] -> Nm_failover { ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "ha-partition"; ticks ] -> Ha_partition { ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "standby-crash"; ticks ] -> Standby_crash { ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "overload"; intensity; ticks ] ->
      Overload { intensity = to_fl intensity; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "peer-nm-crash"; domain; ticks ] ->
      Peer_nm_crash { domain = Sexp.to_atom domain; ticks = Sexp.to_int ticks }
  | [ Sexp.Atom "inter-domain-partition"; ticks ] ->
      Inter_domain_partition { ticks = Sexp.to_int ticks }
  | _ -> raise (Sexp.Parse_error "chaos fault")

let to_sexp t =
  Sexp.list
    [
      Sexp.atom "chaos";
      Sexp.list [ Sexp.atom "seed"; Sexp.of_int t.seed ];
      Sexp.list [ Sexp.atom "ticks"; Sexp.of_int t.ticks ];
      Sexp.list [ Sexp.atom "tail"; Sexp.of_int t.tail ];
      Sexp.list
        (Sexp.atom "events"
        :: List.map
             (fun e -> Sexp.list [ Sexp.of_int e.at; fault_to_sexp e.fault ])
             t.events);
    ]

let of_sexp s =
  match Sexp.to_list s with
  | [ Sexp.Atom "chaos"; seed; ticks; tail; events ] ->
      let field name sx =
        match Sexp.to_list sx with
        | [ Sexp.Atom n; v ] when n = name -> Sexp.to_int v
        | _ -> raise (Sexp.Parse_error ("chaos schedule field " ^ name))
      in
      let events =
        match Sexp.to_list events with
        | Sexp.Atom "events" :: evs ->
            List.map
              (fun ev ->
                match Sexp.to_list ev with
                | [ at; f ] -> { at = Sexp.to_int at; fault = fault_of_sexp f }
                | _ -> raise (Sexp.Parse_error "chaos event"))
              evs
        | _ -> raise (Sexp.Parse_error "chaos events")
      in
      {
        seed = field "seed" seed;
        ticks = field "ticks" ticks;
        tail = field "tail" tail;
        events;
      }
  | _ -> raise (Sexp.Parse_error "chaos schedule")

let to_string t = Sexp.to_string (to_sexp t)
let of_string s = of_sexp (Sexp.of_string s)
