(* Failure shrinking: given a schedule whose run violates an invariant,
   greedily minimize it while the violation reproduces. Determinism makes
   this cheap — re-running a candidate schedule is the only oracle needed.

   Two passes to a fixpoint:
     1. drop events one at a time (keep the removal if it still fails);
     2. weaken the survivors — halve durations, loss probabilities and
        flap cycles — and shorten the schedule itself.

   The result is the minimized repro the CLI writes next to the failure,
   re-runnable exactly with `conman chaos --replay FILE`. *)

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

let weaken_fault (f : Schedule.fault) =
  let half n = max 1 (n / 2) in
  match f with
  | Schedule.Link_cut { seg; ticks } when ticks > 1 -> Some (Schedule.Link_cut { seg; ticks = half ticks })
  | Schedule.Link_loss { seg; p; ticks } when ticks > 1 ->
      Some (Schedule.Link_loss { seg; p; ticks = half ticks })
  | Schedule.Link_corrupt { seg; p; ticks } when ticks > 1 ->
      Some (Schedule.Link_corrupt { seg; p; ticks = half ticks })
  | Schedule.Link_flap { seg; cycles; down_ms; up_ms } when cycles > 1 ->
      Some (Schedule.Link_flap { seg; cycles = half cycles; down_ms; up_ms })
  | Schedule.Mgmt_drop { p; ticks } when ticks > 1 ->
      Some (Schedule.Mgmt_drop { p; ticks = half ticks })
  | Schedule.Mgmt_duplicate { p; ticks } when ticks > 1 ->
      Some (Schedule.Mgmt_duplicate { p; ticks = half ticks })
  | Schedule.Mgmt_jitter { ms; ticks } when ticks > 1 ->
      Some (Schedule.Mgmt_jitter { ms; ticks = half ticks })
  | Schedule.Mgmt_partition { dev; ticks } when ticks > 1 ->
      Some (Schedule.Mgmt_partition { dev; ticks = half ticks })
  | Schedule.Agent_crash { dev; ticks } when ticks > 1 ->
      Some (Schedule.Agent_crash { dev; ticks = half ticks })
  | Schedule.Peer_nm_crash { domain; ticks } when ticks > 1 ->
      Some (Schedule.Peer_nm_crash { domain; ticks = half ticks })
  | Schedule.Inter_domain_partition { ticks } when ticks > 1 ->
      Some (Schedule.Inter_domain_partition { ticks = half ticks })
  | _ -> None

type result = { minimized : Schedule.t; runs : int }

(* [failing sched] must return true iff running [sched] still exhibits the
   original violation. The caller decides what "the violation" means —
   usually: the same invariant names fail. *)
let minimize ~failing (sched : Schedule.t) =
  let runs = ref 0 in
  let still_fails s =
    incr runs;
    failing s
  in
  (* pass 1: greedy event drops to a fixpoint *)
  let rec drop_pass (s : Schedule.t) =
    let n = List.length s.Schedule.events in
    let rec try_drop i =
      if i >= n then None
      else
        let candidate = { s with Schedule.events = drop_nth i s.Schedule.events } in
        if still_fails candidate then Some candidate else try_drop (i + 1)
    in
    match try_drop 0 with Some s' -> drop_pass s' | None -> s
  in
  let s = drop_pass sched in
  (* pass 2: weaken surviving events, one at a time, to a fixpoint *)
  let rec weaken_pass (s : Schedule.t) =
    let arr = Array.of_list s.Schedule.events in
    let rec try_weaken i =
      if i >= Array.length arr then None
      else
        let e = arr.(i) in
        match weaken_fault e.Schedule.fault with
        | None -> try_weaken (i + 1)
        | Some f ->
            let events =
              List.mapi
                (fun j e' -> if j = i then { e' with Schedule.fault = f } else e')
                s.Schedule.events
            in
            let candidate = { s with Schedule.events } in
            if still_fails candidate then Some candidate else try_weaken (i + 1)
    in
    match try_weaken 0 with Some s' -> weaken_pass s' | None -> s
  in
  let s = weaken_pass s in
  (* pass 3: shorten the chaos phase itself if the events fit *)
  let last_at = List.fold_left (fun acc e -> max acc e.Schedule.at) 0 s.Schedule.events in
  let rec shorten (s : Schedule.t) =
    if s.Schedule.ticks <= last_at + 2 then s
    else
      let candidate = { s with Schedule.ticks = max (last_at + 2) (s.Schedule.ticks / 2) } in
      if still_fails candidate then shorten candidate else s
  in
  let s = if s.Schedule.events = [] then s else shorten s in
  { minimized = s; runs = !runs }
