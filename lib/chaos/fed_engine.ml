(* Chaos over the federated two-domain deployment: a seeded schedule of
   management-channel faults plus the two federation-specific events —
   Peer_nm_crash (one domain's NM station goes down, state intact) and
   Inter_domain_partition (the NM stations lose each other while both
   keep reaching their own agents) — driven against the cross-domain
   chain goal, then checked against the federation invariants:

     1. convergence — the cross-domain goal is achieved and the customer
        edges are reachable within the quiescence tail;
     2. no half-configured stitched pipe — after every back-out and the
        final convergence, every device's structural configuration equals
        either the pristine or the fully-configured state of an
        equivalent fault-free single-NM run; nothing in between;
     3. write boundary — neither NM ever sent a state-changing request to
        a device in the other's domain;
     4. configuration parity — the converged federated configuration is
        exactly the single-NM one (same deterministic generator, so any
        divergence is a protocol bug, not noise).

   Fully deterministic: same schedule, same report. *)

open Conman
module Fed = Federation.Fed
module Fs = Federation.Fed_scenarios

let chain_n = 4
let interval_ns = 500_000_000L

type verdict = Engine.verdict = { name : string; ok : bool; detail : string }

type report = {
  verdicts : verdict list;
  converged_tick : int option; (* tail tick at which the goal was achieved *)
  replans : int;
  backouts : int;
  relays : int;
  foreign_writes : int; (* across both NMs — must be 0 *)
  half_configured : int; (* devices neither pristine nor fully configured at the end *)
  commits_received : int;
  aborts_received : int;
  goal_trace : string; (* rendered span tree of the cross-domain goal *)
  orphan_spans : int; (* spans whose parent vanished — must be 0 *)
  trace_connected : bool;
  total_spans : int; (* spans in the goal's tree *)
  phase_samples : (string * int list) list;
  (* raw per-phase latency samples (fed.plan/commit/abort_ticks) so a
     soak can merge histograms across seeds before taking percentiles *)
  metrics_json : string; (* the run's full registry dump *)
}

let failures r = List.filter (fun v -> not v.ok) r.verdicts

let pp_verdict ppf v =
  Fmt.pf ppf "[%s] %s%s" (if v.ok then "ok" else "VIOLATED") v.name
    (if v.detail = "" then "" else ": " ^ v.detail)

let pp_report ppf r =
  List.iter (fun v -> Fmt.pf ppf "%a@." pp_verdict v) r.verdicts;
  Fmt.pf ppf "replans=%d backouts=%d relays=%d commits=%d aborts=%d@." r.replans r.backouts
    r.relays r.commits_received r.aborts_received;
  (* a violated invariant ships with the goal's causal trace: the span
     tree is the first thing one reads when triaging a repro *)
  if List.exists (fun v -> not v.ok) r.verdicts && r.goal_trace <> "" then
    Fmt.pf ppf "goal trace:@.%s@." r.goal_trace

(* --- schedule generation -------------------------------------------------- *)

(* Unlike the diamond generator, both federation events are FORCED into
   every schedule: the soak's purpose is to exercise the inter-NM
   protocol under NM loss and partition, not to sometimes do so. The
   background menu is channel-level only — the data plane stays healthy
   so any convergence failure is attributable to the protocol. *)
let generate ?(intensity = 0.5) ~seed ~ticks () =
  let prng = Mgmt.Faults.Prng.create seed in
  let pick xs = List.nth xs (Mgmt.Faults.Prng.below prng (List.length xs)) in
  let duration ~at = max 1 (min (2 + Mgmt.Faults.Prng.below prng 3) (ticks - at)) in
  let at_of span = Mgmt.Faults.Prng.below prng (max 1 span) in
  let crash_at = at_of (ticks - 1) in
  let crash =
    {
      Schedule.at = crash_at;
      fault =
        Schedule.Peer_nm_crash { domain = pick [ "west"; "east" ]; ticks = duration ~at:crash_at };
    }
  in
  let part_at = at_of (ticks - 1) in
  let part =
    {
      Schedule.at = part_at;
      fault = Schedule.Inter_domain_partition { ticks = duration ~at:part_at };
    }
  in
  let n_extra = max 0 (int_of_float (intensity *. float_of_int ticks) - 2) in
  let extra =
    List.init n_extra (fun _ ->
        let at = at_of (ticks - 1) in
        match pick [ `Drop; `Drop; `Dup; `Jitter ] with
        | `Drop ->
            let p = 0.1 +. (0.3 *. Mgmt.Faults.Prng.uniform prng) in
            { Schedule.at; fault = Schedule.Mgmt_drop { p; ticks = duration ~at } }
        | `Dup ->
            let p = 0.1 +. (0.4 *. Mgmt.Faults.Prng.uniform prng) in
            { Schedule.at; fault = Schedule.Mgmt_duplicate { p; ticks = duration ~at } }
        | `Jitter ->
            let ms = 20 + (20 * Mgmt.Faults.Prng.below prng 4) in
            { Schedule.at; fault = Schedule.Mgmt_jitter { ms; ticks = duration ~at } })
  in
  let events =
    crash :: part :: extra |> List.stable_sort (fun a b -> compare a.Schedule.at b.Schedule.at)
  in
  (* a wedged commit round only times out after Fed's commit_timeout, and
     the replan needs the full plan->commit->ack exchange: grant a long
     clean tail so convergence stays decidable *)
  { Schedule.seed; ticks; tail = max 24 ticks; events }

(* --- invariant helpers ----------------------------------------------------- *)

(* The structural part of a show_actual report: per-module state keys,
   minus transient pending[..] negotiation state. *)
let structural_keys nm dev =
  match Nm.show_actual nm dev with
  | None -> None
  | Some state ->
      Some
        (List.concat_map
           (fun ((m : Ids.t), kvs) ->
             List.filter_map
               (fun (k, _) ->
                 if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
                 else Some (Ids.qualified m ^ "/" ^ k))
               kvs)
           state
        |> List.sort_uniq compare)

(* Fault-free single-NM run over the same testbed: the oracle for both
   the all-or-nothing check and configuration parity. *)
let baselines () =
  Nm.set_incarnations 0;
  let c = Scenarios.build_chain chain_n in
  let devs = c.Scenarios.cscope in
  let pristine = List.map (fun d -> (d, structural_keys c.Scenarios.cnm d)) devs in
  (match Nm.achieve c.Scenarios.cnm c.Scenarios.cgoal with
  | Ok _ -> ()
  | Error e -> failwith ("baseline achieve failed: " ^ e));
  Nm.run c.Scenarios.cnm;
  let configured = List.map (fun d -> (d, structural_keys c.Scenarios.cnm d)) devs in
  (pristine, configured)

(* --- the run ---------------------------------------------------------------- *)

let run (sched : Schedule.t) =
  let pristine, configured = baselines () in
  Nm.set_incarnations 0;
  (* span ids feed the rendered tree: pin the allocator so the same
     schedule always yields the same trace *)
  Obs.Trace.reset_ids ();
  let t = Fs.build_two_domain ~fault_seed:sched.Schedule.seed chain_n in
  let obs = Fs.instrument t in
  let faults = t.Fs.ffaults in
  let net = Nm.net (Fed.nm t.Fs.fwest) in
  let eq = Netsim.Net.eq net in
  let station_of = function "east" -> Fs.east_station | _ -> Fs.west_station in
  let reverts = ref [] in
  let fire_reverts tick =
    let due, rest = List.partition (fun (at, _) -> at <= tick) !reverts in
    reverts := rest;
    List.iter (fun (_, undo) -> undo ()) due
  in
  let apply tick (e : Schedule.event) =
    let until ticks undo = reverts := (tick + ticks, undo) :: !reverts in
    match e.Schedule.fault with
    | Schedule.Mgmt_drop { p; ticks } ->
        Mgmt.Faults.set_drop faults p;
        until ticks (fun () -> Mgmt.Faults.set_drop faults 0.0)
    | Schedule.Mgmt_duplicate { p; ticks } ->
        Mgmt.Faults.set_duplicate faults p;
        until ticks (fun () -> Mgmt.Faults.set_duplicate faults 0.0)
    | Schedule.Mgmt_jitter { ms; ticks } ->
        Mgmt.Faults.set_jitter faults (Int64.mul (Int64.of_int ms) 1_000_000L);
        until ticks (fun () -> Mgmt.Faults.set_jitter faults 0L)
    | Schedule.Peer_nm_crash { domain; ticks } ->
        let st = station_of domain in
        if not (Mgmt.Faults.is_crashed faults st) then begin
          Mgmt.Faults.crash faults st;
          until ticks (fun () -> Mgmt.Faults.restart faults st)
        end
    | Schedule.Inter_domain_partition { ticks } ->
        let w = Fs.west_station and e = Fs.east_station in
        Mgmt.Faults.set_drop faults ~src:w ~dst:e 1.0;
        Mgmt.Faults.set_drop faults ~src:e ~dst:w 1.0;
        until ticks (fun () ->
            Mgmt.Faults.set_drop faults ~src:w ~dst:e 0.0;
            Mgmt.Faults.set_drop faults ~src:e ~dst:w 0.0)
    | _ ->
        (* diamond-only events have no meaning here; replaying a mixed
           repro file simply skips them *)
        ()
  in
  (* one engine tick: each NM that is up runs its protocol step, then the
     network advances one bounded interval. A crashed station's node is
     not ticked — the process is down; its state survives for restart. *)
  let fed_tick tick =
    Observe.set_tick obs tick;
    if not (Mgmt.Faults.is_crashed faults Fs.west_station) then Fed.tick t.Fs.fwest ~tick;
    if not (Mgmt.Faults.is_crashed faults Fs.east_station) then Fed.tick t.Fs.feast ~tick;
    ignore (Netsim.Net.run_until net ~deadline:(Int64.add (Netsim.Event_queue.now eq) interval_ns))
  in
  let gid = Fed.submit t.Fs.fwest t.Fs.fgoal in
  (* --- chaos phase ---- *)
  for tick = 0 to sched.Schedule.ticks - 1 do
    fire_reverts tick;
    List.iter (fun e -> if e.Schedule.at = tick then apply tick e) sched.Schedule.events;
    fed_tick tick
  done;
  (* --- force quiescence ---- *)
  fire_reverts max_int;
  Mgmt.Faults.clear faults;
  (* --- quiescence tail ---- *)
  let converged = ref None in
  let tail_tick = ref 0 in
  while !converged = None && !tail_tick < sched.Schedule.tail do
    incr tail_tick;
    fed_tick (sched.Schedule.ticks + !tail_tick - 1);
    if Fed.achieved t.Fs.fwest gid && Fs.two_domain_reachable t then converged := Some !tail_tick
  done;
  (* --- verdicts ---- *)
  let owner_nm dev =
    if List.mem dev t.Fs.fwest_devices then Fed.nm t.Fs.fwest else Fed.nm t.Fs.feast
  in
  let finals = List.map (fun d -> (d, structural_keys (owner_nm d) d)) t.Fs.fscope in
  let half =
    List.filter
      (fun (d, keys) -> keys <> List.assoc d pristine && keys <> List.assoc d configured)
      finals
  in
  let mismatched =
    List.filter (fun (d, keys) -> keys <> List.assoc d configured) finals
  in
  let fw = Nm.foreign_writes (Fed.nm t.Fs.fwest) + Nm.foreign_writes (Fed.nm t.Fs.feast) in
  let v_convergence =
    match !converged with
    | Some tk ->
        {
          name = "convergence";
          ok = true;
          detail = Printf.sprintf "cross-domain goal achieved %d tick(s) into the tail" tk;
        }
    | None ->
        {
          name = "convergence";
          ok = false;
          detail =
            Printf.sprintf "goal not achieved after %d tail ticks (reachable=%b replans=%d)"
              sched.Schedule.tail (Fs.two_domain_reachable t)
              (Fed.replans t.Fs.fwest);
        }
  in
  let v_half =
    match half with
    | [] ->
        { name = "no-half-configured"; ok = true; detail = "every device all-or-nothing" }
    | l ->
        {
          name = "no-half-configured";
          ok = false;
          detail = "partial configuration on " ^ String.concat ", " (List.map fst l);
        }
  in
  let v_boundary =
    {
      name = "write-boundary";
      ok = fw = 0;
      detail = Printf.sprintf "%d state-changing request(s) crossed a domain boundary" fw;
    }
  in
  let v_parity =
    match (!converged, mismatched) with
    | None, _ -> { name = "show-actual-parity"; ok = false; detail = "not converged" }
    | Some _, [] ->
        { name = "show-actual-parity"; ok = true; detail = "matches the single-NM run" }
    | Some _, l ->
        {
          name = "show-actual-parity";
          ok = false;
          detail = "diverges from the single-NM run on " ^ String.concat ", " (List.map fst l);
        }
  in
  (* Trace connectivity: every span minted on the goal's behalf — by
     either NM, any agent, the transport's retry events — must hang off
     the single "fed-goal" root; an orphan means a context was lost
     crossing a layer. *)
  let cols = Observe.collectors obs in
  let goal_id =
    match Fed.goal_trace t.Fs.fwest gid with
    | Some ctx -> Some ctx.Obs.Trace.goal
    | None -> None
  in
  let goal_trace, orphan_spans, trace_connected =
    match goal_id with
    | None -> ("", 0, false)
    | Some g -> (Obs.Trace.render cols g, List.length (Obs.Trace.orphans cols g), Obs.Trace.connected cols g)
  in
  let v_trace =
    {
      name = "trace-connected";
      ok = trace_connected && orphan_spans = 0;
      detail =
        (if trace_connected then
           Printf.sprintf "%d span(s), one root, zero orphans"
             (match goal_id with Some g -> List.length (Obs.Trace.goal_spans cols g) | None -> 0)
         else Printf.sprintf "%d orphan span(s)" orphan_spans);
    }
  in
  {
    verdicts = [ v_convergence; v_half; v_boundary; v_parity; v_trace ];
    converged_tick = !converged;
    replans = Fed.replans t.Fs.fwest;
    backouts = Fed.backouts t.Fs.fwest;
    relays = Fed.relays t.Fs.fwest + Fed.relays t.Fs.feast;
    foreign_writes = fw;
    half_configured = List.length half;
    commits_received = Fed.commits_received t.Fs.feast + Fed.commits_received t.Fs.fwest;
    aborts_received = Fed.aborts_received t.Fs.feast + Fed.aborts_received t.Fs.fwest;
    goal_trace;
    orphan_spans;
    trace_connected;
    total_spans =
      (match goal_id with Some g -> List.length (Obs.Trace.goal_spans cols g) | None -> 0);
    phase_samples =
      List.map
        (fun k -> (k, Obs.Registry.samples (Observe.registry obs) k))
        [ "fed.plan_ticks"; "fed.commit_ticks"; "fed.abort_ticks" ];
    metrics_json = Obs.Registry.to_json (Observe.registry obs);
  }
