(** The self-healing reconciliation loop.

    A periodic task that keeps every live {!Intent.t} healthy: each tick
    advances the simulation one interval (scheduled link faults fire in
    place thanks to {!Netsim.Net.run_until}), end-to-end probes and a
    [show_actual]-based drift check classify each intent, and the repair
    ladder is: resync the script on drift, re-achieve over the next-best
    path (avoiding diagnosed-failing devices, backing the stale script
    out) on a dead path, and escalate to the NM's error report after a
    bounded number of attempts.

    With a {!Telemetry.t} attached, a failed probe first consults the
    counter-based root-cause localizer and the diagnosis picks the first
    repair rung: a cut link, lossy segment or unreachable agent skips
    resync and goes straight to re-achieving around the path; a
    misconfigured module resyncs the script in place first. *)

type config = {
  interval_ns : int64;  (** virtual time between reconciliation ticks *)
  probe_slack_ns : int64;
      (** extra horizon granted to probes/repairs within a tick — keep it
          below the interval so faults scheduled for later ticks stay put *)
  max_repair_attempts : int;
      (** consecutive failed repairs before an intent is escalated *)
}

val default_config : config
(** 500 ms interval, 100 ms slack, 4 attempts. *)

type event = { ev_time : int64; ev_intent : int; ev_what : string }

type t

val create : ?config:config -> ?telemetry:Telemetry.t -> Nm.t -> t
(** [telemetry] attaches a scrape store: each tick keeps it warm, and a
    failed probe scrapes + localizes before picking a repair rung. *)

val tick : t -> unit
(** One reconciliation round: advance virtual time by the interval, then
    probe / drift-check / repair every live intent. *)

val run : t -> ticks:int -> unit

(** {1 Observation} *)

val ticks : t -> int
val repairs : t -> int
(** Successful re-achievements over an alternate path. *)

val resyncs : t -> int
(** Drift repairs (script re-sent in place). *)

val escalations : t -> int
val events : t -> event list
(** Oldest first. The log is a bounded drop-oldest ring (default 10_000
    events) so long soaks can't grow memory without bound. *)

val set_event_limit : t -> int -> unit
(** Caps the event log; clamps to at least 1. Oldest events are dropped
    (and counted) once the cap is exceeded. *)

val event_limit : t -> int

val dropped_events : t -> int
(** Events evicted from the ring since creation. *)

val pp_event : event Fmt.t
val pp_health : t Fmt.t
(** The per-intent health table plus loop counters. *)
