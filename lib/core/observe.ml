(* One-stop observability wiring for a deployment: a shared metrics
   registry plus one span collector per NM station, with the transport
   and admission layers' anonymous events (retries, sheds) decoded back
   to the owning goal's span. Scenario builders, the chaos engines, the
   CLI and the bench all hang their instrumentation off this instead of
   re-plumbing each layer by hand. *)

type t = {
  registry : Obs.Registry.t;
  mutable collectors : Obs.Trace.t list;
  mutable tick : int; (* shared logical clock stamped onto spans/events *)
}

let create () = { registry = Obs.Registry.create (); collectors = []; tick = 0 }
let registry t = t.registry
let collectors t = t.collectors
let set_tick t n = t.tick <- n
let tick t = t.tick

(* The mgmt layers are payload-agnostic: they hand us raw bytes. Decode,
   fish the trace context out (however deep under Fenced/Traced), and land
   the event on the owning span wherever it lives. Untraced or undecodable
   payloads have no goal to attribute to and are dropped. *)
let route t payload what =
  match Wire.decode payload with
  | exception _ -> ()
  | msg -> (
      match Wire.trace_of msg with
      | Some ctx -> Obs.Trace.route_event t.collectors ctx what
      | None -> ())

let pfx prefix sub = match prefix with Some p -> p ^ "_" ^ sub | None -> sub

(* Merge several (name, count) lists, summing shared names. *)
let sum_counters lists =
  List.fold_left
    (fun acc kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let cur = Option.value ~default:0 (List.assoc_opt k acc) in
          (k, cur + v) :: List.remove_assoc k acc)
        acc kvs)
    [] lists
  |> List.sort compare

let attach_nm ?prefix ?(agents = []) ?transport ?admission ?faults t ~station nm =
  let trace = Obs.Trace.create ~station () in
  Obs.Trace.set_clock trace (fun () -> t.tick);
  t.collectors <- t.collectors @ [ trace ];
  Nm.set_obs nm trace;
  Nm.set_registry nm t.registry;
  Obs.Registry.register t.registry (pfx prefix "nm") (fun () -> Nm.obs_counters nm);
  (match agents with
  | [] -> ()
  | _ ->
      List.iter (fun (_, a) -> Agent.set_obs a trace) agents;
      Obs.Registry.register t.registry (pfx prefix "agent") (fun () ->
          sum_counters (List.map (fun (_, a) -> Agent.obs_counters a) agents)));
  Option.iter
    (fun r ->
      Mgmt.Reliable.set_observer r (fun payload what -> route t payload what);
      Obs.Registry.register t.registry (pfx prefix "reliable") (fun () ->
          Mgmt.Reliable.obs_counters r))
    transport;
  Option.iter
    (fun a ->
      Mgmt.Admission.set_observer a (fun payload what -> route t payload what);
      Obs.Registry.register t.registry (pfx prefix "admission") (fun () ->
          Mgmt.Admission.obs_counters a))
    admission;
  Option.iter
    (fun f ->
      Obs.Registry.register t.registry (pfx prefix "faults") (fun () -> Mgmt.Faults.obs_counters f))
    faults;
  trace

let attach_ha ?prefix t ha =
  Obs.Registry.register t.registry (pfx prefix "ha") (fun () -> Ha.obs_counters ha)

let attach_net ?prefix t net =
  Obs.Registry.register t.registry (pfx prefix "netsim") (fun () ->
      sum_counters
        (List.map
           (fun e -> Netsim.Counters.to_list (Netsim.Link.drop_stats e.Netsim.Net.segment))
           (Netsim.Net.edges net)))

let attach_monitor ?prefix t mon =
  Obs.Registry.register t.registry (pfx prefix "monitor") (fun () ->
      [
        ("ticks", Monitor.ticks mon);
        ("repairs", Monitor.repairs mon);
        ("resyncs", Monitor.resyncs mon);
        ("escalations", Monitor.escalations mon);
        ("ring_dropped", Monitor.dropped_events mon);
      ])

(* Ring-buffer loss accounting: everything the deployment silently drops
   when bounded buffers overflow, one gauge per ring (the packet-trace
   ring is process-global; collector rings are per station). *)
let ring_dropped t =
  ("netsim_trace", Netsim.Trace.dropped ())
  :: List.map (fun c -> ("spans_" ^ Obs.Trace.station c, Obs.Trace.dropped c)) t.collectors

let attach_rings t = Obs.Registry.register t.registry "rings" (fun () -> ring_dropped t)
