(** One-stop observability wiring: a shared {!Obs.Registry} plus one
    {!Obs.Trace} collector per NM station, with transport/admission-level
    events (retries, sheds, deferrals) decoded out of raw payloads and
    routed back to the owning goal's span.

    Typical use: [create] once per deployment, [attach_nm] per NM (passing
    its agents and channel stack), then drive [set_tick] from the
    scenario's tick loop so spans and events are tick-stamped. *)

type t

val create : unit -> t
val registry : t -> Obs.Registry.t

val collectors : t -> Obs.Trace.t list
(** One per attached NM, in attachment order — the collector set for
    [Obs.Trace.goal_spans] / [render] / [connected]. *)

val set_tick : t -> int -> unit
(** Advance the shared logical clock every attached collector stamps
    spans and events with. *)

val tick : t -> int

val route : t -> bytes -> string -> unit
(** [route t payload what] decodes [payload], extracts its trace context
    (if any) and lands [what] as an event on the owning span. Safe on
    arbitrary bytes. *)

val attach_nm :
  ?prefix:string ->
  ?agents:(string * Agent.t) list ->
  ?transport:Mgmt.Reliable.t ->
  ?admission:Mgmt.Admission.t ->
  ?faults:Mgmt.Faults.t ->
  t ->
  station:string ->
  Nm.t ->
  Obs.Trace.t
(** Creates the station's span collector, hands it (and the registry) to
    the NM and its agents, installs Reliable/Admission observers that
    [route] their events, and registers every layer's counters under
    [nm] / [agent] / [reliable] / [admission] / [faults] — prefixed
    ["<prefix>_"] when [?prefix] is given, so multi-NM deployments keep
    one subsystem per (station, layer). Returns the collector. *)

val attach_ha : ?prefix:string -> t -> Ha.t -> unit
(** Registers an HA node's counters under [ha]. *)

val attach_net : ?prefix:string -> t -> Netsim.Net.t -> unit
(** Registers the summed per-cause link-drop counters under [netsim]. *)

val attach_monitor : ?prefix:string -> t -> Monitor.t -> unit
(** Registers monitor health (and its event-ring drop count) under
    [monitor]. *)

val ring_dropped : t -> (string * int) list
(** Every bounded ring's silent-drop count: the global packet-trace ring
    and each station's span collector. *)

val attach_rings : t -> unit
(** Registers {!ring_dropped} as the [rings] subsystem. *)
