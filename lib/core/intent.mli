(** Desired-state intents and their write-ahead journal.

    Every state-changing NM operation records an intent {e before}
    configuring anything, journalled as sexp entries so the desired state
    of the network survives an NM crash: a restarted NM replays the
    journal, rebuilds its intent set and re-converges ({!Nm.recover}). The
    {!Monitor} loop then keeps each live intent healthy. *)

(** What the operator asked for. *)
type spec =
  | Connect of Path_finder.goal  (** a layer-3 connectivity goal *)
  | Connect_l2 of { scope : string list; from_eth : Ids.t; to_eth : Ids.t }
  | Address of { target : Ids.t; addr : string; plen : int }
  | Rate of { owner : Ids.t; pipe_id : string; rate_kbps : int }

type status =
  | Pending  (** journalled, not yet (successfully) configured *)
  | Active  (** configured; last probe healthy *)
  | Degraded  (** unhealthy; the monitor is attempting repairs *)
  | Failed  (** repairs exhausted; escalated to the error report *)
  | Retired  (** torn down *)

type t = {
  id : int;
  spec : spec;
  mutable status : status;
  mutable script : Script_gen.script option;
      (** the configuration currently realising the intent *)
  mutable expected : (string * string list) list;
      (** per-device structural state keys snapshotted when last healthy —
          the baseline for the monitor's drift check *)
  mutable tried : string list;
      (** path signatures tried and failed since last healthy *)
  mutable journal_sig : string option;
      (** last path signature journalled via [Bind] — lets a recovered NM
          regenerate the dead incarnation's script and back its datapath
          state out before re-achieving (see {!Nm.reconfigure}) *)
  mutable repairs : int;  (** successful re-achievements *)
  mutable repair_attempts : int;  (** consecutive attempts since last healthy *)
  mutable probe_failures : int;
  mutable last_error : string option;
}

val make : id:int -> spec -> t
val note_error : t -> string -> unit
val spec_equal : spec -> spec -> bool
val kind : t -> string
val status_to_string : status -> string
val pp : t Fmt.t

(** {1 Sexp codec} *)

val spec_to_sexp : spec -> Sexp.t
val spec_of_sexp : Sexp.t -> spec

(** {1 Journal} *)

type entry =
  | Begin of int * spec  (** the intent exists (written before configuring) *)
  | Commit of int  (** its configuration applied successfully at least once *)
  | Retire of int  (** torn down *)
  | Bind of int * string
      (** bound to a script over the path with this signature — written on
          every (re)bind so recovery can reclaim stale datapath state *)

val entry_to_sexp : entry -> Sexp.t
val entry_of_sexp : Sexp.t -> entry

type journal

val journal : unit -> journal
val append : journal -> entry -> unit

val on_append : journal -> (entry -> unit) -> unit
(** Durability hook, called with each entry as it is appended (e.g. to
    write it through to stable storage). *)

val entries : journal -> entry list
(** In append order. *)

val journal_to_string : journal -> string
(** One sexp entry per line — the durable representation. *)

val journal_of_string : string -> journal
(** Inverse of {!journal_to_string}; raises {!Sexp.Parse_error} on
    malformed input. *)

val replay : journal -> t list
(** Rebuilds the live (non-retired) intents in id order: [Begin] creates a
    [Pending] intent, [Commit] promotes it to [Active], [Retire] drops it.
    Scripts and health are runtime state, left for {!Nm.recover} and the
    monitor to re-establish. *)

val next_id : journal -> int
(** 1 + the highest intent id journalled (1 for an empty journal). *)
