(** The management agent (MA) of a device (§II).

    Announces physical connectivity, answers showPotential/showActual,
    executes script bundles by dispatching primitives to the local protocol
    modules, relays conveyMessage traffic between its modules and the NM,
    and switches allegiance on an [Nm_takeover].

    Leadership is epoch-fenced: the agent tracks the epoch of the NM in
    charge and drops frames fenced with a lower epoch, so a resurrected or
    partitioned old primary cannot steal the agent back or issue conflicting
    configuration (split-brain fencing). Unfenced frames are epoch 0, the
    single-NM legacy mode. *)

type t

val create : chan:Mgmt.Channel.t -> nm_device:string -> Netsim.Device.t -> t
(** Creates the agent and subscribes it to the management channel under its
    device's id. [nm_device] is the NM's initial station id. *)

val register : t -> Module_impl.t -> unit
(** Adds a protocol module to the device. *)

val env : t -> Module_impl.env
(** The environment handed to protocol modules: conveyMessage uplink,
    local listFieldsAndValues, annex knowledge, scheduling. *)

val announce : t -> Netsim.Net.t -> unit
(** Sends the Hello with the device's physical connectivity (§II-D). *)

val modules : t -> Module_impl.t list

val handle : t -> src:string -> bytes -> unit
(** The channel receive handler (exposed for tests). *)

val find_module : t -> Ids.t -> Module_impl.t option

(** {2 Leadership fencing} *)

val nm_device : t -> string
(** Station id of the NM the agent currently obeys. *)

val nm_epoch : t -> int
(** Leadership epoch of the NM in charge; 0 until a fenced leader appears. *)

val fenced_rejects : t -> int
(** Frames dropped because they carried a lower epoch than [nm_epoch]. *)

val takeover_rejects : t -> int
(** Takeover announcements dropped for not being strictly newer. *)

val malformed_drops : t -> int
(** Undecodable frames dropped instead of raising out of the channel
    handler (corruption, fuzzing, buggy peers). *)

(** {2 Tracing and metrics (see {!Obs})} *)

val set_obs : t -> Obs.Trace.t -> unit
(** Attaches a span collector — share the domain NM's so agent-side exec
    spans land in the same goal tree. A traced bundle's fresh execution
    opens an [exec:<device>] child span; a retry answered from the reply
    cache adds a [replayed-from-cache] event to the requesting span
    instead (never a second span). Replies, and any triggers or conveys
    the execution provokes, carry the goal context back on the wire. *)

val obs_counters : t -> (string * int) list
(** The agent's drop counters in registry-source form
    ([fenced_rejects], [takeover_rejects], [malformed_drops]). *)
