(* Ready-made CONMan deployments of the paper's experimental set-ups:
   the figure-4 VPN testbed and the figure-9 switch chain, with management
   agents, protocol modules and an NM wired to either management channel
   (§III-A: pre-configured out-of-band, or raw in-band flooding). *)

open Netsim

let nm_station_id = "id-NM"

(* Station id of the warm-standby NM in HA deployments (see Ha). *)
let standby_station_id = "id-NM2"

type channel_kind = [ `Oob | `Raw ]

(* Admission class of an outgoing payload: decode the wire message and ask
   it. Undecodable payloads (which senders never produce, but the layer
   must be total) rank as interrogation — sheddable, but never ahead of
   telemetry. *)
let classify_payload payload =
  Mgmt.Admission.priority_of_int
    (match Wire.decode payload with exception _ -> 2 | msg -> Wire.priority_of msg)

(* Builds the channel stack: base channel (Oob or Raw), fault-injection
   layer, reliable delivery, overload admission on top. With default knobs
   the fault layer is a no-op and the admission layer passes everything,
   so fault-free runs behave as before — but every scenario can be made
   lossy ([fault_seed] keeps it deterministic), squeezed ([admission]
   tightens the overload budget) and the NM always has a transport to
   learn give-ups from. For the raw in-band channel a management station
   device is created and wired to [attach_to]. *)
let make_channel ?(fault_seed = 42) ?reliability ?admission kind net ~devices ~attach_to =
  let base, nms =
    match kind with
    | `Oob -> (Mgmt.Channel.Oob.create (Net.eq net), None)
    | `Raw ->
        let chan, attach = Mgmt.Channel.Raw.create () in
        let nms = Net.add_device net ~id:nm_station_id ~name:"NMS" in
        ignore (Device.add_port ~name:"mgmt0" nms);
        let host_port = Device.add_port ~name:"mgmt" attach_to in
        let _ =
          Net.connect net ~name:"NMS-uplink" (nms, 0) (attach_to, host_port.Device.port_index)
        in
        List.iter attach (nms :: devices);
        (chan, Some nms)
  in
  let faulty, faults = Mgmt.Faults.wrap ~seed:fault_seed ~eq:(Net.eq net) base in
  let reliable, transport =
    Mgmt.Reliable.create ?config:reliability
      ~classify:(fun payload -> Mgmt.Admission.priority_index (classify_payload payload))
      ~eq:(Net.eq net) faulty
  in
  let chan, adm =
    Mgmt.Admission.wrap ?config:admission ~eq:(Net.eq net) ~classify:classify_payload reliable
  in
  (chan, faults, transport, adm, nms)

let eth_neighbours net dev i =
  Net.neighbours net dev i
  |> List.map (fun (d, pi) ->
         (d.Device.dev_id, (Device.port d pi).Device.port_name))

(* --- figure 4: the VPN testbed --------------------------------------------- *)

type vpn = {
  tb : Testbeds.vpn;
  chan : Mgmt.Channel.t;
  faults : Mgmt.Faults.t;
  transport : Mgmt.Reliable.t;
  admission : Mgmt.Admission.t;
  nm : Nm.t;
  goal : Path_finder.goal;
  scope : string list;
  agents : (string * Agent.t) list; (* device name -> agent *)
  ip_handles : (string * Ip_module.handle) list; (* module id -> handle *)
}

let mref name mid dev = Ids.v name mid dev.Device.dev_id

let vpn_goal ?(tradeoffs = [ "in-order-delivery"; "low-error-rate" ]) () =
  {
    Path_finder.g_from = Ids.v "ETH" "a" "id-A";
    g_to = Ids.v "ETH" "f" "id-C";
    g_customer = "C1";
    g_src_domain = "C1-S1";
    g_dst_domain = "C1-S2";
    g_src_site = "S1";
    g_dst_site = "S2";
    g_tradeoffs = tradeoffs;
    g_scope = [ "id-A"; "id-B"; "id-C" ];
  }

(* The NM-side configuration knowledge of figure 4: which IP module serves
   which address domain. Shared between the initial build and [vpn_adopt]
   (a replacement NM re-learning the deployment after a restart). *)
let vpn_domain_knowledge nm =
  Topology.set_domains (Nm.topology nm)
    ~module_domains:
      [
        (Ids.v "IP" "g" "id-A", "C1");
        (Ids.v "IP" "h" "id-A", "ISP");
        (Ids.v "IP" "i" "id-B", "ISP");
        (Ids.v "IP" "j" "id-C", "ISP");
        (Ids.v "IP" "k" "id-C", "C1");
      ]
    ~domain_prefixes:[ ("C1-S1", "10.0.1.0/24"); ("C1-S2", "10.0.2.0/24") ]

let build_vpn ?(channel = `Oob) ?(secure = false) ?tradeoffs ?fault_seed ?reliability ?admission
    ?journal () =
  let tb = Testbeds.vpn () in
  let net = tb.Testbeds.vpn_net in
  let managed = [ tb.Testbeds.ra; tb.Testbeds.rb; tb.Testbeds.rc ] in
  let chan, faults, transport, admission, _ =
    make_channel ?fault_seed ?reliability ?admission channel net ~devices:managed
      ~attach_to:tb.Testbeds.rb
  in
  let ip_handles = ref [] in
  let setup_device dev specs =
    let agent = Agent.create ~chan ~nm_device:nm_station_id dev in
    let env = Agent.env agent in
    List.iter
      (fun spec ->
        match spec with
        | `Eth (mid, port) ->
            Agent.register agent
              (Eth_module.make ~env ~mref:(mref "ETH" mid dev) ~ports:[ port ] ~switching:false
                 ~neighbours:(eth_neighbours net dev) ())
        | `Ip (mid, ifaces, domain) ->
            let impl, handle =
              Ip_module.make ~env ~mref:(mref "IP" mid dev) ~ifaces ~domain ()
            in
            ip_handles := (mid, handle) :: !ip_handles;
            Agent.register agent impl
        | `Gre mid -> Agent.register agent (Gre_module.make ~env ~mref:(mref "GRE" mid dev) ())
        | `Esp mid -> Agent.register agent (Esp_module.make ~env ~mref:(mref "ESP" mid dev) ())
        | `Ike mid -> Agent.register agent (Ike_module.make ~env ~mref:(mref "IKE" mid dev) ())
        | `Mpls mid -> Agent.register agent (Mpls_module.make ~env ~mref:(mref "MPLS" mid dev) ()))
      specs;
    agent
  in
  (* module layout of figure 4(b); [secure] adds the figure-1 IPsec pair
     (an ESP data module depending on an IKE control module) at the edges *)
  let sec_a = if secure then [ `Esp "s"; `Ike "m" ] else [] in
  let sec_c = if secure then [ `Esp "t"; `Ike "w" ] else [] in
  let agent_a =
    setup_device tb.Testbeds.ra
      ([
         `Eth ("a", 0); (* eth1, customer-facing *)
         `Eth ("b", 1); (* eth2, core-facing *)
         `Ip ("g", [ "eth1" ], "C1");
         `Ip ("h", [ "eth2" ], "ISP");
         `Gre "l";
         `Mpls "o";
       ]
      @ sec_a)
  in
  let agent_b =
    setup_device tb.Testbeds.rb
      [ `Eth ("c", 0); `Eth ("d", 1); `Ip ("i", [ "eth1"; "eth2" ], "ISP"); `Mpls "p" ]
  in
  let agent_c =
    setup_device tb.Testbeds.rc
      ([
         `Eth ("e", 1); (* eth2, core-facing *)
         `Eth ("f", 0); (* eth1, customer-facing *)
         `Ip ("j", [ "eth2" ], "ISP");
         `Ip ("k", [ "eth1" ], "C1");
         `Gre "n";
         `Mpls "q";
       ]
      @ sec_c)
  in
  (* The customer hosts also run management agents with a single IP module
     each, so module-level filter rules can be resolved against them
     (section II-E's example). Only reachable over the out-of-band channel;
     the customer routers run no agents to flood through. *)
  (if channel = `Oob then begin
     let host_agent dev mid =
       let agent = Agent.create ~chan ~nm_device:nm_station_id dev in
       let env = Agent.env agent in
       let impl, _ = Ip_module.make ~env ~mref:(mref "IP" mid dev) ~ifaces:[ "eth0" ] ~domain:"C1" () in
       Agent.register agent impl
     in
     host_agent tb.Testbeds.host1 "x";
     host_agent tb.Testbeds.host2 "y"
   end);
  let nm = Nm.create ~transport ?journal ~chan ~net ~my_id:nm_station_id () in
  List.iter (fun a -> Agent.announce a net) [ agent_a; agent_b; agent_c ];
  Nm.run nm;
  let scope = [ "id-A"; "id-B"; "id-C" ] in
  Nm.harvest_potentials nm scope;
  vpn_domain_knowledge nm;
  {
    tb;
    chan;
    faults;
    transport;
    admission;
    nm;
    goal = vpn_goal ?tradeoffs ();
    scope;
    agents = [ ("A", agent_a); ("B", agent_b); ("C", agent_c) ];
    ip_handles = !ip_handles;
  }

let vpn_reachable v = Testbeds.vpn_reachable v.tb

(* Re-runs discovery for a replacement NM over the same testbed: agents
   re-announce (their Hellos now reach the new NM, which subscribed under
   the same station id), potentials are harvested and the operator's
   domain knowledge re-entered. The second half of an NM restart; pair it
   with [Nm.recover] to re-converge the journalled intents. *)
let vpn_adopt v nm =
  List.iter (fun (_, a) -> Agent.announce a v.tb.Testbeds.vpn_net) v.agents;
  Nm.run nm;
  Nm.harvest_potentials nm v.scope;
  vpn_domain_knowledge nm

(* --- generalised n-router chain (Table VI sweep) ------------------------------ *)

type chain = {
  ctb : Testbeds.chain;
  cchan : Mgmt.Channel.t;
  cfaults : Mgmt.Faults.t;
  ctransport : Mgmt.Reliable.t;
  cadmission : Mgmt.Admission.t;
  cnm : Nm.t;
  cgoal : Path_finder.goal;
  cscope : string list;
}

let build_chain ?(channel = `Oob) ?(addressed = true)
    ?(tradeoffs = [ "in-order-delivery"; "low-error-rate" ]) ?fault_seed ?reliability ?admission
    ?journal n =
  let tb = Testbeds.chain ~addressed n in
  let net = tb.Testbeds.chain_net in
  let routers = Array.to_list tb.Testbeds.routers in
  let chan, cfaults, ctransport, cadmission, _ =
    make_channel ?fault_seed ?reliability ?admission channel net ~devices:routers
      ~attach_to:tb.Testbeds.routers.(0)
  in
  let module_domains = ref [] in
  let setup_device dev specs =
    let agent = Agent.create ~chan ~nm_device:nm_station_id dev in
    let env = Agent.env agent in
    List.iter
      (fun spec ->
        match spec with
        | `Eth (mid, port) ->
            Agent.register agent
              (Eth_module.make ~env ~mref:(mref "ETH" mid dev) ~ports:[ port ] ~switching:false
                 ~neighbours:(eth_neighbours net dev) ())
        | `Ip (mid, ifaces, domain) ->
            module_domains := (mref "IP" mid dev, domain) :: !module_domains;
            let impl, _ = Ip_module.make ~env ~mref:(mref "IP" mid dev) ~ifaces ~domain () in
            Agent.register agent impl
        | `Gre mid -> Agent.register agent (Gre_module.make ~env ~mref:(mref "GRE" mid dev) ())
        | `Mpls mid -> Agent.register agent (Mpls_module.make ~env ~mref:(mref "MPLS" mid dev) ()))
      specs;
    agent
  in
  let agents =
    List.mapi
      (fun idx dev ->
        if idx = 0 then
          setup_device dev
            [
              `Eth ("a", 0);
              `Eth ("b", 1);
              `Ip ("g", [ "eth1" ], "C1");
              `Ip ("h", [ "eth2" ], "ISP");
              `Gre "l";
              `Mpls "o";
            ]
        else if idx = n - 1 then
          setup_device dev
            [
              `Eth ("e", 0); (* eth1, towards the core *)
              `Eth ("f", 1); (* eth2, customer-facing *)
              `Ip ("j", [ "eth1" ], "ISP");
              `Ip ("k", [ "eth2" ], "C1");
              `Gre "n";
              `Mpls "q";
            ]
        else
          setup_device dev
            [
              `Eth (Printf.sprintf "c%d" (idx + 1), 0);
              `Eth (Printf.sprintf "d%d" (idx + 1), 1);
              `Ip (Printf.sprintf "i%d" (idx + 1), [ "eth1"; "eth2" ], "ISP");
              `Mpls (Printf.sprintf "p%d" (idx + 1));
            ])
      routers
  in
  let nm = Nm.create ~transport:ctransport ?journal ~chan ~net ~my_id:nm_station_id () in
  List.iter (fun a -> Agent.announce a net) agents;
  Nm.run nm;
  let scope = List.map (fun d -> d.Device.dev_id) routers in
  Nm.harvest_potentials nm scope;
  Topology.set_domains (Nm.topology nm) ~module_domains:!module_domains
    ~domain_prefixes:[ ("C1-S1", "10.0.1.0/24"); ("C1-S2", "10.0.2.0/24") ];
  let goal =
    {
      Path_finder.g_from = Ids.v "ETH" "a" "id-R1";
      g_to = Ids.v "ETH" "f" (Printf.sprintf "id-R%d" n);
      g_customer = "C1";
      g_src_domain = "C1-S1";
      g_dst_domain = "C1-S2";
      g_src_site = "S1";
      g_dst_site = "S2";
      g_tradeoffs = tradeoffs;
      g_scope = scope;
    }
  in
  { ctb = tb; cchan = chan; cfaults; ctransport; cadmission; cnm = nm; cgoal = goal; cscope = scope }

let chain_reachable c = Testbeds.chain_reachable c.ctb

(* --- diamond: two parallel cores (multi-route experiments) -------------------- *)

type diamond = {
  dtb : Testbeds.diamond;
  dchan : Mgmt.Channel.t;
  dfaults : Mgmt.Faults.t;
  dtransport : Mgmt.Reliable.t;
  dadmission : Mgmt.Admission.t;
  dnm : Nm.t;
  dgoal : Path_finder.goal;
  dscope : string list;
  dagents : (string * Agent.t) list; (* device id -> agent *)
}

let build_diamond ?(channel = `Oob) ?fault_seed ?reliability ?admission ?journal () =
  let tb = Testbeds.diamond () in
  let net = tb.Testbeds.dia_net in
  let managed = [ tb.Testbeds.dia_a; tb.Testbeds.dia_b1; tb.Testbeds.dia_b2; tb.Testbeds.dia_c ] in
  let chan, dfaults, dtransport, dadmission, _ =
    make_channel ?fault_seed ?reliability ?admission channel net ~devices:managed
      ~attach_to:tb.Testbeds.dia_a
  in
  let module_domains = ref [] in
  let setup dev specs =
    let agent = Agent.create ~chan ~nm_device:nm_station_id dev in
    let env = Agent.env agent in
    List.iter
      (fun spec ->
        match spec with
        | `Eth (mid, port) ->
            Agent.register agent
              (Eth_module.make ~env ~mref:(mref "ETH" mid dev) ~ports:[ port ] ~switching:false
                 ~neighbours:(eth_neighbours net dev) ())
        | `Ip (mid, ifaces, domain) ->
            module_domains := (mref "IP" mid dev, domain) :: !module_domains;
            let impl, _ = Ip_module.make ~env ~mref:(mref "IP" mid dev) ~ifaces ~domain () in
            Agent.register agent impl
        | `Gre mid -> Agent.register agent (Gre_module.make ~env ~mref:(mref "GRE" mid dev) ())
        | `Mpls mid -> Agent.register agent (Mpls_module.make ~env ~mref:(mref "MPLS" mid dev) ()))
      specs;
    agent
  in
  let agents =
    [
      setup tb.Testbeds.dia_a
        [
          `Eth ("a", 0);
          `Eth ("b1", 1);
          `Eth ("b2", 2);
          `Ip ("g", [ "eth1" ], "C1");
          `Ip ("h", [ "eth2"; "eth3" ], "ISP");
          `Gre "l";
          `Mpls "o";
        ];
      setup tb.Testbeds.dia_b1
        [ `Eth ("c1", 0); `Eth ("d1", 1); `Ip ("i1", [ "eth1"; "eth2" ], "ISP"); `Mpls "p1" ];
      setup tb.Testbeds.dia_b2
        [ `Eth ("c2", 0); `Eth ("d2", 1); `Ip ("i2", [ "eth1"; "eth2" ], "ISP"); `Mpls "p2" ];
      setup tb.Testbeds.dia_c
        [
          `Eth ("e1", 0);
          `Eth ("e2", 1);
          `Eth ("f", 2);
          `Ip ("j", [ "eth1"; "eth2" ], "ISP");
          `Ip ("k", [ "eth3" ], "C1");
          `Gre "n";
          `Mpls "q";
        ];
    ]
  in
  let nm = Nm.create ~transport:dtransport ?journal ~chan ~net ~my_id:nm_station_id () in
  List.iter (fun a -> Agent.announce a net) agents;
  Nm.run nm;
  let scope = [ "id-A"; "id-B1"; "id-B2"; "id-C" ] in
  Nm.harvest_potentials nm scope;
  Topology.set_domains (Nm.topology nm) ~module_domains:!module_domains
    ~domain_prefixes:[ ("C1-S1", "10.0.1.0/24"); ("C1-S2", "10.0.2.0/24") ];
  let goal =
    {
      Path_finder.g_from = Ids.v "ETH" "a" "id-A";
      g_to = Ids.v "ETH" "f" "id-C";
      g_customer = "C1";
      g_src_domain = "C1-S1";
      g_dst_domain = "C1-S2";
      g_src_site = "S1";
      g_dst_site = "S2";
      g_tradeoffs = [ "in-order-delivery"; "low-error-rate" ];
      g_scope = scope;
    }
  in
  {
    dtb = tb;
    dchan = chan;
    dfaults;
    dtransport;
    dadmission;
    dnm = nm;
    dgoal = goal;
    dscope = scope;
    dagents = List.combine scope agents;
  }

let diamond_reachable d = Testbeds.diamond_reachable d.dtb

let diamond_adopt d nm =
  List.iter (fun (_, a) -> Agent.announce a d.dtb.Testbeds.dia_net) d.dagents;
  Nm.run nm;
  Nm.harvest_potentials nm d.dscope;
  Topology.set_domains (Nm.topology nm)
    ~module_domains:
      [
        (Ids.v "IP" "g" "id-A", "C1");
        (Ids.v "IP" "h" "id-A", "ISP");
        (Ids.v "IP" "i1" "id-B1", "ISP");
        (Ids.v "IP" "i2" "id-B2", "ISP");
        (Ids.v "IP" "j" "id-C", "ISP");
        (Ids.v "IP" "k" "id-C", "C1");
      ]
    ~domain_prefixes:[ ("C1-S1", "10.0.1.0/24"); ("C1-S2", "10.0.2.0/24") ]

(* Path classification helpers for picking the pure-GRE/MPLS/IP-IP paths out
   of the enumeration. *)
let path_uses name (p : Path_finder.path) =
  List.exists (fun v -> v.Path_finder.v_mod.Ids.name = name) p.Path_finder.visits

let pure_gre p = path_uses "GRE" p && not (path_uses "MPLS" p)
let pure_mpls p = path_uses "MPLS" p && not (path_uses "GRE" p) && not (List.exists (fun v -> Ids.short v.Path_finder.v_mod = "h") p.Path_finder.visits)
let pure_ipip p =
  (not (path_uses "GRE" p)) && (not (path_uses "MPLS" p)) && not (path_uses "ESP" p)

(* A path satisfying a confidentiality requirement: it crosses an ESP
   module (whose abstraction advertises security). *)
let secure p = path_uses "ESP" p

(* --- figure 9: the VLAN switch chain ----------------------------------------- *)

type vlan = {
  vtb : Testbeds.vlan;
  vchan : Mgmt.Channel.t;
  vfaults : Mgmt.Faults.t;
  vtransport : Mgmt.Reliable.t;
  vadmission : Mgmt.Admission.t;
  vnm : Nm.t;
  vscope : string list;
  vagents : (string * Agent.t) list;
}

let build_vlan ?(channel = `Oob) ?fault_seed ?reliability () =
  let tb = Testbeds.vlan () in
  let net = tb.Testbeds.vlan_net in
  let switches = [ tb.Testbeds.swa; tb.Testbeds.swb; tb.Testbeds.swc ] in
  let chan, vfaults, vtransport, vadmission, _ =
    make_channel ?fault_seed ?reliability channel net ~devices:switches ~attach_to:tb.Testbeds.swb
  in
  let setup sw (eth_mid, vlan_mid) =
    let agent = Agent.create ~chan ~nm_device:nm_station_id sw in
    let env = Agent.env agent in
    let ports = List.init (Array.length sw.Device.ports) Fun.id in
    Agent.register agent
      (Eth_module.make ~env ~mref:(mref "ETH" eth_mid sw) ~ports ~switching:true
         ~neighbours:(eth_neighbours net sw) ());
    Agent.register agent (Vlan_module.make ~env ~mref:(mref "VLAN" vlan_mid sw) ());
    agent
  in
  let agent_a = setup tb.Testbeds.swa ("a", "d") in
  let agent_b = setup tb.Testbeds.swb ("b", "e") in
  let agent_c = setup tb.Testbeds.swc ("c", "f") in
  let nm = Nm.create ~transport:vtransport ~chan ~net ~my_id:nm_station_id () in
  List.iter (fun a -> Agent.announce a net) [ agent_a; agent_b; agent_c ];
  Nm.run nm;
  let scope = [ "id-SwA"; "id-SwB"; "id-SwC" ] in
  Nm.harvest_potentials nm scope;
  {
    vtb = tb;
    vchan = chan;
    vfaults;
    vtransport;
    vadmission;
    vnm = nm;
    vscope = scope;
    vagents = [ ("SwA", agent_a); ("SwB", agent_b); ("SwC", agent_c) ];
  }

let vlan_reachable v = Testbeds.vlan_reachable v.vtb

(* n-switch generalisation of the VLAN scenario. *)
type vlan_chain = {
  vctb : Testbeds.vlan_chain;
  vcchan : Mgmt.Channel.t;
  vcfaults : Mgmt.Faults.t;
  vctransport : Mgmt.Reliable.t;
  vcadmission : Mgmt.Admission.t;
  vcnm : Nm.t;
  vcscope : string list;
}

let build_vlan_chain ?(channel = `Oob) ?fault_seed ?reliability n =
  let tb = Testbeds.vlan_chain n in
  let net = tb.Testbeds.vc_net in
  let switches = Array.to_list tb.Testbeds.switches in
  let chan, vcfaults, vctransport, vcadmission, _ =
    make_channel ?fault_seed ?reliability channel net ~devices:switches
      ~attach_to:tb.Testbeds.switches.(0)
  in
  let agents =
    List.mapi
      (fun idx sw ->
        let agent = Agent.create ~chan ~nm_device:nm_station_id sw in
        let env = Agent.env agent in
        let ports = List.init (Array.length sw.Device.ports) Fun.id in
        let suffix = string_of_int (idx + 1) in
        Agent.register agent
          (Eth_module.make ~env ~mref:(mref "ETH" ("eth" ^ suffix) sw) ~ports ~switching:true
             ~neighbours:(eth_neighbours net sw) ());
        Agent.register agent (Vlan_module.make ~env ~mref:(mref "VLAN" ("vl" ^ suffix) sw) ());
        agent)
      switches
  in
  let nm = Nm.create ~transport:vctransport ~chan ~net ~my_id:nm_station_id () in
  List.iter (fun a -> Agent.announce a net) agents;
  Nm.run nm;
  let scope = List.map (fun d -> d.Device.dev_id) switches in
  Nm.harvest_potentials nm scope;
  { vctb = tb; vcchan = chan; vcfaults; vctransport; vcadmission; vcnm = nm; vcscope = scope }

let vlan_chain_reachable v = Testbeds.vlan_chain_reachable v.vctb
