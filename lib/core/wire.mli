(** Messages exchanged between the NM and the management agents over the
    management channel, and their byte encoding (s-expressions over
    {!Mgmt.Frame} payloads). *)

(** NM knowledge shipped alongside a script bundle: address-domain
    resolutions and role hints — the paper's §III-C admission that the NM
    explicitly knows IP addresses and domains. Not part of the counted
    CONMan script. *)
type annex = {
  domains : (string * string) list; (** domain name -> prefix *)
  reporter : Ids.t option; (** module that reports path completion *)
}

val empty_annex : annex

type t =
  | Hello of { ports : (string * string * string) list }
      (** device -> NM: physical connectivity (port, peer device, peer port) *)
  | Show_potential_req of { req : int }
  | Show_actual_req of { req : int }
  | Show_perf_req of { req : int }
      (** showPerf: scrape the performance aspect — per-pipe counters from
          every module on the device (read-only, like showActual) *)
  | Bundle of { req : int; cmds : Primitive.t list; annex : annex }
      (** NM -> device: a CONMan script slice *)
  | Nm_takeover of { nm : string; epoch : int }
      (** a standby NM announces it is primary under a new leadership epoch
          (§V); agents reject announcements that are not strictly newer *)
  | Fenced of { epoch : int; msg : t }
      (** leadership fence: an NM holding a non-zero epoch wraps every frame
          it sends so agents can reject a deposed primary; unwrapped frames
          are epoch 0 (single-NM legacy mode) *)
  | Traced of { ctx : Obs.Trace.ctx; msg : t }
      (** trace-context piggyback: which goal/span this frame works for, so
          the receiver parents its spans correctly and lower layers can
          attribute retries and sheds; untraced frames carry no context *)
  | Ha_heartbeat of { epoch : int; seq : int }
      (** primary -> standby liveness beacon for the failure detector *)
  | Ha_journal of { epoch : int; seq : int; entry : Intent.entry }
      (** primary -> standby: one intent-journal entry, stream position [seq] *)
  | Ha_journal_ack of { epoch : int; upto : int }
      (** standby -> primary: cumulative ack of the journal stream *)
  | Ha_inflight of { epoch : int; req : int; dst : string; msg : t }
      (** primary -> standby: a request entered the in-flight set *)
  | Ha_confirm of { epoch : int; req : int }
      (** primary -> standby: request [req] was confirmed (left in-flight) *)
  | Set_address of { req : int; target : Ids.t; addr : string; plen : int }
      (** NM-assigned address (§II-E's DHCP-like exception) *)
  | Self_test_req of { req : int; target : Ids.t; against : Ids.t option }
  | Show_potential_resp of { req : int; modules : (Ids.t * Abstraction.t) list }
  | Show_actual_resp of { req : int; state : (Ids.t * (string * string) list) list }
  | Show_perf_resp of { req : int; perf : (Ids.t * (string * (string * int) list) list) list }
      (** per module: pipe id -> monotonic counter snapshot *)
  | Bundle_ack of { req : int }
      (** device -> NM: the bundle was applied — success is explicit *)
  | Ack of { req : int }
      (** device -> NM: generic ack for requests with no richer reply *)
  | Bundle_err of { req : int; error : string }
  | Self_test_resp of { req : int; target : Ids.t; ok : bool; detail : string }
  | Completion of { src : Ids.t; what : string }
      (** e.g. the far-edge MPLS module reporting "lsp-established" *)
  | Trigger of { src : Ids.t; field : string; value : string }
      (** a low-level value changed: dependency maintenance (§II-E) *)
  | Convey of { src : Ids.t; dst : Ids.t; payload : Peer_msg.t }
      (** module -> NM -> module: conveyMessage relay *)
  | Fed_advert of {
      domain : string;
      nm : string;
      borders : Ids.t list;
      summary : (string * int) list;
      devices : string list;
    }
      (** NM -> NM: domain advertisement — border modules plus an abridged
          reachability summary (customer domain -> reachable-module count)
          and the owned device ids; never the raw internal topology *)
  | Fed_plan_req of { req : int; domain : string; entry_dev : string; target : Ids.t }
      (** coordinator -> peer: expand the peer's segment of a cross-domain
          goal, from border device [entry_dev] towards [target] *)
  | Fed_plan_resp of {
      req : int;
      devices : (string * (string * string * string) list * (Ids.t * Abstraction.t) list) list;
      module_domains : (Ids.t * string) list;
      prefixes : (string * string) list;
    }
      (** the scoped per-goal expansion: segment devices with their links
          and module abstractions, plus the peer's address knowledge *)
  | Fed_plan_err of { req : int; error : string }
  | Fed_commit of {
      domain : string;
      gid : int;
      slices : (string * Primitive.t list) list;
      reporter : Ids.t option;
    }
      (** coordinator -> peer: execute these per-device slices of goal
          [(domain, gid)]; ack only once every slice is confirmed *)
  | Fed_commit_ack of { gid : int }
  | Fed_commit_err of { gid : int; error : string }
  | Fed_abort of { domain : string; gid : int }
      (** distributed back-out: dismantle the goal's slices everywhere so
          no domain is left half-configured *)
  | Fed_abort_ack of { gid : int }
  | Fed_relay of { src : Ids.t; dst : Ids.t; payload : Peer_msg.t }
      (** cross-domain conveyMessage hop between the two owning NMs *)

val annex_to_sexp : annex -> Sexp.t
val annex_of_sexp : Sexp.t -> annex
val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
val encode : t -> bytes

val decode : bytes -> t
(** Raises only {!Sexp.Parse_error} on malformed input — any exception a
    nested codec throws at a fuzzed payload is converted, so callers need
    a single handler. *)

val priority_of : t -> int
(** Admission-control class: 0 = heartbeats/takeovers (never shed),
    1 = scripts/back-outs/replication/inter-NM federation,
    2 = probes/showState, 3 = telemetry showPerf (shed first). {!Fenced}
    and {!Traced} frames take the class of the message they carry. See
    {!Mgmt.Admission}. *)

val trace_of : t -> Obs.Trace.ctx option
(** The trace context a frame carries, looking through {!Fenced} and
    {!Traced} nesting; [None] for untraced frames. *)

val equal : t -> t -> bool
val pp : t Fmt.t
