(** Sexp codec for {!Obs.Trace} contexts and spans. The context codec is
    what {!Wire.Traced} frames carry; the span codec serializes whole
    traces for export (CLI, chaos violation reports). Both [of_sexp]
    directions raise only {!Sexp.Parse_error} on malformed input. *)

val ctx_to_sexp : Obs.Trace.ctx -> Sexp.t
val ctx_of_sexp : Sexp.t -> Obs.Trace.ctx
val span_to_sexp : Obs.Trace.span -> Sexp.t
val span_of_sexp : Sexp.t -> Obs.Trace.span
val span_to_string : Obs.Trace.span -> string

val span_of_string : string -> Obs.Trace.span
(** Raises only {!Sexp.Parse_error}, converting anything a nested parse
    throws — same contract as {!Wire.decode}. *)
