(* The MPLS protocol module. Down pipes (over ETH) are label-switched
   adjacencies: for each one the module allocates the label it wants to
   receive and conveys it — together with its interface address — to the
   adjacent MPLS module (downstream label allocation). Switch rules then
   translate into mpls-linux style ILM/NHLFE/XC commands, plus an FTN hook
   the IP module above uses for label imposition. *)

open Module_impl

type adjacency = {
  a_spec : Primitive.pipe_spec; (* role Top, bottom = local ETH module *)
  a_peer : Ids.t; (* the adjacent MPLS module (peer_top) *)
  a_in_label : int; (* label we allocated for traffic from this peer *)
  mutable a_out_label : int option; (* label the peer allocated for us *)
  mutable a_out_nexthop : string option;
}

type state = {
  env : env;
  mref : Ids.t;
  mutable adjacencies : adjacency list;
  mutable up_pipes : Primitive.pipe_spec list; (* role Bottom: IP above us *)
  mutable pending : Primitive.switch_rule list;
  mutable ftn : (string * (string * string)) list; (* up pipe id -> key, via *)
  mutable xconnects : (int * int) list; (* in-label -> nhlfe key, for actual() *)
  mutable next_label : int;
  mutable completed : bool;
  mutable early : (Ids.t * Peer_msg.t) list; (* peer msgs that raced our bundle *)
}

let iface_of_adj st adj =
  match st.env.local_query adj.a_spec.Primitive.bottom "iface" with
  | Some i -> i
  | None -> failwith "mpls: no interface below down pipe"

let addr_of_iface st name =
  match Netsim.Device.find_iface st.env.device name with
  | Some i -> Option.map Packet.Ipv4_addr.to_string (Netsim.Device.primary_addr i)
  | None -> None

let find_adj_by_peer st peer = List.find_opt (fun a -> Ids.equal a.a_peer peer) st.adjacencies
let find_adj_by_pipe st pid =
  List.find_opt (fun a -> a.a_spec.Primitive.pipe_id = pid) st.adjacencies

(* Runs `mpls nhlfe add`, extracting the allocated key from the command
   output like the paper's scripts do with grep/cut. *)
let nhlfe_add st ~push ~dev ~via =
  let instr =
    match push with
    | Some label -> Printf.sprintf "push gen %d nexthop %s ipv4 %s" label dev via
    | None -> Printf.sprintf "nexthop %s ipv4 %s" dev via
  in
  let out =
    Devconf.Linux_cli.exec st.env.device
      (String.split_on_char ' ' ("mpls nhlfe add key 0 mtu 1500 instructions " ^ instr)
      |> List.filter (( <> ) ""))
  in
  Scanf.sscanf out "NHLFE entry key 0x%lx" (fun k -> Int32.to_int k)

let nhlfe_deliver st =
  let out =
    Devconf.Linux_cli.exec st.env.device
      (String.split_on_char ' ' "mpls nhlfe add key 0 mtu 1500 instructions deliver")
  in
  Scanf.sscanf out "NHLFE entry key 0x%lx" (fun k -> Int32.to_int k)

let xc st ~in_label ~key =
  run_cmdf st.env.device "mpls xc add ilm label gen %d ilm labelspace 0 nhlfe key %d" in_label key;
  st.xconnects <- (in_label, key) :: st.xconnects

let announce_label st adj =
  let iface = iface_of_adj st adj in
  match addr_of_iface st iface with
  | Some my_addr ->
      st.env.convey ~src:st.mref ~dst:adj.a_peer
        (Peer_msg.Mpls_label_bind
           { pipe = adj.a_spec.Primitive.pipe_id; label = adj.a_in_label; nexthop = my_addr })
  | None -> ()

let try_rule st rule =
  match rule with
  | Primitive.Bidi (x, y) -> (
      let up_of pid = List.find_opt (fun s -> s.Primitive.pipe_id = pid) st.up_pipes in
      match (up_of x, find_adj_by_pipe st y, find_adj_by_pipe st x, up_of y) with
      | Some up, Some adj, _, _ | _, _, Some adj, Some up -> (
          (* LSP edge: [up<=>down]. Egress: pop traffic arriving with our
             allocated label up to the IP module. Ingress: impose the label
             the adjacent module allocated. *)
          match (adj.a_out_label, adj.a_out_nexthop) with
          | Some out_label, Some nexthop ->
              let dev = iface_of_adj st adj in
              let deliver_key = nhlfe_deliver st in
              xc st ~in_label:adj.a_in_label ~key:deliver_key;
              let push_key = nhlfe_add st ~push:(Some out_label) ~dev ~via:nexthop in
              st.ftn <- (up.Primitive.pipe_id, (string_of_int push_key, nexthop)) :: st.ftn;
              true
          | _ -> false)
      | _ -> (
          match (find_adj_by_pipe st x, find_adj_by_pipe st y) with
          | Some a, Some b -> (
              (* transit [down=>down]: swap in both directions *)
              match (a.a_out_label, a.a_out_nexthop, b.a_out_label, b.a_out_nexthop) with
              | Some la, Some na, Some lb, Some nb ->
                  let key_ab = nhlfe_add st ~push:(Some lb) ~dev:(iface_of_adj st b) ~via:nb in
                  xc st ~in_label:a.a_in_label ~key:key_ab;
                  let key_ba = nhlfe_add st ~push:(Some la) ~dev:(iface_of_adj st a) ~via:na in
                  xc st ~in_label:b.a_in_label ~key:key_ba;
                  true
              | _ -> false)
          | _ -> false))
  | Primitive.Directed _ -> false

let poll st () =
  let before = List.length st.pending in
  st.pending <- List.filter (fun r -> not (try_rule st r)) st.pending;
  let progressed = List.length st.pending <> before in
  if
    (not st.completed) && st.pending = [] && st.ftn <> []
    && st.env.is_reporter st.mref
  then begin
    st.completed <- true;
    st.env.notify_nm (Wire.Completion { src = st.mref; what = "lsp-established" })
  end;
  if progressed then st.env.progress ()

let on_peer st ~src msg =
  match msg with
  | Peer_msg.Mpls_label_bind { pipe = _; label; nexthop } -> (
      match find_adj_by_peer st src with
      | Some adj ->
          adj.a_out_label <- Some label;
          adj.a_out_nexthop <- Some nexthop;
          poll st ()
      | None -> st.early <- (src, msg) :: st.early)
  | Peer_msg.Gre_params _ | Peer_msg.Gre_params_ack _ | Peer_msg.Lfv_request _
  | Peer_msg.Lfv_reply _ | Peer_msg.Vlan_vid_bind _ | Peer_msg.Vlan_vid_ack _ ->
      ()

let abstraction () =
  {
    Abstraction.default with
    name = "MPLS";
    up = Some { Abstraction.connectable = [ "IP" ]; dependencies = [] };
    down = Some { Abstraction.connectable = [ "ETH" ]; dependencies = [] };
    peerable = [ "MPLS" ];
    switch = [ Abstraction.Down_up; Abstraction.Up_down; Abstraction.Down_down ];
    perf_reporting = [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes"; "switched_packets" ];
    (* the hint the paper's path chooser uses to prefer the MPLS path *)
    fast_forwarding = true;
  }

let make ~env ~mref () =
  let st =
    {
      env;
      mref;
      adjacencies = [];
      up_pipes = [];
      pending = [];
      ftn = [];
      xconnects = [];
      next_label = 2001;
      completed = false;
      early = [];
    }
  in
  let replay_early () =
    let replay, keep =
      List.partition (fun (src, _) -> find_adj_by_peer st src <> None) st.early
    in
    st.early <- keep;
    List.iter (fun (src, m) -> on_peer st ~src m) replay
  in
  {
    (no_op_module mref abstraction) with
    create_pipe =
      (fun spec role ->
        match role with
        | `Bottom ->
            st.up_pipes <-
              spec
              :: List.filter (fun s -> s.Primitive.pipe_id <> spec.Primitive.pipe_id) st.up_pipes;
            poll st ()
        | `Top -> (
            match spec.Primitive.peer_top with
            | None -> ()
            | Some peer
              when (match find_adj_by_pipe st spec.Primitive.pipe_id with
                   | Some adj -> adj.a_peer = peer
                   | None -> false) ->
                (* idempotent re-execution (recovery replay, drift resync):
                   keep the established adjacency and its label, just
                   re-announce it to the peer *)
                let adj = Option.get (find_adj_by_pipe st spec.Primitive.pipe_id) in
                announce_label st adj;
                replay_early ();
                poll st ()
            | Some peer ->
                run_cmd st.env.device "modprobe mpls";
                run_cmd st.env.device "modprobe mpls4";
                let label = st.next_label in
                st.next_label <- st.next_label + 1;
                let adj =
                  {
                    a_spec = spec;
                    a_peer = peer;
                    a_in_label = label;
                    a_out_label = None;
                    a_out_nexthop = None;
                  }
                in
                st.adjacencies <-
                  adj
                  :: List.filter
                       (fun a -> a.a_spec.Primitive.pipe_id <> spec.Primitive.pipe_id)
                       st.adjacencies;
                let iface = iface_of_adj st adj in
                run_cmdf st.env.device "mpls labelspace set dev %s labelspace 0" iface;
                run_cmdf st.env.device "mpls ilm add label gen %d labelspace 0" label;
                announce_label st adj;
                replay_early ();
                poll st ()));
    delete_pipe =
      (fun pid ->
        (match find_adj_by_pipe st pid with
        | Some adj ->
            run_cmdf st.env.device "mpls ilm del label gen %d labelspace 0" adj.a_in_label;
            (* the cross-connects (and their nhlfe entries) hanging off this
               adjacency's label die with it *)
            List.iter
              (fun (l, k) -> if l = adj.a_in_label then run_cmdf st.env.device "mpls nhlfe del key %d" k)
              st.xconnects;
            st.xconnects <- List.filter (fun (l, _) -> l <> adj.a_in_label) st.xconnects
        | None -> ());
        (* an FTN entry for a deleted up pipe must not satisfy the next
           script's ftn-key query with a key pointing at the old adjacency:
           pipe ids are reused across scripts *)
        (match List.assoc_opt pid st.ftn with
        | Some (key, _) -> run_cmdf st.env.device "mpls nhlfe del key %s" key
        | None -> ());
        st.ftn <- List.filter (fun (up, _) -> up <> pid) st.ftn;
        (* reclaim the label if it was the most recent allocation, so a
           backed-out script leaves the allocator where it found it *)
        (match find_adj_by_pipe st pid with
        | Some adj when adj.a_in_label = st.next_label - 1 -> st.next_label <- adj.a_in_label
        | _ -> ());
        st.adjacencies <-
          List.filter (fun a -> a.a_spec.Primitive.pipe_id <> pid) st.adjacencies;
        st.up_pipes <- List.filter (fun s -> s.Primitive.pipe_id <> pid) st.up_pipes;
        if st.up_pipes = [] && st.adjacencies = [] then st.completed <- false);
    create_switch =
      (fun rule ->
        if not (List.mem rule st.pending) then st.pending <- st.pending @ [ rule ];
        poll st ());
    delete_switch = (fun rule -> st.pending <- List.filter (( <> ) rule) st.pending);
    on_peer = on_peer st;
    fields =
      (fun key ->
        match String.split_on_char ':' key with
        | [ "ftn-key"; pid ] -> Option.map fst (List.assoc_opt pid st.ftn)
        | [ "ftn-via"; pid ] -> Option.map snd (List.assoc_opt pid st.ftn)
        | _ -> None);
    perf =
      (fun () ->
        (* per adjacency pipe: labelled traffic on the interface below it;
           the "local" pseudo-pipe carries the label-switching engine's
           aggregate switched/drop-cause counters *)
        let dev = st.env.device in
        let adj_entries =
          List.map
            (fun adj ->
              let c =
                match
                  Option.bind
                    (st.env.local_query adj.a_spec.Primitive.bottom "iface")
                    (Netsim.Device.find_iface dev)
                with
                | Some i -> fun n -> Netsim.Counters.get i.Netsim.Device.if_counters n
                | None -> fun _ -> 0
              in
              ( adj.a_spec.Primitive.pipe_id,
                [
                  ("up_frames", c "rx_mpls");
                  ("up_bytes", c "rx_mpls_bytes");
                  ("down_frames", c "tx_mpls");
                  ("down_bytes", c "tx_mpls_bytes");
                ] ))
            st.adjacencies
        in
        let d n = Netsim.Counters.get dev.Netsim.Device.dev_counters n in
        adj_entries
        @ [
            ( "local",
              [
                ("switched_packets", d "mpls_switched");
                ("drop:no_ilm", d "mpls_no_ilm_drop");
                ("drop:no_xc", d "mpls_no_xc_drop");
                ("drop:no_nhlfe", d "mpls_no_nhlfe_drop");
                ("drop:ttl", d "mpls_ttl_drop");
              ] );
          ]);
    actual =
      (fun () ->
        List.map
          (fun adj ->
            ( "adjacency:" ^ adj.a_spec.Primitive.pipe_id,
              Printf.sprintf "in-label=%d out-label=%s" adj.a_in_label
                (match adj.a_out_label with Some l -> string_of_int l | None -> "?") ))
          st.adjacencies
        @ List.map (fun (l, k) -> ("xc:" ^ string_of_int l, "nhlfe " ^ string_of_int k)) st.xconnects
        @ List.map (fun r -> (Fmt.str "pending[%a]" Primitive.pp_rule r, "waiting")) st.pending);
    poll = poll st;
    self_test =
      (fun ~against:_ ~reply ->
        let unresolved = List.filter (fun a -> a.a_out_label = None) st.adjacencies in
        if st.pending <> [] then reply ~ok:false ~detail:"switch rules still pending"
        else if unresolved <> [] then reply ~ok:false ~detail:"label bindings missing"
        else reply ~ok:true ~detail:"LSP state consistent");
  }
