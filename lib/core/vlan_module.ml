(* The VLAN protocol module on layer-2 switches (figure 9). The NM creates a
   customer-side pipe (peered with the far switch's VLAN module) and
   trunk-side pipes (peered with adjacent VLAN modules); the ingress module
   allocates a VLAN id, propagates it hop by hop, and each module then
   programs its switch ports (QinQ tunnel port towards the customer, tagged
   trunks between switches) — the state the CatOS script of figure 9(a)
   writes by hand. *)

open Module_impl

(* The VLAN id pool starts where the paper's example does. *)
let first_vid = 22

(* MTU needed on the trunk VLAN so a full-size tagged customer frame
   survives the extra QinQ tag — the "ensure MTU is set properly" comment
   of figure 9(a). *)
let tunnel_mtu = 1504

type pipe_state = {
  spec : Primitive.pipe_spec;
  role : role;
  (* [role = `Bottom]: customer-side pipe, peer is the far-end VLAN module;
     [role = `Top]: trunk-side pipe, peer is the adjacent VLAN module. *)
}

type state = {
  env : env;
  mref : Ids.t;
  mutable pipes : pipe_state list;
  mutable vid : int option;
  mutable acked : Ids.t list; (* peers that confirmed the vid *)
  mutable rules : Primitive.switch_rule list;
  mutable applied : bool;
  mutable completed : bool;
  mutable early : (Ids.t * Peer_msg.t) list; (* peer msgs that raced our bundle *)
  mutable applied_ports : (string * [ `Tunnel | `Trunk ]) list; (* for teardown *)
}

let my_peer ps =
  match ps.role with `Top -> ps.spec.Primitive.peer_top | `Bottom -> ps.spec.Primitive.peer_bottom

let customer_pipe st = List.find_opt (fun p -> p.role = `Bottom) st.pipes
let trunk_pipes st = List.filter (fun p -> p.role = `Top) st.pipes

let is_initiator st =
  match customer_pipe st with
  | Some ps -> ( match my_peer ps with Some far -> initiates st.mref far | None -> false)
  | None -> false

let propagate st ~except =
  List.iter
    (fun ps ->
      match my_peer ps with
      | Some peer when not (List.exists (Ids.equal peer) except) ->
          st.env.convey ~src:st.mref ~dst:peer
            (Peer_msg.Vlan_vid_bind
               { pipe = ps.spec.Primitive.pipe_id; vid = Option.get st.vid })
      | _ -> ())
    (trunk_pipes st)

(* Applies port modes once the vid is agreed and the ETH module's switch
   rules reveal which ports are customer- and trunk-facing. *)
let try_apply st =
  match st.vid with
  | None -> ()
  | Some vid ->
      let dev = st.env.device in
      let ok = ref (not st.applied) in
      if !ok then begin
        (* trunk ports, from [P2 <-> P4]-style rules on the ETH module *)
        let trunk_ports =
          List.filter_map
            (fun ps ->
              st.env.local_query ps.spec.Primitive.bottom
                ("trunk-port:" ^ ps.spec.Primitive.pipe_id))
            (trunk_pipes st)
        in
        let tunnel_port =
          match customer_pipe st with
          | Some ps ->
              st.env.local_query ps.spec.Primitive.top
                ("tunnel-port:" ^ ps.spec.Primitive.pipe_id)
          | None -> None
        in
        if List.length trunk_ports <> List.length (trunk_pipes st) then ok := false
        else if customer_pipe st <> None && tunnel_port = None then ok := false
        else begin
          let def = Netsim.Device.vlan_def dev vid in
          def.Netsim.Device.vd_mtu <- tunnel_mtu;
          (match tunnel_port with
          | Some name -> (
              match Netsim.Device.port_by_name dev name with
              | Some p ->
                  p.Netsim.Device.port_mode <- Netsim.Device.Dot1q_tunnel vid;
                  st.applied_ports <- (name, `Tunnel) :: st.applied_ports
              | None -> ok := false)
          | None -> ());
          List.iter
            (fun name ->
              match Netsim.Device.port_by_name dev name with
              | Some p ->
                  (match p.Netsim.Device.port_mode with
                  | Netsim.Device.Trunk tr ->
                      if not (List.mem vid tr.Netsim.Device.allowed) then
                        tr.Netsim.Device.allowed <- vid :: tr.Netsim.Device.allowed
                  | _ ->
                      p.Netsim.Device.port_mode <-
                        Netsim.Device.Trunk { allowed = [ vid ]; native = None });
                  st.applied_ports <- (name, `Trunk) :: st.applied_ports
              | None -> ok := false)
            trunk_ports;
          if !ok then begin
            st.applied <- true;
            (* The far-end module reports the tunnel as established. *)
            if st.env.is_reporter st.mref && not st.completed then begin
              st.completed <- true;
              st.env.notify_nm (Wire.Completion { src = st.mref; what = "vlan-tunnel-established" })
            end
          end
        end
      end

let poll st () =
  (match (st.vid, is_initiator st) with
  | None, true when trunk_pipes st <> [] ->
      st.vid <- Some first_vid;
      propagate st ~except:[]
  | _ -> ());
  try_apply st

(* A bind can arrive before our own bundle: without pipes we could neither
   ack against a pipe nor propagate further, so stash and replay. *)
let peer_known st src =
  List.exists
    (fun ps -> match my_peer ps with Some p -> Ids.equal p src | None -> false)
    st.pipes

let on_peer st ~src msg =
  match msg with
  | Peer_msg.Vlan_vid_bind { pipe = _; vid = _ } when not (peer_known st src) ->
      st.early <- (src, msg) :: st.early
  | Peer_msg.Vlan_vid_bind { pipe = _; vid } ->
      st.vid <- Some vid;
      st.env.convey ~src:st.mref ~dst:src (Peer_msg.Vlan_vid_ack { pipe = "" });
      propagate st ~except:[ src ];
      poll st ();
      st.env.progress ()
  | Peer_msg.Vlan_vid_ack _ ->
      st.acked <- src :: st.acked;
      poll st ()
  | Peer_msg.Gre_params _ | Peer_msg.Gre_params_ack _ | Peer_msg.Lfv_request _
  | Peer_msg.Lfv_reply _ | Peer_msg.Mpls_label_bind _ ->
      ()

let abstraction () =
  {
    Abstraction.default with
    name = "VLAN";
    up = Some { Abstraction.connectable = [ "ETH" ]; dependencies = [] };
    down = Some { Abstraction.connectable = [ "ETH" ]; dependencies = [] };
    peerable = [ "VLAN" ];
    switch = [ Abstraction.Down_up; Abstraction.Up_down; Abstraction.Down_down ];
    perf_reporting = [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes"; "tagged_frames" ];
  }

let make ~env ~mref () =
  let st =
    {
      env;
      mref;
      pipes = [];
      vid = None;
      acked = [];
      rules = [];
      applied = false;
      completed = false;
      early = [];
      applied_ports = [];
    }
  in
  {
    (no_op_module mref abstraction) with
    create_pipe =
      (fun spec role ->
        st.pipes <-
          { spec; role }
          :: List.filter (fun p -> p.spec.Primitive.pipe_id <> spec.Primitive.pipe_id) st.pipes;
        let replay, keep = List.partition (fun (src, _) -> peer_known st src) st.early in
        st.early <- keep;
        List.iter (fun (src, m) -> on_peer st ~src m) replay;
        poll st ());
    delete_pipe =
      (fun pid ->
        let gone, kept =
          List.partition (fun p -> p.spec.Primitive.pipe_id = pid) st.pipes
        in
        st.pipes <- kept;
        (* deprogram the ports we drove once our last pipe goes away *)
        if gone <> [] && st.pipes = [] && st.applied then begin
          List.iter
            (fun (name, kind) ->
              match Netsim.Device.port_by_name st.env.device name with
              | Some p ->
                  (* customer ports go to an isolated holding VLAN rather
                     than the default VLAN, so tearing a tunnel down never
                     leaks customer traffic into the provider's L2 domain *)
                  p.Netsim.Device.port_mode <-
                    (match kind with
                    | `Tunnel -> Netsim.Device.Access 4094
                    | `Trunk -> Netsim.Device.No_vlan)
              | None -> ())
            st.applied_ports;
          st.applied_ports <- [];
          st.applied <- false;
          st.vid <- None
        end);
    create_switch =
      (fun rule ->
        if not (List.mem rule st.rules) then st.rules <- st.rules @ [ rule ];
        poll st ());
    delete_switch = (fun rule -> st.rules <- List.filter (( <> ) rule) st.rules);
    on_peer = on_peer st;
    fields =
      (fun key -> match key with "vid" -> Option.map string_of_int st.vid | _ -> None);
    perf =
      (fun () ->
        (* per programmed port: frames crossing it plus the egress tags the
           trunk pushed (the counter behind "tagged_frames") *)
        List.filter_map
          (fun (name, kind) ->
            match Netsim.Device.port_by_name st.env.device name with
            | Some p ->
                let c n = Netsim.Counters.get p.Netsim.Device.port_counters n in
                Some
                  ( (match kind with `Tunnel -> "tunnel:" | `Trunk -> "trunk:") ^ name,
                    [
                      ("up_frames", c "rx_frames");
                      ("up_bytes", c "rx_bytes");
                      ("down_frames", c "tx_frames");
                      ("down_bytes", c "tx_bytes");
                      ("tagged_frames", c "tagged_frames");
                      ("drop:rx_vlan", c "rx_vlan_drop");
                      ("drop:tx_mtu_or_vlan", c "tx_mtu_or_vlan_drop");
                    ] )
            | None -> None)
          st.applied_ports);
    actual =
      (fun () ->
        [
          ("vid", match st.vid with Some v -> string_of_int v | None -> "unassigned");
          ("applied", string_of_bool st.applied);
        ]);
    poll = poll st;
    self_test =
      (fun ~against:_ ~reply ->
        if st.applied then reply ~ok:true ~detail:"vlan state programmed"
        else reply ~ok:false ~detail:"vlan tunnel not established");
  }
