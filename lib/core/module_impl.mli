(** The interface every CONMan protocol module implements, and the
    environment its device's management agent provides.

    A protocol module is a wrapper around an existing protocol
    implementation (§III: "modules can be implemented as wrappers around
    existing implementations"): it exposes the generic abstraction and
    translates the NM's primitives into low-level state, coordinating
    protocol-specific parameters with its peers via conveyMessage. *)

(** What the agent provides to each module. *)
type env = {
  device : Netsim.Device.t;
  my_dev : string;
  convey : src:Ids.t -> dst:Ids.t -> Peer_msg.t -> unit;
      (** conveyMessage: module-to-module, relayed by the NM *)
  notify_nm : Wire.t -> unit; (** unsolicited Completion/Trigger messages *)
  local_query : Ids.t -> string -> string option;
      (** intra-device listFieldsAndValues *)
  domain_prefix : string -> string option; (** NM annex knowledge (§III-C) *)
  domains : unit -> (string * string) list;
  is_reporter : Ids.t -> bool;
  progress : unit -> unit; (** ask the agent to re-poll all modules *)
  schedule : delay_ns:int64 -> (unit -> unit) -> unit;
}

type role = [ `Top | `Bottom ]
(** Our position on a pipe: [`Top] means the pipe hangs below us (our down
    pipe); [`Bottom] means it is our up pipe. *)

type t = {
  mref : Ids.t;
  abstraction : unit -> Abstraction.t; (** what showPotential returns *)
  create_pipe : Primitive.pipe_spec -> role -> unit;
  delete_pipe : string -> unit;
  create_switch : Primitive.switch_rule -> unit;
  delete_switch : Primitive.switch_rule -> unit;
  create_filter : drop_src:Ids.t -> drop_dst:Ids.t -> unit;
  delete_filter : drop_src:Ids.t -> drop_dst:Ids.t -> unit;
  create_perf : pipe_id:string -> rate_kbps:int -> unit;
      (** performance-enforcement state for a pipe (rate limiting) *)
  delete_perf : pipe_id:string -> unit;
  set_address : addr:string -> plen:int -> unit;
      (** NM-assigned address (the paper's DHCP-like exception) *)
  on_peer : src:Ids.t -> Peer_msg.t -> unit; (** conveyMessage delivery *)
  fields : string -> string option; (** listFieldsAndValues backing *)
  actual : unit -> (string * string) list; (** what showActual returns *)
  perf : unit -> (string * (string * int) list) list;
      (** what showPerf returns: pipe id -> monotonic counter snapshot,
          covering the abstraction's advertised [perf_reporting] names *)
  poll : unit -> unit; (** retry deferred work *)
  self_test : against:Ids.t option -> reply:(ok:bool -> detail:string -> unit) -> unit;
      (** data-plane/state self test (§II-D.2); [against] probes towards
          that module instead of the default checks *)
}

val no_op_module : Ids.t -> (unit -> Abstraction.t) -> t
(** A module that accepts everything and does nothing — the base record
    concrete modules override. *)

val initiates : Ids.t -> Ids.t -> bool
(** Deterministic initiator election between two peers (the lower
    (device, module) id starts negotiations/exchanges). *)

val run_cmd : Netsim.Device.t -> string -> unit
(** Runs one device-level command line through the Linux CLI wrapper — the
    same interpreter the "today" scripts use. *)

val run_cmdf : Netsim.Device.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
