(* Messages exchanged between the NM and the management agents over the
   management channel, and their byte encoding. *)

type annex = {
  (* NM knowledge shipped alongside a script bundle: address-domain
     resolutions and role hints. This mirrors the paper's §III-C admission
     that the NM explicitly knows IP addresses and domains; it is not part
     of the counted CONMan script. *)
  domains : (string * string) list; (* domain name -> prefix *)
  reporter : Ids.t option; (* module that reports path completion *)
}

let empty_annex = { domains = []; reporter = None }

type t =
  (* device -> NM: physical connectivity announcement *)
  | Hello of { ports : (string * string * string) list (* port, peer dev, peer port *) }
  (* NM -> device *)
  | Show_potential_req of { req : int }
  | Show_actual_req of { req : int }
  (* showPerf: the generic query over the abstraction's performance aspect —
     per-pipe counter snapshots from every module (§II-B's perf reporting) *)
  | Show_perf_req of { req : int }
  | Bundle of { req : int; cmds : Primitive.t list; annex : annex }
  | Nm_takeover of { nm : string; epoch : int }
      (* a standby NM announces it is now primary, under a new leadership
         epoch; agents reject announcements that are not strictly newer *)
  (* Leadership fence: an NM holding a non-zero epoch wraps everything it
     sends, so agents can reject frames from a deposed primary. Unwrapped
     frames are treated as epoch 0 (the single-NM legacy mode). *)
  | Fenced of { epoch : int; msg : t }
  (* Trace context piggyback: a goal-bearing frame (bundle, federation
     message) carries the span doing the work, so the receiving station
     can parent its own spans correctly and lower layers can attribute
     retries/sheds to the goal. Unwrapped frames simply have no trace. *)
  | Traced of { ctx : Obs.Trace.ctx; msg : t }
  (* NM <-> NM high availability (lib/core/ha.ml): heartbeats for failure
     detection and continuous journal/in-flight replication to the standby *)
  | Ha_heartbeat of { epoch : int; seq : int }
  | Ha_journal of { epoch : int; seq : int; entry : Intent.entry }
  | Ha_journal_ack of { epoch : int; upto : int }
  | Ha_inflight of { epoch : int; req : int; dst : string; msg : t }
  | Ha_confirm of { epoch : int; req : int }
  (* explicit address assignment by the NM (§II-E: the one task the paper
     keeps protocol-specific and centralised, like a DHCP server) *)
  | Set_address of { req : int; target : Ids.t; addr : string; plen : int }
  | Self_test_req of { req : int; target : Ids.t; against : Ids.t option }
  (* device -> NM *)
  | Show_potential_resp of { req : int; modules : (Ids.t * Abstraction.t) list }
  | Show_actual_resp of { req : int; state : (Ids.t * (string * string) list) list }
  (* per module: pipe id -> monotonic counter snapshot *)
  | Show_perf_resp of { req : int; perf : (Ids.t * (string * (string * int) list) list) list }
  | Bundle_ack of { req : int } (* explicit success: the bundle was applied *)
  | Ack of { req : int } (* generic ack for requests without a richer reply *)
  | Bundle_err of { req : int; error : string }
  | Self_test_resp of { req : int; target : Ids.t; ok : bool; detail : string }
  | Completion of { src : Ids.t; what : string }
  | Trigger of { src : Ids.t; field : string; value : string }
  (* module -> NM -> module *)
  | Convey of { src : Ids.t; dst : Ids.t; payload : Peer_msg.t }
  (* NM <-> NM federation (lib/federation): each NM owns one administrative
     domain; cross-domain goals are planned by the goal's home NM and
     executed by delegation. Adverts export only border modules plus an
     abridged reachability summary — never the raw internal topology. *)
  | Fed_advert of {
      domain : string; (* administrative domain name *)
      nm : string; (* station id of the owning NM *)
      borders : Ids.t list; (* border modules facing other domains *)
      summary : (string * int) list; (* customer domain -> reachable-module count *)
      devices : string list; (* device ids the NM owns (for relay routing) *)
    }
  (* coordinator -> peer: expand the peer's segment of a goal — the walk
     from [entry_dev] (the peer's border device) towards [target] *)
  | Fed_plan_req of { req : int; domain : string; entry_dev : string; target : Ids.t }
  (* peer -> coordinator: the scoped expansion — per device on the segment,
     its links and module abstractions, plus the address knowledge needed
     to plan over them *)
  | Fed_plan_resp of {
      req : int;
      devices : (string * (string * string * string) list * (Ids.t * Abstraction.t) list) list;
      module_domains : (Ids.t * string) list;
      prefixes : (string * string) list;
    }
  | Fed_plan_err of { req : int; error : string }
  (* two-phase stitched execution: the coordinator ships each peer its
     per-device slices of the one global script; the peer acks only once
     every slice is confirmed by its devices. [domain] names the
     coordinator so (domain, gid) is unique across coordinators. *)
  | Fed_commit of {
      domain : string;
      gid : int;
      slices : (string * Primitive.t list) list;
      reporter : Ids.t option;
    }
  | Fed_commit_ack of { gid : int }
  | Fed_commit_err of { gid : int; error : string }
  (* distributed back-out: every participant dismantles its slices, so no
     domain is left half-configured when a segment fails *)
  | Fed_abort of { domain : string; gid : int }
  | Fed_abort_ack of { gid : int }
  (* cross-domain conveyMessage: the NM owning the source module forwards
     the opaque payload to the NM owning the destination module *)
  | Fed_relay of { src : Ids.t; dst : Ids.t; payload : Peer_msg.t }

let annex_to_sexp a =
  Sexp.List
    [
      Sexp.List (List.map (Sexp.of_pair Sexp.atom Sexp.atom) a.domains);
      Sexp.of_option Sexp.of_mref a.reporter;
    ]

let annex_of_sexp = function
  | Sexp.List [ Sexp.List d; r ] ->
      {
        domains = List.map (Sexp.to_pair Sexp.to_atom Sexp.to_atom) d;
        reporter = Sexp.to_option Sexp.to_mref r;
      }
  | _ -> raise (Sexp.Parse_error "annex")

let rec to_sexp msg =
  let a = Sexp.atom in
  match msg with
  | Hello { ports } ->
      Sexp.List
        [
          a "hello";
          Sexp.List
            (List.map (fun (p, d, pp) -> Sexp.List [ a p; a d; a pp ]) ports);
        ]
  | Show_potential_req { req } -> Sexp.List [ a "show-potential"; Sexp.of_int req ]
  | Show_actual_req { req } -> Sexp.List [ a "show-actual"; Sexp.of_int req ]
  | Show_perf_req { req } -> Sexp.List [ a "show-perf"; Sexp.of_int req ]
  | Bundle { req; cmds; annex } ->
      Sexp.List
        [ a "bundle"; Sexp.of_int req; Sexp.List (List.map Primitive.to_sexp cmds); annex_to_sexp annex ]
  | Nm_takeover { nm; epoch } -> Sexp.List [ a "nm-takeover"; a nm; Sexp.of_int epoch ]
  | Fenced { epoch; msg } -> Sexp.List [ a "fenced"; Sexp.of_int epoch; to_sexp msg ]
  | Traced { ctx; msg } -> Sexp.List [ a "traced"; Obs_codec.ctx_to_sexp ctx; to_sexp msg ]
  | Ha_heartbeat { epoch; seq } ->
      Sexp.List [ a "ha-heartbeat"; Sexp.of_int epoch; Sexp.of_int seq ]
  | Ha_journal { epoch; seq; entry } ->
      Sexp.List [ a "ha-journal"; Sexp.of_int epoch; Sexp.of_int seq; Intent.entry_to_sexp entry ]
  | Ha_journal_ack { epoch; upto } ->
      Sexp.List [ a "ha-journal-ack"; Sexp.of_int epoch; Sexp.of_int upto ]
  | Ha_inflight { epoch; req; dst; msg } ->
      Sexp.List [ a "ha-inflight"; Sexp.of_int epoch; Sexp.of_int req; a dst; to_sexp msg ]
  | Ha_confirm { epoch; req } ->
      Sexp.List [ a "ha-confirm"; Sexp.of_int epoch; Sexp.of_int req ]
  | Set_address { req; target; addr; plen } ->
      Sexp.List [ a "set-address"; Sexp.of_int req; Sexp.of_mref target; a addr; Sexp.of_int plen ]
  | Self_test_req { req; target; against } ->
      Sexp.List
        [ a "self-test"; Sexp.of_int req; Sexp.of_mref target; Sexp.of_option Sexp.of_mref against ]
  | Show_potential_resp { req; modules } ->
      Sexp.List
        [
          a "potential";
          Sexp.of_int req;
          Sexp.List (List.map (fun (m, ab) -> Sexp.List [ Sexp.of_mref m; Abstraction.to_sexp ab ]) modules);
        ]
  | Show_actual_resp { req; state } ->
      Sexp.List
        [
          a "actual";
          Sexp.of_int req;
          Sexp.List
            (List.map
               (fun (m, kvs) ->
                 Sexp.List
                   [ Sexp.of_mref m; Sexp.List (List.map (Sexp.of_pair a a) kvs) ])
               state);
        ]
  | Show_perf_resp { req; perf } ->
      Sexp.List
        [
          a "perf";
          Sexp.of_int req;
          Sexp.List
            (List.map
               (fun (m, pipes) ->
                 Sexp.List
                   [
                     Sexp.of_mref m;
                     Sexp.List
                       (List.map
                          (fun (pipe, kvs) ->
                            Sexp.List
                              [ a pipe; Sexp.List (List.map (Sexp.of_pair a Sexp.of_int) kvs) ])
                          pipes);
                   ])
               perf);
        ]
  | Bundle_ack { req } -> Sexp.List [ a "bundle-ack"; Sexp.of_int req ]
  | Ack { req } -> Sexp.List [ a "ack"; Sexp.of_int req ]
  | Bundle_err { req; error } -> Sexp.List [ a "bundle-err"; Sexp.of_int req; a error ]
  | Self_test_resp { req; target; ok; detail } ->
      Sexp.List [ a "self-test-resp"; Sexp.of_int req; Sexp.of_mref target; Sexp.of_bool ok; a detail ]
  | Completion { src; what } -> Sexp.List [ a "completion"; Sexp.of_mref src; a what ]
  | Trigger { src; field; value } -> Sexp.List [ a "trigger"; Sexp.of_mref src; a field; a value ]
  | Convey { src; dst; payload } ->
      Sexp.List [ a "convey"; Sexp.of_mref src; Sexp.of_mref dst; Peer_msg.to_sexp payload ]
  | Fed_advert { domain; nm; borders; summary; devices } ->
      Sexp.List
        [
          a "fed-advert";
          a domain;
          a nm;
          Sexp.List (List.map Sexp.of_mref borders);
          Sexp.List (List.map (Sexp.of_pair a Sexp.of_int) summary);
          Sexp.List (List.map a devices);
        ]
  | Fed_plan_req { req; domain; entry_dev; target } ->
      Sexp.List [ a "fed-plan"; Sexp.of_int req; a domain; a entry_dev; Sexp.of_mref target ]
  | Fed_plan_resp { req; devices; module_domains; prefixes } ->
      Sexp.List
        [
          a "fed-plan-resp";
          Sexp.of_int req;
          Sexp.List
            (List.map
               (fun (dev, links, mods) ->
                 Sexp.List
                   [
                     a dev;
                     Sexp.List (List.map (fun (p, d, pp) -> Sexp.List [ a p; a d; a pp ]) links);
                     Sexp.List
                       (List.map (fun (m, ab) -> Sexp.List [ Sexp.of_mref m; Abstraction.to_sexp ab ]) mods);
                   ])
               devices);
          Sexp.List (List.map (Sexp.of_pair Sexp.of_mref a) module_domains);
          Sexp.List (List.map (Sexp.of_pair a a) prefixes);
        ]
  | Fed_plan_err { req; error } -> Sexp.List [ a "fed-plan-err"; Sexp.of_int req; a error ]
  | Fed_commit { domain; gid; slices; reporter } ->
      Sexp.List
        [
          a "fed-commit";
          a domain;
          Sexp.of_int gid;
          Sexp.List
            (List.map
               (fun (dev, prims) -> Sexp.List [ a dev; Sexp.List (List.map Primitive.to_sexp prims) ])
               slices);
          Sexp.of_option Sexp.of_mref reporter;
        ]
  | Fed_commit_ack { gid } -> Sexp.List [ a "fed-commit-ack"; Sexp.of_int gid ]
  | Fed_commit_err { gid; error } -> Sexp.List [ a "fed-commit-err"; Sexp.of_int gid; a error ]
  | Fed_abort { domain; gid } -> Sexp.List [ a "fed-abort"; a domain; Sexp.of_int gid ]
  | Fed_abort_ack { gid } -> Sexp.List [ a "fed-abort-ack"; Sexp.of_int gid ]
  | Fed_relay { src; dst; payload } ->
      Sexp.List [ a "fed-relay"; Sexp.of_mref src; Sexp.of_mref dst; Peer_msg.to_sexp payload ]

let rec of_sexp sexp =
  let s = Sexp.to_atom in
  match sexp with
  | Sexp.List [ Sexp.Atom "hello"; Sexp.List ports ] ->
      Hello
        {
          ports =
            List.map
              (function
                | Sexp.List [ p; d; pp ] -> (s p, s d, s pp)
                | _ -> raise (Sexp.Parse_error "hello port"))
              ports;
        }
  | Sexp.List [ Sexp.Atom "show-potential"; req ] -> Show_potential_req { req = Sexp.to_int req }
  | Sexp.List [ Sexp.Atom "show-actual"; req ] -> Show_actual_req { req = Sexp.to_int req }
  | Sexp.List [ Sexp.Atom "show-perf"; req ] -> Show_perf_req { req = Sexp.to_int req }
  | Sexp.List [ Sexp.Atom "bundle"; req; Sexp.List cmds; annex ] ->
      Bundle
        { req = Sexp.to_int req; cmds = List.map Primitive.of_sexp cmds; annex = annex_of_sexp annex }
  | Sexp.List [ Sexp.Atom "nm-takeover"; nm; epoch ] ->
      Nm_takeover { nm = s nm; epoch = Sexp.to_int epoch }
  | Sexp.List [ Sexp.Atom "fenced"; epoch; msg ] ->
      Fenced { epoch = Sexp.to_int epoch; msg = of_sexp msg }
  | Sexp.List [ Sexp.Atom "traced"; ctx; msg ] ->
      Traced { ctx = Obs_codec.ctx_of_sexp ctx; msg = of_sexp msg }
  | Sexp.List [ Sexp.Atom "ha-heartbeat"; epoch; seq ] ->
      Ha_heartbeat { epoch = Sexp.to_int epoch; seq = Sexp.to_int seq }
  | Sexp.List [ Sexp.Atom "ha-journal"; epoch; seq; entry ] ->
      Ha_journal
        { epoch = Sexp.to_int epoch; seq = Sexp.to_int seq; entry = Intent.entry_of_sexp entry }
  | Sexp.List [ Sexp.Atom "ha-journal-ack"; epoch; upto ] ->
      Ha_journal_ack { epoch = Sexp.to_int epoch; upto = Sexp.to_int upto }
  | Sexp.List [ Sexp.Atom "ha-inflight"; epoch; req; dst; msg ] ->
      Ha_inflight
        { epoch = Sexp.to_int epoch; req = Sexp.to_int req; dst = s dst; msg = of_sexp msg }
  | Sexp.List [ Sexp.Atom "ha-confirm"; epoch; req ] ->
      Ha_confirm { epoch = Sexp.to_int epoch; req = Sexp.to_int req }
  | Sexp.List [ Sexp.Atom "set-address"; req; t; addr; plen ] ->
      Set_address
        { req = Sexp.to_int req; target = Sexp.to_mref t; addr = s addr; plen = Sexp.to_int plen }
  | Sexp.List [ Sexp.Atom "self-test"; req; t; against ] ->
      Self_test_req
        { req = Sexp.to_int req; target = Sexp.to_mref t; against = Sexp.to_option Sexp.to_mref against }
  | Sexp.List [ Sexp.Atom "potential"; req; Sexp.List mods ] ->
      Show_potential_resp
        {
          req = Sexp.to_int req;
          modules =
            List.map
              (function
                | Sexp.List [ m; ab ] -> (Sexp.to_mref m, Abstraction.of_sexp ab)
                | _ -> raise (Sexp.Parse_error "potential module"))
              mods;
        }
  | Sexp.List [ Sexp.Atom "actual"; req; Sexp.List mods ] ->
      Show_actual_resp
        {
          req = Sexp.to_int req;
          state =
            List.map
              (function
                | Sexp.List [ m; Sexp.List kvs ] ->
                    (Sexp.to_mref m, List.map (Sexp.to_pair s s) kvs)
                | _ -> raise (Sexp.Parse_error "actual module"))
              mods;
        }
  | Sexp.List [ Sexp.Atom "perf"; req; Sexp.List mods ] ->
      Show_perf_resp
        {
          req = Sexp.to_int req;
          perf =
            List.map
              (function
                | Sexp.List [ m; Sexp.List pipes ] ->
                    ( Sexp.to_mref m,
                      List.map
                        (function
                          | Sexp.List [ pipe; Sexp.List kvs ] ->
                              (s pipe, List.map (Sexp.to_pair s Sexp.to_int) kvs)
                          | _ -> raise (Sexp.Parse_error "perf pipe"))
                        pipes )
                | _ -> raise (Sexp.Parse_error "perf module"))
              mods;
        }
  | Sexp.List [ Sexp.Atom "bundle-ack"; req ] -> Bundle_ack { req = Sexp.to_int req }
  | Sexp.List [ Sexp.Atom "ack"; req ] -> Ack { req = Sexp.to_int req }
  | Sexp.List [ Sexp.Atom "bundle-err"; req; e ] ->
      Bundle_err { req = Sexp.to_int req; error = s e }
  | Sexp.List [ Sexp.Atom "self-test-resp"; req; t; ok; d ] ->
      Self_test_resp
        { req = Sexp.to_int req; target = Sexp.to_mref t; ok = Sexp.to_bool ok; detail = s d }
  | Sexp.List [ Sexp.Atom "completion"; src; what ] ->
      Completion { src = Sexp.to_mref src; what = s what }
  | Sexp.List [ Sexp.Atom "trigger"; src; f; v ] ->
      Trigger { src = Sexp.to_mref src; field = s f; value = s v }
  | Sexp.List [ Sexp.Atom "convey"; src; dst; p ] ->
      Convey { src = Sexp.to_mref src; dst = Sexp.to_mref dst; payload = Peer_msg.of_sexp p }
  | Sexp.List [ Sexp.Atom "fed-advert"; domain; nm; Sexp.List borders; Sexp.List summary; Sexp.List devices ] ->
      Fed_advert
        {
          domain = s domain;
          nm = s nm;
          borders = List.map Sexp.to_mref borders;
          summary = List.map (Sexp.to_pair s Sexp.to_int) summary;
          devices = List.map s devices;
        }
  | Sexp.List [ Sexp.Atom "fed-plan"; req; domain; entry; target ] ->
      Fed_plan_req
        { req = Sexp.to_int req; domain = s domain; entry_dev = s entry; target = Sexp.to_mref target }
  | Sexp.List [ Sexp.Atom "fed-plan-resp"; req; Sexp.List devices; Sexp.List md; Sexp.List pfx ] ->
      Fed_plan_resp
        {
          req = Sexp.to_int req;
          devices =
            List.map
              (function
                | Sexp.List [ dev; Sexp.List links; Sexp.List mods ] ->
                    ( s dev,
                      List.map
                        (function
                          | Sexp.List [ p; d; pp ] -> (s p, s d, s pp)
                          | _ -> raise (Sexp.Parse_error "fed-plan link"))
                        links,
                      List.map
                        (function
                          | Sexp.List [ m; ab ] -> (Sexp.to_mref m, Abstraction.of_sexp ab)
                          | _ -> raise (Sexp.Parse_error "fed-plan module"))
                        mods )
                | _ -> raise (Sexp.Parse_error "fed-plan device"))
              devices;
          module_domains = List.map (Sexp.to_pair Sexp.to_mref s) md;
          prefixes = List.map (Sexp.to_pair s s) pfx;
        }
  | Sexp.List [ Sexp.Atom "fed-plan-err"; req; e ] ->
      Fed_plan_err { req = Sexp.to_int req; error = s e }
  | Sexp.List [ Sexp.Atom "fed-commit"; domain; gid; Sexp.List slices; reporter ] ->
      Fed_commit
        {
          domain = s domain;
          gid = Sexp.to_int gid;
          slices =
            List.map
              (function
                | Sexp.List [ dev; Sexp.List prims ] -> (s dev, List.map Primitive.of_sexp prims)
                | _ -> raise (Sexp.Parse_error "fed-commit slice"))
              slices;
          reporter = Sexp.to_option Sexp.to_mref reporter;
        }
  | Sexp.List [ Sexp.Atom "fed-commit-ack"; gid ] -> Fed_commit_ack { gid = Sexp.to_int gid }
  | Sexp.List [ Sexp.Atom "fed-commit-err"; gid; e ] ->
      Fed_commit_err { gid = Sexp.to_int gid; error = s e }
  | Sexp.List [ Sexp.Atom "fed-abort"; domain; gid ] ->
      Fed_abort { domain = s domain; gid = Sexp.to_int gid }
  | Sexp.List [ Sexp.Atom "fed-abort-ack"; gid ] -> Fed_abort_ack { gid = Sexp.to_int gid }
  | Sexp.List [ Sexp.Atom "fed-relay"; src; dst; p ] ->
      Fed_relay { src = Sexp.to_mref src; dst = Sexp.to_mref dst; payload = Peer_msg.of_sexp p }
  | _ -> raise (Sexp.Parse_error "wire message")

let encode t = Bytes.of_string (Sexp.to_string (to_sexp t))

(* Decode must be total up to [Sexp.Parse_error]: the payload arrived off
   the wire, and a malformed frame (fuzzed, corrupted, or from a buggy
   peer) must surface as a parse error the caller already handles — never
   as a Match_failure or Failure escaping from a nested codec. *)
let decode b =
  try of_sexp (Sexp.of_string (Bytes.to_string b)) with
  | Sexp.Parse_error _ as e -> raise e
  | _ -> raise (Sexp.Parse_error "undecodable wire message")

(* Admission-control class of a message, 0 (never shed) to 3 (shed first).
   The class of a fenced frame is the class of what it carries. *)
let rec priority_of = function
  | Ha_heartbeat _ | Nm_takeover _ -> 0
  | Fenced { msg; _ } | Traced { msg; _ } -> priority_of msg
  | Bundle _ | Bundle_ack _ | Bundle_err _ | Ack _ | Set_address _ | Ha_journal _
  | Ha_journal_ack _ | Ha_inflight _ | Ha_confirm _
  (* inter-NM federation traffic rides with scripts: a shed advert or
     commit would wedge a cross-domain goal exactly when the plane is
     stressed *)
  | Fed_advert _ | Fed_plan_req _ | Fed_plan_resp _ | Fed_plan_err _ | Fed_commit _
  | Fed_commit_ack _ | Fed_commit_err _ | Fed_abort _ | Fed_abort_ack _ | Fed_relay _ ->
      1
  | Hello _ | Show_potential_req _ | Show_potential_resp _ | Show_actual_req _
  | Show_actual_resp _ | Self_test_req _ | Self_test_resp _ | Completion _ | Trigger _
  | Convey _ ->
      2
  | Show_perf_req _ | Show_perf_resp _ -> 3

(* The trace context a frame carries, looking through fences. *)
let rec trace_of = function
  | Traced { ctx; _ } -> Some ctx
  | Fenced { msg; _ } -> trace_of msg
  | _ -> None

let equal a b = to_sexp a = to_sexp b
let pp ppf t = Sexp.pp ppf (to_sexp t)
