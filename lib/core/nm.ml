(* The Network Manager (§II-D): discovers the network over the management
   channel, harvests module abstractions, achieves high-level connectivity
   goals by generating and executing CONMan scripts, relays conveyMessage
   traffic between modules, and maintains dependencies via triggers.

   The NM is driven from outside the event loop: its helpers send requests
   and run the network to quiescence, while all module coordination happens
   asynchronously inside the run. *)

(* [acks] is deliberately separate from [received]: the paper's Table VI
   counts protocol messages, and explicit success acks are our honesty
   add-on, not part of the accounting being reproduced. *)
type stats = { mutable sent : int; mutable received : int; mutable acks : int }

type t = {
  chan : Mgmt.Channel.t;
  transport : Mgmt.Reliable.t option; (* when the channel is lossy *)
  my_id : string; (* device id of the management station *)
  net : Netsim.Net.t;
  topo : Topology.t;
  stats : stats;
  mutable req : int;
  mutable inflight : (int * string * Wire.t) list;
      (* state-changing requests (bundles, address assignments) sent but
         not yet confirmed — replayed by a standby after take_over *)
  mutable outstanding : int list; (* unanswered request ids *)
  mutable actuals : (int * (Ids.t * (string * string) list) list) list;
  mutable perfs : (int * (Ids.t * (string * (string * int) list) list) list) list;
  mutable completions : (Ids.t * string) list;
  mutable errors : (string * string) list;
  mutable self_tests : (int * (Ids.t * bool * string)) list;
  mutable triggers : (Ids.t * string * string) list;
  mutable convey_log : (Ids.t * Ids.t * Peer_msg.t) list; (* figure-3 trace *)
  mutable active_scripts : Script_gen.script list; (* for dependency repair *)
  mutable auto_repair : bool;
  journal : Intent.journal; (* write-ahead journal of desired state *)
  mutable intents : Intent.t list; (* in id order *)
  mutable next_intent : int;
  pending_deletes : (string, Primitive.t list) Hashtbl.t;
      (* deletion primitives owed to devices that were unreachable when a
         script was backed out — flushed when the device says Hello again,
         so back-out does not leak datapath state onto dead devices *)
  mutable horizon : int64 option;
      (* when set, [run] stops at this virtual time instead of draining the
         queue — lets the monitor interleave with scheduled faults *)
  mutable epoch : int;
      (* leadership epoch (see Ha). 0 = single-NM legacy mode, frames go out
         unfenced; > 0 = every frame is wrapped in Wire.Fenced so agents can
         reject a deposed primary *)
  mutable ha_hook : (src:string -> Wire.t -> unit) option;
      (* receives NM-to-NM HA traffic (heartbeats, journal shipping) and
         takeover announcements — installed by Ha *)
  mutable fed_hook : (src:string -> Wire.t -> unit) option;
      (* receives NM-to-NM federation traffic (adverts, delegated plans,
         two-phase commits, relays) — installed by Fed *)
  mutable convey_relay : (src:Ids.t -> dst:Ids.t -> Peer_msg.t -> unit) option;
      (* invoked instead of direct delivery when a conveyMessage targets a
         module on a device outside this NM's domain *)
  mutable owned_devices : string list option;
      (* None = single-NM legacy mode, the NM owns everything it sees;
         Some l = federated mode, the NM's administrative domain *)
  mutable foreign_writes : int;
      (* state-changing requests sent to devices outside the owned set —
         the federation invariant demands this stays 0 *)
  mutable on_inflight_add : (int * string * Wire.t -> unit) option;
      (* fired when a state-changing request enters the in-flight set —
         Ha ships the delta to the standby *)
  mutable on_confirm : (int -> unit) option;
      (* fired when an in-flight request is confirmed (left the set) *)
  mutable obs : Obs.Trace.t option;
      (* span collector; None = tracing off, all span work is skipped *)
  mutable trace_ctx : Obs.Trace.ctx option;
      (* the ambient span goal-scoped operations run under: bundles sent
         while it is set become its children (and carry the context on the
         wire via Wire.Traced) *)
  req_trace : (int, Obs.Trace.ctx) Hashtbl.t;
      (* request id -> the span tracking that request; re-sends reuse the
         span (an event, never a duplicate span) *)
  mutable registry : Obs.Registry.t option;
      (* metrics registry for phase-latency histograms *)
  mutable rx_ctx : Obs.Trace.ctx option;
      (* context carried by the frame currently being dispatched — the HA
         and federation hooks read it to parent their spans on the
         sender's *)
}

(* An NM holding a non-zero epoch fences everything it sends; agents drop
   frames from lower epochs, so a deposed primary cannot issue conflicting
   configuration. Epoch 0 keeps the legacy single-NM byte encoding. *)
let encode_out t msg =
  Wire.encode (if t.epoch > 0 then Wire.Fenced { epoch = t.epoch; msg } else msg)

let send t ~dst msg =
  t.stats.sent <- t.stats.sent + 1;
  Mgmt.Channel.send t.chan ~src:t.my_id ~dst (encode_out t msg)

(* Looks through the trace wrapper — matchers that compare bundle payloads
   byte-wise (back-out cancellation, federation pending checks) must see
   the bundle itself, whatever context it carries. *)
let rec payload_of = function Wire.Traced { msg; _ } -> payload_of msg | m -> m

(* Opens a span for a goal-scoped operation (achieve, back-out, repair)
   and makes it the ambient parent of every request sent until the
   matching [close_goal]. Nested opens chain naturally: a back-out inside
   an achieve becomes its child. No-ops when tracing is off. *)
let open_goal t name =
  match t.obs with
  | None -> None
  | Some obs ->
      let saved = t.trace_ctx in
      let ctx =
        match saved with
        | Some parent -> Obs.Trace.start ~parent obs name
        | None -> Obs.Trace.start obs name
      in
      t.trace_ctx <- Some ctx;
      Some (ctx, saved)

let close_goal t handle ~status =
  match (t.obs, handle) with
  | Some obs, Some (ctx, saved) ->
      Obs.Trace.finish obs ctx ~status;
      t.trace_ctx <- saved
  | _ -> ()

(* Closes the span tracking request [req]. Failover-replay spans also feed
   the ha.failover_replay_ticks histogram: the ticks between the promoted
   standby re-issuing its predecessor's request and the confirm. *)
let finish_req t req status =
  match (t.obs, Hashtbl.find_opt t.req_trace req) with
  | Some obs, Some ctx ->
      (match (t.registry, Obs.Trace.find obs ctx.Obs.Trace.span) with
      | Some reg, Some s
        when status = "ok"
             && String.length s.Obs.Trace.s_name >= 7
             && String.sub s.Obs.Trace.s_name 0 7 = "replay:" ->
          Obs.Registry.observe reg "ha.failover_replay_ticks"
            (max 0 (Obs.Trace.now obs - s.Obs.Trace.s_start))
      | _ -> ());
      Obs.Trace.finish obs ctx ~status;
      Hashtbl.remove t.req_trace req
  | _ -> ()

(* Does this NM's administrative domain cover [dev]? Unset = legacy
   single-NM mode: everything is ours. *)
let owns t dev =
  match t.owned_devices with None -> true | Some l -> dev = t.my_id || List.mem dev l

(* Sends a state-changing request and remembers it until the agent
   confirms (Bundle_ack / Ack / Bundle_err). *)
let send_req t ~dst ~req msg =
  if not (owns t dst) then t.foreign_writes <- t.foreign_writes + 1;
  (* Attach the trace context. A request already carrying one (a flush or
     takeover replay of a stored wrapped message) just notes the attempt
     on its existing span — re-sends must never mint duplicate spans. *)
  let msg =
    match t.obs with
    | None -> msg
    | Some obs -> (
        match Wire.trace_of msg with
        | Some ctx ->
            Obs.Trace.event obs ctx "reissued";
            msg
        | None -> (
            match Hashtbl.find_opt t.req_trace req with
            | Some ctx ->
                Obs.Trace.event obs ctx "reissued";
                Wire.Traced { ctx; msg }
            | None -> (
                match t.trace_ctx with
                | Some parent ->
                    let ctx = Obs.Trace.start ~parent obs ("bundle:" ^ dst) in
                    Obs.Trace.event obs ctx "sent";
                    Hashtbl.replace t.req_trace req ctx;
                    Wire.Traced { ctx; msg }
                | None -> msg)))
  in
  t.inflight <- (req, dst, msg) :: t.inflight;
  (match t.on_inflight_add with Some f -> f (req, dst, msg) | None -> ());
  send t ~dst msg

let confirm t req =
  match List.partition (fun (r, _, _) -> r = req) t.inflight with
  | [], _ -> ()
  | _, keep ->
      t.inflight <- keep;
      (match t.on_confirm with Some f -> f req | None -> ())

let annex_of t reporter =
  { Wire.domains = t.topo.Topology.domain_prefixes; reporter }

(* [batched:false] ships every primitive as its own message instead of one
   bundle per device — an ablation of the paper's accounting assumption
   that the NM sends "commands to each router" as one unit. *)
let send_script ?(batched = true) t (script : Script_gen.script) =
  List.iter
    (fun (dev, prims) ->
      let ship cmds =
        t.req <- t.req + 1;
        send_req t ~dst:dev ~req:t.req
          (Wire.Bundle { req = t.req; cmds; annex = annex_of t script.Script_gen.reporter })
      in
      if batched then ship prims else List.iter (fun p -> ship [ p ]) prims)
    script.Script_gen.per_device

(* Ships only the slices of [script]'s deletion script that target devices
   the NM can still talk to — used to back out a partially-applied script
   when a device died mid-execution. Slices owed to unreachable devices are
   parked in [pending_deletes] and flushed when the device comes back. *)
let send_deletion_reachable t (script : Script_gen.script) =
  let del = Script_gen.deletion_script script in
  List.iter
    (fun (dev, prims) ->
      if prims <> [] then
        if Topology.is_reachable t.topo dev then begin
          t.req <- t.req + 1;
          send_req t ~dst:dev ~req:t.req
            (Wire.Bundle { req = t.req; cmds = prims; annex = annex_of t None })
        end
        else
          let owed = Option.value ~default:[] (Hashtbl.find_opt t.pending_deletes dev) in
          Hashtbl.replace t.pending_deletes dev (owed @ prims))
    del.Script_gen.per_device

let fresh_req t =
  t.req <- t.req + 1;
  t.outstanding <- t.req :: t.outstanding;
  t.req

(* Per-process NM boot counter; see [create]. *)
let req_stride = 1 lsl 20
let incarnations = ref 0

(* Pins the boot counter — harnesses that need cross-process reproducible
   request ids (the chaos engine) reset it before building a fresh world.
   Never call this while agents from an earlier NM generation share a
   channel with a new one: reused ids would be answered from reply caches. *)
let set_incarnations n = incarnations := n

(* Deletions owed from back-outs that could not reach the device: deliver
   them the moment it proves live again. *)
let settle_debts t src =
  match Hashtbl.find_opt t.pending_deletes src with
  | Some prims when prims <> [] ->
      Hashtbl.remove t.pending_deletes src;
      t.req <- t.req + 1;
      send_req t ~dst:src ~req:t.req
        (Wire.Bundle { req = t.req; cmds = prims; annex = annex_of t None })
  | _ -> Hashtbl.remove t.pending_deletes src

let rec handle t ~src payload =
  match Wire.decode payload with
  | exception (Sexp.Parse_error _ | Mgmt.Frame.Bad_frame _) -> ()
  | msg -> handle_msg t ~src msg

and handle_msg t ~src msg =
  match msg with
  | Wire.Fenced { epoch = _; msg } ->
      (* NM-to-NM frames arrive fenced; the HA layer judges the epochs
         carried inside the messages themselves *)
      handle_msg t ~src msg
  | Wire.Traced { ctx; msg } ->
      (* replies come back traced; request-id correlation already ties
         them to their spans. Remember the context for the duration of
         the dispatch so the federation/HA hooks can parent on it. *)
      t.rx_ctx <- Some ctx;
      handle_msg t ~src msg;
      t.rx_ctx <- None
  | Wire.Ha_heartbeat _ | Wire.Ha_journal _ | Wire.Ha_journal_ack _ | Wire.Ha_inflight _
  | Wire.Ha_confirm _ | Wire.Nm_takeover _ -> (
      (* HA traffic stays out of the Table-VI message accounting *)
      match t.ha_hook with Some f -> f ~src msg | None -> ())
  | Wire.Fed_advert _ | Wire.Fed_plan_req _ | Wire.Fed_plan_resp _ | Wire.Fed_plan_err _
  | Wire.Fed_commit _ | Wire.Fed_commit_ack _ | Wire.Fed_commit_err _ | Wire.Fed_abort _
  | Wire.Fed_abort_ack _ | Wire.Fed_relay _ -> (
      (* inter-NM federation traffic likewise stays out of the accounting *)
      match t.fed_hook with Some f -> f ~src msg | None -> ())
  | _ -> (
      (* Any message from a known device is proof of liveness: if the
         transport had given up on it (marking it unreachable) but the
         device never actually crashed, no Hello will ever arrive — so
         restore reachability here and settle parked deletion debts.
         Hellos are excluded: the Hello arm below does the full rebooted-
         device recovery (re-showPotential + script re-sync). *)
      (match msg with
      | Wire.Hello _ -> ()
      | _ ->
          if Topology.device t.topo src <> None && not (Topology.is_reachable t.topo src)
          then begin
            Topology.set_reachable t.topo src true;
            settle_debts t src
          end);
      (* Success acks stay out of the Table-VI message accounting (they
         are our addition, not the paper's). *)
      (match msg with
      | Wire.Bundle_ack _ | Wire.Ack _ -> ()
      | _ -> t.stats.received <- t.stats.received + 1);
      match msg with
      | Wire.Bundle_ack { req } | Wire.Ack { req } ->
          t.stats.acks <- t.stats.acks + 1;
          finish_req t req "ok";
          confirm t req
      | Wire.Hello { ports } ->
          let recovered =
            Topology.device t.topo src <> None && not (Topology.is_reachable t.topo src)
          in
          Topology.record_hello t.topo ~src ports;
          if recovered then begin
            (* The device came back (§II-E dependency maintenance applied to
               the device itself): relearn its potential and re-apply the
               slices of every active script that configure it. *)
            Topology.set_reachable t.topo src true;
            send t ~dst:src (Wire.Show_potential_req { req = fresh_req t });
            (* settle debts first: deletions owed from back-outs that could
               not reach the device must precede re-applied scripts, since
               pipe ids can collide across scripts *)
            settle_debts t src;
            List.iter
              (fun (script : Script_gen.script) ->
                List.iter
                  (fun (dev, prims) ->
                    if dev = src && prims <> [] then begin
                      t.req <- t.req + 1;
                      send_req t ~dst:dev ~req:t.req
                        (Wire.Bundle
                           { req = t.req; cmds = prims; annex = annex_of t script.Script_gen.reporter })
                    end)
                  script.Script_gen.per_device)
              t.active_scripts
          end
      | Wire.Show_potential_resp { req; modules } ->
          Topology.record_potential t.topo ~src modules;
          t.outstanding <- List.filter (( <> ) req) t.outstanding
      | Wire.Show_actual_resp { req; state } ->
          t.actuals <- (req, state) :: t.actuals;
          t.outstanding <- List.filter (( <> ) req) t.outstanding
      | Wire.Show_perf_resp { req; perf } ->
          t.perfs <- (req, perf) :: t.perfs;
          t.outstanding <- List.filter (( <> ) req) t.outstanding
      | Wire.Convey { src = msrc; dst; payload } -> (
          (* the NM relays module-to-module messages (conveyMessage); a
             destination outside our domain is handed to the federation
             layer, which forwards it to the owning NM *)
          t.convey_log <- (msrc, dst, payload) :: t.convey_log;
          match t.convey_relay with
          | Some relay when not (owns t dst.Ids.dev) -> relay ~src:msrc ~dst payload
          | _ -> send t ~dst:dst.Ids.dev (Wire.Convey { src = msrc; dst; payload }))
      | Wire.Completion { src = m; what } -> t.completions <- (m, what) :: t.completions
      | Wire.Bundle_err { req; error } ->
          (* the request reached the device; it failed rather than vanished *)
          finish_req t req ("failed: " ^ error);
          confirm t req;
          t.errors <- (src, error) :: t.errors
      | Wire.Self_test_resp { req; target; ok; detail } ->
          t.self_tests <- (req, (target, ok, detail)) :: t.self_tests;
          t.outstanding <- List.filter (( <> ) req) t.outstanding
      | Wire.Trigger { src = m; field; value } ->
          t.triggers <- (m, field, value) :: t.triggers;
          (* dependency maintenance (§II-E): a low-level value changed; the
             NM re-resolves the dependent state by re-issuing the affected
             scripts, whose execution is idempotent. *)
          if t.auto_repair then List.iter (send_script t) t.active_scripts
      | Wire.Show_potential_req _ | Wire.Show_actual_req _ | Wire.Show_perf_req _ | Wire.Bundle _
      | Wire.Self_test_req _ | Wire.Set_address _
      (* consumed by the outer match; listed for exhaustiveness *)
      | Wire.Nm_takeover _ | Wire.Fenced _ | Wire.Traced _ | Wire.Ha_heartbeat _ | Wire.Ha_journal _
      | Wire.Ha_journal_ack _ | Wire.Ha_inflight _ | Wire.Ha_confirm _ | Wire.Fed_advert _
      | Wire.Fed_plan_req _ | Wire.Fed_plan_resp _ | Wire.Fed_plan_err _ | Wire.Fed_commit _
      | Wire.Fed_commit_ack _ | Wire.Fed_commit_err _ | Wire.Fed_abort _ | Wire.Fed_abort_ack _
      | Wire.Fed_relay _ ->
        ())

and create ?transport ?journal ~chan ~net ~my_id () =
  let journal = match journal with Some j -> j | None -> Intent.journal () in
  (* Agents cache one reply per request id to make retried requests
     idempotent, so request ids must never repeat across NM incarnations:
     a restarted NM reusing a dead incarnation's ids would have its fresh
     bundles answered from that cache without being executed. Each
     incarnation gets its own stride of id space. *)
  incr incarnations;
  let t =
    {
      chan;
      transport;
      my_id;
      net;
      topo = Topology.create ();
      stats = { sent = 0; received = 0; acks = 0 };
      req = !incarnations * req_stride;
      inflight = [];
      outstanding = [];
      actuals = [];
      perfs = [];
      completions = [];
      errors = [];
      self_tests = [];
      triggers = [];
      convey_log = [];
      active_scripts = [];
      auto_repair = false;
      journal;
      intents = Intent.replay journal;
      next_intent = Intent.next_id journal;
      pending_deletes = Hashtbl.create 8;
      horizon = None;
      epoch = 0;
      ha_hook = None;
      fed_hook = None;
      convey_relay = None;
      owned_devices = None;
      foreign_writes = 0;
      on_inflight_add = None;
      on_confirm = None;
      obs = None;
      trace_ctx = None;
      req_trace = Hashtbl.create 32;
      registry = None;
      rx_ctx = None;
    }
  in
  Mgmt.Channel.subscribe chan ~device_id:my_id (fun ~src payload -> handle t ~src payload);
  (* When the transport abandons a destination, degrade gracefully: mark
     the device unreachable so goal achievement routes around it. *)
  Option.iter
    (fun tr ->
      Mgmt.Reliable.on_give_up tr (fun ~src ~dst ->
          if src = t.my_id then Topology.set_reachable t.topo dst false))
    transport;
  t

let reset_stats t =
  t.stats.sent <- 0;
  t.stats.received <- 0;
  t.stats.acks <- 0

let run t =
  match t.horizon with
  | None -> ignore (Netsim.Net.run t.net)
  | Some deadline ->
      (* bounded, non-advancing: the probe consumes only the virtual time
         its own events take, so several probes fit inside one tick *)
      ignore (Netsim.Net.run_until ~advance:false t.net ~deadline)

let set_horizon t h = t.horizon <- h

(* --- intents ------------------------------------------------------------------ *)

(* Journals the intent before anything is configured (write-ahead). An
   equivalent live intent is reused, so re-asking for the same goal after a
   failure does not duplicate desired state. *)
let record_intent t spec =
  match
    List.find_opt
      (fun (i : Intent.t) ->
        i.Intent.status <> Intent.Retired && Intent.spec_equal i.Intent.spec spec)
      t.intents
  with
  | Some i -> i
  | None ->
      let i = Intent.make ~id:t.next_intent spec in
      t.next_intent <- t.next_intent + 1;
      t.intents <- t.intents @ [ i ];
      Intent.append t.journal (Intent.Begin (i.Intent.id, spec));
      i

let commit_intent t (i : Intent.t) =
  Intent.append t.journal (Intent.Commit i.Intent.id);
  i.Intent.status <- Intent.Active

let bind_intent t (i : Intent.t) script =
  i.Intent.script <- Some script;
  i.Intent.expected <- [];
  (* Journal which path the intent is bound to, so an NM that crashes and
     restarts can regenerate this incarnation's script (the generator is
     deterministic per goal+path) and back its state out before achieving
     over a possibly different path. Only paths have signatures; layer-2
     scripts carry an empty path and are resynced in place instead. *)
  (match script.Script_gen.path.Path_finder.visits with
  | [] -> ()
  | _ ->
      let sg = Path_finder.signature script.Script_gen.path in
      if i.Intent.journal_sig <> Some sg then begin
        Intent.append t.journal (Intent.Bind (i.Intent.id, sg));
        i.Intent.journal_sig <- Some sg
      end);
  commit_intent t i

let retire_intent t (i : Intent.t) =
  if i.Intent.status <> Intent.Retired then begin
    Intent.append t.journal (Intent.Retire i.Intent.id);
    i.Intent.status <- Intent.Retired
  end

(* --- discovery -------------------------------------------------------------- *)

(* showPotential at every device the NM knows about (or is told to manage). *)
let harvest_potentials t devices =
  List.iter (fun dev -> send t ~dst:dev (Wire.Show_potential_req { req = fresh_req t })) devices;
  run t

let show_actual t dev =
  let req = fresh_req t in
  send t ~dst:dev (Wire.Show_actual_req { req });
  run t;
  List.assoc_opt req t.actuals

(* showPerf at one device: per-module, per-pipe counter snapshots. [None]
   means the agent never answered (within the horizon). *)
let show_perf t dev =
  let req = fresh_req t in
  send t ~dst:dev (Wire.Show_perf_req { req });
  run t;
  List.assoc_opt req t.perfs

(* --- goal achievement (figure 7(a) top: high-level goal -> low-level goal ->
   CONMan script -> protocol state) ------------------------------------------ *)

let find_paths t goal = Path_finder.find t.topo goal

(* Generates the CONMan script for a specific path and executes it. *)
let configure_path ?batched t goal path =
  let script = Script_gen.generate t.topo goal path in
  t.active_scripts <- script :: t.active_scripts;
  send_script ?batched t script;
  run t;
  script

let devices_of_path (path : Path_finder.path) =
  List.fold_left
    (fun acc (v : Path_finder.visit) ->
      let d = v.Path_finder.v_mod.Ids.dev in
      if List.mem d acc then acc else d :: acc)
    [] path.Path_finder.visits

(* Unconfirmed creates of a script being dismantled must never be
   re-issued by a later [flush_inflight]: a create that was lost in flight
   and re-sent after the back-out's deletion would resurrect state the NM
   no longer wants. The deletion itself still goes out — if the create did
   execute and only its ack was lost, the delete reclaims the state; if it
   never executed, the delete is an idempotent no-op. *)
let cancel_unconfirmed t (script : Script_gen.script) =
  let belongs (_, dst, msg) =
    match payload_of msg with
    | Wire.Bundle { cmds; _ } ->
        List.exists
          (fun (dev, prims) -> dev = dst && prims <> [] && cmds = prims)
          script.Script_gen.per_device
    | _ -> false
  in
  let victims, keep = List.partition belongs t.inflight in
  t.inflight <- keep;
  (* the standby replicated these sends as re-issue candidates; a cancel
     is as final as a confirm, so tell it — otherwise a promotion replays
     the cancelled create after our back-out's delete has run and
     resurrects state nobody wants *)
  List.iter
    (fun (req, _, _) ->
      finish_req t req "cancelled";
      match t.on_confirm with Some f -> f req | None -> ())
    victims;
  (* also recall the transport's own retransmissions of those sends: a
     retry surviving in the timer wheel would otherwise deliver the create
     after the back-out's deletion *)
  Option.iter
    (fun tr ->
      List.iter
        (fun (_, dst, msg) ->
          (* mirror the send-side wrapping or the byte match fails *)
          ignore (Mgmt.Reliable.cancel tr ~src:t.my_id ~dst (encode_out t msg)))
        victims)
    t.transport

(* Backs a partially-applied script out of the devices that still answer,
   and forgets it. *)
let abort_script t (script : Script_gen.script) =
  let g = open_goal t "backout" in
  cancel_unconfirmed t script;
  send_deletion_reachable t script;
  t.active_scripts <- List.filter (fun s -> s != script) t.active_scripts;
  run t;
  close_goal t g ~status:"ok"

(* The achievement pipeline without intent bookkeeping. [exclude] skips
   candidate paths by signature (the monitor's "next-best path" lever) and
   [avoid] skips paths visiting the listed devices (diagnosed as faulty). *)
let achieve_raw ?(configure = true) ?(max_attempts = 4) ?(exclude = []) ?(avoid = []) t goal =
  let rec go attempts =
    let paths = find_paths t goal in
    let viable =
      List.filter
        (fun p ->
          List.for_all (Topology.is_reachable t.topo) (devices_of_path p)
          && (exclude = [] || not (List.mem (Path_finder.signature p) exclude))
          && (avoid = [] || not (List.exists (fun d -> List.mem d avoid) (devices_of_path p))))
        paths
    in
    match Path_finder.choose t.topo viable with
    | None -> (
        (* Name the unreachable devices only when they are what stands
           between the NM and a path. *)
        match
          List.filter
            (fun d -> List.exists (fun p -> List.mem d (devices_of_path p)) paths)
            (Topology.unreachable t.topo)
        with
        | [] -> Error "no path satisfies the goal"
        | down -> Error ("device unreachable: " ^ String.concat ", " down))
    | Some path ->
        if not configure then Ok (paths, path, Script_gen.generate t.topo goal path)
        else begin
          let down_before = Topology.unreachable t.topo in
          let script = configure_path t goal path in
          let newly_down =
            List.filter
              (fun d -> List.mem d (devices_of_path path) && not (List.mem d down_before))
              (Topology.unreachable t.topo)
          in
          if newly_down = [] then Ok (paths, path, script)
          else begin
            (* A path device died mid-script: back out what was applied and
               try again — the dead device is now filtered out, so a retry
               either routes around it or names it. *)
            abort_script t script;
            if attempts > 1 then go (attempts - 1)
            else Error ("device unreachable: " ^ String.concat ", " newly_down)
          end
        end
  in
  go max_attempts

let achieve ?(configure = true) ?max_attempts t goal =
  if not configure then achieve_raw ~configure:false ?max_attempts t goal
  else begin
    (* write-ahead: the intent is journalled before any device is touched *)
    let g = open_goal t "achieve" in
    let intent = record_intent t (Intent.Connect goal) in
    match achieve_raw ~configure:true ?max_attempts t goal with
    | Ok (_, _, script) as ok ->
        bind_intent t intent script;
        close_goal t g ~status:"ok";
        ok
    | Error e ->
        Intent.note_error intent e;
        close_goal t g ~status:("failed: " ^ e);
        Error e
  end

(* --- multiple NMs (§V): warm standby and takeover ------------------------------ *)

(* Copies the primary's learnt state (topology, domain knowledge, active
   scripts) into a standby NM so it can maintain the network after a
   takeover. Nothing mutable is shared: topology records are copied,
   intents are rebuilt by replaying the journal entries shipped over, so
   post-replication mutations on the primary cannot leak into the standby.
   (Ha replaces this one-shot copy with continuous journal-shipping; this
   remains the bootstrap and the §V manual-failover path.) *)
let replicate_to t ~(standby : t) =
  standby.topo.Topology.devices <-
    List.map
      (fun (d : Topology.device_info) -> { d with Topology.di_id = d.Topology.di_id })
      t.topo.Topology.devices;
  standby.topo.Topology.module_domains <- t.topo.Topology.module_domains;
  standby.topo.Topology.domain_prefixes <- t.topo.Topology.domain_prefixes;
  standby.active_scripts <- t.active_scripts;
  standby.auto_repair <- t.auto_repair;
  (* ship the journal entries the standby lacks and rebuild its intent list
     from its own journal — fresh records, not aliases of the primary's *)
  let have = List.length (Intent.entries standby.journal) in
  List.iteri
    (fun i e -> if i >= have then Intent.append standby.journal e)
    (Intent.entries t.journal);
  standby.intents <- Intent.replay standby.journal;
  standby.next_intent <- max standby.next_intent (Intent.next_id standby.journal);
  (* requests the primary has issued but not yet seen confirmed: the
     standby must be able to replay them if it takes over mid-script
     (tuples are immutable, so sharing the spine is harmless — the
     standby's list evolves independently) *)
  standby.inflight <- t.inflight;
  standby.req <- max standby.req t.req

(* The standby announces itself as the NM in charge: every agent redirects
   its management traffic (triggers, conveys, responses). The broadcast is
   best-effort, so each known device also gets a unicast (which the
   transport retries); then any request the primary died without seeing
   confirmed is re-issued under this NM's identity.

   Leadership is epoch-fenced: the announcement carries a strictly larger
   epoch (the caller's, or ours + 1 by default), agents reject anything
   older, and from here on every frame this NM sends is fenced with it. *)
let take_over ?epoch t =
  t.epoch <- (match epoch with Some e -> max t.epoch e | None -> t.epoch + 1);
  send t ~dst:Mgmt.Frame.broadcast (Wire.Nm_takeover { nm = t.my_id; epoch = t.epoch });
  List.iter
    (fun (d : Topology.device_info) ->
      if d.Topology.di_id <> t.my_id then
        send t ~dst:d.Topology.di_id (Wire.Nm_takeover { nm = t.my_id; epoch = t.epoch }))
    t.topo.Topology.devices;
  let pending = List.rev t.inflight in
  t.inflight <- [];
  List.iter
    (fun (req, dst, msg) ->
      (* A replayed request carries the dead primary's context: open a
         replay span here, parented on it, so the failover shows up in the
         goal's tree under the new station (and new epoch). *)
      let msg =
        match t.obs with
        | Some obs -> (
            match Wire.trace_of msg with
            | Some parent ->
                let ctx = Obs.Trace.start ~parent obs ("replay:" ^ dst) in
                Hashtbl.replace t.req_trace req ctx;
                Wire.Traced { ctx; msg = payload_of msg }
            | None -> msg)
        | None -> msg
      in
      send_req t ~dst ~req msg)
    pending;
  run t

(* Assigns an address to an IP module — the task the paper deliberately
   centralises in the NM "as DHCP servers do today" (§II-E). *)
let send_address t ~target ~addr ~plen =
  t.req <- t.req + 1;
  send_req t ~dst:target.Ids.dev ~req:t.req
    (Wire.Set_address { req = t.req; target; addr; plen });
  run t

let assign_address t ~target ~addr ~plen =
  let intent = record_intent t (Intent.Address { target; addr; plen }) in
  send_address t ~target ~addr ~plen;
  commit_intent t intent

(* Installs performance-enforcement state (§II-D.1(c)): rate-limit the
   traffic a module sends into a pipe. *)
let send_rate t ~owner ~pipe_id ~rate_kbps =
  t.req <- t.req + 1;
  send_req t ~dst:owner.Ids.dev ~req:t.req
    (Wire.Bundle
       {
         req = t.req;
         cmds = [ Primitive.Create_perf { owner; pipe_id; rate_kbps } ];
         annex = annex_of t None;
       });
  run t

let enforce_rate t ~owner ~pipe_id ~rate_kbps =
  let intent = record_intent t (Intent.Rate { owner; pipe_id; rate_kbps }) in
  send_rate t ~owner ~pipe_id ~rate_kbps;
  commit_intent t intent

let remove_rate t ~owner ~pipe_id =
  t.req <- t.req + 1;
  send_req t ~dst:owner.Ids.dev ~req:t.req
    (Wire.Bundle
       {
         req = t.req;
         cmds = [ Primitive.Delete_perf { owner; pipe_id } ];
         annex = annex_of t None;
       });
  List.iter
    (fun (i : Intent.t) ->
      match i.Intent.spec with
      | Intent.Rate { owner = o; pipe_id = p; rate_kbps = _ }
        when Ids.equal o owner && p = pipe_id ->
          retire_intent t i
      | _ -> ())
    t.intents;
  run t

(* Tears a configured script down: deletes switch rules (undoing the
   device-level state) and pipes, and stops maintaining it. The intent it
   realised (if any) is retired in the journal. *)
let teardown t (script : Script_gen.script) =
  cancel_unconfirmed t script;
  let del = Script_gen.deletion_script script in
  send_script t del;
  t.active_scripts <- List.filter (fun s -> s != script) t.active_scripts;
  List.iter
    (fun (i : Intent.t) ->
      match i.Intent.script with
      | Some s when s == script ->
          i.Intent.script <- None;
          retire_intent t i
      | _ -> ())
    t.intents;
  run t

(* --- layer-2 (VLAN) goals: figure 9 ------------------------------------------

   Connect two customer-facing ETH modules across a chain of layer-2
   switches by creating VLAN pipes; the VID is negotiated by the modules. *)

let eth_module_of t dev =
  Topology.modules_of_device t.topo dev
  |> List.find_map (fun ((m : Ids.t), (a : Abstraction.t)) ->
         if a.Abstraction.name = "ETH" then Some m else None)

let vlan_module_of t dev =
  Topology.modules_of_device t.topo dev
  |> List.find_map (fun ((m : Ids.t), (a : Abstraction.t)) ->
         if a.Abstraction.name = "VLAN" then Some m else None)

(* Device-level chain between two switches via physical links (BFS). *)
let device_chain t ~scope ~src_dev ~dst_dev =
  let links dev =
    match Topology.device t.topo dev with
    | Some d -> List.filter_map (fun (_, peer, _) -> if List.mem peer scope then Some peer else None) d.Topology.di_links
    | None -> []
  in
  let rec bfs frontier seen =
    match frontier with
    | [] -> None
    | (dev, path) :: rest ->
        if dev = dst_dev then Some (List.rev (dev :: path))
        else
          let nexts =
            List.filter (fun p -> not (List.mem p seen)) (links dev)
            |> List.map (fun p -> (p, dev :: path))
          in
          bfs (rest @ nexts) (List.map fst nexts @ seen)
  in
  bfs [ (src_dev, []) ] [ src_dev ]

(* The physical pipe id an ETH module advertises towards a peer device. *)
let phys_pipe_towards t (eth : Ids.t) peer_dev =
  let a = Topology.find_module_exn t.topo eth in
  List.find_map
    (fun (p : Abstraction.physical_pipe) ->
      if p.Abstraction.peer_device = peer_dev then Some p.Abstraction.phys_id else None)
    a.Abstraction.physical

(* The physical pipe facing outside the managed scope: the customer port. *)
let customer_phys t (eth : Ids.t) ~scope =
  let a = Topology.find_module_exn t.topo eth in
  List.find_map
    (fun (p : Abstraction.physical_pipe) ->
      if not (List.mem p.Abstraction.peer_device scope) then Some p.Abstraction.phys_id else None)
    a.Abstraction.physical

let achieve_l2_raw ?(configure = true) t ~scope ~from_eth ~to_eth =
  match device_chain t ~scope ~src_dev:from_eth.Ids.dev ~dst_dev:to_eth.Ids.dev with
  | None -> Error "no layer-2 chain between the switches"
  | Some chain -> (
      let vlans = List.filter_map (vlan_module_of t) chain in
      let eths = List.filter_map (eth_module_of t) chain in
      if List.length vlans <> List.length chain || List.length eths <> List.length chain then
        Error "chain devices lack ETH/VLAN modules"
      else
        let vlan_arr = Array.of_list vlans and eth_arr = Array.of_list eths in
        let n = Array.length vlan_arr in
        let counter = ref 0 in
        let fresh () =
          incr counter;
          Printf.sprintf "P%d" !counter
        in
        (* customer pipes at the two ends: top ETH, bottom VLAN, peered with
           the far end (figure 9(b) P1) *)
        let cust_a =
          {
            Primitive.pipe_id = fresh ();
            top = eth_arr.(0);
            bottom = vlan_arr.(0);
            peer_top = Some eth_arr.(n - 1);
            peer_bottom = Some vlan_arr.(n - 1);
            tradeoffs = [];
            deps = [];
          }
        in
        let cust_c =
          {
            Primitive.pipe_id = fresh ();
            top = eth_arr.(n - 1);
            bottom = vlan_arr.(n - 1);
            peer_top = Some eth_arr.(0);
            peer_bottom = Some vlan_arr.(0);
            tradeoffs = [];
            deps = [];
          }
        in
        (* trunk pipes: per adjacent switch pair, one pipe on each side
           (top VLAN, bottom ETH), peered with the neighbour (fig 9(b) P2) *)
        let trunks =
          List.concat
            (List.init (n - 1) (fun i ->
                 let left =
                   {
                     Primitive.pipe_id = fresh ();
                     top = vlan_arr.(i);
                     bottom = eth_arr.(i);
                     peer_top = Some vlan_arr.(i + 1);
                     peer_bottom = Some eth_arr.(i + 1);
                     tradeoffs = [];
                     deps = [];
                   }
                 in
                 let right =
                   {
                     Primitive.pipe_id = fresh ();
                     top = vlan_arr.(i + 1);
                     bottom = eth_arr.(i + 1);
                     peer_top = Some vlan_arr.(i);
                     peer_bottom = Some eth_arr.(i);
                     tradeoffs = [];
                     deps = [];
                   }
                 in
                 [ ((i, `Left), left); ((i, `Right), right) ]))
        in
        let trunk side i = List.assoc (i, side) trunks in
        let chain_arr = Array.of_list chain in
        match
          ( customer_phys t eth_arr.(0) ~scope,
            customer_phys t eth_arr.(n - 1) ~scope )
        with
        | Some p0_a, Some p0_c ->
            let prims = ref [] in
            let add p = prims := !prims @ [ p ] in
            add (Primitive.Create_pipe cust_a);
            add (Primitive.Create_pipe cust_c);
            List.iter (fun (_, sp) -> add (Primitive.Create_pipe sp)) trunks;
            (* switch rules at the end switches (figure 9(b)) *)
            let end_rules eth cust_pipe p0 =
              add
                (Primitive.Create_switch
                   {
                     owner = eth;
                     rule =
                       Primitive.Directed
                         { from_pipe = p0; to_pipe = cust_pipe; sel = Primitive.Tagged };
                   });
              add
                (Primitive.Create_switch
                   {
                     owner = eth;
                     rule = Primitive.Directed { from_pipe = cust_pipe; to_pipe = p0; sel = Primitive.Any };
                   })
            in
            end_rules eth_arr.(0) cust_a.Primitive.pipe_id p0_a;
            end_rules eth_arr.(n - 1) cust_c.Primitive.pipe_id p0_c;
            (* VLAN switch rules and trunk hand-off rules *)
            add
              (Primitive.Create_switch
                 {
                   owner = vlan_arr.(0);
                   rule = Primitive.Bidi (cust_a.Primitive.pipe_id, (trunk `Left 0).Primitive.pipe_id);
                 });
            add
              (Primitive.Create_switch
                 {
                   owner = vlan_arr.(n - 1);
                   rule =
                     Primitive.Bidi (cust_c.Primitive.pipe_id, (trunk `Right (n - 2)).Primitive.pipe_id);
                 });
            for i = 1 to n - 2 do
              add
                (Primitive.Create_switch
                   {
                     owner = vlan_arr.(i);
                     rule =
                       Primitive.Bidi
                         ((trunk `Right (i - 1)).Primitive.pipe_id, (trunk `Left i).Primitive.pipe_id);
                   })
            done;
            (* bind trunk pipes to their physical ports *)
            for i = 0 to n - 2 do
              (match phys_pipe_towards t eth_arr.(i) chain_arr.(i + 1) with
              | Some phys ->
                  add
                    (Primitive.Create_switch
                       {
                         owner = eth_arr.(i);
                         rule = Primitive.Bidi ((trunk `Left i).Primitive.pipe_id, phys);
                       })
              | None -> ());
              match phys_pipe_towards t eth_arr.(i + 1) chain_arr.(i) with
              | Some phys ->
                  add
                    (Primitive.Create_switch
                       {
                         owner = eth_arr.(i + 1);
                         rule = Primitive.Bidi ((trunk `Right i).Primitive.pipe_id, phys);
                       })
              | None -> ()
            done;
            let per_device =
              List.map (fun d -> (d, List.filter (fun p -> Primitive.target p = d) !prims)) chain
            in
            let script =
              {
                Script_gen.prims = !prims;
                per_device;
                reporter = Some vlan_arr.(n - 1);
                path = { Path_finder.visits = [] };
              }
            in
            if configure then begin
              t.active_scripts <- script :: t.active_scripts;
              send_script t script;
              run t
            end;
            Ok script
        | _ -> Error "could not locate the customer-facing ports")

let achieve_l2 ?(configure = true) t ~scope ~from_eth ~to_eth =
  if not configure then achieve_l2_raw ~configure:false t ~scope ~from_eth ~to_eth
  else begin
    let g = open_goal t "achieve-l2" in
    let intent = record_intent t (Intent.Connect_l2 { scope; from_eth; to_eth }) in
    match achieve_l2_raw ~configure:true t ~scope ~from_eth ~to_eth with
    | Ok script as ok ->
        bind_intent t intent script;
        close_goal t g ~status:"ok";
        ok
    | Error e ->
        Intent.note_error intent e;
        close_goal t g ~status:("failed: " ^ e);
        Error e
  end

(* --- reconciliation support (used by Monitor) --------------------------------- *)

(* Re-realises an intent: backs the stale script out of the devices that
   still answer, then re-achieves. [exclude]/[avoid] steer layer-3 goals
   onto the next-best path. *)
let reconfigure ?(exclude = []) ?(avoid = []) t (intent : Intent.t) =
  let g = open_goal t "reconfigure" in
  let finish res =
    close_goal t g ~status:(match res with Ok () -> "ok" | Error e -> "failed: " ^ e);
    res
  in
  let back_out () =
    match intent.Intent.script with
    | Some old ->
        intent.Intent.script <- None;
        abort_script t old
    | None -> ()
  in
  (* No live script but a journalled Bind: a previous NM incarnation (or a
     failed reconfigure) left datapath state behind over the signed path.
     Regenerate that script — the generator is deterministic for a given
     goal+path — and back it out before achieving, so a recovery onto a
     different path cannot leak labels/xconnects/pipes. *)
  let back_out_ghost goal =
    match intent.Intent.journal_sig with
    | None -> ()
    | Some sg -> (
        match
          List.find_opt
            (fun p -> Path_finder.signature p = sg)
            (find_paths t goal)
        with
        | Some path ->
            send_deletion_reachable t (Script_gen.generate t.topo goal path);
            run t
        | None -> ())
  in
  finish
  @@
  match intent.Intent.spec with
  | Intent.Connect goal -> (
      (match intent.Intent.script with
      | Some _ -> back_out ()
      | None -> back_out_ghost goal);
      match achieve_raw ~configure:true ~exclude ~avoid t goal with
      | Ok (_, _, script) ->
          bind_intent t intent script;
          Ok ()
      | Error e ->
          Intent.note_error intent e;
          Error e)
  | Intent.Connect_l2 { scope; from_eth; to_eth } -> (
      back_out ();
      match achieve_l2_raw ~configure:true t ~scope ~from_eth ~to_eth with
      | Ok script ->
          bind_intent t intent script;
          Ok ()
      | Error e ->
          Intent.note_error intent e;
          Error e)
  | Intent.Address { target; addr; plen } ->
      send_address t ~target ~addr ~plen;
      commit_intent t intent;
      Ok ()
  | Intent.Rate { owner; pipe_id; rate_kbps } ->
      send_rate t ~owner ~pipe_id ~rate_kbps;
      commit_intent t intent;
      Ok ()

(* Re-converges after a restart from the journal: every live intent is
   re-realised. Agents execute re-issued primitives idempotently and the
   script generator is deterministic, so an intent that survived the crash
   converges to the same configuration without duplicates. *)
let recover t =
  List.iter
    (fun (i : Intent.t) ->
      if i.Intent.status <> Intent.Retired then ignore (reconfigure t i))
    t.intents

(* Re-issues every state-changing request sent but never confirmed — the
   backstop for requests the reliable transport abandoned (give-up during a
   partition or long loss burst). Agents cache one reply per (nm, req), so
   a re-send of an already-executed request is answered from the cache
   rather than executed twice; a re-send of a lost one finally lands. The
   monitor calls this each tick, which in particular guarantees back-out
   deletions are eventually delivered instead of leaking datapath state. *)
let flush_inflight t =
  match t.inflight with
  | [] -> ()
  | pending ->
      t.inflight <- [];
      List.iter (fun (req, dst, msg) -> send_req t ~dst ~req msg) (List.rev pending);
      run t

(* Re-sends an intent's script as-is — the repair for configuration drift
   (device state lost a piece the script should have pinned). *)
let resync_intent t (intent : Intent.t) =
  match intent.Intent.script with
  | Some script ->
      send_script t script;
      run t
  | None -> ()

(* Repairs exhausted: the intent needs an operator. *)
let escalate t (intent : Intent.t) msg =
  intent.Intent.status <- Intent.Failed;
  Intent.note_error intent msg;
  t.errors <- (Printf.sprintf "intent-%d" intent.Intent.id, msg) :: t.errors

(* --- debugging (§II-D.2) ------------------------------------------------------ *)

let self_test ?against t target =
  let req = fresh_req t in
  send t ~dst:target.Ids.dev (Wire.Self_test_req { req; target; against });
  run t;
  match List.assoc_opt req t.self_tests with
  | Some (_, ok, detail) -> (ok, detail)
  | None -> (false, "no response from device (management channel?)")

(* Walks the modules of a configured path, self-testing each; returns the
   per-module verdicts so a failure can be localised. *)
let diagnose t (path : Path_finder.path) =
  List.map
    (fun (v : Path_finder.visit) ->
      let ok, detail = self_test t v.Path_finder.v_mod in
      (v.Path_finder.v_mod, ok, detail))
    path.Path_finder.visits

(* End-to-end probe: asks the path's first customer-edge IP module to test
   data-plane connectivity all the way to the far edge module. Catches
   faults the hop-by-hop tests miss (e.g. a tunnel silently dropping on a
   key mismatch). *)
let probe_end_to_end t (path : Path_finder.path) =
  let edges =
    List.filter
      (fun (v : Path_finder.visit) ->
        v.Path_finder.v_action = Path_finder.Inspect
        && v.Path_finder.v_chain = Path_finder.base_ip)
      path.Path_finder.visits
  in
  match edges with
  | first :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      self_test ~against:last.Path_finder.v_mod t first.Path_finder.v_mod
  | _ -> (false, "path has no customer-edge IP modules")

let topology t = t.topo
let net t = t.net
let journal t = t.journal
let intents t = t.intents
let conveys t = List.rev t.convey_log
let completions t = t.completions
let errors t = t.errors
let triggers t = t.triggers
let set_auto_repair t v = t.auto_repair <- v
let stats_sent t = t.stats.sent
let stats_received t = t.stats.received
let stats_acks t = t.stats.acks
let inflight_count t = List.length t.inflight
let transport t = t.transport

(* --- high-availability support (used by Ha) ----------------------------------- *)

let my_id t = t.my_id
let epoch t = t.epoch
let set_epoch t e = t.epoch <- max t.epoch e
let send_msg t ~dst msg = send t ~dst msg
let set_ha_hook t f = t.ha_hook <- Some f

let set_repl_hooks t ~on_add ~on_confirm =
  t.on_inflight_add <- Some on_add;
  t.on_confirm <- Some on_confirm

(* Applies one journal entry shipped from the primary and rebuilds the
   intent list from the (now longer) local journal. Replay is idempotent
   with respect to duplicated entries, so re-shipped deltas are safe. *)
let apply_replicated_entry t entry =
  Intent.append t.journal entry;
  t.intents <- Intent.replay t.journal;
  t.next_intent <- max t.next_intent (Intent.next_id t.journal)

let inflight t = t.inflight
let set_inflight t l = t.inflight <- l
let bump_req t r = t.req <- max t.req r

(* --- federation support (used by Fed) ------------------------------------------ *)

let set_fed_hook t f = t.fed_hook <- Some f
let set_convey_relay t f = t.convey_relay <- Some f
let set_owned_devices t l = t.owned_devices <- Some l
let foreign_writes t = t.foreign_writes

(* --- observability support (wired by Scenarios and the engines) ---------------- *)

let set_obs t obs = t.obs <- Some obs
let obs t = t.obs
let set_registry t reg = t.registry <- Some reg
let set_trace_ctx t c = t.trace_ctx <- c
let trace_ctx t = t.trace_ctx
let rx_ctx t = t.rx_ctx

let obs_counters t =
  [
    ("sent", t.stats.sent);
    ("received", t.stats.received);
    ("acks", t.stats.acks);
    ("foreign_writes", t.foreign_writes);
  ]

(* Ships a ready-made script (a delegated slice of a federated goal, or
   the coordinator's own segment) and starts maintaining it. Deliberately
   does NOT run the network: the federation layer calls this from inside
   delivery callbacks, where the event loop is already executing — the
   bundles go out as the caller's drive advances the network. *)
let run_script t (script : Script_gen.script) =
  t.active_scripts <- script :: t.active_scripts;
  send_script t script

(* Is any of [script]'s bundles still awaiting confirmation? Uses the same
   slice-matching predicate as [cancel_unconfirmed]. *)
let script_pending t (script : Script_gen.script) =
  List.exists
    (fun (_, dst, msg) ->
      match payload_of msg with
      | Wire.Bundle { cmds; _ } ->
          List.exists
            (fun (dev, prims) -> dev = dst && prims <> [] && cmds = prims)
            script.Script_gen.per_device
      | _ -> false)
    t.inflight
