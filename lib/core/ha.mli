(** NM high availability: heartbeat failure detection, epoch-fenced
    leadership and automatic failover (§V, made automatic).

    A {!pair} of NM stations share the management channel. The primary
    heartbeats to the standby every {!tick} and continuously ships its
    write-ahead intent journal and in-flight request deltas; the standby
    runs a phi/timeout-style failure detector over heartbeat arrivals and
    promotes itself when suspicion crosses the threshold — bumping the
    leadership epoch, announcing the takeover and replaying only the
    requests the primary died without seeing confirmed.

    Every frame a fenced NM sends carries its epoch ({!Wire.Fenced});
    agents reject lower epochs, so a deposed or partitioned old primary
    fences itself out instead of issuing conflicting configuration.
    Promotion always picks an epoch strictly above anything the promoting
    node observed, so two acting primaries can never share an epoch.

    On demotion a deposed primary surrenders its unconfirmed requests to
    the new leader (in-flight deltas are accepted whatever epoch the
    sender believed in): agents silently fence its frames after the
    transport-level ack, so without the hand-off any back-out deletion it
    issued after losing leadership would be stranded, leaking datapath
    state. *)

type role = Primary | Standby

val pp_role : role Fmt.t

type config = {
  heartbeat_period_ns : int64;
      (** nominal heartbeat spacing in simulated time: the driver should
          call {!tick} about this often. The detector itself counts ticks
          (heartbeat opportunities), not raw simulated time, so a harness
          that fast-forwards the clock between ticks cannot fake a death. *)
  phi_threshold : float;
      (** promote when the heartbeat gap / mean interval (both in ticks)
          crosses this *)
  window : int;  (** heartbeat intervals kept for the mean *)
  ship_batch : int;  (** unacked journal entries re-shipped per tick *)
  replay_horizon_ns : int64 option;
      (** when set, promotion bounds its takeover replay at now + horizon
          so scheduled faults are not fast-forwarded through *)
}

val default_config : config
(** 500 ms heartbeats, phi 3.0, window 8, batch 16, unbounded replay. *)

type t

val create : ?config:config -> role:role -> peer:string -> Nm.t -> t
(** Wraps one NM as an HA node talking to the station [peer]. Installs the
    HA receive hook, the journal-append sink and the in-flight delta hooks
    on the NM. Prefer {!pair} for a correctly bootstrapped pair. *)

val pair : ?config:config -> primary:Nm.t -> standby:Nm.t -> unit -> t * t
(** Wires a primary/standby pair: bootstraps the standby via
    {!Nm.replicate_to}, marks the shipped journal prefix acked and fences
    the primary at epoch 1. *)

val tick : t -> tick:int -> unit
(** One HA tick at the heartbeat period: the primary heartbeats and
    re-ships its unacked journal tail; the standby accrues suspicion and
    promotes past the threshold. [tick] is recorded on promotion for
    detection-latency accounting. *)

val suspicion : t -> float
(** The standby's current accrued suspicion that the primary is dead. *)

val set_alive : t -> bool -> unit
(** Fault-injection switch: a dead node neither ticks nor reacts to HA
    traffic. Revival grants a fresh detection grace period. *)

val role : t -> role
val epoch : t -> int
(** The highest leadership epoch this node knows of. *)

val is_alive : t -> bool
val nm : t -> Nm.t

(** {2 Observation} *)

val promotions : t -> int
val demotions : t -> int
val heartbeats_sent : t -> int
val heartbeats_seen : t -> int

val stale_rejects : t -> int
(** HA frames dropped for carrying a lower epoch than this node knows. *)

val entries_shipped : t -> int
val entries_applied : t -> int

val inflight_seen : t -> int
(** In-flight deltas applied to the standby's replica. *)

val replayed : t -> int
(** Requests replayed across all of this node's promotions. *)

val promotion_ticks : t -> int list
(** Tick numbers at which this node promoted, oldest first. *)

val replica_inflight_count : t -> int

val obs_counters : t -> (string * int) list
(** The stats in registry-source form (e.g. [("promotions", n)]) for
    [Obs.Registry.register]. *)
