(** Ready-made CONMan deployments of the paper's experimental set-ups:
    netsim testbed + management channel + agents + protocol modules + NM,
    already discovered (Hello + showPotential) and primed with the NM's
    address-domain knowledge. *)

val nm_station_id : string
(** Device id the (primary) NM subscribes under. *)

val standby_station_id : string
(** Device id of the warm-standby NM in HA deployments (see {!Ha}). *)

type channel_kind = [ `Oob | `Raw ]
(** Pre-configured out-of-band channel, or the 4D-style raw in-band
    flooding channel (§III-A). *)

val make_channel :
  ?fault_seed:int ->
  ?reliability:Mgmt.Reliable.config ->
  ?admission:Mgmt.Admission.config ->
  channel_kind ->
  Netsim.Net.t ->
  devices:Netsim.Device.t list ->
  attach_to:Netsim.Device.t ->
  Mgmt.Channel.t * Mgmt.Faults.t * Mgmt.Reliable.t * Mgmt.Admission.t * Netsim.Device.t option
(** The full management-channel stack (base, faults, reliable delivery,
    overload admission) every builder here uses — exported so other
    deployment builders (e.g. the federated two-domain one) wire the same
    stack. For [`Raw] a management-station device is created and cabled to
    [attach_to]; [`Oob] ignores [devices]/[attach_to]. *)

val eth_neighbours : Netsim.Net.t -> Netsim.Device.t -> int -> (string * string) list
(** Physical neighbours of a device's port, as (device id, peer port name)
    — the shape {!Eth_module.make} wants for Hello reporting. *)

val mref : string -> string -> Netsim.Device.t -> Ids.t
(** [mref name short dev] is the module reference [name:short\@dev]. *)

(** {1 Figure 4: the VPN testbed} *)

type vpn = {
  tb : Netsim.Testbeds.vpn;
  chan : Mgmt.Channel.t;
  faults : Mgmt.Faults.t; (** fault-injection handle for the channel *)
  transport : Mgmt.Reliable.t; (** reliable-delivery handle under [chan] *)
  admission : Mgmt.Admission.t; (** overload-admission handle atop [transport] *)
  nm : Nm.t;
  goal : Path_finder.goal; (** "connect S1 and S2 of customer C1" *)
  scope : string list;
  agents : (string * Agent.t) list; (** device name -> agent *)
  ip_handles : (string * Ip_module.handle) list; (** module id -> handle *)
}

val build_vpn :
  ?channel:channel_kind ->
  ?secure:bool ->
  ?tradeoffs:string list ->
  ?fault_seed:int ->
  ?reliability:Mgmt.Reliable.config ->
  ?admission:Mgmt.Admission.config ->
  ?journal:Intent.journal ->
  unit ->
  vpn
(** [secure:true] additionally registers the figure-1 IPsec pair on the
    edge routers: ESP data modules whose "esp-keys" dependency is satisfied
    by IKE control modules (§II-F). [fault_seed] (default 42) seeds the
    fault-injection layer — a no-op until knobs on [faults] are turned;
    [reliability] overrides {!Mgmt.Reliable.default_config}; [admission]
    overrides {!Mgmt.Admission.default_config} (tightening the overload
    budget); [journal] seeds the NM's intent journal (an NM restarting from
    stable storage). All apply to the other builders below too. *)

val vpn_goal : ?tradeoffs:string list -> unit -> Path_finder.goal

val vpn_reachable : vpn -> bool
(** Bidirectional ICMP reachability between the customer hosts. *)

val vpn_adopt : vpn -> Nm.t -> unit
(** Points a replacement NM (e.g. one created from a saved
    {!Intent.journal}) at the same deployment: re-announces every agent,
    harvests potentials and re-enters the operator's domain knowledge.
    Follow with {!Nm.recover} to re-converge the journalled intents. *)

(** {1 n-router chains (the Table-VI sweep)} *)

type chain = {
  ctb : Netsim.Testbeds.chain;
  cchan : Mgmt.Channel.t;
  cfaults : Mgmt.Faults.t;
  ctransport : Mgmt.Reliable.t;
  cadmission : Mgmt.Admission.t;
  cnm : Nm.t;
  cgoal : Path_finder.goal;
  cscope : string list;
}

val build_chain :
  ?channel:channel_kind ->
  ?addressed:bool ->
  ?tradeoffs:string list ->
  ?fault_seed:int ->
  ?reliability:Mgmt.Reliable.config ->
  ?admission:Mgmt.Admission.config ->
  ?journal:Intent.journal ->
  int ->
  chain
(** [addressed:false] leaves the ISP routers without addresses: the NM is
    expected to assign them via {!Nm.assign_address}. *)

val chain_reachable : chain -> bool

(** {1 Diamond: two parallel cores (multi-route experiments)} *)

type diamond = {
  dtb : Netsim.Testbeds.diamond;
  dchan : Mgmt.Channel.t;
  dfaults : Mgmt.Faults.t;
  dtransport : Mgmt.Reliable.t;
  dadmission : Mgmt.Admission.t;
  dnm : Nm.t;
  dgoal : Path_finder.goal;
  dscope : string list;
  dagents : (string * Agent.t) list; (** device id -> agent *)
}

val build_diamond :
  ?channel:channel_kind ->
  ?fault_seed:int ->
  ?reliability:Mgmt.Reliable.config ->
  ?admission:Mgmt.Admission.config ->
  ?journal:Intent.journal ->
  unit ->
  diamond
val diamond_reachable : diamond -> bool

val diamond_adopt : diamond -> Nm.t -> unit
(** Like {!vpn_adopt}, for the diamond deployment. *)

(** {1 Path classification helpers} *)

val path_uses : string -> Path_finder.path -> bool
val pure_gre : Path_finder.path -> bool
val pure_mpls : Path_finder.path -> bool
val pure_ipip : Path_finder.path -> bool
val secure : Path_finder.path -> bool

(** {1 Figure 9: VLAN switch chains} *)

type vlan = {
  vtb : Netsim.Testbeds.vlan;
  vchan : Mgmt.Channel.t;
  vfaults : Mgmt.Faults.t;
  vtransport : Mgmt.Reliable.t;
  vadmission : Mgmt.Admission.t;
  vnm : Nm.t;
  vscope : string list;
  vagents : (string * Agent.t) list;
}

val build_vlan :
  ?channel:channel_kind -> ?fault_seed:int -> ?reliability:Mgmt.Reliable.config -> unit -> vlan
val vlan_reachable : vlan -> bool

type vlan_chain = {
  vctb : Netsim.Testbeds.vlan_chain;
  vcchan : Mgmt.Channel.t;
  vcfaults : Mgmt.Faults.t;
  vctransport : Mgmt.Reliable.t;
  vcadmission : Mgmt.Admission.t;
  vcnm : Nm.t;
  vcscope : string list;
}

val build_vlan_chain :
  ?channel:channel_kind -> ?fault_seed:int -> ?reliability:Mgmt.Reliable.config -> int -> vlan_chain
val vlan_chain_reachable : vlan_chain -> bool
