(* The management agent (MA) of a device (§II): it announces physical
   connectivity, answers showPotential/showActual, executes script bundles
   by dispatching primitives to the local protocol modules, and relays
   conveyMessage traffic between its modules and the NM. *)

type t = {
  device : Netsim.Device.t;
  chan : Mgmt.Channel.t;
  mutable nm_device : string; (* device id of the NM currently in charge *)
  (* Leadership epoch of the NM in charge. Frames fenced with a lower epoch
     come from a deposed primary and are dropped; a higher epoch means a
     newer leader and is adopted. Unfenced frames are epoch 0 (the single-NM
     legacy mode, which never bumps the epoch). *)
  mutable nm_epoch : int;
  mutable fenced_rejects : int; (* lower-epoch frames dropped *)
  mutable takeover_rejects : int; (* stale takeover announcements dropped *)
  mutable malformed_drops : int; (* undecodable frames dropped *)
  mutable modules : Module_impl.t list;
  mutable annex : Wire.annex;
  mutable polling : bool;
  mutable repoll : bool; (* progress was made mid-pass: run another pass *)
  (* Replies already given, keyed by request id: a retried state-changing
     request is answered from here instead of being applied twice. Request
     ids are process-unique across NMs (incarnation striping in Nm), so the
     key deliberately omits the sender — a promoted standby replaying its
     predecessor's unconfirmed request under a new epoch is recognised as
     the same work, keeping the script exactly-once across failover.
     Bounded FIFO — old entries are evicted once confirmed requests can no
     longer be retried in practice. *)
  done_reqs : (int, Wire.t) Hashtbl.t;
  done_order : int Queue.t;
  (* Highest bundle request id ever executed here. Request ids grow with
     the NM's send order, so a cached pure-deletion bundle at or above
     this mark is the newest mutation the agent knows of and may safely
     be re-run (see the Bundle cache-hit arm). *)
  mutable max_exec_req : int;
  mutable obs : Obs.Trace.t option;
      (* span collector, shared with the domain's NM so agent-side spans
         and events land in the same goal tree; None = tracing off *)
  mutable cur_trace : Obs.Trace.ctx option;
      (* context of the frame being dispatched: parents the exec span and
         rides back out on every reply/trigger/convey sent while set *)
}

let done_cache_max = 256

let remember_done t key reply =
  if not (Hashtbl.mem t.done_reqs key) then begin
    Hashtbl.replace t.done_reqs key reply;
    Queue.push key t.done_order;
    while Queue.length t.done_order > done_cache_max do
      Hashtbl.remove t.done_reqs (Queue.pop t.done_order)
    done
  end

let find_module t mref = List.find_opt (fun m -> Ids.equal m.Module_impl.mref mref) t.modules

let find_module_exn t mref =
  match find_module t mref with
  | Some m -> m
  | None -> failwith (Fmt.str "%s: no module %a" t.device.Netsim.Device.dev_name Ids.pp mref)

let send t msg =
  (* anything emitted while a traced frame is being dispatched — replies,
     but also triggers and conveys its execution provoked — carries the
     causing goal's context back to the NM *)
  let msg =
    match t.cur_trace with
    | Some ctx when Wire.trace_of msg = None -> Wire.Traced { ctx; msg }
    | _ -> msg
  in
  Mgmt.Channel.send t.chan ~src:t.device.Netsim.Device.dev_id ~dst:t.nm_device (Wire.encode msg)

(* Re-polls every module until no one makes further progress; modules call
   [env.progress] when they unblock deferred work of other modules (which,
   mid-pass, schedules another pass so earlier modules see the new state). *)
let rec poll_all t =
  if t.polling then t.repoll <- true
  else begin
    t.polling <- true;
    t.repoll <- true;
    (* each productive pass consumes pending work, so the dependency depth
       bounds the passes; the budget guards against a livelocked module *)
    let budget = ref (4 * (1 + List.length t.modules)) in
    while t.repoll && !budget > 0 do
      t.repoll <- false;
      decr budget;
      List.iter (fun m -> m.Module_impl.poll ()) t.modules
    done;
    t.polling <- false
  end

and env_of t : Module_impl.env =
  {
    Module_impl.device = t.device;
    my_dev = t.device.Netsim.Device.dev_id;
    convey =
      (fun ~src ~dst payload ->
        (* all module-to-module traffic is relayed through the NM *)
        send t (Wire.Convey { src; dst; payload }));
    notify_nm = send t;
    local_query =
      (fun mref key ->
        match find_module t mref with Some m -> m.Module_impl.fields key | None -> None);
    domain_prefix = (fun d -> List.assoc_opt d t.annex.Wire.domains);
    domains = (fun () -> t.annex.Wire.domains);
    is_reporter =
      (fun mref ->
        match t.annex.Wire.reporter with Some r -> Ids.equal r mref | None -> false);
    progress = (fun () -> poll_all t);
    schedule =
      (fun ~delay_ns f -> Netsim.Event_queue.schedule t.device.Netsim.Device.eq ~delay_ns f);
  }

let exec_primitive t (prim : Primitive.t) =
  match prim with
  | Primitive.Create_pipe spec ->
      (* Delivered to the device owning both endpoints: dispatch to the top
         module as `Top and the bottom module as `Bottom. *)
      (find_module_exn t spec.Primitive.top).Module_impl.create_pipe spec `Top;
      (find_module_exn t spec.Primitive.bottom).Module_impl.create_pipe spec `Bottom
  | Primitive.Create_switch { owner; rule } ->
      (find_module_exn t owner).Module_impl.create_switch rule
  | Primitive.Create_filter { owner; drop_src; drop_dst } ->
      (find_module_exn t owner).Module_impl.create_filter ~drop_src ~drop_dst
  | Primitive.Create_perf { owner; pipe_id; rate_kbps } ->
      (find_module_exn t owner).Module_impl.create_perf ~pipe_id ~rate_kbps
  | Primitive.Delete_perf { owner; pipe_id } ->
      (find_module_exn t owner).Module_impl.delete_perf ~pipe_id
  | Primitive.Delete_pipe { owner = _; pipe_id } ->
      (* both endpoint modules hold state for the pipe; modules ignore
         unknown pipe ids *)
      List.iter (fun m -> m.Module_impl.delete_pipe pipe_id) t.modules
  | Primitive.Delete_switch { owner; rule } ->
      (find_module_exn t owner).Module_impl.delete_switch rule
  | Primitive.Delete_filter { owner; drop_src; drop_dst } ->
      (find_module_exn t owner).Module_impl.delete_filter ~drop_src ~drop_dst

let rec handle_msg t ~src ~epoch msg =
  match msg with
  | Wire.Fenced { epoch; msg } -> handle_msg t ~src ~epoch msg
  | _ when epoch < t.nm_epoch ->
      (* A deposed primary: whatever it wants, it no longer speaks for the
         network. The reliable layer below already acked the envelope, so
         dropping here cannot cause a retry storm. *)
      (match msg with
      | Wire.Nm_takeover _ -> t.takeover_rejects <- t.takeover_rejects + 1
      | _ -> t.fenced_rejects <- t.fenced_rejects + 1)
  | _ ->
      if epoch > t.nm_epoch then begin
        (* a strictly newer leader: redirect before dispatching *)
        t.nm_epoch <- epoch;
        t.nm_device <- src
      end;
      dispatch t ~src msg

and dispatch t ~src msg =
  match msg with
  | Wire.Fenced { epoch; msg } ->
      (* nested fences should not occur; honour the innermost epoch *)
      handle_msg t ~src ~epoch msg
  | Wire.Traced { ctx; msg } ->
      (* remember the goal context for the duration of the dispatch *)
      t.cur_trace <- Some ctx;
      dispatch t ~src msg;
      t.cur_trace <- None
  | Wire.Show_potential_req { req } ->
      let modules =
        List.map (fun m -> (m.Module_impl.mref, m.Module_impl.abstraction ())) t.modules
      in
      send t (Wire.Show_potential_resp { req; modules })
  | Wire.Show_actual_req { req } ->
      let state = List.map (fun m -> (m.Module_impl.mref, m.Module_impl.actual ())) t.modules in
      send t (Wire.Show_actual_resp { req; state })
  | Wire.Show_perf_req { req } ->
      (* read-only like showActual: never cached in done_reqs, a retry
         simply re-scrapes the (monotonic) counters *)
      let perf = List.map (fun m -> (m.Module_impl.mref, m.Module_impl.perf ())) t.modules in
      send t (Wire.Show_perf_resp { req; perf })
  | Wire.Bundle { req; cmds; annex } -> (
      match Hashtbl.find_opt t.done_reqs req with
      | Some reply ->
          (* Retried request: the earlier reply was lost, not the work.
             One exception: a pure-deletion bundle at least as new as
             anything executed here is re-run (deletion is idempotent)
             before re-acking. A promoted standby replays its
             predecessor's unconfirmed create/back-out pair in order; if
             the back-out's delete first reached us ahead of the create
             (ordering forfeited by a transport gap-skip) it executed
             against nothing, and answering its replay purely from cache
             would leave the replayed create standing forever. The
             request-id guard keeps a stale delete retry from clobbering
             state a newer script has since rebuilt. *)
          (match (t.obs, t.cur_trace) with
          | Some obs, Some ctx -> Obs.Trace.event obs ctx "replayed-from-cache"
          | _ -> ());
          if req >= t.max_exec_req && cmds <> [] && List.for_all Primitive.is_deletion cmds
          then begin
            t.max_exec_req <- req;
            try
              List.iter (exec_primitive t) cmds;
              poll_all t
            with _ -> ()
          end;
          send t reply
      | None ->
          if req > t.max_exec_req then t.max_exec_req <- req;
          t.annex <-
            {
              Wire.domains =
                annex.Wire.domains
                @ List.filter
                    (fun (d, _) -> not (List.mem_assoc d annex.Wire.domains))
                    t.annex.Wire.domains;
              reporter = (match annex.Wire.reporter with Some r -> Some r | None -> t.annex.Wire.reporter);
            };
          let span =
            match (t.obs, t.cur_trace) with
            | Some obs, Some parent ->
                Some (obs, Obs.Trace.start ~parent obs ("exec:" ^ t.device.Netsim.Device.dev_id))
            | _ -> None
          in
          let reply =
            try
              List.iter (exec_primitive t) cmds;
              poll_all t;
              Wire.Bundle_ack { req }
            with Failure e | Devconf.Linux_cli.Error e -> Wire.Bundle_err { req; error = e }
          in
          (match span with
          | Some (obs, ctx) ->
              let status =
                match reply with Wire.Bundle_ack _ -> "ok" | _ -> "failed: exec"
              in
              Obs.Trace.finish obs ctx ~status
          | None -> ());
          remember_done t req reply;
          send t reply)
  | Wire.Self_test_req { req; target; against } -> (
      match find_module t target with
      | Some m ->
          m.Module_impl.self_test ~against ~reply:(fun ~ok ~detail ->
              send t (Wire.Self_test_resp { req; target; ok; detail }))
      | None ->
          send t (Wire.Self_test_resp { req; target; ok = false; detail = "no such module" }))
  | Wire.Convey { src; dst; payload } -> (
      match find_module t dst with
      | Some m ->
          m.Module_impl.on_peer ~src payload;
          poll_all t
      | None -> ())
  | Wire.Set_address { req; target; addr; plen } ->
      (match Hashtbl.find_opt t.done_reqs req with
      | Some reply -> send t reply
      | None ->
          (match find_module t target with
          | Some m ->
              m.Module_impl.set_address ~addr ~plen;
              poll_all t
          | None -> ());
          let reply = Wire.Ack { req } in
          remember_done t req reply;
          send t reply)
  | Wire.Nm_takeover { nm; epoch } ->
      (* a standby NM took over (§V) under a strictly newer epoch: all
         further management traffic, including triggers and conveys, goes
         to it. Anything else — a duplicated or delayed announcement from a
         dead or deposed NM — must not steal the agent back (split-brain). *)
      if epoch > t.nm_epoch then begin
        t.nm_epoch <- epoch;
        t.nm_device <- nm
      end
      else if epoch < t.nm_epoch || nm <> t.nm_device then
        t.takeover_rejects <- t.takeover_rejects + 1
  | Wire.Hello _ | Wire.Show_potential_resp _ | Wire.Show_actual_resp _ | Wire.Show_perf_resp _
  | Wire.Bundle_ack _ | Wire.Ack _ | Wire.Bundle_err _ | Wire.Self_test_resp _ | Wire.Completion _
  | Wire.Trigger _ | Wire.Ha_heartbeat _ | Wire.Ha_journal _ | Wire.Ha_journal_ack _
  | Wire.Ha_inflight _ | Wire.Ha_confirm _ | Wire.Fed_advert _ | Wire.Fed_plan_req _
  | Wire.Fed_plan_resp _ | Wire.Fed_plan_err _ | Wire.Fed_commit _ | Wire.Fed_commit_ack _
  | Wire.Fed_commit_err _ | Wire.Fed_abort _ | Wire.Fed_abort_ack _ | Wire.Fed_relay _ ->
      (* NM-bound (or NM-to-NM) messages; not meaningful at an agent *)
      ()

let handle t ~src payload =
  match Wire.decode payload with
  | exception (Sexp.Parse_error _ | Mgmt.Frame.Bad_frame _) ->
      (* garbage on the channel (corruption, fuzzing, a buggy peer) is the
         sender's problem, not ours: drop it, count it, keep serving *)
      t.malformed_drops <- t.malformed_drops + 1
  | msg -> handle_msg t ~src ~epoch:0 msg

let create ~chan ~nm_device device =
  let t =
    {
      device;
      chan;
      nm_device;
      nm_epoch = 0;
      fenced_rejects = 0;
      takeover_rejects = 0;
      malformed_drops = 0;
      modules = [];
      annex = Wire.empty_annex;
      polling = false;
      repoll = false;
      done_reqs = Hashtbl.create 64;
      done_order = Queue.create ();
      max_exec_req = 0;
      obs = None;
      cur_trace = None;
    }
  in
  Mgmt.Channel.subscribe chan ~device_id:device.Netsim.Device.dev_id (fun ~src payload ->
      handle t ~src payload);
  t

let register t impl = t.modules <- t.modules @ [ impl ]

let env t = env_of t

(* Announces physical connectivity to the NM, as every device does at
   startup (§II-D). *)
let announce t net =
  let ports =
    Array.to_list t.device.Netsim.Device.ports
    |> List.concat_map (fun (p : Netsim.Device.port) ->
           Netsim.Net.neighbours net t.device p.Netsim.Device.port_index
           |> List.map (fun (d, pi) ->
                  ( p.Netsim.Device.port_name,
                    d.Netsim.Device.dev_id,
                    (Netsim.Device.port d pi).Netsim.Device.port_name )))
  in
  send t (Wire.Hello { ports })

let set_obs t obs = t.obs <- Some obs

let obs_counters t =
  [
    ("fenced_rejects", t.fenced_rejects);
    ("takeover_rejects", t.takeover_rejects);
    ("malformed_drops", t.malformed_drops);
  ]

let modules t = t.modules
let nm_device t = t.nm_device
let nm_epoch t = t.nm_epoch
let fenced_rejects t = t.fenced_rejects
let takeover_rejects t = t.takeover_rejects
let malformed_drops t = t.malformed_drops
