(* NM high availability (§V, made automatic).

   Two NM stations share the management channel: a primary that manages
   the network and a warm standby. The primary heartbeats to the standby
   every tick and continuously ships its write-ahead intent journal and
   in-flight request deltas; the standby runs a phi/timeout-style failure
   detector over the heartbeat arrivals and, when suspicion crosses the
   threshold, promotes itself — bumping the leadership epoch, announcing
   the takeover, and replaying only the requests the primary died without
   seeing confirmed.

   Leadership is fenced by the epoch: every frame a promoted NM sends is
   wrapped in [Wire.Fenced] and agents reject lower epochs, so a deposed
   or partitioned old primary cannot issue conflicting configuration or
   steal agents back (split-brain). Epochs are strictly increased on every
   promotion past anything the promoting node has observed, so two acting
   primaries can never share an epoch.

   Journal shipping uses absolute journal indexes (1-based): both
   journals are prefix-equal from the bootstrap replication on, the
   standby appends entry [k+1] only when it holds exactly [k] entries and
   cumulatively acks its length, and the primary re-ships a bounded
   unacked tail each tick. Losses, duplicates and reordering below are
   absorbed by the {!Mgmt.Reliable} envelope layer; a gap only delays
   shipping, never corrupts the prefix. *)

type role = Primary | Standby

let pp_role ppf = function
  | Primary -> Fmt.string ppf "primary"
  | Standby -> Fmt.string ppf "standby"

type config = {
  heartbeat_period_ns : int64;
      (* nominal heartbeat spacing in simulated time — the driver is
         expected to call [tick] about this often. The detector itself
         counts ticks (heartbeat opportunities), not raw simulated time:
         a harness draining seconds of retry backlog between two ticks
         advances the clock without giving the primary a chance to
         heartbeat, and must not look like a death. *)
  phi_threshold : float; (* promote when gap / mean-interval crosses this *)
  window : int; (* heartbeat intervals kept for the mean *)
  ship_batch : int; (* unacked journal entries re-shipped per tick *)
  replay_horizon_ns : int64 option;
      (* when set, promotion bounds its takeover replay at now + horizon so
         scheduled data-plane faults are not fast-forwarded through (the
         chaos engine sets this to its tick interval) *)
}

let default_config =
  {
    heartbeat_period_ns = 500_000_000L; (* one monitor tick *)
    phi_threshold = 3.0;
    window = 8;
    ship_batch = 16;
    replay_horizon_ns = None;
  }

type stats = {
  mutable promotions : int;
  mutable demotions : int;
  mutable heartbeats_sent : int;
  mutable heartbeats_seen : int;
  mutable stale_rejects : int; (* HA frames dropped for a lower epoch *)
  mutable entries_shipped : int;
  mutable entries_applied : int;
  mutable inflight_seen : int; (* in-flight deltas applied to the replica *)
  mutable replayed : int; (* requests replayed across all promotions *)
  mutable promotion_ticks : int list; (* newest first *)
}

type t = {
  nm : Nm.t;
  peer : string; (* station id of the other NM *)
  config : config;
  mutable role : role;
  mutable epoch : int; (* highest leadership epoch this node knows of *)
  mutable alive : bool; (* a crashed node neither ticks nor reacts *)
  (* failure detector (standby side), in tick units *)
  mutable cur_tick : int; (* last tick number handed to [tick] *)
  mutable last_hb_tick : int; (* tick during which the last heartbeat landed *)
  mutable intervals : int list; (* recent heartbeat gaps in ticks, <= window *)
  mutable grace : bool; (* forgive the accrued gap at the next tick *)
  mutable hb_seq : int;
  (* journal shipping (primary side): cumulative ack from the standby *)
  mutable acked : int;
  (* replica of the primary's in-flight set (standby side), newest first *)
  mutable replica_inflight : (int * string * Wire.t) list;
  stats : stats;
}

let now_ns t = Netsim.Event_queue.now (Netsim.Net.eq (Nm.net t.nm))

(* Forgive whatever gap accrued: the grace is consumed at the next [tick],
   which restarts the gap measurement from that tick. *)
let reset_detector t =
  t.intervals <- [];
  t.grace <- true

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let note_heartbeat t =
  let gap = t.cur_tick - t.last_hb_tick in
  if gap > 0 then t.intervals <- take t.config.window (gap :: t.intervals);
  t.last_hb_tick <- t.cur_tick;
  t.stats.heartbeats_seen <- t.stats.heartbeats_seen + 1

(* Accrued suspicion that the primary is dead: ticks since a heartbeat last
   landed, in units of the mean observed inter-heartbeat gap. Counting
   ticks — heartbeat opportunities — rather than simulated time keeps the
   detector honest when the harness drains a long retry backlog between
   two ticks (time jumps, but the primary had no chance to heartbeat). The
   mean adapts upward on lossy channels (fewer false positives) and is
   floored at one tick, so delivery bunching cannot shrink it into
   hair-trigger territory. *)
let suspicion t =
  let gap = float_of_int (t.cur_tick - t.last_hb_tick) in
  let mean =
    match t.intervals with
    | [] -> 1.0
    | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let mean = Float.max mean 1.0 in
  gap /. mean

let send_peer t msg = Nm.send_msg t.nm ~dst:t.peer msg

let journal_len t = List.length (Intent.entries (Nm.journal t.nm))

let ship_entry t seq entry =
  t.stats.entries_shipped <- t.stats.entries_shipped + 1;
  send_peer t (Wire.Ha_journal { epoch = t.epoch; seq; entry })

let ack_journal t = send_peer t (Wire.Ha_journal_ack { epoch = t.epoch; upto = journal_len t })

(* Another leader with a strictly newer epoch exists: step down (if acting)
   and give it a fresh detection grace period. A deposed primary also
   surrenders its unconfirmed requests to the new leader: agents fence its
   frames silently (the transport still acks, so it never retries), so any
   back-out deletion or script slice it issued after losing leadership
   would otherwise be stranded forever, leaking datapath state. *)
let observe_epoch t epoch =
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    if t.role = Primary then begin
      t.role <- Standby;
      t.stats.demotions <- t.stats.demotions + 1;
      List.iter
        (fun (req, dst, msg) ->
          send_peer t (Wire.Ha_inflight { epoch = t.epoch; req; dst; msg }))
        (Nm.inflight t.nm)
    end;
    reset_detector t
  end

let on_msg t ~src:_ msg =
  if t.alive then
    match msg with
    | Wire.Ha_heartbeat { epoch; seq = _ } ->
        if epoch < t.epoch then t.stats.stale_rejects <- t.stats.stale_rejects + 1
        else begin
          observe_epoch t epoch;
          if t.role = Standby then begin
            note_heartbeat t;
            (* cumulative ack doubles as the primary's shipping cursor *)
            ack_journal t
          end
        end
    | Wire.Ha_journal { epoch; seq; entry } ->
        if epoch < t.epoch then t.stats.stale_rejects <- t.stats.stale_rejects + 1
        else begin
          observe_epoch t epoch;
          if t.role = Standby then begin
            note_heartbeat t;
            (* absolute-index shipping: append only the exact next entry;
               anything else is a duplicate or a gap the cumulative ack
               will cause to be re-shipped in order *)
            if seq = journal_len t + 1 then begin
              Nm.apply_replicated_entry t.nm entry;
              t.stats.entries_applied <- t.stats.entries_applied + 1
            end;
            ack_journal t
          end
        end
    | Wire.Ha_journal_ack { epoch = _; upto } ->
        (* journal indexes are absolute and journals only grow, so the ack
           is meaningful whatever epoch the standby believed in *)
        t.acked <- max t.acked upto
    | Wire.Ha_inflight { epoch; req; dst; msg } -> (
        (* accepted whatever epoch the sender believed in: a delta from a
           deposed primary (racing its own demotion, or the demotion
           hand-off above) is exactly the unconfirmed work the new leader
           must adopt — request ids are process-unique and agents answer
           re-sends of executed requests from cache, so adopting one twice
           is harmless *)
        observe_epoch t epoch;
        match t.role with
        | Standby ->
            if not (List.exists (fun (r, _, _) -> r = req) t.replica_inflight) then begin
              t.replica_inflight <- (req, dst, msg) :: t.replica_inflight;
              t.stats.inflight_seen <- t.stats.inflight_seen + 1
            end
        | Primary ->
            let ours = Nm.inflight t.nm in
            if not (List.exists (fun (r, _, _) -> r = req) ours) then begin
              Nm.set_inflight t.nm ((req, dst, msg) :: ours);
              t.stats.inflight_seen <- t.stats.inflight_seen + 1
            end)
    | Wire.Ha_confirm { epoch; req } ->
        (* a confirm means some agent answered the request: drop it from
           the replica and (if leading) from the live re-issue set *)
        observe_epoch t epoch;
        t.replica_inflight <- List.filter (fun (r, _, _) -> r <> req) t.replica_inflight;
        if t.role = Primary then
          Nm.set_inflight t.nm
            (List.filter (fun (r, _, _) -> r <> req) (Nm.inflight t.nm))
    | Wire.Nm_takeover { nm = _; epoch } ->
        if epoch < t.epoch then t.stats.stale_rejects <- t.stats.stale_rejects + 1
        else begin
          (* the peer promoted: step down and treat the announcement as
             proof of its liveness *)
          observe_epoch t epoch;
          if t.role = Standby then note_heartbeat t
        end
    | _ -> ()

(* Promotion: become the acting primary under a strictly newer epoch,
   merge the replicated in-flight set with anything already ours, announce
   the takeover (which replays every unconfirmed request under the new
   epoch) and refresh the module abstractions. Replay is bounded by the
   configured horizon so a promotion inside a chaos tick cannot
   fast-forward through scheduled faults. *)
let promote t ~tick =
  t.epoch <- t.epoch + 1;
  t.role <- Primary;
  t.stats.promotions <- t.stats.promotions + 1;
  t.stats.promotion_ticks <- tick :: t.stats.promotion_ticks;
  let ours = Nm.inflight t.nm in
  let extra =
    List.filter
      (fun (r, _, _) -> not (List.exists (fun (r2, _, _) -> r2 = r) ours))
      t.replica_inflight
  in
  Nm.set_inflight t.nm (extra @ ours);
  t.replica_inflight <- [];
  t.stats.replayed <- t.stats.replayed + List.length (Nm.inflight t.nm);
  (match t.config.replay_horizon_ns with
  | Some h -> Nm.set_horizon t.nm (Some (Int64.add (now_ns t) h))
  | None -> ());
  Nm.take_over ~epoch:t.epoch t.nm;
  (* relearn potentials and reachability under the new epoch — responses
     also restore devices the dead primary's transport had given up on *)
  Nm.harvest_potentials t.nm
    (List.filter_map
       (fun (d : Topology.device_info) ->
         if d.Topology.di_id = Nm.my_id t.nm then None else Some d.Topology.di_id)
       (Nm.topology t.nm).Topology.devices)

(* One HA tick, driven by the harness at the heartbeat period. The primary
   heartbeats and re-ships its unacked journal tail; the standby accrues
   suspicion and promotes past the threshold. *)
let tick t ~tick:tick_no =
  t.cur_tick <- max t.cur_tick tick_no;
  if t.grace then begin
    t.last_hb_tick <- t.cur_tick;
    t.grace <- false
  end;
  if t.alive then
    match t.role with
    | Primary ->
        t.hb_seq <- t.hb_seq + 1;
        t.stats.heartbeats_sent <- t.stats.heartbeats_sent + 1;
        send_peer t (Wire.Ha_heartbeat { epoch = t.epoch; seq = t.hb_seq });
        let entries = Intent.entries (Nm.journal t.nm) in
        List.iteri
          (fun i entry ->
            let seq = i + 1 in
            if seq > t.acked && seq <= t.acked + t.config.ship_batch then
              ship_entry t seq entry)
          entries
    | Standby -> if suspicion t >= t.config.phi_threshold then promote t ~tick:tick_no

let set_alive t v =
  if v && not t.alive then
    (* revival: the heartbeat gap accrued while crashed says nothing about
       the current leader — grant a fresh grace period *)
    reset_detector t;
  t.alive <- v

let create ?(config = default_config) ~role ~peer nm =
  let t =
    {
      nm;
      peer;
      config;
      role;
      epoch = 1;
      alive = true;
      cur_tick = 0;
      last_hb_tick = 0;
      intervals = [];
      grace = false;
      hb_seq = 0;
      acked = 0;
      replica_inflight = [];
      stats =
        {
          promotions = 0;
          demotions = 0;
          heartbeats_sent = 0;
          heartbeats_seen = 0;
          stale_rejects = 0;
          entries_shipped = 0;
          entries_applied = 0;
          inflight_seen = 0;
          replayed = 0;
          promotion_ticks = [];
        };
    }
  in
  Nm.set_ha_hook nm (fun ~src msg -> on_msg t ~src msg);
  (* continuous replication: every journal append and in-flight delta on
     the acting primary streams to the standby as it happens *)
  Intent.on_append (Nm.journal nm) (fun entry ->
      if t.alive && t.role = Primary then ship_entry t (journal_len t) entry);
  Nm.set_repl_hooks nm
    ~on_add:(fun (req, dst, msg) ->
      if t.alive && t.role = Primary then
        send_peer t (Wire.Ha_inflight { epoch = t.epoch; req; dst; msg }))
    ~on_confirm:(fun req ->
      if t.alive && t.role = Primary then
        send_peer t (Wire.Ha_confirm { epoch = t.epoch; req }));
  t

(* Wires a primary/standby pair: bootstraps the standby with a one-shot
   replication (topology, scripts, journal prefix, in-flight set), marks
   the journal prefix as already acked, and fences the primary at epoch 1
   so every frame it sends carries a rejectable leadership claim. *)
let pair ?config ~primary ~standby () =
  let p = create ?config ~role:Primary ~peer:(Nm.my_id standby) primary in
  let s = create ?config ~role:Standby ~peer:(Nm.my_id primary) standby in
  Nm.replicate_to primary ~standby;
  p.acked <- List.length (Intent.entries (Nm.journal primary));
  Nm.set_epoch primary 1;
  (p, s)

let role t = t.role
let epoch t = t.epoch
let is_alive t = t.alive
let nm t = t.nm
let promotions t = t.stats.promotions
let demotions t = t.stats.demotions
let heartbeats_sent t = t.stats.heartbeats_sent
let heartbeats_seen t = t.stats.heartbeats_seen
let stale_rejects t = t.stats.stale_rejects
let entries_shipped t = t.stats.entries_shipped
let entries_applied t = t.stats.entries_applied
let inflight_seen t = t.stats.inflight_seen
let replayed t = t.stats.replayed
let promotion_ticks t = List.rev t.stats.promotion_ticks
let replica_inflight_count t = List.length t.replica_inflight

(* Registry-source form of the stats (see Obs.Registry in lib/obs). *)
let obs_counters t =
  [
    ("promotions", t.stats.promotions);
    ("demotions", t.stats.demotions);
    ("heartbeats_sent", t.stats.heartbeats_sent);
    ("heartbeats_seen", t.stats.heartbeats_seen);
    ("stale_rejects", t.stats.stale_rejects);
    ("entries_shipped", t.stats.entries_shipped);
    ("entries_applied", t.stats.entries_applied);
    ("inflight_seen", t.stats.inflight_seen);
    ("replayed", t.stats.replayed);
  ]
