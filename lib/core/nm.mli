(** The Network Manager (§II-D).

    Discovers the network over the management channel, harvests module
    abstractions with showPotential, achieves high-level connectivity goals
    by generating and executing CONMan scripts, relays conveyMessage
    traffic between modules (without interpreting it), accounts messages
    (Table VI), diagnoses faults and maintains dependencies via triggers.

    The NM is driven from outside the event loop: its helpers send requests
    and run the network to quiescence, while module coordination happens
    asynchronously inside the run. *)

type t

val create :
  ?transport:Mgmt.Reliable.t ->
  ?journal:Intent.journal ->
  chan:Mgmt.Channel.t ->
  net:Netsim.Net.t ->
  my_id:string ->
  unit ->
  t
(** A NM subscribed to the channel as device [my_id]. When [transport] is
    the {!Mgmt.Reliable} layer under [chan], the NM listens for delivery
    give-ups and marks the abandoned device unreachable in its
    {!topology}, to be routed around by {!achieve} until a fresh [Hello]
    shows it recovered (which also re-syncs the device's slices of every
    active script).

    [journal] seeds the NM's write-ahead intent journal: live intents are
    replayed from it at creation, modelling a restart from stable storage
    — call {!recover} (after discovery) to re-converge the network to
    them. Without it the NM starts with a fresh, empty journal. *)

val run : t -> unit
(** Runs the network to quiescence — or up to the current horizon when one
    is set. *)

val set_horizon : t -> int64 option -> unit
(** Bounds every internal [run] at the given virtual time, so scheduled
    data-plane faults are not fast-forwarded through. The monitor sets
    this around each reconciliation tick; [None] restores
    run-to-quiescence. *)

(** {1 Discovery} *)

val harvest_potentials : t -> string list -> unit
(** showPotential at every listed device; fills {!topology}. *)

val show_actual : t -> string -> (Ids.t * (string * string) list) list option
(** showActual at one device: per-module low-level state report. *)

val show_perf : t -> string -> (Ids.t * (string * (string * int) list) list) list option
(** showPerf at one device: per-module, per-pipe monotonic counter
    snapshots (the abstraction's performance aspect). [None] when the
    agent did not answer within the horizon — telemetry treats that as
    the device being unreachable. *)

val topology : t -> Topology.t
val net : t -> Netsim.Net.t

(** {1 Goal achievement (§III-C)} *)

val find_paths : t -> Path_finder.goal -> Path_finder.path list

val configure_path :
  ?batched:bool -> t -> Path_finder.goal -> Path_finder.path -> Script_gen.script
(** Generates the CONMan script for a specific path and executes it.
    [batched:false] ships one message per primitive instead of one bundle
    per device (ablation of the Table-VI accounting). *)

val achieve :
  ?configure:bool ->
  ?max_attempts:int ->
  t ->
  Path_finder.goal ->
  (Path_finder.path list * Path_finder.path * Script_gen.script, string) result
(** The full pipeline: enumerate, choose, generate and (unless
    [configure:false]) execute. Returns all candidate paths, the chosen
    one, and its script.

    Degraded mode: paths through devices currently marked unreachable are
    skipped, and if a path device stops answering mid-script the partial
    configuration is backed out of the devices that still respond and the
    next-best path is tried (up to [max_attempts], default 4). When the
    only candidates run through dead devices the result is
    [Error "device unreachable: <ids>"]. *)

val achieve_l2 :
  ?configure:bool ->
  t ->
  scope:string list ->
  from_eth:Ids.t ->
  to_eth:Ids.t ->
  (Script_gen.script, string) result
(** The figure-9 layer-2 goal: bridge two customer-facing ETH modules
    across a chain of switches with a negotiated VLAN tunnel. *)

val assign_address : t -> target:Ids.t -> addr:string -> plen:int -> unit
(** Assigns an address to an IP module (the paper's DHCP-like exception to
    protocol agnosticity, §II-E/§III-C). *)

val enforce_rate : t -> owner:Ids.t -> pipe_id:string -> rate_kbps:int -> unit
(** Performance enforcement (§II-D.1(c)): rate-limit what [owner] sends
    into [pipe_id]. *)

val remove_rate : t -> owner:Ids.t -> pipe_id:string -> unit

val teardown : t -> Script_gen.script -> unit
(** Deletes the script's switch rules and pipes, undoing the device state,
    and retires the intent the script realised (if any). *)

(** {1 Intents and reconciliation}

    {!achieve}, {!achieve_l2}, {!assign_address} and {!enforce_rate}
    journal an {!Intent.t} before configuring (write-ahead), so desired
    state survives an NM crash; {!teardown} and {!remove_rate} retire it.
    The {!Monitor} drives {!reconfigure}/{!resync_intent}/{!escalate} to
    keep live intents healthy. *)

val journal : t -> Intent.journal
val intents : t -> Intent.t list
(** Live and historical intents, in id order. *)

val recover : t -> unit
(** Re-realises every live intent — the second half of a restart from the
    journal (after discovery has repopulated {!topology}). Idempotent
    agents and a deterministic script generator make this converge to the
    same configuration as an uninterrupted run. *)

val reconfigure : ?exclude:string list -> ?avoid:string list -> t -> Intent.t -> (unit, string) result
(** Re-realises one intent, first backing its stale script (if any) out of
    the devices that still answer. For layer-3 goals, [exclude] skips
    candidate paths by {!Path_finder.signature} and [avoid] skips paths
    visiting the listed device ids — the monitor's next-best-path lever. *)

val resync_intent : t -> Intent.t -> unit
(** Re-sends the intent's script as-is (idempotent) — the drift repair. *)

val flush_inflight : t -> unit
(** Re-issues every state-changing request that was sent but never
    confirmed — the backstop for requests the reliable transport gave up
    on. Agents answer repeated request ids from their reply cache, so
    re-sends are idempotent; the monitor calls this every tick. *)

val set_incarnations : int -> unit
(** Pins the per-process NM boot counter that strides the request-id
    space. Only for harnesses needing cross-process reproducibility (the
    chaos engine); never call it while agents from an earlier NM share a
    channel with a new one. *)

val escalate : t -> Intent.t -> string -> unit
(** Marks the intent [Failed] and records the failure in {!errors}. *)

(** {1 Debugging (§II-D.2)} *)

val self_test : ?against:Ids.t -> t -> Ids.t -> bool * string
(** Asks one module to self-test; with [against] it probes data-plane
    connectivity towards that module instead. *)

val diagnose : t -> Path_finder.path -> (Ids.t * bool * string) list
(** Walks a configured path, self-testing every module: localises faults
    like a cut wire to the first failing module. *)

val probe_end_to_end : t -> Path_finder.path -> bool * string
(** Edge-to-edge data-plane probe between the path's customer-edge IP
    modules; catches silent faults hop-by-hop tests miss. *)

(** {1 Multiple NMs (§V)} *)

val replicate_to : t -> standby:t -> unit
(** Copies the learnt topology, domain knowledge, active scripts, journal
    and unconfirmed in-flight requests into a warm standby. Nothing mutable
    is shared: topology records are copied and the standby's intents are
    rebuilt by replaying the shipped journal entries, so later mutations on
    the primary never leak into the standby. {!Ha} supersedes this one-shot
    copy with continuous journal-shipping; it remains the bootstrap. *)

val take_over : ?epoch:int -> t -> unit
(** Broadcasts an [Nm_takeover] (plus a retried unicast per known device):
    every agent redirects its management traffic to this NM. Requests the
    primary never saw confirmed are re-issued under this NM's identity.

    The announcement and all subsequent frames are fenced with a strictly
    larger leadership epoch — [epoch] if given (clamped to never regress),
    otherwise the current epoch + 1 — so agents reject the deposed primary
    instead of obeying two managers (split-brain fencing). *)

(** {2 High-availability support (used by {!Ha})} *)

val my_id : t -> string

val epoch : t -> int
(** Current leadership epoch; 0 = unfenced single-NM legacy mode. *)

val set_epoch : t -> int -> unit
(** Raises the epoch (never lowers it); subsequent frames are fenced. *)

val send_msg : t -> dst:string -> Wire.t -> unit
(** Sends one message over the management channel, fenced per the current
    epoch — the HA layer's transport for heartbeats and journal shipping. *)

val set_ha_hook : t -> (src:string -> Wire.t -> unit) -> unit
(** Routes received NM-to-NM HA traffic ([Ha_*], [Nm_takeover]) to the
    hook instead of the normal dispatch (and outside Table-VI stats). *)

val set_repl_hooks :
  t -> on_add:(int * string * Wire.t -> unit) -> on_confirm:(int -> unit) -> unit
(** Observes the in-flight set: [on_add] fires when a state-changing
    request is sent, [on_confirm] when it is confirmed — the deltas the
    primary ships to its standby. *)

val apply_replicated_entry : t -> Intent.entry -> unit
(** Appends one journal entry shipped from the primary and rebuilds the
    intent list from the local journal (idempotent under re-shipping). *)

val inflight : t -> (int * string * Wire.t) list
(** The in-flight set, newest first. *)

val set_inflight : t -> (int * string * Wire.t) list -> unit
(** Replaces the in-flight set — promotion merges the replicated set in
    before {!take_over} replays it. *)

val bump_req : t -> int -> unit
(** Raises the request-id counter to at least the given value. *)

(** {2 Federation support (used by {!Fed} in [lib/federation])} *)

val set_fed_hook : t -> (src:string -> Wire.t -> unit) -> unit
(** Routes received inter-NM federation traffic ([Fed_*]) to the hook
    instead of the normal dispatch (and outside Table-VI stats). *)

val set_convey_relay : t -> (src:Ids.t -> dst:Ids.t -> Peer_msg.t -> unit) -> unit
(** Called instead of direct delivery when a conveyMessage targets a module
    on a device outside the owned set — the federation layer forwards it to
    the owning NM. *)

val set_owned_devices : t -> string list -> unit
(** Declares the NM's administrative domain. Once set, a state-changing
    request to any device outside the set bumps {!foreign_writes}, and
    conveys to foreign modules go through the relay hook. Unset (the
    default), the NM is in single-NM legacy mode and owns everything. *)

val foreign_writes : t -> int
(** State-changing requests sent to devices outside the owned set since
    creation. The federation invariant is that this stays 0: an NM must
    never write configuration into another domain's devices. *)

val run_script : t -> Script_gen.script -> unit
(** Ships a ready-made script (a delegated slice of a federated goal) and
    starts maintaining it like any script from {!achieve}. Does not run
    the network — safe to call from inside delivery callbacks; the
    caller's drive delivers the bundles. *)

val script_pending : t -> Script_gen.script -> bool
(** Whether any of the script's bundles is still awaiting confirmation. *)

val abort_script : t -> Script_gen.script -> unit
(** Backs a partially-applied script out of the devices that still answer
    (unreachable ones are owed the deletions and settled on recovery) and
    stops maintaining it. *)

(** {2 Tracing and metrics (see {!Obs})} *)

val set_obs : t -> Obs.Trace.t -> unit
(** Attaches a span collector. From here on every goal-scoped operation
    ({!achieve}, {!achieve_l2}, back-outs, {!reconfigure}) opens a span,
    every state-changing request sent under one becomes a child span, and
    the context rides on the wire via {!Wire.Traced} so agents and peer
    NMs parent their own spans into the same goal tree. Re-sends (flush,
    takeover replay) add events to the existing span, never new spans. *)

val obs : t -> Obs.Trace.t option

val set_registry : t -> Obs.Registry.t -> unit
(** Attaches the metrics registry; the NM feeds the
    [ha.failover_replay_ticks] histogram (confirm latency of requests a
    promoted standby replayed). *)

val set_trace_ctx : t -> Obs.Trace.ctx option -> unit
(** Overrides the ambient span requests are parented under — the
    federation layer sets this around delegated-slice execution so a
    peer's bundles join the coordinator's goal tree. *)

val trace_ctx : t -> Obs.Trace.ctx option

val rx_ctx : t -> Obs.Trace.ctx option
(** The context carried by the frame currently being dispatched (valid
    only inside a receive hook) — HA/federation handlers parent their
    spans on it so cross-NM work joins the sender's goal tree. *)

val obs_counters : t -> (string * int) list
(** The NM's counters in registry-source form ([sent], [received],
    [acks], [foreign_writes]). *)

(** {1 Observation} *)

val reset_stats : t -> unit
val stats_sent : t -> int

val stats_received : t -> int
(** Protocol messages only, per Table VI — explicit success acks are
    counted in {!stats_acks} instead. *)

val stats_acks : t -> int

val inflight_count : t -> int
(** State-changing requests sent but not yet confirmed by an agent. *)

val transport : t -> Mgmt.Reliable.t option
val conveys : t -> (Ids.t * Ids.t * Peer_msg.t) list
(** The conveyMessage relay log (the figure-3 trace). *)

val completions : t -> (Ids.t * string) list
val errors : t -> (string * string) list
val triggers : t -> (Ids.t * string * string) list

val set_auto_repair : t -> bool -> unit
(** When on, a received trigger re-issues the active scripts (§II-E). *)
