(* The ETH protocol module. On hosts and routers there is one per port and
   it only passes packets between its physical pipe and the module above
   ([phy=>up]/[up=>phy]); on layer-2 switches a single ETH module covers all
   ports and additionally advertises [phy=>phy] switching (§II-C.2). *)

open Module_impl

type state = {
  env : env;
  mref : Ids.t;
  ports : int list; (* port indices this module represents *)
  switching : bool;
  up_connectable : string list;
  mutable pipes : (Primitive.pipe_spec * role) list;
  mutable rules : Primitive.switch_rule list;
}

let phys_pipe_id (st : state) port_index =
  let p = Netsim.Device.port st.env.device port_index in
  Printf.sprintf "Phy-%s-%s" st.env.device.Netsim.Device.dev_name p.Netsim.Device.port_name

let port_of_phys st phys_id =
  List.find_opt (fun i -> phys_pipe_id st i = phys_id) st.ports

let port_name st i = (Netsim.Device.port st.env.device i).Netsim.Device.port_name

let abstraction ~neighbours st () =
  let physical =
    List.map
      (fun i ->
        let peer_device, peer_port, broadcast =
          match neighbours i with
          | [ (d, p) ] -> (d, p, false)
          | [] -> ("", "", false)
          | (d, p) :: _ -> (d, p, true)
        in
        { Abstraction.phys_id = phys_pipe_id st i; peer_device; peer_port; broadcast })
      st.ports
  in
  {
    Abstraction.default with
    name = "ETH";
    up = Some { Abstraction.connectable = st.up_connectable; dependencies = [] };
    down = None;
    physical;
    peerable = [ "ETH" ];
    switch =
      (if st.switching then [ Abstraction.Phy_up; Abstraction.Up_phy; Abstraction.Phy_phy ]
       else [ Abstraction.Phy_up; Abstraction.Up_phy ]);
    perf_reporting = [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes" ];
  }

(* Queries the VLAN module uses to locate ports (see {!Vlan_module}):
   - "port-of-phy:<physid>": port name for a physical pipe id
   - "tunnel-port:<pipe>": port named as P0 in a [P0, Tagged => pipe] rule
   - "trunk-port:<pipe>": port named as P4 in a (pipe, P4) rule *)
let fields st key =
  match String.split_on_char ':' key with
  | [ "iface" ] -> (
      match st.ports with i :: _ -> Some (port_name st i) | [] -> None)
  | [ "mac" ] -> (
      match st.ports with
      | i :: _ ->
          Some
            (Packet.Mac_addr.to_string (Netsim.Device.port st.env.device i).Netsim.Device.port_mac)
      | [] -> None)
  | [ "port-of-phy"; phys ] -> Option.map (port_name st) (port_of_phys st phys)
  | [ "tunnel-port"; pipe ] ->
      List.find_map
        (function
          | Primitive.Directed { from_pipe; to_pipe; sel = Primitive.Tagged }
            when to_pipe = pipe ->
              Option.map (port_name st) (port_of_phys st from_pipe)
          | _ -> None)
        st.rules
  | [ "trunk-port"; pipe ] ->
      List.find_map
        (function
          | Primitive.Bidi (a, b) when a = pipe -> Option.map (port_name st) (port_of_phys st b)
          | Primitive.Bidi (a, b) when b = pipe -> Option.map (port_name st) (port_of_phys st a)
          | _ -> None)
        st.rules
  | _ -> None

let make ~env ~mref ~ports ~switching ~neighbours () =
  let st =
    {
      env;
      mref;
      ports;
      switching;
      up_connectable = (if switching then [ "IP"; "MPLS"; "VLAN" ] else [ "IP"; "MPLS" ]);
      pipes = [];
      rules = [];
    }
  in
  {
    (no_op_module mref (abstraction ~neighbours st)) with
    create_pipe =
      (fun spec role ->
        st.pipes <- (spec, role) :: List.remove_assoc spec st.pipes;
        env.progress ());
    delete_pipe =
      (fun pid -> st.pipes <- List.filter (fun (s, _) -> s.Primitive.pipe_id <> pid) st.pipes);
    create_switch =
      (fun rule ->
        if not (List.mem rule st.rules) then st.rules <- st.rules @ [ rule ];
        env.progress ());
    delete_switch = (fun rule -> st.rules <- List.filter (( <> ) rule) st.rules);
    fields = fields st;
    perf =
      (fun () ->
        (* up = frames delivered off the wire towards the module above;
           down = frames sent onto the wire *)
        List.map
          (fun i ->
            let p = Netsim.Device.port st.env.device i in
            let c n = Netsim.Counters.get p.Netsim.Device.port_counters n in
            ( phys_pipe_id st i,
              [
                ("up_frames", c "rx_frames");
                ("up_bytes", c "rx_bytes");
                ("down_frames", c "tx_frames");
                ("down_bytes", c "tx_bytes");
                ("drop:rx_bad", c "rx_bad");
                ("drop:rx_vlan", c "rx_vlan_drop");
                ("drop:tx_down", c "tx_down");
              ] ))
          st.ports);
    actual =
      (fun () ->
        List.concat_map
          (fun i ->
            let p = Netsim.Device.port st.env.device i in
            [
              ( "port:" ^ p.Netsim.Device.port_name,
                Printf.sprintf "rx=%d tx=%d"
                  (Netsim.Counters.get p.Netsim.Device.port_counters "rx_frames")
                  (Netsim.Counters.get p.Netsim.Device.port_counters "tx_frames") );
            ])
          st.ports
        @ List.map (fun r -> ("switch", Fmt.str "%a" Primitive.pp_rule r)) st.rules
        @ List.map
            (fun (s, _) -> ("pipe", s.Primitive.pipe_id))
            st.pipes);
    self_test =
      (fun ~against:_ ~reply ->
        (* An ETH module is healthy when its ports have links and are up. *)
        let bad =
          List.filter
            (fun i ->
              let p = Netsim.Device.port st.env.device i in
              (not p.Netsim.Device.port_up) || p.Netsim.Device.port_endpoint = None)
            st.ports
        in
        if bad = [] then reply ~ok:true ~detail:"all ports up"
        else reply ~ok:false ~detail:(Printf.sprintf "%d port(s) down or unplugged" (List.length bad)));
  }
