(* The IP protocol module. A device may host several IP module instances
   (figure 4(b): router A has customer-facing g and core-facing h), each
   bound to a set of interfaces and an address domain.

   Pipe coordination (§III-B): as the bottom of a tunnel pipe it exchanges
   tunnel-endpoint addresses with its peer; as the top of a pipe over ETH it
   exchanges next-hop addresses; both through listFieldsAndValues messages
   relayed by the NM. Switch rules translate into the same iproute2-style
   commands the "today" scripts use. *)

open Module_impl

type pipe_state = {
  spec : Primitive.pipe_spec;
  role : role;
  mutable peer_addr : string option;
  mutable exchange_started : bool;
}

type filter_state = {
  f_src : Ids.t;
  f_dst : Ids.t;
  mutable f_src_addr : string option;
  mutable f_dst_addr : string option;
  mutable f_applied : (Packet.Prefix.t * Packet.Prefix.t) option;
}

type state = {
  env : env;
  mref : Ids.t;
  bound_ifaces : string list;
  domain : string;
  mutable pipes : pipe_state list;
  mutable pending : Primitive.switch_rule list;
  mutable applied : (Primitive.switch_rule * string list) list;
  mutable filters : filter_state list;
  mutable next_table : int;
  (* exchange requests that arrived before our bundle created the matching
     pipe (bundles to different devices race with coordination traffic) *)
  mutable early : (Ids.t * string * (string * string) list) list;
  (* outstanding end-to-end probes: target module -> reply continuation *)
  mutable probes : (Ids.t * (ok:bool -> detail:string -> unit)) list;
  (* NM-assigned diagnostic address inside the customer prefix this edge
     module serves; reachable through the configured path, so end-to-end
     probes stay within the managed devices *)
  mutable probe_addr : string option;
  (* performance enforcement requested per pipe, applied once the pipe's
     interface resolves *)
  mutable perf_pending : (string * int) list;
  mutable perf_applied : (string * string) list; (* pipe -> iface *)
}

let my_peer ps =
  match ps.role with `Top -> ps.spec.Primitive.peer_top | `Bottom -> ps.spec.Primitive.peer_bottom

let find_pipe st pid = List.find_opt (fun p -> p.spec.Primitive.pipe_id = pid) st.pipes

(* The exchange purpose a pipe participates in: tunnel-endpoint resolution
   when we are the delivery protocol (role Bottom), next-hop resolution when
   we sit on top of an ETH pipe. *)
let purpose_of ps = match ps.role with `Bottom -> "endpoint" | `Top -> "nexthop"

let find_pipe_by_peer st ?purpose peer =
  List.find_opt
    (fun p ->
      (match purpose with Some x -> purpose_of p = x | None -> true)
      && match my_peer p with Some m -> Ids.equal m peer | None -> false)
    st.pipes

let iface_addr st name =
  match Netsim.Device.find_iface st.env.device name with
  | Some i -> Option.map Packet.Ipv4_addr.to_string (Netsim.Device.primary_addr i)
  | None -> None

let own_addr st = List.find_map (iface_addr st) st.bound_ifaces

(* The interface a role-Top pipe runs over, once resolvable. *)
let under_iface st ps =
  let bottom = ps.spec.Primitive.bottom in
  let pid = ps.spec.Primitive.pipe_id in
  match bottom.Ids.name with
  | "ETH" -> st.env.local_query bottom "iface"
  | "GRE" | "ESP" | "IP" -> st.env.local_query bottom ("tundev:" ^ pid)
  | "MPLS" -> Some "mpls0"
  | _ -> None

(* My address as seen on a given pipe: the address of the interface under a
   role-Top/ETH pipe, the module's own address otherwise. *)
let pipe_addr st ps =
  match (ps.role, ps.spec.Primitive.bottom.Ids.name) with
  | `Top, "ETH" -> ( match under_iface st ps with Some i -> iface_addr st i | None -> own_addr st)
  | _ -> own_addr st

(* Does this pipe call for an address exchange with the peer? *)
let wants_exchange ps =
  match ps.role with
  | `Bottom ->
      (* we are the delivery protocol of a tunnel *)
      List.mem ps.spec.Primitive.top.Ids.name [ "GRE"; "ESP"; "IP" ]
  | `Top -> ps.spec.Primitive.bottom.Ids.name = "ETH" && ps.spec.Primitive.peer_top <> None

let run st cmds =
  List.iter (run_cmd st.env.device) cmds;
  cmds

let enable_forwarding = "echo 1 > /proc/sys/net/ipv4/ip_forward"

(* --- deferred work ---------------------------------------------------------- *)

(* Creates the IP-IP tunnel for pipes where we are the delivery protocol
   under another IP module. *)
let maybe_create_ipip st ps =
  if ps.role = `Bottom && ps.spec.Primitive.top.Ids.name = "IP" then
    match (own_addr st, ps.peer_addr) with
    | Some local, Some remote ->
        let name = "ipip-" ^ ps.spec.Primitive.pipe_id in
        if Netsim.Device.find_iface st.env.device name = None then begin
          ignore
            (run st
               [
                 "insmod /lib/modules/2.6.14-2/ipip.ko";
                 Printf.sprintf "ip tunnel add name %s mode ipip remote %s local %s" name remote
                   local;
               ]);
          st.env.progress ()
        end
    | _ -> ()

let start_exchange st ps =
  match my_peer ps with
  | Some peer when wants_exchange ps && not ps.exchange_started ->
      if initiates st.mref peer then begin
        match pipe_addr st ps with
        | Some addr ->
            ps.exchange_started <- true;
            st.env.convey ~src:st.mref ~dst:peer
              (Peer_msg.Lfv_request
                 { purpose = purpose_of ps; fields = [ "address" ]; own = [ ("address", addr) ] })
        | None -> ()
      end
  | _ -> ()

let fresh_table st prefix =
  st.next_table <- st.next_table + 1;
  Printf.sprintf "%s-%d" prefix st.next_table

(* Attempts one switch rule; returns the commands run, or None if its
   dependencies are not ready yet. *)
let try_rule st (rule : Primitive.switch_rule) =
  match rule with
  | Primitive.Directed { from_pipe = _; to_pipe; sel = Primitive.Dst_domain d } -> (
      (* customer -> path: route the destination site's prefix into the pipe *)
      match (st.env.domain_prefix d, find_pipe st to_pipe) with
      | Some prefix, Some ps -> (
          if ps.spec.Primitive.bottom.Ids.name = "MPLS" then
            (* label imposition: the MPLS module below owns the NHLFE *)
            match
              ( st.env.local_query ps.spec.Primitive.bottom ("ftn-key:" ^ to_pipe),
                st.env.local_query ps.spec.Primitive.bottom ("ftn-via:" ^ to_pipe) )
            with
            | Some key, Some via ->
                Some
                  (run st
                     [
                       enable_forwarding;
                       Printf.sprintf "ip route del %s" prefix;
                       Printf.sprintf "ip route add %s via %s mpls %s" prefix via key;
                     ])
            | _ -> None
          else if wants_exchange ps && ps.peer_addr = None then
            (* the pipe runs directly over ETH: wait for the peer exchange
               so the route can name the gateway *)
            None
          else
            match under_iface st ps with
            | Some dev ->
                (* when the pipe runs directly over ETH the exchanged peer
                   address is the gateway; tunnel pipes route on-link *)
                let via =
                  match ps.peer_addr with Some a -> " via " ^ a | None -> ""
                in
                Some
                  (run st
                     [
                       enable_forwarding;
                       Printf.sprintf "ip route del %s" prefix;
                       Printf.sprintf "ip route add %s%s dev %s" prefix via dev;
                     ])
            | None -> None)
      | _ -> None)
  | Primitive.Directed { from_pipe; to_pipe; sel = Primitive.To_gateway gw } -> (
      (* path -> customer: traffic emerging from [from_pipe] is handed to the
         site gateway out of [to_pipe]'s interface (proxy ARP resolves it,
         exactly as in figure 7(a)). *)
      match (find_pipe st from_pipe, find_pipe st to_pipe) with
      | Some inp, Some outp -> (
          match (under_iface st inp, under_iface st outp) with
          | Some in_dev, Some out_dev ->
              let table = fresh_table st ("t-" ^ from_pipe) in
              (* a diagnostic /32 inside the served site's prefix, so the NM
                 can probe the path end to end without touching customer
                 hosts; the site is named by the gateway selector *)
              let diag =
                if st.probe_addr <> None then []
                else
                  match String.index_opt gw '-' with
                  | Some i -> (
                      let site = "-" ^ String.sub gw 0 i in
                      let ls = String.length site in
                      match
                        List.find_opt
                          (fun (d, _) ->
                            String.length d >= ls
                            && String.sub d (String.length d - ls) ls = site)
                          (st.env.domains ())
                      with
                      | Some (_, prefix) ->
                          let addr =
                            Packet.Ipv4_addr.to_string
                              (Packet.Prefix.nth_host (Packet.Prefix.of_string prefix) 250)
                          in
                          st.probe_addr <- Some addr;
                          [ Printf.sprintf "ifconfig lo %s/32" addr ]
                      | None -> [])
                  | None -> []
              in
              Some
                (run st
                   ([
                      enable_forwarding;
                      Printf.sprintf "echo %d %s >> /etc/iproute2/rt_tables" (200 + st.next_table)
                        table;
                      Printf.sprintf "ip rule add iif %s table %s" in_dev table;
                      Printf.sprintf "ip route add default dev %s table %s" out_dev table;
                    ]
                   @ diag))
          | _ -> None)
      | _ -> None)
  | Primitive.Directed _ -> None
  | Primitive.Bidi (x, y) -> (
      match (find_pipe st x, find_pipe st y) with
      | Some px, Some py -> (
          match (px.role, py.role) with
          | `Top, `Top -> (
              (* [down=>down]: forwarding between two lower pipes. When one
                 side is an LSP, traffic arriving from the other side is
                 policy-routed into it (mid-path label imposition); the
                 reverse direction pops locally and uses the main table. *)
              let mpls_side =
                List.find_opt
                  (fun p -> p.spec.Primitive.bottom.Ids.name = "MPLS")
                  [ px; py ]
              in
              match mpls_side with
              | None -> Some (run st [ enable_forwarding ])
              | Some pm -> (
                  let po = if pm == px then py else px in
                  let pm_pid = pm.spec.Primitive.pipe_id in
                  match
                    ( st.env.local_query pm.spec.Primitive.bottom ("ftn-key:" ^ pm_pid),
                      st.env.local_query pm.spec.Primitive.bottom ("ftn-via:" ^ pm_pid),
                      under_iface st po )
                  with
                  | Some key, Some via, Some in_dev ->
                      let table = fresh_table st ("t-" ^ pm_pid) in
                      Some
                        (run st
                           [
                             enable_forwarding;
                             Printf.sprintf "echo %d %s >> /etc/iproute2/rt_tables"
                               (200 + st.next_table) table;
                             Printf.sprintf "ip rule add iif %s table %s" in_dev table;
                             Printf.sprintf "ip route add default via %s mpls %s table %s" via key
                               table;
                           ])
                  | _ -> None))
          | `Bottom, `Top | `Top, `Bottom -> (
              (* [up=>down]: route the tunnel remote through the lower pipe *)
              let up, down = if px.role = `Bottom then (px, py) else (py, px) in
              let down_pid = down.spec.Primitive.pipe_id in
              if down.spec.Primitive.bottom.Ids.name = "MPLS" then
                (* the outer packets ride an LSP: impose the label the MPLS
                   module below negotiated *)
                match
                  ( up.peer_addr,
                    st.env.local_query down.spec.Primitive.bottom ("ftn-key:" ^ down_pid),
                    st.env.local_query down.spec.Primitive.bottom ("ftn-via:" ^ down_pid) )
                with
                | Some remote, Some key, Some via ->
                    Some
                      (run st
                         [
                           Printf.sprintf "ip route del to %s" remote;
                           Printf.sprintf "ip route add to %s via %s mpls %s" remote via key;
                         ])
                | _ -> None
              else
                match (up.peer_addr, down.peer_addr, under_iface st down) with
                | Some remote, Some nexthop, Some dev ->
                    Some
                      (run st
                         [
                           Printf.sprintf "ip route del to %s" remote;
                           Printf.sprintf "ip route add to %s via %s dev %s" remote nexthop dev;
                         ])
                | _ -> None)
          | `Bottom, `Bottom ->
              (* [up=>up]: loopback between upper modules; nothing to install
                 in the simulator's data plane *)
              Some [])
      | _ -> None)

let try_filter st f =
  if f.f_applied = None then
    match (f.f_src_addr, f.f_dst_addr) with
    | Some s, Some d ->
        let drop = (Packet.Prefix.of_string s, Packet.Prefix.of_string d) in
        f.f_applied <- Some drop;
        st.env.device.Netsim.Device.ip_drops <- drop :: st.env.device.Netsim.Device.ip_drops
    | _ ->
        (* resolve the protocol fields by querying the target modules *)
        let ask target =
          st.env.convey ~src:st.mref ~dst:target
            (Peer_msg.Lfv_request { purpose = "filter"; fields = [ "address" ]; own = [] })
        in
        if f.f_src_addr = None then ask f.f_src;
        if f.f_dst_addr = None then ask f.f_dst

(* Applies requested rate limits once the pipe's underlying interface is
   known (e.g. the tunnel device exists). *)
let try_perf st =
  st.perf_pending <-
    List.filter
      (fun (pid, rate_kbps) ->
        match Option.bind (find_pipe st pid) (under_iface st) with
        | Some dev ->
            run_cmd st.env.device
              (Printf.sprintf "tc qdisc add dev %s rate %d burst 100" dev (rate_kbps * 1000));
            st.perf_applied <- (pid, dev) :: st.perf_applied;
            false
        | None -> true)
      st.perf_pending

let poll st () =
  try_perf st;
  List.iter (start_exchange st) st.pipes;
  List.iter (maybe_create_ipip st) st.pipes;
  let still_pending =
    List.filter
      (fun rule ->
        match try_rule st rule with
        | Some cmds ->
            st.applied <- (rule, cmds) :: st.applied;
            false
        | None -> true)
      st.pending
  in
  let progressed = List.length still_pending <> List.length st.pending in
  st.pending <- still_pending;
  List.iter (try_filter st) st.filters;
  if progressed then st.env.progress ()

(* --- peer messages ---------------------------------------------------------- *)

(* Sends one echo request and reports asynchronously whether the matching
   reply arrived within the probe window. *)
let probe_ping st ~src ~dst ~reply =
  let got = ref false in
  let dev = st.env.device in
  let dst_addr = Packet.Ipv4_addr.of_string dst in
  let saved = dev.Netsim.Device.icmp_hook in
  dev.Netsim.Device.icmp_hook <-
    Some
      (fun hdr msg ->
        (match saved with Some f -> f hdr msg | None -> ());
        match msg with
        | Packet.Icmp.Echo_reply _ when Packet.Ipv4_addr.equal hdr.Packet.Ipv4.src dst_addr ->
            got := true
        | _ -> ());
  Netsim.Datapath.icmp_echo dev ~src:(Packet.Ipv4_addr.of_string src) ~dst:dst_addr ~id:0xbeef
    ~seq:1 (Bytes.of_string "self-test");
  st.env.schedule ~delay_ns:1_000_000L (fun () ->
      dev.Netsim.Device.icmp_hook <- saved;
      if !got then reply ~ok:true ~detail:("peer " ^ dst ^ " reachable")
      else reply ~ok:false ~detail:("no reply from peer " ^ dst))

let answer_exchange st src ps own =
  (match List.assoc_opt "address" own with
  | Some a -> ps.peer_addr <- Some a
  | None -> ());
  (match pipe_addr st ps with
  | Some a ->
      st.env.convey ~src:st.mref ~dst:src
        (Peer_msg.Lfv_reply { purpose = purpose_of ps; fields = [ ("address", a) ] })
  | None -> ());
  poll st ()

let on_peer st ~src msg =
  match msg with
  | Peer_msg.Lfv_request { purpose = ("filter" | "probe") as purpose; fields = _; own = _ } -> (
      (* a filter-resolution or probe query from another module (§II-E);
         probes target the diagnostic address when one is assigned *)
      let addr = match purpose with "probe" when st.probe_addr <> None -> st.probe_addr | _ -> own_addr st in
      match addr with
      | Some a ->
          st.env.convey ~src:st.mref ~dst:src
            (Peer_msg.Lfv_reply { purpose; fields = [ ("address", a) ] })
      | None -> ())
  | Peer_msg.Lfv_request { purpose; fields = _; own } -> (
      match find_pipe_by_peer st ~purpose src with
      | Some ps -> answer_exchange st src ps own
      | None ->
          (* a pipe exchange that raced our bundle: replay once the pipe
             exists *)
          st.early <- (src, purpose, own) :: st.early)
  | Peer_msg.Lfv_reply { purpose = "probe"; fields } -> (
      let pending, rest = List.partition (fun (t, _) -> Ids.equal t src) st.probes in
      st.probes <- rest;
      let my_addr = match st.probe_addr with Some a -> Some a | None -> own_addr st in
      match (List.assoc_opt "address" fields, my_addr) with
      | Some dst, Some my_addr ->
          List.iter (fun (_, reply) -> probe_ping st ~src:my_addr ~dst ~reply) pending
      | _ -> List.iter (fun (_, reply) -> reply ~ok:false ~detail:"probe target has no address") pending)
  | Peer_msg.Lfv_reply { purpose = "filter"; fields } ->
      let addr = List.assoc_opt "address" fields in
      List.iter
        (fun f ->
          if Ids.equal f.f_src src && f.f_src_addr = None then f.f_src_addr <- addr;
          if Ids.equal f.f_dst src && f.f_dst_addr = None then f.f_dst_addr <- addr)
        st.filters;
      poll st ()
  | Peer_msg.Lfv_reply { purpose; fields } -> (
      let addr = List.assoc_opt "address" fields in
      match find_pipe_by_peer st ~purpose src with
      | Some ps ->
          ps.peer_addr <- addr;
          poll st ()
      | None -> ())
  | Peer_msg.Gre_params _ | Peer_msg.Gre_params_ack _ | Peer_msg.Mpls_label_bind _
  | Peer_msg.Vlan_vid_bind _ | Peer_msg.Vlan_vid_ack _ ->
      ()

(* --- abstraction ------------------------------------------------------------- *)

let abstraction () =
  {
    Abstraction.default with
    name = "IP";
    up = Some { Abstraction.connectable = [ "IP"; "GRE"; "ESP" ]; dependencies = [] };
    down = Some { Abstraction.connectable = [ "IP"; "GRE"; "ESP"; "MPLS"; "ETH" ]; dependencies = [] };
    peerable = [ "IP" ];
    filterable = [ "module"; "device" ];
    switch =
      [ Abstraction.Down_up; Abstraction.Up_down; Abstraction.Down_down; Abstraction.Up_up ];
    perf_reporting = [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes" ];
    perf_enforcement = [ "rate-limit" ];
  }

(* --- handle for operators/tests (dependency-tracking experiments) ----------- *)

type handle = { change_address : iface:string -> string -> string -> unit; state : state }

let make ~env ~mref ~ifaces ~domain () =
  let st =
    {
      env;
      mref;
      bound_ifaces = ifaces;
      domain;
      pipes = [];
      pending = [];
      applied = [];
      filters = [];
      next_table = 0;
      early = [];
      probes = [];
      probe_addr = None;
      perf_pending = [];
      perf_applied = [];
    }
  in
  let impl =
    {
      (no_op_module mref abstraction) with
      create_pipe =
        (fun spec role ->
          (match find_pipe st spec.Primitive.pipe_id with
          | Some old -> st.pipes <- List.filter (fun p -> p != old) st.pipes
          | None -> ());
          st.pipes <- { spec; role; peer_addr = None; exchange_started = false } :: st.pipes;
          (* a recreated pipe invalidates switch state derived from it: move
             the affected applied rules back to pending so they re-resolve
             (dependency maintenance, §II-E) *)
          let mentions rule =
            let pid = spec.Primitive.pipe_id in
            match rule with
            | Primitive.Bidi (a, b) -> a = pid || b = pid
            | Primitive.Directed { from_pipe; to_pipe; _ } -> from_pipe = pid || to_pipe = pid
          in
          let invalidated, kept = List.partition (fun (r, _) -> mentions r) st.applied in
          st.applied <- kept;
          st.pending <- st.pending @ List.map fst invalidated;
          (* replay exchange requests that arrived before this pipe existed *)
          (match my_peer { spec; role; peer_addr = None; exchange_started = false } with
          | Some peer ->
              let matching, rest =
                List.partition
                  (fun (p, purpose, _) ->
                    Ids.equal p peer
                    && match find_pipe_by_peer st ~purpose peer with Some _ -> true | None -> false)
                  st.early
              in
              st.early <- rest;
              List.iter
                (fun (p, purpose, own) ->
                  match find_pipe_by_peer st ~purpose p with
                  | Some ps -> answer_exchange st p ps own
                  | None -> ())
                matching
          | None -> ());
          poll st ());
      delete_pipe =
        (fun pid ->
          (* tear the IP-IP tunnel iface down with the pipe: a stale tunnel
             with the same endpoints would keep capturing decapsulation *)
          let name = "ipip-" ^ pid in
          if Netsim.Device.find_iface st.env.device name <> None then
            run_cmd st.env.device ("ip tunnel del " ^ name);
          st.pipes <- List.filter (fun p -> p.spec.Primitive.pipe_id <> pid) st.pipes);
      create_switch =
        (fun rule ->
          if
            (not (List.mem rule st.pending))
            && not (List.exists (fun (r, _) -> r = rule) st.applied)
          then st.pending <- st.pending @ [ rule ];
          poll st ());
      delete_switch =
        (fun rule ->
          st.pending <- List.filter (( <> ) rule) st.pending;
          let gone, kept = List.partition (fun (r, _) -> r = rule) st.applied in
          st.applied <- kept;
          (* undo the device-level state the rule installed: route/rule adds
             invert to deletes (the interpreters match on prefix/table) *)
          let undo cmd =
            let flip tag =
              let add = tag ^ " add " in
              let la = String.length add in
              if String.length cmd >= la && String.sub cmd 0 la = add then
                Some (tag ^ " del " ^ String.sub cmd la (String.length cmd - la))
              else None
            in
            match flip "ip route" with Some u -> Some u | None -> flip "ip rule"
          in
          List.iter
            (fun (_, cmds) -> List.iter (fun c -> Option.iter (run_cmd st.env.device) (undo c)) cmds)
            gone);
      set_address =
        (fun ~addr ~plen ->
          match st.bound_ifaces with
          | iface :: _ ->
              run_cmd st.env.device (Printf.sprintf "ifconfig %s %s/%d" iface addr plen)
          | [] -> ());
      create_perf =
        (fun ~pipe_id ~rate_kbps ->
          st.perf_pending <- (pipe_id, rate_kbps) :: st.perf_pending;
          poll st ());
      delete_perf =
        (fun ~pipe_id ->
          st.perf_pending <- List.remove_assoc pipe_id st.perf_pending;
          match List.assoc_opt pipe_id st.perf_applied with
          | Some dev ->
              st.perf_applied <- List.remove_assoc pipe_id st.perf_applied;
              run_cmd st.env.device (Printf.sprintf "tc qdisc del dev %s" dev)
          | None -> ());
      create_filter =
        (fun ~drop_src ~drop_dst ->
          st.filters <-
            { f_src = drop_src; f_dst = drop_dst; f_src_addr = None; f_dst_addr = None; f_applied = None }
            :: st.filters;
          poll st ());
      delete_filter =
        (fun ~drop_src ~drop_dst ->
          let gone, kept =
            List.partition
              (fun f -> Ids.equal f.f_src drop_src && Ids.equal f.f_dst drop_dst)
              st.filters
          in
          st.filters <- kept;
          List.iter
            (fun f ->
              match f.f_applied with
              | Some drop ->
                  st.env.device.Netsim.Device.ip_drops <-
                    List.filter (( <> ) drop) st.env.device.Netsim.Device.ip_drops
              | None -> ())
            gone);
      on_peer = on_peer st;
      fields =
        (fun key ->
          match String.split_on_char ':' key with
          | [ "address" ] -> own_addr st
          | [ "iface" ] -> ( match st.bound_ifaces with i :: _ -> Some i | [] -> None)
          | [ "domain" ] -> Some st.domain
          | [ "peer-addr"; pid ] -> Option.bind (find_pipe st pid) (fun p -> p.peer_addr)
          | [ "tundev"; pid ] ->
              (* the IP-IP tunnel created when we are a tunnel's delivery
                 protocol *)
              let name = "ipip-" ^ pid in
              if Netsim.Device.find_iface st.env.device name <> None then Some name else None
          | _ -> None);
      perf =
        (fun () ->
          (* per pipe, from the interface the pipe resolves over; a pipe
             whose interface has not resolved yet reports zeros *)
          List.map
            (fun ps ->
              let c =
                match
                  Option.bind (under_iface st ps) (Netsim.Device.find_iface st.env.device)
                with
                | Some i -> fun n -> Netsim.Counters.get i.Netsim.Device.if_counters n
                | None -> fun _ -> 0
              in
              ( ps.spec.Primitive.pipe_id,
                [
                  ("up_frames", c "rx_packets");
                  ("up_bytes", c "rx_bytes");
                  ("down_frames", c "tx_packets");
                  ("down_bytes", c "tx_bytes");
                  ("drop:rx_errors", c "rx_errors");
                  ("drop:policer", c "policer_drops");
                ] ))
            st.pipes);
      actual =
        (fun () ->
          List.map
            (fun ps ->
              ( "pipe:" ^ ps.spec.Primitive.pipe_id,
                Printf.sprintf "role=%s peer-addr=%s"
                  (match ps.role with `Top -> "top" | `Bottom -> "bottom")
                  (Option.value ~default:"?" ps.peer_addr) ))
            st.pipes
          @ List.map (fun (r, cmds) ->
                (Fmt.str "switch[%a]" Primitive.pp_rule r, String.concat " ; " cmds))
              st.applied
          @ List.map (fun r -> (Fmt.str "pending[%a]" Primitive.pp_rule r, "waiting")) st.pending
          @ [ ("ip_forward", string_of_bool st.env.device.Netsim.Device.ip_forward) ]);
      poll = poll st;
      self_test =
        (fun ~against ~reply ->
          match against with
          | None -> (
              (* Data-plane self test (§II-D.2): ping the first resolved pipe
                 peer and report asynchronously. *)
              match
                List.find_map
                  (fun p ->
                    match (p.peer_addr, pipe_addr st p) with
                    | Some peer, Some mine -> Some (mine, peer)
                    | _ -> None)
                  st.pipes
              with
              | Some (src, dst) -> probe_ping st ~src ~dst ~reply
              | None -> reply ~ok:true ~detail:"no peers to test")
          | Some target ->
              (* End-to-end probe: resolve the target module's address via
                 listFieldsAndValues, then ping it through the data plane. *)
              st.probes <- (target, reply) :: st.probes;
              st.env.convey ~src:st.mref ~dst:target
                (Peer_msg.Lfv_request { purpose = "probe"; fields = [ "address" ]; own = [] }));
    }
  in
  let change_address ~iface old_new new_addr =
    let dev = st.env.device in
    (match Netsim.Device.find_iface dev iface with
    | Some i -> (
        match i.Netsim.Device.if_addrs with
        | (old, p) :: rest when Packet.Ipv4_addr.to_string old = old_new ->
            i.Netsim.Device.if_addrs <- (Packet.Ipv4_addr.of_string new_addr, p) :: rest
        | _ -> ())
    | None -> ());
    (* fire the trigger so the NM can update dependent state (§II-E) *)
    st.env.notify_nm (Wire.Trigger { src = st.mref; field = "address"; value = new_addr })
  in
  (impl, { change_address; state = st })
