(* Module-to-module coordination payloads, relayed by the NM through
   conveyMessage (CONMan §II-D.1). These are opaque to the NM: it forwards
   them without interpreting protocol-specific content. *)

type t =
  (* GRE endpoints agreeing on keys, sequence numbers and checksums
     (figure 3). The initiator proposes; [ikey]/[okey] are from the
     initiator's perspective. *)
  | Gre_params of { pipe : string; ikey : int32; okey : int32; use_seq : bool; use_csum : bool }
  | Gre_params_ack of { pipe : string }
  (* listFieldsAndValues (§II-E): the requester includes its own values so a
     single exchange teaches both sides. [purpose] disambiguates exchanges
     when the same two modules coordinate over several pipes (e.g. on a
     two-router path the tunnel endpoints are also next-hop neighbours). *)
  | Lfv_request of { purpose : string; fields : string list; own : (string * string) list }
  | Lfv_reply of { purpose : string; fields : (string * string) list }
  (* MPLS downstream label allocation: "use [label] when sending to me for
     this LSP"; [nexthop] piggybacks the allocator's interface address. *)
  | Mpls_label_bind of { pipe : string; label : int; nexthop : string }
  (* VLAN id agreement along a switch chain. *)
  | Vlan_vid_bind of { pipe : string; vid : int }
  | Vlan_vid_ack of { pipe : string }

let to_sexp =
  let a = Sexp.atom in
  function
  | Gre_params { pipe; ikey; okey; use_seq; use_csum } ->
      Sexp.List
        [
          a "gre-params"; a pipe;
          a (Int32.to_string ikey);
          a (Int32.to_string okey);
          Sexp.of_bool use_seq;
          Sexp.of_bool use_csum;
        ]
  | Gre_params_ack { pipe } -> Sexp.List [ a "gre-params-ack"; a pipe ]
  | Lfv_request { purpose; fields; own } ->
      Sexp.List
        [
          a "lfv-request";
          a purpose;
          Sexp.List (List.map a fields);
          Sexp.List (List.map (Sexp.of_pair a a) own);
        ]
  | Lfv_reply { purpose; fields } ->
      Sexp.List [ a "lfv-reply"; a purpose; Sexp.List (List.map (Sexp.of_pair a a) fields) ]
  | Mpls_label_bind { pipe; label; nexthop } ->
      Sexp.List [ a "mpls-label-bind"; a pipe; Sexp.of_int label; a nexthop ]
  | Vlan_vid_bind { pipe; vid } -> Sexp.List [ a "vlan-vid-bind"; a pipe; Sexp.of_int vid ]
  | Vlan_vid_ack { pipe } -> Sexp.List [ a "vlan-vid-ack"; a pipe ]

let of_sexp =
  let s = Sexp.to_atom in
  (* Like every wire codec, parsing must be total up to [Sexp.Parse_error]:
     a corrupted key atom may not escape as a bare [Failure]. *)
  let int32 sexp =
    match Int32.of_string_opt (s sexp) with
    | Some v -> v
    | None -> raise (Sexp.Parse_error "int32")
  in
  function
  | Sexp.List [ Sexp.Atom "gre-params"; pipe; ikey; okey; seq; csum ] ->
      Gre_params
        {
          pipe = s pipe;
          ikey = int32 ikey;
          okey = int32 okey;
          use_seq = Sexp.to_bool seq;
          use_csum = Sexp.to_bool csum;
        }
  | Sexp.List [ Sexp.Atom "gre-params-ack"; pipe ] -> Gre_params_ack { pipe = s pipe }
  | Sexp.List [ Sexp.Atom "lfv-request"; purpose; Sexp.List fields; Sexp.List own ] ->
      Lfv_request
        {
          purpose = s purpose;
          fields = List.map s fields;
          own = List.map (Sexp.to_pair s s) own;
        }
  | Sexp.List [ Sexp.Atom "lfv-reply"; purpose; Sexp.List fields ] ->
      Lfv_reply { purpose = s purpose; fields = List.map (Sexp.to_pair s s) fields }
  | Sexp.List [ Sexp.Atom "mpls-label-bind"; pipe; label; nexthop ] ->
      Mpls_label_bind { pipe = s pipe; label = Sexp.to_int label; nexthop = s nexthop }
  | Sexp.List [ Sexp.Atom "vlan-vid-bind"; pipe; vid ] ->
      Vlan_vid_bind { pipe = s pipe; vid = Sexp.to_int vid }
  | Sexp.List [ Sexp.Atom "vlan-vid-ack"; pipe ] -> Vlan_vid_ack { pipe = s pipe }
  | _ -> raise (Sexp.Parse_error "peer_msg")

let equal a b = to_sexp a = to_sexp b
let pp ppf t = Sexp.pp ppf (to_sexp t)
