(* Sexp codec for the trace context and spans (lib/obs is below Sexp in
   the dependency order, so the codec lives here). The context rides on
   Wire frames via [Wire.Traced]; the span codec is used to export whole
   traces (CLI, violation reports) in a replayable form. *)

let ctx_to_sexp (c : Obs.Trace.ctx) =
  Sexp.List [ Sexp.of_int c.Obs.Trace.goal; Sexp.of_int c.Obs.Trace.span; Sexp.of_int c.Obs.Trace.parent ]

let ctx_of_sexp = function
  | Sexp.List [ goal; span; parent ] ->
      { Obs.Trace.goal = Sexp.to_int goal; span = Sexp.to_int span; parent = Sexp.to_int parent }
  | _ -> raise (Sexp.Parse_error "trace ctx")

let span_to_sexp (s : Obs.Trace.span) =
  let a = Sexp.atom in
  Sexp.List
    [
      Sexp.of_int s.Obs.Trace.s_goal;
      Sexp.of_int s.Obs.Trace.s_id;
      Sexp.of_int s.Obs.Trace.s_parent;
      a s.Obs.Trace.s_name;
      a s.Obs.Trace.s_station;
      Sexp.of_int s.Obs.Trace.s_start;
      Sexp.of_int s.Obs.Trace.s_end;
      a s.Obs.Trace.s_status;
      Sexp.List
        (List.map (fun (tick, what) -> Sexp.List [ Sexp.of_int tick; a what ]) s.Obs.Trace.s_events);
    ]

let span_of_sexp = function
  | Sexp.List [ goal; id; parent; name; station; start; end_; status; Sexp.List events ] ->
      {
        Obs.Trace.s_goal = Sexp.to_int goal;
        s_id = Sexp.to_int id;
        s_parent = Sexp.to_int parent;
        s_name = Sexp.to_atom name;
        s_station = Sexp.to_atom station;
        s_start = Sexp.to_int start;
        s_end = Sexp.to_int end_;
        s_status = Sexp.to_atom status;
        s_events =
          List.map
            (function
              | Sexp.List [ tick; what ] -> (Sexp.to_int tick, Sexp.to_atom what)
              | _ -> raise (Sexp.Parse_error "span event"))
            events;
      }
  | _ -> raise (Sexp.Parse_error "span")

let span_to_string s = Sexp.to_string (span_to_sexp s)

let span_of_string str =
  try span_of_sexp (Sexp.of_string str) with
  | Sexp.Parse_error _ as e -> raise e
  | _ -> raise (Sexp.Parse_error "undecodable span")
