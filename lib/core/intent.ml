(* Desired-state intents and their write-ahead journal.

   Every state-changing NM operation (achieve, achieve_l2, assign_address,
   enforce_rate) records an intent *before* configuring anything, so the
   desired state of the network survives an NM crash: a restarted NM replays
   the journal, rebuilds its intent set and re-converges. The journal is a
   plain sequence of sexp entries — Begin (the intent exists), Commit (its
   configuration was applied successfully at least once) and Retire (it was
   torn down) — so replay is a trivial left fold and duplicated Commits are
   harmless. Everything else on an intent (script, health, repair counters)
   is runtime state rebuilt by the monitor loop. *)

type spec =
  | Connect of Path_finder.goal
  | Connect_l2 of { scope : string list; from_eth : Ids.t; to_eth : Ids.t }
  | Address of { target : Ids.t; addr : string; plen : int }
  | Rate of { owner : Ids.t; pipe_id : string; rate_kbps : int }

type status = Pending | Active | Degraded | Failed | Retired

type t = {
  id : int;
  spec : spec;
  mutable status : status;
  mutable script : Script_gen.script option; (* the configuration realising it *)
  mutable expected : (string * string list) list;
      (* per-device structural state keys snapshotted when last healthy —
         the baseline the monitor's drift check compares show_actual to *)
  mutable tried : string list; (* path signatures tried since last healthy *)
  mutable journal_sig : string option;
      (* last path signature journalled by a Bind entry. After a crash the
         script itself is gone; this lets the recovered NM regenerate the
         dead incarnation's script and back its datapath state out before
         re-achieving, instead of leaking it. *)
  mutable repairs : int; (* successful re-achievements *)
  mutable repair_attempts : int; (* consecutive attempts since last healthy *)
  mutable probe_failures : int;
  mutable last_error : string option;
}

let make ~id spec =
  {
    id;
    spec;
    status = Pending;
    script = None;
    expected = [];
    tried = [];
    journal_sig = None;
    repairs = 0;
    repair_attempts = 0;
    probe_failures = 0;
    last_error = None;
  }

let note_error t e = t.last_error <- Some e
let spec_equal (a : spec) (b : spec) = a = b

let kind t =
  match t.spec with
  | Connect _ -> "connect"
  | Connect_l2 _ -> "connect-l2"
  | Address _ -> "address"
  | Rate _ -> "rate"

let status_to_string = function
  | Pending -> "pending"
  | Active -> "active"
  | Degraded -> "degraded"
  | Failed -> "failed"
  | Retired -> "retired"

let pp ppf t =
  Fmt.pf ppf "intent-%d %-10s %-8s repairs=%d%a" t.id (kind t) (status_to_string t.status)
    t.repairs
    Fmt.(option (fun ppf e -> pf ppf " last-error=%S" e))
    t.last_error

(* --- sexp codec --------------------------------------------------------------- *)

let goal_to_sexp (g : Path_finder.goal) =
  Sexp.list
    [
      Sexp.of_mref g.Path_finder.g_from;
      Sexp.of_mref g.Path_finder.g_to;
      Sexp.atom g.Path_finder.g_customer;
      Sexp.atom g.Path_finder.g_src_domain;
      Sexp.atom g.Path_finder.g_dst_domain;
      Sexp.atom g.Path_finder.g_src_site;
      Sexp.atom g.Path_finder.g_dst_site;
      Sexp.list (List.map Sexp.atom g.Path_finder.g_tradeoffs);
      Sexp.list (List.map Sexp.atom g.Path_finder.g_scope);
    ]

let goal_of_sexp s =
  match Sexp.to_list s with
  | [ from_; to_; customer; src_dom; dst_dom; src_site; dst_site; tradeoffs; scope ] ->
      {
        Path_finder.g_from = Sexp.to_mref from_;
        g_to = Sexp.to_mref to_;
        g_customer = Sexp.to_atom customer;
        g_src_domain = Sexp.to_atom src_dom;
        g_dst_domain = Sexp.to_atom dst_dom;
        g_src_site = Sexp.to_atom src_site;
        g_dst_site = Sexp.to_atom dst_site;
        g_tradeoffs = List.map Sexp.to_atom (Sexp.to_list tradeoffs);
        g_scope = List.map Sexp.to_atom (Sexp.to_list scope);
      }
  | _ -> raise (Sexp.Parse_error "intent goal")

let spec_to_sexp = function
  | Connect g -> Sexp.list [ Sexp.atom "connect"; goal_to_sexp g ]
  | Connect_l2 { scope; from_eth; to_eth } ->
      Sexp.list
        [
          Sexp.atom "connect-l2";
          Sexp.list (List.map Sexp.atom scope);
          Sexp.of_mref from_eth;
          Sexp.of_mref to_eth;
        ]
  | Address { target; addr; plen } ->
      Sexp.list [ Sexp.atom "address"; Sexp.of_mref target; Sexp.atom addr; Sexp.of_int plen ]
  | Rate { owner; pipe_id; rate_kbps } ->
      Sexp.list [ Sexp.atom "rate"; Sexp.of_mref owner; Sexp.atom pipe_id; Sexp.of_int rate_kbps ]

let spec_of_sexp s =
  match Sexp.to_list s with
  | [ Sexp.Atom "connect"; g ] -> Connect (goal_of_sexp g)
  | [ Sexp.Atom "connect-l2"; scope; from_eth; to_eth ] ->
      Connect_l2
        {
          scope = List.map Sexp.to_atom (Sexp.to_list scope);
          from_eth = Sexp.to_mref from_eth;
          to_eth = Sexp.to_mref to_eth;
        }
  | [ Sexp.Atom "address"; target; addr; plen ] ->
      Address { target = Sexp.to_mref target; addr = Sexp.to_atom addr; plen = Sexp.to_int plen }
  | [ Sexp.Atom "rate"; owner; pipe_id; rate_kbps ] ->
      Rate
        {
          owner = Sexp.to_mref owner;
          pipe_id = Sexp.to_atom pipe_id;
          rate_kbps = Sexp.to_int rate_kbps;
        }
  | _ -> raise (Sexp.Parse_error "intent spec")

(* --- journal ------------------------------------------------------------------- *)

type entry = Begin of int * spec | Commit of int | Retire of int | Bind of int * string

let entry_to_sexp = function
  | Begin (id, spec) -> Sexp.list [ Sexp.atom "begin"; Sexp.of_int id; spec_to_sexp spec ]
  | Commit id -> Sexp.list [ Sexp.atom "commit"; Sexp.of_int id ]
  | Retire id -> Sexp.list [ Sexp.atom "retire"; Sexp.of_int id ]
  | Bind (id, s) -> Sexp.list [ Sexp.atom "bind"; Sexp.of_int id; Sexp.atom s ]

let entry_of_sexp s =
  match Sexp.to_list s with
  | [ Sexp.Atom "begin"; id; spec ] -> Begin (Sexp.to_int id, spec_of_sexp spec)
  | [ Sexp.Atom "commit"; id ] -> Commit (Sexp.to_int id)
  | [ Sexp.Atom "retire"; id ] -> Retire (Sexp.to_int id)
  | [ Sexp.Atom "bind"; id; sg ] -> Bind (Sexp.to_int id, Sexp.to_atom sg)
  | _ -> raise (Sexp.Parse_error "intent journal entry")

type journal = {
  mutable log : entry list; (* newest first *)
  mutable sinks : (entry -> unit) list; (* durability hooks *)
}

let journal () = { log = []; sinks = [] }

let append j e =
  j.log <- e :: j.log;
  List.iter (fun sink -> sink e) j.sinks

let on_append j sink = j.sinks <- sink :: j.sinks
let entries j = List.rev j.log

let journal_to_string j =
  String.concat "\n" (List.map (fun e -> Sexp.to_string (entry_to_sexp e)) (entries j))

let journal_of_string s =
  let j = journal () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then j.log <- entry_of_sexp (Sexp.of_string line) :: j.log);
  j

(* Rebuilds the live intent set: Begin creates a Pending intent, Commit
   promotes it to Active (it was configured successfully at least once),
   Retire drops it. Returned in id order. *)
let replay j =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (function
      | Begin (id, spec) ->
          if not (Hashtbl.mem tbl id) then begin
            Hashtbl.add tbl id (make ~id spec);
            order := id :: !order
          end
      | Commit id -> (
          match Hashtbl.find_opt tbl id with Some i -> i.status <- Active | None -> ())
      | Retire id -> (
          match Hashtbl.find_opt tbl id with Some i -> i.status <- Retired | None -> ())
      | Bind (id, sg) -> (
          match Hashtbl.find_opt tbl id with
          | Some i -> i.journal_sig <- Some sg
          | None -> ()))
    (entries j);
  List.rev !order
  |> List.filter_map (fun id ->
         match Hashtbl.find tbl id with i when i.status = Retired -> None | i -> Some i)

let next_id j =
  List.fold_left
    (fun acc -> function Begin (id, _) -> max acc (id + 1) | _ -> acc)
    1 (entries j)
