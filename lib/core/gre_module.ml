(* The GRE protocol module (§III-B, Table III). Wraps the kernel GRE
   implementation: the NM only creates pipes and a switch rule; the module
   negotiates keys, sequencing and checksums with its peer GRE module over
   the management channel and then emits the same `ip tunnel add` command a
   human would have written. *)

open Module_impl

type tunnel_params = {
  mutable ikey : int32 option; (* key we expect on ingress *)
  mutable okey : int32 option;
  mutable use_seq : bool;
  mutable use_csum : bool;
  mutable params_ready : bool;
}

type pipe_state = { spec : Primitive.pipe_spec; role : role; params : tunnel_params }

type state = {
  env : env;
  mref : Ids.t;
  mutable pipes : pipe_state list;
  mutable pending : Primitive.switch_rule list;
  mutable tunnels : (string * string) list; (* up-pipe id -> tunnel device name *)
  mutable next_key : int32;
  mutable early : (Ids.t * Peer_msg.t) list; (* peer msgs that raced our bundle *)
}

let find_pipe st pid = List.find_opt (fun p -> p.spec.Primitive.pipe_id = pid) st.pipes

let my_peer ps =
  match ps.role with `Top -> ps.spec.Primitive.peer_top | `Bottom -> ps.spec.Primitive.peer_bottom

(* Negotiation is keyed to the up pipe (the tunnel's payload side); both of
   a GRE module's pipes may peer with the same remote GRE module, so the
   match is restricted to [`Bottom] roles. *)
let find_pipe_by_peer st peer =
  List.find_opt
    (fun p ->
      p.role = `Bottom
      && match my_peer p with Some m -> Ids.equal m peer | None -> false)
    st.pipes

(* Trade-off names on the up pipe decide the optional protocol features,
   without the NM ever knowing about sequence numbers or checksums. *)
let tradeoff_seq spec = List.mem "in-order-delivery" spec.Primitive.tradeoffs
let tradeoff_csum spec = List.mem "low-error-rate" spec.Primitive.tradeoffs

let negotiate st ps =
  match my_peer ps with
  | Some peer when ps.role = `Bottom && (not ps.params.params_ready) && initiates st.mref peer ->
      (* allocate the keys; the 1001/2001 scheme echoes the paper's example *)
      if ps.params.ikey = None then begin
        ps.params.ikey <- Some st.next_key;
        ps.params.okey <- Some (Int32.add st.next_key 1000l);
        st.next_key <- Int32.add st.next_key 2000l;
        ps.params.use_seq <- tradeoff_seq ps.spec;
        ps.params.use_csum <- tradeoff_csum ps.spec;
        st.env.convey ~src:st.mref ~dst:peer
          (Peer_msg.Gre_params
             {
               pipe = ps.spec.Primitive.pipe_id;
               ikey = Option.get ps.params.ikey;
               okey = Option.get ps.params.okey;
               use_seq = ps.params.use_seq;
               use_csum = ps.params.use_csum;
             })
      end
  | _ -> ()

(* The switch rule (up pipe P1 <-> down pipe P2) is applicable once the peer
   negotiation finished and the IP module below has resolved both tunnel
   endpoint addresses. *)
let try_rule st rule =
  match rule with
  | Primitive.Bidi (x, y) -> (
      match (find_pipe st x, find_pipe st y) with
      | Some px, Some py ->
          let up, down = if px.role = `Bottom then (px, py) else (py, px) in
          if not up.params.params_ready then false
          else
            let below = down.spec.Primitive.bottom in
            let local = st.env.local_query below "address" in
            let remote =
              st.env.local_query below ("peer-addr:" ^ down.spec.Primitive.pipe_id)
            in
            (match (local, remote) with
            | Some local, Some remote ->
                let name =
                  Printf.sprintf "gre-%s-%s" up.spec.Primitive.pipe_id
                    down.spec.Primitive.pipe_id
                in
                let p = up.params in
                if Netsim.Device.find_iface st.env.device name <> None then
                  run_cmdf st.env.device "ip tunnel del %s" name;
                run_cmd st.env.device "insmod /lib/modules/2.6.14-2/ip_gre.ko";
                run_cmdf st.env.device "ip tunnel add name %s mode gre remote %s local %s%s%s%s%s"
                  name remote local
                  (match p.ikey with Some k -> Printf.sprintf " ikey %ld" k | None -> "")
                  (match p.okey with Some k -> Printf.sprintf " okey %ld" k | None -> "")
                  (if p.use_csum then " icsum ocsum" else "")
                  (if p.use_seq then " iseq oseq" else "");
                st.tunnels <-
                  (up.spec.Primitive.pipe_id, name)
                  :: (down.spec.Primitive.pipe_id, name)
                  :: List.filter (fun (k, _) -> k <> up.spec.Primitive.pipe_id) st.tunnels;
                true
            | _ -> false)
      | _ -> false)
  | Primitive.Directed _ -> false

let poll st () =
  List.iter (negotiate st) st.pipes;
  let before = List.length st.pending in
  st.pending <- List.filter (fun r -> not (try_rule st r)) st.pending;
  if List.length st.pending <> before then st.env.progress ()

let on_peer st ~src msg =
  match msg with
  | Peer_msg.Gre_params { pipe = _; ikey; okey; use_seq; use_csum } -> (
      match find_pipe_by_peer st src with
      | None -> st.early <- (src, msg) :: st.early
      | Some ps ->
          (* mirror the initiator's view: their okey is our ikey *)
          ps.params.ikey <- Some okey;
          ps.params.okey <- Some ikey;
          ps.params.use_seq <- use_seq;
          ps.params.use_csum <- use_csum;
          ps.params.params_ready <- true;
          st.env.convey ~src:st.mref ~dst:src
            (Peer_msg.Gre_params_ack { pipe = ps.spec.Primitive.pipe_id });
          poll st ())
  | Peer_msg.Gre_params_ack _ -> (
      match find_pipe_by_peer st src with
      | Some ps ->
          ps.params.params_ready <- true;
          poll st ()
      | None -> ())
  | Peer_msg.Lfv_request _ | Peer_msg.Lfv_reply _ | Peer_msg.Mpls_label_bind _
  | Peer_msg.Vlan_vid_bind _ | Peer_msg.Vlan_vid_ack _ ->
      ()

(* Table III, generated from the implementation. *)
let abstraction () =
  {
    Abstraction.default with
    name = "GRE";
    up =
      Some
        {
          Abstraction.connectable = [ "IP" ];
          dependencies = [ "performance trade-offs to be specified" ];
        };
    down = Some { Abstraction.connectable = [ "IP" ]; dependencies = [] };
    peerable = [ "GRE" ];
    switch = [ Abstraction.Up_down; Abstraction.Down_up ];
    perf_reporting = [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes" ];
    perf_tradeoffs =
      [
        { Abstraction.gives = [ "in-order-delivery" ]; costs = [ "jitter"; "delay" ] };
        { Abstraction.gives = [ "low-error-rate" ]; costs = [ "loss-rate" ] };
      ];
  }

let make ~env ~mref () =
  let st =
    { env; mref; pipes = []; pending = []; tunnels = []; next_key = 1001l; early = [] }
  in
  {
    (no_op_module mref abstraction) with
    create_pipe =
      (fun spec role ->
        (match find_pipe st spec.Primitive.pipe_id with
        | Some old -> st.pipes <- List.filter (fun p -> p != old) st.pipes
        | None -> ());
        st.pipes <-
          {
            spec;
            role;
            params =
              { ikey = None; okey = None; use_seq = false; use_csum = false; params_ready = false };
          }
          :: st.pipes;
        (* replay peer messages that raced this bundle *)
        let replay, keep =
          List.partition (fun (src, _) -> find_pipe_by_peer st src <> None) st.early
        in
        st.early <- keep;
        List.iter (fun (src, m) -> on_peer st ~src m) replay;
        poll st ());
    delete_pipe =
      (fun pid ->
        (match List.assoc_opt pid st.tunnels with
        | Some name when Netsim.Device.find_iface st.env.device name <> None ->
            run_cmdf st.env.device "ip tunnel del %s" name
        | _ -> ());
        st.tunnels <- List.remove_assoc pid st.tunnels;
        st.pipes <- List.filter (fun p -> p.spec.Primitive.pipe_id <> pid) st.pipes);
    create_switch =
      (fun rule ->
        if not (List.mem rule st.pending) then st.pending <- st.pending @ [ rule ];
        poll st ());
    delete_switch = (fun rule -> st.pending <- List.filter (( <> ) rule) st.pending);
    on_peer = on_peer st;
    fields =
      (fun key ->
        match String.split_on_char ':' key with
        | [ "tundev"; pid ] -> List.assoc_opt pid st.tunnels
        | _ -> None);
    perf =
      (fun () ->
        (* up = decapsulated packets delivered upwards, down = packets
           encapsulated and pushed down towards the delivery protocol *)
        List.map
          (fun (pid, name) ->
            let c =
              match Netsim.Device.find_iface st.env.device name with
              | Some i -> fun n -> Netsim.Counters.get i.Netsim.Device.if_counters n
              | None -> fun _ -> 0
            in
            ( pid,
              [
                ("up_frames", c "rx_packets");
                ("up_bytes", c "rx_bytes");
                ("down_frames", c "tx_packets");
                ("down_bytes", c "tx_bytes");
                ("drop:rx_errors", c "rx_errors");
              ] ))
          st.tunnels);
    actual =
      (fun () ->
        List.concat_map
          (fun (pid, name) ->
            match Netsim.Device.find_iface st.env.device name with
            | Some i ->
                [
                  ( "tunnel:" ^ pid,
                    Printf.sprintf "%s rx=%d tx=%d" name
                      (Netsim.Counters.get i.Netsim.Device.if_counters "rx_packets")
                      (Netsim.Counters.get i.Netsim.Device.if_counters "tx_packets") );
                ]
            | None -> [])
          st.tunnels
        @ List.map (fun r -> (Fmt.str "pending[%a]" Primitive.pp_rule r, "waiting")) st.pending);
    poll = poll st;
    self_test =
      (fun ~against:_ ~reply ->
        (* Check local tunnel state consistency: every applied tunnel device
           must still exist and be up. *)
        let missing =
          List.filter
            (fun (_, name) ->
              match Netsim.Device.find_iface st.env.device name with
              | Some i -> not i.Netsim.Device.if_up
              | None -> true)
            st.tunnels
        in
        if missing = [] then reply ~ok:true ~detail:"tunnel state consistent"
        else reply ~ok:false ~detail:"tunnel device missing or down");
  }
