(* The reconciliation loop (§V applied continuously): a periodic task that
   compares what each intent asked for with what the network actually does,
   and repairs the difference.

   Each tick advances the simulation one interval (with Net.run_until, so
   scheduled data-plane faults fire where they were scheduled instead of
   being fast-forwarded through), then walks the live intents:

     probe_end_to_end  — is the data plane carrying traffic edge to edge?
     drift check       — does show_actual still contain the structural
                         state snapshotted when the intent was last
                         healthy (pipes, switch rules, tunnels)?
     repair            — drift with a healthy path is resynced by
                         re-sending the script (idempotent); a dead path
                         is re-achieved over the next-best path, avoiding
                         devices diagnose marks as failing and backing the
                         stale script out first.

   Repairs are bounded: after [max_repair_attempts] consecutive failures
   the intent is escalated to the NM's error report and left for an
   operator (a later healthy probe, or a manual reconfigure, revives it).
   The monitor drives the NM from outside the event loop like every other
   NM helper — [run ~ticks] is the experiment driver. *)

type config = {
  interval_ns : int64; (* virtual time between reconciliation ticks *)
  probe_slack_ns : int64; (* extra horizon for probes/repairs within a tick *)
  max_repair_attempts : int;
}

let default_config =
  { interval_ns = 500_000_000L; probe_slack_ns = 100_000_000L; max_repair_attempts = 4 }

type event = { ev_time : int64; ev_intent : int; ev_what : string }

type t = {
  nm : Nm.t;
  cfg : config;
  telemetry : Telemetry.t option;
  mutable ticks : int;
  mutable repairs : int;
  mutable resyncs : int;
  mutable escalations : int;
  (* Bounded drop-oldest event ring (mirrors Netsim.Trace.set_limit): long
     chaos soaks must not grow memory without bound. *)
  events : event Queue.t;
  mutable event_limit : int;
  mutable dropped_events : int;
}

let default_event_limit = 10_000

let create ?(config = default_config) ?telemetry nm =
  {
    nm;
    cfg = config;
    telemetry;
    ticks = 0;
    repairs = 0;
    resyncs = 0;
    escalations = 0;
    events = Queue.create ();
    event_limit = default_event_limit;
    dropped_events = 0;
  }

let set_event_limit t n = t.event_limit <- max 1 n
let event_limit t = t.event_limit
let dropped_events t = t.dropped_events

let log t (intent : Intent.t) what =
  let now = Netsim.Event_queue.now (Netsim.Net.eq (Nm.net t.nm)) in
  Queue.push { ev_time = now; ev_intent = intent.Intent.id; ev_what = what } t.events;
  while Queue.length t.events > t.event_limit do
    ignore (Queue.pop t.events);
    t.dropped_events <- t.dropped_events + 1
  done

(* --- health checks ------------------------------------------------------------ *)

let probe t (intent : Intent.t) =
  match intent.Intent.script with
  | Some s when s.Script_gen.path.Path_finder.visits <> [] ->
      Nm.probe_end_to_end t.nm s.Script_gen.path
  | _ -> (true, "no end-to-end probe for this intent")

(* The structural part of a show_actual report: state keys, qualified by
   module. Values are excluded (they carry traffic counters), as are
   pending[..] entries (transient negotiation state). *)
let structural_keys state =
  List.concat_map
    (fun ((m : Ids.t), kvs) ->
      List.filter_map
        (fun (k, _) ->
          if String.length k >= 8 && String.sub k 0 8 = "pending[" then None
          else Some (Ids.qualified m ^ "/" ^ k))
        kvs)
    state
  |> List.sort_uniq compare

(* Re-baselines the drift check: records, per device the script touches,
   the structural keys present now. Called when the intent (re)converges. *)
let snapshot t (intent : Intent.t) =
  match intent.Intent.script with
  | None -> intent.Intent.expected <- []
  | Some s ->
      intent.Intent.expected <-
        List.filter_map
          (fun (dev, prims) ->
            if prims = [] then None
            else
              match Nm.show_actual t.nm dev with
              | Some state -> Some (dev, structural_keys state)
              | None -> None)
          s.Script_gen.per_device

(* Devices whose show_actual lost structural keys the baseline had. Extra
   keys are fine (other intents add state); missing ones are drift. *)
let drift t (intent : Intent.t) =
  List.filter_map
    (fun (dev, keys) ->
      match Nm.show_actual t.nm dev with
      | None -> None (* no answer is unreachability, not drift *)
      | Some state ->
          let present = structural_keys state in
          let missing = List.filter (fun k -> not (List.mem k present)) keys in
          if missing = [] then None else Some (dev, missing))
    intent.Intent.expected

(* --- repair ------------------------------------------------------------------- *)

let mark_healthy t (intent : Intent.t) =
  intent.Intent.status <- Intent.Active;
  intent.Intent.repair_attempts <- 0;
  intent.Intent.tried <- [];
  if intent.Intent.expected = [] then snapshot t intent

(* Failing modules along the intent's current path, excluding the goal's
   edge devices (which every candidate path must visit). *)
let diagnosed_avoid t (intent : Intent.t) =
  match (intent.Intent.spec, intent.Intent.script) with
  | Intent.Connect goal, Some s when s.Script_gen.path.Path_finder.visits <> [] ->
      let ends = [ goal.Path_finder.g_from.Ids.dev; goal.Path_finder.g_to.Ids.dev ] in
      Nm.diagnose t.nm s.Script_gen.path
      |> List.filter_map (fun ((m : Ids.t), ok, _) -> if ok then None else Some m.Ids.dev)
      |> List.sort_uniq compare
      |> List.filter (fun d -> not (List.mem d ends))
  | _ -> []

let attempt_repair t (intent : Intent.t) detail =
  if intent.Intent.repair_attempts >= t.cfg.max_repair_attempts then begin
    if intent.Intent.status <> Intent.Failed then begin
      t.escalations <- t.escalations + 1;
      Nm.escalate t.nm intent
        (Printf.sprintf "unrepairable after %d attempts: %s" intent.Intent.repair_attempts detail);
      log t intent "escalated: repair attempts exhausted"
    end
  end
  else begin
    intent.Intent.repair_attempts <- intent.Intent.repair_attempts + 1;
    intent.Intent.status <- Intent.Degraded;
    let current =
      match intent.Intent.script with
      | Some s when s.Script_gen.path.Path_finder.visits <> [] ->
          [ Path_finder.signature s.Script_gen.path ]
      | _ -> []
    in
    let avoid = diagnosed_avoid t intent in
    let exclude = List.sort_uniq compare (current @ intent.Intent.tried) in
    intent.Intent.tried <- exclude;
    let result =
      match Nm.reconfigure ~exclude ~avoid t.nm intent with
      | Ok () -> Ok ()
      | Error _ when avoid <> [] ->
          (* diagnosis over-pruned (no candidate avoids those devices):
             fall back to signature exclusion alone *)
          Nm.reconfigure ~exclude t.nm intent
      | Error _ as e -> e
    in
    let current_sig () =
      match intent.Intent.script with
      | Some s when s.Script_gen.path.Path_finder.visits <> [] ->
          Some (Path_finder.signature s.Script_gen.path)
      | _ -> None
    in
    match result with
    | Error e -> log t intent ("repair attempt failed: " ^ e)
    | Ok () ->
        let ok, _ = probe t intent in
        if ok then begin
          intent.Intent.repairs <- intent.Intent.repairs + 1;
          t.repairs <- t.repairs + 1;
          mark_healthy t intent;
          intent.Intent.expected <- [];
          snapshot t intent;
          log t intent
            (Printf.sprintf "repaired over alternate path [%s]"
               (Option.value ~default:"?" (current_sig ())))
        end
        else begin
          (match current_sig () with
          | Some s -> intent.Intent.tried <- List.sort_uniq compare (s :: intent.Intent.tried)
          | None -> ());
          log t intent
            (Printf.sprintf "repair attempt did not restore connectivity [%s]"
               (Option.value ~default:"?" (current_sig ())))
        end
  end

(* With telemetry attached, scrape right after a failed probe — so the
   probe's own frames are the freshest delta in the store — and ask the
   localizer where on the path the traffic died. Returns the top-ranked
   diagnosis, if any. *)
let diagnose_failure t (intent : Intent.t) =
  match (t.telemetry, intent.Intent.script) with
  | Some tel, Some s when s.Script_gen.path.Path_finder.visits <> [] -> (
      Telemetry.scrape tel;
      match Telemetry.diagnose_path tel s.Script_gen.path with d :: _ -> Some d | [] -> None)
  | _ -> None

let reconcile t (intent : Intent.t) =
  match intent.Intent.status with
  | Intent.Retired -> ()
  | Intent.Failed ->
      if intent.Intent.script <> None then begin
        (* escalated with a bound script: a healthy probe revives it *)
        let ok, _ = probe t intent in
        if ok then begin
          mark_healthy t intent;
          log t intent "recovered without intervention"
        end
      end
      else begin
        (* escalated after its script was backed out (every reroute failed
           while the network was down): retry the achieve each tick so the
           intent self-revives once a path exists again, instead of waiting
           for an operator *)
        match Nm.reconfigure t.nm intent with
        | Ok () ->
            let ok, _ = probe t intent in
            if ok then begin
              mark_healthy t intent;
              log t intent "recovered: reconfigured after escalation"
            end
        | Error _ -> ()
      end
  | Intent.Pending -> (
      (* journalled but never realised (NM died mid-achieve, or no path at
         the time): keep trying to configure it *)
      match Nm.reconfigure t.nm intent with
      | Ok () ->
          let ok, _ = probe t intent in
          if ok then begin
            mark_healthy t intent;
            log t intent "configured from journal"
          end
      | Error e -> log t intent ("configuration failed: " ^ e))
  | Intent.Active | Intent.Degraded -> (
      if intent.Intent.script = None then (
        match Nm.reconfigure t.nm intent with
        | Ok () ->
            let ok, _ = probe t intent in
            if ok then begin
              mark_healthy t intent;
              log t intent "reconfigured"
            end
        | Error e -> log t intent ("reconfiguration failed: " ^ e))
      else
        let ok, detail = probe t intent in
        if ok then
          match drift t intent with
          | [] -> mark_healthy t intent
          | drifted ->
              t.resyncs <- t.resyncs + 1;
              Nm.resync_intent t.nm intent;
              (* resync may legitimately change negotiated state (labels,
                 vlan tags): re-baseline the drift check *)
              intent.Intent.expected <- [];
              snapshot t intent;
              log t intent
                (Printf.sprintf "drift on %s: resynced"
                   (String.concat ", " (List.map fst drifted)))
        else begin
          intent.Intent.probe_failures <- intent.Intent.probe_failures + 1;
          match diagnose_failure t intent with
          | Some { Diagnose.verdict = (Cut_link _ | Lossy_segment _ | Unreachable_agent _) as v; _ }
            ->
              (* the path itself is the problem: resyncing state onto it
                 cannot help, skip straight to re-achieving around it *)
              log t intent (Fmt.str "diagnosed %a: rerouting" Diagnose.pp_verdict v);
              attempt_repair t intent detail
          | Some { Diagnose.verdict = Misconfigured_module { dev; _ } as v; _ } ->
              (* one module's state drifted: re-sending the script is the
                 cheapest repair, reroute only if that fails *)
              log t intent (Fmt.str "diagnosed %a: resyncing %s" Diagnose.pp_verdict v dev);
              t.resyncs <- t.resyncs + 1;
              Nm.resync_intent t.nm intent;
              intent.Intent.expected <- [];
              let ok2, detail2 = probe t intent in
              if ok2 then begin
                snapshot t intent;
                mark_healthy t intent;
                log t intent "resync restored connectivity"
              end
              else attempt_repair t intent detail2
          | None -> (
              match drift t intent with
              | _ :: _ as drifted ->
                  (* state went missing on a live path: resync before rerouting *)
                  t.resyncs <- t.resyncs + 1;
                  Nm.resync_intent t.nm intent;
                  intent.Intent.expected <- [];
                  log t intent
                    (Printf.sprintf "drift on %s: resynced"
                       (String.concat ", " (List.map fst drifted)));
                  let ok2, detail2 = probe t intent in
                  if ok2 then mark_healthy t intent else attempt_repair t intent detail2
              | [] -> attempt_repair t intent detail)
        end)

(* --- driving ------------------------------------------------------------------ *)

let tick t =
  t.ticks <- t.ticks + 1;
  let net = Nm.net t.nm in
  let deadline = Int64.add (Netsim.Event_queue.now (Netsim.Net.eq net)) t.cfg.interval_ns in
  ignore (Netsim.Net.run_until net ~deadline);
  (* probes and repairs run inside a bounded horizon so later scheduled
     faults stay in the future *)
  Nm.set_horizon t.nm (Some (Int64.add deadline t.cfg.probe_slack_ns));
  Fun.protect
    ~finally:(fun () -> Nm.set_horizon t.nm None)
    (fun () ->
      (* re-issue requests the reliable transport abandoned (give-up during
         a drop burst or partition) — without this, a lost back-out deletion
         is never re-sent and stale state leaks on the device *)
      Nm.flush_inflight t.nm;
      (* keep the telemetry store's baselines warm so a post-failure
         scrape yields a clean delta *)
      Option.iter Telemetry.maybe_scrape t.telemetry;
      List.iter (reconcile t) (Nm.intents t.nm))

let run t ~ticks =
  for _ = 1 to ticks do
    tick t
  done

(* --- observation -------------------------------------------------------------- *)

let ticks t = t.ticks
let repairs t = t.repairs
let resyncs t = t.resyncs
let escalations t = t.escalations
let events t = List.rev (Queue.fold (fun acc e -> e :: acc) [] t.events)

let pp_event ppf e =
  Fmt.pf ppf "[%8.3fs] intent-%d %s"
    (Int64.to_float e.ev_time /. 1e9)
    e.ev_intent e.ev_what

let pp_health ppf t =
  Fmt.pf ppf "intent     kind        status    repairs  attempts  probe-failures@.";
  List.iter
    (fun (i : Intent.t) ->
      Fmt.pf ppf "intent-%-3d %-11s %-9s %7d %9d %15d%a@." i.Intent.id (Intent.kind i)
        (Intent.status_to_string i.Intent.status)
        i.Intent.repairs i.Intent.repair_attempts i.Intent.probe_failures
        Fmt.(option (fun ppf e -> pf ppf "  (%s)" e))
        i.Intent.last_error)
    (Nm.intents t.nm);
  Fmt.pf ppf "ticks=%d repairs=%d resyncs=%d escalations=%d@." t.ticks t.repairs t.resyncs
    t.escalations
