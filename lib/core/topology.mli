(** The NM's view of the network: physical connectivity learnt from Hello
    announcements, module abstractions harvested with showPotential, and
    the address-domain knowledge the NM holds itself (§III-C — the one
    protocol-specific thing the paper lets the NM keep). *)

type device_info = {
  di_id : string;
  mutable di_links : (string * string * string) list;
      (** (local port, peer device id, peer port) per Hello *)
  mutable di_modules : (Ids.t * Abstraction.t) list;
  mutable di_reachable : bool;
      (** false once the NM exhausts retries against the device; restored
          on a fresh Hello *)
}

type t = {
  mutable devices : device_info list;
  mutable module_domains : (Ids.t * string) list;
  mutable domain_prefixes : (string * string) list;
}

val create : unit -> t
val device : t -> string -> device_info option
val record_hello : t -> src:string -> (string * string * string) list -> unit
val record_potential : t -> src:string -> (Ids.t * Abstraction.t) list -> unit

val is_reachable : t -> string -> bool
(** Devices the NM has never heard of count as reachable. *)

val set_reachable : t -> string -> bool -> unit

val unreachable : t -> string list
(** Ids of every device currently marked unreachable. *)

val set_domains :
  t -> module_domains:(Ids.t * string) list -> domain_prefixes:(string * string) list -> unit
(** Installs the NM's address knowledge: which domain each IP module
    belongs to, and each domain's prefix. *)

val domain_of : t -> Ids.t -> string option
val prefix_of_domain : t -> string -> string option
val find_module : t -> Ids.t -> Abstraction.t option
val find_module_exn : t -> Ids.t -> Abstraction.t
val modules_of_device : t -> string -> (Ids.t * Abstraction.t) list
val all_modules : t -> (Ids.t * Abstraction.t) list

val pp_table4 : t Fmt.t
(** Renders the network map the way the paper's Table IV does. *)
