(* The interface every CONMan protocol module implements, and the
   environment its device's management agent provides to it.

   A protocol module is a wrapper around an existing protocol implementation
   (here: the netsim data plane, driven through the same device-level
   commands as the "today" scripts). It exposes the generic abstraction and
   translates the NM's primitives into low-level state, coordinating
   protocol-specific parameters with its peers via conveyMessage. *)

type env = {
  device : Netsim.Device.t;
  my_dev : string; (* device id *)
  (* conveyMessage: module-to-module communication relayed by the NM. *)
  convey : src:Ids.t -> dst:Ids.t -> Peer_msg.t -> unit;
  (* unsolicited module-to-NM messages (Completion, Trigger). *)
  notify_nm : Wire.t -> unit;
  (* intra-device listFieldsAndValues: query another local module. *)
  local_query : Ids.t -> string -> string option;
  (* NM knowledge shipped in the bundle annex (§III-C). *)
  domain_prefix : string -> string option;
  domains : unit -> (string * string) list;
  is_reporter : Ids.t -> bool;
  (* Ask the agent to re-poll all modules: deferred work may now be ready. *)
  progress : unit -> unit;
  schedule : delay_ns:int64 -> (unit -> unit) -> unit;
}

(* Our position on a pipe: [`Top] means the pipe hangs below us (it is our
   down pipe); [`Bottom] means it is our up pipe. *)
type role = [ `Top | `Bottom ]

type t = {
  mref : Ids.t;
  abstraction : unit -> Abstraction.t;
  create_pipe : Primitive.pipe_spec -> role -> unit;
  delete_pipe : string -> unit;
  create_switch : Primitive.switch_rule -> unit;
  delete_switch : Primitive.switch_rule -> unit;
  create_filter : drop_src:Ids.t -> drop_dst:Ids.t -> unit;
  delete_filter : drop_src:Ids.t -> drop_dst:Ids.t -> unit;
  create_perf : pipe_id:string -> rate_kbps:int -> unit;
  delete_perf : pipe_id:string -> unit;
  set_address : addr:string -> plen:int -> unit;
  on_peer : src:Ids.t -> Peer_msg.t -> unit;
  (* low-level field lookup backing listFieldsAndValues *)
  fields : string -> string option;
  actual : unit -> (string * string) list;
  (* showPerf: per-pipe monotonic counter snapshots (the performance aspect
     of the abstraction); keys must cover the advertised perf_reporting *)
  perf : unit -> (string * (string * int) list) list;
  (* retry deferred work (switch rules waiting on peer coordination) *)
  poll : unit -> unit;
  (* [against]: probe data-plane connectivity towards that module rather
     than the default local/peer checks (used by the NM's end-to-end
     fault localisation) *)
  self_test : against:Ids.t option -> reply:(ok:bool -> detail:string -> unit) -> unit;
}

let no_op_module mref abstraction =
  {
    mref;
    abstraction;
    create_pipe = (fun _ _ -> ());
    delete_pipe = ignore;
    create_switch = ignore;
    delete_switch = ignore;
    create_filter = (fun ~drop_src:_ ~drop_dst:_ -> ());
    delete_filter = (fun ~drop_src:_ ~drop_dst:_ -> ());
    create_perf = (fun ~pipe_id:_ ~rate_kbps:_ -> ());
    delete_perf = (fun ~pipe_id:_ -> ());
    set_address = (fun ~addr:_ ~plen:_ -> ());
    on_peer = (fun ~src:_ _ -> ());
    fields = (fun _ -> None);
    actual = (fun () -> []);
    perf = (fun () -> []);
    poll = ignore;
    self_test = (fun ~against:_ ~reply -> reply ~ok:true ~detail:"no-op");
  }

(* Deterministic initiator election between two peer modules. *)
let initiates (me : Ids.t) (peer : Ids.t) =
  compare (me.Ids.dev, me.Ids.mid) (peer.Ids.dev, peer.Ids.mid) < 0

(* Runs a device-level command line through the Linux CLI wrapper, the same
   interpreter the "today" scripts use. *)
let run_cmd device line =
  ignore (Devconf.Linux_cli.exec device (String.split_on_char ' ' line |> List.filter (( <> ) "")))

let run_cmdf device fmt = Fmt.kstr (run_cmd device) fmt
