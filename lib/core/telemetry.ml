(* The NM-side telemetry poller: scrapes showPerf across the managed scope
   on a period, feeds the Diagnose time-series store, and adapts configured
   paths into the hop/segment shape the protocol-agnostic localizer works
   on (using only the potential graph: ETH physical pipes and the modules
   the path visits). *)

type t = {
  nm : Nm.t;
  store : Diagnose.t;
  scope : string list;
  base_period_ns : int64;
  max_period_ns : int64;
  mutable period_ns : int64;
  mutable last_scrape : int64 option;
  mutable rounds : int;
  (* graceful degradation: when the admission layer reports telemetry
     sheds, the poller doubles its period instead of feeding the storm;
     once sheds stop it decays back towards the base period. *)
  mutable shed_probe : (unit -> int) option;
  mutable last_shed : int;
  mutable backoffs : int;
}

let create ?window ?(period_ns = 250_000_000L) ~scope nm =
  {
    nm;
    store = Diagnose.create ?window ();
    scope;
    base_period_ns = period_ns;
    max_period_ns = Int64.mul period_ns 8L;
    period_ns;
    last_scrape = None;
    rounds = 0;
    shed_probe = None;
    last_shed = 0;
    backoffs = 0;
  }

let store t = t.store
let rounds t = t.rounds
let period_ns t = t.period_ns
let backoffs t = t.backoffs
let set_shed_probe t probe = t.shed_probe <- Some probe

(* Adapt the scrape period to shed feedback: any telemetry shed since the
   last look doubles the period (capped), a quiet interval halves it back
   towards the base. Called on every [maybe_scrape], so the decay also
   runs while the period gate is closed. *)
let adapt t =
  match t.shed_probe with
  | None -> ()
  | Some probe ->
      let shed = probe () in
      if shed > t.last_shed then begin
        let doubled = Int64.mul t.period_ns 2L in
        if doubled <= t.max_period_ns then begin
          t.period_ns <- doubled;
          t.backoffs <- t.backoffs + 1
        end
      end
      else if t.period_ns > t.base_period_ns then begin
        let halved = Int64.div t.period_ns 2L in
        t.period_ns <- (if halved < t.base_period_ns then t.base_period_ns else halved)
      end;
      t.last_shed <- shed

let now t = Netsim.Event_queue.now (Netsim.Net.eq (Nm.net t.nm))

let scrape t =
  t.rounds <- t.rounds + 1;
  let at_ns = now t in
  t.last_scrape <- Some at_ns;
  List.iter
    (fun dev ->
      match Nm.show_perf t.nm dev with
      | None -> Diagnose.note_unreachable t.store dev
      | Some reports ->
          Diagnose.note_reachable t.store dev;
          List.iter
            (fun (m, pipes) ->
              List.iter
                (fun (pipe, counters) ->
                  Diagnose.observe t.store ~at_ns ~device:dev ~module_id:(Ids.qualified m) ~pipe
                    counters)
                pipes)
            reports)
    t.scope

let maybe_scrape t =
  adapt t;
  match t.last_scrape with
  | None -> scrape t
  | Some last -> if Int64.sub (now t) last >= t.period_ns then scrape t

let anomalies t = Diagnose.anomalies t.store

(* --- path adaptation --------------------------------------------------- *)

(* Devices in path order (first visit order). *)
let ordered_devices (path : Path_finder.path) =
  List.rev
    (List.fold_left
       (fun acc (v : Path_finder.visit) ->
         let d = v.Path_finder.v_mod.Ids.dev in
         if List.mem d acc then acc else d :: acc)
       [] path.Path_finder.visits)

(* The ETH module (and physical pipe) of [dev] facing [peer], from the
   harvested potential. *)
let eth_facing topo dev peer =
  List.find_map
    (fun (m, (a : Abstraction.t)) ->
      if a.Abstraction.name = "ETH" then
        List.find_map
          (fun (p : Abstraction.physical_pipe) ->
            if p.Abstraction.peer_device = peer then Some (Ids.qualified m, p.Abstraction.phys_id)
            else None)
          a.Abstraction.physical
      else None)
    (Topology.modules_of_device topo dev)

let hops_of_path (path : Path_finder.path) =
  List.map
    (fun dev ->
      let mods =
        List.fold_left
          (fun acc (v : Path_finder.visit) ->
            let q = Ids.qualified v.Path_finder.v_mod in
            if v.Path_finder.v_mod.Ids.dev = dev && not (List.mem q acc) then q :: acc else acc)
          [] path.Path_finder.visits
      in
      { Diagnose.h_dev = dev; h_modules = List.rev mods })
    (ordered_devices path)

let segs_of_path t (path : Path_finder.path) =
  let topo = Nm.topology t.nm in
  let rec pair = function
    | d1 :: (d2 :: _ as rest) -> (
        match (eth_facing topo d1 d2, eth_facing topo d2 d1) with
        | Some (m1, p1), Some (m2, p2) ->
            {
              Diagnose.s_name = d1 ^ "--" ^ d2;
              s_from = d1;
              s_from_module = m1;
              s_from_pipe = p1;
              s_to = d2;
              s_to_module = m2;
              s_to_pipe = p2;
            }
            :: pair rest
        | _ -> pair rest)
    | _ -> []
  in
  pair (ordered_devices path)

let diagnose_path t path =
  Diagnose.localize t.store ~hops:(hops_of_path path) ~segs:(segs_of_path t path)
