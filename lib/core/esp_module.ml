(* The ESP (IPsec) protocol module — figure 1's example of a module with an
   external dependency. Unlike GRE, it does NOT negotiate its parameters
   with its peer: the keying material is a declared dependency ("esp-keys")
   that the NM resolves to a control module (IKE, §II-F) when creating the
   up pipe. The module waits until the IKE module has keys for the tunnel
   endpoints, then emits the device-level `ip tunnel add ... mode esp`. *)

open Module_impl

type pipe_state = { spec : Primitive.pipe_spec; role : role }

type state = {
  env : env;
  mref : Ids.t;
  mutable pipes : pipe_state list;
  mutable pending : Primitive.switch_rule list;
  mutable tunnels : (string * string) list; (* pipe id -> tunnel device *)
}

let find_pipe st pid = List.find_opt (fun p -> p.spec.Primitive.pipe_id = pid) st.pipes

(* the control module resolved for the up pipe's "esp-keys" dependency *)
let key_provider ps = List.assoc_opt "esp-keys" ps.spec.Primitive.deps

let try_rule st rule =
  match rule with
  | Primitive.Bidi (x, y) -> (
      match (find_pipe st x, find_pipe st y) with
      | Some px, Some py -> (
          let up, down = if px.role = `Bottom then (px, py) else (py, px) in
          let below = down.spec.Primitive.bottom in
          let local = st.env.local_query below "address" in
          let remote = st.env.local_query below ("peer-addr:" ^ down.spec.Primitive.pipe_id) in
          match (local, remote, key_provider up) with
          | Some local, Some remote, Some ike -> (
              match st.env.local_query ike (Printf.sprintf "keys:%s:%s" local remote) with
              | Some keys -> (
                  match String.split_on_char ',' keys with
                  | [ spi_in; key_in; spi_out; key_out ] ->
                      let name =
                        Printf.sprintf "esp-%s-%s" up.spec.Primitive.pipe_id
                          down.spec.Primitive.pipe_id
                      in
                      if Netsim.Device.find_iface st.env.device name <> None then
                        run_cmdf st.env.device "ip tunnel del %s" name;
                      run_cmd st.env.device "insmod /lib/modules/2.6.14-2/esp4.ko";
                      run_cmdf st.env.device
                        "ip tunnel add name %s mode esp remote %s local %s ikey %s okey %s ienc %s oenc %s"
                        name remote local spi_in spi_out key_in key_out;
                      st.tunnels <-
                        (up.spec.Primitive.pipe_id, name)
                        :: (down.spec.Primitive.pipe_id, name)
                        :: List.filter
                             (fun (k, _) -> k <> up.spec.Primitive.pipe_id)
                             st.tunnels;
                      true
                  | _ -> false)
              | None -> false (* IKE still negotiating; poll retries *))
          | _ -> false)
      | _ -> false)
  | Primitive.Directed _ -> false

let poll st () =
  let before = List.length st.pending in
  st.pending <- List.filter (fun r -> not (try_rule st r)) st.pending;
  if List.length st.pending <> before then st.env.progress ()

let abstraction () =
  {
    Abstraction.default with
    name = "ESP";
    up =
      Some
        {
          Abstraction.connectable = [ "IP" ];
          (* the keying material must be provided externally: the paper's
             canonical dependency example (IP-Sec depending on IKE) *)
          dependencies = [ "esp-keys" ];
        };
    down = Some { Abstraction.connectable = [ "IP" ]; dependencies = [] };
    peerable = [ "ESP" ];
    switch = [ Abstraction.Up_down; Abstraction.Down_up ];
    perf_reporting = [ "up_frames"; "up_bytes"; "down_frames"; "down_bytes" ];
    security = [ "confidentiality"; "integrity" ];
  }

let make ~env ~mref () =
  let st = { env; mref; pipes = []; pending = []; tunnels = [] } in
  {
    (no_op_module mref abstraction) with
    create_pipe =
      (fun spec role ->
        st.pipes <-
          { spec; role }
          :: List.filter (fun p -> p.spec.Primitive.pipe_id <> spec.Primitive.pipe_id) st.pipes;
        poll st ());
    delete_pipe =
      (fun pid ->
        (match List.assoc_opt pid st.tunnels with
        | Some name when Netsim.Device.find_iface st.env.device name <> None ->
            run_cmdf st.env.device "ip tunnel del %s" name
        | _ -> ());
        st.tunnels <- List.remove_assoc pid st.tunnels;
        st.pipes <- List.filter (fun p -> p.spec.Primitive.pipe_id <> pid) st.pipes);
    create_switch =
      (fun rule ->
        if not (List.mem rule st.pending) then st.pending <- st.pending @ [ rule ];
        poll st ());
    delete_switch = (fun rule -> st.pending <- List.filter (( <> ) rule) st.pending);
    fields =
      (fun key ->
        match String.split_on_char ':' key with
        | [ "tundev"; pid ] -> List.assoc_opt pid st.tunnels
        | _ -> None);
    perf =
      (fun () ->
        (* up = authenticated+decrypted packets delivered upwards, down =
           packets sealed and pushed down; no-SA sends count as drops, not
           transmissions *)
        List.map
          (fun (pid, name) ->
            let c =
              match Netsim.Device.find_iface st.env.device name with
              | Some i -> fun n -> Netsim.Counters.get i.Netsim.Device.if_counters n
              | None -> fun _ -> 0
            in
            ( pid,
              [
                ("up_frames", c "rx_packets");
                ("up_bytes", c "rx_bytes");
                ("down_frames", c "tx_packets");
                ("down_bytes", c "tx_bytes");
                ("drop:rx_errors", c "rx_errors");
                ("drop:no_sa", c "tx_no_sa_drop");
              ] ))
          st.tunnels);
    actual =
      (fun () ->
        List.concat_map
          (fun (pid, name) ->
            match Netsim.Device.find_iface st.env.device name with
            | Some i ->
                [
                  ( "tunnel:" ^ pid,
                    Printf.sprintf "%s rx=%d tx=%d" name
                      (Netsim.Counters.get i.Netsim.Device.if_counters "rx_packets")
                      (Netsim.Counters.get i.Netsim.Device.if_counters "tx_packets") );
                ]
            | None -> [])
          st.tunnels
        @ List.map (fun r -> (Fmt.str "pending[%a]" Primitive.pp_rule r, "waiting")) st.pending);
    poll = poll st;
    self_test =
      (fun ~against:_ ~reply ->
        if st.pending <> [] then reply ~ok:false ~detail:"SA not established yet"
        else reply ~ok:true ~detail:"ESP state consistent");
  }
