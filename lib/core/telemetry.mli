(** The NM-side telemetry poller over the showPerf primitive.

    Scrapes per-pipe counters from every device in scope, feeds the
    {!Diagnose} time-series store, and localizes faults on configured
    paths by adapting them (through the potential graph) into the hops and
    inter-device segments the protocol-agnostic localizer consumes. *)

type t

val create : ?window:int -> ?period_ns:int64 -> scope:string list -> Nm.t -> t
(** [window] bounds the per-series delta ring; [period_ns] (default
    250ms) is the base scrape period honoured by {!maybe_scrape}. *)

val store : t -> Diagnose.t
val rounds : t -> int

val period_ns : t -> int64
(** Current scrape period — equals the base period until shed feedback
    (see {!set_shed_probe}) backs it off. *)

val set_shed_probe : t -> (unit -> int) -> unit
(** Wires overload feedback into the poller: [probe] returns a monotonic
    count of telemetry payloads shed or expired by the admission layer
    (e.g. {!Mgmt.Admission.lost_total}). On every {!maybe_scrape}, growth
    since the last look doubles the scrape period (capped at 8× base —
    graceful degradation, the NM stops feeding the storm) and a quiet
    interval halves it back towards the base. *)

val backoffs : t -> int
(** How many times the scrape period was doubled in response to sheds. *)

val scrape : t -> unit
(** One scrape round, now: showPerf at every device in scope; devices
    that do not answer are noted unreachable in the store. *)

val maybe_scrape : t -> unit
(** {!scrape}, but only if the period elapsed since the last round. *)

val anomalies : t -> Diagnose.anomaly list

val hops_of_path : Path_finder.path -> Diagnose.hop list
val segs_of_path : t -> Path_finder.path -> Diagnose.seg list

val diagnose_path : t -> Path_finder.path -> Diagnose.diagnosis list
(** Ranked root-cause diagnosis for one configured path. *)
