(* The protocol-independent configuration primitives the NM invokes at
   devices (CONMan §II-D, Table I): create/delete of pipes, switch rules and
   filter rules. A list of primitives is a "CONMan script" in the sense of
   figures 7(b), 8(b) and 9(b). *)

(* Traffic selectors appearing in switch rules. They are symbolic — the one
   place protocol-specific knowledge unavoidably leaks into CONMan scripts
   (the paper's two "specific state variables" per script, e.g. dst:C1-S2
   and S2-gateway). *)
type selector =
  | Any
  | Dst_domain of string (* e.g. "C1-S2": traffic towards that site *)
  | To_gateway of string (* e.g. "S2-gateway": hand off to the site gateway *)
  | Tagged (* the customer traffic class of the VLAN scenario *)

let selector_to_string = function
  | Any -> "Any"
  | Dst_domain d -> "dst:" ^ d
  | To_gateway g -> g
  | Tagged -> "Tagged"

let selector_of_string = function
  | "Any" -> Any
  | "Tagged" -> Tagged
  | s ->
      if String.length s > 4 && String.sub s 0 4 = "dst:" then
        Dst_domain (String.sub s 4 (String.length s - 4))
      else To_gateway s

type switch_rule =
  | Bidi of string * string (* create (switch, m, P1, P2) *)
  | Directed of { from_pipe : string; to_pipe : string; sel : selector }
    (* create (switch, m, [P0, dst:C1-S2 => P1]) *)

type pipe_spec = {
  pipe_id : string; (* NM-assigned identifier, unique along a path *)
  top : Ids.t; (* the module above *)
  bottom : Ids.t; (* the module below *)
  peer_top : Ids.t option; (* peer of [top] for this pipe *)
  peer_bottom : Ids.t option;
  tradeoffs : string list; (* requested performance trade-offs *)
  (* dependencies of the pipe resolved by the NM to the (control) modules
     that satisfy them, e.g. [("esp-keys", <IKE,A,m>)] (§II-F) *)
  deps : (string * Ids.t) list;
}

type t =
  | Create_pipe of pipe_spec
  | Create_switch of { owner : Ids.t; rule : switch_rule }
  | Create_filter of { owner : Ids.t; drop_src : Ids.t; drop_dst : Ids.t }
  (* performance enforcement state (§II-D.1(c): "queuing structures or
     service classes"); the rate is a generic quantity, not a protocol
     parameter *)
  | Create_perf of { owner : Ids.t; pipe_id : string; rate_kbps : int }
  | Delete_pipe of { owner : Ids.t; pipe_id : string }
  | Delete_switch of { owner : Ids.t; rule : switch_rule }
  | Delete_filter of { owner : Ids.t; drop_src : Ids.t; drop_dst : Ids.t }
  | Delete_perf of { owner : Ids.t; pipe_id : string }

(* --- rendering (the style of figures 7(b)/8(b)) --------------------------- *)

let pp_rule ppf = function
  | Bidi (p1, p2) -> Fmt.pf ppf "%s, %s" p1 p2
  | Directed { from_pipe; to_pipe; sel = Any } -> Fmt.pf ppf "[%s => %s]" from_pipe to_pipe
  | Directed { from_pipe; to_pipe; sel = To_gateway g } ->
      Fmt.pf ppf "[%s => %s, %s]" from_pipe to_pipe g
  | Directed { from_pipe; to_pipe; sel } ->
      Fmt.pf ppf "[%s, %s => %s]" from_pipe (selector_to_string sel) to_pipe

let pp_opt_mref ppf = function None -> Fmt.string ppf "None" | Some m -> Ids.pp ppf m

let pp ppf = function
  | Create_pipe p ->
      Fmt.pf ppf "%s = create (pipe, %a, %a, %a, %a%s%s)" p.pipe_id Ids.pp p.top Ids.pp p.bottom
        pp_opt_mref p.peer_top pp_opt_mref p.peer_bottom
        (match p.tradeoffs with
        | [] -> ", None"
        | ts -> String.concat "" (List.map (fun t -> ", trade-off: " ^ t) ts))
        (String.concat ""
           (List.map (fun (d, m) -> Printf.sprintf ", dep: %s=%s" d (Ids.to_string m)) p.deps))
  | Create_switch { owner; rule } -> Fmt.pf ppf "create (switch, %a, %a)" Ids.pp owner pp_rule rule
  | Create_filter { owner; drop_src; drop_dst } ->
      Fmt.pf ppf "create (filter, %a, from %a to %a)" Ids.pp owner Ids.pp drop_src Ids.pp drop_dst
  | Create_perf { owner; pipe_id; rate_kbps } ->
      Fmt.pf ppf "create (perf, %a, %s, rate: %d kbps)" Ids.pp owner pipe_id rate_kbps
  | Delete_perf { owner; pipe_id } -> Fmt.pf ppf "delete (perf, %a, %s)" Ids.pp owner pipe_id
  | Delete_pipe { owner; pipe_id } -> Fmt.pf ppf "delete (pipe, %a, %s)" Ids.pp owner pipe_id
  | Delete_switch { owner; rule } -> Fmt.pf ppf "delete (switch, %a, %a)" Ids.pp owner pp_rule rule
  | Delete_filter { owner; drop_src; drop_dst } ->
      Fmt.pf ppf "delete (filter, %a, from %a to %a)" Ids.pp owner Ids.pp drop_src Ids.pp drop_dst

(* The device a primitive must be delivered to. *)
let target = function
  | Create_pipe p -> p.top.Ids.dev
  | Create_switch { owner; _ } | Delete_switch { owner; _ } -> owner.Ids.dev
  | Create_filter { owner; _ } | Delete_filter { owner; _ } -> owner.Ids.dev
  | Create_perf { owner; _ } | Delete_perf { owner; _ } -> owner.Ids.dev
  | Delete_pipe { owner; _ } -> owner.Ids.dev

let is_deletion = function
  | Delete_pipe _ | Delete_switch _ | Delete_filter _ | Delete_perf _ -> true
  | Create_pipe _ | Create_switch _ | Create_filter _ | Create_perf _ -> false

(* --- sexp conversions ------------------------------------------------------ *)

let rule_to_sexp = function
  | Bidi (a, b) -> Sexp.List [ Sexp.atom "bidi"; Sexp.atom a; Sexp.atom b ]
  | Directed { from_pipe; to_pipe; sel } ->
      Sexp.List
        [ Sexp.atom "dir"; Sexp.atom from_pipe; Sexp.atom to_pipe; Sexp.atom (selector_to_string sel) ]

let rule_of_sexp = function
  | Sexp.List [ Sexp.Atom "bidi"; a; b ] -> Bidi (Sexp.to_atom a, Sexp.to_atom b)
  | Sexp.List [ Sexp.Atom "dir"; f; t; s ] ->
      Directed
        { from_pipe = Sexp.to_atom f; to_pipe = Sexp.to_atom t; sel = selector_of_string (Sexp.to_atom s) }
  | _ -> raise (Sexp.Parse_error "switch_rule")

let pipe_to_sexp p =
  Sexp.List
    [
      Sexp.atom p.pipe_id;
      Sexp.of_mref p.top;
      Sexp.of_mref p.bottom;
      Sexp.of_option Sexp.of_mref p.peer_top;
      Sexp.of_option Sexp.of_mref p.peer_bottom;
      Sexp.List (List.map Sexp.atom p.tradeoffs);
      Sexp.List (List.map (fun (d, m) -> Sexp.List [ Sexp.atom d; Sexp.of_mref m ]) p.deps);
    ]

let pipe_of_sexp = function
  | Sexp.List [ id; top; bottom; pt; pb; Sexp.List tr; Sexp.List deps ] ->
      {
        pipe_id = Sexp.to_atom id;
        top = Sexp.to_mref top;
        bottom = Sexp.to_mref bottom;
        peer_top = Sexp.to_option Sexp.to_mref pt;
        peer_bottom = Sexp.to_option Sexp.to_mref pb;
        tradeoffs = List.map Sexp.to_atom tr;
        deps =
          List.map
            (function
              | Sexp.List [ d; m ] -> (Sexp.to_atom d, Sexp.to_mref m)
              | _ -> raise (Sexp.Parse_error "pipe dep"))
            deps;
      }
  | _ -> raise (Sexp.Parse_error "pipe_spec")

let to_sexp = function
  | Create_pipe p -> Sexp.List [ Sexp.atom "create-pipe"; pipe_to_sexp p ]
  | Create_switch { owner; rule } ->
      Sexp.List [ Sexp.atom "create-switch"; Sexp.of_mref owner; rule_to_sexp rule ]
  | Create_filter { owner; drop_src; drop_dst } ->
      Sexp.List
        [ Sexp.atom "create-filter"; Sexp.of_mref owner; Sexp.of_mref drop_src; Sexp.of_mref drop_dst ]
  | Create_perf { owner; pipe_id; rate_kbps } ->
      Sexp.List
        [ Sexp.atom "create-perf"; Sexp.of_mref owner; Sexp.atom pipe_id; Sexp.of_int rate_kbps ]
  | Delete_perf { owner; pipe_id } ->
      Sexp.List [ Sexp.atom "delete-perf"; Sexp.of_mref owner; Sexp.atom pipe_id ]
  | Delete_pipe { owner; pipe_id } ->
      Sexp.List [ Sexp.atom "delete-pipe"; Sexp.of_mref owner; Sexp.atom pipe_id ]
  | Delete_switch { owner; rule } ->
      Sexp.List [ Sexp.atom "delete-switch"; Sexp.of_mref owner; rule_to_sexp rule ]
  | Delete_filter { owner; drop_src; drop_dst } ->
      Sexp.List
        [ Sexp.atom "delete-filter"; Sexp.of_mref owner; Sexp.of_mref drop_src; Sexp.of_mref drop_dst ]

let of_sexp = function
  | Sexp.List [ Sexp.Atom "create-pipe"; p ] -> Create_pipe (pipe_of_sexp p)
  | Sexp.List [ Sexp.Atom "create-switch"; o; r ] ->
      Create_switch { owner = Sexp.to_mref o; rule = rule_of_sexp r }
  | Sexp.List [ Sexp.Atom "create-filter"; o; s; d ] ->
      Create_filter { owner = Sexp.to_mref o; drop_src = Sexp.to_mref s; drop_dst = Sexp.to_mref d }
  | Sexp.List [ Sexp.Atom "create-perf"; o; p; r ] ->
      Create_perf { owner = Sexp.to_mref o; pipe_id = Sexp.to_atom p; rate_kbps = Sexp.to_int r }
  | Sexp.List [ Sexp.Atom "delete-perf"; o; p ] ->
      Delete_perf { owner = Sexp.to_mref o; pipe_id = Sexp.to_atom p }
  | Sexp.List [ Sexp.Atom "delete-pipe"; o; p ] ->
      Delete_pipe { owner = Sexp.to_mref o; pipe_id = Sexp.to_atom p }
  | Sexp.List [ Sexp.Atom "delete-switch"; o; r ] ->
      Delete_switch { owner = Sexp.to_mref o; rule = rule_of_sexp r }
  | Sexp.List [ Sexp.Atom "delete-filter"; o; s; d ] ->
      Delete_filter { owner = Sexp.to_mref o; drop_src = Sexp.to_mref s; drop_dst = Sexp.to_mref d }
  | _ -> raise (Sexp.Parse_error "primitive")

let equal a b = to_sexp a = to_sexp b

(* --- Table V tokens --------------------------------------------------------- *)

(* Command-form and state-variable extraction for the CONMan side of Table V.
   Commands are always generic (that is the point of the architecture);
   state variables are module names/ids, device ids and pipe ids (generic),
   while traffic selectors that denote customer address space are specific. *)
let table5_tokens prim =
  let mref_vars (m : Ids.t) =
    [
      (m.Ids.name, Devconf.Classify.Generic);
      (m.Ids.mid, Devconf.Classify.Generic);
      (m.Ids.dev, Devconf.Classify.Generic);
    ]
  in
  let opt_mref_vars = function Some m -> mref_vars m | None -> [] in
  let sel_vars = function
    | Any -> []
    | Tagged -> [ ("Tagged", Devconf.Classify.Specific) ]
    | Dst_domain d -> [ ("dst:" ^ d, Devconf.Classify.Specific) ]
    | To_gateway g -> [ (g, Devconf.Classify.Specific) ]
  in
  let rule_vars = function
    | Bidi (a, b) -> [ (a, Devconf.Classify.Generic); (b, Devconf.Classify.Generic) ]
    | Directed { from_pipe; to_pipe; sel } ->
        [ (from_pipe, Devconf.Classify.Generic); (to_pipe, Devconf.Classify.Generic) ] @ sel_vars sel
  in
  match prim with
  | Create_pipe p ->
      ( ("create (pipe)", Devconf.Classify.Generic),
        ((p.pipe_id, Devconf.Classify.Generic) :: mref_vars p.top)
        @ mref_vars p.bottom @ opt_mref_vars p.peer_top @ opt_mref_vars p.peer_bottom
        @ List.concat_map (fun (d, m) -> (d, Devconf.Classify.Generic) :: mref_vars m) p.deps )
  | Create_switch { owner; rule } ->
      (("create (switch)", Devconf.Classify.Generic), mref_vars owner @ rule_vars rule)
  | Create_filter { owner; drop_src; drop_dst } ->
      ( ("create (filter)", Devconf.Classify.Generic),
        mref_vars owner @ mref_vars drop_src @ mref_vars drop_dst )
  | Create_perf { owner; pipe_id; rate_kbps } ->
      ( ("create (perf)", Devconf.Classify.Generic),
        (pipe_id, Devconf.Classify.Generic)
        :: (string_of_int rate_kbps, Devconf.Classify.Generic)
        :: mref_vars owner )
  | Delete_perf { owner; pipe_id } ->
      (("delete (perf)", Devconf.Classify.Generic),
       (pipe_id, Devconf.Classify.Generic) :: mref_vars owner)
  | Delete_pipe { owner; pipe_id } ->
      (("delete (pipe)", Devconf.Classify.Generic),
       (pipe_id, Devconf.Classify.Generic) :: mref_vars owner)
  | Delete_switch { owner; rule } ->
      (("delete (switch)", Devconf.Classify.Generic), mref_vars owner @ rule_vars rule)
  | Delete_filter { owner; drop_src; drop_dst } ->
      ( ("delete (filter)", Devconf.Classify.Generic),
        mref_vars owner @ mref_vars drop_src @ mref_vars drop_dst )

let table5_counts prims =
  let tokens = List.map table5_tokens prims in
  Devconf.Metrics.make ~cmds:(List.map fst tokens) ~vars:(List.concat_map snd tokens)
