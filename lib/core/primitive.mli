(** The protocol-independent configuration primitives the NM invokes at
    devices (§II-D, Table I): create/delete of pipes, switch rules, filter
    rules and performance-enforcement state. A list of primitives is a
    "CONMan script" in the sense of figures 7(b), 8(b) and 9(b). *)

(** Traffic selectors appearing in switch rules — the one place customer
    address space symbolically leaks into CONMan scripts (the paper's two
    "specific state variables" per script). *)
type selector =
  | Any
  | Dst_domain of string (** e.g. "C1-S2": traffic towards that site *)
  | To_gateway of string (** e.g. "S1-gateway": hand off to the site gateway *)
  | Tagged (** the customer traffic class of the VLAN scenario *)

val selector_to_string : selector -> string
val selector_of_string : string -> selector

type switch_rule =
  | Bidi of string * string (** create (switch, m, P1, P2) *)
  | Directed of { from_pipe : string; to_pipe : string; sel : selector }
      (** create (switch, m, [P0, dst:C1-S2 => P1]) *)

type pipe_spec = {
  pipe_id : string; (** NM-assigned, unique along a path *)
  top : Ids.t; (** the module above *)
  bottom : Ids.t;
  peer_top : Ids.t option; (** peer of [top] for this pipe *)
  peer_bottom : Ids.t option;
  tradeoffs : string list; (** requested performance trade-offs *)
  deps : (string * Ids.t) list;
      (** pipe dependencies resolved by the NM to providing (control)
          modules, e.g. [("esp-keys", <IKE,A,m>)] (§II-F) *)
}

type t =
  | Create_pipe of pipe_spec
  | Create_switch of { owner : Ids.t; rule : switch_rule }
  | Create_filter of { owner : Ids.t; drop_src : Ids.t; drop_dst : Ids.t }
  | Create_perf of { owner : Ids.t; pipe_id : string; rate_kbps : int }
      (** performance-enforcement state (§II-D.1(c)) *)
  | Delete_pipe of { owner : Ids.t; pipe_id : string }
  | Delete_switch of { owner : Ids.t; rule : switch_rule }
  | Delete_filter of { owner : Ids.t; drop_src : Ids.t; drop_dst : Ids.t }
  | Delete_perf of { owner : Ids.t; pipe_id : string }

val pp : t Fmt.t
(** Figure-7(b) style rendering. *)

val pp_rule : switch_rule Fmt.t

val target : t -> string
(** The device id a primitive must be delivered to. *)

val is_deletion : t -> bool
(** Whether the primitive only removes state. Deletions are idempotent at
    the agent: re-executing one against missing state is a no-op, which
    the agent exploits when a back-out bundle is replayed (see Agent). *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
val equal : t -> t -> bool

(** {1 Table V accounting} *)

val table5_tokens :
  t -> (string * Devconf.Classify.klass) * (string * Devconf.Classify.klass) list
(** Command form and state-variable tokens of one primitive (commands are
    always generic — that is the architecture's point; only traffic
    selectors are protocol-specific). *)

val table5_counts : t list -> Devconf.Metrics.counts
