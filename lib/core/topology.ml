(* The NM's view of the network: physical connectivity learnt from Hello
   announcements, module abstractions harvested with showPotential, and the
   address-domain knowledge the NM holds itself (§III-C). *)

type device_info = {
  di_id : string;
  mutable di_links : (string * string * string) list; (* port, peer dev, peer port *)
  mutable di_modules : (Ids.t * Abstraction.t) list;
  mutable di_reachable : bool;
      (* false once the NM exhausts retries against the device; restored on
         a fresh Hello *)
}

type t = {
  mutable devices : device_info list;
  mutable module_domains : (Ids.t * string) list; (* IP module -> address domain *)
  mutable domain_prefixes : (string * string) list; (* domain -> prefix *)
}

let create () = { devices = []; module_domains = []; domain_prefixes = [] }

let device t id = List.find_opt (fun d -> d.di_id = id) t.devices

let device_or_add t id =
  match device t id with
  | Some d -> d
  | None ->
      let d = { di_id = id; di_links = []; di_modules = []; di_reachable = true } in
      t.devices <- t.devices @ [ d ];
      d

let record_hello t ~src ports = (device_or_add t src).di_links <- ports

(* Unknown devices count as reachable: the NM has no evidence otherwise. *)
let is_reachable t id = match device t id with Some d -> d.di_reachable | None -> true
let set_reachable t id v = (device_or_add t id).di_reachable <- v
let unreachable t = List.filter_map (fun d -> if d.di_reachable then None else Some d.di_id) t.devices

let record_potential t ~src modules = (device_or_add t src).di_modules <- modules

let set_domains t ~module_domains ~domain_prefixes =
  t.module_domains <- module_domains;
  t.domain_prefixes <- domain_prefixes

let domain_of t mref = List.assoc_opt mref t.module_domains
let prefix_of_domain t d = List.assoc_opt d t.domain_prefixes

let find_module t mref =
  Option.bind (device t mref.Ids.dev) (fun d ->
      List.find_map
        (fun (m, a) -> if Ids.equal m mref then Some a else None)
        d.di_modules)

let find_module_exn t mref =
  match find_module t mref with
  | Some a -> a
  | None -> failwith (Fmt.str "topology: unknown module %a" Ids.pp mref)

let modules_of_device t dev =
  match device t dev with Some d -> d.di_modules | None -> []

let all_modules t = List.concat_map (fun d -> d.di_modules) t.devices

(* Renders the network map of figure 4(b)/Table IV. *)
let pp_table4 ppf t =
  List.iter
    (fun d ->
      List.iter
        (fun (m, a) -> Fmt.pf ppf "%a  %a@." Ids.pp m Abstraction.pp_table4_line a)
        d.di_modules)
    t.devices
