(* Bounded per-station span collectors; see trace.mli for the model. *)

type ctx = { goal : int; span : int; parent : int }

type span = {
  s_goal : int;
  s_id : int;
  s_parent : int;
  s_name : string;
  s_station : string;
  s_start : int;
  mutable s_end : int;
  mutable s_status : string;
  mutable s_events : (int * string) list;
}

type t = {
  st_station : string;
  st_limit : int;
  order : int Queue.t; (* insertion order, for drop-oldest *)
  by_id : (int, span) Hashtbl.t;
  mutable st_dropped : int;
  mutable clock : unit -> int;
}

let default_limit = 10_000

let create ?(limit = default_limit) ~station () =
  {
    st_station = station;
    st_limit = max 1 limit;
    order = Queue.create ();
    by_id = Hashtbl.create 64;
    st_dropped = 0;
    clock = (fun () -> 0);
  }

let station t = t.st_station
let set_clock t f = t.clock <- f
let now t = t.clock ()
let dropped t = t.st_dropped

let clear t =
  Queue.clear t.order;
  Hashtbl.reset t.by_id;
  t.st_dropped <- 0

(* One global allocator: span ids must be unique across every collector
   in the process (a federated goal's spans live in several), and
   resettable so seeded runs are reproducible. *)
let next_id = ref 0
let reset_ids () = next_id := 0

let fresh_id () =
  incr next_id;
  !next_id

let add t span =
  Queue.push span.s_id t.order;
  Hashtbl.replace t.by_id span.s_id span;
  while Queue.length t.order > t.st_limit do
    let victim = Queue.pop t.order in
    Hashtbl.remove t.by_id victim;
    t.st_dropped <- t.st_dropped + 1
  done

let ctx_of s = { goal = s.s_goal; span = s.s_id; parent = s.s_parent }

let start ?parent t name =
  let id = fresh_id () in
  let goal, parent_id = match parent with None -> (id, 0) | Some c -> (c.goal, c.span) in
  add t
    {
      s_goal = goal;
      s_id = id;
      s_parent = parent_id;
      s_name = name;
      s_station = t.st_station;
      s_start = t.clock ();
      s_end = -1;
      s_status = "";
      s_events = [];
    };
  { goal; span = id; parent = parent_id }

let find t id = Hashtbl.find_opt t.by_id id

let event t ctx what =
  match find t ctx.span with
  | None -> () (* span evicted: the dropped counter already told the story *)
  | Some s -> s.s_events <- s.s_events @ [ (t.clock (), what) ]

let finish t ctx ~status =
  match find t ctx.span with
  | None -> ()
  | Some s ->
      if s.s_end < 0 then begin
        s.s_end <- t.clock ();
        s.s_status <- status
      end

let spans t =
  Queue.fold (fun acc id -> match find t id with Some s -> s :: acc | None -> acc) [] t.order
  |> List.rev

(* --- cross-collector queries -------------------------------------------- *)

let route_event ts ctx what =
  match List.find_opt (fun t -> find t ctx.span <> None) ts with
  | Some t -> event t ctx what
  | None -> ()

let goal_spans ts goal =
  List.concat_map (fun t -> List.filter (fun s -> s.s_goal = goal) (spans t)) ts
  |> List.sort (fun a b -> compare a.s_id b.s_id)

let orphans ts goal =
  let ss = goal_spans ts goal in
  let ids = List.map (fun s -> s.s_id) ss in
  List.filter (fun s -> s.s_parent <> 0 && not (List.mem s.s_parent ids)) ss

let connected ts goal =
  let ss = goal_spans ts goal in
  ss <> []
  && List.length (List.filter (fun s -> s.s_parent = 0) ss) = 1
  && orphans ts goal = []

let goals ts =
  List.concat_map (fun t -> List.map (fun s -> s.s_goal) (spans t)) ts
  |> List.sort_uniq compare

let render ts goal =
  let ss = goal_spans ts goal in
  let buf = Buffer.create 256 in
  let line depth (s : span) =
    let pad = String.make (2 * depth) ' ' in
    let status = if s.s_status = "" then "open" else s.s_status in
    let fin = if s.s_end < 0 then "" else Printf.sprintf " end=%d" s.s_end in
    Buffer.add_string buf
      (Printf.sprintf "%s%s [span %d @ %s] start=%d%s %s\n" pad s.s_name s.s_id s.s_station
         s.s_start fin status);
    List.iter
      (fun (tick, what) ->
        Buffer.add_string buf (Printf.sprintf "%s  · t%d %s\n" pad tick what))
      s.s_events
  in
  let rec walk depth (s : span) =
    line depth s;
    List.iter (walk (depth + 1)) (List.filter (fun c -> c.s_parent = s.s_id) ss)
  in
  let roots = List.filter (fun s -> s.s_parent = 0) ss in
  List.iter (walk 0) roots;
  let orphaned = orphans ts goal in
  if orphaned <> [] then begin
    Buffer.add_string buf "ORPHANS (parent missing):\n";
    List.iter (walk 1) orphaned
  end;
  Buffer.contents buf
