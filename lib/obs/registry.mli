(** The unified metrics registry.

    Every subsystem registers one source — a closure producing its
    current counter values — under a subsystem prefix; the registry
    renders the union as uniform ["subsystem.name"] keys. Sources are
    read lazily at [snapshot] time, so registration is free and the
    registry never holds stale copies.

    Key convention: both the subsystem and the counter name are lowercase
    [a-z0-9_] tokens joined by a single dot, e.g. ["admission.p3_shed"],
    ["reliable.retries"], ["faults.crash_drops"]. [register] normalizes
    names (anything else becomes '_') and rejects duplicate subsystems.

    Histograms record per-goal-phase tick latencies (plan, commit, abort,
    failover replay) and report count/min/max/mean/p50/p90/p99. *)

type t

val create : unit -> t

val register : t -> string -> (unit -> (string * int) list) -> unit
(** [register t subsystem source] — raises [Invalid_argument] on a
    duplicate subsystem. *)

val unregister : t -> string -> unit
val subsystems : t -> string list

val snapshot : t -> (string * int) list
(** Every ["subsystem.name"] key, sorted. *)

val delta : base:(string * int) list -> (string * int) list -> (string * int) list
(** Counter movement between two snapshots; keys absent from [base] count
    from zero, negative movements clamp to zero (a reset source). *)

val observe : t -> string -> int -> unit
(** [observe t key v] records one histogram sample (key follows the same
    subsystem.name convention, e.g. ["fed.plan_ticks"]). *)

type stats = {
  count : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

val histogram : t -> string -> stats option
val histograms : t -> (string * stats) list

val samples : t -> string -> int list
(** Raw samples in observation order — lets a soak merge histograms
    across independent runs before computing percentiles. *)

val to_json : t -> string
(** jq-friendly: [{"counters": {...}, "histograms": {key: {...}}}]. *)
