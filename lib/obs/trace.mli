(** Per-goal causal tracing.

    A goal (an [Nm.achieve], a federated two-phase achieve, a back-out)
    opens a root span; every piece of work done on its behalf — a bundle
    sent to an agent, a script slice delegated to a peer NM, a failover
    replay — opens a child span carrying the same goal id. The context
    travels on the wire (see [Wire.Traced]) so spans created on another
    station still parent correctly, and events raised by layers that
    cannot see the goal (Reliable retries, Admission shedding) are routed
    to the owning span by decoding the context out of the payload.

    Collectors are bounded: past [limit] spans the oldest are dropped and
    counted, so chaos soaks with tracing on keep constant memory. *)

type ctx = { goal : int; span : int; parent : int }
(** What travels on the wire: which goal, which span is doing the work,
    and that span's parent. [parent = 0] marks a root. *)

type span = {
  s_goal : int;
  s_id : int;
  s_parent : int;  (** 0 for a root span *)
  s_name : string;
  s_station : string;  (** collector that owns the span *)
  s_start : int;  (** tick at which the span opened *)
  mutable s_end : int;  (** -1 while open *)
  mutable s_status : string;  (** "" while open; "ok" / "failed: ..." *)
  mutable s_events : (int * string) list;  (** (tick, what), oldest first *)
}

type t
(** A bounded per-station span collector. *)

val create : ?limit:int -> station:string -> unit -> t
val station : t -> string

val set_clock : t -> (unit -> int) -> unit
(** The tick source used to stamp span starts, ends and events. *)

val now : t -> int
(** The collector's current tick. *)

val reset_ids : unit -> unit
(** Reset the global span-id allocator — seeded chaos runs call this so
    the same schedule always yields the same span tree. *)

val start : ?parent:ctx -> t -> string -> ctx
(** [start t name] opens a span. Without [?parent] it is a root: its goal
    id is its own span id. With [?parent] it joins that context's goal. *)

val ctx_of : span -> ctx
val event : t -> ctx -> string -> unit
val finish : t -> ctx -> status:string -> unit
val find : t -> int -> span option
val spans : t -> span list
(** Oldest first. *)

val dropped : t -> int
val clear : t -> unit

(** {2 Cross-collector queries} — a federated goal's spans live in several
    collectors; these operate over the union. *)

val route_event : t list -> ctx -> string -> unit
(** Attach an event to the span named by [ctx] in whichever collector
    holds it; silently dropped if no collector does (span evicted). *)

val goal_spans : t list -> int -> span list
(** Every span of one goal across the collectors, sorted by id. *)

val orphans : t list -> int -> span list
(** Spans of the goal whose parent id is neither 0 nor present in the
    goal's span set — a connectivity violation. *)

val connected : t list -> int -> bool
(** True iff the goal has exactly one root and no orphans. *)

val goals : t list -> int list
(** Every goal id with at least one span, ascending. *)

val render : t list -> int -> string
(** The goal's span tree, one line per span/event, indented by depth. *)
