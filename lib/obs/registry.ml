(* Lazy counter sources + bounded histogram samples; see registry.mli. *)

let normalize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '_' | '.' -> c
      | 'A' .. 'Z' -> Char.lowercase_ascii c
      | _ -> '_')
    name

type hist = { mutable samples : int list; mutable n : int }

type t = {
  mutable sources : (string * (unit -> (string * int) list)) list; (* registration order *)
  hists : (string, hist) Hashtbl.t;
}

let create () = { sources = []; hists = Hashtbl.create 8 }

let register t subsystem source =
  let subsystem = normalize subsystem in
  if List.mem_assoc subsystem t.sources then
    invalid_arg (Printf.sprintf "Obs.Registry.register: duplicate subsystem %S" subsystem);
  t.sources <- t.sources @ [ (subsystem, source) ]

let unregister t subsystem =
  let subsystem = normalize subsystem in
  t.sources <- List.filter (fun (s, _) -> s <> subsystem) t.sources

let subsystems t = List.map fst t.sources

let snapshot t =
  List.concat_map
    (fun (subsystem, source) ->
      List.map (fun (name, v) -> (subsystem ^ "." ^ normalize name, v)) (source ()))
    t.sources
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let delta ~base after =
  List.map
    (fun (key, v_after) ->
      let v_before = match List.assoc_opt key base with Some v -> v | None -> 0 in
      (key, max 0 (v_after - v_before)))
    after

(* --- histograms ----------------------------------------------------------- *)

(* Latencies are ticks — tiny ints — and soaks record thousands of phases
   at most, so an exact bounded sample list beats bucketing. *)
let max_samples = 100_000

let observe t key v =
  let key = normalize key in
  let h =
    match Hashtbl.find_opt t.hists key with
    | Some h -> h
    | None ->
        let h = { samples = []; n = 0 } in
        Hashtbl.add t.hists key h;
        h
  in
  if h.n < max_samples then begin
    h.samples <- v :: h.samples;
    h.n <- h.n + 1
  end

type stats = {
  count : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
}

let stats_of h =
  if h.n = 0 then None
  else
    let sorted = List.sort compare h.samples in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let pct p = arr.(Stdlib.min (n - 1) (int_of_float (float_of_int n *. p))) in
    Some
      {
        count = n;
        min = arr.(0);
        max = arr.(n - 1);
        mean = float_of_int (List.fold_left ( + ) 0 h.samples) /. float_of_int n;
        p50 = pct 0.50;
        p90 = pct 0.90;
        p99 = pct 0.99;
      }

let histogram t key = Option.bind (Hashtbl.find_opt t.hists (normalize key)) stats_of

let samples t key =
  match Hashtbl.find_opt t.hists (normalize key) with
  | Some h -> List.rev h.samples
  | None -> []

let histograms t =
  Hashtbl.fold (fun k h acc -> match stats_of h with Some s -> (k, s) :: acc | None -> acc)
    t.hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {\n";
  let counters = snapshot t in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %d%s\n" k v (if i = List.length counters - 1 then "" else ",")))
    counters;
  Buffer.add_string b "  },\n  \"histograms\": {\n";
  let hs = histograms t in
  List.iteri
    (fun i (k, s) ->
      Buffer.add_string b
        (Printf.sprintf
           "    \"%s\": { \"count\": %d, \"min\": %d, \"max\": %d, \"mean\": %.2f, \"p50\": %d, \
            \"p90\": %d, \"p99\": %d }%s\n"
           k s.count s.min s.max s.mean s.p50 s.p90 s.p99
           (if i = List.length hs - 1 then "" else ",")))
    hs;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b
