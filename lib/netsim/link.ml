(* Physical links. A segment is a broadcast medium with attached endpoints;
   a cable is a segment with exactly two. Frames are delivered to every other
   endpoint after the segment latency. Links can be cut (for fault-injection
   experiments) and have an MTU covering the Ethernet payload.

   Fault injection is first-class: each segment carries a seeded PRNG that
   drives random frame loss and corruption (a corrupted frame is dropped by
   the receiver's CRC check, never delivered mangled), and cuts/restores can
   be scheduled on the event queue so a flapping link is a simulator event
   rather than a test-side poke. Drops are counted per cause. *)

type endpoint = {
  segment : segment;
  ep_id : int;
  mutable rx : bytes -> unit;
}

and segment = {
  link_id : int;
  eq : Event_queue.t;
  latency_ns : int64;
  mtu : int;
  mutable endpoints : endpoint list;
  mutable next_ep : int;
  mutable cut : bool;
  mutable delivered : int;
  mutable loss : float; (* per-delivery probability a frame is lost *)
  mutable corrupt : float; (* per-delivery probability the CRC check fails *)
  mutable rng : int64;
  mutable flaps : int;
  stats : Counters.t; (* per-cause drop counters *)
}

let next_id = ref 0

let create_segment ?(latency_ns = 1_000L) ?(mtu = 1518) eq =
  incr next_id;
  {
    link_id = !next_id;
    eq;
    latency_ns;
    mtu;
    endpoints = [];
    next_ep = 0;
    cut = false;
    delivered = 0;
    loss = 0.0;
    corrupt = 0.0;
    rng = Int64.of_int !next_id;
    flaps = 0;
    stats = Counters.create ();
  }

let attach segment =
  let ep = { segment; ep_id = segment.next_ep; rx = (fun _ -> ()) } in
  segment.next_ep <- segment.next_ep + 1;
  segment.endpoints <- segment.endpoints @ [ ep ];
  ep

let detach ep =
  let seg = ep.segment in
  seg.endpoints <- List.filter (fun o -> o.ep_id <> ep.ep_id) seg.endpoints

let endpoint_id ep = ep.ep_id
let set_rx ep f = ep.rx <- f

(* splitmix64: a tiny, high-quality PRNG. Each segment owns one, seeded from
   its link id by default, so loss/corruption patterns are reproducible and
   independent of every other segment. *)
let next_u64 seg =
  seg.rng <- Int64.add seg.rng 0x9E3779B97F4A7C15L;
  let z = seg.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform seg =
  Int64.to_float (Int64.shift_right_logical (next_u64 seg) 11) /. 9007199254740992.0

let set_seed seg seed = seg.rng <- seed
let set_loss seg p = seg.loss <- p
let set_corrupt seg p = seg.corrupt <- p

let drop seg ~cause frame =
  Counters.incr seg.stats ("drop_" ^ cause);
  Trace.emit ~device:(Printf.sprintf "link%d" seg.link_id) ~what:"drop" ~port:cause frame

let send ep frame =
  let seg = ep.segment in
  if seg.cut then drop seg ~cause:"cut" frame
  else if Bytes.length frame > seg.mtu then drop seg ~cause:"mtu" frame
  else
    List.iter
      (fun other ->
        if other.ep_id <> ep.ep_id then
          Event_queue.schedule seg.eq ~delay_ns:seg.latency_ns (fun () ->
              if seg.cut then drop seg ~cause:"cut" frame
              else if seg.loss > 0.0 && uniform seg < seg.loss then
                drop seg ~cause:"loss" frame
              else if seg.corrupt > 0.0 && uniform seg < seg.corrupt then
                (* modelled as the receiving NIC failing the CRC check *)
                drop seg ~cause:"corrupt" frame
              else begin
                seg.delivered <- seg.delivered + 1;
                other.rx frame
              end))
      seg.endpoints

let cut segment =
  if not segment.cut then begin
    segment.cut <- true;
    segment.flaps <- segment.flaps + 1
  end

let restore segment = segment.cut <- false

let schedule_cut segment ~delay_ns =
  Event_queue.schedule segment.eq ~delay_ns (fun () -> cut segment)

let schedule_restore segment ~delay_ns =
  Event_queue.schedule segment.eq ~delay_ns (fun () -> restore segment)

let flap ?(cycles = 1) segment ~first_down_ns ~down_ns ~up_ns =
  let period = Int64.add down_ns up_ns in
  for i = 0 to cycles - 1 do
    let off = Int64.add first_down_ns (Int64.mul (Int64.of_int i) period) in
    schedule_cut segment ~delay_ns:off;
    schedule_restore segment ~delay_ns:(Int64.add off down_ns)
  done

let clear_faults segment =
  restore segment;
  segment.loss <- 0.0;
  segment.corrupt <- 0.0

let is_cut segment = segment.cut
let id segment = segment.link_id
let delivered segment = segment.delivered
let drop_count segment cause = Counters.get segment.stats ("drop_" ^ cause)

let dropped segment =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (Counters.to_list segment.stats)

let drop_stats segment = segment.stats
let flaps segment = segment.flaps
let mtu segment = segment.mtu
