(** A global packet/event tracer, disabled by default. Tests and the NM
    debugger enable it to observe the data plane; rx/tx events record the
    frame's protocol signature (e.g. ["eth.ip.gre.ip.icmp"]). *)

type event = { seq : int; device : string; what : string; port : string; detail : string }

val enabled : bool ref
val clear : unit -> unit

val set_limit : int -> unit
(** Caps the in-memory buffer (default 100_000 events). Once full, the
    oldest events are dropped and counted in {!dropped}. *)

val get_limit : unit -> int

val dropped : unit -> int
(** Events discarded (oldest first) since the last {!clear}. *)

val emit : device:string -> what:string -> ?port:string -> bytes -> unit
val with_trace : (unit -> 'a) -> 'a
(** Runs the thunk with tracing on (cleared first), restoring the flag. *)

val get : unit -> event list
val pp_event : event Fmt.t
val dump : unit Fmt.t
