(* The forwarding pipeline: Ethernet (host and switch with VLAN/QinQ), ARP,
   IPv4 with policy routing, GRE/IP-IP tunnelling, MPLS label switching and
   local UDP/ICMP delivery. [activate dev] installs the pipeline as the
   device's receive dispatch; it must be called once per device. *)

open Packet
open Device

let max_encap_depth = 8

let count dev name = Counters.incr dev.dev_counters name

(* Raw transmit out of a physical port. *)
let transmit dev port_index frame =
  let p = dev.ports.(port_index) in
  if dev.dev_up && p.port_up then
    match p.port_endpoint with
    | Some ep ->
        Counters.incr p.port_counters "tx_frames";
        Counters.incr ~by:(Bytes.length frame) p.port_counters "tx_bytes";
        Trace.emit ~device:dev.dev_name ~what:"tx" ~port:p.port_name frame;
        Link.send ep frame
    | None -> Counters.incr p.port_counters "tx_no_link"
  else Counters.incr p.port_counters "tx_down"

(* --- ARP ------------------------------------------------------------- *)

let arp_send dev port_index arp =
  let p = dev.ports.(port_index) in
  let dst =
    match arp.Arp_pkt.op with
    | Arp_pkt.Request -> Mac_addr.broadcast
    | Arp_pkt.Reply -> arp.Arp_pkt.target_mac
  in
  let frame =
    Ethernet.encode
      { Ethernet.dst; src = p.port_mac; ethertype = Ethertype.Arp }
      (Arp_pkt.encode arp)
  in
  transmit dev port_index frame

let arp_resolve dev ~port_index ~src_ip via k =
  match Hashtbl.find_opt dev.arp.arp_cache via with
  | Some mac -> k mac
  | None ->
      count dev "arp_requests";
      let waiters =
        match Hashtbl.find_opt dev.arp.arp_pending via with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace dev.arp.arp_pending via l;
            (* unanswered resolutions expire: queued packets are dropped
               rather than released stale much later (as Linux's neighbour
               queue does) *)
            Event_queue.schedule dev.eq ~delay_ns:1_000_000L (fun () ->
                match Hashtbl.find_opt dev.arp.arp_pending via with
                | Some l' when l' == l ->
                    Hashtbl.remove dev.arp.arp_pending via;
                    count dev "arp_expired"
                | _ -> ());
            l
      in
      waiters := k :: !waiters;
      let p = dev.ports.(port_index) in
      arp_send dev port_index
        {
          Arp_pkt.op = Arp_pkt.Request;
          sender_mac = p.port_mac;
          sender_ip = src_ip;
          target_mac = Mac_addr.of_int 0;
          target_ip = via;
        }

let arp_input dev ~port_index payload =
  match Arp_pkt.decode payload with
  | exception Arp_pkt.Bad_header _ -> count dev "arp_bad"
  | arp -> (
      (* Learn the sender mapping opportunistically. *)
      if not (Ipv4_addr.equal arp.Arp_pkt.sender_ip Ipv4_addr.any) then begin
        Hashtbl.replace dev.arp.arp_cache arp.Arp_pkt.sender_ip arp.Arp_pkt.sender_mac;
        match Hashtbl.find_opt dev.arp.arp_pending arp.Arp_pkt.sender_ip with
        | Some waiters ->
            let ws = !waiters in
            Hashtbl.remove dev.arp.arp_pending arp.Arp_pkt.sender_ip;
            List.iter (fun k -> k arp.Arp_pkt.sender_mac) ws
        | None -> ()
      end;
      let answer () =
        let p = dev.ports.(port_index) in
        arp_send dev port_index
          {
            Arp_pkt.op = Arp_pkt.Reply;
            sender_mac = p.port_mac;
            sender_ip = arp.Arp_pkt.target_ip;
            target_mac = arp.Arp_pkt.sender_mac;
            target_ip = arp.Arp_pkt.sender_ip;
          }
      in
      match arp.Arp_pkt.op with
      | Arp_pkt.Request when is_local_addr dev arp.Arp_pkt.target_ip -> answer ()
      | Arp_pkt.Request
        when dev.proxy_arp && dev.ip_forward
             && (* proxy-ARP: answer for addresses we can route towards via a
                   different interface than the one the request came in on *)
             (match lookup_route dev arp.Arp_pkt.target_ip with
             | Some r -> r.rt_dev <> Some dev.ports.(port_index).port_name
             | None -> false) ->
          answer ()
      | Arp_pkt.Request | Arp_pkt.Reply -> ())

(* --- IP output ------------------------------------------------------- *)

(* Transmit an IP packet (or MPLS-labelled packet) out of a physical
   interface, resolving the next hop with ARP. *)
let xmit_on_phys dev ~port_index ~iface ~via ~ethertype packet =
  if not (policer_admit dev iface (Bytes.length packet)) then
    count dev "policer_drop"
  else
    let src_ip = match primary_addr iface with Some a -> a | None -> Ipv4_addr.any in
    arp_resolve dev ~port_index ~src_ip via (fun mac ->
        let p = dev.ports.(port_index) in
        Counters.incr iface.if_counters "tx_packets";
        Counters.incr ~by:(Bytes.length packet) iface.if_counters "tx_bytes";
        if Ethertype.equal ethertype Ethertype.Mpls_unicast then begin
          Counters.incr iface.if_counters "tx_mpls";
          Counters.incr ~by:(Bytes.length packet) iface.if_counters "tx_mpls_bytes"
        end;
        transmit dev port_index
          (Ethernet.encode { Ethernet.dst = mac; src = p.port_mac; ethertype } packet))

let rec route_and_xmit dev ~depth ?in_iface (hdr : Ipv4.t) payload =
  if depth > max_encap_depth then count dev "encap_loop_drop"
  else if is_local_addr dev hdr.Ipv4.dst then local_deliver dev ~depth hdr payload
  else
    match lookup_route dev ?in_iface hdr.Ipv4.dst with
    | None ->
        count dev "no_route_drop";
        Trace.emit ~device:dev.dev_name ~what:"no-route"
          (Bytes.of_string (Ipv4_addr.to_string hdr.Ipv4.dst))
    | Some route -> (
        match route.rt_mpls with
        | Some key -> mpls_impose dev ~depth key (Ipv4.encode hdr payload)
        | None -> (
            let egress =
              match route.rt_dev with
              | Some name -> find_iface dev name
              | None -> (
                  (* Derive the egress interface from the gateway address. *)
                  match route.rt_via with
                  | Some via ->
                      List.find_opt
                        (fun i ->
                          i.if_up && List.exists (fun (_, p) -> Prefix.mem via p) i.if_addrs)
                        dev.ifaces
                  | None -> None)
            in
            match egress with
            | None -> count dev "no_egress_drop"
            | Some iface when not iface.if_up -> count dev "iface_down_drop"
            | Some iface -> (
                match iface.if_kind with
                | Phys port_index ->
                    let via =
                      match route.rt_via with Some v -> v | None -> hdr.Ipv4.dst
                    in
                    xmit_on_phys dev ~port_index ~iface ~via ~ethertype:Ethertype.Ipv4
                      (Ipv4.encode hdr payload)
                | Tun tun -> tunnel_encap dev ~depth ~iface tun (Ipv4.encode hdr payload)
                | Loopback -> local_deliver dev ~depth hdr payload)))

and tunnel_encap dev ~depth ~iface tun inner =
  if not (policer_admit dev iface (Bytes.length inner)) then count dev "policer_drop"
  else begin
  let encapped =
    match tun.t_mode with
    | Ipip_mode -> Some (Ip_proto.Ipip, inner)
    | Esp_mode -> (
        match (tun.t_okey, tun.t_enc_out) with
        | Some spi, Some key ->
            tun.t_tx_seq <- Int32.add tun.t_tx_seq 1l;
            Some (Ip_proto.Esp, Esp.encode ~key { Esp.spi; seq = tun.t_tx_seq } inner)
        | _ ->
            (* no SA established: nothing leaves in the clear — and nothing
               was transmitted, so tx_packets must not count it *)
            Counters.incr iface.if_counters "tx_no_sa_drop";
            None)
    | Gre_mode ->
        let seq =
          if tun.t_oseq then begin
            tun.t_tx_seq <- Int32.add tun.t_tx_seq 1l;
            Some tun.t_tx_seq
          end
          else None
        in
        let g = Gre.make ?key:tun.t_okey ?seq ~with_csum:tun.t_ocsum Ethertype.Ipv4 in
        Some (Ip_proto.Gre, Gre.encode g inner)
  in
  match encapped with
  | None -> ()
  | Some (proto, payload) ->
      Counters.incr iface.if_counters "tx_packets";
      Counters.incr ~by:(Bytes.length inner) iface.if_counters "tx_bytes";
      let outer =
        Ipv4.make ~tos:tun.t_tos ~ttl:tun.t_ttl ~proto ~src:tun.t_local ~dst:tun.t_remote ()
      in
      route_and_xmit dev ~depth:(depth + 1) outer payload
  end

and mpls_impose dev ~depth key ip_bytes =
  match Hashtbl.find_opt dev.mpls.nhlfe_table key with
  | None -> count dev "mpls_no_nhlfe_drop"
  | Some nh ->
      let stack = List.map (fun l -> Mpls.entry ~ttl:64 l) nh.nh_push in
      if stack = [] then count dev "mpls_empty_push_drop"
      else mpls_xmit dev ~depth nh (Mpls.encode stack ip_bytes)

and mpls_xmit dev ~depth nh packet =
  if depth > max_encap_depth then count dev "encap_loop_drop"
  else
    match find_iface dev nh.nh_dev with
    | Some ({ if_kind = Phys port_index; _ } as iface) ->
        xmit_on_phys dev ~port_index ~iface ~via:nh.nh_via ~ethertype:Ethertype.Mpls_unicast
          packet
    | Some _ | None -> count dev "mpls_bad_dev_drop"

(* --- local delivery -------------------------------------------------- *)

and local_deliver dev ~depth (hdr : Ipv4.t) payload =
  count dev "ip_local_in";
  match hdr.Ipv4.proto with
  | Ip_proto.Icmp -> icmp_input dev ~depth hdr payload
  | Ip_proto.Udp -> (
      match Udp.decode ~src:hdr.Ipv4.src ~dst:hdr.Ipv4.dst payload with
      | exception Udp.Bad_header _ -> count dev "udp_bad"
      | udp, data -> (
          match Hashtbl.find_opt dev.udp_socks udp.Udp.dst_port with
          | Some handler -> handler ~src:hdr.Ipv4.src ~src_port:udp.Udp.src_port data
          | None -> count dev "udp_no_sock"))
  | Ip_proto.Gre -> gre_input dev ~depth hdr payload
  | Ip_proto.Ipip -> ipip_input dev ~depth hdr payload
  | Ip_proto.Esp -> esp_input dev ~depth hdr payload
  | Ip_proto.Other _ -> count dev "ip_unknown_proto"

and icmp_input dev ~depth hdr payload =
  match Icmp.decode payload with
  | exception Icmp.Bad_header _ -> count dev "icmp_bad"
  | msg, data -> (
      (match dev.icmp_hook with Some f -> f hdr msg | None -> ());
      match msg with
      | Icmp.Echo_request { id; seq } ->
          let reply = Icmp.encode (Icmp.Echo_reply { id; seq }) data in
          let rhdr =
            Ipv4.make ~proto:Ip_proto.Icmp ~src:hdr.Ipv4.dst ~dst:hdr.Ipv4.src ()
          in
          route_and_xmit dev ~depth:(depth + 1) rhdr reply
      | Icmp.Echo_reply _ | Icmp.Dest_unreachable _ | Icmp.Time_exceeded -> ())

and find_tunnel dev ~mode ~local ~remote =
  List.find_opt
    (fun i ->
      i.if_up
      &&
      match i.if_kind with
      | Tun t ->
          t.t_mode = mode && Ipv4_addr.equal t.t_local local && Ipv4_addr.equal t.t_remote remote
      | Phys _ | Loopback -> false)
    dev.ifaces

and gre_input dev ~depth hdr payload =
  match find_tunnel dev ~mode:Gre_mode ~local:hdr.Ipv4.dst ~remote:hdr.Ipv4.src with
  | None -> count dev "gre_no_tunnel_drop"
  | Some iface -> (
      let tun = match iface.if_kind with Tun t -> t | _ -> assert false in
      match Gre.decode payload with
      | exception Gre.Bad_header _ ->
          Counters.incr iface.if_counters "rx_errors";
          count dev "gre_bad_drop"
      | g, inner ->
          let key_ok =
            match (tun.t_ikey, g.Gre.key) with
            | None, None -> true
            | Some k, Some k' -> Int32.equal k k'
            | Some _, None | None, Some _ -> false
          in
          let csum_ok = (not tun.t_icsum) || g.Gre.with_csum in
          let seq_ok =
            if not tun.t_iseq then true
            else
              match g.Gre.seq with
              | None -> false
              | Some s -> (
                  match tun.t_rx_seq with
                  | Some prev when Int32.unsigned_compare s prev <= 0 -> false
                  | Some _ | None ->
                      tun.t_rx_seq <- Some s;
                      true)
          in
          if not (key_ok && csum_ok && seq_ok) then begin
            Counters.incr iface.if_counters "rx_errors";
            count dev "gre_check_drop"
          end
          else if not (Ethertype.equal g.Gre.protocol Ethertype.Ipv4) then
            count dev "gre_proto_drop"
          else begin
            Counters.incr iface.if_counters "rx_packets";
            Counters.incr ~by:(Bytes.length inner) iface.if_counters "rx_bytes";
            ip_input_bytes dev ~depth:(depth + 1) ~in_iface:iface.if_name inner
          end)

and esp_input dev ~depth hdr payload =
  match find_tunnel dev ~mode:Esp_mode ~local:hdr.Ipv4.dst ~remote:hdr.Ipv4.src with
  | None -> count dev "esp_no_tunnel_drop"
  | Some iface -> (
      let tun = match iface.if_kind with Tun t -> t | _ -> assert false in
      match (tun.t_ikey, tun.t_enc_in) with
      | Some spi, Some key -> (
          match Esp.decode ~key payload with
          | exception Esp.Bad_packet _ ->
              Counters.incr iface.if_counters "rx_errors";
              count dev "esp_auth_drop"
          | esp, inner ->
              if not (Int32.equal esp.Esp.spi spi) then begin
                Counters.incr iface.if_counters "rx_errors";
                count dev "esp_spi_drop"
              end
              else begin
                Counters.incr iface.if_counters "rx_packets";
                Counters.incr ~by:(Bytes.length inner) iface.if_counters "rx_bytes";
                ip_input_bytes dev ~depth:(depth + 1) ~in_iface:iface.if_name inner
              end)
      | _ -> count dev "esp_no_sa_drop")

and ipip_input dev ~depth hdr payload =
  match find_tunnel dev ~mode:Ipip_mode ~local:hdr.Ipv4.dst ~remote:hdr.Ipv4.src with
  | None -> count dev "ipip_no_tunnel_drop"
  | Some iface ->
      Counters.incr iface.if_counters "rx_packets";
      Counters.incr ~by:(Bytes.length payload) iface.if_counters "rx_bytes";
      ip_input_bytes dev ~depth:(depth + 1) ~in_iface:iface.if_name payload

(* --- IP input --------------------------------------------------------- *)

and ip_input_bytes dev ~depth ~in_iface buf =
  match Ipv4.decode buf with
  | exception Ipv4.Bad_header _ -> count dev "ip_bad_drop"
  | hdr, payload -> ip_input dev ~depth ~in_iface hdr payload

and ip_input dev ~depth ~in_iface (hdr : Ipv4.t) payload =
  if
    List.exists
      (fun (src, dst) -> Prefix.mem hdr.Ipv4.src src && Prefix.mem hdr.Ipv4.dst dst)
      dev.ip_drops
  then count dev "ip_filtered_drop"
  else if is_local_addr dev hdr.Ipv4.dst then local_deliver dev ~depth hdr payload
  else if not dev.ip_forward then count dev "ip_not_forwarding_drop"
  else if hdr.Ipv4.ttl <= 1 then begin
    count dev "ttl_exceeded";
    (* Send time-exceeded back towards the source to support traceroute-style
       debugging by the NM. *)
    match local_addrs dev with
    | [] -> ()
    | src :: _ ->
        let te = Icmp.encode Icmp.Time_exceeded (Bytes.sub payload 0 (min 8 (Bytes.length payload))) in
        let rhdr = Ipv4.make ~proto:Ip_proto.Icmp ~src ~dst:hdr.Ipv4.src () in
        route_and_xmit dev ~depth:(depth + 1) rhdr te
  end
  else begin
    count dev "ip_forwarded";
    route_and_xmit dev ~depth ~in_iface { hdr with Ipv4.ttl = hdr.Ipv4.ttl - 1 } payload
  end

(* --- MPLS input -------------------------------------------------------- *)

let mpls_input dev ~in_iface buf =
  if not dev.mpls.mpls_enabled then count dev "mpls_disabled_drop"
  else
    match Mpls.decode buf with
    | exception Mpls.Bad_header _ -> count dev "mpls_bad_drop"
    | [], _ -> count dev "mpls_bad_drop"
    | top :: rest_stack, ip_bytes -> (
        let space = mpls_labelspace dev in_iface in
        if space < 0 then count dev "mpls_no_labelspace_drop"
        else
          match Hashtbl.find_opt dev.mpls.ilm_table (top.Mpls.label, space) with
          | None -> count dev "mpls_no_ilm_drop"
          | Some { ilm_xc = None; _ } -> count dev "mpls_no_xc_drop"
          | Some { ilm_xc = Some key; _ } -> (
              match Hashtbl.find_opt dev.mpls.nhlfe_table key with
              | None -> count dev "mpls_no_nhlfe_drop"
              | Some nh -> (
                  if top.Mpls.ttl <= 1 then count dev "mpls_ttl_drop"
                  else
                    let pushed =
                      List.map (fun l -> Mpls.entry ~ttl:(top.Mpls.ttl - 1) l) nh.nh_push
                    in
                    let stack = pushed @ rest_stack in
                    match (stack, nh.nh_dev) with
                    | [], "local" ->
                        (* Pop to the local IP stack ("deliver" instruction). *)
                        count dev "mpls_delivered";
                        ip_input_bytes dev ~depth:0 ~in_iface:"mpls0" ip_bytes
                    | [], _ -> (
                        (* Penultimate-style direct IP forward to the NHLFE
                           next hop, bypassing the IP routing table. *)
                        match find_iface dev nh.nh_dev with
                        | Some ({ if_kind = Phys port_index; _ } as iface) ->
                            count dev "mpls_switched";
                            xmit_on_phys dev ~port_index ~iface ~via:nh.nh_via
                              ~ethertype:Ethertype.Ipv4 ip_bytes
                        | Some _ | None -> count dev "mpls_bad_dev_drop")
                    | stack, _ ->
                        count dev "mpls_switched";
                        mpls_xmit dev ~depth:0 nh (Mpls.encode stack ip_bytes))))

(* --- Ethernet switching (learning bridge with 802.1Q and QinQ) -------- *)

let default_vid = 1

(* Strips the outer 802.1Q tag if present, returning the carried vid. *)
let split_outer_tag frame =
  let r = Cursor.reader frame in
  let eth = Ethernet.read r in
  match eth.Ethernet.ethertype with
  | Ethertype.Vlan | Ethertype.Qinq ->
      let tag = Vlan.read r in
      let inner =
        Ethernet.encode { eth with Ethernet.ethertype = tag.Vlan.inner } (Cursor.rest r)
      in
      (Some tag.Vlan.vid, inner)
  | _ -> (None, frame)

let push_outer_tag frame vid =
  let r = Cursor.reader frame in
  let eth = Ethernet.read r in
  let w = Cursor.writer () in
  Ethernet.write w { eth with Ethernet.ethertype = Ethertype.Vlan };
  Vlan.write w (Vlan.make ~vid eth.Ethernet.ethertype);
  Cursor.wbytes w (Cursor.rest r);
  Cursor.contents w

(* Ingress classification: returns the vlan id and the canonical (outer-
   untagged) frame, or None to drop. *)
let classify_ingress port frame =
  match port.port_mode with
  | No_vlan -> (
      match split_outer_tag frame with
      | None, f -> Some (default_vid, f)
      | Some _, _ -> None (* plain switch ports drop tagged frames *))
  | Access vid -> (
      match split_outer_tag frame with
      | None, f -> Some (vid, f)
      | Some v, f when v = vid -> Some (vid, f)
      | Some _, _ -> None)
  | Dot1q_tunnel vid ->
      (* QinQ: the whole customer frame, tags included, is payload. *)
      Some (vid, frame)
  | Trunk { allowed; native } -> (
      match split_outer_tag frame with
      | Some v, f when allowed = [] || List.mem v allowed -> Some (v, f)
      | Some _, _ -> None
      | None, _ -> ( match native with Some v -> Some (v, frame) | None -> None))

(* Egress encapsulation for a canonical frame in [vid]; None drops. *)
let egress_frame dev port vid frame =
  let check_mtu f =
    let payload = Bytes.length f - Ethernet.header_size in
    let mtu = (Device.vlan_def dev vid).vd_mtu in
    if payload > mtu + Vlan.size then None else Some f
  in
  match port.port_mode with
  | No_vlan -> if vid = default_vid then Some frame else None
  | Access v | Dot1q_tunnel v -> if v = vid then Some frame else None
  | Trunk { allowed; native } ->
      if not (allowed = [] || List.mem vid allowed) then None
      else if native = Some vid && not dev.sw.tag_native then Some frame
      else (
        match check_mtu (push_outer_tag frame vid) with
        | Some f ->
            Counters.incr port.port_counters "tagged_frames";
            Some f
        | None -> None)

let switch_forward dev ~in_port frame =
  let p = dev.ports.(in_port) in
  match classify_ingress p frame with
  | None -> Counters.incr p.port_counters "rx_vlan_drop"
  | Some (vid, canonical) -> (
      let r = Cursor.reader canonical in
      let eth = Ethernet.read r in
      Hashtbl.replace dev.sw.fdb (vid, eth.Ethernet.src) in_port;
      let send_to out_port =
        if out_port <> in_port && dev.ports.(out_port).port_up then
          match egress_frame dev dev.ports.(out_port) vid canonical with
          | Some f -> transmit dev out_port f
          | None -> Counters.incr dev.ports.(out_port).port_counters "tx_mtu_or_vlan_drop"
      in
      match
        if Mac_addr.is_broadcast eth.Ethernet.dst || Mac_addr.is_multicast eth.Ethernet.dst
        then None
        else Hashtbl.find_opt dev.sw.fdb (vid, eth.Ethernet.dst)
      with
      | Some out_port -> send_to out_port
      | None -> Array.iter (fun port -> send_to port.port_index) dev.ports)

(* --- top-level receive -------------------------------------------------- *)

let eth_input dev ~in_port frame =
  let p = dev.ports.(in_port) in
  Counters.incr p.port_counters "rx_frames";
  Counters.incr ~by:(Bytes.length frame) p.port_counters "rx_bytes";
  Trace.emit ~device:dev.dev_name ~what:"rx" ~port:p.port_name frame;
  match Ethernet.read (Cursor.reader frame) with
  | exception Cursor.Truncated -> Counters.incr p.port_counters "rx_bad"
  | eth ->
      let payload () =
        Bytes.sub frame Ethernet.header_size (Bytes.length frame - Ethernet.header_size)
      in
      if Ethertype.equal eth.Ethernet.ethertype Ethertype.Mgmt then
        (* Management frames go to the management agent on every device;
           they are never switched or routed (CONMan §II-A). *)
        match dev.mgmt_hook with
        | Some f -> f ~in_port ~src:eth.Ethernet.src (payload ())
        | None -> count dev "mgmt_no_agent"
      else if dev.sw.switching then switch_forward dev ~in_port frame
      else if
        Mac_addr.equal eth.Ethernet.dst p.port_mac || Mac_addr.is_broadcast eth.Ethernet.dst
      then begin
        let in_iface = p.port_name in
        let count_iface pkts byts =
          match find_iface dev in_iface with
          | Some i ->
              let pl = payload () in
              Counters.incr i.if_counters pkts;
              Counters.incr ~by:(Bytes.length pl) i.if_counters byts
          | None -> ()
        in
        match eth.Ethernet.ethertype with
        | Ethertype.Arp -> arp_input dev ~port_index:in_port (payload ())
        | Ethertype.Ipv4 ->
            count_iface "rx_packets" "rx_bytes";
            ip_input_bytes dev ~depth:0 ~in_iface (payload ())
        | Ethertype.Mpls_unicast ->
            count_iface "rx_mpls" "rx_mpls_bytes";
            mpls_input dev ~in_iface (payload ())
        | Ethertype.Vlan | Ethertype.Qinq | Ethertype.Mgmt | Ethertype.Other _ ->
            count dev "eth_unknown_type"
      end
      else Counters.incr p.port_counters "rx_other_dst"

let activate dev =
  dev.rx_dispatch <-
    (fun in_port frame -> if dev.dev_up then eth_input dev ~in_port frame)

(* --- local send helpers -------------------------------------------------- *)

let ip_send dev hdr payload = route_and_xmit dev ~depth:0 hdr payload

let udp_send dev ~src ~dst ~src_port ~dst_port data =
  let payload = Udp.encode ~src ~dst { Udp.src_port; dst_port } data in
  ip_send dev (Ipv4.make ~proto:Ip_proto.Udp ~src ~dst ()) payload

let icmp_echo dev ~src ~dst ~id ~seq data =
  let payload = Icmp.encode (Icmp.Echo_request { id; seq }) data in
  ip_send dev (Ipv4.make ~proto:Ip_proto.Icmp ~src ~dst ()) payload
