(* Named monotonic counters, used for the performance-reporting part of the
   module abstraction and for debugging. *)

type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 8

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t name (ref by)

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t = Hashtbl.reset t

let snapshot = to_list

(* Delta semantics for telemetry scrapes: counters are monotonic, so a
   scrape-to-scrape delta is [after - before], with names absent from
   [before] counting from zero. Names absent from [after] (a reset
   device) are dropped rather than reported negative. *)
let delta ~before ~after =
  List.filter_map
    (fun (name, v_after) ->
      let v_before = match List.assoc_opt name before with Some v -> v | None -> 0 in
      if v_after >= v_before then Some (name, v_after - v_before) else Some (name, 0))
    after

let pp ppf t =
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.comma (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.int))
    (to_list t)
