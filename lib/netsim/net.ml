(* A network: an event queue plus devices and link segments, with helpers to
   wire topologies and run the simulation to quiescence. *)

type edge = {
  edge_name : string;
  segment : Link.segment;
  attachments : (Device.t * int) list; (* (device, port index) *)
}

type t = {
  eq : Event_queue.t;
  mutable devices : Device.t list;
  mutable edges : edge list;
}

let create () = { eq = Event_queue.create (); devices = []; edges = [] }

let eq t = t.eq

let add_device ?(switching = false) t ~id ~name =
  let dev = Device.create ~switching ~eq:t.eq ~id ~name () in
  Datapath.activate dev;
  t.devices <- t.devices @ [ dev ];
  dev

let devices t = t.devices

let find_device t name = List.find_opt (fun d -> d.Device.dev_name = name) t.devices

let find_device_exn t name =
  match find_device t name with
  | Some d -> d
  | None -> failwith ("Net.find_device: no device " ^ name)

let device_by_id t id = List.find_opt (fun d -> d.Device.dev_id = id) t.devices

(* A broadcast segment with the given attachments; a two-element list is a
   point-to-point cable. *)
let lan ?latency_ns ?mtu ?(name = "lan") t attachments =
  let segment = Link.create_segment ?latency_ns ?mtu t.eq in
  List.iter (fun (d, p) -> Device.attach_port d p (Link.attach segment)) attachments;
  t.edges <- t.edges @ [ { edge_name = name; segment; attachments } ];
  segment

let connect ?latency_ns ?mtu ?name t (a, pa) (b, pb) =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s/%d--%s/%d" a.Device.dev_name pa b.Device.dev_name pb
  in
  lan ?latency_ns ?mtu ~name t [ (a, pa); (b, pb) ]

let edges t = t.edges

let find_segment t name =
  List.find_map (fun e -> if e.edge_name = name then Some e.segment else None) t.edges

let find_segment_exn t name =
  match find_segment t name with
  | Some s -> s
  | None -> failwith ("Net.find_segment: no segment " ^ name)

(* Physical neighbours of a device port: every other attachment that shares
   a segment with it. This is what each device's management agent reports to
   the NM as its physical connectivity. *)
let neighbours t dev port_index =
  List.concat_map
    (fun e ->
      if List.exists (fun (d, p) -> d == dev && p = port_index) e.attachments then
        List.filter (fun (d, p) -> not (d == dev && p = port_index)) e.attachments
      else [])
    t.edges

let run ?max_events t = Event_queue.run ?max_events t.eq
let run_until ?max_events ?advance t ~deadline =
  Event_queue.run_until ?max_events ?advance t.eq ~deadline
