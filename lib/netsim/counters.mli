(** Named monotonic counters — the per-pipe/per-device statistics behind
    the performance-reporting part of the module abstraction. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
(** 0 for counters never incremented. *)

val to_list : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit

val snapshot : t -> (string * int) list
(** Alias of {!to_list}: a point-in-time scrape. *)

val delta : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Scrape-to-scrape difference of two monotonic snapshots. Names absent
    from [before] count from zero; a name whose value went backwards (a
    reset counter) reports 0 instead of a negative delta. *)

val pp : t Fmt.t
