(** Physical links: broadcast segments with attachable endpoints and
    first-class fault injection (seeded random loss and corruption,
    scheduled cut/restore flapping, per-cause drop counters). *)

type endpoint
type segment

val create_segment : ?latency_ns:int64 -> ?mtu:int -> Event_queue.t -> segment
val attach : segment -> endpoint

val detach : endpoint -> unit
(** Removes the endpoint from its segment; frames are no longer delivered
    to it. Endpoint ids are assigned monotonically, so attach after detach
    never reuses an id. *)

val endpoint_id : endpoint -> int
val set_rx : endpoint -> (bytes -> unit) -> unit
val send : endpoint -> bytes -> unit

(** {1 Fault injection} *)

val cut : segment -> unit
(** Cuts the segment (idempotent); counts one flap per down transition. *)

val restore : segment -> unit
val is_cut : segment -> bool

val schedule_cut : segment -> delay_ns:int64 -> unit
val schedule_restore : segment -> delay_ns:int64 -> unit

val flap : ?cycles:int -> segment -> first_down_ns:int64 -> down_ns:int64 -> up_ns:int64 -> unit
(** Schedules [cycles] cut/restore pairs on the event queue: down at
    [first_down_ns] from now for [down_ns], up for [up_ns], repeating. *)

val set_seed : segment -> int64 -> unit
(** Reseeds the segment's PRNG (defaults to the link id), making loss and
    corruption patterns reproducible per segment. *)

val set_loss : segment -> float -> unit
(** Probability in [0,1] that a frame delivery is silently lost. *)

val set_corrupt : segment -> float -> unit
(** Probability in [0,1] that a delivery is corrupted in flight; modelled
    as the receiver's CRC check dropping the frame. *)

val clear_faults : segment -> unit
(** Restores the segment and zeroes the loss/corruption probabilities.
    Already-scheduled cut/restore events still fire; callers forcing
    quiescence should clear faults after the last scheduled event. *)

(** {1 Statistics} *)

val id : segment -> int
val delivered : segment -> int

val dropped : segment -> int
(** Total drops, all causes. *)

val drop_count : segment -> string -> int
(** Drops for one cause: ["cut"], ["mtu"], ["loss"] or ["corrupt"]. *)

val drop_stats : segment -> Counters.t
(** The underlying per-cause counters ([drop_cut], [drop_mtu], ...). *)

val flaps : segment -> int
(** Number of up->down transitions this segment has seen. *)

val mtu : segment -> int
