(* Device state: ports, interfaces, routing, ARP, MPLS, VLAN switching and
   UDP/ICMP endpoints. The forwarding pipeline lives in {!Datapath}; this
   module only defines state and its accessors/mutators. *)

open Packet

type tunnel_mode = Gre_mode | Ipip_mode | Esp_mode

type tunnel = {
  mutable t_local : Ipv4_addr.t;
  mutable t_remote : Ipv4_addr.t;
  mutable t_ikey : int32 option;
  mutable t_okey : int32 option;
  mutable t_icsum : bool;
  mutable t_ocsum : bool;
  mutable t_iseq : bool;
  mutable t_oseq : bool;
  mutable t_ttl : int;
  mutable t_tos : int;
  t_mode : tunnel_mode;
  mutable t_tx_seq : int32;
  mutable t_rx_seq : int32 option;
  (* ESP keying material (provided by a control module such as IKE) *)
  mutable t_enc_in : int32 option;
  mutable t_enc_out : int32 option;
}

type iface_kind = Phys of int (* port index *) | Tun of tunnel | Loopback

type policer = {
  mutable pol_rate_bps : int; (* token refill rate *)
  mutable pol_burst : int; (* bucket size, bytes *)
  mutable pol_tokens : float;
  mutable pol_last_ns : int64;
}

type iface = {
  if_name : string;
  if_kind : iface_kind;
  mutable if_addrs : (Ipv4_addr.t * Prefix.t) list;
  mutable if_up : bool;
  mutable if_policer : policer option; (* egress rate enforcement *)
  if_counters : Counters.t;
}

type trunk_config = { mutable allowed : int list; mutable native : int option }

type vlan_mode = No_vlan | Access of int | Trunk of trunk_config | Dot1q_tunnel of int

type port = {
  port_index : int;
  mutable port_name : string;
  port_mac : Mac_addr.t;
  mutable port_endpoint : Link.endpoint option;
  mutable port_up : bool;
  mutable port_mode : vlan_mode;
  port_counters : Counters.t;
}

type route = {
  rt_dst : Prefix.t;
  rt_via : Ipv4_addr.t option;
  rt_dev : string option;
  rt_mpls : int option; (* NHLFE key for label imposition *)
}

type rule_sel = To_prefix of Prefix.t | From_iface of string | Match_all

type rule = { rl_sel : rule_sel; rl_table : string; rl_prio : int }

type nhlfe = {
  nh_key : int;
  nh_mtu : int;
  nh_push : int list;
  nh_dev : string;
  nh_via : Ipv4_addr.t;
}

type ilm = { ilm_label : int; ilm_space : int; mutable ilm_xc : int option }

type mpls_state = {
  mutable mpls_enabled : bool;
  labelspace_of_iface : (string, int) Hashtbl.t;
  ilm_table : (int * int, ilm) Hashtbl.t;
  nhlfe_table : (int, nhlfe) Hashtbl.t;
  mutable next_nhlfe_key : int;
}

type vlan_def = { mutable vd_name : string; mutable vd_mtu : int }

type switch_state = {
  mutable switching : bool;
  fdb : (int * Mac_addr.t, int) Hashtbl.t; (* (vlan, mac) -> port *)
  vlans : (int, vlan_def) Hashtbl.t;
  mutable tag_native : bool;
}

type arp_state = {
  arp_cache : (Ipv4_addr.t, Mac_addr.t) Hashtbl.t;
  arp_pending : (Ipv4_addr.t, (Mac_addr.t -> unit) list ref) Hashtbl.t;
}

type udp_handler = src:Ipv4_addr.t -> src_port:int -> bytes -> unit

type t = {
  dev_id : string; (* globally unique, topology independent (CONMan §II) *)
  dev_name : string;
  dev_index : int;
  eq : Event_queue.t;
  mutable dev_up : bool; (* false while crashed: no rx, no tx *)
  mutable ports : port array;
  mutable ifaces : iface list;
  mutable ip_forward : bool;
  mutable proxy_arp : bool;
  mutable loaded_modules : string list; (* insmod/modprobe emulation *)
  mutable rt_table_names : string list; (* registered policy tables *)
  mutable tables : (string * route list ref) list;
  mutable rules : rule list; (* sorted by priority *)
  mutable ip_drops : (Prefix.t * Prefix.t) list; (* (src, dst) filter rules *)
  mpls : mpls_state;
  sw : switch_state;
  arp : arp_state;
  udp_socks : (int, udp_handler) Hashtbl.t;
  mutable icmp_hook : (Ipv4.t -> Icmp.t -> unit) option;
  mutable mgmt_hook : (in_port:int -> src:Mac_addr.t -> bytes -> unit) option;
  dev_counters : Counters.t;
  mutable rx_dispatch : int -> bytes -> unit; (* set by Datapath.activate *)
}

let next_index = ref 0

let create ?(switching = false) ~eq ~id ~name () =
  incr next_index;
  let dev =
    {
      dev_id = id;
      dev_name = name;
      dev_index = !next_index;
      eq;
      dev_up = true;
      ports = [||];
      ifaces = [];
      ip_forward = false;
      proxy_arp = false;
      loaded_modules = [];
      rt_table_names = [ "main" ];
      tables = [ ("main", ref []) ];
      rules = [];
      ip_drops = [];
      mpls =
        {
          mpls_enabled = false;
          labelspace_of_iface = Hashtbl.create 4;
          ilm_table = Hashtbl.create 8;
          nhlfe_table = Hashtbl.create 8;
          next_nhlfe_key = 1;
        };
      sw = { switching; fdb = Hashtbl.create 16; vlans = Hashtbl.create 4; tag_native = false };
      arp = { arp_cache = Hashtbl.create 8; arp_pending = Hashtbl.create 4 };
      udp_socks = Hashtbl.create 4;
      icmp_hook = None;
      mgmt_hook = None;
      dev_counters = Counters.create ();
      rx_dispatch = (fun _ _ -> ());
    }
  in
  let lo =
    { if_name = "lo"; if_kind = Loopback; if_addrs = [ (Ipv4_addr.localhost, Prefix.of_string "127.0.0.0/8") ]; if_up = true; if_policer = None; if_counters = Counters.create () }
  in
  dev.ifaces <- [ lo ];
  dev

(* Ports ------------------------------------------------------------- *)

let add_port ?name dev =
  let index = Array.length dev.ports in
  let port_name = match name with Some n -> n | None -> Printf.sprintf "eth%d" index in
  let port =
    {
      port_index = index;
      port_name;
      port_mac = Mac_addr.make ~device:dev.dev_index ~port:index;
      port_endpoint = None;
      port_up = true;
      port_mode = No_vlan;
      port_counters = Counters.create ();
    }
  in
  dev.ports <- Array.append dev.ports [| port |];
  (* Physical ports automatically get an interface of the same name so the
     IP stack can address them. *)
  dev.ifaces <-
    dev.ifaces
    @ [ { if_name = port_name; if_kind = Phys index; if_addrs = []; if_up = true; if_policer = None; if_counters = Counters.create () } ];
  port

let port dev i = dev.ports.(i)

let port_by_name dev name =
  Array.to_seq dev.ports |> Seq.find (fun p -> p.port_name = name)

let attach_port dev i endpoint =
  let p = dev.ports.(i) in
  p.port_endpoint <- Some endpoint;
  Link.set_rx endpoint (fun frame -> dev.rx_dispatch i frame)

(* Interfaces -------------------------------------------------------- *)

let find_iface dev name = List.find_opt (fun i -> i.if_name = name) dev.ifaces

let find_iface_exn dev name =
  match find_iface dev name with
  | Some i -> i
  | None -> failwith (Printf.sprintf "%s: no such interface %s" dev.dev_name name)

let add_tunnel dev ~name ~mode ~local ~remote () =
  if find_iface dev name <> None then failwith (name ^ ": interface exists");
  let tun =
    {
      t_local = local;
      t_remote = remote;
      t_ikey = None;
      t_okey = None;
      t_icsum = false;
      t_ocsum = false;
      t_iseq = false;
      t_oseq = false;
      t_ttl = 64;
      t_tos = 0;
      t_mode = mode;
      t_tx_seq = 0l;
      t_rx_seq = None;
      t_enc_in = None;
      t_enc_out = None;
    }
  in
  let iface =
    { if_name = name; if_kind = Tun tun; if_addrs = []; if_up = false; if_policer = None; if_counters = Counters.create () }
  in
  dev.ifaces <- dev.ifaces @ [ iface ];
  iface

let remove_iface dev name = dev.ifaces <- List.filter (fun i -> i.if_name <> name) dev.ifaces

let del_addr dev ~iface ~addr =
  let i = find_iface_exn dev iface in
  i.if_addrs <- List.filter (fun (a, _) -> not (Ipv4_addr.equal a addr)) i.if_addrs

let local_addrs dev =
  List.concat_map (fun i -> if i.if_up then List.map fst i.if_addrs else []) dev.ifaces

let is_local_addr dev a = List.exists (Ipv4_addr.equal a) (local_addrs dev)

let iface_of_addr dev a =
  List.find_opt (fun i -> i.if_up && List.exists (fun (x, _) -> Ipv4_addr.equal x a) i.if_addrs) dev.ifaces

let primary_addr iface = match iface.if_addrs with (a, _) :: _ -> Some a | [] -> None

(* Routing ----------------------------------------------------------- *)

let register_table dev name =
  if not (List.mem_assoc name dev.tables) then begin
    dev.tables <- dev.tables @ [ (name, ref []) ];
    dev.rt_table_names <- dev.rt_table_names @ [ name ]
  end

let table_exn dev name =
  match List.assoc_opt name dev.tables with
  | Some t -> t
  | None -> failwith (Printf.sprintf "%s: no such routing table %s" dev.dev_name name)

let add_route dev ?(table = "main") route =
  register_table dev table;
  let t = table_exn dev table in
  t := route :: !t

let del_routes dev ?(table = "main") pred =
  match List.assoc_opt table dev.tables with
  | None -> ()
  | Some t -> t := List.filter (fun r -> not (pred r)) !t

(* Assigning an address also installs the connected route, as the Linux
   stack does. *)
let add_addr dev ~iface ~addr ~prefix =
  let i = find_iface_exn dev iface in
  i.if_addrs <- i.if_addrs @ [ (addr, prefix) ];
  i.if_up <- true;
  if Prefix.len prefix < 32 then
    add_route dev { rt_dst = prefix; rt_via = None; rt_dev = Some iface; rt_mpls = None }

let add_rule dev rule =
  dev.rules <- List.stable_sort (fun a b -> compare a.rl_prio b.rl_prio) (dev.rules @ [ rule ])

let del_rule dev pred = dev.rules <- List.filter (fun r -> not (pred r)) dev.rules

let lpm routes dst =
  List.fold_left
    (fun best r ->
      if Prefix.mem dst r.rt_dst then
        match best with
        | Some b when Prefix.len b.rt_dst >= Prefix.len r.rt_dst -> best
        | _ -> Some r
      else best)
    None routes

(* Route lookup honouring policy rules: first matching rule whose table
   contains a route wins; the main table is the fallback. *)
let lookup_route dev ?in_iface dst =
  let rule_matches r =
    match r.rl_sel with
    | Match_all -> true
    | To_prefix p -> Prefix.mem dst p
    | From_iface i -> ( match in_iface with Some n -> n = i | None -> false)
  in
  let rec try_rules = function
    | [] -> lpm !(table_exn dev "main") dst
    | r :: rest ->
        if rule_matches r then
          match List.assoc_opt r.rl_table dev.tables with
          | Some routes -> ( match lpm !routes dst with Some x -> Some x | None -> try_rules rest)
          | None -> try_rules rest
        else try_rules rest
  in
  try_rules dev.rules

(* MPLS -------------------------------------------------------------- *)

let mpls_set_labelspace dev ~iface ~space =
  Hashtbl.replace dev.mpls.labelspace_of_iface iface space

let mpls_labelspace dev iface =
  match Hashtbl.find_opt dev.mpls.labelspace_of_iface iface with Some s -> s | None -> -1

let mpls_add_ilm dev ~label ~space =
  let ilm = { ilm_label = label; ilm_space = space; ilm_xc = None } in
  Hashtbl.replace dev.mpls.ilm_table (label, space) ilm;
  ilm

let mpls_del_ilm dev ~label ~space = Hashtbl.remove dev.mpls.ilm_table (label, space)

let mpls_add_nhlfe dev ?(mtu = 1500) ~push ~dev_out ~via () =
  let key = dev.mpls.next_nhlfe_key in
  dev.mpls.next_nhlfe_key <- key + 1;
  let n = { nh_key = key; nh_mtu = mtu; nh_push = push; nh_dev = dev_out; nh_via = via } in
  Hashtbl.replace dev.mpls.nhlfe_table key n;
  n

let mpls_del_nhlfe dev key = Hashtbl.remove dev.mpls.nhlfe_table key

let mpls_xc dev ~label ~space ~nhlfe_key =
  match Hashtbl.find_opt dev.mpls.ilm_table (label, space) with
  | Some ilm -> ilm.ilm_xc <- Some nhlfe_key
  | None -> failwith "mpls_xc: no such ILM"

(* VLAN / switch ------------------------------------------------------ *)

let vlan_def dev vid =
  match Hashtbl.find_opt dev.sw.vlans vid with
  | Some d -> d
  | None ->
      let d = { vd_name = ""; vd_mtu = 1500 } in
      Hashtbl.replace dev.sw.vlans vid d;
      d

(* Egress rate enforcement ------------------------------------------- *)

let set_policer dev ~iface ~rate_bps ~burst =
  let i = find_iface_exn dev iface in
  i.if_policer <-
    Some
      { pol_rate_bps = rate_bps; pol_burst = burst; pol_tokens = float_of_int burst; pol_last_ns = Event_queue.now dev.eq }

let clear_policer dev ~iface = (find_iface_exn dev iface).if_policer <- None

(* Token-bucket admission: true if [bytes] may pass now. *)
let policer_admit dev (i : iface) bytes =
  match i.if_policer with
  | None -> true
  | Some p ->
      let now = Event_queue.now dev.eq in
      let dt_ns = Int64.to_float (Int64.sub now p.pol_last_ns) in
      p.pol_last_ns <- now;
      p.pol_tokens <-
        Float.min (float_of_int p.pol_burst)
          (p.pol_tokens +. (dt_ns *. float_of_int p.pol_rate_bps /. 8e9));
      if p.pol_tokens >= float_of_int bytes then begin
        p.pol_tokens <- p.pol_tokens -. float_of_int bytes;
        true
      end
      else begin
        Counters.incr i.if_counters "policer_drops";
        false
      end

(* UDP / ICMP --------------------------------------------------------- *)

let udp_bind dev ~port handler = Hashtbl.replace dev.udp_socks port handler
let udp_unbind dev ~port = Hashtbl.remove dev.udp_socks port

(* Crash / restart ----------------------------------------------------- *)

(* Warm restart semantics: the device stops receiving and transmitting and
   loses volatile state (ARP cache, pending resolutions, learned switch
   FDB), but keeps its configuration — interfaces, addresses, routes,
   tunnels — the way a reboot with persistent config does. Cold-start
   config loss is the NM's business (it re-runs scripts), not the sim's. *)
let crash dev =
  dev.dev_up <- false;
  Hashtbl.reset dev.arp.arp_cache;
  Hashtbl.reset dev.arp.arp_pending;
  Hashtbl.reset dev.sw.fdb

let restart dev = dev.dev_up <- true
let is_up dev = dev.dev_up

(* Misc ---------------------------------------------------------------- *)

let load_module dev name =
  if not (List.mem name dev.loaded_modules) then dev.loaded_modules <- name :: dev.loaded_modules

let module_loaded dev name = List.mem name dev.loaded_modules

let pp_route ppf r =
  Fmt.pf ppf "%a%a%a%a" Prefix.pp r.rt_dst
    (Fmt.option (fun ppf v -> Fmt.pf ppf " via %a" Ipv4_addr.pp v))
    r.rt_via
    (Fmt.option (fun ppf d -> Fmt.pf ppf " dev %s" d))
    r.rt_dev
    (Fmt.option (fun ppf k -> Fmt.pf ppf " mpls %d" k))
    r.rt_mpls
