(* A global packet/event tracer. Disabled by default; tests and the NM
   debugger enable it to observe the data plane. The in-memory buffer is
   bounded: past the cap the oldest events are dropped (and counted), so
   long bench/selfheal runs with tracing on keep constant memory. *)

type event = { seq : int; device : string; what : string; port : string; detail : string }

let enabled = ref false
let events : event Queue.t = Queue.create ()
let counter = ref 0
let limit = ref 100_000
let dropped_events = ref 0

let set_limit n = limit := max 1 n
let get_limit () = !limit
let dropped () = !dropped_events

let clear () =
  Queue.clear events;
  counter := 0;
  dropped_events := 0

let emit ~device ~what ?(port = "") frame =
  if !enabled then begin
    incr counter;
    let detail =
      if what = "rx" || what = "tx" || what = "drop" then
        Fmt.str "%s" (Packet.Frame.signature frame)
      else Bytes.to_string frame
    in
    Queue.add { seq = !counter; device; what; port; detail } events;
    while Queue.length events > !limit do
      ignore (Queue.pop events);
      incr dropped_events
    done
  end

let with_trace f =
  let was = !enabled in
  enabled := true;
  clear ();
  Fun.protect ~finally:(fun () -> enabled := was) f

let get () = List.of_seq (Queue.to_seq events)

let pp_event ppf e = Fmt.pf ppf "[%04d] %-8s %-10s %-6s %s" e.seq e.device e.what e.port e.detail

let dump ppf () = Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp_event) (get ())
