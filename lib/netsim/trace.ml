(* A global packet/event tracer. Disabled by default; tests and the NM
   debugger enable it to observe the data plane. *)

type event = { seq : int; device : string; what : string; port : string; detail : string }

let enabled = ref false
let events : event list ref = ref []
let counter = ref 0
let limit = 100_000

let clear () =
  events := [];
  counter := 0

let emit ~device ~what ?(port = "") frame =
  if !enabled && !counter < limit then begin
    incr counter;
    let detail =
      if what = "rx" || what = "tx" || what = "drop" then
        Fmt.str "%s" (Packet.Frame.signature frame)
      else Bytes.to_string frame
    in
    events := { seq = !counter; device; what; port; detail } :: !events
  end

let with_trace f =
  let was = !enabled in
  enabled := true;
  clear ();
  Fun.protect ~finally:(fun () -> enabled := was) f

let get () = List.rev !events

let pp_event ppf e = Fmt.pf ppf "[%04d] %-8s %-10s %-6s %s" e.seq e.device e.what e.port e.detail

let dump ppf () = Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp_event) (get ())
