(* A discrete-event scheduler. Events at equal timestamps run in
   scheduling order, which keeps simulations deterministic. *)

module Key = struct
  type t = int64 * int

  let compare (t1, s1) (t2, s2) =
    match Int64.compare t1 t2 with 0 -> compare s1 s2 | c -> c
end

module M = Map.Make (Key)

type t = {
  mutable now : int64;
  mutable seq : int;
  mutable events : (unit -> unit) M.t;
  mutable processed : int;
}

let create () = { now = 0L; seq = 0; events = M.empty; processed = 0 }

let now t = t.now
let pending t = M.cardinal t.events
let processed t = t.processed

let schedule t ~delay_ns f =
  if delay_ns < 0L then invalid_arg "Event_queue.schedule";
  let key = (Int64.add t.now delay_ns, t.seq) in
  t.seq <- t.seq + 1;
  t.events <- M.add key f t.events

exception Budget_exhausted

let run ?(max_events = 10_000_000) t =
  let count = ref 0 in
  let rec loop () =
    match M.min_binding_opt t.events with
    | None -> ()
    | Some (((time, _) as key), f) ->
        if !count >= max_events then raise Budget_exhausted;
        incr count;
        t.processed <- t.processed + 1;
        t.events <- M.remove key t.events;
        t.now <- time;
        f ();
        loop ()
  in
  loop ();
  !count

let run_until ?(max_events = 10_000_000) ?(advance = true) t ~deadline =
  let count = ref 0 in
  let rec loop () =
    match M.min_binding_opt t.events with
    | Some (((time, _) as key), f) when time <= deadline ->
        if !count >= max_events then raise Budget_exhausted;
        incr count;
        t.processed <- t.processed + 1;
        t.events <- M.remove key t.events;
        t.now <- time;
        f ();
        loop ()
    | _ -> ()
  in
  loop ();
  if advance && deadline > t.now then t.now <- deadline;
  !count
