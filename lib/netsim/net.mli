(** A network: an event queue plus devices and link segments, with helpers
    to wire topologies and run the simulation to quiescence. *)

type edge = {
  edge_name : string;
  segment : Link.segment;
  attachments : (Device.t * int) list; (** (device, port index) *)
}

type t

val create : unit -> t
val eq : t -> Event_queue.t

val add_device : ?switching:bool -> t -> id:string -> name:string -> Device.t
(** Creates a device with its forwarding pipeline installed. [switching]
    makes it a layer-2 switch. *)

val devices : t -> Device.t list
val find_device : t -> string -> Device.t option
val find_device_exn : t -> string -> Device.t
val device_by_id : t -> string -> Device.t option

val lan :
  ?latency_ns:int64 -> ?mtu:int -> ?name:string -> t -> (Device.t * int) list -> Link.segment
(** A broadcast segment with the given attachments. *)

val connect :
  ?latency_ns:int64 ->
  ?mtu:int ->
  ?name:string ->
  t ->
  Device.t * int ->
  Device.t * int ->
  Link.segment
(** A point-to-point cable. *)

val edges : t -> edge list
val find_segment : t -> string -> Link.segment option
val find_segment_exn : t -> string -> Link.segment

val neighbours : t -> Device.t -> int -> (Device.t * int) list
(** Physical neighbours of a device port — what each management agent
    reports to the NM as its connectivity. *)

val run : ?max_events:int -> t -> int
(** Processes events until quiescence; returns the number processed. *)

val run_until : ?max_events:int -> ?advance:bool -> t -> deadline:int64 -> int
(** Processes events up to [deadline] (inclusive) and advances the clock
    there, leaving later events (scheduled faults, future probes) pending.
    [advance:false] leaves the clock at the last processed event. *)
