(** Discrete-event scheduler; deterministic FIFO order at equal timestamps. *)

type t

exception Budget_exhausted

val create : unit -> t
val now : t -> int64
val pending : t -> int
val processed : t -> int
val schedule : t -> delay_ns:int64 -> (unit -> unit) -> unit

val run : ?max_events:int -> t -> int
(** Runs events until the queue drains; returns the number processed.
    Raises {!Budget_exhausted} past [max_events] (guards against loops). *)

val run_until : ?max_events:int -> ?advance:bool -> t -> deadline:int64 -> int
(** Runs events with timestamps [<= deadline], then advances the clock to
    [deadline], leaving later events pending. Lets a driver interleave
    scheduled faults (link flaps, probes) with the simulation instead of
    fast-forwarding through them. [advance:false] leaves the clock at the
    last processed event instead — a bounded run that consumes no more
    virtual time than its events took (the NM's horizon mode). Returns the
    number processed; raises {!Budget_exhausted} past [max_events]. *)
