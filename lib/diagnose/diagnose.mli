(** Fault diagnosis over the showPerf telemetry scrape.

    A bounded time-series store of per-(device, module, pipe) counter
    deltas, anomaly flags over it, and a root-cause localizer that walks a
    configured path's dependency chain (as hops and inter-device segments)
    and emits a ranked diagnosis. Protocol-agnostic: it only understands
    the standardized counter names every module reports per pipe —
    [up_frames]/[up_bytes] (traffic delivered upwards), [down_frames]/
    [down_bytes] (traffic pushed downwards) and [drop:<cause>]. *)

type t

type key = { device : string; module_id : string; pipe : string }

val pp_key : key Fmt.t

type sample = { at_ns : int64; deltas : (string * int) list }

val create : ?window:int -> unit -> t
(** [window] bounds the per-series delta ring (default 32); older samples
    are evicted and counted in {!dropped}. *)

val window : t -> int

val observe :
  t -> at_ns:int64 -> device:string -> module_id:string -> pipe:string -> (string * int) list -> unit
(** Feeds one absolute (monotonic) counter snapshot. The first observation
    of a series only sets its baseline; subsequent ones push the
    scrape-to-scrape delta into the ring. *)

val note_unreachable : t -> string -> unit
(** The device failed to answer a showPerf round. *)

val note_reachable : t -> string -> unit
val is_silent : t -> string -> bool
val silent_rounds : t -> string -> int

val keys : t -> key list
val samples : t -> key -> sample list
(** Oldest first. *)

val dropped : t -> key -> int
(** Samples evicted from the series' ring. *)

val last_delta : t -> key -> string -> int
val recent : ?n:int -> t -> key -> string -> int
(** Sum of the last [n] (default 3) deltas of a counter. *)

val total : t -> key -> string -> int
(** Cumulative delta since the series' baseline. *)

val ever_active : t -> key -> string -> bool

(** {1 Anomaly flags} *)

type anomaly =
  | Stalled of key * string  (** counter previously active, flat over the recent window *)
  | Asymmetric of key  (** one direction moving while the other (once active) is flat *)
  | Rising_drops of key * string * int  (** a [drop:<cause>] counter increased last scrape *)
  | Silent of string * int  (** device unanswering for n scrape rounds *)

val pp_anomaly : anomaly Fmt.t
val anomalies : t -> anomaly list

(** {1 Root-cause localization} *)

type hop = {
  h_dev : string;
  h_modules : string list;  (** qualified module ids the path visits on this device *)
}

type seg = {
  s_name : string;  (** reported link name, e.g. ["id-A--id-B"] *)
  s_from : string;  (** tx-side device *)
  s_from_module : string;
  s_from_pipe : string;
  s_to : string;  (** rx-side device *)
  s_to_module : string;
  s_to_pipe : string;
}

type verdict =
  | Cut_link of string
  | Lossy_segment of string
  | Misconfigured_module of { dev : string; module_id : string }
  | Unreachable_agent of string

type diagnosis = { verdict : verdict; confidence : float; evidence : string list }

val pp_verdict : verdict Fmt.t
val pp_diagnosis : diagnosis Fmt.t

val localize : t -> hops:hop list -> segs:seg list -> diagnosis list
(** Ranked (most confident first). Conservation arguments: frames sent
    onto a segment must arrive at the other end (else the link is cut or
    lossy); frames entering a transit device must leave it (else a module
    on it is misconfigured — the one with a rising drop cause is blamed);
    a hop that stopped answering showPerf is reported unreachable. *)
