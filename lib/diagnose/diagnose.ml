(* The fault-diagnosis layer on top of the showPerf telemetry scrape.

   The store keeps a bounded ring of scrape-to-scrape counter deltas per
   (device, module, pipe) and flags anomalies; the localizer walks a
   configured path's module dependency chain (handed to it as hops and
   inter-device segments), intersects the anomaly evidence and emits a
   ranked root-cause diagnosis. Everything here is protocol-agnostic: it
   only knows the standardized counter names the modules report
   (up/down_frames, up/down_bytes, drop:<cause>). *)

type key = { device : string; module_id : string; pipe : string }

let pp_key ppf k = Fmt.pf ppf "%s/%s/%s" k.device k.module_id k.pipe

type sample = { at_ns : int64; deltas : (string * int) list }

type series = {
  s_key : key;
  (* previous absolute snapshot; None until the first observation, which
     only sets the baseline (a counter's whole history is not a delta) *)
  mutable s_last : (string * int) list option;
  mutable s_samples : sample list; (* newest first, bounded by window *)
  mutable s_dropped : int; (* samples evicted from the ring *)
  mutable s_total : (string * int) list; (* cumulative deltas since baseline *)
}

type t = {
  window : int;
  series : (string, series) Hashtbl.t; (* flattened key -> series *)
  (* consecutive scrape rounds a device failed to answer showPerf *)
  silent : (string, int) Hashtbl.t;
}

let create ?(window = 32) () =
  { window = max 1 window; series = Hashtbl.create 64; silent = Hashtbl.create 8 }

let window t = t.window

let flat k = k.device ^ "|" ^ k.module_id ^ "|" ^ k.pipe

let find_series t k = Hashtbl.find_opt t.series (flat k)

let keys t =
  Hashtbl.fold (fun _ s acc -> s.s_key :: acc) t.series []
  |> List.sort (fun a b -> compare (flat a) (flat b))

let observe t ~at_ns ~device ~module_id ~pipe counters =
  let k = { device; module_id; pipe } in
  let s =
    match find_series t k with
    | Some s -> s
    | None ->
        let s = { s_key = k; s_last = None; s_samples = []; s_dropped = 0; s_total = [] } in
        Hashtbl.replace t.series (flat k) s;
        s
  in
  (match s.s_last with
  | None -> () (* baseline only *)
  | Some before ->
      let deltas =
        List.map
          (fun (name, v) ->
            let was = match List.assoc_opt name before with Some w -> w | None -> 0 in
            (name, if v >= was then v - was else 0))
          counters
      in
      s.s_samples <- { at_ns; deltas } :: s.s_samples;
      (let rec drop_excess n = function
         | [] -> []
         | _ :: rest when n <= 0 ->
             s.s_dropped <- s.s_dropped + 1;
             drop_excess 0 rest
         | x :: rest -> x :: drop_excess (n - 1) rest
       in
       s.s_samples <- drop_excess t.window s.s_samples);
      s.s_total <-
        List.map
          (fun (name, d) ->
            let so_far = match List.assoc_opt name s.s_total with Some x -> x | None -> 0 in
            (name, so_far + d))
          deltas
        @ List.filter (fun (name, _) -> not (List.mem_assoc name deltas)) s.s_total);
  s.s_last <- Some counters

let dropped t k = match find_series t k with Some s -> s.s_dropped | None -> 0
let samples t k = match find_series t k with Some s -> List.rev s.s_samples | None -> []

let note_unreachable t device =
  let n = match Hashtbl.find_opt t.silent device with Some n -> n | None -> 0 in
  Hashtbl.replace t.silent device (n + 1)

let note_reachable t device = Hashtbl.remove t.silent device
let is_silent t device = match Hashtbl.find_opt t.silent device with Some n -> n > 0 | None -> false
let silent_rounds t device = match Hashtbl.find_opt t.silent device with Some n -> n | None -> 0

(* --- delta accessors -------------------------------------------------- *)

let counter_of sample name =
  match List.assoc_opt name sample.deltas with Some v -> v | None -> 0

(* Sum of the last [n] deltas of [name] (0 when the series is unknown). *)
let recent ?(n = 3) t k name =
  match find_series t k with
  | None -> 0
  | Some s ->
      List.filteri (fun i _ -> i < n) s.s_samples
      |> List.fold_left (fun acc sm -> acc + counter_of sm name) 0

let last_delta t k name = recent ~n:1 t k name

let total t k name =
  match find_series t k with
  | None -> 0
  | Some s -> ( match List.assoc_opt name s.s_total with Some v -> v | None -> 0)

let ever_active t k name = total t k name > 0

(* --- anomaly flags ---------------------------------------------------- *)

type anomaly =
  | Stalled of key * string (* counter previously active, flat over the recent window *)
  | Asymmetric of key (* one direction moving while the other (once active) is flat *)
  | Rising_drops of key * string * int (* a drop cause increased recently *)
  | Silent of string * int (* device unanswering for n scrape rounds *)

let pp_anomaly ppf = function
  | Stalled (k, c) -> Fmt.pf ppf "stall %a %s" pp_key k c
  | Asymmetric k -> Fmt.pf ppf "asymmetry %a" pp_key k
  | Rising_drops (k, c, n) -> Fmt.pf ppf "drops %a %s +%d" pp_key k c n
  | Silent (d, n) -> Fmt.pf ppf "silent %s (%d rounds)" d n

let anomalies t =
  let out = ref [] in
  Hashtbl.iter (fun d n -> if n > 0 then out := Silent (d, n) :: !out) t.silent;
  Hashtbl.iter
    (fun _ s ->
      let k = s.s_key in
      if s.s_samples <> [] then begin
        List.iter
          (fun c ->
            if ever_active t k c && recent ~n:2 t k c = 0 then out := Stalled (k, c) :: !out)
          [ "up_frames"; "down_frames" ];
        (let up = recent t k "up_frames" and down = recent t k "down_frames" in
         if
           (up > 0 && down = 0 && ever_active t k "down_frames")
           || (down > 0 && up = 0 && ever_active t k "up_frames")
         then out := Asymmetric k :: !out);
        match s.s_samples with
        | latest :: _ ->
            List.iter
              (fun (name, d) ->
                if d > 0 && String.length name >= 5 && String.sub name 0 5 = "drop:" then
                  out := Rising_drops (k, name, d) :: !out)
              latest.deltas
        | [] -> ()
      end)
    t.series;
  List.rev !out

(* --- root-cause localization ------------------------------------------ *)

type hop = {
  h_dev : string;
  h_modules : string list; (* qualified module ids the path visits on this device *)
}

type seg = {
  s_name : string; (* for reporting, e.g. "id-A--id-B" *)
  s_from : string; (* tx-side device *)
  s_from_module : string;
  s_from_pipe : string;
  s_to : string; (* rx-side device *)
  s_to_module : string;
  s_to_pipe : string;
}

type verdict =
  | Cut_link of string (* seg name *)
  | Lossy_segment of string
  | Misconfigured_module of { dev : string; module_id : string }
  | Unreachable_agent of string

type diagnosis = { verdict : verdict; confidence : float; evidence : string list }

let pp_verdict ppf = function
  | Cut_link l -> Fmt.pf ppf "cut link %s" l
  | Lossy_segment l -> Fmt.pf ppf "lossy segment %s" l
  | Misconfigured_module { dev; module_id } ->
      Fmt.pf ppf "misconfigured module %s on %s" module_id dev
  | Unreachable_agent d -> Fmt.pf ppf "unreachable agent %s" d

let pp_diagnosis ppf d =
  Fmt.pf ppf "%a (confidence %.2f)%a" pp_verdict d.verdict d.confidence
    (Fmt.list ~sep:Fmt.nop (fun ppf e -> Fmt.pf ppf "@,  - %s" e))
    d.evidence

let localize t ~hops ~segs =
  let out = ref [] in
  let add verdict confidence evidence = out := { verdict; confidence; evidence } :: !out in
  (* 1. A hop that stopped answering showPerf dominates everything else we
     could say about it. *)
  List.iter
    (fun h ->
      if is_silent t h.h_dev then
        add (Unreachable_agent h.h_dev) 0.95
          [ Fmt.str "%s unanswering for %d scrape round(s)" h.h_dev (silent_rounds t h.h_dev) ])
    hops;
  (* 2. Per-segment conservation: everything the tx side pushed onto the
     wire must show up at the rx side. *)
  List.iter
    (fun s ->
      if not (is_silent t s.s_from || is_silent t s.s_to) then begin
        let txk = { device = s.s_from; module_id = s.s_from_module; pipe = s.s_from_pipe } in
        let rxk = { device = s.s_to; module_id = s.s_to_module; pipe = s.s_to_pipe } in
        let tx = last_delta t txk "down_frames" and rx = last_delta t rxk "up_frames" in
        let txw = recent t txk "down_frames" and rxw = recent t rxk "up_frames" in
        if tx > 0 && rx = 0 then
          add (Cut_link s.s_name) 0.9
            [
              Fmt.str "%s sent %d frame(s) towards %s, %s received 0 (last scrape)" s.s_from tx
                s.s_to s.s_to;
            ]
        else if txw > 0 && rxw < txw && txw - rxw >= max 2 (txw / 5) then
          add (Lossy_segment s.s_name) 0.7
            [
              Fmt.str "%s sent %d frame(s), %s received only %d over the recent window" s.s_from
                txw s.s_to rxw;
            ]
      end)
    segs;
  (* 3. Intra-device conservation: traffic enters a transit hop but never
     leaves it, while its adjacent segments look healthy — the fault is a
     module on the device. Blame the one whose own counters flag it. *)
  List.iter
    (fun h ->
      if not (is_silent t h.h_dev) then begin
        let seg_in = List.find_opt (fun s -> s.s_to = h.h_dev) segs in
        let seg_out = List.find_opt (fun s -> s.s_from = h.h_dev) segs in
        match (seg_in, seg_out) with
        | Some si, Some so ->
            let rxk = { device = h.h_dev; module_id = si.s_to_module; pipe = si.s_to_pipe } in
            let txk = { device = h.h_dev; module_id = so.s_from_module; pipe = so.s_from_pipe } in
            let rx_in = last_delta t rxk "up_frames" in
            let tx_out = last_delta t txk "down_frames" in
            if rx_in > 0 && tx_out = 0 then begin
              let module_anomaly m =
                (* strongest: a drop cause rising on one of its pipes *)
                let drops =
                  List.filter_map
                    (fun k ->
                      if k.device = h.h_dev && k.module_id = m then
                        match samples t k with
                        | [] -> None
                        | sms -> (
                            let latest = List.nth sms (List.length sms - 1) in
                            match
                              List.find_opt
                                (fun (name, d) ->
                                  d > 0 && String.length name >= 5
                                  && String.sub name 0 5 = "drop:")
                                latest.deltas
                            with
                            | Some (name, d) -> Some (Fmt.str "%s %s +%d" k.pipe name d)
                            | None -> None)
                      else None)
                    (keys t)
                in
                drops
              in
              (* the ETH modules carrying the adjacent segments are healthy
                 by construction here (traffic reached the device); blame
                 the forwarding modules between them *)
              let candidates =
                List.filter (fun m -> m <> si.s_to_module && m <> so.s_from_module) h.h_modules
              in
              let blamed =
                List.find_map
                  (fun m -> match module_anomaly m with [] -> None | ev -> Some (m, ev))
                  candidates
              in
              match blamed with
              | Some (m, ev) ->
                  add
                    (Misconfigured_module { dev = h.h_dev; module_id = m })
                    0.85
                    (Fmt.str "%d frame(s) entered %s, none left" rx_in h.h_dev :: ev)
              | None -> (
                  match candidates with
                  | m :: _ ->
                      add
                        (Misconfigured_module { dev = h.h_dev; module_id = m })
                        0.5
                        [
                          Fmt.str "%d frame(s) entered %s, none left; no drop cause visible" rx_in
                            h.h_dev;
                        ]
                  | [] -> ())
            end
        | _ -> ()
      end)
    hops;
  List.stable_sort (fun a b -> compare b.confidence a.confidence) (List.rev !out)
