(* Chaos engine tests: schedule generation determinism, the sexp repro
   codec, invariant checking on quiet and faulty schedules, the shrinker,
   and the satellite fixes (Faults.reset_counters, the monitor's bounded
   event ring). *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* --- schedule generation ------------------------------------------------ *)

let test_schedule_determinism () =
  let a = Chaos.Schedule.generate ~seed:7 ~ticks:10 () in
  let b = Chaos.Schedule.generate ~seed:7 ~ticks:10 () in
  check tstr "same seed, byte-identical schedule" (Chaos.Schedule.to_string a)
    (Chaos.Schedule.to_string b);
  let c = Chaos.Schedule.generate ~seed:8 ~ticks:10 () in
  check tbool "different seed, different schedule" true
    (Chaos.Schedule.to_string a <> Chaos.Schedule.to_string c)

let test_schedule_codec_roundtrip () =
  let sched =
    {
      Chaos.Schedule.seed = 3;
      ticks = 9;
      tail = 6;
      events =
        [
          { Chaos.Schedule.at = 0; fault = Chaos.Schedule.Link_cut { seg = "A--B1"; ticks = 2 } };
          { at = 1; fault = Chaos.Schedule.Link_loss { seg = "B1--C"; p = 0.25; ticks = 1 } };
          { at = 1; fault = Chaos.Schedule.Link_corrupt { seg = "B2--C"; p = 0.125; ticks = 3 } };
          {
            at = 2;
            fault =
              Chaos.Schedule.Link_flap { seg = "A--B2"; cycles = 2; down_ms = 200; up_ms = 100 };
          };
          { at = 3; fault = Chaos.Schedule.Mgmt_drop { p = 0.5; ticks = 2 } };
          { at = 3; fault = Chaos.Schedule.Mgmt_duplicate { p = 0.25; ticks = 1 } };
          { at = 4; fault = Chaos.Schedule.Mgmt_jitter { ms = 40; ticks = 2 } };
          { at = 5; fault = Chaos.Schedule.Mgmt_partition { dev = "id-B1"; ticks = 1 } };
          { at = 6; fault = Chaos.Schedule.Agent_crash { dev = "id-B2"; ticks = 2 } };
          { at = 7; fault = Chaos.Schedule.Nm_crash };
        ];
    }
  in
  let round = Chaos.Schedule.of_string (Chaos.Schedule.to_string sched) in
  check tbool "roundtrip preserves the schedule" true (round = sched);
  check tstr "and re-encodes identically" (Chaos.Schedule.to_string sched)
    (Chaos.Schedule.to_string round)

(* --- the engine --------------------------------------------------------- *)

let test_quiet_schedule_all_invariants_hold () =
  let sched = { Chaos.Schedule.seed = 1; ticks = 3; tail = 8; events = [] } in
  let r = Chaos.Engine.run sched in
  (match Chaos.Engine.failures r with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "quiet run violated %s: %s" f.Chaos.Engine.name f.Chaos.Engine.detail);
  check tbool "converged immediately" true (r.Chaos.Engine.converged_tick <> None);
  check tint "no repairs were needed" 0 r.Chaos.Engine.total_repairs

let test_run_determinism () =
  let sched = Chaos.Schedule.generate ~seed:11 ~ticks:8 () in
  let a = Chaos.Engine.run sched in
  let b = Chaos.Engine.run sched in
  check tstr "fault counters identical across fresh runs" a.Chaos.Engine.mgmt_counters
    b.Chaos.Engine.mgmt_counters;
  check tbool "monitor event traces identical" true
    (a.Chaos.Engine.trace = b.Chaos.Engine.trace);
  check tbool "verdicts identical" true (a.Chaos.Engine.verdicts = b.Chaos.Engine.verdicts)

let test_composite_schedule_converges () =
  let sched = Chaos.Schedule.generate ~seed:5 ~ticks:8 () in
  let r = Chaos.Engine.run sched in
  match Chaos.Engine.failures r with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "seed 5 violated %s: %s" f.Chaos.Engine.name f.Chaos.Engine.detail

(* --- the shrinker ------------------------------------------------------- *)

(* With the oscillation bound weakened to zero, any schedule that forces a
   single successful reroute is a "violation"; the shrinker must reduce a
   noisy schedule to (essentially) the one cut that matters. *)
let test_shrinker_minimizes_planted_fault () =
  let weak =
    { Chaos.Engine.default_config with Chaos.Engine.oscillation_bound = Some 0 }
  in
  let noisy =
    {
      Chaos.Schedule.seed = 21;
      ticks = 6;
      tail = 8;
      events =
        [
          { Chaos.Schedule.at = 1; fault = Chaos.Schedule.Link_cut { seg = "A--B1"; ticks = 6 } };
          { at = 3; fault = Chaos.Schedule.Mgmt_jitter { ms = 20; ticks = 1 } };
          { at = 3; fault = Chaos.Schedule.Mgmt_duplicate { p = 0.2; ticks = 1 } };
          { at = 4; fault = Chaos.Schedule.Mgmt_drop { p = 0.1; ticks = 1 } };
          { at = 5; fault = Chaos.Schedule.Link_loss { seg = "B1--C"; p = 0.2; ticks = 1 } };
        ];
    }
  in
  let failing s = Chaos.Engine.failures (Chaos.Engine.run ~config:weak s) <> [] in
  check tbool "the noisy schedule violates the weakened invariant" true (failing noisy);
  let { Chaos.Shrink.minimized; runs } = Chaos.Shrink.minimize ~failing noisy in
  check tbool "shrinking made progress" true
    (List.length minimized.Chaos.Schedule.events < List.length noisy.Chaos.Schedule.events);
  check tbool "minimized repro has at most 2 events" true
    (List.length minimized.Chaos.Schedule.events <= 2);
  check tbool "the oracle ran more than once" true (runs > 1);
  (* the minimized repro replays deterministically from its serialised form *)
  let replayed = Chaos.Schedule.of_string (Chaos.Schedule.to_string minimized) in
  check tbool "replay still reproduces the violation" true (failing replayed);
  let r1 = Chaos.Engine.run ~config:weak replayed in
  let r2 = Chaos.Engine.run ~config:weak replayed in
  check tbool "replay is deterministic" true
    (r1.Chaos.Engine.verdicts = r2.Chaos.Engine.verdicts
    && r1.Chaos.Engine.trace = r2.Chaos.Engine.trace)

(* --- satellite: Faults.reset_counters ----------------------------------- *)

let test_faults_reset_counters () =
  let v = Scenarios.build_vpn () in
  Mgmt.Faults.set_drop v.Scenarios.faults 0.5;
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ | Error _ -> ());
  let c = Mgmt.Faults.counters v.Scenarios.faults in
  check tbool "the lossy channel dropped something" true (c.Mgmt.Faults.dropped > 0);
  Mgmt.Faults.clear v.Scenarios.faults;
  check tbool "clear preserves counters" true (c.Mgmt.Faults.dropped > 0);
  Mgmt.Faults.reset_counters v.Scenarios.faults;
  check tint "reset_counters zeroes dropped" 0 c.Mgmt.Faults.dropped;
  check tint "reset_counters zeroes duplicated" 0 c.Mgmt.Faults.duplicated;
  check tint "reset_counters zeroes delayed" 0 c.Mgmt.Faults.delayed;
  check tint "reset_counters zeroes crash drops" 0 c.Mgmt.Faults.crash_drops;
  check tint "reset_counters zeroes partition drops" 0 c.Mgmt.Faults.partition_drops

(* --- satellite: bounded monitor event log -------------------------------- *)

let test_monitor_event_ring_bounded () =
  let d = Scenarios.build_diamond () in
  let nm = d.Scenarios.dnm in
  (match Nm.achieve nm d.Scenarios.dgoal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve: %s" e);
  let mon = Monitor.create nm in
  Monitor.set_event_limit mon 3;
  check tint "limit is applied" 3 (Monitor.event_limit mon);
  (* cut both cores: every tick logs failed repair attempts, then an
     escalation — plenty of events for a 3-slot ring *)
  let seg n = Netsim.Net.find_segment_exn d.Scenarios.dtb.Netsim.Testbeds.dia_net n in
  Netsim.Link.cut (seg "A--B1");
  Netsim.Link.cut (seg "A--B2");
  Monitor.run mon ~ticks:8;
  check tbool "ring stayed within its cap" true (List.length (Monitor.events mon) <= 3);
  check tbool "evicted events were counted" true (Monitor.dropped_events mon > 0)

let () =
  Alcotest.run "chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "same seed, same bytes" `Quick test_schedule_determinism;
          Alcotest.test_case "sexp codec roundtrip" `Quick test_schedule_codec_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "quiet schedule holds all invariants" `Quick
            test_quiet_schedule_all_invariants_hold;
          Alcotest.test_case "deterministic runs" `Quick test_run_determinism;
          Alcotest.test_case "composite schedule converges" `Quick
            test_composite_schedule_converges;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes a planted fault" `Quick
            test_shrinker_minimizes_planted_fault;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "Faults.reset_counters" `Quick test_faults_reset_counters;
          Alcotest.test_case "bounded monitor event ring" `Quick
            test_monitor_event_ring_bounded;
        ] );
    ]
