(* Scenario tests for the fault-injection layer and the NM's reliability
   machinery: convergence under frame loss, deterministic seeding,
   idempotent re-execution under duplication, degraded-mode achievement
   around dead devices, recovery re-sync, standby replay of in-flight
   requests, and diagnosis over a faulty management channel. *)

open Conman

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* Plain substring search, for asserting on error messages. *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Device handles of the VPN testbed by scenario-agent name. *)
let vpn_device v = function
  | "A" -> v.Scenarios.tb.Netsim.Testbeds.ra
  | "B" -> v.Scenarios.tb.Netsim.Testbeds.rb
  | "C" -> v.Scenarios.tb.Netsim.Testbeds.rc
  | n -> failwith ("no such vpn router: " ^ n)

let path_devices (p : Path_finder.path) =
  List.sort_uniq compare
    (List.map (fun (v : Path_finder.visit) -> v.Path_finder.v_mod.Ids.dev) p.Path_finder.visits)

(* --- convergence under loss --------------------------------------------------- *)

let test_lossy_convergence () =
  let v = Scenarios.build_vpn ~fault_seed:42 () in
  Mgmt.Faults.set_drop v.Scenarios.faults 0.3;
  (* rediscovery and goal achievement both run over the lossy channel *)
  Nm.harvest_potentials v.Scenarios.nm v.Scenarios.scope;
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve under 30%% loss: %s" e);
  check tbool "VPN works despite 30% mgmt loss" true (Scenarios.vpn_reachable v);
  let fc = Mgmt.Faults.counters v.Scenarios.faults in
  let rc = Mgmt.Reliable.counters v.Scenarios.transport in
  check tbool "frames were dropped" true (fc.Mgmt.Faults.dropped > 0);
  check tbool "losses were retransmitted" true (rc.Mgmt.Reliable.retransmits > 0);
  check tint "no destination abandoned" 0 rc.Mgmt.Reliable.gave_up

let test_lossy_determinism () =
  let run seed =
    let v = Scenarios.build_vpn ~fault_seed:seed () in
    Mgmt.Faults.set_drop v.Scenarios.faults 0.3;
    Nm.harvest_potentials v.Scenarios.nm v.Scenarios.scope;
    ignore (Nm.achieve v.Scenarios.nm v.Scenarios.goal);
    let fc = Mgmt.Faults.counters v.Scenarios.faults in
    let rc = Mgmt.Reliable.counters v.Scenarios.transport in
    (fc.Mgmt.Faults.dropped, rc.Mgmt.Reliable.retransmits, Nm.stats_sent v.Scenarios.nm)
  in
  let d1, r1, s1 = run 9 in
  let d2, r2, s2 = run 9 in
  check tint "same seed => same drops" d1 d2;
  check tint "same seed => same retransmits" r1 r2;
  check tint "same seed => same NM sends" s1 s2;
  check tbool "faults actually fired" true (d1 > 0 && r1 > 0)

let test_duplication_idempotent () =
  let v = Scenarios.build_vpn ~fault_seed:5 () in
  Mgmt.Faults.set_duplicate v.Scenarios.faults 0.4;
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve under duplication: %s" e);
  check tbool "VPN works despite duplicated frames" true (Scenarios.vpn_reachable v);
  check tbool "duplicates were suppressed" true
    ((Mgmt.Reliable.counters v.Scenarios.transport).Mgmt.Reliable.duplicates > 0);
  check tbool "no bundle applied twice / no errors" true (Nm.errors v.Scenarios.nm = [])

(* --- dead transit device (the acceptance scenario) ----------------------------- *)

let test_crash_transit_error_then_recovery () =
  let v = Scenarios.build_vpn () in
  let rb = vpn_device v "B" in
  (* B dies after discovery, before configuration *)
  Netsim.Device.crash rb;
  Mgmt.Faults.crash v.Scenarios.faults "id-B";
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> Alcotest.fail "achieve through a dead transit device claimed success"
  | Error e ->
      check tbool (Printf.sprintf "error names the dead device (%s)" e) true
        (contains_sub e "id-B"));
  check tbool "B marked unreachable" false
    (Topology.is_reachable (Nm.topology v.Scenarios.nm) "id-B");
  check tbool "transport reported the abandonment" true
    ((Mgmt.Reliable.counters v.Scenarios.transport).Mgmt.Reliable.gave_up > 0);
  (* B restarts and announces itself: the NM re-learns it and the goal
     becomes achievable again *)
  Netsim.Device.restart rb;
  Mgmt.Faults.restart v.Scenarios.faults "id-B";
  Agent.announce (List.assoc "B" v.Scenarios.agents) v.Scenarios.tb.Netsim.Testbeds.vpn_net;
  Nm.run v.Scenarios.nm;
  check tbool "B reachable again after Hello" true
    (Topology.is_reachable (Nm.topology v.Scenarios.nm) "id-B");
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "achieve after restart: %s" e);
  check tbool "device reconfigured after restart" true (Scenarios.vpn_reachable v)

let test_diamond_routes_around_dead_core () =
  let d = Scenarios.build_diamond () in
  (* learn which transit core the NM would pick *)
  let chosen =
    match Nm.achieve ~configure:false d.Scenarios.dnm d.Scenarios.dgoal with
    | Ok (_, path, _) ->
        List.find (fun dev -> dev = "id-B1" || dev = "id-B2") (path_devices path)
    | Error e -> Alcotest.failf "clean diamond achieve: %s" e
  in
  let dead_dev =
    if chosen = "id-B1" then d.Scenarios.dtb.Netsim.Testbeds.dia_b1
    else d.Scenarios.dtb.Netsim.Testbeds.dia_b2
  in
  let other = if chosen = "id-B1" then "id-B2" else "id-B1" in
  Netsim.Device.crash dead_dev;
  Mgmt.Faults.crash d.Scenarios.dfaults chosen;
  (match Nm.achieve d.Scenarios.dnm d.Scenarios.dgoal with
  | Ok (_, path, _) ->
      let devs = path_devices path in
      check tbool "routed around the dead core" true (List.mem other devs);
      check tbool "dead core avoided" false (List.mem chosen devs)
  | Error e -> Alcotest.failf "achieve should route around the dead core: %s" e);
  check tbool "dead core marked unreachable" false
    (Topology.is_reachable (Nm.topology d.Scenarios.dnm) chosen);
  check tbool "data plane converged via the other core" true (Scenarios.diamond_reachable d)

(* --- recovery re-sync of active scripts --------------------------------------- *)

let test_restart_resyncs_active_scripts () =
  let v = Scenarios.build_vpn () in
  (match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "initial achieve: %s" e);
  check tbool "configured" true (Scenarios.vpn_reachable v);
  let rb = vpn_device v "B" in
  Netsim.Device.crash rb;
  Mgmt.Faults.crash v.Scenarios.faults "id-B";
  (* the NM notices when it next needs B *)
  let ok, detail = Nm.self_test v.Scenarios.nm (Ids.v "IP" "i" "id-B") in
  check tbool (Printf.sprintf "self-test fails while down (%s)" detail) false ok;
  check tbool "B unreachable" false (Topology.is_reachable (Nm.topology v.Scenarios.nm) "id-B");
  let acks_before = Nm.stats_acks v.Scenarios.nm in
  Netsim.Device.restart rb;
  Mgmt.Faults.restart v.Scenarios.faults "id-B";
  Agent.announce (List.assoc "B" v.Scenarios.agents) v.Scenarios.tb.Netsim.Testbeds.vpn_net;
  Nm.run v.Scenarios.nm;
  (* the Hello triggered re-showPotential + re-sync of B's script slices *)
  check tbool "reachable again" true (Topology.is_reachable (Nm.topology v.Scenarios.nm) "id-B");
  check tbool "script slices re-acked on re-sync" true (Nm.stats_acks v.Scenarios.nm > acks_before);
  check tbool "no errors from idempotent re-execution" true (Nm.errors v.Scenarios.nm = []);
  check tbool "VPN works after warm restart + re-sync" true (Scenarios.vpn_reachable v)

(* --- standby failover with in-flight requests (§V) ----------------------------- *)

let test_standby_reissues_inflight () =
  let v = Scenarios.build_vpn () in
  let target = Ids.v "IP" "g" "id-A" in
  (* the primary is partitioned from id-A mid-request: the assignment is
     issued but never confirmed *)
  Mgmt.Faults.partition v.Scenarios.faults "id-A";
  Nm.assign_address v.Scenarios.nm ~target ~addr:"10.0.9.1" ~plen:24;
  check tint "request still in flight at the primary" 1 (Nm.inflight_count v.Scenarios.nm);
  check tbool "partition drops counted" true
    ((Mgmt.Faults.counters v.Scenarios.faults).Mgmt.Faults.partition_drops > 0);
  check tbool "address not applied" false
    (Netsim.Device.is_local_addr (vpn_device v "A") (Packet.Ipv4_addr.of_string "10.0.9.1"));
  (* warm standby takes over; the partition heals; the standby replays the
     unconfirmed request under its own identity *)
  let standby =
    Nm.create ~transport:v.Scenarios.transport ~chan:v.Scenarios.chan
      ~net:v.Scenarios.tb.Netsim.Testbeds.vpn_net ~my_id:"id-NM2" ()
  in
  Nm.replicate_to v.Scenarios.nm ~standby;
  check tint "in-flight replicated" 1 (Nm.inflight_count standby);
  Mgmt.Faults.heal v.Scenarios.faults "id-A";
  Nm.take_over standby;
  check tint "standby saw the replayed request confirmed" 0 (Nm.inflight_count standby);
  check tbool "address applied exactly once, by the standby's replay" true
    (Netsim.Device.is_local_addr (vpn_device v "A") (Packet.Ipv4_addr.of_string "10.0.9.1"))

(* --- diagnosis under injected faults ------------------------------------------- *)

let test_diagnose_localises_over_lossy_channel () =
  let v = Scenarios.build_vpn ~fault_seed:11 () in
  (* the GRE path: its IP modules ping their tunnel peers on self-test, so
     hop-by-hop diagnosis can localise a cut wire *)
  let path =
    List.find Scenarios.pure_gre (Nm.find_paths v.Scenarios.nm v.Scenarios.goal)
  in
  let (_ : Script_gen.script) = Nm.configure_path v.Scenarios.nm v.Scenarios.goal path in
  (* cut the A--B wire, and make the management channel lossy while the NM
     diagnoses: self-tests are retried, so the verdicts stay trustworthy *)
  let seg = Option.get (Netsim.Net.find_segment v.Scenarios.tb.Netsim.Testbeds.vpn_net "A--B") in
  Netsim.Link.cut seg;
  Mgmt.Faults.set_drop v.Scenarios.faults 0.2;
  let verdicts = Nm.diagnose v.Scenarios.nm path in
  let failing = List.filter (fun (_, ok, _) -> not ok) verdicts in
  check tbool "failure detected" true (failing <> []);
  (* localisation: walking from the A side, the first failing module sits
     on one of the devices adjacent to the cut wire *)
  (match failing with
  | (m, _, _) :: _ ->
      check tbool
        (Fmt.str "first failure (%a) is adjacent to the cut" Ids.pp m)
        true
        (m.Ids.dev = "id-A" || m.Ids.dev = "id-B")
  | [] -> ());
  check tbool "retries kept diagnosis running despite loss" true
    ((Mgmt.Reliable.counters v.Scenarios.transport).Mgmt.Reliable.retransmits > 0);
  Netsim.Link.restore seg;
  Mgmt.Faults.set_drop v.Scenarios.faults 0.;
  let verdicts = Nm.diagnose v.Scenarios.nm path in
  check tbool "healthy again after restore" true (List.for_all (fun (_, ok, _) -> ok) verdicts)

let test_diagnose_dead_transit_no_hang () =
  let v = Scenarios.build_vpn () in
  let path =
    match Nm.achieve v.Scenarios.nm v.Scenarios.goal with
    | Ok (_, path, _) -> path
    | Error e -> Alcotest.failf "achieve: %s" e
  in
  let rb = vpn_device v "B" in
  Netsim.Device.crash rb;
  Mgmt.Faults.crash v.Scenarios.faults "id-B";
  (* hop-by-hop: every module on the dead device fails, the fault is
     localised to id-B, and nothing hangs or raises *)
  let verdicts = Nm.diagnose v.Scenarios.nm path in
  List.iter
    (fun ((m : Ids.t), ok, _) ->
      if m.Ids.dev = "id-B" then
        check tbool (Fmt.str "%a reported down" Ids.pp m) false ok)
    verdicts;
  check tbool "a fault was found" true (List.exists (fun (_, ok, _) -> not ok) verdicts);
  let ok, _ = Nm.probe_end_to_end v.Scenarios.nm path in
  check tbool "end-to-end probe fails cleanly" false ok;
  (* warm restart: config survived, so the data plane recovers *)
  Netsim.Device.restart rb;
  Mgmt.Faults.restart v.Scenarios.faults "id-B";
  Agent.announce (List.assoc "B" v.Scenarios.agents) v.Scenarios.tb.Netsim.Testbeds.vpn_net;
  Nm.run v.Scenarios.nm;
  let ok, detail = Nm.probe_end_to_end v.Scenarios.nm path in
  check tbool (Printf.sprintf "end-to-end probe passes after restart (%s)" detail) true ok

let () =
  Alcotest.run "faults"
    [
      ( "loss",
        [
          Alcotest.test_case "achieve converges under 30% loss" `Quick test_lossy_convergence;
          Alcotest.test_case "seeded determinism" `Quick test_lossy_determinism;
          Alcotest.test_case "duplication is idempotent" `Quick test_duplication_idempotent;
        ] );
      ( "dead-device",
        [
          Alcotest.test_case "crash -> error naming device -> recovery" `Quick
            test_crash_transit_error_then_recovery;
          Alcotest.test_case "diamond routes around dead core" `Quick
            test_diamond_routes_around_dead_core;
          Alcotest.test_case "restart re-syncs active scripts" `Quick
            test_restart_resyncs_active_scripts;
        ] );
      ( "failover",
        [ Alcotest.test_case "standby replays in-flight requests" `Quick test_standby_reissues_inflight ] );
      ( "diagnosis",
        [
          Alcotest.test_case "localises over a lossy channel" `Quick
            test_diagnose_localises_over_lossy_channel;
          Alcotest.test_case "dead transit: no hang, then recovery" `Quick
            test_diagnose_dead_transit_no_hang;
        ] );
    ]
