(* Unit tests for the simulator's infrastructure: event queue, links,
   counters, tracing, ARP corner cases, UDP sockets, routing table
   internals and tunnel validation paths. *)

open Packet
open Netsim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let ip = Ipv4_addr.of_string
let pfx = Prefix.of_string

(* --- event queue -------------------------------------------------------------- *)

let test_eq_fifo_at_same_time () =
  let eq = Event_queue.create () in
  let order = ref [] in
  List.iter
    (fun i -> Event_queue.schedule eq ~delay_ns:100L (fun () -> order := i :: !order))
    [ 1; 2; 3 ];
  let _ = Event_queue.run eq in
  check tbool "fifo order" true (List.rev !order = [ 1; 2; 3 ])

let test_eq_time_ordering () =
  let eq = Event_queue.create () in
  let order = ref [] in
  Event_queue.schedule eq ~delay_ns:300L (fun () -> order := "late" :: !order);
  Event_queue.schedule eq ~delay_ns:100L (fun () ->
      order := "early" :: !order;
      Event_queue.schedule eq ~delay_ns:100L (fun () -> order := "nested" :: !order));
  let n = Event_queue.run eq in
  check tint "three events" 3 n;
  check tbool "order" true (List.rev !order = [ "early"; "nested"; "late" ]);
  check tbool "clock advanced" true (Event_queue.now eq = 300L)

let test_eq_budget () =
  let eq = Event_queue.create () in
  let rec forever () = Event_queue.schedule eq ~delay_ns:1L forever in
  forever ();
  check tbool "budget guard" true
    (match Event_queue.run ~max_events:1000 eq with
    | exception Event_queue.Budget_exhausted -> true
    | _ -> false)

let test_eq_negative_delay_rejected () =
  let eq = Event_queue.create () in
  check tbool "invalid arg" true
    (match Event_queue.schedule eq ~delay_ns:(-1L) (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- links ---------------------------------------------------------------------- *)

let test_link_mtu_drop () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment ~mtu:100 eq in
  let a = Link.attach seg and b = Link.attach seg in
  let got = ref 0 in
  Link.set_rx b (fun _ -> incr got);
  Link.send a (Bytes.create 100);
  Link.send a (Bytes.create 101);
  let _ = Event_queue.run eq in
  check tint "only the fitting frame" 1 !got;
  check tint "drop counted" 1 (Link.dropped seg)

let test_link_broadcast_segment () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment eq in
  let a = Link.attach seg and b = Link.attach seg and c = Link.attach seg in
  let got_b = ref 0 and got_c = ref 0 and got_a = ref 0 in
  Link.set_rx a (fun _ -> incr got_a);
  Link.set_rx b (fun _ -> incr got_b);
  Link.set_rx c (fun _ -> incr got_c);
  Link.send a (Bytes.create 10);
  let _ = Event_queue.run eq in
  check tint "b got it" 1 !got_b;
  check tint "c got it" 1 !got_c;
  check tint "no self delivery" 0 !got_a

let test_link_cut_mid_flight () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment eq in
  let a = Link.attach seg and b = Link.attach seg in
  let got = ref 0 in
  Link.set_rx b (fun _ -> incr got);
  Link.send a (Bytes.create 10);
  Link.cut seg;
  let _ = Event_queue.run eq in
  check tint "frame in flight dropped by cut" 0 !got

let test_eq_run_until () =
  let eq = Event_queue.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Event_queue.schedule eq ~delay_ns:d (fun () -> fired := d :: !fired))
    [ 100L; 200L; 300L ];
  let n = Event_queue.run_until eq ~deadline:150L in
  check tint "one event before deadline" 1 n;
  check tbool "clock at deadline" true (Event_queue.now eq = 150L);
  check tint "later events still pending" 2 (Event_queue.pending eq);
  let n = Event_queue.run_until eq ~deadline:1_000L in
  check tint "rest processed" 2 n;
  check tbool "only up to deadline" true (List.rev !fired = [ 100L; 200L; 300L ]);
  check tbool "clock at second deadline" true (Event_queue.now eq = 1_000L)

let test_link_percause_counters () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment ~mtu:100 eq in
  let a = Link.attach seg and b = Link.attach seg in
  let got = ref 0 in
  Link.set_rx b (fun _ -> incr got);
  Link.send a (Bytes.create 101);
  (* mtu drop *)
  Link.cut seg;
  Link.send a (Bytes.create 10);
  (* cut drop *)
  let _ = Event_queue.run eq in
  check tint "nothing delivered" 0 !got;
  check tint "mtu cause" 1 (Link.drop_count seg "mtu");
  check tint "cut cause" 1 (Link.drop_count seg "cut");
  check tint "no loss drops" 0 (Link.drop_count seg "loss");
  check tint "total is the sum" 2 (Link.dropped seg)

let test_link_seeded_loss () =
  let run seed =
    let eq = Event_queue.create () in
    let seg = Link.create_segment eq in
    let a = Link.attach seg and b = Link.attach seg in
    let got = ref 0 in
    Link.set_rx b (fun _ -> incr got);
    Link.set_seed seg seed;
    Link.set_loss seg 0.5;
    for _ = 1 to 200 do
      Link.send a (Bytes.create 10)
    done;
    let _ = Event_queue.run eq in
    (!got, Link.drop_count seg "loss")
  in
  let got, lost = run 7L in
  check tint "every frame accounted" 200 (got + lost);
  check tbool "some delivered" true (got > 0);
  check tbool "some lost" true (lost > 0);
  check tbool "same seed, same outcome" true (run 7L = (got, lost));
  check tbool "different seed, different outcome" true (run 8L <> (got, lost))

let test_link_corruption_dropped_by_crc () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment eq in
  let a = Link.attach seg and b = Link.attach seg in
  let got = ref 0 in
  Link.set_rx b (fun _ -> incr got);
  Link.set_corrupt seg 1.0;
  Trace.with_trace (fun () ->
      Link.send a (Bytes.create 10);
      let _ = Event_queue.run eq in
      ());
  check tint "never delivered" 0 !got;
  check tint "counted as corrupt" 1 (Link.drop_count seg "corrupt");
  check tbool "drop traced" true
    (List.exists
       (fun e -> e.Trace.what = "drop" && e.Trace.port = "corrupt")
       (Trace.get ()))

let test_link_flap_schedule () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment ~latency_ns:1L eq in
  let a = Link.attach seg and b = Link.attach seg in
  let got = ref 0 in
  Link.set_rx b (fun _ -> incr got);
  Link.flap seg ~cycles:2 ~first_down_ns:100L ~down_ns:100L ~up_ns:100L;
  (* up: 0-99, down: 100-199, up: 200-299, down: 300-399, up: 400- *)
  let send_at t expect =
    let _ = Event_queue.run_until eq ~deadline:t in
    check tbool (Printf.sprintf "cut state at %Ldns" t) expect (Link.is_cut seg);
    Link.send a (Bytes.create 10)
  in
  send_at 50L false;
  send_at 150L true;
  send_at 250L false;
  send_at 350L true;
  send_at 450L false;
  let _ = Event_queue.run eq in
  check tint "only the up-phase frames arrive" 3 !got;
  check tint "two flap cycles counted" 2 (Link.flaps seg);
  check tint "down-phase frames dropped as cut" 2 (Link.drop_count seg "cut")

let test_link_endpoint_ids_monotonic () =
  let eq = Event_queue.create () in
  let seg = Link.create_segment eq in
  let a = Link.attach seg in
  let b = Link.attach seg in
  Link.detach b;
  let c = Link.attach seg in
  check tbool "detached id never reused" true (Link.endpoint_id c <> Link.endpoint_id b);
  check tbool "distinct from the survivor" true (Link.endpoint_id c <> Link.endpoint_id a);
  let got_a = ref 0 and got_b = ref 0 and got_c = ref 0 in
  Link.set_rx a (fun _ -> incr got_a);
  Link.set_rx b (fun _ -> incr got_b);
  Link.set_rx c (fun _ -> incr got_c);
  Link.send a (Bytes.create 10);
  Link.send c (Bytes.create 10);
  let _ = Event_queue.run eq in
  check tint "a hears c" 1 !got_a;
  check tint "c hears a" 1 !got_c;
  check tint "detached endpoint hears nothing" 0 !got_b

(* --- counters and tracing -------------------------------------------------------- *)

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "x";
  Counters.incr ~by:4 c "x";
  Counters.incr c "y";
  check tint "x" 5 (Counters.get c "x");
  check tint "missing" 0 (Counters.get c "z");
  check tint "two entries" 2 (List.length (Counters.to_list c));
  Counters.reset c;
  check tint "reset" 0 (Counters.get c "x")

let test_trace_captures_signatures () =
  let net = Net.create () in
  let mk name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.0.0/24");
    d
  in
  let h1 = mk "h1" "10.0.0.1" and _h2 = mk "h2" "10.0.0.2" in
  let _ = Net.connect net (h1, 0) (_h2, 0) in
  Trace.with_trace (fun () ->
      check tbool "ping" true (Ping.reachable net ~from:h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ()));
  let events = Trace.get () in
  check tbool "traced something" true (events <> []);
  check tbool "icmp seen" true
    (List.exists (fun e -> e.Trace.detail = "eth.ip.icmp") events);
  check tbool "arp seen" true (List.exists (fun e -> e.Trace.detail = "eth.arp") events)

let test_frame_signatures_layered () =
  let inner =
    Ipv4.encode
      (Ipv4.make ~proto:Ip_proto.Udp ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") ())
      (Udp.encode ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") { Udp.src_port = 1; dst_port = 2 }
         (Bytes.of_string "x"))
  in
  let mpls = Mpls.encode [ Mpls.entry 2001 ] inner in
  let frame =
    Ethernet.encode
      { Ethernet.dst = Mac_addr.broadcast; src = Mac_addr.make ~device:1 ~port:0; ethertype = Ethertype.Mpls_unicast }
      mpls
  in
  check tstr "mpls signature" "eth.mpls.ip.udp" (Frame.signature frame);
  let tagged =
    let w = Cursor.writer () in
    Ethernet.write w
      { Ethernet.dst = Mac_addr.broadcast; src = Mac_addr.make ~device:1 ~port:0; ethertype = Ethertype.Vlan };
    Vlan.write w (Vlan.make ~vid:22 Ethertype.Ipv4);
    Cursor.wbytes w inner;
    Cursor.contents w
  in
  check tstr "vlan signature" "eth.vlan.ip.udp" (Frame.signature tagged)

(* --- ARP corner cases -------------------------------------------------------------- *)

let two_hosts () =
  let net = Net.create () in
  let mk name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "10.0.0.0/24");
    d
  in
  let h1 = mk "h1" "10.0.0.1" and h2 = mk "h2" "10.0.0.2" in
  let _ = Net.connect net (h1, 0) (h2, 0) in
  (net, h1, h2)

let test_arp_cache_populated () =
  let net, h1, h2 = two_hosts () in
  check tbool "ping" true (Ping.reachable net ~from:h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ());
  check tbool "h1 cached h2" true (Hashtbl.mem h1.Device.arp.Device.arp_cache (ip "10.0.0.2"));
  (* the request was broadcast, so h2 learnt h1 opportunistically *)
  check tbool "h2 learnt h1" true (Hashtbl.mem h2.Device.arp.Device.arp_cache (ip "10.0.0.1"))

let test_arp_no_reply_for_foreign_address () =
  let net, h1, _ = two_hosts () in
  (* h1 asks for an address nobody owns; the ping can never complete *)
  check tbool "no reply" false
    (Ping.reachable net ~from:h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.99") ());
  check tbool "request went out" true (Counters.get h1.Device.dev_counters "arp_requests" > 0)

let test_proxy_arp_disabled_by_default () =
  let net, h1, h2 = two_hosts () in
  (* h2 routes 10.0.9.0/24 but proxy_arp is off: it must NOT answer for it *)
  Device.add_route h2
    { Device.rt_dst = pfx "10.0.9.0/24"; rt_via = None; rt_dev = Some "eth0"; rt_mpls = None };
  h2.Device.ip_forward <- true;
  Device.add_route h1
    { Device.rt_dst = pfx "10.0.9.0/24"; rt_via = None; rt_dev = Some "eth0"; rt_mpls = None };
  check tbool "no proxy reply" false
    (Ping.reachable net ~from:h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.9.1") ())

(* --- ICMP time exceeded -------------------------------------------------------------- *)

let test_time_exceeded_reaches_sender () =
  let net = Net.create () in
  let h1 = Net.add_device net ~id:"id-h1" ~name:"h1" in
  ignore (Device.add_port h1);
  Device.add_addr h1 ~iface:"eth0" ~addr:(ip "10.0.1.2") ~prefix:(pfx "10.0.1.0/24");
  let r = Net.add_device net ~id:"id-r" ~name:"r" in
  ignore (Device.add_port r);
  ignore (Device.add_port r);
  r.Device.ip_forward <- true;
  Device.add_addr r ~iface:"eth0" ~addr:(ip "10.0.1.1") ~prefix:(pfx "10.0.1.0/24");
  Device.add_addr r ~iface:"eth1" ~addr:(ip "10.0.2.1") ~prefix:(pfx "10.0.2.0/24");
  let _ = Net.connect net (h1, 0) (r, 0) in
  Device.add_route h1
    { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip "10.0.1.1"); rt_dev = None; rt_mpls = None };
  let got_te = ref false in
  h1.Device.icmp_hook <-
    Some (fun _ msg -> match msg with Icmp.Time_exceeded -> got_te := true | _ -> ());
  Datapath.ip_send h1
    (Ipv4.make ~ttl:1 ~proto:Ip_proto.Icmp ~src:(ip "10.0.1.2") ~dst:(ip "10.0.2.9") ())
    (Icmp.encode (Icmp.Echo_request { id = 1; seq = 1 }) Bytes.empty);
  let _ = Net.run net in
  check tbool "time-exceeded delivered to sender" true !got_te

(* --- UDP sockets ------------------------------------------------------------------------ *)

let test_udp_sockets () =
  let net, h1, h2 = two_hosts () in
  let got = ref None in
  Device.udp_bind h2 ~port:53 (fun ~src ~src_port data ->
      got := Some (Ipv4_addr.to_string src, src_port, Bytes.to_string data));
  Datapath.udp_send h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:9999 ~dst_port:53
    (Bytes.of_string "query");
  let _ = Net.run net in
  check tbool "delivered" true (!got = Some ("10.0.0.1", 9999, "query"));
  (* unbound port: counted, not delivered *)
  Device.udp_unbind h2 ~port:53;
  Datapath.udp_send h1 ~src:(ip "10.0.0.1") ~dst:(ip "10.0.0.2") ~src_port:9999 ~dst_port:53
    (Bytes.of_string "query2");
  let _ = Net.run net in
  check tbool "no-sock counted" true (Counters.get h2.Device.dev_counters "udp_no_sock" > 0)

(* --- routing internals -------------------------------------------------------------------- *)

let test_lpm_longest_prefix_wins () =
  let routes =
    [
      { Device.rt_dst = pfx "10.0.0.0/8"; rt_via = Some (ip "1.1.1.1"); rt_dev = None; rt_mpls = None };
      { Device.rt_dst = pfx "10.0.2.0/24"; rt_via = Some (ip "2.2.2.2"); rt_dev = None; rt_mpls = None };
      { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = Some (ip "3.3.3.3"); rt_dev = None; rt_mpls = None };
    ]
  in
  (match Device.lpm routes (ip "10.0.2.7") with
  | Some r -> check tbool "most specific" true (r.Device.rt_via = Some (ip "2.2.2.2"))
  | None -> Alcotest.fail "no route");
  match Device.lpm routes (ip "192.168.0.1") with
  | Some r -> check tbool "default" true (r.Device.rt_via = Some (ip "3.3.3.3"))
  | None -> Alcotest.fail "no default"

let test_rule_priority_order () =
  let eq = Event_queue.create () in
  let d = Device.create ~eq ~id:"id-x" ~name:"x" () in
  ignore (Device.add_port ~name:"eth0" d);
  Device.register_table d "hi";
  Device.register_table d "lo";
  Device.add_route d ~table:"hi"
    { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = None; rt_dev = Some "eth0"; rt_mpls = None };
  Device.add_route d ~table:"lo"
    { Device.rt_dst = pfx "0.0.0.0/0"; rt_via = None; rt_dev = Some "lo"; rt_mpls = None };
  Device.add_rule d { Device.rl_sel = Device.Match_all; rl_table = "lo"; rl_prio = 200 };
  Device.add_rule d { Device.rl_sel = Device.Match_all; rl_table = "hi"; rl_prio = 50 };
  match Device.lookup_route d (ip "9.9.9.9") with
  | Some r -> check tbool "low prio number wins" true (r.Device.rt_dev = Some "eth0")
  | None -> Alcotest.fail "no route"

let test_register_table_idempotent () =
  let eq = Event_queue.create () in
  let d = Device.create ~eq ~id:"id-x" ~name:"x" () in
  Device.register_table d "t";
  Device.register_table d "t";
  check tint "one entry" 1
    (List.length (List.filter (( = ) "t") d.Device.rt_table_names))

(* --- tunnel validation --------------------------------------------------------------------- *)

let test_gre_checksum_required () =
  (* receiver demands checksums (icsum); sender does not add them: drop *)
  let net = Net.create () in
  let mk name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "192.168.0.0/30");
    Device.load_module d "ip_gre";
    d.Device.ip_forward <- true;
    d
  in
  let r1 = mk "r1" "192.168.0.1" and r2 = mk "r2" "192.168.0.2" in
  let _ = Net.connect net (r1, 0) (r2, 0) in
  let t1 =
    Device.add_tunnel r1 ~name:"g" ~mode:Device.Gre_mode ~local:(ip "192.168.0.1")
      ~remote:(ip "192.168.0.2") ()
  in
  let t2 =
    Device.add_tunnel r2 ~name:"g" ~mode:Device.Gre_mode ~local:(ip "192.168.0.2")
      ~remote:(ip "192.168.0.1") ()
  in
  t1.Device.if_up <- true;
  t2.Device.if_up <- true;
  (match t2.Device.if_kind with
  | Device.Tun t -> t.Device.t_icsum <- true
  | _ -> assert false);
  Device.add_addr r1 ~iface:"g" ~addr:(ip "172.16.0.1") ~prefix:(pfx "172.16.0.0/30");
  Device.add_addr r2 ~iface:"g" ~addr:(ip "172.16.0.2") ~prefix:(pfx "172.16.0.0/30");
  check tbool "dropped for missing checksum" false
    (Ping.reachable net ~from:r1 ~src:(ip "172.16.0.1") ~dst:(ip "172.16.0.2") ());
  check tbool "drop counted" true (Counters.get r2.Device.dev_counters "gre_check_drop" > 0)

let test_gre_inner_addresses_ping () =
  (* the classic `ifconfig greA 192.168.3.1` test: tunnel endpoints ping
     each other over the tunnel's inner addresses *)
  let net = Net.create () in
  let mk name addr =
    let d = Net.add_device net ~id:("id-" ^ name) ~name in
    ignore (Device.add_port d);
    Device.add_addr d ~iface:"eth0" ~addr:(ip addr) ~prefix:(pfx "192.168.0.0/30");
    Device.load_module d "ip_gre";
    d
  in
  let r1 = mk "r1" "192.168.0.1" and r2 = mk "r2" "192.168.0.2" in
  let _ = Net.connect net (r1, 0) (r2, 0) in
  List.iter
    (fun (d, l, r) ->
      let t = Device.add_tunnel d ~name:"greA" ~mode:Device.Gre_mode ~local:(ip l) ~remote:(ip r) () in
      t.Device.if_up <- true;
      Device.add_addr d ~iface:"greA"
        ~addr:(ip (if l = "192.168.0.1" then "192.168.3.1" else "192.168.3.2"))
        ~prefix:(pfx "192.168.3.0/24"))
    [ (r1, "192.168.0.1", "192.168.0.2"); (r2, "192.168.0.2", "192.168.0.1") ];
  check tbool "inner ping over the tunnel" true
    (Ping.reachable net ~from:r1 ~src:(ip "192.168.3.1") ~dst:(ip "192.168.3.2") ())

let () =
  Alcotest.run "netsim_unit"
    [
      ( "event-queue",
        [
          Alcotest.test_case "fifo at same time" `Quick test_eq_fifo_at_same_time;
          Alcotest.test_case "time ordering" `Quick test_eq_time_ordering;
          Alcotest.test_case "budget guard" `Quick test_eq_budget;
          Alcotest.test_case "negative delay" `Quick test_eq_negative_delay_rejected;
          Alcotest.test_case "run until deadline" `Quick test_eq_run_until;
        ] );
      ( "links",
        [
          Alcotest.test_case "mtu drop" `Quick test_link_mtu_drop;
          Alcotest.test_case "broadcast segment" `Quick test_link_broadcast_segment;
          Alcotest.test_case "cut mid flight" `Quick test_link_cut_mid_flight;
          Alcotest.test_case "per-cause drop counters" `Quick test_link_percause_counters;
          Alcotest.test_case "seeded loss" `Quick test_link_seeded_loss;
          Alcotest.test_case "corruption drops at crc" `Quick test_link_corruption_dropped_by_crc;
          Alcotest.test_case "scheduled flapping" `Quick test_link_flap_schedule;
          Alcotest.test_case "monotonic endpoint ids" `Quick test_link_endpoint_ids_monotonic;
        ] );
      ( "observability",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "trace signatures" `Quick test_trace_captures_signatures;
          Alcotest.test_case "frame signatures" `Quick test_frame_signatures_layered;
        ] );
      ( "arp",
        [
          Alcotest.test_case "cache population" `Quick test_arp_cache_populated;
          Alcotest.test_case "foreign address" `Quick test_arp_no_reply_for_foreign_address;
          Alcotest.test_case "proxy off by default" `Quick test_proxy_arp_disabled_by_default;
        ] );
      ( "icmp",
        [ Alcotest.test_case "time exceeded" `Quick test_time_exceeded_reaches_sender ] );
      ("udp", [ Alcotest.test_case "sockets" `Quick test_udp_sockets ]);
      ( "routing",
        [
          Alcotest.test_case "lpm" `Quick test_lpm_longest_prefix_wins;
          Alcotest.test_case "rule priority" `Quick test_rule_priority_order;
          Alcotest.test_case "table idempotence" `Quick test_register_table_idempotent;
        ] );
      ( "tunnels",
        [
          Alcotest.test_case "gre checksum required" `Quick test_gre_checksum_required;
          Alcotest.test_case "gre inner addresses" `Quick test_gre_inner_addresses_ping;
        ] );
    ]
